(* Sharded scatter-gather execution: shard-count scaling against the
   single-file engine, and pre-dispatch zone-map/Bloom pruning at two
   predicate selectivities (DESIGN.md section 14).

   Two questions, each with an honest baseline in the emitted JSON:
   - what does splitting one file into N shards cost on a non-selective
     scan (fan-out/fan-in overhead vs the same rows in one file)?
   - what does pruning buy on a selective scan over clustered keys, where
     most shards are provably empty — vs the same query unsharded, and vs
     the 50%-selectivity case where half the shards must still run? *)

module Plan = Proteus_algebra.Plan
module Expr = Proteus_model.Expr
module Ptype = Proteus_model.Ptype
module Monoid = Proteus_model.Monoid
module Counters = Proteus_engine.Counters

let max_domains =
  try int_of_string (String.trim (Sys.getenv "PROTEUS_BENCH_DOMAINS")) with _ -> 4

let rows = 200_000
let shard_counts = [ 2; 4; 8 ]

let ev_type =
  Ptype.Record [ ("k", Ptype.Int); ("grp", Ptype.Int); ("price", Ptype.Float) ]

(* one CSV text for the single file, split into contiguous chunks for the
   shard sets — identical bytes overall, so the cells isolate the shard
   machinery, not the data *)
let csv_lines =
  lazy
    (Array.init rows (fun i ->
         Fmt.str "%d,%d,%d.25" i (i mod 7) (i mod 100)))

let csv_range lo hi =
  let lines = Lazy.force csv_lines in
  let buf = Buffer.create ((hi - lo) * 16) in
  for i = lo to hi - 1 do
    Buffer.add_string buf lines.(i);
    Buffer.add_char buf '\n'
  done;
  Buffer.contents buf

let make_db ~shards =
  let db = Proteus.Db.create () in
  (if shards <= 1 then
     Proteus.Db.register_csv db ~name:"events" ~element:ev_type
       ~contents:(csv_range 0 rows) ()
   else
     let per = rows / shards in
     let chunks =
       List.init shards (fun s ->
           csv_range (s * per) (if s = shards - 1 then rows else (s + 1) * per))
     in
     Proteus.Db.register_sharded_csv db ~name:"events" ~element:ev_type
       ~shards:chunks ());
  db

let tune plan =
  Proteus_optimizer.Rewrite.extract_join_keys
    (Proteus_optimizer.Rewrite.pushdown_selections plan)

let scan_query frac =
  tune
    (Plan.reduce
       ~pred:Expr.(Field (var "x", "k") <. int (rows * frac / 100))
       [ Plan.agg ~name:"c" (Monoid.Primitive Monoid.Count) (Expr.int 1);
         Plan.agg ~name:"s" (Monoid.Primitive Monoid.Sum)
           (Expr.Field (Expr.var "x", "price")) ]
       (Plan.scan ~dataset:"events" ~binding:"x" ()))

(* (cell, shards, domains, median seconds); shards = 1 is the single-file
   baseline *)
let scaling_records : (string * int * int * float) list ref = ref []

(* (cell, shards, median seconds, shards pruned, shards total) *)
let pruning_records : (string * int * float * int * int) list ref = ref []

let measure_at db ~domains plan =
  let prepared = Proteus.Db.prepare_plan ~domains db plan in
  Util.measure_n 9 (fun () -> ignore (prepared.Proteus.Db.run ()))

(* Non-selective scan, warm caches: every shard runs, so the cell is pure
   fan-out/fan-in overhead against the single file. *)
let scaling_cells () =
  let plan = scan_query 100 in
  List.iter
    (fun shards ->
      let db = make_db ~shards in
      Fmt.pr "   full scan, %s:"
        (if shards <= 1 then "single file" else Fmt.str "%d shards" shards);
      List.iter
        (fun domains ->
          let t = measure_at db ~domains plan in
          scaling_records := ("full scan", shards, domains, t) :: !scaling_records;
          Fmt.pr " %dd=%.2fms" domains (Util.ms t))
        (List.sort_uniq compare [ 1; max_domains ]);
      Fmt.pr "@.")
    (1 :: shard_counts)

(* Selective scans over clustered keys, raw files (caching off so pruning
   arms — a cold cache fill deliberately stands down): at 1% selectivity
   7 of 8 shards are provably empty and never dispatched; at 50% half the
   shards must run regardless. The single-file rows are the
   baseline_single_file curve. *)
let pruning_cells () =
  List.iter
    (fun frac ->
      let name = Fmt.str "selective %d%%" frac in
      let plan = scan_query frac in
      List.iter
        (fun shards ->
          let db = make_db ~shards in
          Proteus.Db.set_caching db false;
          let t = measure_at db ~domains:max_domains plan in
          Counters.reset ();
          ignore (Proteus.Db.run_plan ~domains:max_domains db plan);
          let pruned = (Counters.snapshot ()).Counters.shards_pruned in
          pruning_records := (name, shards, t, pruned, shards) :: !pruning_records;
          Fmt.pr "   pruning, %s, %s: %.2fms (pruned %d/%d)@." name
            (if shards <= 1 then "single file" else Fmt.str "%d shards" shards)
            (Util.ms t) pruned shards)
        [ 1; 8 ])
    [ 1; 50 ]

let run_all () =
  Fmt.pr "@.== Sharded scatter-gather: scaling + zone-map/Bloom pruning ==@.";
  scaling_cells ();
  pruning_cells ();
  Util.print_note
    "full-scan cells measure fan-out/fan-in overhead (all shards run); \
     pruning cells run over raw files where provably-empty shards are \
     never dispatched"

let splice_json path =
  let contents =
    let ic = open_in path in
    let n = in_channel_length ic in
    let s = really_input_string ic n in
    close_in ic;
    s
  in
  let cut = String.rindex contents '}' in
  let buf = Buffer.create (String.length contents + 1024) in
  Buffer.add_string buf (String.sub contents 0 cut);
  Buffer.add_string buf ",\n  \"shard_scaling\": [\n";
  let scaling = List.rev !scaling_records in
  List.iteri
    (fun i (cell, shards, domains, t) ->
      Buffer.add_string buf
        (Fmt.str
           "    {\"cell\": %S, \"shards\": %d, \"domains\": %d, \"median_ms\": \
            %.4f}%s\n"
           cell shards domains (Util.ms t)
           (if i = List.length scaling - 1 then "" else ",")))
    scaling;
  Buffer.add_string buf "  ],\n  \"shard_pruning\": [\n";
  let pruning =
    List.filter (fun (_, shards, _, _, _) -> shards > 1) (List.rev !pruning_records)
  in
  List.iteri
    (fun i (cell, shards, t, pruned, total) ->
      Buffer.add_string buf
        (Fmt.str
           "    {\"cell\": %S, \"shards\": %d, \"median_ms\": %.4f, \
            \"shards_pruned\": %d, \"pruned_share\": %.3f}%s\n"
           cell shards (Util.ms t) pruned
           (float_of_int pruned /. float_of_int total)
           (if i = List.length pruning - 1 then "" else ",")))
    pruning;
  (* the unsharded rows of the same queries: what the engine did before
     shard sets existed, same key the other before/after curves use *)
  let base =
    List.filter (fun (_, shards, _, _, _) -> shards = 1) (List.rev !pruning_records)
  in
  Buffer.add_string buf "  ],\n  \"baseline_single_file\": [\n";
  List.iteri
    (fun i (cell, _, t, _, _) ->
      Buffer.add_string buf
        (Fmt.str "    {\"cell\": %S, \"shards\": 1, \"median_ms\": %.4f}%s\n" cell
           (Util.ms t)
           (if i = List.length base - 1 then "" else ",")))
    base;
  Buffer.add_string buf "  ]\n}\n";
  let oc = open_out path in
  output_string oc (Buffer.contents buf);
  close_out oc;
  Fmt.pr "   spliced shard cells into %s@." path
