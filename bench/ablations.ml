(* Ablations over the design choices DESIGN.md calls out:

   A. engine-per-query (closure-compiled) vs Volcano interpretation —
      Section 5.1's reason to exist;
   B. the fixed-schema structural-index fast path (shared Level 0 with
      compile-time slot resolution) vs the flexible per-object Level 0 —
      Section 5.2 "Specializing per Dataset Contents";
   C. implicit caching of join build sides (reusing the materialized side
      of a previous radix join) — Section 6;
   D. sigma-result caching with predicate subsumption — the future-work
      extension of Section 6;
   E. the vectorized lane (batch kernels over selection vectors) vs the
      staged tuple-at-a-time lane of the same specialized engine. *)

module Tpch = Proteus_tpch.Tpch
module Q = Tpch.Queries
module Manager = Proteus_cache.Manager

let sf = try float_of_string (Sys.getenv "PROTEUS_BENCH_SF_JSON") with Not_found -> 0.005

let mk_db ?caching ~register () =
  let db = Proteus.Db.create ?caching () in
  (match caching with None -> Proteus.Db.set_caching db false | Some _ -> ());
  register db;
  db

let run_all () =
  let d = Tpch.generate ~sf () in
  let oc = d.Tpch.order_count in
  Fmt.pr "@.== Ablations ==@.";

  (* A: compiled vs interpreted, over raw JSON and binary columns *)
  let db =
    mk_db
      ~register:(fun db ->
        Proteus.Db.register_json db ~name:"li_json" ~element:Tpch.lineitem_type
          ~contents:(Tpch.lineitem_json d);
        Proteus.Db.register_columns db ~name:"li_col" ~element:Tpch.lineitem_type
          (Tpch.lineitem_columns d);
        Proteus.Db.register_columns db ~name:"ord_col" ~element:Tpch.order_type
          (Tpch.orders_columns d))
      ()
  in
  Fmt.pr "A. engine-per-query vs Volcano interpretation:@.";
  List.iter
    (fun (label, plan) ->
      let t_c =
        Util.measure (fun () ->
            ignore (Proteus.Db.run_plan ~engine:Proteus.Db.Engine_compiled db plan))
      in
      let t_v =
        Util.measure (fun () ->
            ignore (Proteus.Db.run_plan ~engine:Proteus.Db.Engine_volcano db plan))
      in
      Fmt.pr "   %-34s compiled %8.2fms   volcano %8.2fms   (%.1fx)@." label
        (Util.ms t_c) (Util.ms t_v) (t_v /. t_c))
    [
      ( "4-agg scan, binary, sel=50%",
        Q.projection ~lineitem:"li_col" ~order_count:oc ~variant:Q.Agg4 ~selectivity:0.5 );
      ( "4-agg scan, raw JSON, sel=50%",
        Q.projection ~lineitem:"li_json" ~order_count:oc ~variant:Q.Agg4 ~selectivity:0.5 );
      ( "join, binary, sel=20%",
        Q.join ~orders:"ord_col" ~lineitem:"li_col" ~order_count:oc ~variant:Q.JCount
          ~selectivity:0.2 );
      ( "group-by 4 aggs, binary",
        Q.group_by ~lineitem:"li_col" ~order_count:oc ~aggregates:4 ~selectivity:1.0 );
    ];

  (* B: fixed-schema JSON fast path. The TPC-H JSON writer emits every
     object with the same field order (machine-generated data), which the
     index detects; shuffling each object's fields forces the flexible
     per-object Level-0 path. *)
  let shuffled_json = Tpch.lineitem_json ~shuffle_fields:true d in
  let db_shuffled =
    mk_db
      ~register:(fun db ->
        Proteus.Db.register_json db ~name:"li_json" ~element:Tpch.lineitem_type
          ~contents:shuffled_json)
      ()
  in
  let plan =
    Q.projection ~lineitem:"li_json" ~order_count:oc ~variant:Q.Agg4 ~selectivity:1.0
  in
  let t_fixed = Util.measure (fun () -> ignore (Proteus.Db.run_plan db plan)) in
  let t_flex =
    Util.measure (fun () -> ignore (Proteus.Db.run_plan db_shuffled plan))
  in
  Fmt.pr
    "B. structural index: fixed-schema fast path %8.2fms   flexible Level-0 %8.2fms \
     (%.2fx)@."
    (Util.ms t_fixed) (Util.ms t_flex) (t_flex /. t_fixed);

  (* C: implicit caching of join build sides *)
  let join_plan =
    Q.join ~orders:"ord_col" ~lineitem:"li_json" ~order_count:oc ~variant:Q.JCount
      ~selectivity:0.5
  in
  let register db =
    Proteus.Db.register_json db ~name:"li_json" ~element:Tpch.lineitem_type
      ~contents:(Tpch.lineitem_json d);
    Proteus.Db.register_columns db ~name:"ord_col" ~element:Tpch.order_type
      (Tpch.orders_columns d)
  in
  let db_nocache = mk_db ~register () in
  let db_joincache =
    mk_db
      ~caching:
        { Manager.config_disabled with cache_join_sides = true }
      ~register ()
  in
  ignore (Proteus.Db.run_plan db_nocache join_plan);
  ignore (Proteus.Db.run_plan db_joincache join_plan) (* populates the side *);
  let t_cold = Util.measure (fun () -> ignore (Proteus.Db.run_plan db_nocache join_plan)) in
  let t_reuse =
    Util.measure (fun () -> ignore (Proteus.Db.run_plan db_joincache join_plan))
  in
  Fmt.pr "C. implicit join-side caching: rebuild %8.2fms   reuse %8.2fms (%.1fx)@."
    (Util.ms t_cold) (Util.ms t_reuse) (t_cold /. t_reuse);

  (* D: sigma-result caching + subsumption. Two sessions: the raw arm never
     caches (otherwise its own warm-up would serve later samples); the
     cached arm is primed with a weaker predicate and every timed run is a
     subsuming match with a residual re-filter. *)
  let register_li db =
    Proteus.Db.register_json db ~name:"li_json" ~element:Tpch.lineitem_type
      ~contents:(Tpch.lineitem_json d)
  in
  let db_raw = mk_db ~register:register_li () in
  let db_sel =
    mk_db
      ~caching:{ Manager.config_disabled with cache_select_results = true; subsumption = true }
      ~register:register_li ()
  in
  let sel k = Q.projection ~lineitem:"li_json" ~order_count:oc ~variant:Q.Agg4 ~selectivity:k in
  ignore (Proteus.Db.run_plan db_sel (sel 0.5)) (* prime the sigma-cache *);
  let t_raw = Util.measure (fun () -> ignore (Proteus.Db.run_plan db_raw (sel 0.2))) in
  let t_subsumed = Util.measure (fun () -> ignore (Proteus.Db.run_plan db_sel (sel 0.2))) in
  let stats = Manager.stats (Proteus.Db.cache_manager db_sel) in
  Fmt.pr
    "D. sigma-result caching: raw %8.2fms   subsumed re-filter %8.2fms (%.1fx; %d \
     subsumed matches)@."
    (Util.ms t_raw) (Util.ms t_subsumed) (t_raw /. t_subsumed)
    stats.Manager.select_subsumed;

  (* E: vectorized vs staged tuple execution — same plan, same specialized
     engine, over binary columns where batch getters are memcpy-like; a
     selective predicate exercises the selection-vector compaction. The two
     lanes must agree bit for bit. *)
  let sel_plan =
    Q.projection ~lineitem:"li_col" ~order_count:oc ~variant:Q.Agg4 ~selectivity:0.2
  in
  let r_batch = ref Proteus_model.Value.Null in
  let r_tuple = ref Proteus_model.Value.Null in
  let t_batch = Util.measure (fun () -> r_batch := Proteus.Db.run_plan db sel_plan) in
  let t_tuple =
    Util.measure (fun () -> r_tuple := Proteus.Db.run_plan ~batch_size:0 db sel_plan)
  in
  if not (Proteus_model.Value.equal !r_batch !r_tuple) then
    failwith "ablation E: the vectorized and tuple lanes disagree";
  Fmt.pr
    "E. vectorized lane, binary scan-agg sel=20%%: batch %8.2fms   tuple-at-a-time \
     %8.2fms (%.2fx)@."
    (Util.ms t_batch) (Util.ms t_tuple) (t_tuple /. t_batch)
