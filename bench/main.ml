(* The benchmark harness: regenerates every table and figure of the paper's
   evaluation (Section 7) at laptop scale, then runs a Bechamel suite with
   one statistically-sampled benchmark per figure/table.

   Run with: dune exec bench/main.exe
   Scale knobs: PROTEUS_BENCH_SF_JSON, PROTEUS_BENCH_SF_BIN,
   PROTEUS_BENCH_SPAM_{JSON,CSV,BIN}. *)

open Bechamel
module Tpch = Proteus_tpch.Tpch
module Q = Tpch.Queries
module B = Proteus_baselines

let bechamel_suite (je : Tpch_figs.json_env) (be : Tpch_figs.bin_env) =
  (* one representative cell per experiment id, measured properly *)
  let joc = je.Tpch_figs.jd.Tpch.order_count in
  let boc = be.Tpch_figs.bd.Tpch.order_count in
  let p_json plan = Staged.stage (fun () -> ignore (Proteus.Db.run_plan je.Tpch_figs.j_proteus plan)) in
  let p_bin plan = Staged.stage (fun () -> ignore (Proteus.Db.run_plan be.Tpch_figs.b_proteus plan)) in
  let tests =
    [
      Test.make ~name:"fig5_json_projections"
        (p_json (Q.projection ~lineitem:"lineitem" ~order_count:joc ~variant:Q.Agg4 ~selectivity:0.5));
      Test.make ~name:"fig6_bin_projections"
        (p_bin (Q.projection ~lineitem:"lineitem" ~order_count:boc ~variant:Q.Agg4 ~selectivity:0.5));
      Test.make ~name:"fig7_json_selections"
        (p_json (Q.selection ~lineitem:"lineitem" ~order_count:joc ~predicates:4 ~selectivity:0.5));
      Test.make ~name:"fig8_bin_selections"
        (p_bin (Q.selection ~lineitem:"lineitem" ~order_count:boc ~predicates:4 ~selectivity:0.5));
      Test.make ~name:"fig9_json_joins"
        (p_json
           (Q.join ~orders:"orders" ~lineitem:"lineitem" ~order_count:joc ~variant:Q.JAgg2
              ~selectivity:0.2));
      Test.make ~name:"fig10_bin_joins"
        (p_bin
           (Q.join ~orders:"orders" ~lineitem:"lineitem" ~order_count:boc ~variant:Q.JAgg2
              ~selectivity:0.2));
      Test.make ~name:"fig11_json_groupbys"
        (p_json (Q.group_by ~lineitem:"lineitem" ~order_count:joc ~aggregates:4 ~selectivity:0.5));
      Test.make ~name:"fig12_bin_groupbys"
        (p_bin (Q.group_by ~lineitem:"lineitem" ~order_count:boc ~aggregates:4 ~selectivity:0.5));
      Test.make ~name:"fig13_caching"
        (* representative cached-predicate run over the caching session *)
        (p_json (Q.projection ~lineitem:"lineitem" ~order_count:joc ~variant:Q.Count1 ~selectivity:0.1));
      Test.make ~name:"fig14_symantec_q16"
        (let s = Proteus_symantec.Symantec.generate
                   ~params:{ Proteus_symantec.Symantec.default_params with
                             json_objects = 500; csv_rows = 2_000; bin_rows = 3_000 } () in
         let db = Proteus.Db.create () in
         Proteus.Db.register_json db ~name:Proteus_symantec.Symantec.json_name
           ~element:Proteus_symantec.Symantec.json_type ~contents:s.Proteus_symantec.Symantec.json_text;
         let plan = List.assoc "Q16" (Proteus_symantec.Symantec.queries s) in
         Staged.stage (fun () -> ignore (Proteus.Db.run_plan db plan)));
      Test.make ~name:"table3_proteus_bin_phase"
        (p_bin (Q.projection ~lineitem:"lineitem" ~order_count:boc ~variant:Q.Count1 ~selectivity:0.1));
    ]
  in
  Test.make_grouped ~name:"paper" ~fmt:"%s/%s" tests

let run_bechamel test =
  let ols =
    Analyze.ols ~r_square:false ~bootstrap:0 ~predictors:[| Measure.run |]
  in
  let instance = Toolkit.Instance.monotonic_clock in
  let cfg =
    Benchmark.cfg ~limit:200 ~quota:(Time.second 0.25) ~kde:None ~stabilize:false ()
  in
  let raw = Benchmark.all cfg [ instance ] test in
  let results = Analyze.all ols instance raw in
  Fmt.pr "@.== Bechamel suite: one sampled benchmark per experiment ==@.";
  let rows =
    Hashtbl.fold
      (fun name ols acc ->
        let est =
          match Analyze.OLS.estimates ols with Some [ e ] -> e | _ -> Float.nan
        in
        (name, est) :: acc)
      results []
    |> List.sort compare
  in
  List.iter
    (fun (name, ns) -> Fmt.pr "  %-34s %12.3f ms/run@." name (ns /. 1e6))
    rows

let () =
  Fmt.pr "Proteus benchmark harness — regenerating the paper's evaluation@.";
  Fmt.pr "(shapes, not absolute numbers: the substrate is an OCaml simulator)@.";
  let je, be = Tpch_figs.run_all () in
  Symantec_fig.run_all ();
  Parallel_fig.run_all je be;
  Server_fig.run_all ();
  Server_fig.splice_json "BENCH_engine.json";
  Shards_fig.run_all ();
  Shards_fig.splice_json "BENCH_engine.json";
  Resilience_fig.run_all ();
  Resilience_fig.splice_json "BENCH_engine.json";
  Projection_fig.run_all ();
  Projection_fig.splice_json "BENCH_engine.json";
  Ablations.run_all ();
  run_bechamel (bechamel_suite je be)
