(* Prepare-once/run-many: the closed-loop load harness for the query
   server. N client threads each drive a stream of parameterized queries
   through the session scheduler (engine cache on), and the same stream as
   per-query literal SQL that stages a fresh engine every time — the
   before-curve of this PR. Reported per mode: sustained throughput and
   the p50/p95/p99 latency curve, plus the engine-cache hit rate; a
   separate cell isolates first-compile vs slot-rebind latency on one
   shape. Results are spliced into BENCH_engine.json next to the parallel
   engine's curves. *)

module Value = Proteus_model.Value
module Ptype = Proteus_model.Ptype
module Schema = Proteus_model.Schema
module Scheduler = Proteus_server.Scheduler
module Engine_cache = Proteus_server.Engine_cache
module Executor = Proteus_engine.Executor

let rows =
  try int_of_string (String.trim (Sys.getenv "PROTEUS_BENCH_SERVER_ROWS"))
  with _ -> 4_000

let clients =
  try int_of_string (String.trim (Sys.getenv "PROTEUS_BENCH_SERVER_CLIENTS"))
  with _ -> 4

let per_client =
  try int_of_string (String.trim (Sys.getenv "PROTEUS_BENCH_SERVER_QUERIES"))
  with _ -> 100

(* Worker domains sized to the machine: every cross-domain ticket wakeup
   is a context switch, and on a 1-core container a fleet wider than the
   hardware measures scheduler thrash, not query processing. *)
let workers =
  try int_of_string (String.trim (Sys.getenv "PROTEUS_BENCH_SERVER_WORKERS"))
  with _ -> max 1 (min clients (Domain.recommended_domain_count ()))

let item_type =
  Ptype.Record
    [ ("k", Ptype.Int); ("grp", Ptype.Int); ("price", Ptype.Float);
      ("name", Ptype.String) ]

let items =
  List.init rows (fun i ->
      Value.record
        [ ("k", Value.Int i); ("grp", Value.Int (i mod 7));
          ("price", Value.Float (float_of_int ((i * 37) mod 1000) /. 4.0));
          ("name", Value.String (Fmt.str "n%d" (i mod 13))) ])

let make_db () =
  let db = Proteus.Db.create () in
  Proteus.Db.register_csv db ~name:"items_csv" ~element:item_type
    ~contents:
      (Proteus_format.Csv.of_records Proteus_format.Csv.default_config
         (Schema.of_type item_type) items)
    ();
  Proteus.Db.register_json db ~name:"items_json" ~element:item_type
    ~contents:
      (String.concat "\n"
         (List.map
            (fun r ->
              Proteus_format.Json.to_string (Proteus_format.Json.of_value r))
            items));
  Proteus.Db.register_rows db ~name:"items_row" ~element:item_type items;
  db

(* The query mix: a handful of plan shapes, each visited with a rotating
   parameter — the workload the engine cache exists for. [param i] keeps
   every execution distinct so nothing degenerates into a result replay. *)
let shapes =
  [ ("SELECT COUNT(1), SUM(price) FROM items_csv WHERE k < ?",
     fun i -> Value.Int ((i * 131) mod rows));
    ("SELECT COUNT(1), SUM(price) FROM items_json WHERE k < ?",
     fun i -> Value.Int ((i * 17) mod rows));
    ("SELECT grp, COUNT(1) FROM items_row WHERE k >= ? GROUP BY grp ORDER BY grp",
     fun i -> Value.Int ((i * 7) mod rows));
    ("SELECT COUNT(1) FROM items_row WHERE grp = ?", fun i -> Value.Int (i mod 7)) ]

let literal_sql sql v =
  (* splice the parameter into the text, as a client without prepared
     statements would — the per-query-compile baseline *)
  let buf = Buffer.create (String.length sql + 8) in
  String.iter
    (function
      | '?' -> Buffer.add_string buf (Fmt.str "%a" Value.pp v)
      | c -> Buffer.add_char buf c)
    sql;
  Buffer.contents buf

type load_result = {
  lr_mode : string;
  lr_throughput : float;  (* queries per second, sustained *)
  lr_p50 : float;         (* seconds *)
  lr_p95 : float;
  lr_p99 : float;
  lr_hit_rate : float;    (* engine-cache hits / lookups; 0 for the baseline *)
}

let percentile sorted p =
  let n = Array.length sorted in
  sorted.(min (n - 1) (int_of_float (p *. float_of_int n)))

(* [closed_loop run_one] drives [clients] threads, each issuing
   [per_client] queries back to back (closed loop: a client waits for its
   answer before sending the next), and folds every per-query latency into
   one curve. *)
let closed_loop ~mode ~hit_rate run_one =
  let latencies = Array.make (clients * per_client) 0. in
  let t0 = Unix.gettimeofday () in
  let threads =
    List.init clients (fun c ->
        Thread.create
          (fun () ->
            for i = 0 to per_client - 1 do
              let q0 = Unix.gettimeofday () in
              run_one c i;
              latencies.((c * per_client) + i) <- Unix.gettimeofday () -. q0
            done)
          ())
  in
  List.iter Thread.join threads;
  let elapsed = Unix.gettimeofday () -. t0 in
  Array.sort compare latencies;
  {
    lr_mode = mode;
    lr_throughput = float_of_int (clients * per_client) /. elapsed;
    lr_p50 = percentile latencies 0.50;
    lr_p95 = percentile latencies 0.95;
    lr_p99 = percentile latencies 0.99;
    lr_hit_rate = hit_rate ();
  }

let pick c i =
  let sql, param = List.nth shapes ((c + i) mod List.length shapes) in
  (sql, param i)

let run_cached db =
  let sched = Scheduler.create ~workers db in
  Fun.protect
    ~finally:(fun () -> Scheduler.shutdown sched)
    (fun () ->
      let hit_rate () =
        let s = Engine_cache.stats (Scheduler.engine_cache sched) in
        float_of_int s.Engine_cache.hits
        /. float_of_int (max 1 (s.Engine_cache.hits + s.Engine_cache.misses))
      in
      closed_loop ~mode:"engine_cache" ~hit_rate (fun c i ->
          let sql, v = pick c i in
          match Scheduler.run sched (Scheduler.request ~params:[ ("1", v) ] sql) with
          | Ok { Scheduler.cp_outcome = Executor.Completed _; _ } -> ()
          | Ok _ -> failwith "server bench: query did not complete"
          | Error _ -> failwith "server bench: query rejected"))

let run_baseline db =
  (* same closed loop, no prepared plans: every query re-enters the full
     parse -> optimize -> stage pipeline, serialized the same way the
     engine cache serializes compiles *)
  let mu = Mutex.create () in
  closed_loop ~mode:"baseline_per_query_compile" ~hit_rate:(fun () -> 0.) (fun c i ->
      let sql, v = pick c i in
      Mutex.lock mu;
      Fun.protect
        ~finally:(fun () -> Mutex.unlock mu)
        (fun () -> ignore (Proteus.Db.sql db (literal_sql sql v))))

(* First-compile vs slot-rebind latency, measured on one shape through the
   engine cache itself: the miss pays optimize + staging, the hits pay key
   computation + bind + run. Run time is excluded from neither — both
   cells execute the query — so the ratio understates the raw staging
   speedup. *)
let prepare_vs_rebind db =
  let cache = Engine_cache.create db in
  let acquire v =
    let t0 = Unix.gettimeofday () in
    let lease =
      Engine_cache.acquire cache
        (Proteus.Db.plan_sql db
           (Fmt.str "SELECT COUNT(1), SUM(price) FROM items_csv WHERE k < %d" v))
    in
    let dt = Unix.gettimeofday () -. t0 in
    ignore (Engine_cache.run lease);
    Engine_cache.release lease ~clean:true;
    (dt, Engine_cache.compile_seconds lease)
  in
  let _, prepare = acquire 100 in
  let rebinds =
    List.sort compare
      (List.init 21 (fun i -> fst (acquire (100 + (i * 53) mod rows))))
  in
  let rebind = List.nth rebinds (List.length rebinds / 2) in
  (prepare, rebind)

let results : load_result list ref = ref []
let prepare_ms = ref 0.
let rebind_ms = ref 0.

let run_all () =
  Fmt.pr
    "@.== Query server: closed-loop load (%d clients x %d queries, %d worker \
     domain%s) ==@."
    clients per_client workers
    (if workers = 1 then "" else "s");
  let db = make_db () in
  (* warm the storage side once so both modes measure query processing,
     not first-touch index builds *)
  List.iter
    (fun (sql, param) -> ignore (Proteus.Db.sql db (literal_sql sql (param 1))))
    shapes;
  let cached = run_cached (make_db ()) in
  let baseline = run_baseline db in
  results := [ cached; baseline ];
  List.iter
    (fun r ->
      Fmt.pr "   %-28s %8.0f q/s   p50=%6.2fms p95=%6.2fms p99=%6.2fms%s@."
        r.lr_mode r.lr_throughput (Util.ms r.lr_p50) (Util.ms r.lr_p95)
        (Util.ms r.lr_p99)
        (if r.lr_hit_rate > 0. then Fmt.str "   hit-rate=%.3f" r.lr_hit_rate
         else ""))
    !results;
  let prepare, rebind = prepare_vs_rebind (make_db ()) in
  prepare_ms := Util.ms prepare;
  rebind_ms := Util.ms rebind;
  Fmt.pr "   first compile %.3fms, cached re-bind %.3fms (%.1fx)@." !prepare_ms
    !rebind_ms
    (!prepare_ms /. !rebind_ms)

(* Splice the server sections into the JSON emitted by [Parallel_fig]:
   drop the closing brace, append our keys. *)
let splice_json path =
  let contents =
    let ic = open_in path in
    let n = in_channel_length ic in
    let s = really_input_string ic n in
    close_in ic;
    s
  in
  let cut = String.rindex contents '}' in
  let buf = Buffer.create (String.length contents + 1024) in
  Buffer.add_string buf (String.sub contents 0 cut);
  Buffer.add_string buf ",\n  \"server_load\": [\n";
  List.iteri
    (fun i r ->
      Buffer.add_string buf
        (Fmt.str
           "    {\"mode\": %S, \"clients\": %d, \"workers\": %d, \"queries\": \
            %d, \"throughput_qps\": %.1f, \"p50_ms\": %.4f, \"p95_ms\": %.4f, \
            \"p99_ms\": %.4f, \"cache_hit_rate\": %.4f}%s\n"
           r.lr_mode clients workers (clients * per_client) r.lr_throughput
           (Util.ms r.lr_p50) (Util.ms r.lr_p95) (Util.ms r.lr_p99)
           r.lr_hit_rate
           (if i = List.length !results - 1 then "" else ",")))
    !results;
  Buffer.add_string buf
    (Fmt.str
       "  ],\n  \"prepare_vs_rebind\": {\"prepare_ms\": %.4f, \"rebind_ms\": \
        %.4f, \"speedup\": %.1f}\n}\n"
       !prepare_ms !rebind_ms
       (!prepare_ms /. !rebind_ms));
  let oc = open_out path in
  output_string oc (Buffer.contents buf);
  close_out oc;
  Fmt.pr "   spliced server cells into %s@." path
