(* Morsel-driven parallel execution: the specialized engine at 1..N OCaml
   domains over the paper's workload shapes — TPC-H Q1/Q6-style cells on the
   JSON and binary instances, plus Symantec spam-workload cells with the
   adaptive caches warm.

   Every (cell, domain count, median ms) triple is also dumped to
   BENCH_engine.json so regressions are machine-checkable. Domain counts
   beyond the machine's core count measure overhead, not speedup; the
   determinism guarantee (identical results at any count) still holds. *)

module Tpch = Proteus_tpch.Tpch
module Q = Tpch.Queries
module Symantec = Proteus_symantec.Symantec
module Plan = Proteus_algebra.Plan
module Expr = Proteus_model.Expr
module Ptype = Proteus_model.Ptype

let max_domains =
  try int_of_string (String.trim (Sys.getenv "PROTEUS_BENCH_DOMAINS")) with _ -> 4

(* Pre-partitioning curves (PR 2, serial join build + splice-merged
   group-by), kept verbatim so the emitted JSON carries before/after: the
   join build was serial on domain 0, and the Q1/JSON cells *regressed*
   with domain count (per-morsel table splices, per-tuple JSON entry
   allocations serializing on the minor-GC barrier). *)
let baseline : (string * int * float) list =
  [
    ("bin join (2 aggr)", 0, 13.4351); ("bin join (2 aggr)", 1, 13.3789);
    ("bin join (2 aggr)", 2, 12.9530); ("bin join (2 aggr)", 4, 12.3539);
    ("bin Q1-shape (group-by)", 0, 8.2161); ("bin Q1-shape (group-by)", 1, 10.6330);
    ("bin Q1-shape (group-by)", 2, 15.2259); ("bin Q1-shape (group-by)", 4, 15.3801);
    ("JSON Q1-shape (group-by)", 0, 11.6291); ("JSON Q1-shape (group-by)", 1, 14.1809);
    ("JSON Q1-shape (group-by)", 2, 31.1911); ("JSON Q1-shape (group-by)", 4, 45.6440);
    ("JSON Q6-shape (4 aggr)", 0, 4.7672); ("JSON Q6-shape (4 aggr)", 1, 6.7101);
    ("JSON Q6-shape (4 aggr)", 2, 13.8412); ("JSON Q6-shape (4 aggr)", 4, 13.8171);
  ]

(* Pre-blit curve (PR 5): the parallel join build concatenated its
   per-(worker, morsel) buffers with per-row pushes, leaving a serial tail
   after the fan-out; kept verbatim so the JSON carries before/after the
   Array.blit concatenation. Measured on the same cells as "bin join". *)
let baseline_pre_blit : (string * int * float) list =
  [
    ("bin join (2 aggr)", 0, 12.0380); ("bin join (2 aggr)", 1, 11.0760);
    ("bin join (2 aggr)", 2, 11.9629); ("bin join (2 aggr)", 4, 12.7680);
    ("bin join (2 aggr) (scaling)", 1, 16.4270);
    ("bin join (2 aggr) (scaling)", 2, 16.5029);
    ("bin join (2 aggr) (scaling)", 4, 20.6680);
    ("bin join (2 aggr) (scaling)", 8, 15.8720);
  ]

(* Physical cores visible to the process, as the OS reports them; paired
   with [Domain.recommended_domain_count] in the JSON metadata so scaling
   numbers carry the machine context they were measured on. *)
let host_cores =
  try
    let ic = open_in "/proc/cpuinfo" in
    let n = ref 0 in
    (try
       while true do
         let line = input_line ic in
         if String.length line >= 9 && String.sub line 0 9 = "processor" then incr n
       done
     with End_of_file -> ());
    close_in ic;
    if !n > 0 then !n else Domain.recommended_domain_count ()
  with _ -> Domain.recommended_domain_count ()

let tune plan =
  Proteus_optimizer.Rewrite.extract_join_keys
    (Proteus_optimizer.Rewrite.pushdown_selections plan)

(* accumulated (cell, domains, median seconds); domains = 0 marks the plain
   serial engine entry *)
let records : (string * int * float) list ref = ref []

(* cold-run cells: caches cleared before every iteration, so each run is a
   cache-filling pass — the segmented fill riding the morsel spine. Emitted
   as the "cold fill" engine column so cold and warm scaling sit side by
   side in the JSON. *)
let cold_records : (string * int * float) list ref = ref []

(* workload-adaptive promotion cells: (cell, mode, domains, median seconds,
   share of morsels the zone maps skipped on one instrumented run) *)
let promo_records : (string * string * int * float * float) list ref = ref []

let measure_at db ~domains plan =
  let prepared = Proteus.Db.prepare_plan ~domains db plan in
  Util.measure_n 9 (fun () -> ignore (prepared.Proteus.Db.run ()))

let domain_counts =
  List.sort_uniq compare [ 1; 2; max_domains ]

let cold_cell name db plan =
  let plan = tune plan in
  Fmt.pr "   cold fill, %s:" name;
  List.iter
    (fun d ->
      let t =
        Util.measure_n 9 (fun () ->
            (* drop the caches, keep the structural indexes: the cell
               isolates fill + scan, not index construction *)
            Proteus.Db.set_caching ~clear:true db true;
            ignore (Proteus.Db.run_plan ~domains:d db plan))
      in
      cold_records := (name, d, t) :: !cold_records;
      Fmt.pr " %dd=%.2fms" d (Util.ms t))
    domain_counts;
  Fmt.pr "@.";
  (* leave the session warm again for any cell measured after this one *)
  ignore (Proteus.Db.run_plan db plan)

let cell name db plan =
  let plan = tune plan in
  let serial = measure_at db ~domains:1 plan in
  records := (name, 0, serial) :: !records;
  let at =
    List.map
      (fun d ->
        let t = measure_at db ~domains:d plan in
        records := (name, d, t) :: !records;
        Some t)
      domain_counts
  in
  (name, Some serial :: at)

let scaling_row name db plan =
  let plan = tune plan in
  Fmt.pr "   scaling, %s:" name;
  List.iter
    (fun d ->
      let t = measure_at db ~domains:d plan in
      records := (name ^ " (scaling)", d, t) :: !records;
      Fmt.pr " %dd=%.2fms" d (Util.ms t))
    [ 1; 2; 4; 8 ];
  Fmt.pr "@."

(* Selective scans over a clustered CSV column, warm cache, with and without
   workload promotion. The promoted session has crossed the access threshold:
   its zone maps let the dispenser drop whole morsels of the 1%-selectivity
   scan, and the 50% scan bounds how much a barely-selective predicate can
   gain. The unpromoted rows double as the pre-promotion baseline curve. *)
let promotion_cells () =
  let n = 200_000 in
  let ev_type =
    Ptype.Record [ ("k", Ptype.Int); ("v", Ptype.Float); ("s", Ptype.String) ]
  in
  let buf = Buffer.create (n * 16) in
  for i = 0 to n - 1 do
    Buffer.add_string buf
      (Fmt.str "%d,%.1f,str%d\n" i (float_of_int i *. 0.5) (i mod 97))
  done;
  let contents = Buffer.contents buf in
  let session ~promote =
    let caching =
      { Proteus_cache.Manager.default_config with promote; promote_threshold = 2 }
    in
    let db = Proteus.Db.create ~caching () in
    Proteus.Db.register_csv db ~name:"events" ~element:ev_type ~contents ();
    db
  in
  let query frac =
    Plan.reduce
      ~pred:Expr.(Field (var "x", "k") <. int (n * frac / 100))
      [ Plan.agg ~name:"c" (Proteus_model.Monoid.Primitive Proteus_model.Monoid.Count)
          (Expr.int 1) ]
      (Plan.scan ~dataset:"events" ~binding:"x" ())
  in
  let cells = [ ("selective 1%", query 1); ("selective 50%", query 50) ] in
  List.iter
    (fun (mode, promote) ->
      let db = session ~promote in
      (* warm the cache; with promotion on these passes also cross the
         access threshold, so the measured steady state is post-promotion *)
      List.iter
        (fun (_, plan) ->
          for _ = 1 to 3 do
            ignore (Proteus.Db.run_plan db plan)
          done)
        cells;
      Fmt.pr "   promotion %s:" mode;
      List.iter
        (fun (name, plan) ->
          let prepared = Proteus.Db.prepare_plan ~domains:max_domains db plan in
          let t = Util.measure_n 9 (fun () -> ignore (prepared.Proteus.Db.run ())) in
          Proteus_engine.Counters.reset ();
          ignore (prepared.Proteus.Db.run ());
          let s = Proteus_engine.Counters.snapshot () in
          let total =
            s.Proteus_engine.Counters.morsels_skipped + s.Proteus_engine.Counters.morsels
          in
          let share =
            if total = 0 then 0.0
            else
              float_of_int s.Proteus_engine.Counters.morsels_skipped
              /. float_of_int total
          in
          promo_records := (name, mode, max_domains, t, share) :: !promo_records;
          Fmt.pr " %s=%.2fms (skip %.0f%%)" name (Util.ms t) (share *. 100.))
        cells;
      Fmt.pr "@.")
    [ ("unpromoted", false); ("promoted", true) ]

let emit_json path =
  let buf = Buffer.create 1024 in
  Buffer.add_string buf "{\n  \"figure\": \"parallel engine\",\n  \"cells\": [\n";
  let entries = List.rev !records in
  List.iteri
    (fun i (name, domains, t) ->
      Buffer.add_string buf
        (Fmt.str "    {\"cell\": %S, \"engine\": %S, \"domains\": %d, \"median_ms\": %.4f}%s\n"
           name
           (if domains = 0 then "serial" else "parallel")
           (max 1 domains) (Util.ms t)
           (if i = List.length entries - 1 then "" else ",")))
    entries;
  Buffer.add_string buf "  ],\n  \"cold_fill\": [\n";
  let colds = List.rev !cold_records in
  List.iteri
    (fun i (name, domains, t) ->
      Buffer.add_string buf
        (Fmt.str
           "    {\"cell\": %S, \"engine\": \"cold fill\", \"domains\": %d, \"median_ms\": %.4f}%s\n"
           name domains (Util.ms t)
           (if i = List.length colds - 1 then "" else ",")))
    colds;
  Buffer.add_string buf "  ],\n  \"baseline_pre_partitioning\": [\n";
  List.iteri
    (fun i (name, domains, ms) ->
      Buffer.add_string buf
        (Fmt.str "    {\"cell\": %S, \"engine\": %S, \"domains\": %d, \"median_ms\": %.4f}%s\n"
           name
           (if domains = 0 then "serial" else "parallel")
           (max 1 domains) ms
           (if i = List.length baseline - 1 then "" else ",")))
    baseline;
  Buffer.add_string buf "  ],\n  \"baseline_pre_blit\": [\n";
  List.iteri
    (fun i (name, domains, ms) ->
      Buffer.add_string buf
        (Fmt.str "    {\"cell\": %S, \"engine\": %S, \"domains\": %d, \"median_ms\": %.4f}%s\n"
           name
           (if domains = 0 then "serial" else "parallel")
           (max 1 domains) ms
           (if i = List.length baseline_pre_blit - 1 then "" else ",")))
    baseline_pre_blit;
  Buffer.add_string buf "  ],\n  \"promotion\": [\n";
  let promos = List.rev !promo_records in
  let promo_row (name, mode, domains, t, share) last =
    Fmt.str
      "    {\"cell\": %S, \"mode\": %S, \"domains\": %d, \"median_ms\": %.4f, \
       \"skipped_morsel_share\": %.3f}%s\n"
      name mode domains (Util.ms t) share
      (if last then "" else ",")
  in
  List.iteri
    (fun i r -> Buffer.add_string buf (promo_row r (i = List.length promos - 1)))
    promos;
  (* the unpromoted warm-cache rows ARE the engine before this PR's
     promotion machinery: emit them again under the baseline key the other
     before/after curves use *)
  let pre = List.filter (fun (_, mode, _, _, _) -> mode = "unpromoted") promos in
  Buffer.add_string buf "  ],\n  \"baseline_pre_promotion\": [\n";
  List.iteri
    (fun i r -> Buffer.add_string buf (promo_row r (i = List.length pre - 1)))
    pre;
  Buffer.add_string buf
    (Fmt.str
       "  ],\n  \"metadata\": {\"recommended_domain_count\": %d, \"host_cores\": %d, \
        \"bench_max_domains\": %d}\n}\n"
       (Domain.recommended_domain_count ())
       host_cores max_domains);
  let oc = open_out path in
  output_string oc (Buffer.contents buf);
  close_out oc;
  Fmt.pr "   wrote %s (%d measurements)@." path (List.length entries)

let run_all (je : Tpch_figs.json_env) (be : Tpch_figs.bin_env) =
  let joc = je.Tpch_figs.jd.Tpch.order_count in
  let boc = be.Tpch_figs.bd.Tpch.order_count in
  let jdb = je.Tpch_figs.j_proteus and bdb = be.Tpch_figs.b_proteus in
  let q6 oc = Q.projection ~lineitem:"lineitem" ~order_count:oc ~variant:Q.Agg4 ~selectivity:0.5 in
  let q1 oc = Q.group_by ~lineitem:"lineitem" ~order_count:oc ~aggregates:4 ~selectivity:1.0 in
  let join oc =
    Q.join ~orders:"orders" ~lineitem:"lineitem" ~order_count:oc ~variant:Q.JAgg2
      ~selectivity:0.2
  in
  let rows =
    [
      cell "JSON Q6-shape (4 aggr)" jdb (q6 joc);
      cell "JSON Q1-shape (group-by)" jdb (q1 joc);
      cell "bin Q6-shape (4 aggr)" bdb (q6 boc);
      cell "bin Q1-shape (group-by)" bdb (q1 boc);
      cell "bin join (2 aggr)" bdb (join boc);
    ]
  in
  (* cold-run scaling: the cache-filling pass itself, at 1..N domains —
     since PR 5 the fill rides the morsel spine instead of forcing the
     serial fallback *)
  cold_cell "JSON Q6-shape (4 aggr)" jdb (q6 joc);
  cold_cell "JSON Q1-shape (group-by)" jdb (q1 joc);
  (* Symantec: warm the adaptive caches with one pass (cold fills run
     parallel too, but the cells below measure the warm steady state) *)
  let s =
    Symantec.generate
      ~params:
        {
          Symantec.default_params with
          json_objects = 500;
          csv_rows = 4_000;
          bin_rows = 6_000;
        }
      ()
  in
  let sdb = Proteus.Db.create () in
  Proteus.Db.register_json sdb ~name:Symantec.json_name ~element:Symantec.json_type
    ~contents:s.Symantec.json_text;
  Proteus.Db.register_csv sdb ~name:Symantec.csv_name ~element:Symantec.csv_type
    ~contents:s.Symantec.csv_text ();
  Proteus.Db.register_rows sdb ~name:Symantec.bin_name ~element:Symantec.bin_type
    s.Symantec.bin_records;
  let squeries = Symantec.queries s in
  (match List.assoc_opt "Q16" squeries with
  | Some plan -> cold_cell "Symantec Q16" sdb plan
  | None -> ());
  List.iter (fun (_, plan) -> ignore (Proteus.Db.run_plan sdb (tune plan))) squeries;
  let srows =
    List.filter_map
      (fun qname ->
        match List.assoc_opt qname squeries with
        | Some plan -> Some (cell ("Symantec " ^ qname) sdb plan)
        | None -> None)
      [ "Q16"; "Q39" ]
  in
  Util.print_table
    ~title:
      (Fmt.str "Parallel engine: serial vs morsel-parallel (max %d domains)" max_domains)
    ~systems:
      ("serial" :: List.map (fun d -> Fmt.str "%d domain(s)" d) domain_counts)
    (rows @ srows);
  Util.print_note
    "1 domain runs the identical serial engine; cells where parallel trails serial \
     on this machine indicate fewer cores than domains";
  scaling_row "bin Q6-shape (4 aggr)" bdb (q6 boc);
  scaling_row "bin join (2 aggr)" bdb (join boc);
  scaling_row "bin Q1-shape (group-by)" bdb (q1 boc);
  (* batch-size sweep for the vectorized lane over the serial engine;
     batch = 0 is the staged tuple-at-a-time lane, the ablation baseline *)
  let sweep_plan = tune (q6 boc) in
  Fmt.pr "   batch-size sweep, bin Q6-shape:";
  List.iter
    (fun bs ->
      let prepared = Proteus.Db.prepare_plan ~batch_size:bs bdb sweep_plan in
      let t = Util.measure_n 9 (fun () -> ignore (prepared.Proteus.Db.run ())) in
      records := (Fmt.str "bin Q6-shape (batch=%d)" bs, 0, t) :: !records;
      Fmt.pr " b%d=%.2fms" bs (Util.ms t))
    [ 0; 256; 1024; 4096 ];
  Fmt.pr "@.";
  promotion_cells ();
  emit_json "BENCH_engine.json"
