(* Shared benchmark machinery: timing, table rendering. The goal of every
   figure harness is the *shape* of the paper's plot — who wins, by what
   factor, where the crossover sits — so we report milliseconds per cell in
   paper-like rows. *)

let time_once f =
  let t0 = Unix.gettimeofday () in
  let r = f () in
  (r, Unix.gettimeofday () -. t0)

(* Collect garbage left over from the previous cell once per cell, so its
   major-GC pauses don't land inside this cell's samples. *)
let quiesce () = Gc.major ()

(* median-of-k; the warm-up run pays one-time costs (index builds, cache
   fills, lazy allocation) and is excluded from the median *)
let measure_n k f =
  quiesce ();
  let _, warm = time_once f in
  if warm > 0.5 then warm
  else begin
    let samples = List.sort compare (List.init k (fun _ -> snd (time_once f))) in
    List.nth samples (k / 2)
  end

(* median-of-5 for fast cells, single-shot for slow ones *)
let measure f = measure_n 5 f

let ms t = t *. 1000.

(* A figure table: header of system names, one row per (label, cells). *)
let print_table ~title ~systems rows =
  Fmt.pr "@.== %s ==@." title;
  Fmt.pr "%-26s" "";
  List.iter (fun s -> Fmt.pr "%14s" s) systems;
  Fmt.pr "@.";
  List.iter
    (fun (label, cells) ->
      Fmt.pr "%-26s" label;
      List.iter
        (fun c ->
          match c with
          | Some t -> Fmt.pr "%11.2fms " (ms t)
          | None -> Fmt.pr "%13s " "-")
        cells;
      Fmt.pr "@.")
    rows

let print_note fmt = Fmt.pr "   %s@." fmt

let selectivities = [ 0.1; 0.2; 0.5; 1.0 ]
