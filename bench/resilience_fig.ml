(* The resilience layer under an injected straggler (DESIGN.md section 15):
   what does one slow shard cost an unhedged scatter, and how much of that
   does straggler hedging claw back?

   Three cells per stall size, same data, same query, 8 shards:
   - clean: no fault — the floor;
   - stalled, unhedged: one member's build is held for stall_ms every
     query, and the gather must wait it out;
   - stalled, hedged: same fault with --hedge-ms-style hedging armed; the
     speculative duplicate builds the member cleanly and wins the race,
     so the cell should sit near the clean floor, not the stall. *)

module Plan = Proteus_algebra.Plan
module Expr = Proteus_model.Expr
module Ptype = Proteus_model.Ptype
module Monoid = Proteus_model.Monoid
module Registry = Proteus_plugin.Registry
module Hedge = Proteus_resilience.Hedge

let max_domains =
  try int_of_string (String.trim (Sys.getenv "PROTEUS_BENCH_DOMAINS")) with _ -> 4

let rows = 100_000
let shards = 8
let stall_sizes_ms = [ 50; 200 ]

let ev_type =
  Ptype.Record [ ("k", Ptype.Int); ("grp", Ptype.Int); ("price", Ptype.Float) ]

let csv_chunk lo hi =
  let buf = Buffer.create ((hi - lo) * 16) in
  for i = lo to hi - 1 do
    Buffer.add_string buf (Fmt.str "%d,%d,%d.25\n" i (i mod 7) (i mod 100))
  done;
  Buffer.contents buf

let make_db () =
  let db = Proteus.Db.create () in
  (* raw scans: member sources are built per query, so the injected stall
     fires on every measured run, not just the cold one *)
  Proteus.Db.set_caching db false;
  let per = rows / shards in
  Proteus.Db.register_sharded_csv db ~name:"events" ~element:ev_type
    ~shards:
      (List.init shards (fun s ->
           csv_chunk (s * per) (if s = shards - 1 then rows else (s + 1) * per)))
    ();
  db

let query =
  Plan.reduce
    [ Plan.agg ~name:"c" (Monoid.Primitive Monoid.Count) (Expr.int 1);
      Plan.agg ~name:"s" (Monoid.Primitive Monoid.Sum)
        (Expr.Field (Expr.var "x", "price")) ]
    (Plan.scan ~dataset:"events" ~binding:"x" ())

(* Hold one member's build for [ms] whenever the shared budget has a
   token. The measuring thunk refills the budget to 1 per run: the first
   build (the scatter's own) stalls, a hedged duplicate finds the budget
   spent and builds clean — the same asymmetry a real straggler shows a
   re-dispatch. *)
let inject_stall db ~ms =
  let budget = Atomic.make 0 in
  Registry.set_interposer
    (Proteus.Db.registry db)
    (Some
       (fun name genuine ->
         if name <> "events__s3" then genuine
         else
           fun () ->
             let rec claim () =
               let n = Atomic.get budget in
               if n <= 0 then false
               else if Atomic.compare_and_set budget n (n - 1) then true
               else claim ()
             in
             if claim () then Unix.sleepf (float_of_int ms /. 1000.);
             genuine ()));
  budget

(* (cell, stall_ms, median seconds) *)
let records : (string * int * float) list ref = ref []

let cell name ~stall_ms t =
  records := (name, stall_ms, t) :: !records;
  Fmt.pr "   %s, stall=%dms: %.2fms@." name stall_ms (Util.ms t)

let run_all () =
  Fmt.pr "@.== Resilience: straggler hedging vs an injected stall ==@.";
  let clean =
    let db = make_db () in
    Util.measure_n 9 (fun () -> ignore (Proteus.Db.run_plan ~domains:max_domains db query))
  in
  cell "clean" ~stall_ms:0 clean;
  List.iter
    (fun ms ->
      let stalled_unhedged =
        let db = make_db () in
        let budget = inject_stall db ~ms in
        Util.measure_n 5 (fun () ->
            Atomic.set budget 1;
            ignore (Proteus.Db.run_plan ~domains:max_domains db query))
      in
      cell "stalled unhedged" ~stall_ms:ms stalled_unhedged;
      let stalled_hedged =
        let db = make_db () in
        let budget = inject_stall db ~ms in
        (* floor halfway to the stall: healthy builds stay below the
           threshold (no wasted duplicates), the stalled one crosses it;
           a clean warm-up run seeds the per-member latency EWMAs so the
           3x-median arm is calibrated before measurement starts *)
        Registry.set_hedge (Proteus.Db.registry db)
          (Some (Hedge.create ~floor_ms:(float_of_int ms /. 2.) ()));
        ignore (Proteus.Db.run_plan ~domains:max_domains db query);
        Util.measure_n 5 (fun () ->
            Atomic.set budget 1;
            ignore (Proteus.Db.run_plan ~domains:max_domains db query))
      in
      cell "stalled hedged" ~stall_ms:ms stalled_hedged)
    stall_sizes_ms;
  Util.print_note
    "the unhedged cells pay the full stall every run; hedged cells should \
     track the clean floor once the stall exceeds the hedge threshold"

let splice_json path =
  let contents =
    let ic = open_in path in
    let n = in_channel_length ic in
    let s = really_input_string ic n in
    close_in ic;
    s
  in
  let cut = String.rindex contents '}' in
  let buf = Buffer.create (String.length contents + 512) in
  Buffer.add_string buf (String.sub contents 0 cut);
  Buffer.add_string buf ",\n  \"resilience_hedging\": [\n";
  let recs = List.rev !records in
  List.iteri
    (fun i (name, stall_ms, t) ->
      Buffer.add_string buf
        (Fmt.str
           "    {\"cell\": %S, \"stall_ms\": %d, \"median_ms\": %.4f}%s\n" name
           stall_ms (Util.ms t)
           (if i = List.length recs - 1 then "" else ",")))
    recs;
  Buffer.add_string buf "  ]\n}\n";
  let oc = open_out path in
  output_string oc (Buffer.contents buf);
  close_out oc;
  Fmt.pr "   spliced resilience cells into %s@." path
