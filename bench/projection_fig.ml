(* Adaptive storage 2.0 (DESIGN.md section 16): what do the three promoted
   layouts buy over the layouts that came before them?

   Three experiments, each cell median-of-k warm:

   - scrambled scan: outlier-planted data (every zone's [min,max] spans the
     whole domain) under a 1% BETWEEN band. baseline = caching without
     promotion; zone_only = promotion without projections (min/max pruning is
     powerless here); sorted = the sorted projection isolates the band's
     zones and skips the rest.
   - json slots: a hot numeric JSON path. span_decoded = caching disabled, so
     every run re-walks the format index and numparses the spans; slot = the
     promotion hook materialized a typed column straight from the spans.
   - selective join: a 100-key dimension probing a 200k fact. unarmed = no
     promotion, the probe drives every batch; armed = the build's key summary
     (min/max + Bloom) prunes probe batches wholesale. *)

module Plan = Proteus_algebra.Plan
module Expr = Proteus_model.Expr
module Ptype = Proteus_model.Ptype
module Value = Proteus_model.Value
module Monoid = Proteus_model.Monoid
module Manager = Proteus_cache.Manager
module Counters = Proteus_engine.Counters

let fact_rows = 200_000
let band_lo = 100_000
let band_n = 2_000 (* 1% of the fact *)
let dim_lo = 100_000
let dim_n = 100
let json_rows = 40_000

let fact_type =
  Ptype.Record [ ("k", Ptype.Int); ("u", Ptype.Int); ("price", Ptype.Float) ]

(* u = i except every 50th row is pinned to a domain edge: zone min/max are
   useless, value order is not *)
let u_of i =
  if i mod 50 = 0 then 0 else if i mod 50 = 25 then fact_rows - 1 else i

let fact_csv =
  let buf = Buffer.create (fact_rows * 20) in
  for i = 0 to fact_rows - 1 do
    Buffer.add_string buf (Fmt.str "%d,%d,%d.25\n" i (u_of i) (i mod 100))
  done;
  Buffer.contents buf

let json_type =
  Ptype.Record [ ("id", Ptype.Int); ("price", Ptype.Float); ("qty", Ptype.Int) ]

let json_text =
  let buf = Buffer.create (json_rows * 40) in
  for i = 0 to json_rows - 1 do
    Buffer.add_string buf
      (Fmt.str "{\"id\": %d, \"price\": %d.5, \"qty\": %d}\n" i i (i mod 7))
  done;
  Buffer.contents buf

let dim_type = Ptype.Record [ ("gid", Ptype.Int); ("w", Ptype.Int) ]

let dims =
  List.init dim_n (fun i ->
      Value.record
        [ ("gid", Value.Int (dim_lo + i)); ("w", Value.Int (2 * (dim_lo + i))) ])

let make_db ?caching () =
  let db = Proteus.Db.create ?caching () in
  Proteus.Db.register_csv db ~name:"fact" ~element:fact_type ~contents:fact_csv
    ();
  Proteus.Db.register_json db ~name:"events" ~element:json_type
    ~contents:json_text;
  Proteus.Db.register_columns_of db ~name:"dim" ~element:dim_type dims;
  db

let promote_cfg =
  { Manager.default_config with promote = true; promote_threshold = 2 }

let zone_only_cfg = { promote_cfg with promote_projections = false }
let slot_cfg = { promote_cfg with promote_threshold = 1 }

let x f = Expr.(Field (var "x", f))

let scan_query =
  Plan.reduce
    ~pred:Expr.((x "u" >=. int band_lo) &&& (x "u" <. int (band_lo + band_n)))
    [ Plan.agg ~name:"c" (Monoid.Primitive Monoid.Count) (Expr.int 1);
      Plan.agg ~name:"s" (Monoid.Primitive Monoid.Sum) (x "price") ]
    (Plan.scan ~dataset:"fact" ~binding:"x" ())

let json_query =
  Plan.reduce
    ~pred:Expr.(x "price" >=. float 10_000.)
    [ Plan.agg ~name:"s" (Monoid.Primitive Monoid.Sum) (x "price") ]
    (Plan.scan ~dataset:"events" ~binding:"x" ())

let join_query =
  Plan.reduce
    [ Plan.agg ~name:"c" (Monoid.Primitive Monoid.Count) (Expr.int 1);
      Plan.agg ~name:"w" (Monoid.Primitive Monoid.Sum)
        Expr.(Field (var "d", "w")) ]
    (Plan.join
       ~pred:Expr.(x "k" ==. Field (var "d", "gid"))
       (Plan.scan ~dataset:"fact" ~binding:"x" ())
       (Plan.scan ~dataset:"dim" ~binding:"d" ()))

(* (experiment, cell, median_s, counters snapshot of one instrumented run) *)
let records : (string * string * float * Counters.snapshot) list ref = ref []

let cell ~experiment ~name db query =
  let run () =
    ignore (Proteus.Db.run_plan ~engine:Proteus.Db.Engine_compiled
              ~batch_size:1024 db query)
  in
  (* enough passes to cross any promotion threshold and fill caches before
     the median is taken *)
  for _ = 1 to 3 do run () done;
  let t = Util.measure_n 7 run in
  Counters.reset ();
  run ();
  let s = Counters.snapshot () in
  records := (experiment, name, t, s) :: !records;
  (t, s)

let run_all () =
  Fmt.pr "@.== Adaptive storage 2.0: sorted projections, slots, join pruning ==@.";
  (* scrambled scan: baseline / zone-only / sorted projection *)
  let base_t, _ = cell ~experiment:"scrambled_scan" ~name:"baseline_pre_projection"
      (make_db ()) scan_query in
  let zone_t, zone_s = cell ~experiment:"scrambled_scan" ~name:"zone_only"
      (make_db ~caching:zone_only_cfg ()) scan_query in
  let proj_t, proj_s = cell ~experiment:"scrambled_scan" ~name:"sorted_projection"
      (make_db ~caching:promote_cfg ()) scan_query in
  let batches = (fact_rows + 1023) / 1024 in
  Fmt.pr "   baseline: %.2fms  zone-only: %.2fms (skipped %d/%d)  sorted: %.2fms (skipped %d/%d)@."
    (Util.ms base_t) (Util.ms zone_t) zone_s.Counters.morsels_skipped batches
    (Util.ms proj_t) proj_s.Counters.morsels_skipped batches;
  Fmt.pr "   sorted vs zone-only: %.1fx, skip rate %.1f%% (target: >=3x, >=90%%)@."
    (zone_t /. proj_t)
    (100. *. float_of_int proj_s.Counters.morsels_skipped /. float_of_int batches);
  (* json slots: span-decoded every run vs the pre-parsed slot column *)
  let span_db = make_db () in
  Proteus.Db.set_caching span_db false;
  let span_t, _ = cell ~experiment:"json_slots" ~name:"span_decoded" span_db
      json_query in
  let slot_t, slot_s = cell ~experiment:"json_slots" ~name:"slot_column"
      (make_db ~caching:slot_cfg ()) json_query in
  Fmt.pr "   span-decoded: %.2fms  slot: %.2fms (slot-reads=%d) — %.1fx (target >=2x)@."
    (Util.ms span_t) (Util.ms slot_t) slot_s.Counters.slot_reads
    (span_t /. slot_t);
  (* selective join: the build's key summary pruning the probe *)
  let unarmed_t, _ = cell ~experiment:"selective_join" ~name:"unarmed"
      (make_db ()) join_query in
  let armed_db = make_db ~caching:promote_cfg () in
  (* a ranged warm-up promotes the probe key, publishing its zone map *)
  let warm_key =
    Plan.reduce ~pred:Expr.(x "k" <. int 64)
      [ Plan.agg ~name:"c" (Monoid.Primitive Monoid.Count) (Expr.int 1) ]
      (Plan.scan ~dataset:"fact" ~binding:"x" ())
  in
  for _ = 1 to 3 do
    ignore (Proteus.Db.run_plan ~engine:Proteus.Db.Engine_compiled
              ~batch_size:1024 armed_db warm_key)
  done;
  let armed_t, armed_s = cell ~experiment:"selective_join" ~name:"bloom_armed"
      armed_db join_query in
  Fmt.pr "   unarmed: %.2fms  armed: %.2fms (probe-skipped=%d/%d) — %.1fx@."
    (Util.ms unarmed_t) (Util.ms armed_t)
    armed_s.Counters.probe_morsels_skipped batches (unarmed_t /. armed_t);
  Util.print_note
    "zone maps see [min,max] = the whole domain in every zone here; only the \
     value-ordered projection can isolate the band, and only the build-side \
     key summary can prune the join probe"

let splice_json path =
  let contents =
    let ic = open_in path in
    let n = in_channel_length ic in
    let s = really_input_string ic n in
    close_in ic;
    s
  in
  let cut = String.rindex contents '}' in
  let buf = Buffer.create (String.length contents + 512) in
  Buffer.add_string buf (String.sub contents 0 cut);
  Buffer.add_string buf ",\n  \"projection_layouts\": [\n";
  let recs = List.rev !records in
  List.iteri
    (fun i (experiment, name, t, s) ->
      Buffer.add_string buf
        (Fmt.str
           "    {\"experiment\": %S, \"cell\": %S, \"median_ms\": %.4f, \
            \"morsels_skipped\": %d, \"probe_morsels_skipped\": %d, \
            \"slot_reads\": %d}%s\n"
           experiment name (Util.ms t) s.Counters.morsels_skipped
           s.Counters.probe_morsels_skipped s.Counters.slot_reads
           (if i = List.length recs - 1 then "" else ",")))
    recs;
  Buffer.add_string buf "  ]\n}\n";
  let oc = open_out path in
  output_string oc (Buffer.contents buf);
  close_out oc;
  Fmt.pr "   spliced projection cells into %s@." path
