(* Unit and property tests for the data model: types, values, monoids,
   schemas, expressions. *)

open Proteus_model

let check_value = Alcotest.testable Value.pp Value.equal

(* --- generators ---------------------------------------------------------- *)

let value_gen : Value.t QCheck2.Gen.t =
  let open QCheck2.Gen in
  sized @@ fix (fun self n ->
    let base =
      oneof
        [
          return Value.Null;
          map (fun b -> Value.Bool b) bool;
          map (fun i -> Value.Int i) small_signed_int;
          map (fun f -> Value.Float f) (float_bound_inclusive 1000.0);
          map (fun s -> Value.String s) (small_string ~gen:printable);
        ]
    in
    if n <= 0 then base
    else
      frequency
        [
          (3, base);
          ( 1,
            map
              (fun vs -> Value.record (List.mapi (fun i v -> (Fmt.str "f%d" i, v)) vs))
              (list_size (int_range 0 4) (self (n / 2))) );
          (1, map Value.bag (list_size (int_range 0 4) (self (n / 2))));
        ])

(* --- Ptype --------------------------------------------------------------- *)

let test_ptype_field_ops () =
  let r = Ptype.Record [ ("a", Ptype.Int); ("b", Ptype.String) ] in
  Alcotest.(check int) "index of b" 1 (Ptype.field_index r "b");
  Alcotest.(check bool) "type of a" true (Ptype.equal (Ptype.field_type r "a") Ptype.Int);
  Alcotest.check_raises "missing field"
    (Invalid_argument "Ptype.field_type: no field z in {a: int, b: string}")
    (fun () -> ignore (Ptype.field_type r "z"))

let test_ptype_widths () =
  Alcotest.(check int) "int width" 8 (Ptype.binary_width Ptype.Int);
  Alcotest.(check int) "bool width" 1 (Ptype.binary_width Ptype.Bool);
  Alcotest.(check int) "string width" 16 (Ptype.binary_width Ptype.String)

(* --- Value --------------------------------------------------------------- *)

let test_value_accessors () =
  let r = Value.record [ ("x", Value.Int 3); ("y", Value.String "hi") ] in
  Alcotest.check check_value "field x" (Value.Int 3) (Value.field r "x");
  Alcotest.(check bool) "missing field" true (Value.field_opt r "z" = None);
  Alcotest.(check int) "to_int" 3 (Value.to_int (Value.field r "x"))

let test_value_set_dedup () =
  match Value.set [ Value.Int 2; Value.Int 1; Value.Int 2 ] with
  | Value.Coll (Ptype.Set, [ Value.Int 1; Value.Int 2 ]) -> ()
  | v -> Alcotest.failf "bad set: %a" Value.pp v

let test_value_compare_total =
  QCheck2.Test.make ~name:"compare is antisymmetric and transitive" ~count:200
    QCheck2.Gen.(triple value_gen value_gen value_gen)
    (fun (a, b, c) ->
      let sgn x = compare x 0 in
      sgn (Value.compare a b) = -sgn (Value.compare b a)
      && ((not (Value.compare a b <= 0 && Value.compare b c <= 0))
         || Value.compare a c <= 0))

let test_value_equal_consistent_hash =
  QCheck2.Test.make ~name:"equal values hash equally" ~count:200
    QCheck2.Gen.(pair value_gen value_gen)
    (fun (a, b) -> (not (Value.equal a b)) || Value.hash a = Value.hash b)

(* --- Monoid -------------------------------------------------------------- *)

let fold_prim p vs =
  let acc = Monoid.acc_create p in
  List.iter (Monoid.acc_step acc) vs;
  Monoid.acc_value acc

let test_monoid_sum_int () =
  Alcotest.check check_value "sum" (Value.Int 6)
    (fold_prim Monoid.Sum [ Value.Int 1; Value.Int 2; Value.Int 3 ])

let test_monoid_sum_widens () =
  Alcotest.check check_value "sum widens" (Value.Float 3.5)
    (fold_prim Monoid.Sum [ Value.Int 1; Value.Float 2.5 ])

let test_monoid_minmax_empty () =
  Alcotest.check check_value "min of empty" Value.Null (fold_prim Monoid.Min []);
  Alcotest.check check_value "max skips null" (Value.Int 4)
    (fold_prim Monoid.Max [ Value.Null; Value.Int 4 ])

let test_monoid_count_avg () =
  Alcotest.check check_value "count counts everything" (Value.Int 3)
    (fold_prim Monoid.Count [ Value.Int 9; Value.Null; Value.Bool true ]);
  Alcotest.check check_value "avg" (Value.Float 2.0)
    (fold_prim Monoid.Avg [ Value.Int 1; Value.Int 3 ]);
  Alcotest.check check_value "avg empty" Value.Null (fold_prim Monoid.Avg [])

let test_monoid_bool () =
  Alcotest.check check_value "all" (Value.Bool false)
    (fold_prim Monoid.All [ Value.Bool true; Value.Bool false ]);
  Alcotest.check check_value "any empty" (Value.Bool false) (fold_prim Monoid.Any [])

let test_monoid_sum_order_irrelevant =
  QCheck2.Test.make ~name:"int sum is order-insensitive" ~count:200
    QCheck2.Gen.(list small_signed_int)
    (fun xs ->
      let vs = List.map (fun i -> Value.Int i) xs in
      Value.equal (fold_prim Monoid.Sum vs) (fold_prim Monoid.Sum (List.rev vs)))

(* --- Schema -------------------------------------------------------------- *)

let test_schema_offsets () =
  let s = Schema.make [ ("a", Ptype.Int); ("b", Ptype.Bool); ("c", Ptype.String) ] in
  Alcotest.(check int) "offset a" 0 (Schema.field_offset s "a");
  Alcotest.(check int) "offset b" 8 (Schema.field_offset s "b");
  Alcotest.(check int) "offset c" 9 (Schema.field_offset s "c");
  Alcotest.(check int) "row width" 25 (Schema.row_width s);
  Alcotest.(check bool) "flat" true (Schema.is_flat s)

let test_schema_project () =
  let s = Schema.make [ ("a", Ptype.Int); ("b", Ptype.Bool) ] in
  let p = Schema.project s [ "b" ] in
  Alcotest.(check (list string)) "projected" [ "b" ] (Schema.field_names p)

let test_schema_nested_not_flat () =
  let s =
    Schema.make
      [ ("a", Ptype.Int); ("kids", Ptype.Collection (Ptype.List, Ptype.Int)) ]
  in
  Alcotest.(check bool) "not flat" false (Schema.is_flat s)

(* --- Expr ---------------------------------------------------------------- *)

let test_expr_eval_arith () =
  let open Expr in
  let env = [ ("x", Value.Int 4) ] in
  Alcotest.check check_value "int arith" (Value.Int 11)
    (eval env (int 3 +. (var "x" *. int 2)));
  Alcotest.check check_value "mixed widens" (Value.Float 6.5)
    (eval env (var "x" +. float 2.5));
  Alcotest.check check_value "null propagates" Value.Null (eval env (null +. int 1))

let test_expr_eval_cmp () =
  let open Expr in
  Alcotest.check check_value "lt" (Value.Bool true) (eval [] (int 1 <. int 2));
  Alcotest.check check_value "null cmp false" (Value.Bool false) (eval [] (null <. int 2));
  Alcotest.check check_value "int/float eq" (Value.Bool true) (eval [] (int 2 ==. float 2.))

let test_expr_eval_field_of_null () =
  let open Expr in
  Alcotest.check check_value "field of null is null" Value.Null
    (eval [ ("r", Value.Null) ] (Field (var "r", "a")))

let test_expr_like () =
  Alcotest.(check bool) "percent" true (Expr.like ~pattern:"ab%z" "abcdz");
  Alcotest.(check bool) "underscore" true (Expr.like ~pattern:"a_c" "abc");
  Alcotest.(check bool) "no match" false (Expr.like ~pattern:"a_c" "abbc");
  Alcotest.(check bool) "empty pattern" false (Expr.like ~pattern:"" "x");
  Alcotest.(check bool) "all" true (Expr.like ~pattern:"%" "anything")

let test_expr_free_vars_subst () =
  let open Expr in
  let e = Field (var "a", "x") +. var "b" in
  Alcotest.(check (list string)) "free vars" [ "a"; "b" ] (free_vars e);
  let e' = subst "b" (int 7) e in
  Alcotest.check check_value "after subst" (Value.Int 10)
    (eval [ ("a", Value.record [ ("x", Value.Int 3) ]) ] e')

let test_expr_fields_of_var () =
  let open Expr in
  let e = Field (var "a", "x") +. Field (Field (var "a", "y"), "z") in
  (match fields_of_var "a" e with
  | Some [ "x"; "y" ] -> ()
  | other ->
    Alcotest.failf "root fields: %a"
      Fmt.(option (list ~sep:(any ",") string))
      other);
  Alcotest.(check bool) "whole var escapes" true
    (fields_of_var "a" (Record_ctor [ ("w", var "a") ]) = None)

let test_expr_conjuncts () =
  let open Expr in
  let p = (var "a" ==. int 1) &&& ((var "b" ==. int 2) &&& bool true) in
  Alcotest.(check int) "split, true dropped" 2 (List.length (conjuncts p));
  Alcotest.(check bool) "conjoin of empty is true" true (Expr.eval_pred [] (conjoin []))

let test_expr_div_by_zero () =
  Alcotest.check_raises "div by zero" (Perror.Type_error "division by zero") (fun () ->
      ignore (Expr.eval [] Expr.(int 1 /. int 0)))

let test_expr_type_of () =
  let open Expr in
  let tenv = [ ("x", Ptype.Record [ ("a", Ptype.Int); ("b", Ptype.Float) ]) ] in
  Alcotest.(check bool) "int+int" true
    (Ptype.equal (type_of tenv (Field (var "x", "a") +. int 1)) Ptype.Int);
  Alcotest.(check bool) "int+float widens" true
    (Ptype.equal (type_of tenv (Field (var "x", "a") +. Field (var "x", "b"))) Ptype.Float);
  Alcotest.(check bool) "cmp is bool" true
    (Ptype.equal (type_of tenv (Field (var "x", "a") <. int 3)) Ptype.Bool)

let test_expr_short_circuit () =
  (* And must not evaluate its right side when the left is false: the right
     side here would raise a type error. *)
  let open Expr in
  let bomb = Field (int 1, "nope") in
  Alcotest.check check_value "and short-circuits" (Value.Bool false)
    (eval [] (bool false &&& bomb));
  Alcotest.check check_value "or short-circuits" (Value.Bool true)
    (eval [] (bool true ||| bomb))

(* --- Date_util ------------------------------------------------------------ *)

let test_date_roundtrip () =
  List.iter
    (fun s ->
      Alcotest.(check string) s s (Date_util.to_string (Date_util.of_string s)))
    [ "1970-01-01"; "2016-08-29"; "2000-02-29"; "1900-02-28"; "1969-12-31"; "2400-02-29" ]

let test_date_epoch () =
  Alcotest.(check int) "epoch" 0 (Date_util.of_string "1970-01-01");
  Alcotest.(check int) "next day" 1 (Date_util.of_string "1970-01-02");
  Alcotest.(check int) "before epoch" (-1) (Date_util.of_string "1969-12-31")

let test_date_invalid () =
  List.iter
    (fun bad ->
      Alcotest.(check bool) bad true
        (try
           ignore (Date_util.of_string bad);
           false
         with Perror.Parse_error _ -> true))
    [ "2016-13-01"; "2016-02-30"; "1900-02-29"; "2016/01/01"; "16-01-01"; "" ]

let date_roundtrip_prop =
  QCheck2.Test.make ~name:"date of/to roundtrip over a wide range" ~count:500
    QCheck2.Gen.(int_range (-200_000) 200_000)
    (fun days -> Date_util.of_string (Date_util.to_string days) = days)

let qsuite tests = List.map QCheck_alcotest.to_alcotest tests

let () =
  Alcotest.run "model"
    [
      ( "ptype",
        [
          Alcotest.test_case "field ops" `Quick test_ptype_field_ops;
          Alcotest.test_case "binary widths" `Quick test_ptype_widths;
        ] );
      ( "value",
        [
          Alcotest.test_case "accessors" `Quick test_value_accessors;
          Alcotest.test_case "set dedup" `Quick test_value_set_dedup;
        ]
        @ qsuite [ test_value_compare_total; test_value_equal_consistent_hash ] );
      ( "monoid",
        [
          Alcotest.test_case "sum int" `Quick test_monoid_sum_int;
          Alcotest.test_case "sum widens" `Quick test_monoid_sum_widens;
          Alcotest.test_case "min/max empty+null" `Quick test_monoid_minmax_empty;
          Alcotest.test_case "count/avg" `Quick test_monoid_count_avg;
          Alcotest.test_case "all/any" `Quick test_monoid_bool;
        ]
        @ qsuite [ test_monoid_sum_order_irrelevant ] );
      ( "schema",
        [
          Alcotest.test_case "offsets" `Quick test_schema_offsets;
          Alcotest.test_case "project" `Quick test_schema_project;
          Alcotest.test_case "nested not flat" `Quick test_schema_nested_not_flat;
        ] );
      ( "date",
        [
          Alcotest.test_case "roundtrip" `Quick test_date_roundtrip;
          Alcotest.test_case "epoch" `Quick test_date_epoch;
          Alcotest.test_case "invalid" `Quick test_date_invalid;
        ]
        @ qsuite [ date_roundtrip_prop ] );
      ( "expr",
        [
          Alcotest.test_case "arith" `Quick test_expr_eval_arith;
          Alcotest.test_case "comparisons" `Quick test_expr_eval_cmp;
          Alcotest.test_case "field of null" `Quick test_expr_eval_field_of_null;
          Alcotest.test_case "like" `Quick test_expr_like;
          Alcotest.test_case "free vars / subst" `Quick test_expr_free_vars_subst;
          Alcotest.test_case "fields_of_var" `Quick test_expr_fields_of_var;
          Alcotest.test_case "conjuncts" `Quick test_expr_conjuncts;
          Alcotest.test_case "div by zero" `Quick test_expr_div_by_zero;
          Alcotest.test_case "type_of" `Quick test_expr_type_of;
          Alcotest.test_case "short circuit" `Quick test_expr_short_circuit;
        ] );
    ]
