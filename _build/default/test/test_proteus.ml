(* End-to-end tests through the Proteus facade: SQL and comprehensions over
   heterogeneous datasets with optimization, caching and both engines. *)

open Proteus_model
open Proteus

let check_value = Alcotest.testable Value.pp Value.equal

let order_type =
  Ptype.Record
    [ ("o_orderkey", Ptype.Int); ("o_total", Ptype.Float); ("o_clerk", Ptype.String) ]

let lineitem_type =
  Ptype.Record
    [ ("l_orderkey", Ptype.Int); ("l_linenumber", Ptype.Int);
      ("l_quantity", Ptype.Int); ("l_price", Ptype.Float) ]

let sailor_type =
  Ptype.Record
    [
      ("id", Ptype.Int);
      ( "children",
        Ptype.Collection
          (Ptype.List, Ptype.Record [ ("name", Ptype.String); ("age", Ptype.Int) ]) );
    ]

let orders =
  List.init 20 (fun i ->
      Value.record
        [ ("o_orderkey", Value.Int i); ("o_total", Value.Float (float_of_int (i * 10)));
          ("o_clerk", Value.String (Fmt.str "clerk%d" (i mod 3))) ])

let lineitems =
  List.concat_map
    (fun i ->
      List.init (1 + (i mod 3)) (fun j ->
          Value.record
            [ ("l_orderkey", Value.Int i); ("l_linenumber", Value.Int (j + 1));
              ("l_quantity", Value.Int ((i + j) mod 50));
              ("l_price", Value.Float (float_of_int ((i * j) + 1))) ]))
    (List.init 20 Fun.id)

let sailors =
  List.init 10 (fun i ->
      Value.record
        [
          ("id", Value.Int i);
          ( "children",
            Value.list_
              (List.init (i mod 3) (fun j ->
                   Value.record
                     [ ("name", Value.String (Fmt.str "kid%d_%d" i j));
                       ("age", Value.Int ((i * 7) mod 30)) ])) );
        ])

let to_json records =
  String.concat "\n"
    (List.map
       (fun r -> Proteus_format.Json.to_string (Proteus_format.Json.of_value r))
       records)

(* A heterogeneous session: orders in binary columns, lineitems in CSV,
   sailors in JSON. *)
let make_db () =
  let db = Db.create () in
  Db.register_columns_of db ~name:"orders" ~element:order_type orders;
  Db.register_csv db ~name:"lineitem" ~element:lineitem_type
    ~contents:
      (Proteus_format.Csv.of_records Proteus_format.Csv.default_config
         (Schema.of_type lineitem_type) lineitems)
    ();
  Db.register_json db ~name:"sailors" ~element:sailor_type ~contents:(to_json sailors);
  db

let db = lazy (make_db ())

let both_engines name f =
  let db = Lazy.force db in
  f db Db.Engine_compiled;
  f db Db.Engine_volcano;
  ignore name

let test_sql_single_table () =
  both_engines "single" (fun db engine ->
      Alcotest.check check_value "count"
        (Value.Int (List.length (List.filter (fun r -> Value.to_int (Value.field r "l_quantity") < 10) lineitems)))
        (Db.sql ~engine db "SELECT COUNT(*) FROM lineitem WHERE l_quantity < 10"))

let test_sql_cross_format_join () =
  both_engines "join" (fun db engine ->
      (* binary orders joined with CSV lineitems *)
      let expected =
        List.length
          (List.filter (fun l -> Value.to_int (Value.field l "l_orderkey") < 10) lineitems)
      in
      Alcotest.check check_value "join count" (Value.Int expected)
        (Db.sql ~engine db
           "SELECT COUNT(*) FROM orders o JOIN lineitem l ON o_orderkey = l_orderkey WHERE o_orderkey < 10"))

let test_sql_group_by () =
  both_engines "group" (fun db engine ->
      let v =
        Db.sql ~engine db
          "SELECT l_linenumber, SUM(l_quantity) AS q FROM lineitem GROUP BY l_linenumber"
      in
      match v with
      | Value.Coll (Ptype.Bag, rows) ->
        Alcotest.(check int) "3 line numbers" 3 (List.length rows)
      | v -> Alcotest.failf "unexpected result %a" Value.pp v)

let test_comprehension_nested () =
  both_engines "nested" (fun db engine ->
      let expected =
        List.fold_left
          (fun acc s ->
            acc
            + List.length
                (List.filter
                   (fun c -> Value.to_int (Value.field c "age") > 10)
                   (Value.elements (Value.field s "children"))))
          0 sailors
      in
      Alcotest.check check_value "adult kids" (Value.Int expected)
        (Db.comprehension ~engine db
           "for { s <- sailors, c <- s.children, c.age > 10 } yield count(*)"))

let test_comprehension_three_formats () =
  both_engines "three formats" (fun db engine ->
      (* sailors (JSON) joined to orders (binary) joined to lineitems (CSV) *)
      let v =
        Db.comprehension ~engine db
          "for { s <- sailors, o <- orders, l <- lineitem, s.id = o.o_orderkey, \
           o.o_orderkey = l.l_orderkey, l.l_quantity < 40 } yield count(*)"
      in
      match v with
      | Value.Int n -> Alcotest.(check bool) "positive" true (n > 0)
      | v -> Alcotest.failf "unexpected %a" Value.pp v)

let test_engines_agree_on_sql () =
  let db = Lazy.force db in
  List.iter
    (fun q ->
      let a = Db.sql ~engine:Db.Engine_compiled db q in
      let b = Db.sql ~engine:Db.Engine_volcano db q in
      Alcotest.check check_value q a b)
    [
      "SELECT COUNT(*), MAX(l_price), SUM(l_quantity) FROM lineitem";
      "SELECT AVG(o_total) FROM orders WHERE o_orderkey >= 5";
      "SELECT o_clerk, COUNT(*) AS n FROM orders GROUP BY o_clerk";
      "SELECT COUNT(*) FROM orders o, lineitem l WHERE o.o_orderkey = l.l_orderkey AND l_linenumber = 2";
    ]

let contains hay needle =
  let n = String.length needle and h = String.length hay in
  let rec go i = i + n <= h && (String.sub hay i n = needle || go (i + 1)) in
  go 0

let test_explain_has_pushdown () =
  let db = Lazy.force db in
  let plan = Db.plan_sql db "SELECT COUNT(*) FROM lineitem WHERE l_quantity < 10" in
  let s = Proteus_algebra.Plan.to_string plan in
  Alcotest.(check bool) "select over scan" true
    (contains s "select" && contains s "scan")

let test_drop_and_requery () =
  let db = make_db () in
  ignore (Db.sql db "SELECT COUNT(*) FROM lineitem");
  Db.drop db "lineitem";
  Alcotest.(check bool) "unknown after drop" true
    (try
       ignore (Db.sql db "SELECT COUNT(*) FROM lineitem");
       false
     with Perror.Plan_error _ -> true)

let test_append () =
  let db = make_db () in
  let before = Db.sql db "SELECT COUNT(*) FROM lineitem" in
  (* caches built before the append must not leak stale rows after it *)
  ignore (Db.sql db "SELECT SUM(l_quantity) FROM lineitem");
  Db.append db ~name:"lineitem" "99,1,42,1.0\n99,2,43,2.0\n";
  Alcotest.check check_value "two more rows"
    (Value.Int (Value.to_int before + 2))
    (Db.sql db "SELECT COUNT(*) FROM lineitem");
  Alcotest.check check_value "appended rows visible"
    (Value.Int 2)
    (Db.sql db "SELECT COUNT(*) FROM lineitem WHERE l_orderkey = 99");
  Alcotest.(check bool) "binary datasets rejected" true
    (try
       Db.append db ~name:"orders" "x";
       false
     with Perror.Plan_error _ -> true)

let test_caching_toggle () =
  let db = make_db () in
  Db.set_caching db false;
  ignore (Db.comprehension db "for { s <- sailors } yield sum(s.id)");
  Alcotest.(check int) "nothing cached" 0
    (Proteus_cache.Manager.stats (Db.cache_manager db)).Proteus_cache.Manager.field_stores;
  Db.set_caching db true;
  ignore (Db.comprehension db "for { s <- sailors } yield sum(s.id)");
  Alcotest.(check bool) "cached after enabling" true
    ((Proteus_cache.Manager.stats (Db.cache_manager db)).Proteus_cache.Manager.field_stores
    > 0)

let test_order_by_limit () =
  let db = Lazy.force db in
  (* top-3 most expensive lineitems *)
  let v =
    Db.sql db
      "SELECT l_orderkey, l_price FROM lineitem ORDER BY l_price DESC, l_orderkey ASC LIMIT 3"
  in
  let expected =
    lineitems
    |> List.map (fun l ->
           (Value.to_float (Value.field l "l_price"), Value.to_int (Value.field l "l_orderkey")))
    |> List.sort (fun (pa, ka) (pb, kb) ->
           match Float.compare pb pa with 0 -> Int.compare ka kb | c -> c)
    |> List.filteri (fun i _ -> i < 3)
    |> List.map (fun (p, k) ->
           Value.record [ ("l_orderkey", Value.Int k); ("l_price", Value.Float p) ])
    |> Value.bag
  in
  Alcotest.check check_value "top-3" expected v

let test_order_by_hidden_key () =
  (* ORDER BY an expression that is not in the select list *)
  let db = Lazy.force db in
  let v = Db.sql db "SELECT l_orderkey FROM lineitem ORDER BY l_price DESC LIMIT 1" in
  let best =
    List.fold_left
      (fun acc l -> match acc with
        | None -> Some l
        | Some b ->
          if Value.to_float (Value.field l "l_price") > Value.to_float (Value.field b "l_price")
          then Some l else acc)
      None lineitems
  in
  Alcotest.check check_value "argmax"
    (Value.bag [ Value.field (Option.get best) "l_orderkey" |> fun k ->
                 Value.record [ ("l_orderkey", k) ] ])
    v

let test_order_by_group () =
  let db = Lazy.force db in
  let v =
    Db.sql db
      "SELECT o_clerk, COUNT(*) AS n FROM orders GROUP BY o_clerk ORDER BY n DESC, o_clerk ASC"
  in
  match Value.elements v with
  | first :: _ ->
    (* clerk0 serves orders 0,3,6,9,12,15,18 = 7; others 6 and 7? 20 orders mod 3 *)
    Alcotest.check check_value "largest group first"
      (Value.record [ ("o_clerk", Value.String "clerk0"); ("n", Value.Int 7) ])
      first
  | [] -> Alcotest.fail "empty result"

let test_limit_without_order () =
  let db = Lazy.force db in
  match Db.sql db "SELECT l_orderkey FROM lineitem LIMIT 5" with
  | Value.Coll (_, rows) -> Alcotest.(check int) "5 rows" 5 (List.length rows)
  | v -> Alcotest.failf "unexpected %a" Value.pp v

let test_order_engines_agree () =
  let db = Lazy.force db in
  let q = "SELECT l_orderkey, l_quantity FROM lineitem WHERE l_quantity < 20 ORDER BY l_quantity DESC, l_orderkey LIMIT 8" in
  Alcotest.check check_value "engines agree"
    (Db.sql ~engine:Db.Engine_compiled db q)
    (Db.sql ~engine:Db.Engine_volcano db q)

let test_distinct () =
  let db = Lazy.force db in
  let v = Db.sql db "SELECT DISTINCT o_clerk FROM orders" in
  match v with
  | Value.Coll (Ptype.Set, elems) ->
    Alcotest.(check int) "3 distinct clerks" 3 (List.length elems)
  | v -> Alcotest.failf "expected a set, got %a" Value.pp v

let test_having () =
  let db = Lazy.force db in
  let v =
    Db.sql db
      "SELECT o_clerk, COUNT(*) AS n FROM orders GROUP BY o_clerk HAVING n >= 7"
  in
  (* 20 orders over 3 clerks: clerk0 gets 7, clerk1 gets 7, clerk2 gets 6 *)
  Alcotest.(check int) "two groups survive" 2 (List.length (Value.elements v));
  Alcotest.(check bool) "having without group rejected" true
    (try
       ignore (Db.sql db "SELECT COUNT(*) FROM orders HAVING n > 1");
       false
     with Perror.Plan_error _ -> true)

let test_having_with_order () =
  let db = Lazy.force db in
  let v =
    Db.sql db
      "SELECT o_clerk, COUNT(*) AS n FROM orders GROUP BY o_clerk HAVING n >= 7 \
       ORDER BY o_clerk DESC LIMIT 1"
  in
  Alcotest.check check_value "combined clauses"
    (Value.bag [ Value.record [ ("o_clerk", Value.String "clerk1"); ("n", Value.Int 7) ] ])
    v

let test_date_type () =
  let db = Db.create () in
  Db.register_csv db ~name:"events"
    ~element:(Ptype.Record [ ("eid", Ptype.Int); ("day", Ptype.Date) ])
    ~contents:"1,2016-08-29\n2,2016-09-05\n3,2015-12-31\n" ();
  Alcotest.check check_value "date comparison" (Value.Int 2)
    (Db.sql db "SELECT COUNT(*) FROM events WHERE day >= DATE '2016-01-01'");
  Alcotest.check check_value "date equality" (Value.Int 1)
    (Db.sql db "SELECT COUNT(*) FROM events WHERE day = DATE '2016-09-05'")

(* --- typespec ---------------------------------------------------------------- *)

let test_typespec_roundtrip () =
  List.iter
    (fun spec ->
      let ty = Typespec.parse spec in
      Alcotest.(check string) spec spec (Typespec.render ty))
    [
      "id:int,name:string";
      "a:float?,b:bool,c:date";
      "id:int,children:[name:string,age:int]";
      "x:{y:int,z:[w:float]}";
    ]

let test_typespec_example () =
  match Typespec.parse "id:int,children:[name:string,age:int]" with
  | Ptype.Record [ ("id", Ptype.Int); ("children", Ptype.Collection (Ptype.List, Ptype.Record [ ("name", Ptype.String); ("age", Ptype.Int) ])) ] ->
    ()
  | ty -> Alcotest.failf "unexpected type %a" Ptype.pp ty

let test_typespec_errors () =
  List.iter
    (fun bad ->
      Alcotest.(check bool) bad true
        (try
           ignore (Typespec.parse bad);
           false
         with Perror.Parse_error _ -> true))
    [ ""; "a"; "a:"; "a:frob"; "a:int,"; "a:[b:int"; "a:int junk" ]

(* --- output ------------------------------------------------------------------ *)

let test_output_json () =
  let v =
    Value.bag
      [ Value.record [ ("a", Value.Int 1) ]; Value.record [ ("a", Value.Int 2) ] ]
  in
  Alcotest.(check string) "json lines" "{\"a\":1}\n{\"a\":2}\n" (Output.to_json v);
  Alcotest.(check string) "scalar" "7" (Output.to_json (Value.Int 7))

let test_output_csv () =
  let v =
    Value.bag
      [
        Value.record [ ("a", Value.Int 1); ("b", Value.String "x,y") ];
        Value.record [ ("a", Value.Int 2); ("b", Value.String "z") ];
      ]
  in
  Alcotest.(check string) "csv" "a,b\n1,\"x,y\"\n2,z\n" (Output.to_csv v);
  Alcotest.(check bool) "nested rejected" true
    (try
       ignore (Output.to_csv (Value.bag [ Value.record [ ("n", Value.bag [] ) ] ]));
       true (* empty collection is fine *)
     with Perror.Type_error _ -> true)

let test_output_table () =
  let v = Value.bag [ Value.record [ ("name", Value.String "bob"); ("n", Value.Int 3) ] ] in
  let s = Output.to_table v in
  Alcotest.(check bool) "has header" true (contains s "name");
  Alcotest.(check bool) "has row" true (contains s "bob")

(* --- prepared queries + stats refresh --------------------------------------- *)

let test_prepare_sql () =
  let db = Lazy.force db in
  let p = Db.prepare_sql db "SELECT COUNT(*) FROM lineitem WHERE l_quantity < 10" in
  Alcotest.(check bool) "compile time measured" true (p.Db.compile_seconds >= 0.0);
  let r1 = p.Db.run () and r2 = p.Db.run () in
  Alcotest.check check_value "re-runnable" r1 r2;
  Alcotest.check check_value "same as one-shot" r1
    (Db.sql db "SELECT COUNT(*) FROM lineitem WHERE l_quantity < 10")

let test_refresh_stats () =
  let db = make_db () in
  ignore (Db.sql db "SELECT COUNT(*) FROM lineitem");
  Db.refresh_stats db;
  let stats = Proteus_catalog.Catalog.stats (Db.catalog db) "lineitem" in
  Alcotest.(check bool) "cardinality present" true
    (Proteus_catalog.Stats.cardinality stats = Some (List.length lineitems));
  (* and querying still works afterwards *)
  Alcotest.check check_value "still queryable"
    (Value.Int (List.length lineitems))
    (Db.sql db "SELECT COUNT(*) FROM lineitem")

(* --- schema inference --------------------------------------------------------- *)

let test_infer_json () =
  let contents =
    {|{"id": 1, "name": "a", "score": 0.5, "tags": [{"k": "x"}], "extra": 7}
{"id": 2, "name": "b", "score": 1, "tags": []}
{"id": 3, "name": "c", "score": 2.5, "tags": [{"k": "y"}], "note": null}|}
  in
  let ty = Typeinfer.of_json contents in
  (match ty with
  | Ptype.Record fields ->
    let f n = List.assoc n fields in
    Alcotest.(check bool) "id int" true (Ptype.equal (f "id") Ptype.Int);
    Alcotest.(check bool) "score widened to float" true
      (Ptype.equal (f "score") Ptype.Float);
    Alcotest.(check bool) "extra optional" true
      (Ptype.equal (f "extra") (Ptype.Option Ptype.Int));
    Alcotest.(check bool) "tags nested" true
      (Ptype.equal (f "tags")
         (Ptype.Collection (Ptype.List, Ptype.Record [ ("k", Ptype.String) ])))
  | t -> Alcotest.failf "expected record, got %a" Ptype.pp t);
  (* and the inferred dataset is queryable *)
  let db = Db.create () in
  let ty' = Db.register_json_inferred db ~name:"inferred" ~contents in
  Alcotest.(check bool) "same type" true (Ptype.equal ty ty');
  Alcotest.check check_value "sum over inferred schema" (Value.Float 4.0)
    (Db.sql db "SELECT SUM(score) FROM inferred")

let test_infer_json_conflict () =
  Alcotest.(check bool) "conflicting field rejected" true
    (try
       ignore (Typeinfer.of_json {|{"a": 1}
{"a": {"b": 2}}|});
       false
     with Perror.Type_error _ -> true)

let test_infer_csv () =
  let contents = "id,price,day,label,flag\n1,2.5,2016-01-02,x,true\n2,3,2016-02-03,,false\n" in
  let db = Db.create () in
  let ty = Db.register_csv_inferred db ~name:"inferred_csv" ~contents () in
  (match ty with
  | Ptype.Record fields ->
    let f n = List.assoc n fields in
    Alcotest.(check bool) "id int" true (Ptype.equal (f "id") Ptype.Int);
    Alcotest.(check bool) "price float (3 parses as int but 2.5 forces float)" true
      (Ptype.equal (f "price") Ptype.Float);
    Alcotest.(check bool) "day date" true (Ptype.equal (f "day") Ptype.Date);
    Alcotest.(check bool) "label optional string" true
      (Ptype.equal (f "label") (Ptype.Option Ptype.String));
    Alcotest.(check bool) "flag bool" true (Ptype.equal (f "flag") Ptype.Bool)
  | t -> Alcotest.failf "expected record, got %a" Ptype.pp t);
  Alcotest.check check_value "queryable" (Value.Int 1)
    (Db.sql db "SELECT COUNT(*) FROM inferred_csv WHERE day >= DATE '2016-02-01'")

(* --- failure injection ------------------------------------------------------ *)

let test_malformed_inputs () =
  (* malformed raw files must fail with a parse error on first access, not
     crash or silently truncate *)
  let fails register =
    let db = Db.create () in
    register db;
    try
      ignore (Db.sql db "SELECT COUNT(*) FROM broken");
      false
    with Perror.Parse_error _ -> true
  in
  let int2 = Ptype.Record [ ("a", Ptype.Int); ("b", Ptype.Int) ] in
  Alcotest.(check bool) "ragged csv" true
    (fails (fun db -> Db.register_csv db ~name:"broken" ~element:int2 ~contents:"1,2\n3\n" ()));
  Alcotest.(check bool) "truncated json" true
    (fails (fun db -> Db.register_json db ~name:"broken" ~element:int2 ~contents:"{\"a\":1,"));
  Alcotest.(check bool) "garbage csv int" true
    (fails (fun db ->
         Db.register_csv db ~name:"broken" ~element:int2 ~contents:"1,xyz\n" ()))

let test_type_mismatch () =
  (* a declared-Int JSON field holding a string fails loudly when read *)
  let db = Db.create () in
  Db.register_json db ~name:"odd"
    ~element:(Ptype.Record [ ("a", Ptype.Int) ])
    ~contents:{|{"a": "not a number"}|};
  Alcotest.(check bool) "type error surfaced" true
    (try
       ignore (Db.sql db "SELECT SUM(a) FROM odd");
       false
     with Perror.Parse_error _ | Perror.Type_error _ -> true)

let test_missing_file () =
  let db = Db.create () in
  Db.register_json_file db ~name:"ghost"
    ~element:(Ptype.Record [ ("a", Ptype.Int) ])
    ~path:"/nonexistent/ghost.json";
  Alcotest.(check bool) "missing file surfaced" true
    (try
       ignore (Db.sql db "SELECT COUNT(*) FROM ghost");
       false
     with Sys_error _ -> true)

let () =
  Alcotest.run "proteus"
    [
      ( "typespec",
        [
          Alcotest.test_case "roundtrip" `Quick test_typespec_roundtrip;
          Alcotest.test_case "example" `Quick test_typespec_example;
          Alcotest.test_case "errors" `Quick test_typespec_errors;
        ] );
      ( "output",
        [
          Alcotest.test_case "json" `Quick test_output_json;
          Alcotest.test_case "csv" `Quick test_output_csv;
          Alcotest.test_case "table" `Quick test_output_table;
        ] );
      ( "prepared",
        [
          Alcotest.test_case "prepare sql" `Quick test_prepare_sql;
          Alcotest.test_case "refresh stats" `Quick test_refresh_stats;
        ] );
      ( "facade",
        [
          Alcotest.test_case "sql single table" `Quick test_sql_single_table;
          Alcotest.test_case "cross-format join" `Quick test_sql_cross_format_join;
          Alcotest.test_case "group by" `Quick test_sql_group_by;
          Alcotest.test_case "nested comprehension" `Quick test_comprehension_nested;
          Alcotest.test_case "three formats" `Quick test_comprehension_three_formats;
          Alcotest.test_case "engines agree" `Quick test_engines_agree_on_sql;
          Alcotest.test_case "explain" `Quick test_explain_has_pushdown;
          Alcotest.test_case "drop and requery" `Quick test_drop_and_requery;
          Alcotest.test_case "append" `Quick test_append;
          Alcotest.test_case "caching toggle" `Quick test_caching_toggle;
          Alcotest.test_case "order by + limit" `Quick test_order_by_limit;
          Alcotest.test_case "order by hidden key" `Quick test_order_by_hidden_key;
          Alcotest.test_case "order by over group" `Quick test_order_by_group;
          Alcotest.test_case "limit without order" `Quick test_limit_without_order;
          Alcotest.test_case "order engines agree" `Quick test_order_engines_agree;
          Alcotest.test_case "distinct" `Quick test_distinct;
          Alcotest.test_case "having" `Quick test_having;
          Alcotest.test_case "having + order" `Quick test_having_with_order;
          Alcotest.test_case "date type" `Quick test_date_type;
          Alcotest.test_case "malformed inputs" `Quick test_malformed_inputs;
          Alcotest.test_case "type mismatch" `Quick test_type_mismatch;
          Alcotest.test_case "missing file" `Quick test_missing_file;
          Alcotest.test_case "infer json" `Quick test_infer_json;
          Alcotest.test_case "infer json conflict" `Quick test_infer_json_conflict;
          Alcotest.test_case "infer csv" `Quick test_infer_csv;
        ] );
    ]
