(* Tests for the monoid comprehension calculus, its normalizer, the nested
   relational algebra, and the calculus->algebra translation. The key
   properties: normalization preserves evaluation, and the algebra plan
   evaluates to the same result as the calculus. *)

open Proteus_model
open Proteus_calculus
module Plan = Proteus_algebra.Plan
module Interp = Proteus_algebra.Interp
module Fingerprint = Proteus_algebra.Fingerprint

let check_value = Alcotest.testable Value.pp Value.equal

(* --- shared fixtures ----------------------------------------------------- *)

let sailors =
  [
    Value.record
      [
        ("id", Value.Int 1);
        ( "children",
          Value.list_
            [
              Value.record [ ("name", Value.String "ann"); ("age", Value.Int 20) ];
              Value.record [ ("name", Value.String "bob"); ("age", Value.Int 10) ];
            ] );
      ];
    Value.record
      [
        ("id", Value.Int 2);
        ( "children",
          Value.list_
            [ Value.record [ ("name", Value.String "cat"); ("age", Value.Int 30) ] ] );
      ];
    Value.record [ ("id", Value.Int 3); ("children", Value.list_ []) ];
  ]

let ships =
  [
    Value.record
      [ ("name", Value.String "K1"); ("personnel", Value.list_ [ Value.Int 1 ]) ];
    Value.record
      [
        ("name", Value.String "K2");
        ("personnel", Value.list_ [ Value.Int 2; Value.Int 3 ]);
      ];
  ]

let numbers = List.map (fun i -> Value.record [ ("v", Value.Int i) ]) [ 1; 2; 3; 4; 5 ]

let lookup name =
  match name with
  | "Sailor" -> sailors
  | "Ship" -> ships
  | "numbers" -> numbers
  | other -> Perror.plan_error "no dataset %s" other

(* Example 3.1 of the paper. *)
let example_31 : Calc.t =
  let open Expr in
  {
    Calc.quals =
      [
        Calc.Gen ("s1", Calc.Dataset "Sailor");
        Calc.Gen ("c", Calc.Path (Field (var "s1", "children")));
        Calc.Gen ("s2", Calc.Dataset "Ship");
        Calc.Gen ("p", Calc.Path (Field (var "s2", "personnel")));
        Calc.Pred (Field (var "s1", "id") ==. var "p");
        Calc.Pred (Field (var "c", "age") >. int 18);
      ];
    output =
      Calc.Collect
        ( Ptype.Bag,
          Expr.Record_ctor
            [
              ("id", Field (var "s1", "id"));
              ("ship", Field (var "s2", "name"));
              ("child", Field (var "c", "name"));
            ] );
  }

let expected_31 =
  Value.bag
    [
      Value.record
        [ ("id", Value.Int 1); ("ship", Value.String "K1"); ("child", Value.String "ann") ];
      Value.record
        [ ("id", Value.Int 2); ("ship", Value.String "K2"); ("child", Value.String "cat") ];
    ]

let sort_bag v =
  match v with
  | Value.Coll (Ptype.Bag, es) -> Value.Coll (Ptype.Bag, List.sort Value.compare es)
  | v -> v

let check_same_bag msg a b = Alcotest.check check_value msg (sort_bag a) (sort_bag b)

(* --- calculus direct evaluation ------------------------------------------ *)

let test_calc_example31 () =
  check_same_bag "example 3.1" expected_31 (Calc.eval ~lookup example_31)

let test_calc_aggregate () =
  let c =
    {
      Calc.quals =
        [ Calc.Gen ("n", Calc.Dataset "numbers");
          Calc.Pred Expr.(Field (var "n", "v") >. int 2) ];
      output = Calc.Aggregate [ ("cnt", Monoid.Count, Expr.int 1) ];
    }
  in
  Alcotest.check check_value "count" (Value.Int 3) (Calc.eval ~lookup c)

let test_calc_group () =
  let c =
    {
      Calc.quals = [ Calc.Gen ("n", Calc.Dataset "numbers") ];
      output =
        Calc.Group
          {
            keys = [ ("parity", Expr.(Binop (Mod, Field (var "n", "v"), int 2))) ];
            aggs = [ ("total", Monoid.Sum, Expr.Field (Expr.var "n", "v")) ];
          };
    }
  in
  check_same_bag "grouping"
    (Value.bag
       [
         Value.record [ ("parity", Value.Int 1); ("total", Value.Int 9) ];
         Value.record [ ("parity", Value.Int 0); ("total", Value.Int 6) ];
       ])
    (Calc.eval ~lookup c)

let test_calc_validate_unbound () =
  let bad =
    {
      Calc.quals = [ Calc.Gen ("n", Calc.Dataset "numbers") ];
      output = Calc.Collect (Ptype.Bag, Expr.var "zzz");
    }
  in
  Alcotest.(check bool) "unbound rejected" true
    (try
       Calc.validate bad;
       false
     with Perror.Plan_error _ -> true)

(* --- normalization ------------------------------------------------------- *)

let test_normalize_splits_conjunction () =
  let c =
    {
      Calc.quals =
        [
          Calc.Gen ("n", Calc.Dataset "numbers");
          Calc.Pred
            Expr.(
              (Field (var "n", "v") >. int 1) &&& (Field (var "n", "v") <. int 5));
        ];
      output = Calc.Aggregate [ ("c", Monoid.Count, Expr.int 1) ];
    }
  in
  let c' = Normalize.run c in
  Alcotest.(check int) "3 qualifiers" 3 (List.length c'.Calc.quals);
  Alcotest.check check_value "same result" (Calc.eval ~lookup c) (Calc.eval ~lookup c')

let test_normalize_unnests_subquery () =
  (* x <- bag{ n.v | n <- numbers, n.v > 2 } ; x < 5 -> spliced *)
  let inner =
    {
      Calc.quals =
        [ Calc.Gen ("n", Calc.Dataset "numbers");
          Calc.Pred Expr.(Field (var "n", "v") >. int 2) ];
      output = Calc.Collect (Ptype.Bag, Expr.Field (Expr.var "n", "v"));
    }
  in
  let outer =
    {
      Calc.quals =
        [ Calc.Gen ("x", Calc.Sub inner); Calc.Pred Expr.(var "x" <. int 5) ];
      output = Calc.Collect (Ptype.Bag, Expr.var "x");
    }
  in
  let c' = Normalize.run outer in
  let no_subs =
    List.for_all
      (function Calc.Gen (_, Calc.Sub _) -> false | _ -> true)
      c'.Calc.quals
  in
  Alcotest.(check bool) "subquery eliminated" true no_subs;
  check_same_bag "same result" (Calc.eval ~lookup outer) (Calc.eval ~lookup c')

let test_normalize_false_pred () =
  let c =
    {
      Calc.quals =
        [ Calc.Gen ("n", Calc.Dataset "numbers");
          Calc.Pred Expr.(bool true &&& bool false) ];
      output = Calc.Aggregate [ ("c", Monoid.Count, Expr.int 1) ];
    }
  in
  let c' = Normalize.run c in
  Alcotest.check check_value "zero rows" (Value.Int 0) (Calc.eval ~lookup c')

let test_fold_constants () =
  let open Expr in
  let e = Normalize.fold_constants ((int 2 +. int 3) *. var "x") in
  Alcotest.(check bool) "folded" true (Expr.equal e (int 5 *. var "x"));
  (* division by zero must not be folded away into a crash at rewrite time *)
  let e2 = Normalize.fold_constants (int 1 /. int 0) in
  Alcotest.(check bool) "unsafe not folded" true (Expr.equal e2 (int 1 /. int 0))

(* --- algebra: reference interpreter -------------------------------------- *)

let test_interp_scan_select () =
  let plan =
    Plan.select
      Expr.(Field (var "n", "v") >=. int 4)
      (Plan.scan ~dataset:"numbers" ~binding:"n" ())
  in
  check_same_bag "filtered"
    (Value.bag
       [
         Value.record [ ("v", Value.Int 4) ];
         Value.record [ ("v", Value.Int 5) ];
       ])
    (Interp.run ~lookup plan)

let test_interp_join () =
  let plan =
    Plan.join
      ~pred:Expr.(Field (var "a", "v") ==. Field (var "b", "v"))
      (Plan.scan ~dataset:"numbers" ~binding:"a" ())
      (Plan.scan ~dataset:"numbers" ~binding:"b" ())
  in
  let result = Interp.run ~lookup plan in
  Alcotest.(check int) "5 matches" 5 (List.length (Value.elements result))

let test_interp_outer_join () =
  let plan =
    Plan.join ~kind:Plan.Left_outer
      ~pred:Expr.(Field (var "a", "v") ==. Field (var "b", "v") &&& (Field (var "b", "v") <. int 3))
      (Plan.scan ~dataset:"numbers" ~binding:"a" ())
      (Plan.scan ~dataset:"numbers" ~binding:"b" ())
  in
  let rows = Value.elements (Interp.run ~lookup plan) in
  Alcotest.(check int) "every left row survives" 5 (List.length rows);
  let nulls =
    List.filter (fun r -> Value.is_null (Value.field r "b")) rows
  in
  Alcotest.(check int) "unmatched padded" 3 (List.length nulls)

let test_interp_unnest () =
  let plan =
    Plan.reduce
      [ Plan.agg ~name:"c" (Monoid.Primitive Monoid.Count) (Expr.int 1) ]
      (Plan.unnest
         ~pred:Expr.(Field (var "c", "age") >. int 18)
         ~path:Expr.(Field (var "s", "children"))
         ~binding:"c"
         (Plan.scan ~dataset:"Sailor" ~binding:"s" ()))
  in
  Alcotest.check check_value "adult children" (Value.Int 2) (Interp.run ~lookup plan)

let test_interp_outer_unnest () =
  let plan =
    Plan.unnest ~outer:true
      ~path:Expr.(Field (var "s", "children"))
      ~binding:"c"
      (Plan.scan ~dataset:"Sailor" ~binding:"s" ())
  in
  let rows = Value.elements (Interp.run ~lookup plan) in
  (* sailor 3 has no children but must still appear *)
  Alcotest.(check int) "rows" 4 (List.length rows)

let test_interp_nest () =
  let plan =
    Plan.nest
      ~keys:[ ("parity", Expr.(Binop (Mod, Field (var "n", "v"), int 2))) ]
      ~aggs:[ Plan.agg ~name:"total" (Monoid.Primitive Monoid.Sum) Expr.(Field (var "n", "v")) ]
      ~binding:"g"
      (Plan.scan ~dataset:"numbers" ~binding:"n" ())
  in
  check_same_bag "nest"
    (Value.bag
       [
         Value.record [ ("parity", Value.Int 1); ("total", Value.Int 9) ];
         Value.record [ ("parity", Value.Int 0); ("total", Value.Int 6) ];
       ])
    (Interp.run ~lookup plan)

let test_interp_reduce_multi_agg () =
  let plan =
    Plan.reduce
      [
        Plan.agg ~name:"cnt" (Monoid.Primitive Monoid.Count) (Expr.int 1);
        Plan.agg ~name:"mx" (Monoid.Primitive Monoid.Max) Expr.(Field (var "n", "v"));
      ]
      (Plan.scan ~dataset:"numbers" ~binding:"n" ())
  in
  Alcotest.check check_value "record of aggs"
    (Value.record [ ("cnt", Value.Int 5); ("mx", Value.Int 5) ])
    (Interp.run ~lookup plan)

let test_plan_validate () =
  let bad =
    Plan.select Expr.(var "zzz" >. int 0) (Plan.scan ~dataset:"numbers" ~binding:"n" ())
  in
  Alcotest.(check bool) "unbound var rejected" true
    (try
       Plan.validate bad;
       false
     with Perror.Plan_error _ -> true)

(* --- calculus -> algebra ------------------------------------------------- *)

let translate c = To_algebra.run (Normalize.run c)

let test_to_algebra_example31 () =
  let plan = translate example_31 in
  Plan.validate plan;
  check_same_bag "algebra agrees with calculus" expected_31 (Interp.run ~lookup plan)

let test_to_algebra_introduces_unnest () =
  let plan = translate example_31 in
  let rec count_unnests (p : Plan.t) =
    (match p with Plan.Unnest _ -> 1 | _ -> 0)
    + List.fold_left (fun acc c -> acc + count_unnests c) 0 (Plan.children p)
  in
  Alcotest.(check int) "two unnest operators (Figure 1)" 2 (count_unnests plan)

let test_to_algebra_group () =
  let c =
    {
      Calc.quals = [ Calc.Gen ("n", Calc.Dataset "numbers") ];
      output =
        Calc.Group
          {
            keys = [ ("parity", Expr.(Binop (Mod, Field (var "n", "v"), int 2))) ];
            aggs = [ ("total", Monoid.Sum, Expr.Field (Expr.var "n", "v")) ];
          };
    }
  in
  check_same_bag "group translation" (Calc.eval ~lookup c) (Interp.run ~lookup (translate c))

(* Random single-dataset comprehensions: calculus eval == algebra eval. *)
let comp_gen : Calc.t QCheck2.Gen.t =
  let open QCheck2.Gen in
  let field = Expr.Field (Expr.var "n", "v") in
  let pred_gen =
    oneof
      [
        map (fun k -> Expr.(field >. int k)) (int_range 0 6);
        map (fun k -> Expr.(field <. int k)) (int_range 0 6);
        map (fun k -> Expr.(Binop (Mod, field, int 2) ==. int k)) (int_range 0 1);
      ]
  in
  let output_gen =
    oneof
      [
        return (Calc.Collect (Ptype.Bag, field));
        return (Calc.Aggregate [ ("s", Monoid.Sum, field) ]);
        return (Calc.Aggregate [ ("c", Monoid.Count, Expr.int 1) ]);
        return
          (Calc.Group
             {
               keys = [ ("p", Expr.(Binop (Mod, field, int 2))) ];
               aggs = [ ("m", Monoid.Max, field) ];
             });
      ]
  in
  map2
    (fun preds output ->
      {
        Calc.quals =
          Calc.Gen ("n", Calc.Dataset "numbers")
          :: List.map (fun p -> Calc.Pred p) preds;
        output;
      })
    (list_size (int_range 0 3) pred_gen)
    output_gen

let calc_algebra_agree_prop =
  QCheck2.Test.make ~name:"calculus eval == algebra eval" ~count:200 comp_gen
    (fun c ->
      let direct = Calc.eval ~lookup c in
      let via_algebra = Interp.run ~lookup (translate c) in
      Value.equal (sort_bag direct) (sort_bag via_algebra))

let normalize_preserves_prop =
  QCheck2.Test.make ~name:"normalization preserves evaluation" ~count:200 comp_gen
    (fun c ->
      Value.equal (sort_bag (Calc.eval ~lookup c))
        (sort_bag (Calc.eval ~lookup (Normalize.run c))))

(* --- fingerprints -------------------------------------------------------- *)

let test_fingerprint_alpha_equivalence () =
  let mk b =
    Plan.select
      Expr.(Field (var b, "v") >. int 2)
      (Plan.scan ~dataset:"numbers" ~binding:b ())
  in
  Alcotest.(check string) "alpha-equivalent plans collide"
    (Fingerprint.plan (mk "x")) (Fingerprint.plan (mk "y"));
  let other =
    Plan.select
      Expr.(Field (var "x", "v") >. int 3)
      (Plan.scan ~dataset:"numbers" ~binding:"x" ())
  in
  Alcotest.(check bool) "different predicate differs" true
    (Fingerprint.plan (mk "x") <> Fingerprint.plan other)

let test_fingerprint_expr () =
  Alcotest.(check string) "expr fingerprint renames binding"
    (Fingerprint.expr ~binding:"a" Expr.(Field (var "a", "x")))
    (Fingerprint.expr ~binding:"b" Expr.(Field (var "b", "x")))

let qsuite tests = List.map QCheck_alcotest.to_alcotest tests

let () =
  Alcotest.run "calculus"
    [
      ( "calc",
        [
          Alcotest.test_case "example 3.1" `Quick test_calc_example31;
          Alcotest.test_case "aggregate" `Quick test_calc_aggregate;
          Alcotest.test_case "group" `Quick test_calc_group;
          Alcotest.test_case "validate unbound" `Quick test_calc_validate_unbound;
        ] );
      ( "normalize",
        [
          Alcotest.test_case "splits conjunctions" `Quick test_normalize_splits_conjunction;
          Alcotest.test_case "unnests subqueries" `Quick test_normalize_unnests_subquery;
          Alcotest.test_case "false predicate" `Quick test_normalize_false_pred;
          Alcotest.test_case "constant folding" `Quick test_fold_constants;
        ]
        @ qsuite [ normalize_preserves_prop ] );
      ( "interp",
        [
          Alcotest.test_case "scan+select" `Quick test_interp_scan_select;
          Alcotest.test_case "join" `Quick test_interp_join;
          Alcotest.test_case "outer join" `Quick test_interp_outer_join;
          Alcotest.test_case "unnest" `Quick test_interp_unnest;
          Alcotest.test_case "outer unnest" `Quick test_interp_outer_unnest;
          Alcotest.test_case "nest" `Quick test_interp_nest;
          Alcotest.test_case "multi-agg reduce" `Quick test_interp_reduce_multi_agg;
          Alcotest.test_case "validate" `Quick test_plan_validate;
        ] );
      ( "to_algebra",
        [
          Alcotest.test_case "example 3.1" `Quick test_to_algebra_example31;
          Alcotest.test_case "unnest operators" `Quick test_to_algebra_introduces_unnest;
          Alcotest.test_case "group" `Quick test_to_algebra_group;
        ]
        @ qsuite [ calc_algebra_agree_prop ] );
      ( "fingerprint",
        [
          Alcotest.test_case "alpha equivalence" `Quick test_fingerprint_alpha_equivalence;
          Alcotest.test_case "expression keys" `Quick test_fingerprint_expr;
        ] );
    ]
