(* Tests for the caching manager and its integration with scans and joins:
   policies, population as a side-effect, hits on re-query, eviction wiring,
   invalidation. *)

open Proteus_model
open Proteus_catalog
open Proteus_plugin
open Proteus_cache
module Plan = Proteus_algebra.Plan
module Executor = Proteus_engine.Executor

let check_value = Alcotest.testable Value.pp Value.equal

let item_type =
  Ptype.Record
    [ ("k", Ptype.Int); ("v", Ptype.Float); ("s", Ptype.String) ]

let items =
  List.init 100 (fun i ->
      Value.record
        [ ("k", Value.Int i); ("v", Value.Float (float_of_int (i mod 10)));
          ("s", Value.String (Fmt.str "str%d" i)) ])

let to_json records =
  String.concat "\n"
    (List.map
       (fun r -> Proteus_format.Json.to_string (Proteus_format.Json.of_value r))
       records)

let make_session ?config () =
  let cat = Catalog.create () in
  let mem = Catalog.memory cat in
  Proteus_storage.Memory.register_blob mem ~name:"items.json" (to_json items);
  Catalog.register cat
    (Dataset.make ~name:"items" ~format:Dataset.Json
       ~location:(Dataset.Blob "items.json") ~element:item_type);
  Proteus_storage.Memory.register_blob mem ~name:"items.csv"
    (Proteus_format.Csv.of_records Proteus_format.Csv.default_config
       (Schema.of_type item_type) items);
  Catalog.register cat
    (Dataset.make ~name:"items_csv"
       ~format:(Dataset.Csv Proteus_format.Csv.default_config)
       ~location:(Dataset.Blob "items.csv") ~element:item_type);
  let mgr = Manager.create ?config cat in
  let reg = Registry.create ~cache:(Manager.iface mgr) cat in
  (cat, mgr, reg)

let count_plan ds =
  Plan.reduce
    ~pred:Expr.(Field (var "x", "k") <. int 50)
    [ Plan.agg ~name:"c" (Monoid.Primitive Monoid.Count) (Expr.int 1) ]
    (Plan.scan ~dataset:ds ~binding:"x" ())

let test_fill_then_hit () =
  let _, mgr, reg = make_session () in
  let r1 = Executor.run reg ~engine:Executor.Engine_compiled (count_plan "items") in
  Alcotest.check check_value "first run" (Value.Int 50) r1;
  let s = Manager.stats mgr in
  Alcotest.(check bool) "populated k column" true (s.Manager.field_stores >= 1);
  let before_hits = s.Manager.field_hits in
  let r2 = Executor.run reg ~engine:Executor.Engine_compiled (count_plan "items") in
  Alcotest.check check_value "second run same result" (Value.Int 50) r2;
  let s2 = Manager.stats mgr in
  Alcotest.(check bool) "second run hits the cache" true
    (s2.Manager.field_hits > before_hits)

let test_strings_not_cached () =
  let _, mgr, reg = make_session () in
  let plan =
    Plan.reduce
      ~pred:Expr.(Binop (Like, Field (var "x", "s"), str "str1%"))
      [ Plan.agg ~name:"c" (Monoid.Primitive Monoid.Count) (Expr.int 1) ]
      (Plan.scan ~dataset:"items" ~binding:"x" ())
  in
  ignore (Executor.run reg ~engine:Executor.Engine_compiled plan);
  let s = Manager.stats mgr in
  Alcotest.(check int) "no string columns stored" 0 s.Manager.field_stores

let test_csv_policy_toggle () =
  let config = { Manager.default_config with cache_csv_fields = false } in
  let _, mgr, reg = make_session ~config () in
  ignore (Executor.run reg ~engine:Executor.Engine_compiled (count_plan "items_csv"));
  Alcotest.(check int) "csv caching disabled" 0 (Manager.stats mgr).Manager.field_stores;
  ignore (Executor.run reg ~engine:Executor.Engine_compiled (count_plan "items"));
  Alcotest.(check bool) "json caching still on" true
    ((Manager.stats mgr).Manager.field_stores > 0)

let test_cached_result_identical () =
  (* results and cache-backed results must agree on every engine *)
  let _, _, reg = make_session () in
  let plan =
    Plan.nest
      ~keys:[ ("vv", Expr.(Field (var "x", "v"))) ]
      ~aggs:[ Plan.agg ~name:"n" (Monoid.Primitive Monoid.Count) (Expr.int 1) ]
      ~binding:"g"
      (Plan.scan ~dataset:"items" ~binding:"x" ())
  in
  let r1 = Executor.run reg ~engine:Executor.Engine_compiled plan in
  let r2 = Executor.run reg ~engine:Executor.Engine_compiled plan in
  Alcotest.check check_value "idempotent under caching" r1 r2

let test_join_side_cached () =
  let _, mgr, reg = make_session () in
  let plan =
    Plan.reduce
      [ Plan.agg ~name:"c" (Monoid.Primitive Monoid.Count) (Expr.int 1) ]
      (Plan.join
         ~pred:Expr.(Field (var "a", "v") ==. Field (var "b", "v"))
         (Plan.scan ~dataset:"items_csv" ~binding:"a" ())
         (Plan.scan ~dataset:"items" ~binding:"b" ()))
  in
  let r1 = Executor.run reg ~engine:Executor.Engine_compiled plan in
  let s1 = Manager.stats mgr in
  Alcotest.(check bool) "build side stored" true (s1.Manager.packed_stores >= 1);
  let r2 = Executor.run reg ~engine:Executor.Engine_compiled plan in
  let s2 = Manager.stats mgr in
  Alcotest.check check_value "same result from packed cache" r1 r2;
  Alcotest.(check bool) "packed hit" true (s2.Manager.packed_hits > s1.Manager.packed_hits)

let test_bytes_accounting () =
  let _, mgr, reg = make_session () in
  ignore (Executor.run reg ~engine:Executor.Engine_compiled (count_plan "items"));
  Alcotest.(check bool) "bytes attributed to dataset" true
    (Manager.bytes_for mgr ~dataset:"items" > 0);
  Alcotest.(check int) "other dataset untouched" 0
    (Manager.bytes_for mgr ~dataset:"items_csv")

let test_invalidate_dataset () =
  let _, mgr, reg = make_session () in
  ignore (Executor.run reg ~engine:Executor.Engine_compiled (count_plan "items"));
  Manager.invalidate_dataset mgr ~dataset:"items";
  Alcotest.(check int) "caches dropped" 0 (Manager.bytes_for mgr ~dataset:"items");
  (* and the query still works, re-populating *)
  Alcotest.check check_value "requery ok" (Value.Int 50)
    (Executor.run reg ~engine:Executor.Engine_compiled (count_plan "items"))

let test_eviction_under_pressure () =
  (* tiny arena: caches must be evicted, queries must stay correct *)
  let cat = Catalog.create ~cache_budget:2_000 () in
  let mem = Catalog.memory cat in
  Proteus_storage.Memory.register_blob mem ~name:"items.json" (to_json items);
  Catalog.register cat
    (Dataset.make ~name:"items" ~format:Dataset.Json
       ~location:(Dataset.Blob "items.json") ~element:item_type);
  let mgr = Manager.create cat in
  let reg = Registry.create ~cache:(Manager.iface mgr) cat in
  for _ = 1 to 3 do
    Alcotest.check check_value "stable under eviction" (Value.Int 50)
      (Executor.run reg ~engine:Executor.Engine_compiled (count_plan "items"))
  done

let test_disabled_config_stores_nothing () =
  let _, mgr, reg = make_session ~config:Manager.config_disabled () in
  ignore (Executor.run reg ~engine:Executor.Engine_compiled (count_plan "items"));
  let s = Manager.stats mgr in
  Alcotest.(check int) "no field stores" 0 s.Manager.field_stores;
  Alcotest.(check int) "no resident bytes" 0 (Manager.resident_bytes mgr)

(* --- sigma-result caching and predicate subsumption ------------------------ *)

let select_config =
  { Manager.default_config with cache_select_results = true }

let count_k_lt ds k =
  Plan.reduce
    [ Plan.agg ~name:"c" (Monoid.Primitive Monoid.Count) (Expr.int 1) ]
    (Plan.select
       Expr.(Field (var "x", "k") <. int k)
       (Plan.scan ~dataset:ds ~binding:"x" ()))

let test_select_cache_exact_hit () =
  let _, mgr, reg = make_session ~config:select_config () in
  let r1 = Executor.run reg ~engine:Executor.Engine_compiled (count_k_lt "items" 50) in
  let s1 = Manager.stats mgr in
  Alcotest.(check bool) "stored" true (s1.Manager.select_stores >= 1);
  let r2 = Executor.run reg ~engine:Executor.Engine_compiled (count_k_lt "items" 50) in
  let s2 = Manager.stats mgr in
  Alcotest.check check_value "same result" r1 r2;
  Alcotest.(check bool) "exact hit" true (s2.Manager.select_hits > s1.Manager.select_hits)

let test_select_cache_subsumption () =
  let _, mgr, reg = make_session ~config:select_config () in
  (* prime with the weaker predicate k < 80 *)
  ignore (Executor.run reg ~engine:Executor.Engine_compiled (count_k_lt "items" 80));
  (* the stricter k < 20 must be answered from the cached superset *)
  let r = Executor.run reg ~engine:Executor.Engine_compiled (count_k_lt "items" 20) in
  Alcotest.check check_value "correct despite reuse" (Value.Int 20) r;
  let s = Manager.stats mgr in
  Alcotest.(check bool) "subsumed match" true (s.Manager.select_subsumed >= 1)

let test_select_cache_no_false_subsumption () =
  let _, mgr, reg = make_session ~config:select_config () in
  (* prime with the stricter predicate; the weaker query must NOT reuse it *)
  ignore (Executor.run reg ~engine:Executor.Engine_compiled (count_k_lt "items" 20));
  let r = Executor.run reg ~engine:Executor.Engine_compiled (count_k_lt "items" 80) in
  Alcotest.check check_value "full answer" (Value.Int 80) r;
  Alcotest.(check int) "no subsumed match" 0 (Manager.stats mgr).Manager.select_subsumed

let test_select_cache_subsumption_off () =
  let config = { select_config with Manager.subsumption = false } in
  let _, mgr, reg = make_session ~config () in
  ignore (Executor.run reg ~engine:Executor.Engine_compiled (count_k_lt "items" 80));
  let r = Executor.run reg ~engine:Executor.Engine_compiled (count_k_lt "items" 20) in
  Alcotest.check check_value "still correct" (Value.Int 20) r;
  Alcotest.(check int) "no subsumption" 0 (Manager.stats mgr).Manager.select_subsumed

(* Property: priming the sigma-cache with any predicate and then querying
   with any other predicate must give exactly the uncached answer —
   whatever combination of exact hit, subsumption, or miss occurs. *)
let subsumption_sound_prop =
  let open QCheck2.Gen in
  let pred_gen =
    let cmp =
      oneofl [ Expr.Lt; Expr.Le; Expr.Gt; Expr.Ge; Expr.Eq ]
    in
    let atom =
      map2
        (fun op k -> Expr.Binop (op, Expr.path "x" [ "k" ], Expr.int k))
        cmp (int_range 0 100)
    in
    oneof [ atom; map2 (fun a b -> Expr.(a &&& b)) atom atom ]
  in
  QCheck2.Test.make ~name:"sigma-cache + subsumption is sound" ~count:100
    (pair pred_gen pred_gen) (fun (prime, query) ->
      let _, _, reg = make_session ~config:select_config () in
      let plan pred =
        Plan.reduce
          [ Plan.agg ~name:"c" (Monoid.Primitive Monoid.Count) (Expr.int 1);
            Plan.agg ~name:"s" (Monoid.Primitive Monoid.Sum)
              Expr.(Field (var "x", "k")) ]
          (Plan.select pred (Plan.scan ~dataset:"items" ~binding:"x" ()))
      in
      ignore (Executor.run reg ~engine:Executor.Engine_compiled (plan prime));
      let cached = Executor.run reg ~engine:Executor.Engine_compiled (plan query) in
      let _, _, reg_fresh = make_session ~config:Manager.config_disabled () in
      let expected =
        Executor.run reg_fresh ~engine:Executor.Engine_compiled (plan query)
      in
      Value.equal cached expected)

let test_subsume_covers () =
  let x op k = Expr.Binop (op, Expr.path "$0" [ "v" ], Expr.int k) in
  let checks =
    [
      (* cached, query, expected *)
      (x Expr.Lt 10, x Expr.Lt 5, true);
      (x Expr.Lt 5, x Expr.Lt 10, false);
      (x Expr.Lt 10, x Expr.Lt 10, true);
      (x Expr.Le 10, x Expr.Lt 10, true);
      (x Expr.Lt 10, x Expr.Le 10, false);
      (x Expr.Gt 5, x Expr.Gt 10, true);
      (x Expr.Gt 10, x Expr.Gt 5, false);
      (x Expr.Lt 10, x Expr.Eq 5, true);
      (x Expr.Lt 10, x Expr.Eq 10, false);
      (Expr.bool true, x Expr.Lt 3, true);       (* full-scan cache covers all *)
      (x Expr.Lt 10, Expr.bool true, false);     (* opposite direction *)
      (* conjunctions: every cached conjunct needs an implying query conjunct *)
      (Expr.(x Expr.Lt 10 &&& x Expr.Gt 0), Expr.(x Expr.Lt 5 &&& x Expr.Gt 2), true);
      (Expr.(x Expr.Lt 10 &&& x Expr.Gt 5), x Expr.Lt 5, false);
      (* unanalyzable cached conjunct blocks the match *)
      ( Expr.Binop (Expr.Like, Expr.path "$0" [ "s" ], Expr.str "a%"),
        x Expr.Lt 5, false );
    ]
  in
  List.iteri
    (fun i (cached, query, expected) ->
      Alcotest.(check bool)
        (Fmt.str "case %d" i)
        expected
        (Proteus_cache.Subsume.covers ~cached ~query))
    checks

let () =
  Alcotest.run "cache"
    [
      ( "subsumption",
        [
          Alcotest.test_case "exact hit" `Quick test_select_cache_exact_hit;
          Alcotest.test_case "subsumption reuse" `Quick test_select_cache_subsumption;
          Alcotest.test_case "no false subsumption" `Quick
            test_select_cache_no_false_subsumption;
          Alcotest.test_case "subsumption off" `Quick test_select_cache_subsumption_off;
          Alcotest.test_case "covers matrix" `Quick test_subsume_covers;
          QCheck_alcotest.to_alcotest subsumption_sound_prop;
        ] );
      ( "manager",
        [
          Alcotest.test_case "fill then hit" `Quick test_fill_then_hit;
          Alcotest.test_case "strings not cached" `Quick test_strings_not_cached;
          Alcotest.test_case "csv policy toggle" `Quick test_csv_policy_toggle;
          Alcotest.test_case "cached result identical" `Quick test_cached_result_identical;
          Alcotest.test_case "join side cached" `Quick test_join_side_cached;
          Alcotest.test_case "bytes accounting" `Quick test_bytes_accounting;
          Alcotest.test_case "invalidate dataset" `Quick test_invalidate_dataset;
          Alcotest.test_case "eviction under pressure" `Quick test_eviction_under_pressure;
          Alcotest.test_case "disabled stores nothing" `Quick
            test_disabled_config_stores_nothing;
        ] );
    ]
