(* Tests for columns, row pages, and the memory manager / cache arena. *)

open Proteus_model
open Proteus_storage

let check_value = Alcotest.testable Value.pp Value.equal

(* --- Column -------------------------------------------------------------- *)

let test_column_roundtrip () =
  let vs = [ Value.Int 1; Value.Int 2; Value.Int 3 ] in
  let c = Column.of_values Ptype.Int vs in
  Alcotest.(check int) "length" 3 (Column.length c);
  List.iteri (fun i v -> Alcotest.check check_value "get" v (Column.get c i)) vs

let test_column_nulls () =
  let vs = [ Value.Int 1; Value.Null; Value.Int 3 ] in
  let c = Column.of_values (Ptype.Option Ptype.Int) vs in
  Alcotest.check check_value "null survives" Value.Null (Column.get c 1);
  Alcotest.check check_value "value survives" (Value.Int 3) (Column.get c 2)

let test_column_builder_fast_paths () =
  let b = Column.Builder.create Ptype.Float in
  for i = 1 to 100 do
    Column.Builder.add_float b (float_of_int i)
  done;
  let c = Column.Builder.finish b in
  Alcotest.(check int) "length" 100 (Column.length c);
  Alcotest.check check_value "get 99" (Value.Float 100.) (Column.get c 99)

let test_column_builder_type_mismatch () =
  let b = Column.Builder.create Ptype.Int in
  Alcotest.check_raises "wrong fast path"
    (Perror.Type_error "Builder.add_float on non-float column") (fun () ->
      Column.Builder.add_float b 1.0)

let test_column_minmax () =
  let c = Column.of_values Ptype.Int [ Value.Int 5; Value.Int (-2); Value.Int 9 ] in
  match Column.min_max c with
  | Some (Value.Int (-2), Value.Int 9) -> ()
  | _ -> Alcotest.fail "bad min/max"

let column_roundtrip_prop =
  QCheck2.Test.make ~name:"column of_values/get roundtrip" ~count:200
    QCheck2.Gen.(list (map (fun i -> Value.Int i) small_signed_int))
    (fun vs ->
      let c = Column.of_values Ptype.Int vs in
      List.for_all2 Value.equal vs (List.init (Column.length c) (Column.get c)))

(* --- Rowpage ------------------------------------------------------------- *)

let schema =
  Schema.make
    [ ("id", Ptype.Int); ("price", Ptype.Float); ("flag", Ptype.Bool);
      ("name", Ptype.String) ]

let sample_rows =
  [
    [| Value.Int 1; Value.Float 3.5; Value.Bool true; Value.String "ann" |];
    [| Value.Int 2; Value.Float (-1.0); Value.Bool false; Value.String "" |];
    [| Value.Int 3; Value.Null; Value.Bool true; Value.String "carol carol" |];
  ]

let test_rowpage_typed_accessors () =
  let p = Rowpage.of_rows schema sample_rows in
  Alcotest.(check int) "count" 3 (Rowpage.count p);
  let off_id = Schema.field_offset schema "id" in
  let off_price = Schema.field_offset schema "price" in
  let off_name = Schema.field_offset schema "name" in
  Alcotest.(check int) "id row1" 2 (Rowpage.get_int p ~row:1 ~off:off_id);
  Alcotest.(check (float 1e-9)) "price row0" 3.5 (Rowpage.get_float p ~row:0 ~off:off_price);
  Alcotest.(check string) "name row2" "carol carol"
    (Rowpage.get_string p ~row:2 ~off:off_name)

let test_rowpage_nulls () =
  let p = Rowpage.of_rows schema sample_rows in
  Alcotest.(check bool) "null bit" true (Rowpage.is_null p ~row:2 ~field:1);
  Alcotest.(check bool) "non-null bit" false (Rowpage.is_null p ~row:0 ~field:1);
  Alcotest.check check_value "boxed null" Value.Null (Rowpage.get_value p ~row:2 ~field:1)

let test_rowpage_record_roundtrip () =
  let p = Rowpage.of_rows schema sample_rows in
  match Rowpage.get_record p ~row:0 with
  | Value.Record fs ->
    Alcotest.(check int) "arity" 4 (Array.length fs);
    Alcotest.check check_value "id" (Value.Int 1) (snd fs.(0))
  | v -> Alcotest.failf "not a record: %a" Value.pp v

let test_rowpage_serialization () =
  let p = Rowpage.of_rows schema sample_rows in
  let p' = Rowpage.of_bytes schema (Rowpage.to_bytes p) in
  for row = 0 to 2 do
    Alcotest.check check_value "row roundtrip"
      (Rowpage.get_record p ~row)
      (Rowpage.get_record p' ~row)
  done

let rowpage_roundtrip_prop =
  let gen =
    QCheck2.Gen.(
      list_size (int_range 0 40)
        (quad small_signed_int (float_bound_inclusive 100.0) bool
           (small_string ~gen:printable)))
  in
  QCheck2.Test.make ~name:"rowpage preserves all rows" ~count:100 gen (fun rows ->
      let vrows =
        List.map
          (fun (i, f, b, s) ->
            [| Value.Int i; Value.Float f; Value.Bool b; Value.String s |])
          rows
      in
      let p = Rowpage.of_rows schema vrows in
      List.for_all2
        (fun expect row ->
          Value.equal
            (Value.record
               (List.map2
                  (fun (f : Schema.field) v -> (f.name, v))
                  (Schema.fields schema) (Array.to_list expect)))
            (Rowpage.get_record p ~row))
        vrows
        (List.init (Rowpage.count p) Fun.id))

(* --- Memory manager / arena ---------------------------------------------- *)

let test_memory_blob_registry () =
  let m = Memory.create () in
  Memory.register_blob m ~name:"data" "hello";
  Alcotest.(check string) "contents" "hello" (Memory.contents m "data");
  Alcotest.(check bool) "registered" true (Memory.is_registered m "data");
  Memory.forget m "data";
  Alcotest.(check bool) "forgotten" false (Memory.is_registered m "data")

let test_arena_eviction_lru () =
  let m = Memory.create ~cache_budget:100 () in
  let a = Memory.Arena.of_mgr m in
  let evicted = ref [] in
  let put id size =
    Memory.Arena.put a ~id ~size ~bias:Memory.Arena.Bias_json ~on_evict:(fun () ->
        evicted := id :: !evicted)
  in
  put "a" 40;
  put "b" 40;
  ignore (Memory.Arena.touch a "a");
  (* "b" is now least recently used; inserting 40 more evicts it *)
  put "c" 40;
  Alcotest.(check (list string)) "evicted b" [ "b" ] !evicted;
  Alcotest.(check bool) "a resident" true (Memory.Arena.mem a "a");
  Alcotest.(check bool) "c resident" true (Memory.Arena.mem a "c")

let test_arena_format_bias () =
  (* Binary blocks are evicted before JSON blocks even when more recently
     used (cache policy of Section 6). *)
  let m = Memory.create ~cache_budget:100 () in
  let a = Memory.Arena.of_mgr m in
  let evicted = ref [] in
  Memory.Arena.put a ~id:"json" ~size:40 ~bias:Memory.Arena.Bias_json
    ~on_evict:(fun () -> evicted := "json" :: !evicted);
  Memory.Arena.put a ~id:"bin" ~size:40 ~bias:Memory.Arena.Bias_binary
    ~on_evict:(fun () -> evicted := "bin" :: !evicted);
  ignore (Memory.Arena.touch a "bin");
  Memory.Arena.put a ~id:"more" ~size:40 ~bias:Memory.Arena.Bias_csv
    ~on_evict:(fun () -> evicted := "more" :: !evicted);
  Alcotest.(check (list string)) "binary evicted first" [ "bin" ] !evicted

let test_arena_pinning () =
  let m = Memory.create ~cache_budget:100 () in
  let a = Memory.Arena.of_mgr m in
  Memory.Arena.put a ~id:"p" ~size:60 ~bias:Memory.Arena.Bias_binary
    ~on_evict:(fun () -> Alcotest.fail "pinned block evicted");
  Memory.Arena.pin a "p";
  Memory.Arena.put a ~id:"q" ~size:40 ~bias:Memory.Arena.Bias_binary
    ~on_evict:(fun () -> ());
  (* inserting another 40 must evict q, not the pinned p *)
  Memory.Arena.put a ~id:"r" ~size:40 ~bias:Memory.Arena.Bias_binary
    ~on_evict:(fun () -> ());
  Alcotest.(check bool) "pinned stays" true (Memory.Arena.mem a "p");
  Alcotest.(check bool) "q gone" false (Memory.Arena.mem a "q")

let test_arena_oversized_block () =
  let m = Memory.create ~cache_budget:100 () in
  let a = Memory.Arena.of_mgr m in
  Alcotest.(check bool) "raises" true
    (try
       Memory.Arena.put a ~id:"huge" ~size:101 ~bias:Memory.Arena.Bias_json
         ~on_evict:(fun () -> ());
       false
     with Invalid_argument _ -> true)

let test_arena_replace_same_id () =
  let m = Memory.create ~cache_budget:100 () in
  let a = Memory.Arena.of_mgr m in
  Memory.Arena.put a ~id:"x" ~size:60 ~bias:Memory.Arena.Bias_csv ~on_evict:(fun () ->
      Alcotest.fail "replace must not run evict hook");
  Memory.Arena.put a ~id:"x" ~size:80 ~bias:Memory.Arena.Bias_csv ~on_evict:(fun () -> ());
  Alcotest.(check int) "used reflects replacement" 80 (Memory.Arena.used a);
  Alcotest.(check int) "one block" 1 (Memory.Arena.block_count a)

let qsuite tests = List.map QCheck_alcotest.to_alcotest tests

let () =
  Alcotest.run "storage"
    [
      ( "column",
        [
          Alcotest.test_case "roundtrip" `Quick test_column_roundtrip;
          Alcotest.test_case "nulls" `Quick test_column_nulls;
          Alcotest.test_case "builder fast paths" `Quick test_column_builder_fast_paths;
          Alcotest.test_case "builder type mismatch" `Quick test_column_builder_type_mismatch;
          Alcotest.test_case "min/max" `Quick test_column_minmax;
        ]
        @ qsuite [ column_roundtrip_prop ] );
      ( "rowpage",
        [
          Alcotest.test_case "typed accessors" `Quick test_rowpage_typed_accessors;
          Alcotest.test_case "nulls" `Quick test_rowpage_nulls;
          Alcotest.test_case "record roundtrip" `Quick test_rowpage_record_roundtrip;
          Alcotest.test_case "serialization" `Quick test_rowpage_serialization;
        ]
        @ qsuite [ rowpage_roundtrip_prop ] );
      ( "memory",
        [
          Alcotest.test_case "blob registry" `Quick test_memory_blob_registry;
          Alcotest.test_case "LRU eviction" `Quick test_arena_eviction_lru;
          Alcotest.test_case "format bias" `Quick test_arena_format_bias;
          Alcotest.test_case "pinning" `Quick test_arena_pinning;
          Alcotest.test_case "oversized block" `Quick test_arena_oversized_block;
          Alcotest.test_case "replace same id" `Quick test_arena_replace_same_id;
        ] );
    ]
