(* Tests for the benchmark workloads: the TPC-H generator's invariants, and
   agreement of every system (Proteus engines, all baselines) on the actual
   benchmark queries over small instances. *)

open Proteus_model
open Proteus
module Plan = Proteus_algebra.Plan
module Tpch = Proteus_tpch.Tpch
module Symantec = Proteus_symantec.Symantec
module B = Proteus_baselines

(* Floating-point aggregates are summed in engine-specific orders, so values
   may differ in the last few ULPs; compare with a relative tolerance. *)
let rec approx_equal (a : Value.t) (b : Value.t) =
  match a, b with
  | Value.Float x, Value.Float y ->
    Float.equal x y
    || Float.abs (x -. y) <= 1e-9 *. Float.max 1.0 (Float.max (Float.abs x) (Float.abs y))
  | Value.Record fa, Value.Record fb ->
    Array.length fa = Array.length fb
    && Array.for_all2
         (fun (na, va) (nb, vb) -> String.equal na nb && approx_equal va vb)
         fa fb
  | Value.Coll (ca, la), Value.Coll (cb, lb) ->
    ca = cb && List.length la = List.length lb && List.for_all2 approx_equal la lb
  | a, b -> Value.equal a b

let check_value = Alcotest.testable Value.pp approx_equal

let sort_bag v =
  match v with
  | Value.Coll (Ptype.Bag, es) -> Value.Coll (Ptype.Bag, List.sort Value.compare es)
  | v -> v

(* --- TPC-H generator ------------------------------------------------------- *)

let sf = 0.0005 (* ~750 orders, ~3000 lineitems *)

let data = lazy (Tpch.generate ~sf ())

let test_tpch_deterministic () =
  let a = Tpch.generate ~sf () and b = Tpch.generate ~sf () in
  Alcotest.(check bool) "same data" true (a.Tpch.lineitems = b.Tpch.lineitems);
  let c = Tpch.generate ~seed:43 ~sf () in
  Alcotest.(check bool) "seed changes data" true (a.Tpch.lineitems <> c.Tpch.lineitems)

let test_tpch_shape () =
  let d = Lazy.force data in
  Alcotest.(check int) "order count" d.Tpch.order_count (List.length d.Tpch.orders);
  let n = List.length d.Tpch.lineitems in
  Alcotest.(check bool) "~4 lineitems per order" true
    (n > 3 * d.Tpch.order_count && n < 5 * d.Tpch.order_count);
  List.iter
    (fun li ->
      let q = Value.to_int (Value.field li "l_quantity") in
      let ln = Value.to_int (Value.field li "l_linenumber") in
      Alcotest.(check bool) "quantity in 1..50" true (q >= 1 && q <= 50);
      Alcotest.(check bool) "linenumber in 1..7" true (ln >= 1 && ln <= 7))
    d.Tpch.lineitems

let test_tpch_selectivity () =
  (* the selectivity knob gives approximately that fraction of lineitems *)
  let d = Lazy.force data in
  let total = List.length d.Tpch.lineitems in
  List.iter
    (fun sel ->
      let plan =
        Tpch.Queries.projection ~lineitem:"li" ~order_count:d.Tpch.order_count
          ~variant:Tpch.Queries.Count1 ~selectivity:sel
      in
      let lookup = function
        | "li" -> d.Tpch.lineitems
        | o -> Perror.plan_error "no dataset %s" o
      in
      match Proteus_algebra.Interp.run ~lookup plan with
      | Value.Int n ->
        let frac = float_of_int n /. float_of_int total in
        Alcotest.(check bool)
          (Fmt.str "selectivity %.1f -> %.3f" sel frac)
          true
          (Float.abs (frac -. sel) < 0.08)
      | v -> Alcotest.failf "unexpected %a" Value.pp v)
    [ 0.1; 0.2; 0.5; 1.0 ]

let test_tpch_denormalized () =
  let d = Lazy.force data in
  let denorm = Tpch.denormalized_orders d in
  let total =
    List.fold_left
      (fun acc o -> acc + List.length (Value.elements (Value.field o "lineitems")))
      0 denorm
  in
  Alcotest.(check int) "all lineitems embedded" (List.length d.Tpch.lineitems) total

(* --- cross-system agreement on the benchmark queries ---------------------- *)

(* one shared tiny TPC-H instance registered everywhere *)
let systems =
  lazy
    (let d = Lazy.force data in
     let li_csv = Tpch.lineitem_csv d and li_json = Tpch.lineitem_json d in
     let ord_json = Tpch.orders_json d in
     (* Proteus: lineitem as JSON + CSV + columns; orders as JSON + columns *)
     let db = Db.create () in
     Db.register_json db ~name:"li_json" ~element:Tpch.lineitem_type ~contents:li_json;
     Db.register_csv db ~name:"li_csv" ~element:Tpch.lineitem_type ~contents:li_csv ();
     Db.register_columns_of db ~name:"li_col" ~element:Tpch.lineitem_type
       d.Tpch.lineitems;
     Db.register_json db ~name:"ord_json" ~element:Tpch.order_type ~contents:ord_json;
     Db.register_columns_of db ~name:"ord_col" ~element:Tpch.order_type d.Tpch.orders;
     Db.register_json db ~name:"denorm" ~element:Tpch.denorm_order_type
       ~contents:(Tpch.denormalized_json d);
     (* baselines *)
     let pg = B.Rowstore.create ~json_encoding:B.Rowstore.Jsonb () in
     B.Rowstore.load_json pg ~name:"li_json" ~element:Tpch.lineitem_type li_json;
     B.Rowstore.load_json pg ~name:"ord_json" ~element:Tpch.order_type ord_json;
     B.Rowstore.load_relational pg ~name:"li_col" ~element:Tpch.lineitem_type
       d.Tpch.lineitems;
     B.Rowstore.load_relational pg ~name:"ord_col" ~element:Tpch.order_type d.Tpch.orders;
     B.Rowstore.load_json pg ~name:"denorm" ~element:Tpch.denorm_order_type
       (Tpch.denormalized_json d);
     let mdb = B.Colstore.create B.Colstore.monetdb_config () in
     B.Colstore.load_relational mdb ~name:"li_col" ~element:Tpch.lineitem_type
       d.Tpch.lineitems;
     B.Colstore.load_relational mdb ~name:"ord_col" ~element:Tpch.order_type
       d.Tpch.orders;
     B.Colstore.load_json mdb ~name:"li_json" ~element:Tpch.lineitem_type li_json;
     let dc = B.Colstore.create B.Colstore.dbmsc_config () in
     B.Colstore.load_relational dc ~name:"li_col" ~sort_key:"l_orderkey"
       ~element:Tpch.lineitem_type d.Tpch.lineitems;
     B.Colstore.load_relational dc ~name:"ord_col" ~sort_key:"o_orderkey"
       ~element:Tpch.order_type d.Tpch.orders;
     let mongo = B.Docstore.create () in
     B.Docstore.load_json mongo ~name:"li_json" ~element:Tpch.lineitem_type li_json;
     B.Docstore.load_json mongo ~name:"ord_json" ~element:Tpch.order_type ord_json;
     B.Docstore.load_json mongo ~name:"denorm" ~element:Tpch.denorm_order_type
       (Tpch.denormalized_json d);
     (d, db, pg, mdb, dc, mongo))

let oracle plan =
  let d, _, _, _, _, _ = Lazy.force systems in
  let lookup = function
    | "li_json" | "li_csv" | "li_col" -> d.Tpch.lineitems
    | "ord_json" | "ord_col" -> d.Tpch.orders
    | "denorm" -> Tpch.denormalized_orders d
    | o -> Perror.plan_error "no dataset %s" o
  in
  sort_bag (Proteus_algebra.Interp.run ~lookup plan)

let test_fig5_agreement () =
  let d, db, pg, mdb, _, mongo = Lazy.force systems in
  List.iter
    (fun variant ->
      List.iter
        (fun sel ->
          let plan =
            Tpch.Queries.projection ~lineitem:"li_json" ~order_count:d.Tpch.order_count
              ~variant ~selectivity:sel
          in
          let expected = oracle plan in
          Alcotest.check check_value "proteus" expected
            (sort_bag (Db.run_plan db plan));
          Alcotest.check check_value "volcano" expected
            (sort_bag (Db.run_plan ~engine:Db.Engine_volcano db plan));
          Alcotest.check check_value "postgres" expected
            (sort_bag (B.Rowstore.run pg plan));
          Alcotest.check check_value "monetdb" expected
            (sort_bag (B.Colstore.run mdb plan));
          Alcotest.check check_value "mongo" expected
            (sort_bag (B.Docstore.run mongo plan)))
        [ 0.1; 0.5; 1.0 ])
    [ Tpch.Queries.Count1; Tpch.Queries.Max1; Tpch.Queries.Agg4 ]

let test_fig6_agreement () =
  let d, db, pg, mdb, dc, _ = Lazy.force systems in
  List.iter
    (fun sel ->
      let plan =
        Tpch.Queries.projection ~lineitem:"li_col" ~order_count:d.Tpch.order_count
          ~variant:Tpch.Queries.Agg4 ~selectivity:sel
      in
      let expected = oracle plan in
      Alcotest.check check_value "proteus" expected (sort_bag (Db.run_plan db plan));
      Alcotest.check check_value "postgres" expected (sort_bag (B.Rowstore.run pg plan));
      Alcotest.check check_value "monetdb" expected (sort_bag (B.Colstore.run mdb plan));
      Alcotest.check check_value "dbms-c" expected (sort_bag (B.Colstore.run dc plan)))
    [ 0.1; 1.0 ]

let test_fig9_join_and_unnest_agreement () =
  let d, db, pg, _, _, mongo = Lazy.force systems in
  let join =
    Tpch.Queries.join ~orders:"ord_json" ~lineitem:"li_json"
      ~order_count:d.Tpch.order_count ~variant:Tpch.Queries.JAgg2 ~selectivity:0.2
  in
  let expected = oracle join in
  Alcotest.check check_value "proteus join" expected (sort_bag (Db.run_plan db join));
  Alcotest.check check_value "postgres join" expected (sort_bag (B.Rowstore.run pg join));
  Alcotest.check check_value "mongo mapreduce join" expected
    (sort_bag (B.Docstore.run mongo join));
  let unnest =
    Tpch.Queries.unnest_count ~denorm:"denorm" ~order_count:d.Tpch.order_count
      ~selectivity:0.2
  in
  let expected = oracle unnest in
  Alcotest.check check_value "proteus unnest" expected (sort_bag (Db.run_plan db unnest));
  Alcotest.check check_value "postgres unnest" expected
    (sort_bag (B.Rowstore.run pg unnest));
  Alcotest.check check_value "mongo unnest" expected
    (sort_bag (B.Docstore.run mongo unnest))

let test_fig11_groupby_agreement () =
  let d, db, pg, mdb, _, mongo = Lazy.force systems in
  List.iter
    (fun aggregates ->
      let plan =
        Tpch.Queries.group_by ~lineitem:"li_json" ~order_count:d.Tpch.order_count
          ~aggregates ~selectivity:0.5
      in
      let expected = oracle plan in
      Alcotest.check check_value "proteus" expected (sort_bag (Db.run_plan db plan));
      Alcotest.check check_value "postgres" expected (sort_bag (B.Rowstore.run pg plan));
      Alcotest.check check_value "monetdb" expected (sort_bag (B.Colstore.run mdb plan));
      Alcotest.check check_value "mongo" expected (sort_bag (B.Docstore.run mongo plan)))
    [ 1; 3; 4 ]

(* --- Symantec workload ------------------------------------------------------ *)

let sym_params =
  { Symantec.default_params with json_objects = 300; csv_rows = 1200; bin_rows = 2000 }

let sym = lazy (Symantec.generate ~params:sym_params ())

let sym_lookup =
  lazy
    (let s = Lazy.force sym in
     let json_records =
       List.map Proteus_format.Json.to_value
         (Proteus_format.Json.parse_seq s.Symantec.json_text)
     in
     let csv_records =
       Proteus_format.Csv.read_all Proteus_format.Csv.default_config
         (Schema.of_type Symantec.csv_type) s.Symantec.csv_text
     in
     fun name ->
       if name = Symantec.json_name then json_records
       else if name = Symantec.csv_name then csv_records
       else if name = Symantec.bin_name then s.Symantec.bin_records
       else Perror.plan_error "no dataset %s" name)

let test_symantec_50_queries () =
  Alcotest.(check int) "50 queries" 50
    (List.length (Symantec.queries (Lazy.force sym)))

let test_symantec_groups () =
  Alcotest.(check string) "Q1" "BIN" (Symantec.group_of "Q1");
  Alcotest.(check string) "Q39" "CSVJSON" (Symantec.group_of "Q39");
  Alcotest.(check string) "Q50" "BINCSVJSON" (Symantec.group_of "Q50")

let test_symantec_proteus_vs_oracle () =
  let s = Lazy.force sym in
  let lookup = Lazy.force sym_lookup in
  let db = Db.create () in
  Db.register_json db ~name:Symantec.json_name ~element:Symantec.json_type
    ~contents:s.Symantec.json_text;
  Db.register_csv db ~name:Symantec.csv_name ~element:Symantec.csv_type
    ~contents:s.Symantec.csv_text ();
  Db.register_rows db ~name:Symantec.bin_name ~element:Symantec.bin_type
    s.Symantec.bin_records;
  List.iter
    (fun (name, plan) ->
      let expected = sort_bag (Proteus_algebra.Interp.run ~lookup plan) in
      Alcotest.check check_value (name ^ " compiled") expected
        (sort_bag (Db.run_plan db plan));
      Alcotest.check check_value (name ^ " volcano") expected
        (sort_bag (Db.run_plan ~engine:Db.Engine_volcano db plan)))
    (Symantec.queries s)

let test_symantec_baselines_vs_oracle () =
  let s = Lazy.force sym in
  let lookup = Lazy.force sym_lookup in
  let pg = B.Rowstore.create ~json_encoding:B.Rowstore.Jsonb () in
  B.Rowstore.load_json pg ~name:Symantec.json_name ~element:Symantec.json_type
    s.Symantec.json_text;
  B.Rowstore.load_csv pg ~name:Symantec.csv_name ~element:Symantec.csv_type
    s.Symantec.csv_text;
  B.Rowstore.load_relational pg ~name:Symantec.bin_name ~element:Symantec.bin_type
    s.Symantec.bin_records;
  let fed = B.Federation.create () in
  B.Federation.load_json fed ~name:Symantec.json_name ~element:Symantec.json_type
    s.Symantec.json_text;
  B.Federation.load_csv fed ~name:Symantec.csv_name ~sort_key:"day"
    ~element:Symantec.csv_type s.Symantec.csv_text;
  B.Federation.load_relational fed ~name:Symantec.bin_name ~sort_key:"day"
    ~element:Symantec.bin_type s.Symantec.bin_records;
  List.iter
    (fun (name, plan) ->
      let expected = sort_bag (Proteus_algebra.Interp.run ~lookup plan) in
      Alcotest.check check_value (name ^ " postgres") expected
        (sort_bag (B.Rowstore.run pg plan));
      Alcotest.check check_value (name ^ " federation") expected
        (sort_bag (B.Federation.run fed plan)))
    (Symantec.queries s)

let () =
  Alcotest.run "workloads"
    [
      ( "tpch",
        [
          Alcotest.test_case "deterministic" `Quick test_tpch_deterministic;
          Alcotest.test_case "shape" `Quick test_tpch_shape;
          Alcotest.test_case "selectivity knob" `Quick test_tpch_selectivity;
          Alcotest.test_case "denormalized" `Quick test_tpch_denormalized;
        ] );
      ( "tpch-agreement",
        [
          Alcotest.test_case "fig5 projections" `Quick test_fig5_agreement;
          Alcotest.test_case "fig6 binary projections" `Quick test_fig6_agreement;
          Alcotest.test_case "fig9 join+unnest" `Quick test_fig9_join_and_unnest_agreement;
          Alcotest.test_case "fig11 group-bys" `Quick test_fig11_groupby_agreement;
        ] );
      ( "symantec",
        [
          Alcotest.test_case "50 queries" `Quick test_symantec_50_queries;
          Alcotest.test_case "groups" `Quick test_symantec_groups;
          Alcotest.test_case "proteus vs oracle" `Slow test_symantec_proteus_vs_oracle;
          Alcotest.test_case "baselines vs oracle" `Slow test_symantec_baselines_vs_oracle;
        ] );
    ]
