(* Differential tests for the two executors: on the same plans and the same
   datasets (in every supported format), the compiled engine and the Volcano
   interpreter must agree with the reference algebra evaluator. *)

open Proteus_model
open Proteus_storage
open Proteus_catalog
open Proteus_plugin
open Proteus_engine
module Plan = Proteus_algebra.Plan
module Interp = Proteus_algebra.Interp

let check_value = Alcotest.testable Value.pp Value.equal

(* --- a small relational dataset in all four formats ----------------------- *)

let item_type =
  Ptype.Record
    [ ("k", Ptype.Int); ("grp", Ptype.Int); ("price", Ptype.Float);
      ("name", Ptype.String) ]

let item_schema = Schema.of_type item_type

let items =
  (* deterministic pseudo-random contents *)
  List.init 200 (fun i ->
      let k = i in
      let grp = i mod 7 in
      let price = float_of_int ((i * 37) mod 100) /. 4.0 in
      let name = Fmt.str "n%d" (i mod 13) in
      Value.record
        [ ("k", Value.Int k); ("grp", Value.Int grp); ("price", Value.Float price);
          ("name", Value.String name) ])

let groups_type =
  Ptype.Record [ ("gid", Ptype.Int); ("label", Ptype.String) ]

let groups =
  List.init 7 (fun g ->
      Value.record [ ("gid", Value.Int g); ("label", Value.String (Fmt.str "g%d" g)) ])

let nested_type =
  Ptype.Record
    [
      ("id", Ptype.Int);
      ( "kids",
        Ptype.Collection
          (Ptype.List, Ptype.Record [ ("age", Ptype.Int); ("nick", Ptype.String) ]) );
    ]

let nested =
  List.init 40 (fun i ->
      let kids =
        List.init (i mod 4) (fun j ->
            Value.record
              [ ("age", Value.Int ((i + (j * 11)) mod 40));
                ("nick", Value.String (Fmt.str "kid%d_%d" i j)) ])
      in
      Value.record [ ("id", Value.Int i); ("kids", Value.list_ kids) ])

let to_json records =
  String.concat "\n"
    (List.map (fun r -> Proteus_format.Json.to_string (Proteus_format.Json.of_value r)) records)

(* a schema-flexible JSON dataset: some objects lack the optional fields *)
let sparse_type =
  Ptype.Record
    [ ("id", Ptype.Int); ("score", Ptype.Option Ptype.Float);
      ("tag", Ptype.Option Ptype.String) ]

let sparse =
  List.init 60 (fun i ->
      Value.record
        ([ ("id", Value.Int i) ]
        @ (if i mod 3 = 0 then [] else [ ("score", Value.Float (float_of_int (i mod 7))) ])
        @ if i mod 4 = 0 then [] else [ ("tag", Value.String (Fmt.str "t%d" (i mod 5))) ]))

(* the oracle sees the missing fields as Null *)
let sparse_oracle =
  List.map
    (fun r ->
      Value.record
        [
          ("id", Value.field r "id");
          ("score", Option.value (Value.field_opt r "score") ~default:Value.Null);
          ("tag", Option.value (Value.field_opt r "tag") ~default:Value.Null);
        ])
    sparse

let make_catalog () =
  let cat = Catalog.create () in
  let mem = Catalog.memory cat in
  (* CSV *)
  Memory.register_blob mem ~name:"items.csv"
    (Proteus_format.Csv.of_records Proteus_format.Csv.default_config item_schema items);
  Catalog.register cat
    (Dataset.make ~name:"items_csv"
       ~format:(Dataset.Csv Proteus_format.Csv.default_config)
       ~location:(Dataset.Blob "items.csv") ~element:item_type);
  (* JSON *)
  Memory.register_blob mem ~name:"items.json" (to_json items);
  Catalog.register cat
    (Dataset.make ~name:"items_json" ~format:Dataset.Json
       ~location:(Dataset.Blob "items.json") ~element:item_type);
  (* binary row *)
  Catalog.register cat
    (Dataset.make ~name:"items_row" ~format:Dataset.Binary_row
       ~location:(Dataset.Rows (Rowpage.of_records item_schema items))
       ~element:item_type);
  (* binary column *)
  let col name ty = (name, Column.of_values ty (List.map (fun r -> Value.field r name) items)) in
  Catalog.register cat
    (Dataset.make ~name:"items_col" ~format:Dataset.Binary_column
       ~location:
         (Dataset.Columns
            [ col "k" Ptype.Int; col "grp" Ptype.Int; col "price" Ptype.Float;
              col "name" Ptype.String ])
       ~element:item_type);
  (* dimension table and nested dataset as JSON *)
  Memory.register_blob mem ~name:"groups.json" (to_json groups);
  Catalog.register cat
    (Dataset.make ~name:"groups" ~format:Dataset.Json
       ~location:(Dataset.Blob "groups.json") ~element:groups_type);
  Memory.register_blob mem ~name:"nested.json" (to_json nested);
  Catalog.register cat
    (Dataset.make ~name:"nested" ~format:Dataset.Json
       ~location:(Dataset.Blob "nested.json") ~element:nested_type);
  Memory.register_blob mem ~name:"sparse.json" (to_json sparse);
  Catalog.register cat
    (Dataset.make ~name:"sparse" ~format:Dataset.Json
       ~location:(Dataset.Blob "sparse.json") ~element:sparse_type);
  cat

let lookup name =
  match name with
  | "items_csv" | "items_json" | "items_row" | "items_col" -> items
  | "groups" -> groups
  | "nested" -> nested
  | "sparse" -> sparse_oracle
  | other -> Perror.plan_error "no dataset %s" other

let sort_bag v =
  match v with
  | Value.Coll (Ptype.Bag, es) -> Value.Coll (Ptype.Bag, List.sort Value.compare es)
  | v -> v

let registry = lazy (Registry.create (make_catalog ()))

(* Run one plan on all engines and compare against the oracle. *)
let check_plan ?(name = "plan") plan =
  let reg = Lazy.force registry in
  let expected = sort_bag (Interp.run ~lookup plan) in
  let compiled = sort_bag (Executor.run reg ~engine:Executor.Engine_compiled plan) in
  let volcano = sort_bag (Executor.run reg ~engine:Executor.Engine_volcano plan) in
  Alcotest.check check_value (name ^ " (compiled)") expected compiled;
  Alcotest.check check_value (name ^ " (volcano)") expected volcano

let item_datasets = [ "items_csv"; "items_json"; "items_row"; "items_col" ]

(* --- fixed scenarios across all formats ----------------------------------- *)

let test_count_filter () =
  List.iter
    (fun ds ->
      check_plan ~name:ds
        (Plan.reduce
           ~pred:Expr.(Field (var "x", "k") <. int 50)
           [ Plan.agg ~name:"c" (Monoid.Primitive Monoid.Count) (Expr.int 1) ]
           (Plan.scan ~dataset:ds ~binding:"x" ())))
    item_datasets

let test_multi_agg () =
  List.iter
    (fun ds ->
      check_plan ~name:ds
        (Plan.reduce
           [
             Plan.agg ~name:"c" (Monoid.Primitive Monoid.Count) (Expr.int 1);
             Plan.agg ~name:"mx" (Monoid.Primitive Monoid.Max) Expr.(Field (var "x", "price"));
             Plan.agg ~name:"sm" (Monoid.Primitive Monoid.Sum) Expr.(Field (var "x", "k"));
             Plan.agg ~name:"mn" (Monoid.Primitive Monoid.Min) Expr.(Field (var "x", "grp"));
           ]
           (Plan.scan ~dataset:ds ~binding:"x" ())))
    item_datasets

let test_select_project () =
  List.iter
    (fun ds ->
      check_plan ~name:ds
        (Plan.project ~binding:"out"
           ~fields:
             [ ("kk", Expr.(Field (var "x", "k") *. int 2));
               ("nm", Expr.(Field (var "x", "name"))) ]
           (Plan.select
              Expr.(Field (var "x", "price") >=. float 10.0 &&& (Field (var "x", "grp") ==. int 3))
              (Plan.scan ~dataset:ds ~binding:"x" ()))))
    item_datasets

let test_string_predicates () =
  List.iter
    (fun ds ->
      check_plan ~name:ds
        (Plan.reduce
           ~pred:Expr.(Binop (Like, Field (var "x", "name"), str "n1%"))
           [ Plan.agg ~name:"c" (Monoid.Primitive Monoid.Count) (Expr.int 1) ]
           (Plan.scan ~dataset:ds ~binding:"x" ())))
    item_datasets

let test_group_by () =
  List.iter
    (fun ds ->
      check_plan ~name:ds
        (Plan.nest
           ~keys:[ ("g", Expr.(Field (var "x", "grp"))) ]
           ~aggs:
             [
               Plan.agg ~name:"n" (Monoid.Primitive Monoid.Count) (Expr.int 1);
               Plan.agg ~name:"total" (Monoid.Primitive Monoid.Sum)
                 Expr.(Field (var "x", "price"));
             ]
           ~binding:"grp"
           (Plan.scan ~dataset:ds ~binding:"x" ())))
    item_datasets

let test_join_fact_dim () =
  List.iter
    (fun ds ->
      check_plan ~name:ds
        (Plan.reduce
           [
             Plan.agg ~name:"c" (Monoid.Primitive Monoid.Count) (Expr.int 1);
             Plan.agg ~name:"m" (Monoid.Primitive Monoid.Max) Expr.(Field (var "x", "k"));
           ]
           (Plan.select
              Expr.(Field (var "x", "k") <. int 120)
              (Plan.join
                 ~pred:Expr.(Field (var "x", "grp") ==. Field (var "g", "gid"))
                 (Plan.scan ~dataset:ds ~binding:"x" ())
                 (Plan.scan ~dataset:"groups" ~binding:"g" ())))))
    item_datasets

let test_join_project_both_sides () =
  check_plan
    (Plan.project ~binding:"o"
       ~fields:
         [ ("k", Expr.(Field (var "x", "k"))); ("lbl", Expr.(Field (var "g", "label"))) ]
       (Plan.select
          Expr.(Field (var "x", "k") <. int 10)
          (Plan.join
             ~pred:Expr.(Field (var "x", "grp") ==. Field (var "g", "gid"))
             (Plan.scan ~dataset:"items_json" ~binding:"x" ())
             (Plan.scan ~dataset:"groups" ~binding:"g" ()))))

let test_left_outer_join () =
  (* keys 0..6 exist; restrict right side to gid < 3 so some rows pad *)
  check_plan
    (Plan.reduce
       [ Plan.agg ~name:"c" (Monoid.Primitive Monoid.Count) (Expr.int 1) ]
       (Plan.select
          Expr.(Unop (Is_null, Field (var "g", "gid")))
          (Plan.join ~kind:Plan.Left_outer
             ~pred:Expr.(Field (var "x", "grp") ==. Field (var "g", "gid"))
             (Plan.scan ~dataset:"items_csv" ~binding:"x" ())
             (Plan.select
                Expr.(Field (var "g", "gid") <. int 3)
                (Plan.scan ~dataset:"groups" ~binding:"g" ())))))

let test_nested_loop_join () =
  (* non-equi join predicate forces the nested-loop fallback *)
  check_plan
    (Plan.reduce
       [ Plan.agg ~name:"c" (Monoid.Primitive Monoid.Count) (Expr.int 1) ]
       (Plan.join ~algo:Plan.Nested_loop
          ~pred:Expr.(Field (var "g", "gid") >. Field (var "h", "gid"))
          (Plan.scan ~dataset:"groups" ~binding:"g" ())
          (Plan.scan ~dataset:"groups" ~binding:"h" ())))

let test_unnest () =
  check_plan
    (Plan.reduce
       [ Plan.agg ~name:"c" (Monoid.Primitive Monoid.Count) (Expr.int 1) ]
       (Plan.unnest
          ~pred:Expr.(Field (var "kid", "age") >. int 18)
          ~path:Expr.(Field (var "n", "kids"))
          ~binding:"kid"
          (Plan.scan ~dataset:"nested" ~binding:"n" ())))

let test_unnest_project_elem_fields () =
  check_plan
    (Plan.project ~binding:"o"
       ~fields:
         [ ("id", Expr.(Field (var "n", "id"))); ("nick", Expr.(Field (var "kid", "nick"))) ]
       (Plan.unnest
          ~pred:Expr.(Field (var "kid", "age") <. int 10)
          ~path:Expr.(Field (var "n", "kids"))
          ~binding:"kid"
          (Plan.scan ~dataset:"nested" ~binding:"n" ())))

let test_outer_unnest () =
  check_plan
    (Plan.reduce
       [ Plan.agg ~name:"c" (Monoid.Primitive Monoid.Count) (Expr.int 1) ]
       (Plan.select
          Expr.(Unop (Is_null, Var "kid"))
          (Plan.unnest ~outer:true
             ~path:Expr.(Field (var "n", "kids"))
             ~binding:"kid"
             (Plan.scan ~dataset:"nested" ~binding:"n" ()))))

let test_unnest_then_join () =
  (* heterogeneous join: nested JSON kids against the groups table *)
  check_plan
    (Plan.reduce
       [ Plan.agg ~name:"c" (Monoid.Primitive Monoid.Count) (Expr.int 1) ]
       (Plan.join
          ~pred:Expr.(Binop (Mod, Field (var "kid", "age"), int 7) ==. Field (var "g", "gid"))
          (Plan.unnest
             ~path:Expr.(Field (var "n", "kids"))
             ~binding:"kid"
             (Plan.scan ~dataset:"nested" ~binding:"n" ()))
          (Plan.scan ~dataset:"groups" ~binding:"g" ())))

let test_collect_bag_expr () =
  List.iter
    (fun ds ->
      check_plan ~name:ds
        (Plan.reduce
           ~pred:Expr.(Field (var "x", "k") <. int 5)
           [
             Plan.agg ~name:"r" (Monoid.Collection Ptype.Bag)
               Expr.(Field (var "x", "price") +. float 1.0);
           ]
           (Plan.scan ~dataset:ds ~binding:"x" ())))
    [ "items_csv"; "items_json" ]

let test_nullable_json_fields () =
  (* optional fields: missing values must read as NULL through every engine;
     NULL comparisons drop rows; IS NULL observes them *)
  check_plan
    (Plan.reduce
       [ Plan.agg ~name:"c" (Monoid.Primitive Monoid.Count) (Expr.int 1) ]
       (Plan.select
          Expr.(Field (var "s", "score") >=. float 3.0)
          (Plan.scan ~dataset:"sparse" ~binding:"s" ())));
  check_plan
    (Plan.reduce
       [ Plan.agg ~name:"c" (Monoid.Primitive Monoid.Count) (Expr.int 1) ]
       (Plan.select
          Expr.(Unop (Is_null, Field (var "s", "tag")))
          (Plan.scan ~dataset:"sparse" ~binding:"s" ())));
  (* aggregates over a nullable column skip NULLs (Monoid semantics) *)
  check_plan
    (Plan.reduce
       [
         Plan.agg ~name:"m" (Monoid.Primitive Monoid.Max)
           Expr.(Field (var "s", "score"));
         Plan.agg ~name:"c" (Monoid.Primitive Monoid.Count) (Expr.int 1);
       ]
       (Plan.scan ~dataset:"sparse" ~binding:"s" ()))

let test_nullable_group_key () =
  check_plan
    (Plan.nest
       ~keys:[ ("tag", Expr.(Field (var "s", "tag"))) ]
       ~aggs:[ Plan.agg ~name:"n" (Monoid.Primitive Monoid.Count) (Expr.int 1) ]
       ~binding:"g"
       (Plan.scan ~dataset:"sparse" ~binding:"s" ()))

let test_sort_operator () =
  (* order-sensitive: compare without bag-sorting *)
  let reg = Lazy.force registry in
  let plan =
    Plan.sort ~limit:7
      ~keys:
        [ (Expr.(Field (var "x", "grp")), Plan.Asc);
          (Expr.(Field (var "x", "price")), Plan.Desc) ]
      (Plan.select
         Expr.(Field (var "x", "k") <. int 60)
         (Plan.scan ~dataset:"items_json" ~binding:"x" ()))
  in
  let expected = Interp.run ~lookup plan in
  Alcotest.check check_value "compiled" expected
    (Executor.run reg ~engine:Executor.Engine_compiled plan);
  Alcotest.check check_value "volcano" expected
    (Executor.run reg ~engine:Executor.Engine_volcano plan)

let test_sort_above_join () =
  let reg = Lazy.force registry in
  let plan =
    Plan.sort
      ~keys:[ (Expr.(Field (var "g", "label")), Plan.Desc);
              (Expr.(Field (var "x", "k")), Plan.Asc) ]
      ~limit:10
      (Plan.join
         ~pred:Expr.(Field (var "x", "grp") ==. Field (var "g", "gid"))
         (Plan.select
            Expr.(Field (var "x", "k") <. int 30)
            (Plan.scan ~dataset:"items_csv" ~binding:"x" ()))
         (Plan.scan ~dataset:"groups" ~binding:"g" ()))
  in
  let expected = Interp.run ~lookup plan in
  Alcotest.check check_value "compiled" expected
    (Executor.run reg ~engine:Executor.Engine_compiled plan);
  Alcotest.check check_value "volcano" expected
    (Executor.run reg ~engine:Executor.Engine_volcano plan)

let test_avg_agg () =
  check_plan
    (Plan.reduce
       [ Plan.agg ~name:"a" (Monoid.Primitive Monoid.Avg) Expr.(Field (var "x", "price")) ]
       (Plan.scan ~dataset:"items_col" ~binding:"x" ()))

(* --- randomized plans ------------------------------------------------------ *)

let plan_gen : Plan.t QCheck2.Gen.t =
  let open QCheck2.Gen in
  let field f = Expr.Field (Expr.var "x", f) in
  let pred_gen =
    oneof
      [
        map (fun k -> Expr.(field "k" <. int k)) (int_range 0 220);
        map (fun k -> Expr.(field "grp" ==. int k)) (int_range 0 8);
        map (fun f -> Expr.(field "price" >=. float f)) (float_bound_inclusive 30.0);
        map2
          (fun a b -> Expr.(field "k" >=. int a &&& (field "k" <. int (a + b))))
          (int_range 0 100) (int_range 0 100);
      ]
  in
  let agg_gen =
    oneof
      [
        return (Plan.agg ~name:"c" (Monoid.Primitive Monoid.Count) (Expr.int 1));
        return (Plan.agg ~name:"s" (Monoid.Primitive Monoid.Sum) (field "k"));
        return (Plan.agg ~name:"m" (Monoid.Primitive Monoid.Max) (field "price"));
        return (Plan.agg ~name:"n" (Monoid.Primitive Monoid.Min) (field "k"));
      ]
  in
  let* ds = oneofl item_datasets in
  let* preds = list_size (int_range 0 2) pred_gen in
  let* aggs = list_size (int_range 1 3) agg_gen in
  let base = Plan.scan ~dataset:ds ~binding:"x" () in
  let filtered = List.fold_left (fun p pred -> Plan.select pred p) base preds in
  let* shape = int_range 0 2 in
  let dedup_aggs aggs =
    (* unique agg names required for record output *)
    List.mapi (fun i (a : Plan.agg) -> { a with agg_name = Fmt.str "%s%d" a.agg_name i }) aggs
  in
  match shape with
  | 0 -> return (Plan.reduce (dedup_aggs aggs) filtered)
  | 1 ->
    return
      (Plan.nest
         ~keys:[ ("g", field "grp") ]
         ~aggs:(dedup_aggs aggs) ~binding:"grp" filtered)
  | _ ->
    return
      (Plan.reduce (dedup_aggs aggs)
         (Plan.join
            ~pred:Expr.(field "grp" ==. Expr.Field (Expr.var "g", "gid"))
            filtered
            (Plan.scan ~dataset:"groups" ~binding:"g" ())))

let sort_agree_prop =
  (* random keys/directions/limits: order-sensitive comparison vs oracle *)
  let open QCheck2.Gen in
  let key_gen =
    let* field = oneofl [ "k"; "grp"; "price"; "name" ] in
    let* dir = oneofl [ Plan.Asc; Plan.Desc ] in
    return (Expr.path "x" [ field ], dir)
  in
  let gen =
    let* keys = list_size (int_range 0 3) key_gen in
    let* limit = opt (int_range 0 250) in
    let* threshold = int_range 0 200 in
    return
      (Plan.Sort
         {
           keys;
           limit;
           input =
             Plan.select
               Expr.(Field (var "x", "k") <. int threshold)
               (Plan.scan ~dataset:"items_row" ~binding:"x" ());
         })
  in
  QCheck2.Test.make ~name:"sort/limit: engines match oracle order" ~count:80 gen
    (fun plan ->
      let reg = Lazy.force registry in
      let expected = Interp.run ~lookup plan in
      Value.equal expected (Executor.run reg ~engine:Executor.Engine_compiled plan)
      && Value.equal expected (Executor.run reg ~engine:Executor.Engine_volcano plan))

let engines_agree_prop =
  QCheck2.Test.make ~name:"compiled == volcano == oracle on random plans" ~count:60
    plan_gen (fun plan ->
      let reg = Lazy.force registry in
      let expected = sort_bag (Interp.run ~lookup plan) in
      Value.equal expected
        (sort_bag (Executor.run reg ~engine:Executor.Engine_compiled plan))
      && Value.equal expected
           (sort_bag (Executor.run reg ~engine:Executor.Engine_volcano plan)))

(* --- counters -------------------------------------------------------------- *)

let test_counters_contrast () =
  let reg = Lazy.force registry in
  let plan =
    Plan.reduce
      ~pred:Expr.(Field (var "x", "k") <. int 100)
      [ Plan.agg ~name:"c" (Monoid.Primitive Monoid.Count) (Expr.int 1) ]
      (Plan.scan ~dataset:"items_row" ~binding:"x" ())
  in
  Counters.reset ();
  ignore (Executor.run reg ~engine:Executor.Engine_compiled plan);
  let compiled = Counters.snapshot () in
  Counters.reset ();
  ignore (Executor.run reg ~engine:Executor.Engine_volcano plan);
  let volcano = Counters.snapshot () in
  Alcotest.(check int) "same tuples" compiled.Counters.tuples volcano.Counters.tuples;
  Alcotest.(check int) "compiled has zero dispatches" 0 compiled.Counters.dispatches;
  Alcotest.(check bool) "volcano pays per-tuple dispatch" true
    (volcano.Counters.dispatches > 100)

let test_error_unknown_dataset () =
  let reg = Lazy.force registry in
  Alcotest.(check bool) "plan error" true
    (try
       ignore
         (Executor.run reg ~engine:Executor.Engine_compiled
            (Plan.scan ~dataset:"nope" ~binding:"x" ()));
       false
     with Perror.Plan_error _ -> true)

let test_error_unknown_field () =
  let reg = Lazy.force registry in
  Alcotest.(check bool) "plan error" true
    (try
       ignore
         (Executor.run reg ~engine:Executor.Engine_compiled
            (Plan.reduce
               [ Plan.agg (Monoid.Primitive Monoid.Sum) Expr.(Field (var "x", "zzz")) ]
               (Plan.scan ~dataset:"items_csv" ~binding:"x" ())));
       false
     with Perror.Plan_error _ -> true)

(* --- radix-clustered join index -------------------------------------------- *)

let test_radix_basic () =
  let keys = [| 5; 3; 5; 9; 3; 5 |] in
  let r = Radix.build keys in
  let rows k =
    let acc = ref [] in
    Radix.iter r k ~f:(fun row -> acc := row :: !acc);
    List.rev !acc
  in
  Alcotest.(check (list int)) "key 5" [ 0; 2; 5 ] (rows 5);
  Alcotest.(check (list int)) "key 3" [ 1; 4 ] (rows 3);
  Alcotest.(check (list int)) "key 9" [ 3 ] (rows 9);
  Alcotest.(check (list int)) "absent" [] (rows 7);
  Alcotest.(check bool) "partitioned" true (Radix.partitions r >= 4)

let test_radix_empty () =
  let r = Radix.build [||] in
  let hit = ref false in
  Radix.iter r 1 ~f:(fun _ -> hit := true);
  Alcotest.(check bool) "no rows" false !hit

let radix_matches_assoc =
  QCheck2.Test.make ~name:"radix index == reference lookup" ~count:200
    QCheck2.Gen.(pair (array_size (int_range 0 400) (int_range (-50) 50)) (int_range (-60) 60))
    (fun (keys, probe) ->
      let r = Radix.build keys in
      let got = ref [] in
      Radix.iter r probe ~f:(fun row -> got := row :: !got);
      let expected =
        Array.to_list keys
        |> List.mapi (fun i k -> (i, k))
        |> List.filter_map (fun (i, k) -> if k = probe then Some i else None)
      in
      List.rev !got = expected)

let qsuite tests = List.map QCheck_alcotest.to_alcotest tests

let () =
  Alcotest.run "engine"
    [
      ( "differential",
        [
          Alcotest.test_case "count+filter" `Quick test_count_filter;
          Alcotest.test_case "multi aggregate" `Quick test_multi_agg;
          Alcotest.test_case "select+project" `Quick test_select_project;
          Alcotest.test_case "string predicates" `Quick test_string_predicates;
          Alcotest.test_case "group by" `Quick test_group_by;
          Alcotest.test_case "join fact-dim" `Quick test_join_fact_dim;
          Alcotest.test_case "join project both sides" `Quick test_join_project_both_sides;
          Alcotest.test_case "left outer join" `Quick test_left_outer_join;
          Alcotest.test_case "nested loop join" `Quick test_nested_loop_join;
          Alcotest.test_case "unnest" `Quick test_unnest;
          Alcotest.test_case "unnest element fields" `Quick test_unnest_project_elem_fields;
          Alcotest.test_case "outer unnest" `Quick test_outer_unnest;
          Alcotest.test_case "unnest then join" `Quick test_unnest_then_join;
          Alcotest.test_case "collect bag" `Quick test_collect_bag_expr;
          Alcotest.test_case "nullable json fields" `Quick test_nullable_json_fields;
          Alcotest.test_case "nullable group key" `Quick test_nullable_group_key;
          Alcotest.test_case "avg" `Quick test_avg_agg;
          Alcotest.test_case "sort operator" `Quick test_sort_operator;
          Alcotest.test_case "sort above join" `Quick test_sort_above_join;
        ]
        @ qsuite [ engines_agree_prop; sort_agree_prop ] );
      ( "radix",
        [
          Alcotest.test_case "basic" `Quick test_radix_basic;
          Alcotest.test_case "empty" `Quick test_radix_empty;
        ]
        @ qsuite [ radix_matches_assoc ] );
      ( "counters",
        [
          Alcotest.test_case "compiled vs volcano" `Quick test_counters_contrast;
        ] );
      ( "registry",
        [
          Alcotest.test_case "index info + invalidate" `Quick (fun () ->
              let reg = Registry.create (make_catalog ()) in
              ignore (Registry.source reg "items_json");
              (match Registry.index_info reg "items_json" with
              | Some info ->
                Alcotest.(check bool) "size positive" true (info.Registry.size_bytes > 0);
                Alcotest.(check bool) "input measured" true (info.Registry.input_bytes > 0)
              | None -> Alcotest.fail "no index info after first access");
              (* cold access collected statistics *)
              let stats =
                Proteus_catalog.Catalog.stats (Registry.catalog reg) "items_json"
              in
              Alcotest.(check bool) "cardinality collected" true
                (Proteus_catalog.Stats.cardinality stats = Some (List.length items));
              Registry.invalidate reg "items_json";
              Alcotest.(check bool) "info dropped" true
                (Registry.index_info reg "items_json" = None));
        ] );
      ( "errors",
        [
          Alcotest.test_case "unknown dataset" `Quick test_error_unknown_dataset;
          Alcotest.test_case "unknown field" `Quick test_error_unknown_field;
        ] );
    ]
