(* Differential tests for the comparator systems: every baseline must
   compute the same answers as the reference interpreter on the plans it
   supports — they differ in *how* (and how fast), never in *what*. *)

open Proteus_model
open Proteus_baselines
module Plan = Proteus_algebra.Plan
module Interp = Proteus_algebra.Interp

let check_value = Alcotest.testable Value.pp Value.equal

let item_type =
  Ptype.Record
    [ ("k", Ptype.Int); ("grp", Ptype.Int); ("price", Ptype.Float);
      ("name", Ptype.String) ]

let items =
  List.init 300 (fun i ->
      Value.record
        [ ("k", Value.Int i); ("grp", Value.Int (i mod 7));
          ("price", Value.Float (float_of_int ((i * 13) mod 50) /. 2.));
          ("name", Value.String (Fmt.str "n%d" (i mod 11))) ])

let groups_type = Ptype.Record [ ("gid", Ptype.Int); ("label", Ptype.String) ]

let groups =
  List.init 7 (fun g ->
      Value.record [ ("gid", Value.Int g); ("label", Value.String (Fmt.str "g%d" g)) ])

let nested_type =
  Ptype.Record
    [
      ("id", Ptype.Int);
      ( "tags",
        Ptype.Collection
          (Ptype.List, Ptype.Record [ ("w", Ptype.Int); ("lbl", Ptype.String) ]) );
    ]

let nested =
  List.init 50 (fun i ->
      Value.record
        [
          ("id", Value.Int i);
          ( "tags",
            Value.list_
              (List.init (i mod 4) (fun j ->
                   Value.record
                     [ ("w", Value.Int ((i * 3) + j)); ("lbl", Value.String (Fmt.str "t%d" j)) ])) );
        ])

let to_json records =
  String.concat "\n"
    (List.map
       (fun r -> Proteus_format.Json.to_string (Proteus_format.Json.of_value r))
       records)

let lookup = function
  | "items" -> items
  | "groups" -> groups
  | "nested" -> nested
  | other -> Perror.plan_error "no dataset %s" other

let sort_bag v =
  match v with
  | Value.Coll (Ptype.Bag, es) -> Value.Coll (Ptype.Bag, List.sort Value.compare es)
  | v -> v

(* --- fixtures -------------------------------------------------------------- *)

let rowstore_pg =
  lazy
    (let s = Rowstore.create ~json_encoding:Rowstore.Jsonb () in
     Rowstore.load_relational s ~name:"items" ~element:item_type items;
     Rowstore.load_relational s ~name:"groups" ~element:groups_type groups;
     Rowstore.load_json s ~name:"nested" ~element:nested_type (to_json nested);
     s)

let rowstore_x =
  lazy
    (let s = Rowstore.create ~json_encoding:Rowstore.Text () in
     Rowstore.load_relational s ~name:"items" ~element:item_type items;
     Rowstore.load_relational s ~name:"groups" ~element:groups_type groups;
     Rowstore.load_json s ~name:"nested" ~element:nested_type (to_json nested);
     s)

let monetdb =
  lazy
    (let s = Colstore.create Colstore.monetdb_config () in
     Colstore.load_relational s ~name:"items" ~element:item_type items;
     Colstore.load_relational s ~name:"groups" ~element:groups_type groups;
     Colstore.load_json s ~name:"nested" ~element:nested_type (to_json nested);
     s)

let dbmsc =
  lazy
    (let s = Colstore.create Colstore.dbmsc_config () in
     Colstore.load_relational s ~name:"items" ~sort_key:"k" ~element:item_type items;
     Colstore.load_relational s ~name:"groups" ~sort_key:"gid" ~element:groups_type groups;
     Colstore.load_json s ~name:"nested" ~element:nested_type (to_json nested);
     s)

let mongo =
  lazy
    (let s = Docstore.create () in
     Docstore.load_json s ~name:"nested" ~element:nested_type (to_json nested);
     Docstore.load_records s ~name:"items" ~element:item_type items;
     Docstore.load_records s ~name:"groups" ~element:groups_type groups;
     s)

let fed =
  lazy
    (let s = Federation.create () in
     Federation.load_relational s ~name:"items" ~sort_key:"k" ~element:item_type items;
     Federation.load_relational s ~name:"groups" ~element:groups_type groups;
     Federation.load_json s ~name:"nested" ~element:nested_type (to_json nested);
     s)

let check_all ?(skip = []) name plan =
  let expected = sort_bag (Interp.run ~lookup plan) in
  let check sys run =
    if not (List.mem sys skip) then
      Alcotest.check check_value
        (Fmt.str "%s (%s)" name sys)
        expected
        (sort_bag (run plan))
  in
  check "postgres" (Rowstore.run (Lazy.force rowstore_pg));
  check "dbms-x" (Rowstore.run (Lazy.force rowstore_x));
  check "monetdb" (Colstore.run (Lazy.force monetdb));
  check "dbms-c" (Colstore.run (Lazy.force dbmsc));
  check "mongo" (Docstore.run (Lazy.force mongo));
  check "federation" (Federation.run (Lazy.force fed))

(* --- plans ------------------------------------------------------------------ *)

let count_filter =
  Plan.reduce
    ~pred:Expr.(Field (var "x", "k") <. int 120)
    [ Plan.agg ~name:"c" (Monoid.Primitive Monoid.Count) (Expr.int 1) ]
    (Plan.scan ~dataset:"items" ~binding:"x" ())

let multi_agg =
  Plan.reduce
    [
      Plan.agg ~name:"c" (Monoid.Primitive Monoid.Count) (Expr.int 1);
      Plan.agg ~name:"mx" (Monoid.Primitive Monoid.Max) Expr.(Field (var "x", "price"));
      Plan.agg ~name:"sm" (Monoid.Primitive Monoid.Sum) Expr.(Field (var "x", "k"));
    ]
    (Plan.select
       Expr.(Field (var "x", "grp") ==. int 3)
       (Plan.scan ~dataset:"items" ~binding:"x" ()))

let string_pred =
  Plan.reduce
    ~pred:Expr.(Binop (Like, Field (var "x", "name"), str "n1%"))
    [ Plan.agg ~name:"c" (Monoid.Primitive Monoid.Count) (Expr.int 1) ]
    (Plan.scan ~dataset:"items" ~binding:"x" ())

let group_by =
  Plan.nest
    ~keys:[ ("g", Expr.(Field (var "x", "grp"))) ]
    ~aggs:
      [
        Plan.agg ~name:"n" (Monoid.Primitive Monoid.Count) (Expr.int 1);
        Plan.agg ~name:"s" (Monoid.Primitive Monoid.Sum) Expr.(Field (var "x", "k"));
      ]
    ~binding:"grp"
    (Plan.scan ~dataset:"items" ~binding:"x" ())

let join_plan =
  Plan.reduce
    [ Plan.agg ~name:"c" (Monoid.Primitive Monoid.Count) (Expr.int 1) ]
    (Plan.select
       Expr.(Field (var "x", "k") <. int 200)
       (Plan.join
          ~pred:Expr.(Field (var "x", "grp") ==. Field (var "g", "gid"))
          (Plan.scan ~dataset:"items" ~binding:"x" ())
          (Plan.scan ~dataset:"groups" ~binding:"g" ())))

let json_agg =
  Plan.reduce
    ~pred:Expr.(Field (var "n", "id") <. int 30)
    [ Plan.agg ~name:"s" (Monoid.Primitive Monoid.Sum) Expr.(Field (var "n", "id")) ]
    (Plan.scan ~dataset:"nested" ~binding:"n" ())

let json_unnest =
  Plan.reduce
    [ Plan.agg ~name:"c" (Monoid.Primitive Monoid.Count) (Expr.int 1) ]
    (Plan.unnest
       ~pred:Expr.(Field (var "t", "w") >. int 20)
       ~path:Expr.(Field (var "n", "tags"))
       ~binding:"t"
       (Plan.scan ~dataset:"nested" ~binding:"n" ()))

let mixed_join =
  (* JSON ⋈ relational: exercises the federation middleware and the row
     stores' JSON-join path *)
  Plan.reduce
    [ Plan.agg ~name:"c" (Monoid.Primitive Monoid.Count) (Expr.int 1) ]
    (Plan.join
       ~pred:Expr.(Binop (Mod, Field (var "n", "id"), int 7) ==. Field (var "g", "gid"))
       (Plan.scan ~dataset:"nested" ~binding:"n" ())
       (Plan.scan ~dataset:"groups" ~binding:"g" ()))

let test_count_filter () = check_all "count+filter" count_filter
let test_multi_agg () = check_all "multi-agg" multi_agg
let test_string_pred () = check_all "string pred" string_pred
let test_group_by () = check_all "group by" group_by
let test_join () = check_all "join" join_plan
let test_json_agg () = check_all "json agg" json_agg

let test_json_unnest () =
  (* colstore-based engines handle this through their (slow) JSON columns *)
  check_all "json unnest" json_unnest

let test_mixed_join () = check_all "mixed join" mixed_join

let test_federation_routes () =
  (* a fresh federation: the shared fixture may already have shipped *)
  let f = Federation.create () in
  Federation.load_relational f ~name:"items" ~sort_key:"k" ~element:item_type items;
  Federation.load_relational f ~name:"groups" ~element:groups_type groups;
  Federation.load_json f ~name:"nested" ~element:nested_type (to_json nested);
  let before = Federation.middleware_seconds f in
  (* JSON-only: no middleware *)
  ignore (Federation.run f json_agg);
  Alcotest.(check bool) "doc-only is free" true
    (Federation.middleware_seconds f = before);
  (* mixed: pays once *)
  ignore (Federation.run f mixed_join);
  let after_first = Federation.middleware_seconds f in
  Alcotest.(check bool) "mixed pays middleware" true (after_first > before);
  ignore (Federation.run f mixed_join);
  Alcotest.(check bool) "shipping is one-time" true
    (Federation.middleware_seconds f = after_first)

let test_dbmsc_skipping_correct () =
  (* range predicates on the sort key must hit the binary-search path and
     stay correct at the boundaries *)
  let s = Lazy.force dbmsc in
  List.iter
    (fun (op, k) ->
      let plan =
        Plan.reduce
          ~pred:(Expr.Binop (op, Expr.(Field (var "x", "k")), Expr.int k))
          [ Plan.agg ~name:"c" (Monoid.Primitive Monoid.Count) (Expr.int 1) ]
          (Plan.scan ~dataset:"items" ~binding:"x" ())
      in
      Alcotest.check check_value
        (Fmt.str "skip %d" k)
        (Interp.run ~lookup plan) (Colstore.run s plan))
    [ (Expr.Lt, 0); (Expr.Lt, 150); (Expr.Le, 299); (Expr.Gt, 299); (Expr.Ge, 0);
      (Expr.Eq, 123); (Expr.Eq, -5); (Expr.Lt, 1000) ]

let test_rowstore_json_join_is_nested_loop () =
  (* the optimizer-blindness effect exists (correctness unchanged) *)
  let s = Lazy.force rowstore_pg in
  Alcotest.check check_value "blind join correct"
    (Interp.run ~lookup mixed_join)
    (Rowstore.run s mixed_join)

let test_table_sizes_reported () =
  let pg = Lazy.force rowstore_pg in
  let mg = Lazy.force mongo in
  Alcotest.(check bool) "jsonb bytes" true (Rowstore.table_bytes pg "nested" > 0);
  Alcotest.(check bool) "bson bytes" true (Docstore.collection_bytes mg "nested" > 0);
  Alcotest.(check int) "row counts agree" (Rowstore.row_count pg "nested")
    (Docstore.doc_count mg "nested")

let () =
  Alcotest.run "baselines"
    [
      ( "differential",
        [
          Alcotest.test_case "count+filter" `Quick test_count_filter;
          Alcotest.test_case "multi-agg" `Quick test_multi_agg;
          Alcotest.test_case "string pred" `Quick test_string_pred;
          Alcotest.test_case "group by" `Quick test_group_by;
          Alcotest.test_case "join" `Quick test_join;
          Alcotest.test_case "json agg" `Quick test_json_agg;
          Alcotest.test_case "json unnest" `Quick test_json_unnest;
          Alcotest.test_case "mixed join" `Quick test_mixed_join;
        ] );
      ( "behaviour",
        [
          Alcotest.test_case "federation routing" `Quick test_federation_routes;
          Alcotest.test_case "dbms-c skipping" `Quick test_dbmsc_skipping_correct;
          Alcotest.test_case "rowstore json join" `Quick
            test_rowstore_json_join_is_nested_loop;
          Alcotest.test_case "table sizes" `Quick test_table_sizes_reported;
        ] );
    ]
