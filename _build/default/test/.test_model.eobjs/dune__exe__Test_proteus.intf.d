test/test_proteus.mli:
