test/test_workloads.ml: Alcotest Array Db Float Fmt Lazy List Perror Proteus Proteus_algebra Proteus_baselines Proteus_format Proteus_model Proteus_symantec Proteus_tpch Ptype Schema String Value
