test/test_optimizer.mli:
