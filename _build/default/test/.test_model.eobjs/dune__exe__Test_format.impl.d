test/test_format.ml: Alcotest Binjson Csv Csv_index Float Fmt Fun Json Json_index List Numparse Perror Proteus_format Proteus_model Ptype QCheck2 QCheck_alcotest Schema String Value
