test/test_format.mli:
