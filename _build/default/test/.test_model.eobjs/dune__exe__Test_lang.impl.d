test/test_lang.ml: Alcotest Array Calc Comprehension Lexer List Normalize Option Perror Proteus_algebra Proteus_calculus Proteus_lang Proteus_model Ptype Sql String To_algebra Value
