test/test_calculus.ml: Alcotest Calc Expr List Monoid Normalize Perror Proteus_algebra Proteus_calculus Proteus_model Ptype QCheck2 QCheck_alcotest To_algebra Value
