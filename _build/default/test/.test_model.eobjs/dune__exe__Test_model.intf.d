test/test_model.mli:
