test/test_baselines.ml: Alcotest Colstore Docstore Expr Federation Fmt Lazy List Monoid Perror Proteus_algebra Proteus_baselines Proteus_format Proteus_model Ptype Rowstore String Value
