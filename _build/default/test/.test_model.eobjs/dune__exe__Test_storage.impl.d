test/test_storage.ml: Alcotest Array Column Fun List Memory Perror Proteus_model Proteus_storage Ptype QCheck2 QCheck_alcotest Rowpage Schema Value
