test/test_calculus.mli:
