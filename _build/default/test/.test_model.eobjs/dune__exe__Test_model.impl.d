test/test_model.ml: Alcotest Date_util Expr Fmt List Monoid Perror Proteus_model Ptype QCheck2 QCheck_alcotest Schema Value
