lib/tpch/tpch.ml: Array Buffer Expr Hashtbl Int64 List Monoid Proteus_algebra Proteus_format Proteus_model Proteus_storage Ptype Schema Value
