lib/tpch/tpch.mli: Proteus_algebra Proteus_model Proteus_storage Ptype Value
