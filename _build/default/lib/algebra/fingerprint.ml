open Proteus_model

(* Rename every binding to $k, numbering in a post-order walk so that
   structurally equal plans get identical names regardless of source-level
   variable choice. A substitution environment maps original names to
   canonical ones while rewriting the expressions above each binder. *)

let canonical (plan : Plan.t) : Plan.t =
  let counter = ref 0 in
  let fresh () =
    let n = Fmt.str "$%d" !counter in
    incr counter;
    n
  in
  let rename_expr subst e =
    List.fold_left (fun e (old_name, new_name) -> Expr.rename old_name new_name e) e subst
  in
  let rec go (t : Plan.t) : Plan.t * (string * string) list =
    match t with
    | Scan s ->
      let b = fresh () in
      (Scan { s with binding = b }, [ (s.binding, b) ])
    | Select { pred; input } ->
      let input, subst = go input in
      (Select { pred = rename_expr subst pred; input }, subst)
    | Join r ->
      let left, sl = go r.left in
      let right, sr = go r.right in
      let subst = sl @ sr in
      ( Join
          {
            r with
            left;
            right;
            pred = rename_expr subst r.pred;
            left_key = Option.map (rename_expr sl) r.left_key;
            right_key = Option.map (rename_expr sr) r.right_key;
          },
        subst )
    | Unnest r ->
      let input, subst = go r.input in
      let b = fresh () in
      let subst' = (r.binding, b) :: subst in
      ( Unnest
          {
            r with
            input;
            binding = b;
            path = rename_expr subst r.path;
            pred = rename_expr subst' r.pred;
          },
        subst' )
    | Reduce r ->
      let input, subst = go r.input in
      ( Reduce
          {
            monoid_output =
              List.map (fun (a : Plan.agg) -> { a with expr = rename_expr subst a.expr })
                r.monoid_output;
            pred = rename_expr subst r.pred;
            input;
          },
        [] )
    | Nest r ->
      let input, subst = go r.input in
      let b = fresh () in
      ( Nest
          {
            keys = List.map (fun (n, e) -> (n, rename_expr subst e)) r.keys;
            aggs =
              List.map (fun (a : Plan.agg) -> { a with expr = rename_expr subst a.expr })
                r.aggs;
            pred = rename_expr subst r.pred;
            binding = b;
            input;
          },
        [ (r.binding, b) ] )
    | Project r ->
      let input, subst = go r.input in
      let b = fresh () in
      ( Project
          {
            binding = b;
            fields = List.map (fun (n, e) -> (n, rename_expr subst e)) r.fields;
            input;
          },
        [ (r.binding, b) ] )
    | Sort r ->
      let input, subst = go r.input in
      ( Sort
          { r with input; keys = List.map (fun (e, d) -> (rename_expr subst e, d)) r.keys },
        subst )
  in
  fst (go plan)

let plan t = Plan.to_string (canonical t)

let expr ~binding e = Expr.to_string (Expr.rename binding "$0" e)
