lib/algebra/plan.mli: Expr Format Monoid Proteus_model
