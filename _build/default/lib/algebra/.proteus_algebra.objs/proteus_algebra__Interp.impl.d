lib/algebra/interp.ml: Expr Hashtbl List Monoid Perror Plan Proteus_model Value
