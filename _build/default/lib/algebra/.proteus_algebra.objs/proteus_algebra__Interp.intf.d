lib/algebra/interp.mli: Expr Plan Proteus_model Value
