lib/algebra/fingerprint.ml: Expr Fmt List Option Plan Proteus_model
