lib/algebra/plan.ml: Expr Fmt List Monoid Option Perror Proteus_model
