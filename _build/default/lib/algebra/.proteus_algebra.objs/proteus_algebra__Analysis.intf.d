lib/algebra/analysis.mli: Expr Plan Proteus_model
