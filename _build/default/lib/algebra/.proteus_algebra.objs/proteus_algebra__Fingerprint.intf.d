lib/algebra/fingerprint.mli: Expr Plan Proteus_model
