lib/algebra/analysis.ml: Expr Hashtbl List Option Plan Proteus_model String
