open Proteus_model

let fold_aggs (aggs : Plan.agg list) (envs : Expr.env list) : Value.t =
  let eval_one (a : Plan.agg) =
    match a.monoid with
    | Monoid.Primitive p ->
      let acc = Monoid.acc_create p in
      List.iter (fun env -> Monoid.acc_step acc (Expr.eval env a.expr)) envs;
      Monoid.acc_value acc
    | Monoid.Collection c -> Monoid.collect c (List.map (fun env -> Expr.eval env a.expr) envs)
  in
  match aggs with
  | [] -> Perror.plan_error "fold with no aggregates"
  | [ a ] -> eval_one a
  | many -> Value.record (List.map (fun a -> (a.Plan.agg_name, eval_one a)) many)

let rec stream ~lookup (plan : Plan.t) : Expr.env list =
  match plan with
  | Scan { dataset; binding; _ } ->
    List.map (fun v -> [ (binding, v) ]) (lookup dataset)
  | Select { pred; input } ->
    List.filter (fun env -> Expr.eval_pred env pred) (stream ~lookup input)
  | Join { kind; left; right; pred; _ } ->
    let ls = stream ~lookup left and rs = stream ~lookup right in
    let null_right = List.map (fun b -> (b, Value.Null)) (Plan.bindings right) in
    List.concat_map
      (fun lenv ->
        let matches =
          List.filter_map
            (fun renv ->
              let env = lenv @ renv in
              if Expr.eval_pred env pred then Some env else None)
            rs
        in
        match kind, matches with
        | Inner, ms -> ms
        | Left_outer, [] -> [ lenv @ null_right ]
        | Left_outer, ms -> ms)
      ls
  | Unnest { outer; path; binding; pred; input } ->
    List.concat_map
      (fun env ->
        let elems =
          match Expr.eval env path with
          | Value.Coll (_, es) -> es
          | Value.Null -> []
          | v -> Perror.type_error "unnest over non-collection %a" Value.pp v
        in
        let matches =
          List.filter_map
            (fun e ->
              let env' = (binding, e) :: env in
              if Expr.eval_pred env' pred then Some ((binding, e) :: env) else None)
            elems
        in
        match outer, matches with
        | false, ms -> ms
        | true, [] -> [ (binding, Value.Null) :: env ]
        | true, ms -> ms)
      (stream ~lookup input)
  | Reduce _ -> Perror.plan_error "Reduce has no environment stream; use run"
  | Nest { keys; aggs; pred; binding; input } ->
    let envs =
      List.filter (fun env -> Expr.eval_pred env pred) (stream ~lookup input)
    in
    (* Group by the tuple of key values, preserving first-seen order. *)
    let groups : (Value.t list, Expr.env list ref) Hashtbl.t = Hashtbl.create 64 in
    let order = ref [] in
    List.iter
      (fun env ->
        let kv = List.map (fun (_, e) -> Expr.eval env e) keys in
        match Hashtbl.find_opt groups kv with
        | Some cell -> cell := env :: !cell
        | None ->
          Hashtbl.add groups kv (ref [ env ]);
          order := kv :: !order)
      envs;
    List.rev_map
      (fun kv ->
        let members = List.rev !(Hashtbl.find groups kv) in
        let key_fields = List.map2 (fun (n, _) v -> (n, v)) keys kv in
        let agg_fields =
          List.map (fun (a : Plan.agg) -> (a.agg_name, fold_aggs [ a ] members)) aggs
        in
        [ (binding, Value.record (key_fields @ agg_fields)) ])
      !order
  | Project { binding; fields; input } ->
    List.map
      (fun env ->
        [ (binding, Value.record (List.map (fun (n, e) -> (n, Expr.eval env e)) fields)) ])
      (stream ~lookup input)
  | Sort { keys; limit; input } ->
    let envs = stream ~lookup input in
    let decorated =
      List.map (fun env -> (List.map (fun (e, _) -> Expr.eval env e) keys, env)) envs
    in
    let cmp (ka, _) (kb, _) =
      let rec go ks ds =
        match ks, ds with
        | (a, b) :: rest, (_, d) :: drest ->
          let c = Value.compare a b in
          if c <> 0 then (match (d : Plan.sort_dir) with Plan.Asc -> c | Plan.Desc -> -c)
          else go rest drest
        | _, _ -> 0
      in
      go (List.combine ka kb) keys
    in
    let sorted = List.stable_sort cmp decorated in
    let sorted = List.map snd sorted in
    (match limit with
    | None -> sorted
    | Some n -> List.filteri (fun i _ -> i < n) sorted)

let run ~lookup (plan : Plan.t) : Value.t =
  match plan with
  | Reduce { monoid_output; pred; input } ->
    let envs =
      List.filter (fun env -> Expr.eval_pred env pred) (stream ~lookup input)
    in
    fold_aggs monoid_output envs
  | _ ->
    let envs = stream ~lookup plan in
    let visible = Plan.bindings plan in
    let shape env =
      match visible with
      | [ b ] -> ( match List.assoc_opt b env with Some v -> v | None -> Value.Null)
      | bs ->
        Value.record
          (List.map
             (fun b ->
               (b, match List.assoc_opt b env with Some v -> v | None -> Value.Null))
             bs)
    in
    Value.bag (List.map shape envs)
