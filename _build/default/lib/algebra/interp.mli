(** Reference evaluator for the nested relational algebra.

    Deliberately naive: boxed values, list streams, nested-loop joins. It is
    the semantic oracle that both real executors (the Volcano interpreter and
    the compiled engine) are differentially tested against — not a query
    path. *)

open Proteus_model

(** [run ~lookup plan] evaluates [plan], resolving dataset names to their
    boxed elements through [lookup].

    Result shape: a [Reduce] root yields the fold's value directly (a record
    when it has several aggregates). Any other root yields a bag containing,
    per output environment, the single bound value when exactly one variable
    is visible, or a record of all visible bindings otherwise. *)
val run : lookup:(string -> Value.t list) -> Plan.t -> Value.t

(** [stream ~lookup plan] exposes the raw environment stream (for tests). *)
val stream : lookup:(string -> Value.t list) -> Plan.t -> Expr.env list
