lib/proteus/typeinfer.mli: Proteus_format Proteus_model Ptype
