lib/proteus/typespec.ml: List Perror Proteus_model Ptype String
