lib/proteus/output.ml: Array Buffer List Perror Proteus_format Proteus_model String Value
