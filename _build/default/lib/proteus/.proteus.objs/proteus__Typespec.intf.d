lib/proteus/typespec.mli: Proteus_model
