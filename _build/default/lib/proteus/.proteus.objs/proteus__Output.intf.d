lib/proteus/output.mli: Proteus_model Value
