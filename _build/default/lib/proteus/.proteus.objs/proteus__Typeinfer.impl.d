lib/proteus/typeinfer.ml: Array Date_util List Perror Proteus_format Proteus_model Ptype String
