lib/proteus/db.mli: Catalog Column Proteus_algebra Proteus_cache Proteus_catalog Proteus_engine Proteus_format Proteus_model Proteus_plugin Proteus_storage Ptype Value
