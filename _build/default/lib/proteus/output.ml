open Proteus_model
module Json = Proteus_format.Json

let to_json (v : Value.t) =
  match v with
  | Value.Coll (_, rows) ->
    let buf = Buffer.create 256 in
    List.iter
      (fun r ->
        Json.to_buffer buf (Json.of_value r);
        Buffer.add_char buf '\n')
      rows;
    Buffer.contents buf
  | v -> Json.to_string (Json.of_value v)

let rows_and_header (v : Value.t) =
  match v with
  | Value.Coll (_, rows) ->
    let header =
      match rows with
      | Value.Record fields :: _ -> Array.to_list (Array.map fst fields)
      | [] -> []
      | _ -> [ "value" ]
    in
    let cells r =
      match r with
      | Value.Record fields -> Array.to_list (Array.map snd fields)
      | v -> [ v ]
    in
    (header, List.map cells rows)
  | v -> ([ "value" ], [ [ v ] ])

let render_cell (v : Value.t) =
  match v with
  | Value.String s -> s
  | Value.Null -> ""
  | v -> Value.to_string v

let to_csv (v : Value.t) =
  let header, rows = rows_and_header v in
  List.iter
    (fun cells ->
      List.iter
        (fun c ->
          match (c : Value.t) with
          | Value.Record _ | Value.Coll (_, _ :: _) ->
            Perror.type_error "CSV output requires flat rows, got %a" Value.pp c
          | _ -> ())
        cells)
    rows;
  let buf = Buffer.create 256 in
  let config = Proteus_format.Csv.default_config in
  Buffer.add_string buf (String.concat "," header);
  Buffer.add_char buf '\n';
  List.iter
    (fun cells -> Proteus_format.Csv.write_row buf config (Array.of_list cells))
    rows;
  Buffer.contents buf

let to_table (v : Value.t) =
  let header, rows = rows_and_header v in
  let rendered = List.map (fun cells -> List.map render_cell cells) rows in
  let widths =
    List.fold_left
      (fun acc row ->
        List.map2 (fun w c -> max w (String.length c)) acc
          (* pad ragged rows defensively *)
          (if List.length row = List.length acc then row
           else List.mapi (fun i _ -> try List.nth row i with _ -> "") acc))
      (List.map String.length header)
      rendered
  in
  let buf = Buffer.create 256 in
  let emit_row cells =
    List.iteri
      (fun i c ->
        if i > 0 then Buffer.add_string buf "  ";
        Buffer.add_string buf c;
        Buffer.add_string buf (String.make (max 0 (List.nth widths i - String.length c)) ' '))
      cells;
    Buffer.add_char buf '\n'
  in
  emit_row header;
  emit_row (List.map (fun w -> String.make w '-') widths);
  List.iter emit_row rendered;
  Buffer.contents buf
