(** A compact textual syntax for element types, used by the CLI to declare
    dataset schemas on the command line.

    {v
    spec  ::= field ("," field)*
    field ::= name ":" ty
    ty    ::= "int" | "float" | "bool" | "string" | "date"
            | ty "?"                 nullable
            | "[" spec "]"           list of records
            | "{" spec "}"           nested record
    v}

    Example: ["id:int,children:[name:string,age:int]"]. *)

(** [parse s] — raises [Perror.Parse_error] on malformed specs. *)
val parse : string -> Proteus_model.Ptype.t

(** [render ty] prints a type back in the spec syntax (inverse of {!parse}
    for supported types). *)
val render : Proteus_model.Ptype.t -> string
