(** Output plug-ins: flushing query results out in a chosen format
    (Section 4's Output Plug-ins also serve result emission — the engine is
    not tied to one output shape any more than to one input shape). *)

open Proteus_model

(** [to_json v] renders a result value as JSON — a collection becomes one
    object/value per line, matching the input convention. *)
val to_json : Value.t -> string

(** [to_csv v] renders a bag/list of flat records as CSV with a header row.
    Raises [Perror.Type_error] when rows are not flat records or the result
    is a scalar. *)
val to_csv : Value.t -> string

(** [to_table v] renders a result as an aligned text table for terminals. *)
val to_table : Value.t -> string
