open Proteus_model

let fail pos fmt = Perror.parse_error ~what:"typespec" ~pos fmt

let parse s : Ptype.t =
  let n = String.length s in
  let pos = ref 0 in
  let peek () = if !pos < n then Some s.[!pos] else None in
  let skip_ws () =
    while !pos < n && (s.[!pos] = ' ' || s.[!pos] = '\t') do
      incr pos
    done
  in
  let ident () =
    skip_ws ();
    let start = !pos in
    while
      !pos < n
      && (match s.[!pos] with
         | 'a' .. 'z' | 'A' .. 'Z' | '0' .. '9' | '_' -> true
         | _ -> false)
    do
      incr pos
    done;
    if !pos = start then fail !pos "expected identifier";
    String.sub s start (!pos - start)
  in
  let expect c =
    skip_ws ();
    if peek () = Some c then incr pos else fail !pos "expected %C" c
  in
  let rec ty () : Ptype.t =
    skip_ws ();
    let base =
      match peek () with
      | Some '[' ->
        incr pos;
        let inner = spec () in
        expect ']';
        Ptype.Collection (Ptype.List, inner)
      | Some '{' ->
        incr pos;
        let inner = spec () in
        expect '}';
        inner
      | _ -> (
        match ident () with
        | "int" -> Ptype.Int
        | "float" -> Ptype.Float
        | "bool" -> Ptype.Bool
        | "string" -> Ptype.String
        | "date" -> Ptype.Date
        | other -> fail !pos "unknown type %s" other)
    in
    skip_ws ();
    if peek () = Some '?' then begin
      incr pos;
      Ptype.Option base
    end
    else base
  and spec () : Ptype.t =
    let rec fields acc =
      let name = ident () in
      expect ':';
      let t = ty () in
      let acc = (name, t) :: acc in
      skip_ws ();
      if peek () = Some ',' then begin
        incr pos;
        fields acc
      end
      else List.rev acc
    in
    Ptype.Record (fields [])
  in
  let result = spec () in
  skip_ws ();
  if !pos <> n then fail !pos "trailing input";
  result

(* field-position types brace nested records; the top-level spec does not *)
let rec render_ty (ty : Ptype.t) =
  match ty with
  | Ptype.Int -> "int"
  | Ptype.Float -> "float"
  | Ptype.Bool -> "bool"
  | Ptype.String -> "string"
  | Ptype.Date -> "date"
  | Ptype.Option t -> render_ty t ^ "?"
  | Ptype.Collection (_, (Ptype.Record _ as r)) -> "[" ^ render_fields r ^ "]"
  | Ptype.Collection (_, t) -> "[" ^ render_ty t ^ "]"
  | Ptype.Record _ as r -> "{" ^ render_fields r ^ "}"

and render_fields = function
  | Ptype.Record fields ->
    String.concat "," (List.map (fun (n, t) -> n ^ ":" ^ render_ty t) fields)
  | t -> render_ty t

let render (ty : Ptype.t) =
  match ty with Ptype.Record _ -> render_fields ty | t -> render_ty t
