(** Schema inference for raw files.

    The engine needs the element type of a dataset before it can generate
    access code; when no schema is given, these functions derive one from
    the data itself:

    - JSON: the types of all objects are unified — fields missing from some
      objects become [Option], [Int] joins with [Float] as [Float], arrays
      unify their element types, nested objects unify field-wise;
    - CSV: the header row names the columns, and each column gets the
      narrowest type that parses every value ([Int] → [Float] → [Date] →
      [Bool] → [String]); columns with empty fields become [Option].

    Genuinely conflicting types (a field that is sometimes a number and
    sometimes an object) raise [Perror.Type_error] rather than guessing. *)

open Proteus_model

(** [of_json contents] infers the element type of a JSON object sequence.
    Raises [Perror.Parse_error] on malformed JSON, [Perror.Type_error] on
    unresolvable conflicts, [Invalid_argument] on empty input. *)
val of_json : string -> Ptype.t

(** [of_csv ?config contents] infers from a CSV file {e with a header row}
    (the header requirement is implicit; [config]'s [has_header] is
    ignored). *)
val of_csv : ?config:Proteus_format.Csv.config -> string -> Ptype.t
