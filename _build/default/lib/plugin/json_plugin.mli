(** JSON input plug-in: navigates raw JSON bytes through the two-level
    structural index (Section 5.2, Figure 4).

    Per-query specialization: in fixed-schema mode the path→slot resolution
    happens {e once here}, so the per-tuple accessor is a direct Level-1
    array read; in flexible mode it is a per-object Level-0 binary search.
    Nested record paths ("c.d.d1") dereference in one step. Unnest walks
    array spans without boxing elements. *)

open Proteus_model

(** [make ~element ~index] builds a source. [element] is the declared type
    of one object; fields may be [Option]-typed to allow absence. *)
val make : element:Ptype.t -> index:Proteus_format.Json_index.t -> Source.t
