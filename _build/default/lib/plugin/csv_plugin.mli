(** CSV input plug-in: serves queries directly over the raw CSV bytes using
    the positional structural index — no loading step (Section 5.2).

    When the index detects fixed-width rows, field positions are computed
    arithmetically instead of via per-row anchors ("specializing per dataset
    contents"). *)

open Proteus_model

(** [make ~config ~schema ~index ~src] builds a source over the raw bytes
    [src]. [index] must have been built over the same bytes. *)
val make :
  config:Proteus_format.Csv.config ->
  schema:Schema.t ->
  index:Proteus_format.Csv_index.t ->
  src:string ->
  Source.t
