open Proteus_model
open Proteus_storage

type t = {
  ty : Ptype.t;
  nullable : bool;
  get_int : (unit -> int) option;
  get_float : (unit -> float) option;
  get_bool : (unit -> bool) option;
  get_str : (unit -> string) option;
  is_null : (unit -> bool) option;
  get_val : unit -> Value.t;
}

let wrap_ty null ty = match null with None -> ty | Some _ -> Ptype.Option ty

let of_int ?null get =
  {
    ty = wrap_ty null Ptype.Int;
    nullable = null <> None;
    get_int = Some get;
    get_float = Some (fun () -> float_of_int (get ()));
    get_bool = None;
    get_str = None;
    is_null = null;
    get_val =
      (match null with
      | None -> fun () -> Value.Int (get ())
      | Some isnull -> fun () -> if isnull () then Value.Null else Value.Int (get ()));
  }

let of_date ?null get =
  {
    (of_int ?null get) with
    ty = wrap_ty null Ptype.Date;
    get_val =
      (match null with
      | None -> fun () -> Value.Date (get ())
      | Some isnull -> fun () -> if isnull () then Value.Null else Value.Date (get ()));
  }

let of_float ?null get =
  {
    ty = wrap_ty null Ptype.Float;
    nullable = null <> None;
    get_int = None;
    get_float = Some get;
    get_bool = None;
    get_str = None;
    is_null = null;
    get_val =
      (match null with
      | None -> fun () -> Value.Float (get ())
      | Some isnull -> fun () -> if isnull () then Value.Null else Value.Float (get ()));
  }

let of_bool ?null get =
  {
    ty = wrap_ty null Ptype.Bool;
    nullable = null <> None;
    get_int = None;
    get_float = None;
    get_bool = Some get;
    get_str = None;
    is_null = null;
    get_val =
      (match null with
      | None -> fun () -> Value.Bool (get ())
      | Some isnull -> fun () -> if isnull () then Value.Null else Value.Bool (get ()));
  }

let of_str ?null get =
  {
    ty = wrap_ty null Ptype.String;
    nullable = null <> None;
    get_int = None;
    get_float = None;
    get_bool = None;
    get_str = Some get;
    is_null = null;
    get_val =
      (match null with
      | None -> fun () -> Value.String (get ())
      | Some isnull -> fun () -> if isnull () then Value.Null else Value.String (get ()));
  }

let boxed ty get_val =
  {
    ty;
    nullable = (match ty with Ptype.Option _ -> true | _ -> false);
    get_int = None;
    get_float = None;
    get_bool = None;
    get_str = None;
    is_null = None;
    get_val;
  }

let of_column col ~cur ty =
  match (col : Column.t) with
  | Column.Ints a -> (
    match Ptype.unwrap_option ty with
    | Ptype.Date -> of_date (fun () -> a.(!cur))
    | _ -> of_int (fun () -> a.(!cur)))
  | Column.Floats a -> of_float (fun () -> a.(!cur))
  | Column.Bools a -> of_bool (fun () -> a.(!cur))
  | Column.Strings a -> of_str (fun () -> a.(!cur))
  | Column.Nullmask (mask, inner) -> (
    let null = Some (fun () -> mask.(!cur)) in
    match inner with
    | Column.Ints a -> (
      match Ptype.unwrap_option ty with
      | Ptype.Date -> of_date ?null (fun () -> a.(!cur))
      | _ -> of_int ?null (fun () -> a.(!cur)))
    | Column.Floats a -> of_float ?null (fun () -> a.(!cur))
    | Column.Bools a -> of_bool ?null (fun () -> a.(!cur))
    | Column.Strings a -> of_str ?null (fun () -> a.(!cur))
    | Column.Nullmask _ -> boxed ty (fun () -> Column.get col !cur))
