(** Input plug-ins for relational binary data (Section 5.2): row-oriented
    pages and column files, plus column sets backing caches and materialized
    intermediates. The generated access primitives read fixed memory
    positions — no parsing, no per-tuple type dispatch. *)

open Proteus_model
open Proteus_storage

(** [of_rowpage page] serves a binary row-oriented dataset. *)
val of_rowpage : Rowpage.t -> Source.t

(** [of_columns ~element cols] serves OID-aligned binary columns (the
    MonetDB-style column files of the evaluation, cache columns, and
    materialized join sides). [cols] keys are dotted field paths; all
    columns must have equal length. *)
val of_columns : element:Ptype.t -> (string * Column.t) list -> Source.t
