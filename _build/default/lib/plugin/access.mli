(** Typed field accessors — the runtime face of an input plug-in.

    An accessor reads one field of the input element a scan cursor currently
    points at. The plug-in constructs it {e once per query} (Section 5.1's
    code generation, staged here as closure construction): the format
    dispatch, byte offsets, index slots and type checks are all resolved at
    construction time, so each per-tuple call is a monomorphic closure.

    The typed getters ([get_int], ...) are present only when the plug-in
    could specialize for that type; [get_val] always works and is the boxed
    fallback used by un-specialized consumers (the Volcano interpreter, and
    any expression whose type the compiler could not pin down). *)

open Proteus_model

type t = {
  ty : Ptype.t;                        (** static type, [Option]-wrapped if nullable *)
  nullable : bool;
  get_int : (unit -> int) option;
  get_float : (unit -> float) option;
  get_bool : (unit -> bool) option;
  get_str : (unit -> string) option;
  is_null : (unit -> bool) option;     (** present when [nullable] with typed paths *)
  get_val : unit -> Value.t;           (** boxed read; yields [Null] for nulls *)
}

(** {1 Constructors} *)

val of_int : ?null:(unit -> bool) -> (unit -> int) -> t
val of_date : ?null:(unit -> bool) -> (unit -> int) -> t
val of_float : ?null:(unit -> bool) -> (unit -> float) -> t
val of_bool : ?null:(unit -> bool) -> (unit -> bool) -> t
val of_str : ?null:(unit -> bool) -> (unit -> string) -> t

(** [boxed ty f] wraps a boxed-only accessor (nested values etc.). *)
val boxed : Ptype.t -> (unit -> Value.t) -> t

(** [of_column col ~cur ty] reads a {!Proteus_storage.Column.t} at the row
    index in [cur] — the access path for binary columns, caches, and
    materialized intermediates. Typed fast paths match the column payload. *)
val of_column : Proteus_storage.Column.t -> cur:int ref -> Ptype.t -> t
