lib/plugin/json_plugin.mli: Proteus_format Proteus_model Ptype Source
