lib/plugin/json_plugin.ml: Access Array Date_util Hashtbl List Perror Proteus_format Proteus_model Ptype Source String Value
