lib/plugin/cache_iface.mli: Column Expr Memory Proteus_model Proteus_storage Ptype
