lib/plugin/binary_plugin.mli: Column Proteus_model Proteus_storage Ptype Rowpage Source
