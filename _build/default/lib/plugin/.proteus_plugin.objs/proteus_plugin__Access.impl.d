lib/plugin/access.ml: Array Column Proteus_model Proteus_storage Ptype Value
