lib/plugin/source.ml: Access List Perror Proteus_model Ptype String Value
