lib/plugin/cache_iface.ml: Column Memory Proteus_model Proteus_storage
