lib/plugin/binary_plugin.ml: Access Column List Perror Proteus_model Proteus_storage Ptype Rowpage Schema Source Value
