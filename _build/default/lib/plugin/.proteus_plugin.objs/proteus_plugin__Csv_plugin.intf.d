lib/plugin/csv_plugin.mli: Proteus_format Proteus_model Schema Source
