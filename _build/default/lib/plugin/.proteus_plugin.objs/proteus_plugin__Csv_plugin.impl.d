lib/plugin/csv_plugin.ml: Access Date_util List Perror Proteus_format Proteus_model Ptype Schema Source String Value
