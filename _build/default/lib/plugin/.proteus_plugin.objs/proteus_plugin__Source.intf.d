lib/plugin/source.mli: Access Proteus_model Ptype Value
