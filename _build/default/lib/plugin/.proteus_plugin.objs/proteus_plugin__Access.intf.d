lib/plugin/access.mli: Proteus_model Proteus_storage Ptype Value
