lib/plugin/registry.mli: Cache_iface Catalog Proteus_catalog Source
