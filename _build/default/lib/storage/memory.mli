(** The Memory Manager (Section 4).

    Two concerns, as in the paper:

    - {b Input files} are memory-mapped and paging is left to the OS. Here a
      file is read into an immutable string once per registration and served
      byte-addressably from then on; in-memory datasets register as blobs
      under a synthetic name, so generators can feed the engine without
      touching the disk.

    - {b Caching structures} live in a pinned arena with a budget; when the
      budget is exceeded a format-biased LRU evicts the cheapest-to-rebuild
      blocks first (bias order: JSON > CSV > binary, Section 6 "Cache
      Policies"). *)

type t

val create : ?cache_budget:int -> unit -> t
(** [cache_budget] is the arena size in bytes (default 256 MiB). *)

(** {1 Input registry} *)

(** [load_file t path] reads [path] once and memoizes its contents. *)
val load_file : t -> string -> string

(** [register_blob t ~name contents] registers an in-memory "file". *)
val register_blob : t -> name:string -> string -> unit

(** [contents t name] is the bytes of a registered blob or loaded file.
    @raise Not_found when [name] was never registered or loaded. *)
val contents : t -> string -> string

val is_registered : t -> string -> bool

(** [forget t name] drops a registered input (tests / update handling). *)
val forget : t -> string -> unit

(** {1 Cache arena} *)

module Arena : sig
  type mgr = t
  type t

  (** Eviction preference class; bigger bias = kept longer. *)
  type bias = Bias_binary | Bias_csv | Bias_json

  val of_mgr : mgr -> t
  val budget : t -> int
  val used : t -> int

  (** [put t ~id ~size ~bias ~on_evict] inserts (or replaces) block [id],
      evicting unpinned blocks — lowest bias first, then least recently
      used — until the block fits. Raises [Invalid_argument] if [size]
      exceeds the whole budget. [on_evict] runs when the block is evicted
      (not when it is replaced by [put] with the same id). *)
  val put : t -> id:string -> size:int -> bias:bias -> on_evict:(unit -> unit) -> unit

  (** [touch t id] marks the block as recently used; false if absent. *)
  val touch : t -> string -> bool

  val mem : t -> string -> bool
  val remove : t -> string -> unit
  val pin : t -> string -> unit
  val unpin : t -> string -> unit
  val block_count : t -> int

  (** Ids currently resident, most recently used first. *)
  val resident : t -> string list
end
