let src = Logs.Src.create "proteus.memory" ~doc:"Proteus memory manager"

module Log = (val Logs.src_log src : Logs.LOG)

type block = {
  id : string;
  size : int;
  bias : int;                   (* 0 = binary, 1 = csv, 2 = json *)
  mutable last_use : int;
  mutable pinned : bool;
  on_evict : unit -> unit;
}

type t = {
  inputs : (string, string) Hashtbl.t;
  blocks : (string, block) Hashtbl.t;
  budget : int;
  mutable used : int;
  mutable clock : int;
}

let create ?(cache_budget = 256 * 1024 * 1024) () =
  {
    inputs = Hashtbl.create 16;
    blocks = Hashtbl.create 64;
    budget = cache_budget;
    used = 0;
    clock = 0;
  }

let load_file t path =
  match Hashtbl.find_opt t.inputs path with
  | Some s -> s
  | None ->
    let ic = open_in_bin path in
    let n = in_channel_length ic in
    let s = really_input_string ic n in
    close_in ic;
    Hashtbl.replace t.inputs path s;
    Log.debug (fun m -> m "loaded %s (%d bytes)" path n);
    s

let register_blob t ~name contents = Hashtbl.replace t.inputs name contents

let contents t name =
  match Hashtbl.find_opt t.inputs name with
  | Some s -> s
  | None -> raise Not_found

let is_registered t name = Hashtbl.mem t.inputs name

let forget t name = Hashtbl.remove t.inputs name

module Arena = struct
  type mgr = t
  type nonrec t = t
  type bias = Bias_binary | Bias_csv | Bias_json

  let bias_rank = function Bias_binary -> 0 | Bias_csv -> 1 | Bias_json -> 2

  let of_mgr t = t
  let budget t = t.budget
  let used t = t.used

  let tick t =
    t.clock <- t.clock + 1;
    t.clock

  (* Eviction order: unpinned blocks, lowest bias class first, then least
     recently used within the class. *)
  let victim t =
    Hashtbl.fold
      (fun _ b best ->
        if b.pinned then best
        else
          match best with
          | None -> Some b
          | Some v ->
            if b.bias < v.bias || (b.bias = v.bias && b.last_use < v.last_use) then Some b
            else best)
      t.blocks None

  let remove_block t b ~run_hook =
    Hashtbl.remove t.blocks b.id;
    t.used <- t.used - b.size;
    if run_hook then b.on_evict ()

  let put t ~id ~size ~bias ~on_evict =
    if size > t.budget then
      invalid_arg (Fmt.str "Arena.put: block %s (%d bytes) exceeds budget %d" id size t.budget);
    (match Hashtbl.find_opt t.blocks id with
    | Some old -> remove_block t old ~run_hook:false
    | None -> ());
    let rec make_room () =
      if t.used + size > t.budget then
        match victim t with
        | Some v ->
          Log.debug (fun m -> m "evicting cache block %s (%d bytes)" v.id v.size);
          remove_block t v ~run_hook:true;
          make_room ()
        | None ->
          invalid_arg
            (Fmt.str "Arena.put: cannot fit %s: all %d resident bytes pinned" id t.used)
    in
    make_room ();
    let b =
      { id; size; bias = bias_rank bias; last_use = tick t; pinned = false; on_evict }
    in
    Hashtbl.replace t.blocks id b;
    t.used <- t.used + size

  let touch t id =
    match Hashtbl.find_opt t.blocks id with
    | Some b ->
      b.last_use <- tick t;
      true
    | None -> false

  let mem t id = Hashtbl.mem t.blocks id

  let remove t id =
    match Hashtbl.find_opt t.blocks id with
    | Some b -> remove_block t b ~run_hook:false
    | None -> ()

  let pin t id =
    match Hashtbl.find_opt t.blocks id with
    | Some b -> b.pinned <- true
    | None -> ()

  let unpin t id =
    match Hashtbl.find_opt t.blocks id with
    | Some b -> b.pinned <- false
    | None -> ()

  let block_count t = Hashtbl.length t.blocks

  let resident t =
    Hashtbl.fold (fun _ b acc -> b :: acc) t.blocks []
    |> List.sort (fun a b -> Int.compare b.last_use a.last_use)
    |> List.map (fun b -> b.id)
end
