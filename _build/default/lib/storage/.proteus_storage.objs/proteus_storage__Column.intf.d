lib/storage/column.mli: Proteus_model Ptype Value
