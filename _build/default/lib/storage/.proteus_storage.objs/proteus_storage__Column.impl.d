lib/storage/column.ml: Array List Perror Proteus_model Ptype String Value
