lib/storage/memory.mli:
