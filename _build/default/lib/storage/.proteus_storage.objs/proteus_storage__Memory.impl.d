lib/storage/memory.ml: Fmt Hashtbl Int List Logs
