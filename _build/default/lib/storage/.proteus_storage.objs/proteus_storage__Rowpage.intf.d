lib/storage/rowpage.mli: Proteus_model Schema Value
