lib/storage/rowpage.ml: Array Buffer Bytes Char Int64 List Perror Proteus_model Ptype Schema String Value
