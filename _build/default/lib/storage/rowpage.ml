open Proteus_model

type t = {
  schema : Schema.t;
  data : bytes;          (* count * width row bytes *)
  heap : string;         (* string payloads *)
  count : int;
  width : int;           (* fields + null bitmap *)
  offsets : int array;   (* per-field byte offset within a row *)
}

let schema t = t.schema
let count t = t.count
let row_width t = t.width

let bitmap_bytes arity = (arity + 7) / 8

let layout schema =
  let fields = Schema.fields schema in
  let offsets = Array.make (List.length fields) 0 in
  let fixed =
    List.fold_left
      (fun (i, off) (f : Schema.field) ->
        offsets.(i) <- off;
        (i + 1, off + Ptype.binary_width (Ptype.unwrap_option f.ty)))
      (0, 0) fields
    |> snd
  in
  (offsets, fixed + bitmap_bytes (List.length fields))

let of_rows schema rows =
  let offsets, width = layout schema in
  let fields = Array.of_list (Schema.fields schema) in
  let arity = Array.length fields in
  let n = List.length rows in
  let data = Bytes.make (n * width) '\000' in
  let heap = Buffer.create 1024 in
  let bitmap_off = width - bitmap_bytes arity in
  List.iteri
    (fun row values ->
      if Array.length values <> arity then
        Perror.plan_error "Rowpage.of_rows: row arity %d, schema arity %d"
          (Array.length values) arity;
      let base = row * width in
      Array.iteri
        (fun i (v : Value.t) ->
          let off = base + offsets.(i) in
          match v with
          | Null ->
            let byte = base + bitmap_off + (i / 8) in
            Bytes.set data byte
              (Char.chr (Char.code (Bytes.get data byte) lor (1 lsl (i mod 8))))
          | Int x | Date x -> Bytes.set_int64_le data off (Int64.of_int x)
          | Float f -> Bytes.set_int64_le data off (Int64.bits_of_float f)
          | Bool b -> Bytes.set data off (if b then '\001' else '\000')
          | String s ->
            Bytes.set_int64_le data off (Int64.of_int (Buffer.length heap));
            Bytes.set_int64_le data (off + 8) (Int64.of_int (String.length s));
            Buffer.add_string heap s
          | Record _ | Coll _ ->
            Perror.type_error "Rowpage: non-primitive value %a" Value.pp v)
        values)
    rows;
  { schema; data; heap = Buffer.contents heap; count = n; width; offsets }

let of_records schema records =
  let names = Schema.field_names schema in
  let rows =
    List.map
      (fun r ->
        Array.of_list
          (List.map
             (fun name ->
               match Value.field_opt r name with Some v -> v | None -> Value.Null)
             names))
      records
  in
  of_rows schema rows

let get_int t ~row ~off = Int64.to_int (Bytes.get_int64_le t.data ((row * t.width) + off))

let get_float t ~row ~off =
  Int64.float_of_bits (Bytes.get_int64_le t.data ((row * t.width) + off))

let get_bool t ~row ~off = Bytes.get t.data ((row * t.width) + off) <> '\000'

let get_string t ~row ~off =
  let base = (row * t.width) + off in
  let hoff = Int64.to_int (Bytes.get_int64_le t.data base) in
  let len = Int64.to_int (Bytes.get_int64_le t.data (base + 8)) in
  String.sub t.heap hoff len

let is_null t ~row ~field =
  let arity = Schema.arity t.schema in
  let bitmap_off = t.width - bitmap_bytes arity in
  let byte = (row * t.width) + bitmap_off + (field / 8) in
  Char.code (Bytes.get t.data byte) land (1 lsl (field mod 8)) <> 0

let get_value t ~row ~field =
  if is_null t ~row ~field then Value.Null
  else
    let f = List.nth (Schema.fields t.schema) field in
    let off = t.offsets.(field) in
    match Ptype.unwrap_option f.ty with
    | Ptype.Int -> Value.Int (get_int t ~row ~off)
    | Ptype.Date -> Value.Date (get_int t ~row ~off)
    | Ptype.Float -> Value.Float (get_float t ~row ~off)
    | Ptype.Bool -> Value.Bool (get_bool t ~row ~off)
    | Ptype.String -> Value.String (get_string t ~row ~off)
    | ty -> Perror.type_error "Rowpage.get_value: non-primitive %a" Ptype.pp ty

let get_record t ~row =
  let fields = Schema.fields t.schema in
  Value.record (List.mapi (fun i (f : Schema.field) -> (f.name, get_value t ~row ~field:i)) fields)

let byte_size t = Bytes.length t.data + String.length t.heap

(* On-disk image: [count:8][heap_len:8][heap][rows] *)
let to_bytes t =
  let header = Bytes.create 16 in
  Bytes.set_int64_le header 0 (Int64.of_int t.count);
  Bytes.set_int64_le header 8 (Int64.of_int (String.length t.heap));
  Bytes.concat Bytes.empty [ header; Bytes.of_string t.heap; t.data ]

let of_bytes schema b =
  let offsets, width = layout schema in
  let count = Int64.to_int (Bytes.get_int64_le b 0) in
  let heap_len = Int64.to_int (Bytes.get_int64_le b 8) in
  let heap = Bytes.sub_string b 16 heap_len in
  let data = Bytes.sub b (16 + heap_len) (count * width) in
  { schema; data; heap; count; width; offsets }
