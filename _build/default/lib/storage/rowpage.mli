(** Packed binary rows — the binary row format ("relational binary data",
    row-oriented) and the page layout of the row-store baseline.

    Layout per row: fixed-width field slots in schema order (bool 1 byte,
    int/float/date 8 bytes little-endian, string 16 bytes of (offset, length)
    into a shared string heap), followed by a null bitmap of
    [ceil(arity / 8)] bytes. *)

open Proteus_model

type t

val schema : t -> Schema.t
val count : t -> int

(** Width in bytes of one row, bitmap included. *)
val row_width : t -> int

(** [of_rows schema rows] packs boxed records (given as value arrays in
    schema field order). *)
val of_rows : Schema.t -> Value.t array list -> t

(** [of_records schema records] packs boxed [Value.Record]s. *)
val of_records : Schema.t -> Value.t list -> t

(** {1 Raw typed accessors}

    [off] is the byte offset of the field within the row
    ([Schema.field_offset]). These are the primitives the compiled engine's
    binary-row plug-in stitches into its generated scan loops; they perform
    no type or bounds checks beyond what [bytes] accesses do. *)

val get_int : t -> row:int -> off:int -> int
val get_float : t -> row:int -> off:int -> float
val get_bool : t -> row:int -> off:int -> bool
val get_string : t -> row:int -> off:int -> string

(** [is_null t ~row ~field] tests the null bitmap ([field] is the schema
    index, not a byte offset). *)
val is_null : t -> row:int -> field:int -> bool

(** [get_value t ~row ~field] boxes one field. *)
val get_value : t -> row:int -> field:int -> Value.t

(** [get_record t ~row] boxes a whole row. *)
val get_record : t -> row:int -> Value.t

(** Approximate memory footprint in bytes. *)
val byte_size : t -> int

(** {1 Serialization} — a stable on-disk image (used by tests and the CLI). *)

val to_bytes : t -> bytes
val of_bytes : Schema.t -> bytes -> t
