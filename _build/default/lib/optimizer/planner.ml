open Proteus_model
module Plan = Proteus_algebra.Plan

let subset vars bound = List.for_all (fun v -> List.mem v bound) vars

(* Flatten a maximal tree of inner hash joins into units + predicate pool.
   A unit is any non-inner-join subplan (scan, select/unnest chain, ...). *)
let rec flatten (p : Plan.t) : Plan.t list * Expr.t list =
  match p with
  | Plan.Join { kind = Plan.Inner; algo = Plan.Radix_hash; left; right; pred; _ } ->
    let lu, lp = flatten left in
    let ru, rp = flatten right in
    (lu @ ru, lp @ rp @ Expr.conjuncts pred)
  | p -> ([ p ], [])

let connected preds acc_bindings unit_bindings =
  List.exists
    (fun c ->
      let fv = Expr.free_vars c in
      subset fv (acc_bindings @ unit_bindings)
      && List.exists (fun v -> List.mem v acc_bindings) fv
      && List.exists (fun v -> List.mem v unit_bindings) fv)
    preds

(* Rebuild a left-deep tree: acc joins each chosen unit as its build side. *)
let rebuild cat units preds =
  let card u = Costing.cardinality cat u in
  match List.sort (fun a b -> Float.compare (card a) (card b)) units with
  | [] -> Proteus_model.Perror.plan_error "empty join flattening"
  | first :: rest ->
    (* Start from the largest-stream side? No: the paper's radix join
       materializes the build side; we stream the first (probe) unit, so
       starting from the *largest* unit as the probe base avoids
       materializing it. Choose probe base = unit with max cardinality,
       then attach the rest smallest-first. *)
    let all = first :: rest in
    let base =
      List.fold_left (fun acc u -> if card u > card acc then u else acc) first all
    in
    let remaining = List.filter (fun u -> u != base) all in
    let used = ref [] in
    let take_pred acc_bindings u_bindings preds =
      List.partition
        (fun c ->
          (not (List.memq c !used)) && subset (Expr.free_vars c) (acc_bindings @ u_bindings))
        preds
    in
    let rec attach acc remaining =
      match remaining with
      | [] -> acc
      | _ ->
        let acc_bindings = Plan.bindings acc in
        (* prefer connected units; among them, smallest estimated result *)
        let score u =
          let c = card u in
          if connected preds acc_bindings (Plan.bindings u) then c else c *. 1000.0
        in
        let best =
          List.fold_left
            (fun best u ->
              match best with
              | None -> Some u
              | Some b -> if score u < score b then Some u else best)
            None remaining
        in
        let u = Option.get best in
        let applicable, _ = take_pred acc_bindings (Plan.bindings u) preds in
        used := applicable @ !used;
        let joined =
          Plan.Join
            {
              kind = Plan.Inner;
              algo = Plan.Radix_hash;
              left = acc;
              right = u;
              left_key = None;
              right_key = None;
              pred = Expr.conjoin applicable;
            }
        in
        attach joined (List.filter (fun v -> v != u) remaining)
    in
    let tree = attach base remaining in
    let leftover = List.filter (fun c -> not (List.memq c !used)) preds in
    (match leftover with
    | [] -> tree
    | ps -> Plan.Select { pred = Expr.conjoin ps; input = tree })

let rec reorder_joins cat (p : Plan.t) : Plan.t =
  match p with
  | Plan.Join { kind = Plan.Inner; algo = Plan.Radix_hash; _ } ->
    let units, preds = flatten p in
    let units = List.map (reorder_joins cat) units in
    if List.length units <= 1 then (
      match units with [ u ] -> u | _ -> assert false)
    else rebuild cat units preds
  | p -> Plan.map_children (reorder_joins cat) p
