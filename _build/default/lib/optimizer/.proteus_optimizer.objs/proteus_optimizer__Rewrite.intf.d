lib/optimizer/rewrite.mli: Plan Proteus_algebra
