lib/optimizer/optimizer.mli: Catalog Proteus_algebra Proteus_calculus Proteus_catalog
