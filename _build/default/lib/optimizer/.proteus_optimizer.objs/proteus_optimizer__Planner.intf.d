lib/optimizer/planner.mli: Catalog Proteus_algebra Proteus_catalog
