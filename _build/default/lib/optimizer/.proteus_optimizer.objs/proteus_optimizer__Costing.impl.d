lib/optimizer/costing.ml: Catalog Dataset Expr Float List Proteus_algebra Proteus_catalog Proteus_model Stats Value
