lib/optimizer/costing.mli: Catalog Dataset Expr Proteus_algebra Proteus_catalog Proteus_model
