lib/optimizer/optimizer.ml: Buffer Costing Fmt List Planner Proteus_algebra Proteus_calculus Proteus_model Rewrite String
