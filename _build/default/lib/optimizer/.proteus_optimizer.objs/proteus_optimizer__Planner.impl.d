lib/optimizer/planner.ml: Costing Expr Float List Option Proteus_algebra Proteus_model
