lib/optimizer/rewrite.ml: Analysis Expr List Plan Proteus_algebra Proteus_model String
