(** Cost model (Section 5.2 "Enabling Cost-based Optimizations").

    Statistics and access costing are per input plug-in: each format carries
    its own per-tuple access factor (raw JSON is the most expensive to
    touch, binary columns the cheapest), instantiated with the catalog's
    gathered statistics. When no statistics exist, the textbook skeleton
    defaults apply (10% predicate selectivity, default cardinality). *)

open Proteus_model
open Proteus_catalog

(** Per-tuple access cost factor of a format ("cost formulas per input
    plug-in"). *)
val format_factor : Dataset.format -> float

val default_cardinality : int

(** [selectivity cat ~dataset_of pred] estimates the fraction of the input
    satisfying [pred]. [dataset_of] maps a binding to its dataset, letting
    path predicates consult that dataset's statistics; non-decomposable
    conjuncts contribute the default 10%. *)
val selectivity : Catalog.t -> dataset_of:(string -> string option) -> Expr.t -> float

(** [cardinality cat plan] estimates the output cardinality of a plan. *)
val cardinality : Catalog.t -> Proteus_algebra.Plan.t -> float

(** [cost cat plan] estimates total execution cost (arbitrary units:
    tuples-touched weighted by access factors, plus materialization at
    pipeline breakers). *)
val cost : Catalog.t -> Proteus_algebra.Plan.t -> float
