(** The optimizer pipeline: rule-based rewrites, then cost-based join
    reordering over plug-in-provided statistics, then physical annotations
    (join keys, scan field lists). *)

open Proteus_catalog

(** [optimize cat plan] — result-preserving (property-tested); the output
    validates. *)
val optimize : Catalog.t -> Proteus_algebra.Plan.t -> Proteus_algebra.Plan.t

(** [plan_of_calculus cat calc] is the full logical pipeline: normalize the
    comprehension, rewrite to the algebra, optimize. *)
val plan_of_calculus :
  Catalog.t -> Proteus_calculus.Calc.t -> Proteus_algebra.Plan.t

(** [explain cat plan] renders the plan tree with the cost model's per-node
    estimates (rows, cumulative cost) — what the CLI's [--explain] shows. *)
val explain : Catalog.t -> Proteus_algebra.Plan.t -> string
