(** Cost-based join ordering (Section 4: "the optimizer ... follows a
    bottom-up strategy and relies on gathered statistics to perform access
    path selection and join re-ordering").

    Maximal inner-join subtrees are flattened into a set of join units
    (scan/select/unnest chains) plus a conjunct pool, then rebuilt greedily:
    start from the cheapest unit and repeatedly attach the unit that
    minimizes the estimated cardinality of the intermediate result,
    preferring units connected through a join predicate. The executor
    materializes the {e right} (build) side of each join and streams the
    left, so each step also places the smaller input on the right. *)

open Proteus_catalog

(** [reorder_joins cat p] — result-preserving (property-tested). Outer
    joins and nested-loop joins are left untouched. *)
val reorder_joins : Catalog.t -> Proteus_algebra.Plan.t -> Proteus_algebra.Plan.t
