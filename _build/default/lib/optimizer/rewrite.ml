open Proteus_model
open Proteus_algebra

let subset vars bound = List.for_all (fun v -> List.mem v bound) vars

let bound_by pred bindings = subset (Expr.free_vars pred) bindings

let wrap pending p =
  match pending with [] -> p | ps -> Plan.Select { pred = Expr.conjoin ps; input = p }

(* Sink every pending conjunct to the lowest operator whose scope binds it.
   [pending] predicates are always bound by the scope of the node they are
   pushed into (the caller guarantees it). *)
let rec push (pending : Expr.t list) (p : Plan.t) : Plan.t =
  match p with
  | Plan.Select { pred; input } -> push (Expr.conjuncts pred @ pending) input
  | Plan.Scan _ -> wrap pending p
  | Plan.Join r ->
    let all = pending @ Expr.conjuncts r.pred in
    let lb = Plan.bindings r.left and rb = Plan.bindings r.right in
    (* For outer joins only the probe (left) side may absorb filters: a
       right-side filter changes padding semantics if hoisted/sunk. Here
       predicates sink, which is safe for Inner; for Left_outer we keep
       everything at the join. *)
    if r.kind = Plan.Left_outer then
      let mine, above = List.partition (fun c -> bound_by c (lb @ rb)) all in
      wrap above (Plan.Join { r with pred = Expr.conjoin mine })
    else begin
      let left_only, rest = List.partition (fun c -> bound_by c lb) all in
      let right_only, here = List.partition (fun c -> bound_by c rb) rest in
      Plan.Join
        {
          r with
          left = push left_only r.left;
          right = push right_only r.right;
          pred = Expr.conjoin here;
        }
    end
  | Plan.Unnest r ->
    let all = pending @ Expr.conjuncts r.pred in
    let input_bound = Plan.bindings r.input in
    let below, here = List.partition (fun c -> bound_by c input_bound) all in
    Plan.Unnest { r with input = push below r.input; pred = Expr.conjoin here }
  | Plan.Reduce r ->
    assert (pending = []);
    Plan.Reduce
      { r with pred = Expr.conjoin []; input = push (Expr.conjuncts r.pred) r.input }
  | Plan.Nest r ->
    (* predicates above a Nest reference the group binding: they stay above *)
    wrap pending
      (Plan.Nest
         { r with pred = Expr.conjoin []; input = push (Expr.conjuncts r.pred) r.input })
  | Plan.Project r ->
    wrap pending (Plan.Project { r with input = push [] r.input })
  | Plan.Sort r ->
    (* selections commute with ordering: sink them below the sort *)
    Plan.Sort { r with input = push pending r.input }

let pushdown_selections p = push [] p

let rec extract_join_keys (p : Plan.t) : Plan.t =
  let p = Plan.map_children extract_join_keys p in
  match p with
  | Plan.Join ({ algo = Plan.Radix_hash; left_key = None; _ } as r) ->
    let lb = Plan.bindings r.left and rb = Plan.bindings r.right in
    let equi =
      List.find_map
        (fun c ->
          match (c : Expr.t) with
          | Expr.Binop (Expr.Eq, l, r) ->
            if subset (Expr.free_vars l) lb && subset (Expr.free_vars r) rb then
              Some (l, r)
            else if subset (Expr.free_vars l) rb && subset (Expr.free_vars r) lb then
              Some (r, l)
            else None
          | _ -> None)
        (Expr.conjuncts r.pred)
    in
    (match equi with
    | Some (lk, rk) -> Plan.Join { r with left_key = Some lk; right_key = Some rk }
    | None -> Plan.Join { r with algo = Plan.Nested_loop })
  | p -> p

let pushdown_projections (p : Plan.t) : Plan.t =
  let required = Analysis.required_paths (Analysis.all_exprs p) in
  let rec go (p : Plan.t) =
    match p with
    | Plan.Scan s ->
      let fields =
        match List.assoc_opt s.binding required with
        | Some `Whole | None -> None
        | Some (`Paths ps) ->
          (* root segments, deduplicated, in first-use order *)
          let roots =
            List.fold_left
              (fun acc p ->
                let root = List.hd (String.split_on_char '.' p) in
                if List.mem root acc then acc else acc @ [ root ])
              [] ps
          in
          Some roots
      in
      Plan.Scan { s with fields }
    | p -> Plan.map_children go p
  in
  go p
