type t =
  | Null
  | Bool of bool
  | Int of int
  | Float of float
  | String of string
  | Date of int
  | Record of (string * t) array
  | Coll of Ptype.coll * t list

let rec equal a b =
  match a, b with
  | Null, Null -> true
  | Bool a, Bool b -> a = b
  | Int a, Int b -> a = b
  | Float a, Float b -> Float.equal a b
  | String a, String b -> String.equal a b
  | Date a, Date b -> a = b
  | Record fa, Record fb ->
    Array.length fa = Array.length fb
    && (let n = Array.length fa in
        let rec go i =
          i >= n
          || (let na, va = fa.(i) and nb, vb = fb.(i) in
              String.equal na nb && equal va vb && go (i + 1))
        in
        go 0)
  | Coll (ca, la), Coll (cb, lb) ->
    ca = cb && List.length la = List.length lb && List.for_all2 equal la lb
  | (Null | Bool _ | Int _ | Float _ | String _ | Date _ | Record _ | Coll _), _ ->
    false

(* Rank constructors so the order is total across constructors; within a
   constructor use the natural order. *)
let rank = function
  | Null -> 0
  | Bool _ -> 1
  | Int _ -> 2
  | Float _ -> 3
  | Date _ -> 4
  | String _ -> 5
  | Record _ -> 6
  | Coll _ -> 7

let rec compare a b =
  match a, b with
  | Null, Null -> 0
  | Bool a, Bool b -> Bool.compare a b
  | Int a, Int b -> Int.compare a b
  | Float a, Float b -> Float.compare a b
  | Date a, Date b -> Int.compare a b
  | String a, String b -> String.compare a b
  | Record fa, Record fb ->
    let ca = Int.compare (Array.length fa) (Array.length fb) in
    if ca <> 0 then ca
    else begin
      let n = Array.length fa in
      let rec go i =
        if i >= n then 0
        else
          let na, va = fa.(i) and nb, vb = fb.(i) in
          let c = String.compare na nb in
          if c <> 0 then c
          else
            let c = compare va vb in
            if c <> 0 then c else go (i + 1)
      in
      go 0
    end
  | Coll (ca, la), Coll (cb, lb) ->
    let c = Stdlib.compare ca cb in
    if c <> 0 then c else List.compare compare la lb
  | a, b -> Int.compare (rank a) (rank b)

let rec hash v =
  match v with
  | Null -> 17
  | Bool b -> Hashtbl.hash b
  | Int i -> Hashtbl.hash i
  | Float f -> Hashtbl.hash f
  | Date d -> Hashtbl.hash (d + 0x9e37)
  | String s -> Hashtbl.hash s
  | Record fields ->
    Array.fold_left (fun acc (n, v) -> (acc * 31) + Hashtbl.hash n + hash v) 7 fields
  | Coll (_, elems) -> List.fold_left (fun acc v -> (acc * 131) + hash v) 11 elems

let coll_open = function Ptype.Bag -> "{|" | Ptype.Set -> "{" | Ptype.List -> "["
let coll_close = function Ptype.Bag -> "|}" | Ptype.Set -> "}" | Ptype.List -> "]"

let rec pp ppf = function
  | Null -> Fmt.string ppf "null"
  | Bool b -> Fmt.bool ppf b
  | Int i -> Fmt.int ppf i
  | Float f -> Fmt.pf ppf "%g" f
  | Date d -> Fmt.pf ppf "date(%d)" d
  | String s -> Fmt.pf ppf "%S" s
  | Record fields ->
    let pp_field ppf (n, v) = Fmt.pf ppf "%s: %a" n pp v in
    Fmt.pf ppf "(%a)" Fmt.(array ~sep:(any ", ") pp_field) fields
  | Coll (c, elems) ->
    Fmt.pf ppf "%s%a%s" (coll_open c) Fmt.(list ~sep:(any ", ") pp) elems (coll_close c)

let to_string v = Fmt.str "%a" pp v

let to_bool = function
  | Bool b -> b
  | v -> Perror.type_error "expected bool, got %a" pp v

let to_int = function
  | Int i | Date i -> i
  | v -> Perror.type_error "expected int, got %a" pp v

let to_float = function
  | Float f -> f
  | Int i -> float_of_int i
  | v -> Perror.type_error "expected float, got %a" pp v

let to_str = function
  | String s -> s
  | v -> Perror.type_error "expected string, got %a" pp v

let fields = function
  | Record fs -> fs
  | v -> Perror.type_error "expected record, got %a" pp v

let elements = function
  | Coll (_, es) -> es
  | v -> Perror.type_error "expected collection, got %a" pp v

let field_opt v name =
  match v with
  | Record fs ->
    let n = Array.length fs in
    let rec go i =
      if i >= n then None
      else
        let fname, fv = fs.(i) in
        if String.equal fname name then Some fv else go (i + 1)
    in
    go 0
  | _ -> None

let field v name =
  match field_opt v name with
  | Some fv -> fv
  | None -> Perror.type_error "no field %s in %a" name pp v

let record fs = Record (Array.of_list fs)
let bag vs = Coll (Ptype.Bag, vs)
let list_ vs = Coll (Ptype.List, vs)
let set vs = Coll (Ptype.Set, List.sort_uniq compare vs)

let is_null = function Null -> true | _ -> false

let rec type_of = function
  | Null -> Ptype.Option Ptype.Int
  | Bool _ -> Ptype.Bool
  | Int _ -> Ptype.Int
  | Float _ -> Ptype.Float
  | Date _ -> Ptype.Date
  | String _ -> Ptype.String
  | Record fs ->
    Ptype.Record (Array.to_list (Array.map (fun (n, v) -> (n, type_of v)) fs))
  | Coll (c, []) -> Ptype.Collection (c, Ptype.Option Ptype.Int)
  | Coll (c, e :: _) -> Ptype.Collection (c, type_of e)
