(* Errors shared across the whole engine. Kept in one place so that every
   layer (parser, optimizer, plug-ins, executors) reports failures uniformly
   and tests can assert on them. *)

exception Type_error of string
(** A value did not have the type an operation required. *)

exception Parse_error of { what : string; pos : int; msg : string }
(** Raised by the query-language parsers and the CSV/JSON readers.
    [what] names the input (query text, file name); [pos] is a byte offset. *)

exception Plan_error of string
(** An algebraic plan is malformed (unbound variable, arity mismatch...). *)

exception Unsupported of string
(** A feature combination the engine deliberately does not implement. *)

let type_error fmt = Fmt.kstr (fun s -> raise (Type_error s)) fmt

let plan_error fmt = Fmt.kstr (fun s -> raise (Plan_error s)) fmt

let parse_error ~what ~pos fmt =
  Fmt.kstr (fun msg -> raise (Parse_error { what; pos; msg })) fmt

let unsupported fmt = Fmt.kstr (fun s -> raise (Unsupported s)) fmt

let pp_exn ppf = function
  | Type_error m -> Fmt.pf ppf "type error: %s" m
  | Parse_error { what; pos; msg } ->
    Fmt.pf ppf "parse error in %s at byte %d: %s" what pos msg
  | Plan_error m -> Fmt.pf ppf "plan error: %s" m
  | Unsupported m -> Fmt.pf ppf "unsupported: %s" m
  | e -> Fmt.pf ppf "%s" (Printexc.to_string e)
