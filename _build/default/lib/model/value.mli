(** Runtime values of the Proteus data model.

    Boxed values are the lingua franca of the un-specialized execution paths
    (the Volcano interpreter, the reference evaluator, query results). The
    compiled engine avoids them on the hot path by staging typed accessors,
    but it still produces them at pipeline breakers and for final output. *)

type t =
  | Null
  | Bool of bool
  | Int of int
  | Float of float
  | String of string
  | Date of int                       (** days since 1970-01-01 *)
  | Record of (string * t) array
  | Coll of Ptype.coll * t list

val equal : t -> t -> bool

(** Total order used by set semantics, sorting and hash-table keys.
    [Null] sorts before everything; numeric types compare within their own
    constructor only. *)
val compare : t -> t -> int

val hash : t -> int

val pp : Format.formatter -> t -> unit

val to_string : t -> string

(** {1 Accessors} — raise [Perror.Type_error] on mismatch. *)

val to_bool : t -> bool
val to_int : t -> int
val to_float : t -> float
(** [to_float] also accepts [Int] values (numeric widening). *)

val to_str : t -> string
val fields : t -> (string * t) array
val elements : t -> t list

(** [field v name] projects field [name] out of record value [v]. *)
val field : t -> string -> t

(** [field_opt v name] is [Some] of the field or [None] when the record lacks
    it (schema-flexible JSON). *)
val field_opt : t -> string -> t option

(** {1 Constructors} *)

val record : (string * t) list -> t
val bag : t list -> t
val list_ : t list -> t
val set : t list -> t
(** [set vs] sorts and deduplicates [vs]. *)

val is_null : t -> bool

(** [type_of v] reconstructs a type for [v]. Collections of heterogeneous or
    unknown element type get element type [Option Int] as a fallback; empty
    collections too. Used mainly in tests and error messages. *)
val type_of : t -> Ptype.t
