lib/model/expr.mli: Format Ptype Value
