lib/model/value.mli: Format Ptype
