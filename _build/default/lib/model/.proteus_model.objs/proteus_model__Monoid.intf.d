lib/model/monoid.mli: Format Ptype Value
