lib/model/expr.ml: Char Float Fmt Hashtbl Int List Monoid Perror Ptype Stdlib String Value
