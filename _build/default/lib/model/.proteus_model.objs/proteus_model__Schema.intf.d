lib/model/schema.mli: Format Ptype
