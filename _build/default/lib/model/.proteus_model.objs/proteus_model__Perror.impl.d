lib/model/perror.ml: Fmt Printexc
