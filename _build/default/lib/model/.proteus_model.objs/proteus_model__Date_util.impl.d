lib/model/date_util.ml: Char Perror Printf String
