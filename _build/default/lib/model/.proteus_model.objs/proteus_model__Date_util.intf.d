lib/model/date_util.mli:
