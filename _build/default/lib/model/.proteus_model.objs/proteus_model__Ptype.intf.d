lib/model/ptype.mli: Format
