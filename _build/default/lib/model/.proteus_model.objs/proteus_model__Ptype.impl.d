lib/model/ptype.ml: Fmt List Stdlib String
