lib/model/value.ml: Array Bool Float Fmt Hashtbl Int List Perror Ptype Stdlib String
