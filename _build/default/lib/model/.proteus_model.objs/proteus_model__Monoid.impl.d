lib/model/monoid.ml: Fmt Perror Ptype Value
