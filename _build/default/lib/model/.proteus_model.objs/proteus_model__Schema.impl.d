lib/model/schema.ml: Fmt List Ptype String
