let fail pos fmt = Perror.parse_error ~what:"date" ~pos fmt

(* days-from-civil (Hinnant): exact for the proleptic Gregorian calendar *)
let of_ymd ~y ~m ~d =
  let y = if m <= 2 then y - 1 else y in
  let era = (if y >= 0 then y else y - 399) / 400 in
  let yoe = y - (era * 400) in
  let doy = ((153 * (if m > 2 then m - 3 else m + 9)) + 2) / 5 + d - 1 in
  let doe = (yoe * 365) + (yoe / 4) - (yoe / 100) + doy in
  (era * 146097) + doe - 719468

let to_ymd days =
  let z = days + 719468 in
  let era = (if z >= 0 then z else z - 146096) / 146097 in
  let doe = z - (era * 146097) in
  let yoe = (doe - (doe / 1460) + (doe / 36524) - (doe / 146096)) / 365 in
  let y = yoe + (era * 400) in
  let doy = doe - ((365 * yoe) + (yoe / 4) - (yoe / 100)) in
  let mp = ((5 * doy) + 2) / 153 in
  let d = doy - (((153 * mp) + 2) / 5) + 1 in
  let m = if mp < 10 then mp + 3 else mp - 9 in
  ((if m <= 2 then y + 1 else y), m, d)

let days_in_month ~y ~m =
  match m with
  | 1 | 3 | 5 | 7 | 8 | 10 | 12 -> 31
  | 4 | 6 | 9 | 11 -> 30
  | 2 -> if (y mod 4 = 0 && y mod 100 <> 0) || y mod 400 = 0 then 29 else 28
  | _ -> 0

let of_span src ~start ~stop =
  (* YYYY-MM-DD, fixed shape *)
  if stop - start <> 10 || src.[start + 4] <> '-' || src.[start + 7] <> '-' then
    fail start "expected YYYY-MM-DD";
  let num a b =
    let rec go i acc =
      if i >= b then acc
      else
        let c = src.[i] in
        if c >= '0' && c <= '9' then go (i + 1) ((acc * 10) + (Char.code c - 48))
        else fail i "bad digit %C in date" c
    in
    go a 0
  in
  let y = num start (start + 4) in
  let m = num (start + 5) (start + 7) in
  let d = num (start + 8) (start + 10) in
  if m < 1 || m > 12 then fail start "month %d out of range" m;
  if d < 1 || d > days_in_month ~y ~m then fail start "day %d out of range" d;
  of_ymd ~y ~m ~d

let of_string s = of_span s ~start:0 ~stop:(String.length s)

let to_string days =
  let y, m, d = to_ymd days in
  Printf.sprintf "%04d-%02d-%02d" y m d
