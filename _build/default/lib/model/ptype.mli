(** Types of the Proteus data model.

    The model is richer than the relational one (Section 3 of the paper): it
    supports arbitrary nestings of records and collections, where collections
    carry a monoid kind (bag, set, list). All supported data formats — CSV,
    JSON, binary row/column — map their values into this single model. *)

(** Collection kinds, mirroring the collection monoids of the monoid
    comprehension calculus. *)
type coll =
  | Bag   (** unordered, duplicates allowed — the default query output *)
  | Set   (** unordered, duplicates removed *)
  | List  (** ordered, duplicates allowed — JSON arrays map here *)

type t =
  | Bool
  | Int
  | Float
  | String
  | Date                          (** days since epoch, stored as int *)
  | Record of (string * t) list   (** field order is significant for layout *)
  | Collection of coll * t
  | Option of t                   (** nullable: outer joins / missing JSON fields *)

val equal : t -> t -> bool

val compare : t -> t -> int

val pp : Format.formatter -> t -> unit

val to_string : t -> string

(** [field_type t name] is the type of field [name] of record type [t].
    Raises [Invalid_argument] if [t] is not a record or lacks the field. *)
val field_type : t -> string -> t

(** [field_index t name] is the position of field [name] in record type [t]. *)
val field_index : t -> string -> int

(** [is_primitive t] holds for [Bool], [Int], [Float], [String] and [Date]. *)
val is_primitive : t -> bool

(** [unwrap_option t] strips one [Option] layer if present. *)
val unwrap_option : t -> t

(** [element_type t] is the element type of a collection type.
    Raises [Invalid_argument] otherwise. *)
val element_type : t -> t

(** Width in bytes of a primitive value in the binary row format.
    Strings are stored as (offset,len) pairs, hence 16 bytes.
    Raises [Invalid_argument] on non-primitive types. *)
val binary_width : t -> int
