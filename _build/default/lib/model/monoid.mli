(** Monoids of the monoid comprehension calculus (Section 3, [24]).

    A comprehension [⊕{ e | q1, ..., qn }] accumulates the values of [e] into
    the monoid [⊕]. Primitive monoids produce scalars (SUM, MAX, ...);
    collection monoids produce bags/sets/lists. The Reduce and Nest operators
    of the nested relational algebra are parameterized by a monoid. *)

type primitive =
  | Sum
  | Prod
  | Min
  | Max
  | Avg     (** derived: tracked as (sum, count) internally *)
  | Count   (** sum of 1 per element *)
  | All     (** boolean conjunction *)
  | Any     (** boolean disjunction *)

type t =
  | Primitive of primitive
  | Collection of Ptype.coll

val pp : Format.formatter -> t -> unit

val to_string : t -> string

val equal : t -> t -> bool

(** {1 Scalar accumulation}

    An accumulator for one aggregate. [Avg] needs two pieces of state, so the
    accumulator is an abstract record rather than a bare value. *)

type acc

(** [acc_create p] is the identity element of [p]. *)
val acc_create : primitive -> acc

(** [acc_step acc v] folds value [v] into the accumulator.
    [Count] ignores [v]. Numeric monoids widen Int/Float as needed. *)
val acc_step : acc -> Value.t -> unit

(** [acc_value acc] extracts the current aggregate. [Min]/[Max] over zero
    elements yield [Value.Null]; [Avg] over zero elements yields [Null];
    [Sum]/[Count] yield [Int 0]. *)
val acc_value : acc -> Value.t

(** [collect c vs] builds the collection value for collection monoid [c]
    (sets are deduplicated). *)
val collect : Ptype.coll -> Value.t list -> Value.t

(** [result_type m elem] is the type produced by monoid [m] applied to
    elements of type [elem]. *)
val result_type : t -> Ptype.t -> Ptype.t
