type field = { name : string; ty : Ptype.t }

type t = { fields : field list }

let make l = { fields = List.map (fun (name, ty) -> { name; ty }) l }

let fields t = t.fields

let field_names t = List.map (fun f -> f.name) t.fields

let arity t = List.length t.fields

let find t name = List.find (fun f -> String.equal f.name name) t.fields

let mem t name = List.exists (fun f -> String.equal f.name name) t.fields

let index t name =
  let rec go i = function
    | [] -> raise Not_found
    | f :: rest -> if String.equal f.name name then i else go (i + 1) rest
  in
  go 0 t.fields

let project t names = { fields = List.map (find t) names }

let to_type t = Ptype.Record (List.map (fun f -> (f.name, f.ty)) t.fields)

let of_type = function
  | Ptype.Record fs -> make fs
  | ty -> invalid_arg (Fmt.str "Schema.of_type: %a is not a record" Ptype.pp ty)

let is_flat t = List.for_all (fun f -> Ptype.is_primitive (Ptype.unwrap_option f.ty)) t.fields

let row_width t =
  List.fold_left
    (fun acc f -> acc + Ptype.binary_width (Ptype.unwrap_option f.ty))
    0 t.fields

let field_offset t name =
  let rec go off = function
    | [] -> raise Not_found
    | f :: rest ->
      if String.equal f.name name then off
      else go (off + Ptype.binary_width (Ptype.unwrap_option f.ty)) rest
  in
  go 0 t.fields

let equal a b =
  List.length a.fields = List.length b.fields
  && List.for_all2
       (fun fa fb -> String.equal fa.name fb.name && Ptype.equal fa.ty fb.ty)
       a.fields b.fields

let pp ppf t = Ptype.pp ppf (to_type t)
