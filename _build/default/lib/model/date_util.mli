(** Calendar dates.

    The data model stores a date as days since 1970-01-01 ([Value.Date]).
    These helpers convert to and from ISO-8601 [YYYY-MM-DD] strings — the
    form dates take in CSV and JSON files — using the proleptic Gregorian
    calendar (Howard Hinnant's civil-days algorithm). *)

(** [of_string s] parses [YYYY-MM-DD].
    Raises [Perror.Parse_error] on malformed input or impossible dates. *)
val of_string : string -> int

(** [of_span src ~start ~stop] parses without allocating a substring. *)
val of_span : string -> start:int -> stop:int -> int

val to_string : int -> string

(** [of_ymd ~y ~m ~d] — no range validation beyond month/day shape. *)
val of_ymd : y:int -> m:int -> d:int -> int

val to_ymd : int -> int * int * int
