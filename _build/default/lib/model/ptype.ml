type coll = Bag | Set | List

type t =
  | Bool
  | Int
  | Float
  | String
  | Date
  | Record of (string * t) list
  | Collection of coll * t
  | Option of t

let rec equal a b =
  match a, b with
  | Bool, Bool | Int, Int | Float, Float | String, String | Date, Date -> true
  | Record fa, Record fb ->
    List.length fa = List.length fb
    && List.for_all2 (fun (na, ta) (nb, tb) -> String.equal na nb && equal ta tb) fa fb
  | Collection (ca, ta), Collection (cb, tb) -> ca = cb && equal ta tb
  | Option ta, Option tb -> equal ta tb
  | (Bool | Int | Float | String | Date | Record _ | Collection _ | Option _), _ -> false

let compare = Stdlib.compare

let coll_name = function Bag -> "bag" | Set -> "set" | List -> "list"

let rec pp ppf = function
  | Bool -> Fmt.string ppf "bool"
  | Int -> Fmt.string ppf "int"
  | Float -> Fmt.string ppf "float"
  | String -> Fmt.string ppf "string"
  | Date -> Fmt.string ppf "date"
  | Record fields ->
    let pp_field ppf (n, t) = Fmt.pf ppf "%s: %a" n pp t in
    Fmt.pf ppf "{%a}" Fmt.(list ~sep:(any ", ") pp_field) fields
  | Collection (c, t) -> Fmt.pf ppf "%s(%a)" (coll_name c) pp t
  | Option t -> Fmt.pf ppf "%a?" pp t

let to_string t = Fmt.str "%a" pp t

let field_type t name =
  match t with
  | Record fields ->
    (try List.assoc name fields
     with Not_found ->
       invalid_arg (Fmt.str "Ptype.field_type: no field %s in %a" name pp t))
  | Bool | Int | Float | String | Date | Collection _ | Option _ ->
    invalid_arg (Fmt.str "Ptype.field_type: %a is not a record" pp t)

let field_index t name =
  match t with
  | Record fields ->
    let rec go i = function
      | [] -> invalid_arg (Fmt.str "Ptype.field_index: no field %s in %a" name pp t)
      | (n, _) :: rest -> if String.equal n name then i else go (i + 1) rest
    in
    go 0 fields
  | Bool | Int | Float | String | Date | Collection _ | Option _ ->
    invalid_arg (Fmt.str "Ptype.field_index: %a is not a record" pp t)

let is_primitive = function
  | Bool | Int | Float | String | Date -> true
  | Record _ | Collection _ | Option _ -> false

let unwrap_option = function Option t -> t | t -> t

let element_type = function
  | Collection (_, t) -> t
  | t -> invalid_arg (Fmt.str "Ptype.element_type: %a is not a collection" pp t)

let binary_width = function
  | Bool -> 1
  | Int | Float | Date -> 8
  | String -> 16
  | (Record _ | Collection _ | Option _) as t ->
    invalid_arg (Fmt.str "Ptype.binary_width: %a is not primitive" pp t)
