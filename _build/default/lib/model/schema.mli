(** Dataset schemas.

    A schema describes the type of one element ("tuple", JSON object, row) of
    a dataset, plus per-field ordering metadata used by the binary formats. *)

type field = {
  name : string;
  ty : Ptype.t;
}

type t

val make : (string * Ptype.t) list -> t

val fields : t -> field list

val field_names : t -> string list

val arity : t -> int

(** [find t name] is the field named [name].
    @raise Not_found when absent. *)
val find : t -> string -> field

val mem : t -> string -> bool

(** [index t name] is the position of [name].
    @raise Not_found when absent. *)
val index : t -> string -> int

(** [project t names] restricts the schema to [names], keeping their order in
    [names]. Raises [Not_found] on unknown fields. *)
val project : t -> string list -> t

(** The record type of one dataset element. *)
val to_type : t -> Ptype.t

(** [of_type ty] views a record type as a schema.
    Raises [Invalid_argument] if [ty] is not a record. *)
val of_type : Ptype.t -> t

(** [is_flat t] holds when every field is primitive — i.e. the dataset is
    relational (CSV / binary). *)
val is_flat : t -> bool

(** Byte width of one row in the binary row format (sum of field widths).
    Only valid for flat schemas. *)
val row_width : t -> int

(** [field_offset t name] is the byte offset of a field within a binary row. *)
val field_offset : t -> string -> int

val equal : t -> t -> bool
val pp : Format.formatter -> t -> unit
