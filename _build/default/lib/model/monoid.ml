type primitive = Sum | Prod | Min | Max | Avg | Count | All | Any

type t = Primitive of primitive | Collection of Ptype.coll

let primitive_name = function
  | Sum -> "sum"
  | Prod -> "prod"
  | Min -> "min"
  | Max -> "max"
  | Avg -> "avg"
  | Count -> "count"
  | All -> "all"
  | Any -> "any"

let pp ppf = function
  | Primitive p -> Fmt.string ppf (primitive_name p)
  | Collection Ptype.Bag -> Fmt.string ppf "bag"
  | Collection Ptype.Set -> Fmt.string ppf "set"
  | Collection Ptype.List -> Fmt.string ppf "list"

let to_string m = Fmt.str "%a" pp m

let equal a b = a = b

(* Numeric accumulators keep both an int and a float lane: integer inputs
   accumulate exactly in the int lane until a float appears, at which point
   the state is widened once. *)
type num_state = { mutable i : int; mutable f : float; mutable is_float : bool }

type acc =
  | Acc_sum of num_state
  | Acc_prod of num_state
  | Acc_min of { mutable best : Value.t option }
  | Acc_max of { mutable best : Value.t option }
  | Acc_avg of { mutable sum : float; mutable n : int }
  | Acc_count of { mutable n : int }
  | Acc_all of { mutable b : bool }
  | Acc_any of { mutable b : bool }

let acc_create = function
  | Sum -> Acc_sum { i = 0; f = 0.; is_float = false }
  | Prod -> Acc_prod { i = 1; f = 1.; is_float = false }
  | Min -> Acc_min { best = None }
  | Max -> Acc_max { best = None }
  | Avg -> Acc_avg { sum = 0.; n = 0 }
  | Count -> Acc_count { n = 0 }
  | All -> Acc_all { b = true }
  | Any -> Acc_any { b = false }

let widen (s : num_state) =
  if not s.is_float then begin
    s.f <- float_of_int s.i;
    s.is_float <- true
  end

let num_step s ~int_op ~float_op v =
  match (v : Value.t) with
  | Int i -> if s.is_float then s.f <- float_op s.f (float_of_int i) else s.i <- int_op s.i i
  | Float f ->
    widen s;
    s.f <- float_op s.f f
  | Null -> ()
  | v -> Perror.type_error "numeric aggregate over %a" Value.pp v

let acc_step acc v =
  match acc with
  | Acc_sum s -> num_step s ~int_op:( + ) ~float_op:( +. ) v
  | Acc_prod s -> num_step s ~int_op:( * ) ~float_op:( *. ) v
  | Acc_min st -> begin
    match v with
    | Value.Null -> ()
    | v -> (
      match st.best with
      | None -> st.best <- Some v
      | Some b -> if Value.compare v b < 0 then st.best <- Some v)
  end
  | Acc_max st -> begin
    match v with
    | Value.Null -> ()
    | v -> (
      match st.best with
      | None -> st.best <- Some v
      | Some b -> if Value.compare v b > 0 then st.best <- Some v)
  end
  | Acc_avg st -> begin
    match v with
    | Value.Null -> ()
    | v ->
      st.sum <- st.sum +. Value.to_float v;
      st.n <- st.n + 1
  end
  | Acc_count st -> st.n <- st.n + 1
  | Acc_all st -> st.b <- st.b && Value.to_bool v
  | Acc_any st -> st.b <- st.b || Value.to_bool v

let num_value (s : num_state) : Value.t = if s.is_float then Float s.f else Int s.i

let acc_value = function
  | Acc_sum s -> num_value s
  | Acc_prod s -> num_value s
  | Acc_min { best } | Acc_max { best } -> ( match best with None -> Value.Null | Some v -> v)
  | Acc_avg { sum; n } -> if n = 0 then Value.Null else Value.Float (sum /. float_of_int n)
  | Acc_count { n } -> Value.Int n
  | Acc_all { b } -> Value.Bool b
  | Acc_any { b } -> Value.Bool b

let collect c vs =
  match (c : Ptype.coll) with
  | Bag -> Value.bag vs
  | List -> Value.list_ vs
  | Set -> Value.set vs

let result_type m elem =
  match m with
  | Collection c -> Ptype.Collection (c, elem)
  | Primitive Count -> Ptype.Int
  | Primitive (All | Any) -> Ptype.Bool
  | Primitive Avg -> Ptype.Float
  | Primitive (Sum | Prod | Min | Max) -> elem
