lib/symantec/symantec.mli: Proteus_algebra Proteus_model Ptype Value
