lib/symantec/symantec.ml: Array Buffer Expr Fmt Int64 List Monoid Proteus_algebra Proteus_format Proteus_model Ptype Schema String Value
