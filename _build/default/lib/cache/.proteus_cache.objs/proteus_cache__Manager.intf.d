lib/cache/manager.mli: Catalog Proteus_catalog Proteus_plugin
