lib/cache/subsume.mli: Expr Proteus_model
