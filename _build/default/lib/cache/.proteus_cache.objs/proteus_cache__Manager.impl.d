lib/cache/manager.ml: Catalog Column Dataset Expr Fmt Hashtbl List Logs Memory Proteus_catalog Proteus_model Proteus_plugin Proteus_storage Ptype String Subsume
