lib/cache/subsume.ml: Expr Float List Proteus_algebra Proteus_model String Value
