(** Predicate subsumption for cache matching — the extension Section 6 lists
    as future work: a cached [σ x>0 (A)] can answer [σ x>10 (A)] as long as
    the stricter predicate is re-applied on the cached rows.

    The test is conservative: it only certifies implication between
    conjunctions of numeric comparisons of the form [path op constant]; any
    conjunct it cannot analyze makes the answer [false]. *)

open Proteus_model

(** [covers ~cached ~query] is true when every row satisfying [query] also
    satisfies [cached] (so the cached result is a superset and [query] can
    be re-applied on it). Both predicates must be expressed over the same
    single binding. *)
val covers : cached:Expr.t -> query:Expr.t -> bool
