open Proteus_model
module Plan = Proteus_algebra.Plan

(* Predicates stay "pending" until an operator can host them: a join or an
   unnest absorbs every pending predicate whose variables are in scope there
   (the embedded filtering expressions of Table 1); whatever is left at the
   end folds into the root Reduce/Nest predicate. *)

let subset vars bound = List.for_all (fun v -> List.mem v bound) vars

let take_applicable pending bound =
  List.partition (fun p -> subset (Expr.free_vars p) bound) pending

let run (c : Calc.t) : Plan.t =
  let plan = ref None in
  let bound = ref [] in
  let pending = ref [] in
  let add_gen x src =
    match src with
    | Calc.Sub _ ->
      Perror.unsupported "sub-comprehension generator survived normalization"
    | Calc.Dataset d ->
      let scan = Plan.scan ~dataset:d ~binding:x () in
      (match !plan with
      | None ->
        plan := Some scan;
        bound := [ x ]
      | Some left ->
        let bound' = x :: !bound in
        let applicable, rest = take_applicable !pending bound' in
        pending := rest;
        plan := Some (Plan.join ~pred:(Expr.conjoin applicable) left scan);
        bound := bound')
    | Calc.Path e ->
      if not (subset (Expr.free_vars e) !bound) then
        Perror.plan_error "unnest path %a references unbound variables" Expr.pp e;
      (match !plan with
      | None -> Perror.plan_error "first generator cannot range over a path"
      | Some input ->
        let bound' = x :: !bound in
        let applicable, rest = take_applicable !pending bound' in
        pending := rest;
        plan :=
          Some (Plan.unnest ~pred:(Expr.conjoin applicable) ~path:e ~binding:x input);
        bound := bound')
  in
  List.iter
    (function
      | Calc.Gen (x, src) -> add_gen x src
      | Calc.Pred e -> pending := !pending @ [ e ])
    c.quals;
  let input =
    match !plan with
    | Some p -> p
    | None -> Perror.plan_error "comprehension has no generators"
  in
  let residual = Expr.conjoin !pending in
  match c.output with
  | Calc.Collect (coll, e) ->
    Plan.reduce ~pred:residual [ Plan.agg ~name:"result" (Monoid.Collection coll) e ] input
  | Calc.Aggregate aggs ->
    Plan.reduce ~pred:residual
      (List.map (fun (n, m, e) -> Plan.agg ~name:n (Monoid.Primitive m) e) aggs)
      input
  | Calc.Group { keys; aggs } ->
    Plan.nest ~pred:residual ~keys
      ~aggs:(List.map (fun (n, m, e) -> Plan.agg ~name:n (Monoid.Primitive m) e) aggs)
      ~binding:"group" input
