lib/calculus/to_algebra.ml: Calc Expr List Monoid Perror Proteus_algebra Proteus_model
