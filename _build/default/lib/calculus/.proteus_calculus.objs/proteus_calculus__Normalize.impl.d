lib/calculus/normalize.ml: Calc Expr List Proteus_model Ptype String Value
