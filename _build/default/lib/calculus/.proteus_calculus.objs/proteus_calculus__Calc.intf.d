lib/calculus/calc.mli: Expr Format Monoid Proteus_model Ptype Value
