lib/calculus/to_algebra.mli: Calc Proteus_algebra
