lib/calculus/calc.ml: Expr Fmt Hashtbl List Monoid Perror Proteus_model Ptype Value
