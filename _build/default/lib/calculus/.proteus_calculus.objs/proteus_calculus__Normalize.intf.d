lib/calculus/normalize.mli: Calc Proteus_model
