(** Rewriting a normalized comprehension into a nested-relational-algebra
    plan (the second rewriting phase of Section 4).

    Generators over datasets become scans joined left-to-right; generators
    over collection paths become Unnest operators (as in Figure 1);
    predicates are attached at the lowest operator where all their variables
    are in scope (an initial selection/join-condition placement that the
    optimizer refines further); the output clause becomes Reduce or Nest. *)

(** [run c] translates comprehension [c].
    Raises [Perror.Unsupported] for sub-comprehension generators — run
    {!Normalize.run} first; it removes them. *)
val run : Calc.t -> Proteus_algebra.Plan.t
