open Proteus_model

type source = Dataset of string | Path of Expr.t | Sub of t

and qual = Gen of string * source | Pred of Expr.t

and output =
  | Collect of Ptype.coll * Expr.t
  | Aggregate of (string * Monoid.primitive * Expr.t) list
  | Group of {
      keys : (string * Expr.t) list;
      aggs : (string * Monoid.primitive * Expr.t) list;
    }

and t = { output : output; quals : qual list }

let coll_name = function Ptype.Bag -> "bag" | Ptype.Set -> "set" | Ptype.List -> "list"

let rec pp ppf t =
  let pp_qual ppf = function
    | Gen (x, Dataset d) -> Fmt.pf ppf "%s <- %s" x d
    | Gen (x, Path e) -> Fmt.pf ppf "%s <- %a" x Expr.pp e
    | Gen (x, Sub c) -> Fmt.pf ppf "%s <- (%a)" x pp c
    | Pred e -> Expr.pp ppf e
  in
  let pp_agg ppf (n, m, e) =
    Fmt.pf ppf "%s = %s(%a)" n (Monoid.to_string (Monoid.Primitive m)) Expr.pp e
  in
  Fmt.pf ppf "for {@[%a@]} " Fmt.(list ~sep:(any ", ") pp_qual) t.quals;
  match t.output with
  | Collect (c, e) -> Fmt.pf ppf "yield %s %a" (coll_name c) Expr.pp e
  | Aggregate aggs -> Fmt.pf ppf "yield %a" Fmt.(list ~sep:(any ", ") pp_agg) aggs
  | Group { keys; aggs } ->
    let pp_key ppf (n, e) = Fmt.pf ppf "%s = %a" n Expr.pp e in
    Fmt.pf ppf "group by %a yield %a"
      Fmt.(list ~sep:(any ", ") pp_key)
      keys
      Fmt.(list ~sep:(any ", ") pp_agg)
      aggs

let to_string t = Fmt.str "%a" pp t

let equal a b = a = b

let bound_vars t =
  List.filter_map (function Gen (x, _) -> Some x | Pred _ -> None) t.quals

let rec free_vars t =
  let bound = ref [] in
  let free = ref [] in
  let add vs =
    List.iter (fun v -> if not (List.mem v !bound || List.mem v !free) then free := v :: !free) vs
  in
  List.iter
    (function
      | Gen (x, src) ->
        (match src with
        | Dataset _ -> ()
        | Path e -> add (Expr.free_vars e)
        | Sub c -> add (List.filter (fun v -> not (List.mem v !bound)) (free_vars c)));
        bound := x :: !bound
      | Pred e -> add (Expr.free_vars e))
    t.quals;
  (match t.output with
  | Collect (_, e) -> add (Expr.free_vars e)
  | Aggregate aggs -> List.iter (fun (_, _, e) -> add (Expr.free_vars e)) aggs
  | Group { keys; aggs } ->
    List.iter (fun (_, e) -> add (Expr.free_vars e)) keys;
    List.iter (fun (_, _, e) -> add (Expr.free_vars e)) aggs);
  List.rev !free

let rec datasets t =
  List.concat_map
    (function
      | Gen (_, Dataset d) -> [ d ]
      | Gen (_, Sub c) -> datasets c
      | Gen (_, Path _) | Pred _ -> [])
    t.quals

(* Environments flow left to right through the qualifiers; sub-comprehensions
   evaluate under the outer environment they appear in. *)
let rec eval_in ~lookup env t : Value.t =
  let step envs = function
    | Pred e -> List.filter (fun env -> Expr.eval_pred env e) envs
    | Gen (x, src) ->
      List.concat_map
        (fun env ->
          let elems =
            match src with
            | Dataset d -> lookup d
            | Path e -> (
              match Expr.eval env e with
              | Value.Coll (_, es) -> es
              | Value.Null -> []
              | v -> Perror.type_error "generator over non-collection %a" Value.pp v)
            | Sub c -> (
              match eval_in ~lookup env c with
              | Value.Coll (_, es) -> es
              | v -> Perror.type_error "generator over non-collection %a" Value.pp v)
          in
          List.map (fun e -> (x, e) :: env) elems)
        envs
  in
  let envs = List.fold_left step [ env ] t.quals in
  finish envs t.output

and finish envs output : Value.t =
  match output with
  | Collect (c, e) -> Monoid.collect c (List.map (fun env -> Expr.eval env e) envs)
  | Aggregate aggs ->
    let one (_, m, e) =
      let acc = Monoid.acc_create m in
      List.iter (fun env -> Monoid.acc_step acc (Expr.eval env e)) envs;
      Monoid.acc_value acc
    in
    (match aggs with
    | [] -> Perror.plan_error "aggregate output with no aggregates"
    | [ a ] -> one a
    | many -> Value.record (List.map (fun ((n, _, _) as a) -> (n, one a)) many))
  | Group { keys; aggs } ->
    let groups : (Value.t list, Expr.env list ref) Hashtbl.t = Hashtbl.create 64 in
    let order = ref [] in
    List.iter
      (fun env ->
        let kv = List.map (fun (_, e) -> Expr.eval env e) keys in
        match Hashtbl.find_opt groups kv with
        | Some cell -> cell := env :: !cell
        | None ->
          Hashtbl.add groups kv (ref [ env ]);
          order := kv :: !order)
      envs;
    let rows =
      List.rev_map
        (fun kv ->
          let members = List.rev !(Hashtbl.find groups kv) in
          let key_fields = List.map2 (fun (n, _) v -> (n, v)) keys kv in
          let agg_fields =
            List.map
              (fun (n, m, e) ->
                let acc = Monoid.acc_create m in
                List.iter (fun env -> Monoid.acc_step acc (Expr.eval env e)) members;
                (n, Monoid.acc_value acc))
              aggs
          in
          Value.record (key_fields @ agg_fields))
        !order
    in
    Value.bag rows

let eval ~lookup t = eval_in ~lookup [] t

let validate t =
  let rec go outer t =
    let bound = ref outer in
    let check e =
      List.iter
        (fun v ->
          if not (List.mem v !bound) then
            Perror.plan_error "comprehension references unbound variable %s" v)
        (Expr.free_vars e)
    in
    List.iter
      (function
        | Gen (x, src) ->
          (match src with
          | Dataset _ -> ()
          | Path e -> check e
          | Sub c -> go !bound c);
          if List.mem x !bound then Perror.plan_error "generator shadows %s" x;
          bound := x :: !bound
        | Pred e -> check e)
      t.quals;
    match t.output with
    | Collect (_, e) -> check e
    | Aggregate aggs -> List.iter (fun (_, _, e) -> check e) aggs
    | Group { keys; aggs } ->
      List.iter (fun (_, e) -> check e) keys;
      List.iter (fun (_, _, e) -> check e) aggs
  in
  go [] t
