(** The monoid comprehension calculus (Section 3, after Fegaras–Maier [24]).

    A query is a comprehension: an output specification over a sequence of
    qualifiers. Generators ([x <- source]) range over datasets, over
    collection-valued paths of already-bound variables (the unnesting case),
    or over sub-comprehensions; predicates filter the bindings accumulated so
    far.

    Example 3.1 of the paper:
    {v
    for { s1 <- Sailor, c <- s1.children, s2 <- Ship,
          p <- s2.personnel, s1.id = p.id, c.age > 18 }
    yield bag (s1.id, s2.name, c.name)
    v}
    is [{ output = Collect (Bag, <record>); quals = [Gen...; Pred...] }]. *)

open Proteus_model

type source =
  | Dataset of string          (** a catalog dataset *)
  | Path of Expr.t             (** a nested collection, e.g. [s1.children] *)
  | Sub of t                   (** a nested comprehension *)

and qual =
  | Gen of string * source
  | Pred of Expr.t

and output =
  | Collect of Ptype.coll * Expr.t
      (** [bag/set/list { e | ... }] *)
  | Aggregate of (string * Monoid.primitive * Expr.t) list
      (** scalar fold(s): [sum/max/... { e | ... }]; several at once for
          multi-aggregate queries *)
  | Group of {
      keys : (string * Expr.t) list;
      aggs : (string * Monoid.primitive * Expr.t) list;
    }  (** grouping fold — the calculus pattern SQL's GROUP BY desugars to *)

and t = {
  output : output;
  quals : qual list;
}

val pp : Format.formatter -> t -> unit
val to_string : t -> string
val equal : t -> t -> bool

(** Variables bound by the generators of [t], in order. *)
val bound_vars : t -> string list

(** Free variables (referenced but not generator-bound). *)
val free_vars : t -> string list

(** [datasets t] is every dataset name referenced, sub-comprehensions
    included. *)
val datasets : t -> string list

(** [eval ~lookup t] evaluates the comprehension directly (list semantics,
    nested loops) — the semantic oracle for the normalizer and the
    algebra translation. *)
val eval : lookup:(string -> Value.t list) -> t -> Value.t

(** [validate t] checks variable scoping.
    Raises [Perror.Plan_error] on unbound/shadowed variables. *)
val validate : t -> unit
