(** Normalization of monoid comprehensions (the rewrite rules of [24],
    Section 4 "Query Optimization": the first, syntactic phase).

    The rules implemented:
    - {b predicate splitting}: a conjunction qualifier becomes several
      qualifiers, enabling independent placement (selection pushdown);
    - {b generator unnesting} (rule N8): a generator over a bag
      sub-comprehension [x <- bag{ e | qs }] splices [qs] into the outer
      qualifier list and substitutes [e] for [x] — this is what removes
      nested queries before the algebra ever sees them;
    - {b trivial-predicate elimination}: [true] qualifiers disappear;
      a [false] qualifier empties the comprehension (the output becomes the
      monoid's identity);
    - {b constant folding} inside qualifier predicates (conservative). *)

(** [run c] applies the rules to a fixpoint. The result evaluates to the
    same value as [c] (property-tested). *)
val run : Calc.t -> Calc.t

(** [fold_constants e] conservatively folds constant sub-expressions. *)
val fold_constants : Proteus_model.Expr.t -> Proteus_model.Expr.t
