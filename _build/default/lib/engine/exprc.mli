(** The expression generators (Section 5.2).

    [compile] turns an algebraic expression into a closure, resolving — once
    per query — everything a tuple-at-a-time interpreter would re-decide per
    tuple: which plug-in accessor serves each path, the numeric type of each
    operator, nullability, and constant values. The result is a {e typed}
    closure whenever the operand types can be pinned down statically
    (non-nullable int/float/bool/string paths); otherwise a boxed closure
    with exactly the interpreter's semantics.

    Operators are agnostic to where a value comes from: the compile
    environment maps each bound variable to a {!repr} describing its current
    physical representation — raw-scan accessors, structural-index unnest
    spans, a boxed register, or materialized columns — and the compiled
    closure reads whichever it is ("the operators are oblivious to whether a
    value ... is not fully materialized yet"). *)

open Proteus_model
open Proteus_plugin

(** Physical representation of a bound variable at this point of the
    pipeline. *)
type repr =
  | Scan_repr of Source.t            (** live scan cursor *)
  | Unnest_repr of Source.unnest_spec  (** current nested element (span) *)
  | Boxed_repr of Value.t ref        (** boxed register *)
  | Row_repr of (string * Value.t array ref) list * int ref * bool ref
      (** materialized rows: per-path arrays, row cursor, null-row flag
          (for outer-join padding) *)

type cenv = (string, repr) Hashtbl.t

type compiled =
  | C_int of (unit -> int)
  | C_float of (unit -> float)
  | C_bool of (unit -> bool)
  | C_str of (unit -> string)
  | C_val of (unit -> Value.t)

val compile : cenv -> Expr.t -> compiled

(** [to_val c] is the boxed view of a compiled closure. *)
val to_val : compiled -> unit -> Value.t

(** [to_pred c] views a compiled closure as a predicate (boxed results
    follow the interpreter's null-is-false rule).
    Raises [Perror.Type_error] if the closure cannot yield booleans. *)
val to_pred : compiled -> unit -> bool

(** [path_of e] decomposes [e] into a variable and a dotted path when it is
    a pure path expression ([x.a.b] → [Some ("x", "a.b")], [x] →
    [Some ("x", "")]). *)
val path_of : Expr.t -> (string * string) option

(** [required_paths exprs] maps each free variable to either [`Whole] (used
    bare) or [`Paths ps] (only these dotted paths are read) across all
    [exprs] — the engine's projection-pushdown analysis. *)
val required_paths : Expr.t list -> (string * [ `Whole | `Paths of string list ]) list
