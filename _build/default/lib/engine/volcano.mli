(** The Volcano-style iterator interpreter [27] — the un-specialized
    baseline the paper's Section 5 argues against.

    Every operator is a generic iterator exposing [next()]; every tuple
    crosses one virtual call per operator and every expression is
    re-interpreted over boxed values per tuple. Data access still goes
    through the same input plug-ins and structural indexes as the compiled
    engine (both engines read the same raw bytes); what differs is purely
    the per-tuple interpretation overhead — which is exactly the ablation
    the on-demand engine of Section 5.1 is designed to eliminate. *)

open Proteus_model
open Proteus_plugin

(** [execute registry plan] interprets [plan]. Result shape matches
    {!Proteus_algebra.Interp.run} and {!Compiled.execute}. *)
val execute : Registry.t -> Proteus_algebra.Plan.t -> Value.t

(** How scans obtain their data. The baseline systems of the evaluation
    (generic row stores) reuse this interpreter over their own storage by
    supplying a provider. *)
type provider = dataset:string -> required:string list -> Source.t

val execute_with : provider -> Proteus_algebra.Plan.t -> Value.t
