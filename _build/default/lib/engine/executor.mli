(** Unified entry point over the two executors. *)

type engine =
  | Engine_compiled  (** the on-demand specialized engine (Section 5) *)
  | Engine_volcano   (** the iterator interpreter baseline *)

(** [run registry ~engine plan] validates and executes [plan]. *)
val run :
  Proteus_plugin.Registry.t ->
  engine:engine ->
  Proteus_algebra.Plan.t ->
  Proteus_model.Value.t
