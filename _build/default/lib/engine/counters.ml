type snapshot = {
  tuples : int;
  dispatches : int;
  materialized : int;
  branch_points : int;
}

let tuples = ref 0
let dispatches = ref 0
let materialized = ref 0
let branch_points = ref 0

let reset () =
  tuples := 0;
  dispatches := 0;
  materialized := 0;
  branch_points := 0

let snapshot () =
  {
    tuples = !tuples;
    dispatches = !dispatches;
    materialized = !materialized;
    branch_points = !branch_points;
  }

let add_tuples n = tuples := !tuples + n
let add_dispatches n = dispatches := !dispatches + n
let add_materialized n = materialized := !materialized + n
let add_branch_points n = branch_points := !branch_points + n

let pp ppf s =
  Fmt.pf ppf "tuples=%d dispatches=%d materialized=%d branches=%d" s.tuples
    s.dispatches s.materialized s.branch_points
