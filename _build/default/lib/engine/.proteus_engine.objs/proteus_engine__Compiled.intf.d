lib/engine/compiled.mli: Expr Proteus_algebra Proteus_model Proteus_plugin Registry Value
