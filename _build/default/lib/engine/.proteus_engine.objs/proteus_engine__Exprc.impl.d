lib/engine/exprc.ml: Access Array Expr Hashtbl List Monoid Perror Proteus_algebra Proteus_model Proteus_plugin Ptype Source String Value
