lib/engine/counters.ml: Fmt
