lib/engine/exprc.mli: Expr Hashtbl Proteus_model Proteus_plugin Source Value
