lib/engine/radix.ml: Array Int
