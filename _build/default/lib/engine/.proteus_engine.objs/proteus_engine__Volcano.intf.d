lib/engine/volcano.mli: Proteus_algebra Proteus_model Proteus_plugin Registry Source Value
