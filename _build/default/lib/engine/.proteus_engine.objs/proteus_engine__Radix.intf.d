lib/engine/radix.mli:
