lib/engine/executor.mli: Proteus_algebra Proteus_model Proteus_plugin
