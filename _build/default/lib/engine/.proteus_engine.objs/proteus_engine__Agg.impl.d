lib/engine/agg.ml: Exprc List Monoid Proteus_model Value
