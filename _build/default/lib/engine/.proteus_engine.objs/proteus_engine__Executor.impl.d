lib/engine/executor.ml: Compiled Proteus_algebra Volcano
