lib/engine/agg.mli: Exprc Monoid Proteus_model Value
