lib/engine/volcano.ml: Access Compiled Counters Expr Exprc Hashtbl List Monoid Option Perror Proteus_algebra Proteus_model Proteus_plugin Ptype Registry Source String Value
