lib/engine/counters.mli: Format
