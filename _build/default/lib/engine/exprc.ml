open Proteus_model
open Proteus_plugin

type repr =
  | Scan_repr of Source.t
  | Unnest_repr of Source.unnest_spec
  | Boxed_repr of Value.t ref
  | Row_repr of (string * Value.t array ref) list * int ref * bool ref

type cenv = (string, repr) Hashtbl.t

type compiled =
  | C_int of (unit -> int)
  | C_float of (unit -> float)
  | C_bool of (unit -> bool)
  | C_str of (unit -> string)
  | C_val of (unit -> Value.t)

let to_val = function
  | C_int f -> fun () -> Value.Int (f ())
  | C_float f -> fun () -> Value.Float (f ())
  | C_bool f -> fun () -> Value.Bool (f ())
  | C_str f -> fun () -> Value.String (f ())
  | C_val f -> f

let to_pred = function
  | C_bool f -> f
  | C_val f ->
    fun () ->
      (match f () with
      | Value.Bool b -> b
      | Value.Null -> false
      | v -> Perror.type_error "predicate evaluated to %a" Value.pp v)
  | C_int _ | C_float _ | C_str _ ->
    Perror.type_error "non-boolean predicate"

let path_of = Proteus_algebra.Analysis.path_of

let required_paths = Proteus_algebra.Analysis.required_paths

(* Boxed field walk for dotted paths on boxed values. *)
let boxed_path get path : unit -> Value.t =
  let parts = String.split_on_char '.' path in
  fun () ->
    List.fold_left
      (fun v name ->
        match v with
        | Value.Null -> Value.Null
        | Value.Record _ as r -> (
          match Value.field_opt r name with Some x -> x | None -> Value.Null)
        | v -> Perror.type_error "field %s of non-record %a" name Value.pp v)
      (get ()) parts

(* Lift a plug-in accessor into a compiled closure: typed when the accessor
   is non-nullable and offers the matching fast path. *)
let of_access (a : Access.t) : compiled =
  if a.Access.nullable then C_val a.Access.get_val
  else
    match a.Access.get_int, a.Access.get_float, a.Access.get_bool, a.Access.get_str with
    | Some g, _, _, _ -> (
      (* Dates surface as ints in expressions via the typed lane, but their
         boxed view must stay Date for result fidelity. *)
      match Ptype.unwrap_option a.Access.ty with
      | Ptype.Date -> C_val a.Access.get_val
      | _ -> C_int g)
    | None, Some g, _, _ -> C_float g
    | None, None, Some g, _ -> C_bool g
    | None, None, None, Some g -> C_str g
    | None, None, None, None -> C_val a.Access.get_val

let compile_var_path (cenv : cenv) v path : compiled =
  let repr =
    match Hashtbl.find_opt cenv v with
    | Some r -> r
    | None -> Perror.plan_error "unbound variable %s at code generation" v
  in
  match repr, path with
  | Scan_repr src, "" -> C_val src.Source.whole
  | Scan_repr src, p -> of_access (src.Source.field p)
  | Unnest_repr u, "" -> C_val u.Source.u_value
  | Unnest_repr u, p -> of_access (u.Source.u_field p)
  | Boxed_repr r, "" -> C_val (fun () -> !r)
  | Boxed_repr r, p -> C_val (boxed_path (fun () -> !r) p)
  | Row_repr (cols, cur, null_row), p -> (
    match List.assoc_opt p cols with
    | Some arr ->
      C_val (fun () -> if !null_row then Value.Null else !arr.(!cur))
    | None -> (
      (* dotted sub-path of a materialized whole record *)
      match List.assoc_opt "" cols with
      | Some arr when p <> "" ->
        C_val
          (boxed_path (fun () -> if !null_row then Value.Null else !arr.(!cur)) p)
      | _ -> Perror.plan_error "materialized side has no column for %s.%s" v p))

(* Numeric combination: stay in int when both sides are ints, widen to float
   otherwise; drop to boxed when a side is boxed. *)
let arith op (l : compiled) (r : compiled) : compiled =
  let int_op : (int -> int -> int) option =
    match (op : Expr.binop) with
    | Add -> Some ( + )
    | Sub -> Some ( - )
    | Mul -> Some ( * )
    | Div ->
      Some
        (fun a b -> if b = 0 then Perror.type_error "division by zero" else a / b)
    | Mod ->
      Some (fun a b -> if b = 0 then Perror.type_error "modulo by zero" else a mod b)
    | Eq | Neq | Lt | Le | Gt | Ge | And | Or | Concat | Like -> None
  in
  let float_op : (float -> float -> float) option =
    match (op : Expr.binop) with
    | Add -> Some ( +. )
    | Sub -> Some ( -. )
    | Mul -> Some ( *. )
    | Div -> Some ( /. )
    | Mod | Eq | Neq | Lt | Le | Gt | Ge | And | Or | Concat | Like -> None
  in
  match l, r, int_op, float_op with
  | C_int a, C_int b, Some iop, _ -> C_int (fun () -> iop (a ()) (b ()))
  | C_int a, C_float b, _, Some fop -> C_float (fun () -> fop (float_of_int (a ())) (b ()))
  | C_float a, C_int b, _, Some fop -> C_float (fun () -> fop (a ()) (float_of_int (b ())))
  | C_float a, C_float b, _, Some fop -> C_float (fun () -> fop (a ()) (b ()))
  | l, r, _, _ ->
    let lv = to_val l and rv = to_val r in
    C_val (fun () -> Expr.apply_binop op (lv ()) (rv ()))

let comparison op (l : compiled) (r : compiled) : compiled =
  let icmp : (int -> int -> bool) option =
    match (op : Expr.binop) with
    | Eq -> Some ( = )
    | Neq -> Some ( <> )
    | Lt -> Some ( < )
    | Le -> Some ( <= )
    | Gt -> Some ( > )
    | Ge -> Some ( >= )
    | Add | Sub | Mul | Div | Mod | And | Or | Concat | Like -> None
  in
  match icmp with
  | None -> assert false
  | Some cmp -> (
    match l, r with
    | C_int a, C_int b -> C_bool (fun () -> cmp (a ()) (b ()))
    | C_float a, C_float b -> C_bool (fun () -> cmp (compare (a ()) (b ())) 0)
    | C_int a, C_float b ->
      C_bool (fun () -> cmp (compare (float_of_int (a ())) (b ())) 0)
    | C_float a, C_int b ->
      C_bool (fun () -> cmp (compare (a ()) (float_of_int (b ()))) 0)
    | C_str a, C_str b -> C_bool (fun () -> cmp (String.compare (a ()) (b ())) 0)
    | C_bool a, C_bool b -> C_bool (fun () -> cmp (compare (a ()) (b ())) 0)
    | l, r ->
      let lv = to_val l and rv = to_val r in
      C_val (fun () -> Expr.apply_binop op (lv ()) (rv ())))

let rec compile (cenv : cenv) (e : Expr.t) : compiled =
  match path_of e with
  | Some (v, path) -> compile_var_path cenv v path
  | None -> (
    match e with
    | Expr.Const (Value.Int i) -> C_int (fun () -> i)
    | Expr.Const (Value.Float f) -> C_float (fun () -> f)
    | Expr.Const (Value.Bool b) -> C_bool (fun () -> b)
    | Expr.Const (Value.String s) -> C_str (fun () -> s)
    | Expr.Const v -> C_val (fun () -> v)
    | Expr.Var _ | Expr.Field _ -> assert false (* handled by path_of *)
    | Expr.Binop (Expr.And, l, r) ->
      let lp = to_pred (compile cenv l) and rp = to_pred (compile cenv r) in
      C_bool (fun () -> lp () && rp ())
    | Expr.Binop (Expr.Or, l, r) ->
      let lp = to_pred (compile cenv l) and rp = to_pred (compile cenv r) in
      C_bool (fun () -> lp () || rp ())
    | Expr.Binop (((Expr.Add | Expr.Sub | Expr.Mul | Expr.Div | Expr.Mod) as op), l, r)
      ->
      arith op (compile cenv l) (compile cenv r)
    | Expr.Binop
        (((Expr.Eq | Expr.Neq | Expr.Lt | Expr.Le | Expr.Gt | Expr.Ge) as op), l, r) ->
      comparison op (compile cenv l) (compile cenv r)
    | Expr.Binop (Expr.Concat, l, r) -> (
      match compile cenv l, compile cenv r with
      | C_str a, C_str b -> C_str (fun () -> a () ^ b ())
      | l, r ->
        let lv = to_val l and rv = to_val r in
        C_val (fun () -> Expr.apply_binop Expr.Concat (lv ()) (rv ())))
    | Expr.Binop (Expr.Like, l, r) -> (
      match compile cenv l, compile cenv r with
      | C_str a, C_str b -> C_bool (fun () -> Expr.like ~pattern:(b ()) (a ()))
      | l, r ->
        let lv = to_val l and rv = to_val r in
        C_val (fun () -> Expr.apply_binop Expr.Like (lv ()) (rv ())))
    | Expr.Unop (Expr.Neg, x) -> (
      match compile cenv x with
      | C_int a -> C_int (fun () -> -a ())
      | C_float a -> C_float (fun () -> -.a ())
      | c ->
        let v = to_val c in
        C_val (fun () -> Expr.apply_unop Expr.Neg (v ())))
    | Expr.Unop (Expr.Not, x) -> (
      match compile cenv x with
      | C_bool a -> C_bool (fun () -> not (a ()))
      | c ->
        let v = to_val c in
        C_val (fun () -> Expr.apply_unop Expr.Not (v ())))
    | Expr.Unop (Expr.Is_null, x) -> (
      match compile cenv x with
      | C_int _ | C_float _ | C_bool _ | C_str _ ->
        (* statically non-nullable: decided at compile time *)
        C_bool (fun () -> false)
      | C_val v -> C_bool (fun () -> Value.is_null (v ())))
    | Expr.Unop (Expr.To_float, x) -> (
      match compile cenv x with
      | C_int a -> C_float (fun () -> float_of_int (a ()))
      | C_float _ as c -> c
      | c ->
        let v = to_val c in
        C_val (fun () -> Expr.apply_unop Expr.To_float (v ())))
    | Expr.Unop (Expr.To_int, x) -> (
      match compile cenv x with
      | C_int _ as c -> c
      | C_float a -> C_int (fun () -> int_of_float (a ()))
      | c ->
        let v = to_val c in
        C_val (fun () -> Expr.apply_unop Expr.To_int (v ())))
    | Expr.If (c, t, f) -> (
      let cp = to_pred (compile cenv c) in
      match compile cenv t, compile cenv f with
      | C_int a, C_int b -> C_int (fun () -> if cp () then a () else b ())
      | C_float a, C_float b -> C_float (fun () -> if cp () then a () else b ())
      | C_bool a, C_bool b -> C_bool (fun () -> if cp () then a () else b ())
      | C_str a, C_str b -> C_str (fun () -> if cp () then a () else b ())
      | t, f ->
        let tv = to_val t and fv = to_val f in
        C_val (fun () -> if cp () then tv () else fv ()))
    | Expr.Record_ctor fields ->
      let compiled =
        List.map (fun (n, x) -> (n, to_val (compile cenv x))) fields
      in
      C_val (fun () -> Value.record (List.map (fun (n, g) -> (n, g ())) compiled))
    | Expr.Coll_ctor (c, xs) ->
      let compiled = List.map (fun x -> to_val (compile cenv x)) xs in
      C_val (fun () -> Monoid.collect c (List.map (fun g -> g ()) compiled)))
