
type engine = Engine_compiled | Engine_volcano

let run reg ~engine plan =
  Proteus_algebra.Plan.validate plan;
  match engine with
  | Engine_compiled -> Compiled.execute reg plan
  | Engine_volcano -> Volcano.execute reg plan
