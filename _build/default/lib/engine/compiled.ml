open Proteus_model
open Proteus_plugin
module Plan = Proteus_algebra.Plan
module Fingerprint = Proteus_algebra.Fingerprint

module VH = Hashtbl.Make (struct
  type t = Value.t

  let equal = Value.equal
  let hash = Value.hash
end)

(* Growable boxed vector for materialized join sides. *)
module Vec = struct
  type t = { mutable a : Value.t array; mutable n : int }

  let create () = { a = Array.make 64 Value.Null; n = 0 }

  let clear t = t.n <- 0

  let push t v =
    if t.n >= Array.length t.a then begin
      let bigger = Array.make (2 * t.n) Value.Null in
      Array.blit t.a 0 bigger 0 t.n;
      t.a <- bigger
    end;
    t.a.(t.n) <- v;
    t.n <- t.n + 1

  let to_array t = Array.sub t.a 0 t.n
end

let all_exprs = Proteus_algebra.Analysis.all_exprs

type ctx = {
  reg : Registry.t;
  cenv : Exprc.cenv;
  required : (string * [ `Whole | `Paths of string list ]) list;
}

let subset vars bound = List.for_all (fun v -> List.mem v bound) vars

(* Find an equi-join conjunct splitting cleanly across the two sides. *)
let extract_equi pred left_bound right_bound =
  List.find_map
    (fun c ->
      match (c : Expr.t) with
      | Expr.Binop (Expr.Eq, l, r) ->
        let fl = Expr.free_vars l and fr = Expr.free_vars r in
        if subset fl left_bound && subset fr right_bound then Some (l, r)
        else if subset fl right_bound && subset fr left_bound then Some (r, l)
        else None
      | _ -> None)
    (Expr.conjuncts pred)

(* The payload a join materializes for its build side: one boxed vector per
   (binding, path) the ancestors read. *)
type payload_slot = {
  ps_binding : string;
  ps_path : string;  (* "" = whole record *)
  ps_get : unit -> Value.t;   (* compiled against the live build pipeline *)
  ps_vec : Vec.t;
  ps_arr : Value.t array ref; (* swapped in after materialization *)
  ps_packable : bool;
  ps_ty : Ptype.t option;     (* for packing to a cache column *)
}

(* sigma-result caching applies when the scan's required paths are all
   primitive (packable into binary columns) *)
let select_paths ctx binding =
  match List.assoc_opt binding ctx.required with
  | Some (`Paths ps) when ps <> [] -> Some ps
  | _ -> None

let select_cache_should_store ctx ~dataset ~binding =
  (Registry.cache ctx.reg).Cache_iface.should_cache_select ~dataset
  &&
  match select_paths ctx binding with
  | None -> false
  | Some paths -> (
    match Proteus_catalog.Catalog.find_opt (Registry.catalog ctx.reg) dataset with
    | Some d ->
      List.for_all
        (fun p ->
          match Source.field_type d.Proteus_catalog.Dataset.element p with
          | ty -> Ptype.is_primitive (Ptype.unwrap_option ty)
          | exception Perror.Plan_error _ -> false)
        paths
    | None -> false)

let rec compile (ctx : ctx) (p : Plan.t) : (unit -> unit) -> unit -> unit =
  match p with
  | Plan.Scan { dataset; binding; fields = _ } ->
    let required =
      match List.assoc_opt binding ctx.required with
      | Some (`Paths ps) -> ps
      | Some `Whole | None -> []
    in
    let scan = Registry.scan ctx.reg ~dataset ~required in
    Hashtbl.replace ctx.cenv binding (Exprc.Scan_repr scan.Registry.sc_source);
    fun consumer () ->
      scan.Registry.sc_run ~on_tuple:(fun () ->
          Counters.add_tuples 1;
          consumer ())
  | Plan.Select { pred; input = Plan.Scan { dataset; binding; _ } as scan }
    when select_paths ctx binding <> None ->
    compile_select_scan ctx ~pred ~dataset ~binding ~scan
  | Plan.Select { pred; input } ->
    let run_input = compile ctx input in
    let pred_c = Exprc.to_pred (Exprc.compile ctx.cenv pred) in
    fun consumer ->
      run_input (fun () ->
          Counters.add_branch_points 1;
          if pred_c () then consumer ())
  | Plan.Project { binding; fields; input } ->
    let run_input = compile ctx input in
    let getters =
      List.map (fun (n, e) -> (n, Exprc.to_val (Exprc.compile ctx.cenv e))) fields
    in
    let reg = ref Value.Null in
    Hashtbl.replace ctx.cenv binding (Exprc.Boxed_repr reg);
    fun consumer ->
      run_input (fun () ->
          reg := Value.record (List.map (fun (n, g) -> (n, g ())) getters);
          consumer ())
  | Plan.Unnest { outer; path; binding; pred; input } -> compile_unnest ctx ~outer ~path ~binding ~pred ~input
  | Plan.Nest { keys; aggs; pred; binding; input } -> (
    let run_input = compile ctx input in
    let pred_c = Exprc.to_pred (Exprc.compile ctx.cenv pred) in
    let compiled_keys = List.map (fun (n, e) -> (n, Exprc.compile ctx.cenv e)) keys in
    let factories =
      List.map
        (fun (a : Plan.agg) -> (a.agg_name, Agg.factory a.monoid (Exprc.compile ctx.cenv a.expr)))
        aggs
    in
    let group_reg = ref Value.Null in
    Hashtbl.replace ctx.cenv binding (Exprc.Boxed_repr group_reg);
    let emit consumer key_fields instances =
      let agg_fields =
        List.map2 (fun (n, _) (i : Agg.instance) -> (n, i.value ())) factories instances
      in
      group_reg := Value.record (key_fields @ agg_fields);
      consumer ()
    in
    match compiled_keys with
    | [ (kname, Exprc.C_int kget) ] ->
      (* single integer grouping key: the hash-based grouping runs over raw
         ints, no boxing per tuple *)
      fun consumer ->
        let groups : (int, Agg.instance list) Hashtbl.t = Hashtbl.create 64 in
        let order = ref [] in
        let feeder =
          run_input (fun () ->
              if pred_c () then begin
                let k = kget () in
                let instances =
                  match Hashtbl.find_opt groups k with
                  | Some instances -> instances
                  | None ->
                    let instances = List.map (fun (_, f) -> f ()) factories in
                    Hashtbl.add groups k instances;
                    order := k :: !order;
                    Counters.add_materialized 1;
                    instances
                in
                List.iter (fun (i : Agg.instance) -> i.step ()) instances
              end)
        in
        fun () ->
          Hashtbl.reset groups;
          order := [];
          feeder ();
          List.iter
            (fun k ->
              emit consumer [ (kname, Value.Int k) ] (Hashtbl.find groups k))
            (List.rev !order)
    | _ ->
      let key_getters = List.map (fun (n, c) -> (n, Exprc.to_val c)) compiled_keys in
      fun consumer ->
        let groups : (Value.t list * Agg.instance list) VH.t = VH.create 64 in
        let order = ref [] in
        let feeder =
          run_input (fun () ->
              if pred_c () then begin
                let kvs = List.map (fun (_, g) -> g ()) key_getters in
                let key = Value.Coll (Ptype.List, kvs) in
                let _, instances =
                  match VH.find_opt groups key with
                  | Some cell -> cell
                  | None ->
                    let cell = (kvs, List.map (fun (_, f) -> f ()) factories) in
                    VH.add groups key cell;
                    order := key :: !order;
                    Counters.add_materialized (List.length kvs);
                    cell
                in
                List.iter (fun (i : Agg.instance) -> i.step ()) instances
              end)
        in
        fun () ->
          VH.reset groups;
          order := [];
          feeder ();
          List.iter
            (fun key ->
              let kvs, instances = VH.find groups key in
              let key_fields = List.map2 (fun (n, _) v -> (n, v)) keys kvs in
              emit consumer key_fields instances)
            (List.rev !order))
  | Plan.Sort { keys; limit; input } ->
    let run_input = compile ctx input in
    let visible = Plan.bindings input in
    (* getters against the live pipeline, compiled before re-registration *)
    let getters =
      List.map (fun b -> Exprc.to_val (Exprc.compile ctx.cenv (Expr.Var b))) visible
    in
    let key_getters =
      List.map (fun (e, d) -> (Exprc.to_val (Exprc.compile ctx.cenv e), d)) keys
    in
    (* above the sort, bindings read from boxed registers *)
    let regs = List.map (fun b -> (b, ref Value.Null)) visible in
    List.iter
      (fun (b, r) -> Hashtbl.replace ctx.cenv b (Exprc.Boxed_repr r))
      regs;
    fun consumer () ->
      let rows = ref [] in
      (run_input (fun () ->
           Counters.add_materialized (List.length visible);
           rows :=
             ( List.map (fun (g, _) -> g ()) key_getters,
               List.map (fun g -> g ()) getters )
             :: !rows))
        ();
      let cmp (ka, _) (kb, _) =
        let rec go ks ds =
          match ks, ds with
          | (a, b) :: rest, (_, d) :: drest ->
            let c = Value.compare a b in
            if c <> 0 then (match (d : Plan.sort_dir) with Plan.Asc -> c | Plan.Desc -> -c)
            else go rest drest
          | _, _ -> 0
        in
        go (List.combine ka kb) keys
      in
      let sorted = List.stable_sort cmp (List.rev !rows) in
      let sorted =
        match limit with
        | None -> sorted
        | Some n -> List.filteri (fun i _ -> i < n) sorted
      in
      List.iter
        (fun (_, values) ->
          List.iter2 (fun (_, r) v -> r := v) regs values;
          consumer ())
        sorted
  | Plan.Reduce _ ->
    Perror.plan_error "Reduce below the plan root is not supported"
  | Plan.Join { kind; algo; left; right; left_key; right_key; pred } ->
    compile_join ctx ~kind ~algo ~left ~right ~left_key ~right_key ~pred

and compile_select_scan ctx ~pred ~dataset ~binding ~scan =
  let paths = Option.get (select_paths ctx binding) in
  let cache = Registry.cache ctx.reg in
  match cache.Cache_iface.lookup_select ~dataset ~binding ~pred ~paths with
  | Some (packed, residual) -> (
    (* cache matching replaced this sigma-over-scan sub-tree with a scan of a
       materialized binary result (Section 6 "Cache Matching"); a subsuming
       match re-applies the stricter predicate as residual *)
    let element =
      (Proteus_catalog.Catalog.find (Registry.catalog ctx.reg) dataset)
        .Proteus_catalog.Dataset.element
    in
    let src = Binary_plugin.of_columns ~element packed.Cache_iface.cols in
    Hashtbl.replace ctx.cenv binding (Exprc.Scan_repr src);
    match residual with
    | None ->
      fun consumer () ->
        Source.run src ~on_tuple:(fun () ->
            Counters.add_tuples 1;
            consumer ())
    | Some residual ->
      let pred_c = Exprc.to_pred (Exprc.compile ctx.cenv residual) in
      fun consumer () ->
        Source.run src ~on_tuple:(fun () ->
            Counters.add_tuples 1;
            Counters.add_branch_points 1;
            if pred_c () then consumer ()))
  | None when select_cache_should_store ctx ~dataset ~binding ->
    (* explicit caching close to the leaves: materialize the qualifying rows'
       required fields as a side-effect and register the sigma-result *)
    let run_input = compile ctx scan in
    let pred_c = Exprc.to_pred (Exprc.compile ctx.cenv pred) in
    let src =
      match Hashtbl.find_opt ctx.cenv binding with
      | Some (Exprc.Scan_repr src) -> src
      | _ -> Perror.plan_error "scan binding %s not registered" binding
    in
    let typed =
      List.map
        (fun p ->
          let a = src.Source.field p in
          (p, Ptype.unwrap_option a.Access.ty, a))
        paths
    in
    let bias =
      Proteus_catalog.Dataset.bias
        (Proteus_catalog.Catalog.find (Registry.catalog ctx.reg) dataset)
          .Proteus_catalog.Dataset.format
    in
    fun consumer () ->
      let builders =
        List.map
          (fun (p, ty, a) -> (p, Proteus_storage.Column.Builder.create ty, a))
          typed
      in
      let rows = ref 0 in
      (run_input (fun () ->
           Counters.add_branch_points 1;
           if pred_c () then begin
             incr rows;
             List.iter
               (fun (_, b, a) ->
                 Proteus_storage.Column.Builder.add_value b (a.Access.get_val ()))
               builders;
             consumer ()
           end))
        ();
      cache.Cache_iface.store_select ~dataset ~binding ~pred ~paths ~bias
        {
          Cache_iface.length = !rows;
          cols =
            List.map
              (fun (p, b, _) -> (p, Proteus_storage.Column.Builder.finish b))
              builders;
        }
  | None ->
    let run_input = compile ctx scan in
    let pred_c = Exprc.to_pred (Exprc.compile ctx.cenv pred) in
    fun consumer ->
      run_input (fun () ->
          Counters.add_branch_points 1;
          if pred_c () then consumer ())

and compile_unnest ctx ~outer ~path ~binding ~pred ~input =
  let run_input = compile ctx input in
  (* Fast path: inner unnest of a direct field of a raw scan — iterate the
     structural index's array spans without boxing elements. *)
  let fast =
    if outer then None
    else
      match Exprc.path_of path with
      | Some (v, p) when p <> "" -> (
        match Hashtbl.find_opt ctx.cenv v with
        | Some (Exprc.Scan_repr src) -> (
          match src.Source.unnest p with
          | Some spec -> Some spec
          | None -> None)
        | _ -> None)
      | _ -> None
  in
  match fast with
  | Some spec ->
    (* tell the plug-in which element fields this query reads, so it can
       fuse their extraction into the element scan (Section 5.2) *)
    (match List.assoc_opt binding ctx.required with
    | Some (`Paths ps) -> spec.Source.u_prepare ps
    | Some `Whole | None -> ());
    Hashtbl.replace ctx.cenv binding (Exprc.Unnest_repr spec);
    let pred_c = Exprc.to_pred (Exprc.compile ctx.cenv pred) in
    fun consumer ->
      run_input (fun () ->
          spec.Source.u_iter ~on_elem:(fun () -> if pred_c () then consumer ()))
  | None ->
    let path_c = Exprc.to_val (Exprc.compile ctx.cenv path) in
    let elem = ref Value.Null in
    Hashtbl.replace ctx.cenv binding (Exprc.Boxed_repr elem);
    let pred_c = Exprc.to_pred (Exprc.compile ctx.cenv pred) in
    fun consumer ->
      run_input (fun () ->
          let elems =
            match path_c () with
            | Value.Coll (_, es) -> es
            | Value.Null -> []
            | v -> Perror.type_error "unnest over non-collection %a" Value.pp v
          in
          let matched = ref false in
          List.iter
            (fun e ->
              elem := e;
              if pred_c () then begin
                matched := true;
                consumer ()
              end)
            elems;
          if outer && not !matched then begin
            elem := Value.Null;
            consumer ()
          end)

and compile_join ctx ~kind ~algo ~left ~right ~left_key ~right_key ~pred =
  let run_right = compile ctx right in
  let right_bindings = Plan.bindings right in
  (* Payload: what the ancestors (and the residual predicate) read from the
     build side. The global required-paths analysis over-approximates this
     safely. *)
  let payload : payload_slot list =
    List.concat_map
      (fun b ->
        let mk path e =
          let c = Exprc.compile ctx.cenv e in
          let packable, ty =
            match c with
            | Exprc.C_int _ -> (true, Some Ptype.Int)
            | Exprc.C_float _ -> (true, Some Ptype.Float)
            | Exprc.C_bool _ -> (true, Some Ptype.Bool)
            | Exprc.C_str _ -> (true, Some Ptype.String)
            | Exprc.C_val _ -> (false, None)
          in
          {
            ps_binding = b;
            ps_path = path;
            ps_get = Exprc.to_val c;
            ps_vec = Vec.create ();
            ps_arr = ref [||];
            ps_packable = packable;
            ps_ty = ty;
          }
        in
        match List.assoc_opt b ctx.required with
        | Some `Whole | None -> [ mk "" (Expr.Var b) ]
        | Some (`Paths ps) ->
          List.map (fun p -> mk p (Expr.path b (String.split_on_char '.' p))) ps)
      right_bindings
  in
  (* Keys: prefer the optimizer's choice, else extract one here. *)
  let left_bindings_of p = Plan.bindings p in
  let equi =
    match left_key, right_key with
    | Some l, Some r -> Some (l, r)
    | _ -> extract_equi pred (left_bindings_of left) right_bindings
  in
  let use_hash = algo = Plan.Radix_hash && equi <> None in
  let right_key_get =
    match equi with
    | Some (_, rk) when use_hash -> Some (Exprc.compile ctx.cenv rk)
    | _ -> None
  in
  let key_vec = Vec.create () in
  (* Implicit-caching key: fingerprint of the build side wrapped in a
     Project listing exactly what gets materialized (key + payload). *)
  let cache_key =
    let fields =
      ("__key",
       match equi with Some (_, rk) -> rk | None -> Expr.bool true)
      :: List.mapi
           (fun i slot ->
             ( Fmt.str "c%d" i,
               if slot.ps_path = "" then Expr.Var slot.ps_binding
               else Expr.path slot.ps_binding (String.split_on_char '.' slot.ps_path) ))
           payload
    in
    "joinside:" ^ Fingerprint.plan (Plan.Project { binding = "__m"; fields; input = right })
  in
  let key_ty =
    match right_key_get with
    | Some (Exprc.C_int _) -> Some Ptype.Int
    | Some (Exprc.C_float _) -> Some Ptype.Float
    | Some (Exprc.C_str _) -> Some Ptype.String
    | Some (Exprc.C_bool _) -> Some Ptype.Bool
    | Some (Exprc.C_val _) | None -> None
  in
  let packable =
    use_hash && List.for_all (fun s -> s.ps_packable) payload && key_ty <> None
  in
  let right_key_val = Option.map Exprc.to_val right_key_get in
  (* integer-keyed joins take the radix-clustered path (the radix hash join
     the paper adopts from [39]/[9]); other key types use a boxed table *)
  let int_keys =
    match right_key_get with Some (Exprc.C_int g) -> Some g | _ -> None
  in
  let ikey_vec = ref [||] and ikey_n = ref 0 in
  let ikey_push k =
    if !ikey_n >= Array.length !ikey_vec then begin
      let bigger = Array.make (max 64 (2 * !ikey_n)) 0 in
      Array.blit !ikey_vec 0 bigger 0 !ikey_n;
      ikey_vec := bigger
    end;
    !ikey_vec.(!ikey_n) <- k;
    ikey_n := !ikey_n + 1
  in
  let bias =
    let ranks =
      List.map
        (fun ds ->
          Proteus_catalog.Dataset.bias
            (Proteus_catalog.Catalog.find (Registry.catalog ctx.reg) ds).format)
        (Plan.datasets right)
    in
    List.fold_left
      (fun acc b -> if b > acc then b else acc)
      Proteus_storage.Memory.Arena.Bias_binary ranks
  in
  (* Re-register build-side bindings: above the join they read the
     materialized vectors. *)
  let m_cur = ref 0 in
  let null_row = ref false in
  let by_binding = Hashtbl.create 4 in
  List.iter
    (fun slot ->
      let cols = try Hashtbl.find by_binding slot.ps_binding with Not_found -> [] in
      Hashtbl.replace by_binding slot.ps_binding ((slot.ps_path, slot.ps_arr) :: cols))
    payload;
  Hashtbl.iter
    (fun b cols -> Hashtbl.replace ctx.cenv b (Exprc.Row_repr (cols, m_cur, null_row)))
    by_binding;
  (* Left side stays live (streaming probe). *)
  let run_left = compile ctx left in
  let left_key_get =
    match equi with
    | Some (lk, _) when use_hash -> Some (Exprc.compile ctx.cenv lk)
    | _ -> None
  in
  (* Both index paths compare keys exactly (the radix index on raw ints,
     the boxed table via Value equality), so the equi conjunct needs no
     re-check: the residual predicate drops it, and joins whose other
     conjuncts were pushed below have no per-match predicate at all. *)
  let residual =
    match equi with
    | Some (lk, rk) when use_hash ->
      Expr.conjoin
        (List.filter
           (fun c ->
             match (c : Expr.t) with
             | Expr.Binop (Expr.Eq, a, b) ->
               not
                 ((Expr.equal a lk && Expr.equal b rk)
                 || (Expr.equal a rk && Expr.equal b lk))
             | _ -> true)
           (Expr.conjuncts pred))
    | _ -> pred
  in
  let pred_c =
    match residual with
    | Expr.Const (Value.Bool true) -> None
    | residual -> Some (Exprc.to_pred (Exprc.compile ctx.cenv residual))
  in
  (* the radix path needs unboxed keys on BOTH sides; a probe key compiled
     against materialized rows is boxed, so such joins use the boxed table *)
  let int_keys =
    match int_keys, left_key_get with
    | Some g, Some (Exprc.C_int _) -> Some g
    | _ -> None
  in
  fun consumer ->
    let mat_rows = ref 0 in
    let mat_consumer () =
      incr mat_rows;
      (match int_keys with
      | Some g -> ikey_push (g ())
      | None -> (
        match right_key_val with
        | Some kv -> Vec.push key_vec (kv ())
        | None -> ()));
      List.iter
        (fun slot ->
          Vec.push slot.ps_vec (slot.ps_get ());
          Counters.add_materialized 1)
        payload
    in
    let right_runner = run_right mat_consumer in
    (* boxed fallback table; integer keys use the radix index instead *)
    let table : int list VH.t = VH.create 1024 in
    let radix : Radix.t option ref = ref None in
    let keys = ref [||] in
    let emit_match =
      match pred_c with
      | None ->
        fun row ->
          m_cur := row;
          consumer ();
          true
      | Some pred_c ->
        fun row ->
          m_cur := row;
          Counters.add_branch_points 1;
          if pred_c () then begin
            consumer ();
            true
          end
          else false
    in
    let probe_consumer =
      match left_key_get, int_keys with
      | Some (Exprc.C_int lg), Some _ ->
        (* both sides integer-typed: radix probe, no boxing per tuple *)
        fun () ->
          let k = lg () in
          let matched = ref false in
          (match !radix with
          | Some r -> Radix.iter r k ~f:(fun row -> if emit_match row then matched := true)
          | None -> ());
          if kind = Plan.Left_outer && not !matched then begin
            null_row := true;
            consumer ();
            null_row := false
          end
      | Some kc, _ ->
        let kv = Exprc.to_val kc in
        fun () ->
          let k = kv () in
          let matched = ref false in
          (match k with
          | Value.Null -> ()
          | k -> (
            match VH.find_opt table k with
            | Some rows -> List.iter (fun r -> if emit_match r then matched := true) rows
            | None -> ()));
          if kind = Plan.Left_outer && not !matched then begin
            null_row := true;
            consumer ();
            null_row := false
          end
      | None, _ ->
        (* nested-loop fallback *)
        fun () ->
          let n = !mat_rows in
          let matched = ref false in
          for row = 0 to n - 1 do
            if emit_match row then matched := true
          done;
          if kind = Plan.Left_outer && not !matched then begin
            null_row := true;
            consumer ();
            null_row := false
          end
    in
    let left_runner = run_left probe_consumer in
    fun () ->
      mat_rows := 0;
      ikey_n := 0;
      Vec.clear key_vec;
      List.iter (fun slot -> Vec.clear slot.ps_vec) payload;
      let cache = Registry.cache ctx.reg in
      let loaded =
        if not packable then false
        else
          match cache.Cache_iface.lookup_packed ~key:cache_key with
          | Some packed ->
            mat_rows := packed.Cache_iface.length;
            (match List.assoc_opt "__key" packed.Cache_iface.cols with
            | Some (Proteus_storage.Column.Ints a) when int_keys <> None ->
              ikey_vec := Array.copy a;
              ikey_n := Array.length a
            | Some kcol ->
              keys :=
                Array.init packed.Cache_iface.length
                  (Proteus_storage.Column.get kcol)
            | None -> ());
            List.iteri
              (fun i slot ->
                match List.assoc_opt (Fmt.str "c%d" i) packed.Cache_iface.cols with
                | Some col ->
                  slot.ps_arr :=
                    Array.init packed.Cache_iface.length
                      (Proteus_storage.Column.get col)
                | None -> ())
              payload;
            true
          | None -> false
      in
      if not loaded then begin
        right_runner ();
        keys := Vec.to_array key_vec;
        (* trim the int-key scratch to its live prefix *)
        if int_keys <> None then ikey_vec := Array.sub !ikey_vec 0 !ikey_n;
        List.iter (fun slot -> slot.ps_arr := Vec.to_array slot.ps_vec) payload;
        if packable then begin
          let cols =
            ( "__key",
              match int_keys with
              | Some _ -> Proteus_storage.Column.Ints (Array.copy !ikey_vec)
              | None ->
                Proteus_storage.Column.of_values
                  (Option.value key_ty ~default:Ptype.Int)
                  (Array.to_list !keys) )
            :: List.mapi
                 (fun i slot ->
                   ( Fmt.str "c%d" i,
                     Proteus_storage.Column.of_values
                       (Option.value slot.ps_ty ~default:Ptype.Int)
                       (Array.to_list !(slot.ps_arr)) ))
                 payload
          in
          cache.Cache_iface.store_packed ~key:cache_key ~datasets:(Plan.datasets right)
            ~bias
            { Cache_iface.length = !mat_rows; cols }
        end
      end;
      (* cluster/build the index over the materialized keys *)
      (match left_key_get, int_keys with
      | Some _, Some _ -> radix := Some (Radix.build !ikey_vec)
      | Some _, None ->
        VH.reset table;
        let ks = !keys in
        for row = Array.length ks - 1 downto 0 do
          match ks.(row) with
          | Value.Null -> ()
          | k ->
            let prev = try VH.find table k with Not_found -> [] in
            VH.replace table k (row :: prev)
        done
      | None, _ -> ());
      left_runner ()

(* Sort materializes the whole record of every binding it carries, so those
   bindings' producers must be able to reconstruct full values. *)
let rec sort_bindings (p : Plan.t) =
  (match p with Plan.Sort { input; _ } -> Plan.bindings input | _ -> [])
  @ List.concat_map sort_bindings (Plan.children p)

let prepare (reg : Registry.t) (plan : Plan.t) : unit -> Value.t =
  let cenv : Exprc.cenv = Hashtbl.create 16 in
  let required = Exprc.required_paths (all_exprs plan) in
  let required =
    List.fold_left
      (fun req b -> (b, `Whole) :: List.remove_assoc b req)
      required (sort_bindings plan)
  in
  let ctx = { reg; cenv; required } in
  match plan with
  | Plan.Reduce { monoid_output; pred; input } ->
    let run_input = compile ctx input in
    let pred_c = Exprc.to_pred (Exprc.compile cenv pred) in
    let factories =
      List.map
        (fun (a : Plan.agg) ->
          (a.agg_name, Agg.factory a.monoid (Exprc.compile cenv a.expr)))
        monoid_output
    in
    fun () ->
      let instances = List.map (fun (n, f) -> (n, f ())) factories in
      let steps = List.map (fun (_, (i : Agg.instance)) -> i.step) instances in
      let consumer =
        match steps with
        | [ s ] -> fun () -> if pred_c () then s ()
        | ss -> fun () -> if pred_c () then List.iter (fun s -> s ()) ss
      in
      (run_input consumer) ();
      (match instances with
      | [ (_, i) ] -> i.value ()
      | many -> Value.record (List.map (fun (n, (i : Agg.instance)) -> (n, i.value ())) many))
  | _ ->
    let run = compile ctx plan in
    let visible = Plan.bindings plan in
    let getters =
      List.map (fun b -> (b, Exprc.to_val (Exprc.compile cenv (Expr.Var b)))) visible
    in
    let shape =
      match getters with
      | [ (_, g) ] -> g
      | gs -> fun () -> Value.record (List.map (fun (b, g) -> (b, g ())) gs)
    in
    fun () ->
      let rows = ref [] in
      (run (fun () -> rows := shape () :: !rows)) ();
      Value.bag (List.rev !rows)

let execute reg plan = prepare reg plan ()
