(** Radix-clustered join index over integer keys — the radix hash join of
    Manegold et al. [39] as adapted by Balkesen et al. [9], which the paper's
    Proteus uses for joins and grouping.

    [build] is the blocking part the paper wraps in a pre-compiled function
    ("clustering the materialized entries based on their hash values"): keys
    are scattered into 2^bits cache-friendly partitions by a multiplicative
    hash (two passes: count, then permute), and each partition is ordered so
    equal keys are adjacent. [iter] then touches exactly one partition per
    probe. *)

type t

(** [build keys] indexes [keys.(row) = key] for all rows. *)
val build : ?bits:int -> int array -> t

(** [iter t key ~f] calls [f row] for every row whose key equals [key]. *)
val iter : t -> int -> f:(int -> unit) -> unit

(** Number of partitions (for tests). *)
val partitions : t -> int
