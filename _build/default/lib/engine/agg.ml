open Proteus_model

type instance = { step : unit -> unit; value : unit -> Value.t }

let boxed_factory prim (get : unit -> Value.t) () =
  let acc = Monoid.acc_create prim in
  { step = (fun () -> Monoid.acc_step acc (get ())); value = (fun () -> Monoid.acc_value acc) }

let factory (m : Monoid.t) (c : Exprc.compiled) : unit -> instance =
  match m, c with
  | Monoid.Primitive Monoid.Count, _ ->
    fun () ->
      let n = ref 0 in
      { step = (fun () -> incr n); value = (fun () -> Value.Int !n) }
  | Monoid.Primitive Monoid.Sum, Exprc.C_int get ->
    fun () ->
      let s = ref 0 in
      { step = (fun () -> s := !s + get ()); value = (fun () -> Value.Int !s) }
  | Monoid.Primitive Monoid.Sum, Exprc.C_float get ->
    fun () ->
      let s = ref 0. in
      { step = (fun () -> s := !s +. get ()); value = (fun () -> Value.Float !s) }
  | Monoid.Primitive Monoid.Max, Exprc.C_int get ->
    fun () ->
      let best = ref min_int and seen = ref false in
      {
        step =
          (fun () ->
            let v = get () in
            if v > !best then best := v;
            seen := true);
        value = (fun () -> if !seen then Value.Int !best else Value.Null);
      }
  | Monoid.Primitive Monoid.Min, Exprc.C_int get ->
    fun () ->
      let best = ref max_int and seen = ref false in
      {
        step =
          (fun () ->
            let v = get () in
            if v < !best then best := v;
            seen := true);
        value = (fun () -> if !seen then Value.Int !best else Value.Null);
      }
  | Monoid.Primitive Monoid.Max, Exprc.C_float get ->
    fun () ->
      let best = ref neg_infinity and seen = ref false in
      {
        step =
          (fun () ->
            let v = get () in
            if v > !best then best := v;
            seen := true);
        value = (fun () -> if !seen then Value.Float !best else Value.Null);
      }
  | Monoid.Primitive Monoid.Min, Exprc.C_float get ->
    fun () ->
      let best = ref infinity and seen = ref false in
      {
        step =
          (fun () ->
            let v = get () in
            if v < !best then best := v;
            seen := true);
        value = (fun () -> if !seen then Value.Float !best else Value.Null);
      }
  | Monoid.Primitive Monoid.Avg, Exprc.C_int get ->
    fun () ->
      let s = ref 0. and n = ref 0 in
      {
        step =
          (fun () ->
            s := !s +. float_of_int (get ());
            incr n);
        value =
          (fun () -> if !n = 0 then Value.Null else Value.Float (!s /. float_of_int !n));
      }
  | Monoid.Primitive Monoid.Avg, Exprc.C_float get ->
    fun () ->
      let s = ref 0. and n = ref 0 in
      {
        step =
          (fun () ->
            s := !s +. get ();
            incr n);
        value =
          (fun () -> if !n = 0 then Value.Null else Value.Float (!s /. float_of_int !n));
      }
  | Monoid.Primitive Monoid.All, Exprc.C_bool get ->
    fun () ->
      let b = ref true in
      { step = (fun () -> b := !b && get ()); value = (fun () -> Value.Bool !b) }
  | Monoid.Primitive Monoid.Any, Exprc.C_bool get ->
    fun () ->
      let b = ref false in
      { step = (fun () -> b := !b || get ()); value = (fun () -> Value.Bool !b) }
  | Monoid.Primitive prim, c -> boxed_factory prim (Exprc.to_val c)
  | Monoid.Collection coll, c ->
    let get = Exprc.to_val c in
    fun () ->
      let acc = ref [] in
      {
        step = (fun () -> acc := get () :: !acc);
        value = (fun () -> Monoid.collect coll (List.rev !acc));
      }
