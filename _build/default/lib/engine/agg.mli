(** Staged aggregate accumulators.

    A factory builds per-group accumulator instances whose [step] closure was
    specialized once per query: integer sums accumulate into an [int ref]
    with no boxing per tuple, float folds into a [float ref], and only
    genuinely dynamic cases fall back to the boxed {!Monoid.acc}. *)

open Proteus_model

type instance = {
  step : unit -> unit;       (** fold the current tuple in *)
  value : unit -> Value.t;   (** read the aggregate out *)
}

(** [factory monoid compiled] stages the accumulator for folding the values
    of [compiled]; each call to the factory starts a fresh group. *)
val factory : Monoid.t -> Exprc.compiled -> unit -> instance
