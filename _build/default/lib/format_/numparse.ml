open Proteus_model

let fail pos fmt = Perror.parse_error ~what:"number" ~pos fmt

let int_span src ~start ~stop =
  if start >= stop then fail start "empty int span";
  let neg = src.[start] = '-' in
  let i0 = if neg || src.[start] = '+' then start + 1 else start in
  if i0 >= stop then fail start "sign without digits";
  let rec go i acc =
    if i >= stop then acc
    else
      let c = src.[i] in
      if c >= '0' && c <= '9' then go (i + 1) ((acc * 10) + (Char.code c - 48))
      else fail i "bad digit %C" c
  in
  let v = go i0 0 in
  if neg then -v else v

(* Powers of ten are exact doubles up to 1e15. *)
let pow10 =
  [| 1e0; 1e1; 1e2; 1e3; 1e4; 1e5; 1e6; 1e7; 1e8; 1e9; 1e10; 1e11; 1e12; 1e13;
     1e14; 1e15 |]

(* Fast path for "ddd.ddd": accumulate all digits into one integer [m] and
   divide once by 10^frac_digits — a single rounding, so the result is the
   correctly-rounded double of the decimal (identical to [float_of_string])
   as long as [m] stays within 2^53 and the scale within the exact powers.
   Anything else (exponents, long digit strings) falls back to
   [float_of_string] on a substring. *)
let float_span src ~start ~stop =
  if start >= stop then fail start "empty float span";
  let neg = src.[start] = '-' in
  let i0 = if neg || src.[start] = '+' then start + 1 else start in
  let slow () = float_of_string (String.sub src start (stop - start)) in
  let rec digits i m count =
    if i >= stop then Some (i, m, count)
    else
      let c = src.[i] in
      if c >= '0' && c <= '9' then
        if count >= 15 then None
        else digits (i + 1) ((m * 10) + (Char.code c - 48)) (count + 1)
      else Some (i, m, count)
  in
  match digits i0 0 0 with
  | None -> slow ()
  | Some (i, m, count) ->
    if i >= stop then begin
      if count = 0 then fail start "no digits";
      let v = float_of_int m in
      if neg then -.v else v
    end
    else if src.[i] = '.' then begin
      match digits (i + 1) m count with
      | None -> slow ()
      | Some (j, m, total) ->
        if j < stop then slow () (* exponent suffix *)
        else begin
          let frac_digits = total - count in
          let v = float_of_int m /. pow10.(frac_digits) in
          if neg then -.v else v
        end
    end
    else if src.[i] = 'e' || src.[i] = 'E' then slow ()
    else fail i "bad float character %C" src.[i]
