(** JSON values, parser and printer — written from scratch.

    This module is the *reference* JSON path: it fully materializes parsed
    values. Proteus' query paths do not use it; they navigate raw bytes via
    {!Json_index}. The baselines (document store, jsonb-style row store) and
    the tests do use it. *)

open Proteus_model

type t =
  | Null
  | Bool of bool
  | Int of int
  | Float of float
  | Str of string
  | Arr of t list
  | Obj of (string * t) list

(** [parse src ~pos] parses one JSON value starting at [pos] (after skipping
    whitespace); returns the value and the position after it.
    Raises [Perror.Parse_error] on malformed input. *)
val parse : string -> pos:int -> t * int

(** [parse_string s] parses exactly one JSON value (trailing whitespace ok). *)
val parse_string : string -> t

(** [parse_seq src] parses a whitespace/newline-separated sequence of JSON
    values (the layout of the datasets in the paper: one object per line). *)
val parse_seq : string -> t list

val to_buffer : Buffer.t -> t -> unit
val to_string : t -> string

(** Conversion to/from the Proteus data model. JSON arrays become [List]
    collections; objects become records. *)
val to_value : t -> Value.t

val of_value : Value.t -> t

(** [skip_ws src pos] is the first non-whitespace position at or after
    [pos]. *)
val skip_ws : string -> int -> int

(** [parse_string_lit src pos] decodes the string literal whose opening
    quote is at [pos]; returns the decoded string and the position after
    the closing quote. Used by {!Json_index} to read field names without
    building an AST. *)
val parse_string_lit : string -> int -> string * int
