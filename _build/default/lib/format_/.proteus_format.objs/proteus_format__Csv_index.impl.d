lib/format_/csv_index.ml: Array Csv List Proteus_model String
