lib/format_/csv_index.mli: Csv
