lib/format_/csv.mli: Buffer Proteus_model Ptype Schema Value
