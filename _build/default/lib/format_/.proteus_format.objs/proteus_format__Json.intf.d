lib/format_/json.mli: Buffer Proteus_model Value
