lib/format_/json_index.ml: Array Bytes Char Hashtbl Int Json List Numparse Perror Proteus_model String Value
