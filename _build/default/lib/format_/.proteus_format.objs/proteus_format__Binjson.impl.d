lib/format_/binjson.ml: Buffer Bytes Char Int64 Json List Perror Proteus_model String Value
