lib/format_/csv.ml: Array Buffer Char Date_util List Numparse Perror Printf Proteus_model Ptype Schema String Value
