lib/format_/json_index.mli: Proteus_model
