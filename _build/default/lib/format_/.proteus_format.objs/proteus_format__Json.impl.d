lib/format_/json.ml: Array Buffer Char Date_util Float List Perror Printf Proteus_model String Value
