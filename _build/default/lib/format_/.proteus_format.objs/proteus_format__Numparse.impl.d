lib/format_/numparse.ml: Array Char Perror Proteus_model String
