lib/format_/binjson.mli: Json Proteus_model Value
