lib/format_/numparse.mli:
