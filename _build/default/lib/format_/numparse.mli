(** Allocation-free numeric span parsing.

    Raw-data engines convert text to numbers on every access; a substring
    allocation per conversion would dominate the generated scan loops, so
    the common forms (optional sign, digits, decimal fraction) are parsed
    directly from the byte span. Exponent forms fall back to
    [float_of_string]. *)

(** [float_span src ~start ~stop] parses the float in [src.[start..stop)].
    Raises [Perror.Parse_error] on malformed input. *)
val float_span : string -> start:int -> stop:int -> float

(** [int_span src ~start ~stop] parses a decimal integer. *)
val int_span : string -> start:int -> stop:int -> int
