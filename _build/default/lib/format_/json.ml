open Proteus_model

type t =
  | Null
  | Bool of bool
  | Int of int
  | Float of float
  | Str of string
  | Arr of t list
  | Obj of (string * t) list

let fail pos fmt = Perror.parse_error ~what:"json" ~pos fmt

let skip_ws src pos =
  let n = String.length src in
  let rec go i =
    if i < n then
      match src.[i] with ' ' | '\t' | '\n' | '\r' -> go (i + 1) | _ -> i
    else i
  in
  go pos

(* Parse a JSON string literal starting at the opening quote; returns the
   decoded string and the position after the closing quote. *)
let parse_string_lit src pos =
  let n = String.length src in
  if pos >= n || src.[pos] <> '"' then fail pos "expected string";
  let buf = Buffer.create 16 in
  let rec go i =
    if i >= n then fail i "unterminated string"
    else
      match src.[i] with
      | '"' -> (Buffer.contents buf, i + 1)
      | '\\' ->
        if i + 1 >= n then fail i "dangling escape"
        else begin
          (match src.[i + 1] with
          | '"' -> Buffer.add_char buf '"'
          | '\\' -> Buffer.add_char buf '\\'
          | '/' -> Buffer.add_char buf '/'
          | 'b' -> Buffer.add_char buf '\b'
          | 'f' -> Buffer.add_char buf '\012'
          | 'n' -> Buffer.add_char buf '\n'
          | 'r' -> Buffer.add_char buf '\r'
          | 't' -> Buffer.add_char buf '\t'
          | 'u' ->
            if i + 5 >= n then fail i "truncated \\u escape";
            let code = int_of_string ("0x" ^ String.sub src (i + 2) 4) in
            (* Encode as UTF-8 (basic multilingual plane only). *)
            if code < 0x80 then Buffer.add_char buf (Char.chr code)
            else if code < 0x800 then begin
              Buffer.add_char buf (Char.chr (0xC0 lor (code lsr 6)));
              Buffer.add_char buf (Char.chr (0x80 lor (code land 0x3F)))
            end
            else begin
              Buffer.add_char buf (Char.chr (0xE0 lor (code lsr 12)));
              Buffer.add_char buf (Char.chr (0x80 lor ((code lsr 6) land 0x3F)));
              Buffer.add_char buf (Char.chr (0x80 lor (code land 0x3F)))
            end
          | c -> fail i "bad escape \\%c" c);
          if src.[i + 1] = 'u' then go (i + 6) else go (i + 2)
        end
      | c -> Buffer.add_char buf c; go (i + 1)
  in
  go (pos + 1)

let is_num_char = function
  | '0' .. '9' | '-' | '+' | '.' | 'e' | 'E' -> true
  | _ -> false

let parse_number src pos =
  let n = String.length src in
  let rec stop i = if i < n && is_num_char src.[i] then stop (i + 1) else i in
  let fin = stop pos in
  let s = String.sub src pos (fin - pos) in
  let is_float = String.exists (function '.' | 'e' | 'E' -> true | _ -> false) s in
  if is_float then
    match float_of_string_opt s with
    | Some f -> (Float f, fin)
    | None -> fail pos "bad number %S" s
  else
    match int_of_string_opt s with
    | Some i -> (Int i, fin)
    | None -> (
      match float_of_string_opt s with
      | Some f -> (Float f, fin)
      | None -> fail pos "bad number %S" s)

let rec parse src ~pos =
  let pos = skip_ws src pos in
  let n = String.length src in
  if pos >= n then fail pos "unexpected end of input";
  match src.[pos] with
  | 'n' ->
    if pos + 4 <= n && String.sub src pos 4 = "null" then (Null, pos + 4)
    else fail pos "expected null"
  | 't' ->
    if pos + 4 <= n && String.sub src pos 4 = "true" then (Bool true, pos + 4)
    else fail pos "expected true"
  | 'f' ->
    if pos + 5 <= n && String.sub src pos 5 = "false" then (Bool false, pos + 5)
    else fail pos "expected false"
  | '"' ->
    let s, next = parse_string_lit src pos in
    (Str s, next)
  | '[' ->
    let rec elems i acc =
      let i = skip_ws src i in
      if i < n && src.[i] = ']' then
        if acc = [] then (Arr [], i + 1) else fail i "trailing comma in array"
      else begin
        let v, i = parse src ~pos:i in
        let i = skip_ws src i in
        if i < n && src.[i] = ',' then elems (i + 1) (v :: acc)
        else if i < n && src.[i] = ']' then (Arr (List.rev (v :: acc)), i + 1)
        else fail i "expected ',' or ']'"
      end
    in
    elems (pos + 1) []
  | '{' ->
    let rec members i acc =
      let i = skip_ws src i in
      if i < n && src.[i] = '}' then
        if acc = [] then (Obj [], i + 1) else fail i "trailing comma in object"
      else begin
        let name, i = parse_string_lit src (skip_ws src i) in
        let i = skip_ws src i in
        if i >= n || src.[i] <> ':' then fail i "expected ':'";
        let v, i = parse src ~pos:(i + 1) in
        let i = skip_ws src i in
        if i < n && src.[i] = ',' then members (i + 1) ((name, v) :: acc)
        else if i < n && src.[i] = '}' then (Obj (List.rev ((name, v) :: acc)), i + 1)
        else fail i "expected ',' or '}'"
      end
    in
    members (pos + 1) []
  | '-' | '0' .. '9' -> parse_number src pos
  | c -> fail pos "unexpected character %C" c

let parse_string s =
  let v, fin = parse s ~pos:0 in
  let fin = skip_ws s fin in
  if fin <> String.length s then fail fin "trailing garbage";
  v

let parse_seq src =
  let n = String.length src in
  let rec go pos acc =
    let pos = skip_ws src pos in
    if pos >= n then List.rev acc
    else
      let v, next = parse src ~pos in
      go next (v :: acc)
  in
  go 0 []

let escape_into buf s =
  Buffer.add_char buf '"';
  String.iter
    (fun c ->
      match c with
      | '"' -> Buffer.add_string buf "\\\""
      | '\\' -> Buffer.add_string buf "\\\\"
      | '\n' -> Buffer.add_string buf "\\n"
      | '\r' -> Buffer.add_string buf "\\r"
      | '\t' -> Buffer.add_string buf "\\t"
      | c when Char.code c < 0x20 -> Buffer.add_string buf (Printf.sprintf "\\u%04x" (Char.code c))
      | c -> Buffer.add_char buf c)
    s;
  Buffer.add_char buf '"'

let rec to_buffer buf = function
  | Null -> Buffer.add_string buf "null"
  | Bool b -> Buffer.add_string buf (if b then "true" else "false")
  | Int i -> Buffer.add_string buf (string_of_int i)
  | Float f ->
    if Float.is_integer f && Float.abs f < 1e15 then
      Buffer.add_string buf (Printf.sprintf "%.1f" f)
    else Buffer.add_string buf (Printf.sprintf "%.12g" f)
  | Str s -> escape_into buf s
  | Arr elems ->
    Buffer.add_char buf '[';
    List.iteri
      (fun i e ->
        if i > 0 then Buffer.add_char buf ',';
        to_buffer buf e)
      elems;
    Buffer.add_char buf ']'
  | Obj fields ->
    Buffer.add_char buf '{';
    List.iteri
      (fun i (n, v) ->
        if i > 0 then Buffer.add_char buf ',';
        escape_into buf n;
        Buffer.add_char buf ':';
        to_buffer buf v)
      fields;
    Buffer.add_char buf '}'

let to_string j =
  let buf = Buffer.create 256 in
  to_buffer buf j;
  Buffer.contents buf

let rec to_value : t -> Value.t = function
  | Null -> Value.Null
  | Bool b -> Value.Bool b
  | Int i -> Value.Int i
  | Float f -> Value.Float f
  | Str s -> Value.String s
  | Arr elems -> Value.list_ (List.map to_value elems)
  | Obj fields -> Value.record (List.map (fun (n, v) -> (n, to_value v)) fields)

let rec of_value : Value.t -> t = function
  | Value.Null -> Null
  | Value.Bool b -> Bool b
  | Value.Int i -> Int i
  | Value.Date d -> Str (Date_util.to_string d)
  | Value.Float f -> Float f
  | Value.String s -> Str s
  | Value.Coll (_, elems) -> Arr (List.map of_value elems)
  | Value.Record fields ->
    Obj (Array.to_list (Array.map (fun (n, v) -> (n, of_value v)) fields))
