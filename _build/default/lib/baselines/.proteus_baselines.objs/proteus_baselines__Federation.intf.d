lib/baselines/federation.mli: Colstore Docstore Proteus_algebra Proteus_format Proteus_model Ptype Value
