lib/baselines/federation.ml: Colstore Docstore Expr Hashtbl List Monoid Perror Proteus_algebra Proteus_format Proteus_model Ptype String Unix Value
