lib/baselines/docstore.mli: Proteus_algebra Proteus_model Ptype Value
