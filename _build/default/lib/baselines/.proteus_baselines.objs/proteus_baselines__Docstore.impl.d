lib/baselines/docstore.ml: Access Array Hashtbl List Perror Proteus_algebra Proteus_engine Proteus_format Proteus_model Proteus_plugin Ptype Source String Value
