lib/baselines/rowstore.mli: Proteus_algebra Proteus_format Proteus_model Ptype Value
