lib/baselines/colstore.ml: Array Expr Float Fun Hashtbl Int List Monoid Option Perror Proteus_algebra Proteus_engine Proteus_format Proteus_model Ptype Schema String Value
