open Proteus_model
module Plan = Proteus_algebra.Plan
module Analysis = Proteus_algebra.Analysis
module Json = Proteus_format.Json
module Counters = Proteus_engine.Counters

type config = {
  dictionary_strings : bool;
  sideways_passing : bool;
  count_from_buckets : bool;
}

let monetdb_config =
  { dictionary_strings = false; sideways_passing = false; count_from_buckets = true }

let dbmsc_config =
  { dictionary_strings = true; sideways_passing = true; count_from_buckets = false }

(* physical columns *)
type phys =
  | Ints of int array
  | Floats of float array
  | Bools of bool array
  | Strs of string array
  | Dict of int array * string array   (* codes + dictionary *)
  | Vals of Value.t array

type table =
  | Columns of { element : Ptype.t; len : int; cols : (string * phys) list;
                 sort_key : string option }
  | Documents of { element : Ptype.t; docs : string array }

type t = { config : config; tables : (string, table) Hashtbl.t }

let create config () = { config; tables = Hashtbl.create 8 }

let phys_get p i : Value.t =
  match p with
  | Ints a -> Value.Int a.(i)
  | Floats a -> Value.Float a.(i)
  | Bools a -> Value.Bool a.(i)
  | Strs a -> Value.String a.(i)
  | Dict (codes, dict) -> Value.String dict.(codes.(i))
  | Vals a -> a.(i)

let dict_encode strings =
  let tbl = Hashtbl.create 64 in
  let order = ref [] and next = ref 0 in
  let codes =
    Array.map
      (fun s ->
        match Hashtbl.find_opt tbl s with
        | Some c -> c
        | None ->
          let c = !next in
          Hashtbl.replace tbl s c;
          order := s :: !order;
          incr next;
          c)
      strings
  in
  (codes, Array.of_list (List.rev !order))

let phys_of_values config ty (vs : Value.t array) : phys =
  match Ptype.unwrap_option ty with
  | Ptype.Int | Ptype.Date -> Ints (Array.map Value.to_int vs)
  | Ptype.Float -> Floats (Array.map Value.to_float vs)
  | Ptype.Bool -> Bools (Array.map Value.to_bool vs)
  | Ptype.String ->
    let raw = Array.map Value.to_str vs in
    if config.dictionary_strings then
      let codes, dict = dict_encode raw in
      Dict (codes, dict)
    else Strs raw
  | Ptype.Record _ | Ptype.Collection _ | Ptype.Option _ -> Vals vs

let load_relational t ~name ?sort_key ~element records =
  let schema = Schema.of_type element in
  let records =
    match sort_key with
    | None -> records
    | Some key ->
      List.sort
        (fun a b -> Value.compare (Value.field a key) (Value.field b key))
        records
  in
  let arr = Array.of_list records in
  let cols =
    List.map
      (fun (f : Schema.field) ->
        ( f.name,
          phys_of_values t.config f.ty
            (Array.map
               (fun r ->
                 match Value.field_opt r f.name with Some v -> v | None -> Value.Null)
               arr) ))
      (Schema.fields schema)
  in
  Hashtbl.replace t.tables name
    (Columns { element; len = Array.length arr; cols; sort_key })

let load_csv t ~name ?(config = Proteus_format.Csv.default_config) ?sort_key ~element
    text =
  let schema = Schema.of_type element in
  load_relational t ~name ?sort_key ~element (Proteus_format.Csv.read_all config schema text)

let load_json t ~name ~element text =
  let docs = Json.parse_seq text |> List.map Json.to_string |> Array.of_list in
  Hashtbl.replace t.tables name (Documents { element; docs })

let find_table t name =
  match Hashtbl.find_opt t.tables name with
  | Some tbl -> tbl
  | None -> Perror.plan_error "colstore: unknown table %s" name

let row_count t name =
  match find_table t name with
  | Columns { len; _ } -> len
  | Documents { docs; _ } -> Array.length docs

(* --- intermediate relations ----------------------------------------------- *)

(* An operator output: fully materialized columns keyed by "binding" or
   "binding.path". [sorted] records that the rows are physically ordered by
   that column (survives range selections only). *)
type rel = {
  len : int;
  cols : (string * phys) list;
  sorted : string option;
}

let col rel name =
  match List.assoc_opt name rel.cols with
  | Some p -> p
  | None -> Perror.plan_error "colstore: no column %s" name

(* gather: materialize the selected rows of every column — the
   operator-at-a-time cost the paper measures *)
let gather_phys p idx =
  Counters.add_materialized (Array.length idx);
  match p with
  | Ints a -> Ints (Array.map (fun i -> a.(i)) idx)
  | Floats a -> Floats (Array.map (fun i -> a.(i)) idx)
  | Bools a -> Bools (Array.map (fun i -> a.(i)) idx)
  | Strs a -> Strs (Array.map (fun i -> a.(i)) idx)
  | Dict (codes, dict) -> Dict (Array.map (fun i -> codes.(i)) idx, dict)
  | Vals a -> Vals (Array.map (fun i -> a.(i)) idx)

let gather rel idx =
  {
    len = Array.length idx;
    cols = List.map (fun (n, p) -> (n, gather_phys p idx)) rel.cols;
    sorted = None;
  }

let slice_phys p lo hi =
  Counters.add_materialized (hi - lo);
  match p with
  | Ints a -> Ints (Array.sub a lo (hi - lo))
  | Floats a -> Floats (Array.sub a lo (hi - lo))
  | Bools a -> Bools (Array.sub a lo (hi - lo))
  | Strs a -> Strs (Array.sub a lo (hi - lo))
  | Dict (codes, dict) -> Dict (Array.sub codes lo (hi - lo), dict)
  | Vals a -> Vals (Array.sub a lo (hi - lo))

let slice rel lo hi =
  {
    len = hi - lo;
    cols = List.map (fun (n, p) -> (n, slice_phys p lo hi)) rel.cols;
    sorted = rel.sorted;
  }

(* --- vectorized expression evaluation ------------------------------------- *)

(* evaluate an expression into a full column (materialized) *)
let rec eval_column rel (e : Expr.t) : phys =
  match Analysis.path_of e with
  | Some (v, "") -> col rel v
  | Some (v, p) -> (
    match List.assoc_opt (v ^ "." ^ p) rel.cols with
    | Some c -> c
    | None ->
      (* sub-path of a boxed column *)
      let base = col rel v in
      let segs = String.split_on_char '.' p in
      Counters.add_materialized rel.len;
      Vals
        (Array.init rel.len (fun i ->
             List.fold_left
               (fun acc seg ->
                 match acc with
                 | Value.Record _ as r -> (
                   match Value.field_opt r seg with Some x -> x | None -> Value.Null)
                 | _ -> Value.Null)
               (phys_get base i) segs)))
  | None -> (
    match e with
    | Expr.Const (Value.Int k) -> Ints (Array.make rel.len k)
    | Expr.Const (Value.Float f) -> Floats (Array.make rel.len f)
    | Expr.Const v -> Vals (Array.make rel.len v)
    | Expr.Binop (op, l, r) -> (
      let lc = eval_column rel l and rc = eval_column rel r in
      Counters.add_materialized rel.len;
      match op, lc, rc with
      | Expr.Add, Ints a, Ints b -> Ints (Array.init rel.len (fun i -> a.(i) + b.(i)))
      | Expr.Sub, Ints a, Ints b -> Ints (Array.init rel.len (fun i -> a.(i) - b.(i)))
      | Expr.Mul, Ints a, Ints b -> Ints (Array.init rel.len (fun i -> a.(i) * b.(i)))
      | Expr.Mod, Ints a, Ints b -> Ints (Array.init rel.len (fun i -> a.(i) mod b.(i)))
      | Expr.Add, Floats a, Floats b ->
        Floats (Array.init rel.len (fun i -> a.(i) +. b.(i)))
      | Expr.Mul, Floats a, Floats b ->
        Floats (Array.init rel.len (fun i -> a.(i) *. b.(i)))
      | op, lc, rc ->
        Vals
          (Array.init rel.len (fun i ->
               Expr.apply_binop op (phys_get lc i) (phys_get rc i))))
    | e ->
      (* generic fallback: row-wise interpreted *)
      Counters.add_materialized rel.len;
      Vals
        (Array.init rel.len (fun i ->
             let env =
               List.filter_map
                 (fun (n, p) ->
                   if String.contains n '.' then None else Some (n, phys_get p i))
                 rel.cols
             in
             Expr.eval env e)))

(* selection vector for one conjunct: two passes (count, then fill) so no
   per-row allocation happens — the materialized output is the index array *)
let two_pass len (test : int -> bool) =
  let n = ref 0 in
  for i = 0 to len - 1 do
    if test i then incr n
  done;
  let arr = Array.make !n 0 in
  let k = ref 0 in
  for i = 0 to len - 1 do
    if test i then begin
      arr.(!k) <- i;
      incr k
    end
  done;
  Counters.add_materialized !n;
  arr

let conjunct_sel rel (c : Expr.t) : int array =
  (match c with
  | Expr.Binop (op, l, r) -> (
    let cmp_kernel (a : phys) (b : phys) =
      let test : int -> bool =
        match op, a, b with
        | Expr.Lt, Ints x, Ints y -> fun i -> x.(i) < y.(i)
        | Expr.Le, Ints x, Ints y -> fun i -> x.(i) <= y.(i)
        | Expr.Gt, Ints x, Ints y -> fun i -> x.(i) > y.(i)
        | Expr.Ge, Ints x, Ints y -> fun i -> x.(i) >= y.(i)
        | Expr.Eq, Ints x, Ints y -> fun i -> x.(i) = y.(i)
        | Expr.Neq, Ints x, Ints y -> fun i -> x.(i) <> y.(i)
        | Expr.Lt, Floats x, Floats y -> fun i -> x.(i) < y.(i)
        | Expr.Le, Floats x, Floats y -> fun i -> x.(i) <= y.(i)
        | Expr.Gt, Floats x, Floats y -> fun i -> x.(i) > y.(i)
        | Expr.Ge, Floats x, Floats y -> fun i -> x.(i) >= y.(i)
        | Expr.Eq, Floats x, Floats y -> fun i -> Float.equal x.(i) y.(i)
        | Expr.Eq, Dict (codes, dict), Strs y ->
          (* dictionary equality: compare codes after one dict lookup *)
          let target = y.(0) in
          let code = ref (-1) in
          Array.iteri (fun c s -> if String.equal s target then code := c) dict;
          let wanted = !code in
          fun i -> codes.(i) = wanted
        | Expr.Like, Dict (codes, dict), Strs y ->
          (* evaluate LIKE once per dictionary entry *)
          let pattern = y.(0) in
          let ok = Array.map (fun s -> Expr.like ~pattern s) dict in
          fun i -> ok.(codes.(i))
        | Expr.Eq, Strs x, Strs y -> fun i -> String.equal x.(i) y.(i)
        | Expr.Like, Strs x, Strs y -> fun i -> Expr.like ~pattern:y.(i) x.(i)
        | op, a, b ->
          fun i ->
            (match Expr.apply_binop op (phys_get a i) (phys_get b i) with
            | Value.Bool bo -> bo
            | Value.Null -> false
            | v -> Perror.type_error "predicate column of %a" Value.pp v)
      in
      two_pass rel.len test
    in
    cmp_kernel (eval_column rel l) (eval_column rel r))
  | c -> (
    match eval_column rel c with
    | Bools flags -> two_pass rel.len (fun i -> flags.(i))
    | p ->
      two_pass rel.len (fun i ->
          match phys_get p i with Value.Bool true -> true | _ -> false)))

(* binary-search bounds of [op const] over a sorted int column (DBMS C's
   data skipping) *)
let sorted_range (a : int array) (op : Expr.binop) k : (int * int) option =
  let n = Array.length a in
  let lower_bound v =
    (* first index with a.(i) >= v *)
    let lo = ref 0 and hi = ref n in
    while !lo < !hi do
      let mid = (!lo + !hi) / 2 in
      if a.(mid) < v then lo := mid + 1 else hi := mid
    done;
    !lo
  in
  match op with
  | Expr.Lt -> Some (0, lower_bound k)
  | Expr.Le -> Some (0, lower_bound (k + 1))
  | Expr.Ge -> Some (lower_bound k, n)
  | Expr.Gt -> Some (lower_bound (k + 1), n)
  | Expr.Eq -> Some (lower_bound k, lower_bound (k + 1))
  | Expr.Neq | Expr.Add | Expr.Sub | Expr.Mul | Expr.Div | Expr.Mod | Expr.And
  | Expr.Or | Expr.Concat | Expr.Like ->
    None

(* try the skip path: predicate [binding.path op const] on the column the
   rel is sorted by *)
let try_skip rel (c : Expr.t) : (int * int) option =
  match rel.sorted, c with
  | Some sorted_name, Expr.Binop (op, l, Expr.Const (Value.Int k)) -> (
    match Analysis.path_of l with
    | Some (v, p) when String.equal (v ^ "." ^ p) sorted_name -> (
      match List.assoc_opt sorted_name rel.cols with
      | Some (Ints a) -> sorted_range a op k
      | _ -> None)
    | _ -> None)
  | _ -> None

let apply_select rel pred =
  List.fold_left
    (fun rel c ->
      match try_skip rel c with
      | Some (lo, hi) -> slice rel lo hi
      | None -> gather rel (conjunct_sel rel c))
    rel (Expr.conjuncts pred)

(* --- aggregation kernels --------------------------------------------------- *)

let agg_over rel (a : Plan.agg) : Value.t =
  match a.monoid with
  | Monoid.Primitive Monoid.Count -> Value.Int rel.len
  | Monoid.Primitive prim -> (
    match prim, eval_column rel a.expr with
    | Monoid.Sum, Ints xs -> Value.Int (Array.fold_left ( + ) 0 xs)
    | Monoid.Sum, Floats xs -> Value.Float (Array.fold_left ( +. ) 0. xs)
    | Monoid.Max, Ints xs ->
      if rel.len = 0 then Value.Null else Value.Int (Array.fold_left max min_int xs)
    | Monoid.Min, Ints xs ->
      if rel.len = 0 then Value.Null else Value.Int (Array.fold_left min max_int xs)
    | Monoid.Max, Floats xs ->
      if rel.len = 0 then Value.Null
      else Value.Float (Array.fold_left Float.max neg_infinity xs)
    | Monoid.Min, Floats xs ->
      if rel.len = 0 then Value.Null
      else Value.Float (Array.fold_left Float.min infinity xs)
    | Monoid.Avg, Ints xs ->
      if rel.len = 0 then Value.Null
      else
        Value.Float
          (float_of_int (Array.fold_left ( + ) 0 xs) /. float_of_int rel.len)
    | Monoid.Avg, Floats xs ->
      if rel.len = 0 then Value.Null
      else Value.Float (Array.fold_left ( +. ) 0. xs /. float_of_int rel.len)
    | prim, p ->
      let acc = Monoid.acc_create prim in
      for i = 0 to rel.len - 1 do
        Monoid.acc_step acc (phys_get p i)
      done;
      Monoid.acc_value acc)
  | Monoid.Collection coll ->
    let p = eval_column rel a.expr in
    Monoid.collect coll (List.init rel.len (phys_get p))

(* --- scans ------------------------------------------------------------------ *)

let json_walk v path =
  List.fold_left
    (fun acc seg ->
      match acc with
      | Value.Record _ as r -> (
        match Value.field_opt r seg with Some x -> x | None -> Value.Null)
      | _ -> Value.Null)
    v (String.split_on_char '.' path)

let scan_table t required_of (s : Plan.scan) : rel =
  match find_table t s.dataset with
  | Columns { len; cols; sort_key; _ } -> (
    match required_of s.binding with
    | `Whole ->
      (* whole-record use: box every row (expensive, rarely needed) *)
      Counters.add_materialized len;
      let boxed =
        Array.init len (fun i ->
            Value.record (List.map (fun (n, p) -> (n, phys_get p i)) cols))
      in
      { len; cols = [ (s.binding, Vals boxed) ]; sorted = None }
    | `Paths ps ->
      let pick p =
        let root = List.hd (String.split_on_char '.' p) in
        match List.assoc_opt root cols with
        | Some c -> (s.binding ^ "." ^ p, c)
        | None -> Perror.plan_error "colstore: table %s has no column %s" s.dataset root
      in
      {
        len;
        cols = List.map pick ps;
        sorted = Option.map (fun k -> s.binding ^ "." ^ k) sort_key;
      })
  | Documents { docs; _ } -> (
    (* immature JSON: one full parse per required path per document *)
    let len = Array.length docs in
    match required_of s.binding with
    | `Whole ->
      Counters.add_materialized len;
      {
        len;
        cols =
          [ (s.binding, Vals (Array.map (fun d -> Json.to_value (Json.parse_string d)) docs)) ];
        sorted = None;
      }
    | `Paths ps ->
      let column p =
        Counters.add_materialized len;
        Vals
          (Array.map
             (fun d -> json_walk (Json.to_value (Json.parse_string d)) p)
             docs)
      in
      { len; cols = List.map (fun p -> (s.binding ^ "." ^ p, column p)) ps; sorted = None })

(* --- the operator-at-a-time evaluator --------------------------------------- *)

module VH = Hashtbl.Make (struct
  type t = Value.t

  let equal = Value.equal
  let hash = Value.hash
end)

let rec eval_rel t required_of (p : Plan.t) : rel =
  match p with
  | Plan.Scan s -> scan_table t required_of s
  | Plan.Select { pred; input } -> apply_select (eval_rel t required_of input) pred
  | Plan.Project { binding; fields; input } ->
    let rel = eval_rel t required_of input in
    {
      len = rel.len;
      cols = List.map (fun (n, e) -> (binding ^ "." ^ n, eval_column rel e)) fields;
      sorted = None;
    }
  | Plan.Join { kind = Plan.Left_outer; _ } ->
    Perror.unsupported "colstore: left outer join"
  | Plan.Unnest { outer = true; _ } -> Perror.unsupported "colstore: outer unnest"
  | Plan.Unnest { path; binding; pred; input; _ } ->
    let rel = eval_rel t required_of input in
    let coll = eval_column rel path in
    (* explode: boxed elements + repeated parent row ids, fully materialized *)
    let parent = ref [] and elems = ref [] and n = ref 0 in
    for i = 0 to rel.len - 1 do
      match phys_get coll i with
      | Value.Coll (_, es) ->
        List.iter
          (fun e ->
            parent := i :: !parent;
            elems := e :: !elems;
            incr n)
          es
      | Value.Null -> ()
      | v -> Perror.type_error "unnest over %a" Value.pp v
    done;
    let parent_idx = Array.make !n 0 and elem_arr = Array.make !n Value.Null in
    List.iteri (fun k i -> parent_idx.(!n - 1 - k) <- i) !parent;
    List.iteri (fun k e -> elem_arr.(!n - 1 - k) <- e) !elems;
    let exploded = gather rel parent_idx in
    let rel' =
      { exploded with cols = (binding, Vals elem_arr) :: exploded.cols }
    in
    apply_select rel' pred
  | Plan.Join { left; right; pred; left_key; right_key; _ } ->
    let lrel = eval_rel t required_of left and rrel = eval_rel t required_of right in
    let equi =
      match left_key, right_key with
      | Some lk, Some rk -> Some (lk, rk)
      | _ ->
        let lb = Plan.bindings left and rb = Plan.bindings right in
        let subset vs bs = List.for_all (fun v -> List.mem v bs) vs in
        List.find_map
          (fun c ->
            match (c : Expr.t) with
            | Expr.Binop (Expr.Eq, l, r) ->
              if subset (Expr.free_vars l) lb && subset (Expr.free_vars r) rb then
                Some (l, r)
              else if subset (Expr.free_vars l) rb && subset (Expr.free_vars r) lb then
                Some (r, l)
              else None
            | _ -> None)
          (Expr.conjuncts pred)
    in
    (match equi with
    | None ->
      (* cross product then filter: columnar engines avoid this; we support
         it for completeness *)
      let li = ref [] and ri = ref [] and n = ref 0 in
      for i = 0 to lrel.len - 1 do
        for j = 0 to rrel.len - 1 do
          li := i :: !li;
          ri := j :: !ri;
          incr n
        done
      done;
      let la = Array.make !n 0 and ra = Array.make !n 0 in
      List.iteri (fun k i -> la.(!n - 1 - k) <- i) !li;
      List.iteri (fun k j -> ra.(!n - 1 - k) <- j) !ri;
      let joined =
        {
          len = !n;
          cols = (gather lrel la).cols @ (gather rrel ra).cols;
          sorted = None;
        }
      in
      apply_select joined pred
    | Some (lk, rk) ->
      (* sideways information passing (DBMS C): a range restriction already
         applied to one side's sorted join key is applied to the other
         side's sorted key before joining *)
      let lrel, rrel =
        if not t.config.sideways_passing then (lrel, rrel)
        else begin
          let key_range rel key =
            match Analysis.path_of key with
            | Some (v, p) -> (
              match List.assoc_opt (v ^ "." ^ p) rel.cols with
              | Some (Ints a) when Array.length a > 0 ->
                Some (Array.fold_left min max_int a, Array.fold_left max min_int a)
              | _ -> None)
            | None -> None
          in
          let restrict rel key (lo, hi) =
            match Analysis.path_of key with
            | Some (v, p) when rel.sorted = Some (v ^ "." ^ p) -> (
              match List.assoc_opt (v ^ "." ^ p) rel.cols with
              | Some (Ints a) -> (
                match sorted_range a Expr.Ge lo, sorted_range a Expr.Le hi with
                | Some (l1, _), Some (_, h2) -> slice rel l1 (max l1 h2)
                | _ -> rel)
              | _ -> rel)
            | _ -> rel
          in
          match key_range lrel lk, key_range rrel rk with
          | Some lr, Some rr ->
            (restrict lrel lk rr, restrict rrel rk lr)
          | _ -> (lrel, rrel)
        end
      in
      let lkeys = eval_column lrel lk and rkeys = eval_column rrel rk in
      let li = ref [] and ri = ref [] and n = ref 0 in
      (match lkeys, rkeys with
      | Ints la, Ints ra ->
        let table : (int, int list) Hashtbl.t = Hashtbl.create (Array.length ra) in
        Array.iteri
          (fun j k ->
            Hashtbl.replace table k (j :: (try Hashtbl.find table k with Not_found -> [])))
          ra;
        Array.iteri
          (fun i k ->
            match Hashtbl.find_opt table k with
            | Some js ->
              List.iter
                (fun j ->
                  li := i :: !li;
                  ri := j :: !ri;
                  incr n)
                js
            | None -> ())
          la
      | lp, rp ->
        let table : int list VH.t = VH.create 256 in
        for j = 0 to rrel.len - 1 do
          match phys_get rp j with
          | Value.Null -> ()
          | k -> VH.replace table k (j :: (try VH.find table k with Not_found -> []))
        done;
        for i = 0 to lrel.len - 1 do
          match phys_get lp i with
          | Value.Null -> ()
          | k -> (
            match VH.find_opt table k with
            | Some js ->
              List.iter
                (fun j ->
                  li := i :: !li;
                  ri := j :: !ri;
                  incr n)
                js
            | None -> ())
        done);
      let la = Array.make !n 0 and ra = Array.make !n 0 in
      List.iteri (fun k i -> la.(!n - 1 - k) <- i) !li;
      List.iteri (fun k j -> ra.(!n - 1 - k) <- j) !ri;
      let joined =
        {
          len = !n;
          cols = (gather lrel la).cols @ (gather rrel ra).cols;
          sorted = None;
        }
      in
      (* residual conjuncts beyond the key equality *)
      let residual =
        List.filter
          (fun c ->
            match (c : Expr.t) with
            | Expr.Binop (Expr.Eq, a, b) ->
              not (Expr.equal a lk && Expr.equal b rk)
              && not (Expr.equal a rk && Expr.equal b lk)
            | _ -> true)
          (Expr.conjuncts pred)
      in
      apply_select joined (Expr.conjoin residual))
  | Plan.Sort { keys; limit; input } ->
    let rel = eval_rel t required_of input in
    let key_cols = List.map (fun (e, d) -> (eval_column rel e, d)) keys in
    let idx = Array.init rel.len Fun.id in
    let cmp i j =
      let rec go = function
        | [] -> Int.compare i j (* stable tie-break on original position *)
        | (col, d) :: rest ->
          let c = Value.compare (phys_get col i) (phys_get col j) in
          if c <> 0 then (match (d : Plan.sort_dir) with Plan.Asc -> c | Plan.Desc -> -c)
          else go rest
      in
      go key_cols
    in
    Array.sort cmp idx;
    let idx =
      match limit with
      | Some n when n < Array.length idx -> Array.sub idx 0 n
      | _ -> idx
    in
    gather rel idx
  | Plan.Nest _ | Plan.Reduce _ ->
    Perror.plan_error "colstore: fold operator below another operator"

let required_table (p : Plan.t) =
  let req = Analysis.required_paths (Analysis.all_exprs p) in
  fun binding ->
    match List.assoc_opt binding req with
    | Some r -> r
    | None -> `Paths []

let run t (plan : Plan.t) : Value.t =
  let required_of = required_table plan in
  match plan with
  | Plan.Reduce { monoid_output; pred; input } ->
    let rel = apply_select (eval_rel t required_of input) pred in
    (match monoid_output with
    | [ a ] -> agg_over rel a
    | aggs -> Value.record (List.map (fun (a : Plan.agg) -> (a.agg_name, agg_over rel a)) aggs))
  | Plan.Nest { keys; aggs; pred; input; _ } ->
    let rel = apply_select (eval_rel t required_of input) pred in
    let key_cols = List.map (fun (_, e) -> eval_column rel e) keys in
    (* group ids via hashing the boxed key tuple *)
    let groups : int list ref VH.t = VH.create 64 in
    let order = ref [] in
    for i = 0 to rel.len - 1 do
      let kv = Value.Coll (Ptype.List, List.map (fun c -> phys_get c i) key_cols) in
      match VH.find_opt groups kv with
      | Some cell -> cell := i :: !cell
      | None ->
        VH.add groups kv (ref [ i ]);
        order := kv :: !order
    done;
    let rows =
      List.rev_map
        (fun kv ->
          let members = !(VH.find groups kv) in
          let kvs = match kv with Value.Coll (_, vs) -> vs | _ -> assert false in
          let key_fields = List.map2 (fun (n, _) v -> (n, v)) keys kvs in
          let agg_fields =
            List.map
              (fun (a : Plan.agg) ->
                match a.monoid, t.config.count_from_buckets with
                | Monoid.Primitive Monoid.Count, true ->
                  (* MonetDB: a count is the bucket size — no gather *)
                  (a.agg_name, Value.Int (List.length members))
                | _ ->
                  let idx = Array.of_list (List.rev members) in
                  (a.agg_name, agg_over (gather rel idx) a))
              aggs
          in
          Value.record (key_fields @ agg_fields))
        !order
    in
    Value.bag rows
  | Plan.Project { binding; fields; input } ->
    let rel = eval_rel t required_of input in
    let cols = List.map (fun (n, e) -> (n, eval_column rel e)) fields in
    ignore binding;
    Value.bag
      (List.init rel.len (fun i ->
           Value.record (List.map (fun (n, p) -> (n, phys_get p i)) cols)))
  | _ -> Perror.unsupported "colstore: plan must be rooted at Reduce, Nest or Project"
