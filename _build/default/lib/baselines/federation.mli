(** The polystore approach of Section 7.2: "packaging together multiple
    query engines, using the appropriate one for each specialized scenario,
    and relying on a middleware layer to integrate data from different
    sources" — concretely DBMS C for relational/CSV data plus MongoDB for
    JSON, glued by a mediating layer.

    Routing: a query touching only document collections runs on the
    document store; only relational tables → the column store; a
    cross-format query pays the middleware: the needed fields of each
    involved document collection are exported, shipped, and loaded into a
    temporary column-store table, and the whole query runs there. The
    accumulated data-exchange time is reported separately (Table 3's
    "Middleware" row). *)

open Proteus_model

type t

(** The column store is created with the DBMS C configuration. *)
val create : unit -> t

val colstore : t -> Colstore.t
val docstore : t -> Docstore.t

val load_relational :
  t -> name:string -> ?sort_key:string -> element:Ptype.t -> Value.t list -> unit

val load_csv :
  t -> name:string -> ?config:Proteus_format.Csv.config -> ?sort_key:string ->
  element:Ptype.t -> string -> unit

val load_json : t -> name:string -> element:Ptype.t -> string -> unit

val run : t -> Proteus_algebra.Plan.t -> Value.t

(** Accumulated middleware (export/ship/load) seconds so far. *)
val middleware_seconds : t -> float
