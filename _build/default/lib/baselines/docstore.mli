(** A document store — the MongoDB comparator.

    Collections are loaded into a BSON-like binary serialization. Queries
    over a single collection run as an interpreted per-document pipeline
    that materializes a projected document per input document (the
    aggregation-pipeline overhead that makes multi-aggregate queries
    disproportionately expensive in the paper's Figure 5); unnesting of
    embedded arrays is a first-class, efficient operation (Figure 9's
    "Unnest" case, which MongoDB wins against the row stores).

    Joins have no first-class support: a plan containing a join falls back
    to a map-reduce-style evaluation that fully deserializes every involved
    collection and nested-loops over boxed documents — the deliberately
    poor path the paper observes ("MongoDB is unsuitable for such
    operations"). *)

open Proteus_model

type t

val create : unit -> t

val load_json : t -> name:string -> element:Ptype.t -> string -> unit

(** Also accepts relational rows (stored as documents) so the federation
    can park small exports here if needed. *)
val load_records : t -> name:string -> element:Ptype.t -> Value.t list -> unit

val run : t -> Proteus_algebra.Plan.t -> Value.t

val doc_count : t -> string -> int

(** BSON bytes for a collection (the paper quotes 30GB for the 20GB JSON
    lineitem file). *)
val collection_bytes : t -> string -> int
