(** A column-at-a-time, operator-at-a-time analytical engine — the columnar
    comparators of the evaluation.

    Every operator {e fully materializes} its output (selection vectors,
    gathered columns, join index pairs) before the next operator runs, as
    MonetDB-style engines do [15]; the paper's Figures 6/8/10/12 hinge on
    exactly this materialization cost growing with selectivity, against
    Proteus' pipelining.

    Two configurations reproduce the two systems:
    - {!monetdb_config}: plain columns; strings stored raw; group-by COUNT
      answered from the grouping hash table's bucket sizes (the trick the
      paper observes in Figure 12); JSON support "immature" — documents are
      a string column re-parsed per path access;
    - {!dbmsc_config}: sorts each table on a load key and serves range
      predicates on it by binary search (data skipping), dictionary-encodes
      strings, and performs sideways information passing across equi-joins
      on sorted keys. *)

open Proteus_model

type config = {
  dictionary_strings : bool;
  sideways_passing : bool;
  count_from_buckets : bool;
}

val monetdb_config : config
val dbmsc_config : config

type t

val create : config -> unit -> t

(** [load_relational t ~name ?sort_key ~element records] loads a table;
    [sort_key] (DBMS C) sorts the stored columns on that field. *)
val load_relational :
  t -> name:string -> ?sort_key:string -> element:Ptype.t -> Value.t list -> unit

val load_csv :
  t -> name:string -> ?config:Proteus_format.Csv.config -> ?sort_key:string ->
  element:Ptype.t -> string -> unit

(** [load_json t ~name ~element text] stores documents as a string column
    (the immature JSON path). *)
val load_json : t -> name:string -> element:Ptype.t -> string -> unit

(** [run t plan] evaluates operator-at-a-time. Supports plans rooted at
    Reduce, Nest or Project; raises [Perror.Unsupported] otherwise. *)
val run : t -> Proteus_algebra.Plan.t -> Value.t

val row_count : t -> string -> int
