open Proteus_model
module Plan = Proteus_algebra.Plan

type home = In_colstore | In_docstore

type t = {
  col : Colstore.t;
  doc : Docstore.t;
  homes : (string, home) Hashtbl.t;
  shipped : (string, unit) Hashtbl.t;  (* doc collections already exported *)
  mutable middleware : float;
}

let create () =
  {
    col = Colstore.create Colstore.dbmsc_config ();
    doc = Docstore.create ();
    homes = Hashtbl.create 8;
    shipped = Hashtbl.create 4;
    middleware = 0.;
  }

let colstore t = t.col
let docstore t = t.doc

let load_relational t ~name ?sort_key ~element records =
  Colstore.load_relational t.col ~name ?sort_key ~element records;
  Hashtbl.replace t.homes name In_colstore

let load_csv t ~name ?config ?sort_key ~element text =
  Colstore.load_csv t.col ~name ?config ?sort_key ~element text;
  Hashtbl.replace t.homes name In_colstore

let load_json t ~name ~element text =
  Docstore.load_json t.doc ~name ~element text;
  Hashtbl.replace t.homes name In_docstore

let home t name =
  match Hashtbl.find_opt t.homes name with
  | Some h -> h
  | None -> Perror.plan_error "federation: unknown dataset %s" name

(* Ship one document collection into the column store: full deserialization,
   text re-serialization ("data exchange between systems"), reload. *)
let ship t name =
  if not (Hashtbl.mem t.shipped name) then begin
    let t0 = Unix.gettimeofday () in
    let plan =
      Plan.reduce
        [ Plan.agg ~name:"all" (Monoid.Collection Ptype.Bag) (Expr.var "d") ]
        (Plan.scan ~dataset:name ~binding:"d" ())
    in
    let docs = Value.elements (Docstore.run t.doc plan) in
    (* the middleware moves data as a neutral text format *)
    let text =
      String.concat "\n"
        (List.map (fun d -> Proteus_format.Json.to_string (Proteus_format.Json.of_value d)) docs)
    in
    let element =
      match docs with
      | d :: _ -> Value.type_of d
      | [] -> Ptype.Record []
    in
    let reparsed =
      List.map Proteus_format.Json.to_value (Proteus_format.Json.parse_seq text)
    in
    Colstore.load_relational t.col ~name ~element reparsed;
    Hashtbl.replace t.shipped name ();
    t.middleware <- t.middleware +. (Unix.gettimeofday () -. t0)
  end

let run t plan =
  let datasets = List.sort_uniq String.compare (Plan.datasets plan) in
  let homes = List.map (fun d -> (d, home t d)) datasets in
  let all h = List.for_all (fun (_, h') -> h' = h) homes in
  if all In_docstore then Docstore.run t.doc plan
  else if all In_colstore then Colstore.run t.col plan
  else begin
    List.iter (fun (d, h) -> if h = In_docstore then ship t d) homes;
    Colstore.run t.col plan
  end

let middleware_seconds t = t.middleware
