(** A generic interpreted row store — the "RDBMS extended with richer data
    models" comparator of the evaluation (PostgreSQL / DBMS X).

    - Relational tables live in binary row pages, built by an explicit
      {e load} step (load time is part of the paper's Table 3 accounting).
    - JSON collections are loaded into a per-document serialized column:
      [Jsonb] (a binary, length-prefixed encoding — PostgreSQL's [jsonb])
      or [Text] (raw characters, re-parsed on every field access — the
      paper's DBMS X, which it blames for slow JSON queries).
    - Execution is Volcano-style interpretation.
    - Optimizer blindness to JSON (Section 7.2, Q39): an equi-join whose
      key reaches into a JSON column falls back to a nested-loop join,
      exactly the trap the paper demonstrates on PostgreSQL. *)

open Proteus_model

type json_encoding = Jsonb | Text

type t

val create : ?json_encoding:json_encoding -> unit -> t

(** [load_relational t ~name ~element records] loads a flat table into row
    pages. *)
val load_relational : t -> name:string -> element:Ptype.t -> Value.t list -> unit

(** [load_csv t ~name ~element text] parses the whole CSV and loads it. *)
val load_csv :
  t -> name:string -> ?config:Proteus_format.Csv.config -> element:Ptype.t ->
  string -> unit

(** [load_json t ~name ~element text] parses and serializes every object. *)
val load_json : t -> name:string -> element:Ptype.t -> string -> unit

(** [run t plan] interprets an algebra plan over the loaded tables. *)
val run : t -> Proteus_algebra.Plan.t -> Value.t

val row_count : t -> string -> int

(** Bytes used to store a table (the paper quotes e.g. 27GB jsonb for a
    20GB JSON file). *)
val table_bytes : t -> string -> int
