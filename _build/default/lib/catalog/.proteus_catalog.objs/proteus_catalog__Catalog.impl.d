lib/catalog/catalog.ml: Dataset Hashtbl List Memory Perror Proteus_model Proteus_storage Stats String
