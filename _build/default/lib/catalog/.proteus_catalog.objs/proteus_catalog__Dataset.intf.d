lib/catalog/dataset.mli: Column Format Memory Proteus_format Proteus_model Proteus_storage Ptype Rowpage Schema
