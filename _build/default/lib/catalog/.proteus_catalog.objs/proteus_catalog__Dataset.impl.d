lib/catalog/dataset.ml: Column Fmt Memory Proteus_format Proteus_model Proteus_storage Ptype Rowpage Schema
