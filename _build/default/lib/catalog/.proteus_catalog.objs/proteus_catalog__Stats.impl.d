lib/catalog/stats.ml: Float Fmt Hashtbl Proteus_model Value
