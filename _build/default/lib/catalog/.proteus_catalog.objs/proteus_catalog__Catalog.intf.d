lib/catalog/catalog.mli: Dataset Memory Proteus_storage Stats
