lib/catalog/stats.mli: Format Proteus_model Value
