open Proteus_model
open Proteus_storage

type format =
  | Csv of Proteus_format.Csv.config
  | Json
  | Binary_row
  | Binary_column

type location =
  | File of string
  | Blob of string
  | Rows of Rowpage.t
  | Columns of (string * Column.t) list

type t = {
  name : string;
  format : format;
  location : location;
  element : Ptype.t;
}

let make ~name ~format ~location ~element = { name; format; location; element }

let schema t = Schema.of_type t.element

let format_name = function
  | Csv _ -> "csv"
  | Json -> "json"
  | Binary_row -> "binary-row"
  | Binary_column -> "binary-column"

let bias = function
  | Json -> Memory.Arena.Bias_json
  | Csv _ -> Memory.Arena.Bias_csv
  | Binary_row | Binary_column -> Memory.Arena.Bias_binary

let pp ppf t =
  Fmt.pf ppf "%s [%s] : %a" t.name (format_name t.format) Ptype.pp t.element
