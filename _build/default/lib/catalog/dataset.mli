(** Dataset descriptors: what the engine knows about an input before the
    relevant input plug-in takes over. *)

open Proteus_model
open Proteus_storage

type format =
  | Csv of Proteus_format.Csv.config
  | Json
  | Binary_row
  | Binary_column

(** Where the bytes live. [File]/[Blob] inputs go through the memory
    manager; [Rows]/[Columns] are binary datasets already in their native
    in-memory layout (as produced by a loader or a generator). *)
type location =
  | File of string
  | Blob of string
  | Rows of Rowpage.t
  | Columns of (string * Column.t) list

type t = {
  name : string;
  format : format;
  location : location;
  element : Ptype.t;  (** type of one element; a record for all current formats *)
}

val make : name:string -> format:format -> location:location -> element:Ptype.t -> t

(** The element type viewed as a schema.
    Raises [Invalid_argument] for non-record element types. *)
val schema : t -> Schema.t

val format_name : format -> string

(** Eviction bias class of the dataset's format (Section 6 "Cache
    Policies": JSON > CSV > binary). *)
val bias : format -> Memory.Arena.bias

val pp : Format.formatter -> t -> unit
