(** The catalog: named datasets, their statistics, and the shared memory
    manager. One catalog backs one Proteus session. *)

open Proteus_storage

type t

val create : ?cache_budget:int -> unit -> t

val memory : t -> Memory.t

(** [register t dataset] adds (or replaces) a dataset. *)
val register : t -> Dataset.t -> unit

(** [find t name] looks a dataset up.
    Raises [Perror.Plan_error] for unknown names. *)
val find : t -> string -> Dataset.t

val find_opt : t -> string -> Dataset.t option

val names : t -> string list

val remove : t -> string -> unit

(** [stats t name] is the (mutable) statistics record of a dataset,
    created on first use. *)
val stats : t -> string -> Stats.t

(** [contents t dataset] resolves a [File]/[Blob] location to its bytes via
    the memory manager. Raises [Perror.Plan_error] for [Rows]/[Columns]
    datasets, which have no byte image. *)
val contents : t -> Dataset.t -> string
