open Proteus_model
open Proteus_storage

type t = {
  memory : Memory.t;
  datasets : (string, Dataset.t) Hashtbl.t;
  stats : (string, Stats.t) Hashtbl.t;
}

let create ?cache_budget () =
  {
    memory = Memory.create ?cache_budget ();
    datasets = Hashtbl.create 16;
    stats = Hashtbl.create 16;
  }

let memory t = t.memory

let register t (d : Dataset.t) = Hashtbl.replace t.datasets d.name d

let find_opt t name = Hashtbl.find_opt t.datasets name

let find t name =
  match find_opt t name with
  | Some d -> d
  | None -> Perror.plan_error "unknown dataset %s" name

let names t = Hashtbl.fold (fun n _ acc -> n :: acc) t.datasets [] |> List.sort String.compare

let remove t name =
  Hashtbl.remove t.datasets name;
  Hashtbl.remove t.stats name

let stats t name =
  match Hashtbl.find_opt t.stats name with
  | Some s -> s
  | None ->
    let s = Stats.create () in
    Hashtbl.replace t.stats name s;
    s

let contents t (d : Dataset.t) =
  match d.location with
  | Dataset.File path -> Memory.load_file t.memory path
  | Dataset.Blob name -> Memory.contents t.memory name
  | Dataset.Rows _ | Dataset.Columns _ ->
    Perror.plan_error "dataset %s has no raw byte image" d.name
