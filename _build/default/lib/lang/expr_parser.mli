(** Expression grammar shared by the SQL and comprehension frontends.

    Precedence, loosest first: OR; AND; NOT; comparisons (=, <>, <, <=, >,
    >=, LIKE, BETWEEN..AND, IS [NOT] NULL); additive (+, -, || concat);
    multiplicative [*], [/], [%]; unary minus; field access (postfix [.name]).

    Primaries: literals, identifiers (yielded as [Expr.Var] — frontends
    resolve them), parenthesized expressions, record constructors
    [(name: e, ...)] / [(e1, e2)] (auto-named), [if c then a else b], and
    SQL [CASE WHEN c THEN a ELSE b END]. *)

open Proteus_model

(** [parse cursor] parses one expression starting at the cursor. *)
val parse : Lexer.Cursor.cursor -> Expr.t

(** [auto_field_name i e] is the record-field name for the [i]-th positional
    element of a tuple constructor: the last path component when [e] is a
    path, else ["_i"]. *)
val auto_field_name : int -> Expr.t -> string
