lib/lang/expr_parser.mli: Expr Lexer Proteus_model
