lib/lang/expr_parser.ml: Date_util Expr Fmt Hashtbl Lexer List Proteus_model Value
