lib/lang/sql.ml: Comprehension Expr Expr_parser Fmt Lexer List Monoid Option Perror Proteus_algebra Proteus_calculus Proteus_model Ptype String
