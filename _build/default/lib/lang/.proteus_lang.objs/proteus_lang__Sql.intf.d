lib/lang/sql.mli: Proteus_algebra Proteus_calculus Proteus_model
