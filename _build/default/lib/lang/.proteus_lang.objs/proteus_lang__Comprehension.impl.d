lib/lang/comprehension.ml: Expr Expr_parser Fmt Lexer List Monoid Perror Proteus_calculus Proteus_model Ptype String
