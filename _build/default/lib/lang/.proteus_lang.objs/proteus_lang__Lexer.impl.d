lib/lang/lexer.ml: Array Buffer Fmt List Perror Proteus_model String
