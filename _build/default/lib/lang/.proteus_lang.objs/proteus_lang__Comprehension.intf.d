lib/lang/comprehension.mli: Lexer Proteus_calculus Proteus_model
