module Calc = Proteus_calculus.Calc
open Proteus_model
module C = Lexer.Cursor

let agg_names = [ "sum"; "min"; "max"; "count"; "avg"; "prod"; "all"; "any" ]

let monoid_of_name name : Monoid.primitive =
  match String.lowercase_ascii name with
  | "sum" -> Sum
  | "min" -> Min
  | "max" -> Max
  | "count" -> Count
  | "avg" -> Avg
  | "prod" -> Prod
  | "all" -> All
  | "any" -> Any
  | other -> Perror.plan_error "unknown aggregate %s" other

let at_agg c =
  match C.peek c, C.peek2 c with
  | Lexer.Ident name, Lexer.Punct "(" ->
    List.mem (String.lowercase_ascii name) agg_names
  | _ -> false

(* agg ::= name "(" (expr | "*") ")" ["as" ident] *)
let parse_agg c i =
  let name = C.ident c in
  let monoid = monoid_of_name name in
  C.expect_punct c "(";
  let expr =
    if C.accept_punct c "*" then Expr.int 1 else Expr_parser.parse c
  in
  C.expect_punct c ")";
  let label =
    if C.accept_kw c "as" then C.ident c
    else Fmt.str "%s_%d" (String.lowercase_ascii name) (i + 1)
  in
  (label, monoid, expr)

let parse_agg_list c =
  let rec go i acc =
    let a = parse_agg c i in
    if C.accept_punct c "," then go (i + 1) (a :: acc) else List.rev (a :: acc)
  in
  go 0 []

let rec parse_comp c : Calc.t =
  C.expect_kw c "for";
  C.expect_punct c "{";
  let rec quals acc =
    let q = parse_qual c in
    if C.accept_punct c "," then quals (q :: acc)
    else begin
      C.expect_punct c "}";
      List.rev (q :: acc)
    end
  in
  let quals = quals [] in
  let output =
    if C.accept_kw c "group" then begin
      C.expect_kw c "by";
      let rec keys i acc =
        let e = Expr_parser.parse c in
        let name =
          if C.accept_kw c "as" then C.ident c else Expr_parser.auto_field_name i e
        in
        if C.accept_punct c "," then keys (i + 1) ((name, e) :: acc)
        else List.rev ((name, e) :: acc)
      in
      let keys = keys 0 [] in
      C.expect_kw c "yield";
      Calc.Group { keys; aggs = parse_agg_list c }
    end
    else begin
      C.expect_kw c "yield";
      match C.peek c with
      | t when Lexer.is_kw t "bag" ->
        ignore (C.advance c);
        Calc.Collect (Ptype.Bag, Expr_parser.parse c)
      | t when Lexer.is_kw t "set" ->
        ignore (C.advance c);
        Calc.Collect (Ptype.Set, Expr_parser.parse c)
      | t when Lexer.is_kw t "list" ->
        ignore (C.advance c);
        Calc.Collect (Ptype.List, Expr_parser.parse c)
      | _ when at_agg c -> Calc.Aggregate (parse_agg_list c)
      | t -> C.error c "expected bag/set/list or an aggregate, got %a" Lexer.pp_token t
    end
  in
  { Calc.quals; output }

and parse_qual c : Calc.qual =
  (* generator when we see: ident <- *)
  match C.peek c, C.peek2 c with
  | Lexer.Ident x, Lexer.Punct "<-" ->
    ignore (C.advance c);
    ignore (C.advance c);
    let source =
      match C.peek c with
      | Lexer.Punct "(" ->
        ignore (C.advance c);
        let sub = parse_comp c in
        C.expect_punct c ")";
        Calc.Sub sub
      | Lexer.Ident _ -> (
        let first = C.ident c in
        if C.accept_punct c "." then begin
          let rec fields e =
            let e = Expr.Field (e, C.ident c) in
            if C.accept_punct c "." then fields e else e
          in
          Calc.Path (fields (Expr.Var first))
        end
        else Calc.Dataset first)
      | t -> C.error c "expected generator source, got %a" Lexer.pp_token t
    in
    Calc.Gen (x, source)
  | _ -> Calc.Pred (Expr_parser.parse c)

let parse src =
  let tokens = Lexer.tokenize ~what:"comprehension" src in
  let c = C.make ~what:"comprehension" tokens in
  let comp = parse_comp c in
  if not (C.at_eof c) then C.error c "trailing input after comprehension";
  Calc.validate comp;
  comp
