module Calc = Proteus_calculus.Calc
open Proteus_model
module C = Lexer.Cursor

type resolver = aliases:(string * string) list -> column:string -> string option

type item =
  | Agg_item of string option * Monoid.primitive * Expr.t
  | Plain_item of string option * Expr.t
  | Star

type tref =
  | Table of { dataset : string; alias : string }
  | Unnest_ref of { path : Expr.t; alias : string }

let keywords =
  [ "select"; "from"; "where"; "group"; "by"; "join"; "on"; "as"; "and"; "or"; "not";
    "like"; "between"; "is"; "null"; "unnest"; "order"; "limit"; "having";
    "asc"; "desc"; "distinct" ]

let parse_alias c ~default =
  if C.accept_kw c "as" then C.ident c
  else
    match C.peek c with
    | Lexer.Ident name when not (List.mem (String.lowercase_ascii name) keywords) ->
      ignore (C.advance c);
      name
    | _ -> default

let parse_tref c =
  if C.accept_kw c "unnest" then begin
    C.expect_punct c "(";
    let path = Expr_parser.parse c in
    C.expect_punct c ")";
    let alias = parse_alias c ~default:"u" in
    Unnest_ref { path; alias }
  end
  else begin
    let dataset = C.ident c in
    let alias = parse_alias c ~default:dataset in
    Table { dataset; alias }
  end

let parse_item c =
  if C.accept_punct c "*" then Star
  else if Comprehension.at_agg c then begin
    let name = C.ident c in
    let monoid = Comprehension.monoid_of_name name in
    C.expect_punct c "(";
    let expr = if C.accept_punct c "*" then Expr.int 1 else Expr_parser.parse c in
    C.expect_punct c ")";
    let label = if C.accept_kw c "as" then Some (C.ident c) else None in
    Agg_item (label, monoid, expr)
  end
  else begin
    let e = Expr_parser.parse c in
    let label = if C.accept_kw c "as" then Some (C.ident c) else None in
    Plain_item (label, e)
  end

(* Resolve unqualified column references: any free variable that is not a
   table alias is treated as a column name and rewritten to alias.column. *)
let resolve_expr ~resolve ~aliases e =
  let alias_names = List.map fst aliases in
  List.fold_left
    (fun e v ->
      if List.mem v alias_names then e
      else
        match resolve ~aliases ~column:v with
        | Some owner -> Expr.subst v (Expr.Field (Expr.Var owner, v)) e
        | None -> Perror.plan_error "cannot resolve column %s" v)
    e (Expr.free_vars e)

let default_resolver ~aliases ~column:_ =
  match aliases with [ (alias, _) ] -> Some alias | _ -> None

type statement = {
  body : Calc.t;
  having : Expr.t option;
  order_by : (Expr.t * Proteus_algebra.Plan.sort_dir) list;
  limit : int option;
}

let parse_statement ?(resolve = default_resolver) src =
  let tokens = Lexer.tokenize ~what:"sql" src in
  let c = C.make ~what:"sql" tokens in
  C.expect_kw c "select";
  let distinct = C.accept_kw c "distinct" in
  let rec items acc =
    let item = parse_item c in
    if C.accept_punct c "," then items (item :: acc) else List.rev (item :: acc)
  in
  let items = items [] in
  C.expect_kw c "from";
  (* table references and explicit JOIN ... ON *)
  let first = parse_tref c in
  let rec trefs acc preds =
    if C.accept_punct c "," then
      let r = parse_tref c in
      trefs (r :: acc) preds
    else if C.accept_kw c "join" then begin
      let r = parse_tref c in
      C.expect_kw c "on";
      let p = Expr_parser.parse c in
      trefs (r :: acc) (p :: preds)
    end
    else (List.rev acc, List.rev preds)
  in
  let refs, join_preds = trefs [ first ] [] in
  let where = if C.accept_kw c "where" then Some (Expr_parser.parse c) else None in
  let group_by =
    if C.accept_kw c "group" then begin
      C.expect_kw c "by";
      let rec keys acc =
        let e = Expr_parser.parse c in
        let name = if C.accept_kw c "as" then Some (C.ident c) else None in
        if C.accept_punct c "," then keys ((name, e) :: acc)
        else List.rev ((name, e) :: acc)
      in
      Some (keys [])
    end
    else None
  in
  let having = if C.accept_kw c "having" then Some (Expr_parser.parse c) else None in
  let order_by =
    if C.accept_kw c "order" then begin
      C.expect_kw c "by";
      let rec keys acc =
        let e = Expr_parser.parse c in
        let dir =
          if C.accept_kw c "desc" then Proteus_algebra.Plan.Desc
          else begin
            ignore (C.accept_kw c "asc");
            Proteus_algebra.Plan.Asc
          end
        in
        if C.accept_punct c "," then keys ((e, dir) :: acc)
        else List.rev ((e, dir) :: acc)
      in
      keys []
    end
    else []
  in
  let limit =
    if C.accept_kw c "limit" then begin
      match C.peek c with
      | Lexer.Int_lit n ->
        ignore (C.advance c);
        Some n
      | t -> C.error c "expected an integer after LIMIT, got %a" Lexer.pp_token t
    end
    else None
  in
  ignore (C.accept_punct c ";");
  if not (C.at_eof c) then C.error c "trailing input after statement";
  (* alias environment *)
  let aliases =
    List.map
      (function
        | Table { dataset; alias } -> (alias, dataset)
        | Unnest_ref { alias; _ } -> (alias, "<unnest>"))
      refs
  in
  (match
     List.sort_uniq String.compare (List.map fst aliases)
     |> List.length
   with
  | n when n <> List.length aliases -> Perror.plan_error "duplicate table alias"
  | _ -> ());
  let resolve_e e = resolve_expr ~resolve ~aliases e in
  (* generators *)
  let gens =
    List.map
      (function
        | Table { dataset; alias } -> Calc.Gen (alias, Calc.Dataset dataset)
        | Unnest_ref { path; alias } -> Calc.Gen (alias, Calc.Path (resolve_e path)))
      refs
  in
  let preds =
    List.map (fun p -> Calc.Pred (resolve_e p)) join_preds
    @ (match where with Some p -> [ Calc.Pred (resolve_e p) ] | None -> [])
  in
  (* output clause *)
  let auto i label e =
    match label with Some n -> n | None -> Expr_parser.auto_field_name i e
  in
  let output =
    match group_by with
    | Some keys ->
      let aggs =
        List.filter_map
          (function
            | Agg_item (label, m, e) -> Some (label, m, resolve_e e)
            | Plain_item _ | Star -> None)
          items
      in
      let plain =
        List.filter_map
          (function
            | Plain_item (label, e) -> Some (label, resolve_e e)
            | Agg_item _ | Star -> None)
          items
      in
      let keys =
        List.mapi
          (fun i (name, e) ->
            let e = resolve_e e in
            (* prefer the select-list label of a matching plain item *)
            let name =
              match name with
              | Some n -> n
              | None -> (
                match List.find_opt (fun (_, pe) -> Expr.equal pe e) plain with
                | Some (Some n, _) -> n
                | Some (None, pe) -> Expr_parser.auto_field_name i pe
                | None -> Expr_parser.auto_field_name i e)
            in
            (name, e))
          keys
      in
      (* every plain select item must be a group key *)
      List.iter
        (fun (_, pe) ->
          if not (List.exists (fun (_, ke) -> Expr.equal ke pe) keys) then
            Perror.plan_error "selected expression %a is not in GROUP BY" Expr.pp pe)
        plain;
      let aggs =
        List.mapi (fun i (label, m, e) -> (auto i label e, m, e)) aggs
      in
      if aggs = [] then Perror.plan_error "GROUP BY without aggregates";
      Calc.Group { keys; aggs }
    | None ->
      let has_agg =
        List.exists (function Agg_item _ -> true | Plain_item _ | Star -> false) items
      in
      if has_agg then begin
        let aggs =
          List.mapi
            (fun i item ->
              match item with
              | Agg_item (label, m, e) ->
                let e = resolve_e e in
                let name =
                  match label with Some n -> n | None -> Fmt.str "agg_%d" (i + 1)
                in
                (name, m, e)
              | Plain_item _ | Star ->
                Perror.plan_error "mixing aggregates and plain columns requires GROUP BY")
            items
        in
        Calc.Aggregate aggs
      end
      else begin
        let coll = if distinct then Ptype.Set else Ptype.Bag in
        match items with
        | [ Star ] -> (
          match aliases with
          | [ (alias, _) ] -> Calc.Collect (coll, Expr.Var alias)
          | many ->
            Calc.Collect
              (coll, Expr.Record_ctor (List.map (fun (a, _) -> (a, Expr.Var a)) many)))
        | [ Plain_item (None, e) ] -> Calc.Collect (coll, resolve_e e)
        | items ->
          let fields =
            List.mapi
              (fun i item ->
                match item with
                | Plain_item (label, e) ->
                  let e = resolve_e e in
                  (auto i label e, e)
                | Star -> Perror.plan_error "* cannot be mixed with other select items"
                | Agg_item _ -> assert false)
              items
          in
          Calc.Collect (coll, Expr.Record_ctor fields)
      end
  in
  let comp = { Calc.quals = gens @ preds; output } in
  Calc.validate comp;
  (* names of the statement's output columns (for ORDER BY resolution) *)
  let output_names =
    match output with
    | Calc.Collect (_, Expr.Record_ctor fs) -> List.map fst fs
    | Calc.Collect _ -> [ "value" ]
    | Calc.Aggregate aggs -> List.map (fun (n, _, _) -> n) aggs
    | Calc.Group { keys; aggs } ->
      List.map fst keys @ List.map (fun (n, _, _) -> n) aggs
  in
  (* in ORDER BY / HAVING, a variable naming an output column stays a bare
     Var marker for the engine; any other variable resolves like a WHERE
     column reference *)
  let resolve_order_key e =
    List.fold_left
      (fun e v ->
        if List.mem v output_names then e
        else
          match resolve ~aliases ~column:v with
          | Some owner -> Expr.subst v (Expr.Field (Expr.Var owner, v)) e
          | None -> Perror.plan_error "cannot resolve column %s" v)
      e (Expr.free_vars e)
  in
  let order_by = List.map (fun (e, d) -> (resolve_order_key e, d)) order_by in
  let having = Option.map resolve_order_key having in
  (match having, output with
  | Some _, Calc.Group _ -> ()
  | Some _, _ -> Perror.plan_error "HAVING requires GROUP BY"
  | None, _ -> ());
  { body = comp; having; order_by; limit }

let parse ?resolve src =
  let stmt = parse_statement ?resolve src in
  if stmt.order_by <> [] || stmt.limit <> None || stmt.having <> None then
    Perror.unsupported "ORDER BY/LIMIT/HAVING requires parse_statement";
  stmt.body
