(** SQL frontend.

    For relational queries over flat data, Proteus accepts SQL statements and
    desugars them to monoid comprehensions (Section 3). The supported subset
    covers the paper's evaluation workloads:

    {v
    SELECT item, ...            -- expressions, aggregates, *
    FROM t [AS] a [, u [AS] b | JOIN u [AS] b ON pred]...
         [, UNNEST(a.path) [AS] x]      -- extension for nested collections
    [WHERE pred]
    [GROUP BY expr [AS name], ...]
    [HAVING pred]               -- over output-column aliases
    [ORDER BY expr [ASC|DESC], ...]
    [LIMIT n]
    v}

    [SELECT DISTINCT ...] yields a set (the set monoid of the calculus)
    instead of a bag.

    Unqualified column names are resolved through a resolver callback: given
    the table aliases in scope (alias, dataset) and a column name, it returns
    the owning alias (the engine supplies one backed by catalog schemas).
    Without a resolver, unqualified columns are legal only in single-table
    queries. *)

type resolver = aliases:(string * string) list -> column:string -> string option

(** A parsed statement: the calculus body plus the ordering clause, which
    the calculus (a bag world) does not express — the engine applies it as
    a Sort operator over the translated plan. In [order_by] expressions, a
    bare [Var n] naming an output column refers to that column; anything
    else was resolved like a WHERE expression. *)
type statement = {
  body : Proteus_calculus.Calc.t;
  having : Proteus_model.Expr.t option;
      (** filter over the grouped output; references output aliases *)
  order_by : (Proteus_model.Expr.t * Proteus_algebra.Plan.sort_dir) list;
  limit : int option;
}

val parse_statement : ?resolve:resolver -> string -> statement

(** [parse ?resolve src] parses and desugars one SQL statement into the
    calculus. Raises [Perror.Parse_error] on syntax errors,
    [Perror.Plan_error] on unresolvable columns, and [Perror.Unsupported]
    when the statement has ORDER BY/LIMIT (use {!parse_statement}). *)
val parse : ?resolve:resolver -> string -> Proteus_calculus.Calc.t
