(** Parser for the query comprehension syntax exposed to users for queries
    over nested data (Section 3, Example 3.1).

    Grammar:
    {v
    comp   ::= "for" "{" qual ("," qual)* "}" tail
    qual   ::= ident "<-" source | expr
    source ::= ident                       -- dataset
             | expr "." ident ...          -- nested collection path
             | "(" comp ")"                -- sub-comprehension
    tail   ::= "yield" ("bag"|"set"|"list") expr
             | "yield" agg ("," agg)*
             | "group" "by" named ("," named)* "yield" agg ("," agg)*
    agg    ::= ("sum"|"min"|"max"|"count"|"avg"|"prod"|"all"|"any")
               "(" (expr | "*") ")" ["as" ident]
    named  ::= expr ["as" ident]
    v} *)

(** [parse src] parses and scope-checks one comprehension.
    Raises [Perror.Parse_error] / [Perror.Plan_error]. *)
val parse : string -> Proteus_calculus.Calc.t

(** {1 Shared with the SQL frontend} *)

(** True when the cursor is at an aggregate call like [sum(]. *)
val at_agg : Lexer.Cursor.cursor -> bool

(** Maps an aggregate name to its monoid.
    Raises [Perror.Plan_error] on unknown names. *)
val monoid_of_name : string -> Proteus_model.Monoid.primitive
