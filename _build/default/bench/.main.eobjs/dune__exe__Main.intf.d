bench/main.mli:
