bench/main.ml: Ablations Analyze Bechamel Benchmark Float Fmt Hashtbl List Measure Proteus Proteus_baselines Proteus_symantec Proteus_tpch Staged Symantec_fig Test Time Toolkit Tpch_figs
