bench/ablations.ml: Fmt List Proteus Proteus_cache Proteus_tpch Sys Util
