bench/symantec_fig.ml: Array Fmt List Proteus Proteus_baselines Proteus_cache Proteus_optimizer Proteus_plugin Proteus_symantec String Sys Util
