bench/tpch_figs.ml: Float Fmt List Proteus Proteus_baselines Proteus_cache Proteus_engine Proteus_optimizer Proteus_plugin Proteus_tpch String Sys Util
