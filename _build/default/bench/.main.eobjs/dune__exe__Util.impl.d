bench/util.ml: Fmt Gc List Unix
