(* Figures 5–13: the synthetic TPC-H microbenchmarks of Section 7.1.

   Two instances, as in the paper: a "JSON" instance (the paper's SF10) and
   a larger "binary" instance (the paper's SF100), scaled to laptop size.
   The baselines load the data up front (load time excluded here, as the
   paper's 7.1 experiments run over loaded/warm systems); Proteus builds its
   structural indexes on the first access, which we also perform before
   timing. Adaptive caching is deactivated except for Figure 13. *)

module Tpch = Proteus_tpch.Tpch
module Q = Tpch.Queries
module B = Proteus_baselines
module Cache_iface = Proteus_plugin.Cache_iface
module Registry = Proteus_plugin.Registry

let sf_json = try float_of_string (Sys.getenv "PROTEUS_BENCH_SF_JSON") with Not_found -> 0.005
let sf_bin = try float_of_string (Sys.getenv "PROTEUS_BENCH_SF_BIN") with Not_found -> 0.02

(* plans handed to every system get the same optimizer courtesy the real
   systems' own optimizers would provide: pushdown + join keys *)
let tune plan =
  Proteus_optimizer.Rewrite.extract_join_keys
    (Proteus_optimizer.Rewrite.pushdown_selections plan)

type json_env = {
  jd : Tpch.t;
  j_proteus : Proteus.Db.t;
  j_pg : B.Rowstore.t;
  j_dbmsx : B.Rowstore.t;
  j_monet : B.Colstore.t;
  j_dbmsc : B.Colstore.t;
  j_mongo : B.Docstore.t;
  j_pg_load : float;
  j_mongo_load : float;
}

type bin_env = {
  bd : Tpch.t;
  b_proteus : Proteus.Db.t;
  b_pg : B.Rowstore.t;
  b_dbmsx : B.Rowstore.t;
  b_monet : B.Colstore.t;
  b_dbmsc : B.Colstore.t;
}

let setup_json () =
  let jd = Tpch.generate ~sf:sf_json () in
  (* no system may exploit field order (Section 7.1), so shuffle it *)
  let li = Tpch.lineitem_json ~shuffle_fields:true jd in
  let ords = Tpch.orders_json ~shuffle_fields:true jd in
  let denorm = Tpch.denormalized_json ~shuffle_fields:true jd in
  let j_proteus = Proteus.Db.create () in
  Proteus.Db.set_caching j_proteus false;
  Proteus.Db.register_json j_proteus ~name:"lineitem" ~element:Tpch.lineitem_type
    ~contents:li;
  Proteus.Db.register_json j_proteus ~name:"orders" ~element:Tpch.order_type
    ~contents:ords;
  Proteus.Db.register_json j_proteus ~name:"denorm" ~element:Tpch.denorm_order_type
    ~contents:denorm;
  (* first (cold) access builds the structural indexes *)
  let _, proteus_index_time =
    Util.time_once (fun () ->
        List.iter
          (fun ds -> ignore (Registry.source (Proteus.Db.registry j_proteus) ds))
          [ "lineitem"; "orders"; "denorm" ])
  in
  let j_pg = B.Rowstore.create ~json_encoding:B.Rowstore.Jsonb () in
  let _, j_pg_load =
    Util.time_once (fun () ->
        B.Rowstore.load_json j_pg ~name:"lineitem" ~element:Tpch.lineitem_type li;
        B.Rowstore.load_json j_pg ~name:"orders" ~element:Tpch.order_type ords;
        B.Rowstore.load_json j_pg ~name:"denorm" ~element:Tpch.denorm_order_type denorm)
  in
  let j_dbmsx = B.Rowstore.create ~json_encoding:B.Rowstore.Text () in
  B.Rowstore.load_json j_dbmsx ~name:"lineitem" ~element:Tpch.lineitem_type li;
  B.Rowstore.load_json j_dbmsx ~name:"orders" ~element:Tpch.order_type ords;
  B.Rowstore.load_json j_dbmsx ~name:"denorm" ~element:Tpch.denorm_order_type denorm;
  let j_monet = B.Colstore.create B.Colstore.monetdb_config () in
  B.Colstore.load_json j_monet ~name:"lineitem" ~element:Tpch.lineitem_type li;
  let j_dbmsc = B.Colstore.create B.Colstore.dbmsc_config () in
  B.Colstore.load_json j_dbmsc ~name:"lineitem" ~element:Tpch.lineitem_type li;
  let j_mongo = B.Docstore.create () in
  let _, j_mongo_load =
    Util.time_once (fun () ->
        B.Docstore.load_json j_mongo ~name:"lineitem" ~element:Tpch.lineitem_type li;
        B.Docstore.load_json j_mongo ~name:"orders" ~element:Tpch.order_type ords;
        B.Docstore.load_json j_mongo ~name:"denorm" ~element:Tpch.denorm_order_type denorm)
  in
  (* Section 7.1 in-text: index size ratios and build-vs-load comparison *)
  (match Registry.index_info (Proteus.Db.registry j_proteus) "lineitem" with
  | Some info ->
    Fmt.pr
      "[setup] JSON instance: %d lineitems (%d KB); structural index %.0f%% of file, \
       built in %.0f ms (all 3 files: %.0f ms; jsonb load %.0f ms, BSON load %.0f ms)@."
      (List.length jd.Tpch.lineitems)
      (String.length li / 1024)
      (100.
      *. float_of_int info.Registry.size_bytes
      /. float_of_int info.Registry.input_bytes)
      (info.Registry.build_seconds *. 1000.)
      (proteus_index_time *. 1000.) (j_pg_load *. 1000.) (j_mongo_load *. 1000.)
  | None -> ());
  { jd; j_proteus; j_pg; j_dbmsx; j_monet; j_dbmsc; j_mongo; j_pg_load; j_mongo_load }

let setup_bin () =
  let bd = Tpch.generate ~sf:sf_bin () in
  let b_proteus = Proteus.Db.create () in
  Proteus.Db.set_caching b_proteus false;
  Proteus.Db.register_columns b_proteus ~name:"lineitem" ~element:Tpch.lineitem_type
    (Tpch.lineitem_columns bd);
  Proteus.Db.register_columns b_proteus ~name:"orders" ~element:Tpch.order_type
    (Tpch.orders_columns bd);
  let b_pg = B.Rowstore.create () in
  B.Rowstore.load_relational b_pg ~name:"lineitem" ~element:Tpch.lineitem_type
    bd.Tpch.lineitems;
  B.Rowstore.load_relational b_pg ~name:"orders" ~element:Tpch.order_type bd.Tpch.orders;
  let b_dbmsx = B.Rowstore.create () in
  B.Rowstore.load_relational b_dbmsx ~name:"lineitem" ~element:Tpch.lineitem_type
    bd.Tpch.lineitems;
  B.Rowstore.load_relational b_dbmsx ~name:"orders" ~element:Tpch.order_type
    bd.Tpch.orders;
  let b_monet = B.Colstore.create B.Colstore.monetdb_config () in
  B.Colstore.load_relational b_monet ~name:"lineitem" ~element:Tpch.lineitem_type
    bd.Tpch.lineitems;
  B.Colstore.load_relational b_monet ~name:"orders" ~element:Tpch.order_type
    bd.Tpch.orders;
  let b_dbmsc = B.Colstore.create B.Colstore.dbmsc_config () in
  B.Colstore.load_relational b_dbmsc ~name:"lineitem" ~sort_key:"l_orderkey"
    ~element:Tpch.lineitem_type bd.Tpch.lineitems;
  B.Colstore.load_relational b_dbmsc ~name:"orders" ~sort_key:"o_orderkey"
    ~element:Tpch.order_type bd.Tpch.orders;
  Fmt.pr "[setup] binary instance: %d lineitems, %d orders@."
    (List.length bd.Tpch.lineitems)
    (List.length bd.Tpch.orders);
  { bd; b_proteus; b_pg; b_dbmsx; b_monet; b_dbmsc }

(* run one plan on one system; None marks "not applicable", as the paper
   excludes systems from experiments they cannot serve sensibly *)
let cell run plan = Some (Util.measure (fun () -> ignore (run (tune plan))))

let proteus_run db plan = Proteus.Db.run_plan db plan

(* --- Figure 5: JSON projections -------------------------------------------- *)

let fig5 (e : json_env) =
  let oc = e.jd.Tpch.order_count in
  let rows =
    List.concat_map
      (fun (vname, variant) ->
        List.map
          (fun sel ->
            let plan = Q.projection ~lineitem:"lineitem" ~order_count:oc ~variant ~selectivity:sel in
            ( Fmt.str "%s sel=%.0f%%" vname (sel *. 100.),
              [
                cell (B.Rowstore.run e.j_pg) plan;
                cell (B.Rowstore.run e.j_dbmsx) plan;
                cell (B.Colstore.run e.j_monet) plan;
                cell (B.Colstore.run e.j_dbmsc) plan;
                cell (B.Docstore.run e.j_mongo) plan;
                cell (proteus_run e.j_proteus) plan;
              ] ))
          Util.selectivities)
      [ ("1 Aggr (Count)", Q.Count1); ("1 Aggr (Max)", Q.Max1); ("4 Aggr", Q.Agg4) ]
  in
  Util.print_table ~title:"Figure 5: JSON projections"
    ~systems:[ "PostgreSQL"; "DBMS-X"; "MonetDB"; "DBMS-C"; "MongoDB"; "Proteus" ]
    rows

(* --- Figure 6: binary projections ------------------------------------------ *)

let fig6 (e : bin_env) =
  let oc = e.bd.Tpch.order_count in
  let rows =
    List.concat_map
      (fun (vname, variant) ->
        List.map
          (fun sel ->
            let plan = Q.projection ~lineitem:"lineitem" ~order_count:oc ~variant ~selectivity:sel in
            ( Fmt.str "%s sel=%.0f%%" vname (sel *. 100.),
              [
                cell (B.Rowstore.run e.b_pg) plan;
                cell (B.Rowstore.run e.b_dbmsx) plan;
                cell (B.Colstore.run e.b_monet) plan;
                cell (B.Colstore.run e.b_dbmsc) plan;
                cell (proteus_run e.b_proteus) plan;
              ] ))
          Util.selectivities)
      [ ("1 Aggr (Count)", Q.Count1); ("1 Aggr (Max)", Q.Max1); ("4 Aggr", Q.Agg4) ]
  in
  Util.print_table ~title:"Figure 6: binary projections"
    ~systems:[ "PostgreSQL"; "DBMS-X"; "MonetDB"; "DBMS-C"; "Proteus" ]
    rows

(* --- Figures 7/8: selections ------------------------------------------------ *)

let fig7 (e : json_env) =
  let oc = e.jd.Tpch.order_count in
  let rows =
    List.concat_map
      (fun predicates ->
        List.map
          (fun sel ->
            let plan = Q.selection ~lineitem:"lineitem" ~order_count:oc ~predicates ~selectivity:sel in
            ( Fmt.str "%d predicate(s) sel=%.0f%%" predicates (sel *. 100.),
              [
                cell (B.Rowstore.run e.j_pg) plan;
                cell (B.Rowstore.run e.j_dbmsx) plan;
                cell (B.Docstore.run e.j_mongo) plan;
                cell (proteus_run e.j_proteus) plan;
              ] ))
          Util.selectivities)
      [ 1; 3; 4 ]
  in
  Util.print_table ~title:"Figure 7: JSON selections"
    ~systems:[ "PostgreSQL"; "DBMS-X"; "MongoDB"; "Proteus" ]
    rows

let fig8 (e : bin_env) =
  let oc = e.bd.Tpch.order_count in
  let rows =
    List.concat_map
      (fun predicates ->
        List.map
          (fun sel ->
            let plan = Q.selection ~lineitem:"lineitem" ~order_count:oc ~predicates ~selectivity:sel in
            ( Fmt.str "%d predicate(s) sel=%.0f%%" predicates (sel *. 100.),
              [
                cell (B.Rowstore.run e.b_pg) plan;
                cell (B.Rowstore.run e.b_dbmsx) plan;
                cell (B.Colstore.run e.b_monet) plan;
                cell (B.Colstore.run e.b_dbmsc) plan;
                cell (proteus_run e.b_proteus) plan;
              ] ))
          Util.selectivities)
      [ 1; 3; 4 ]
  in
  Util.print_table ~title:"Figure 8: binary selections"
    ~systems:[ "PostgreSQL"; "DBMS-X"; "MonetDB"; "DBMS-C"; "Proteus" ]
    rows

(* --- Figure 9: JSON joins + unnest ------------------------------------------ *)

let fig9 (e : json_env) =
  let oc = e.jd.Tpch.order_count in
  let join_rows =
    List.concat_map
      (fun (vname, variant) ->
        List.map
          (fun sel ->
            let plan =
              Q.join ~orders:"orders" ~lineitem:"lineitem" ~order_count:oc ~variant
                ~selectivity:sel
            in
            ( Fmt.str "%s sel=%.0f%%" vname (sel *. 100.),
              [
                cell (B.Rowstore.run e.j_pg) plan;
                cell (B.Rowstore.run e.j_dbmsx) plan;
                (* the paper lists MongoDB's join result "only for the first
                   query as an indication" *)
                (if variant = Q.JCount && sel <= 0.1 then
                   cell (B.Docstore.run e.j_mongo) plan
                 else None);
                cell (proteus_run e.j_proteus) plan;
              ] ))
          Util.selectivities)
      [ ("Join Count", Q.JCount); ("Join Max", Q.JMax); ("Join 2 Aggr", Q.JAgg2) ]
  in
  let unnest_rows =
    List.map
      (fun sel ->
        let plan = Q.unnest_count ~denorm:"denorm" ~order_count:oc ~selectivity:sel in
        ( Fmt.str "Unnest sel=%.0f%%" (sel *. 100.),
          [
            cell (B.Rowstore.run e.j_pg) plan;
            cell (B.Rowstore.run e.j_dbmsx) plan;
            cell (B.Docstore.run e.j_mongo) plan;
            cell (proteus_run e.j_proteus) plan;
          ] ))
      Util.selectivities
  in
  Util.print_table ~title:"Figure 9: JSON joins and unnest"
    ~systems:[ "PostgreSQL"; "DBMS-X"; "MongoDB"; "Proteus" ]
    (join_rows @ unnest_rows)

(* --- Figure 10: binary joins + counter proxies ------------------------------ *)

let fig10 (e : bin_env) =
  let oc = e.bd.Tpch.order_count in
  let rows =
    List.concat_map
      (fun (vname, variant) ->
        List.map
          (fun sel ->
            let plan =
              Q.join ~orders:"orders" ~lineitem:"lineitem" ~order_count:oc ~variant
                ~selectivity:sel
            in
            ( Fmt.str "%s sel=%.0f%%" vname (sel *. 100.),
              [
                cell (B.Rowstore.run e.b_pg) plan;
                cell (B.Rowstore.run e.b_dbmsx) plan;
                cell (B.Colstore.run e.b_monet) plan;
                cell (B.Colstore.run e.b_dbmsc) plan;
                cell (proteus_run e.b_proteus) plan;
              ] ))
          Util.selectivities)
      [ ("Join Count", Q.JCount); ("Join Max", Q.JMax); ("Join 2 Aggr", Q.JAgg2) ]
  in
  Util.print_table ~title:"Figure 10: binary joins"
    ~systems:[ "PostgreSQL"; "DBMS-X"; "MonetDB"; "DBMS-C"; "Proteus" ]
    rows;
  (* the paper's counter comparison at 20% selectivity: MonetDB vs Proteus,
     hardware counters proxied by interpretation/materialization counts *)
  let plan =
    tune (Q.join ~orders:"orders" ~lineitem:"lineitem" ~order_count:oc ~variant:Q.JCount ~selectivity:0.2)
  in
  let module C = Proteus_engine.Counters in
  let snap run =
    C.reset ();
    ignore (run ());
    C.snapshot ()
  in
  let monet = snap (fun () -> B.Colstore.run e.b_monet plan) in
  let compiled = snap (fun () -> proteus_run e.b_proteus plan) in
  let volcano =
    snap (fun () ->
        Proteus.Db.run_plan ~engine:Proteus.Db.Engine_volcano e.b_proteus plan)
  in
  Fmt.pr "   counter proxies (join, sel=20%%; hardware-counter analogues):@.";
  Fmt.pr "     %-22s %14s %14s@." "" "materialized" "interp.dispatch";
  Fmt.pr "     %-22s %14d %14d@." "MonetDB-like (col-at-a-time)" monet.C.materialized
    monet.C.dispatches;
  Fmt.pr "     %-22s %14d %14d@." "interpreted (Volcano)" volcano.C.materialized
    volcano.C.dispatches;
  Fmt.pr "     %-22s %14d %14d@." "Proteus (compiled)" compiled.C.materialized
    compiled.C.dispatches;
  let ratio a b = if b = 0 then Float.infinity else float_of_int a /. float_of_int b in
  Fmt.pr
    "     Proteus materializes %.1fx fewer values than the columnar engine \
     (the paper: 10x fewer LLC / 40x fewer dTLB misses) and removes all %d \
     per-tuple interpretation dispatches (the paper: 2x fewer branches)@."
    (ratio monet.C.materialized (max 1 compiled.C.materialized))
    volcano.C.dispatches

(* --- Figures 11/12: group-bys ------------------------------------------------ *)

let fig11 (e : json_env) =
  let oc = e.jd.Tpch.order_count in
  let rows =
    List.concat_map
      (fun aggregates ->
        List.map
          (fun sel ->
            let plan = Q.group_by ~lineitem:"lineitem" ~order_count:oc ~aggregates ~selectivity:sel in
            ( Fmt.str "%d Aggr sel=%.0f%%" aggregates (sel *. 100.),
              [
                cell (B.Rowstore.run e.j_pg) plan;
                cell (B.Rowstore.run e.j_dbmsx) plan;
                cell (B.Docstore.run e.j_mongo) plan;
                cell (proteus_run e.j_proteus) plan;
              ] ))
          Util.selectivities)
      [ 1; 3; 4 ]
  in
  Util.print_table ~title:"Figure 11: JSON group-bys"
    ~systems:[ "PostgreSQL"; "DBMS-X"; "MongoDB"; "Proteus" ]
    rows

let fig12 (e : bin_env) =
  let oc = e.bd.Tpch.order_count in
  let rows =
    List.concat_map
      (fun aggregates ->
        List.map
          (fun sel ->
            let plan = Q.group_by ~lineitem:"lineitem" ~order_count:oc ~aggregates ~selectivity:sel in
            ( Fmt.str "%d Aggr sel=%.0f%%" aggregates (sel *. 100.),
              [
                cell (B.Rowstore.run e.b_pg) plan;
                cell (B.Rowstore.run e.b_dbmsx) plan;
                cell (B.Colstore.run e.b_monet) plan;
                cell (B.Colstore.run e.b_dbmsc) plan;
                cell (proteus_run e.b_proteus) plan;
              ] ))
          Util.selectivities)
      [ 1; 3; 4 ]
  in
  Util.print_table ~title:"Figure 12: binary group-bys"
    ~systems:[ "PostgreSQL"; "DBMS-X"; "MonetDB"; "DBMS-C"; "Proteus" ]
    rows

(* --- Figure 13: effect of caching ------------------------------------------- *)

let fig13 () =
  let jd = Tpch.generate ~sf:sf_json () in
  let li = Tpch.lineitem_json ~shuffle_fields:true jd in
  let oc = jd.Tpch.order_count in
  (* baseline: the configuration of the previous figures (caching off) *)
  let base = Proteus.Db.create () in
  Proteus.Db.set_caching base false;
  Proteus.Db.register_json base ~name:"lineitem" ~element:Tpch.lineitem_type ~contents:li;
  ignore (Registry.source (Proteus.Db.registry base) "lineitem");
  (* cached-predicate: a previous query already cached the predicate field;
     the cache is then frozen read-only so timings measure reuse, not
     population *)
  let cached = Proteus.Db.create () in
  Proteus.Db.register_json cached ~name:"lineitem" ~element:Tpch.lineitem_type
    ~contents:li;
  ignore
    (Proteus.Db.run_plan cached
       (Q.projection ~lineitem:"lineitem" ~order_count:oc ~variant:Q.Count1
          ~selectivity:1.0));
  let mgr = Proteus.Db.cache_manager cached in
  let read_only =
    {
      (Proteus_cache.Manager.iface mgr) with
      Cache_iface.should_cache_field = (fun ~dataset:_ ~path:_ ~ty:_ -> false);
    }
  in
  Registry.set_cache (Proteus.Db.registry cached) read_only;
  Fmt.pr "@.== Figure 13: caching speedup over JSON (cache: %.1f%% of file) ==@."
    (100.
    *. float_of_int (Proteus_cache.Manager.resident_bytes mgr)
    /. float_of_int (String.length li));
  Fmt.pr "%-26s%14s%14s%14s@." "" "baseline" "cached-pred" "speedup";
  List.iter
    (fun (label, mk) ->
      List.iter
        (fun sel ->
          let plan = mk sel in
          (* engine generation happens once; samples time pure execution *)
          let p_base = Proteus.Db.prepare_plan base plan in
          let p_cached = Proteus.Db.prepare_plan cached plan in
          let t_base = Util.measure_n 9 (fun () -> ignore (p_base.Proteus.Db.run ())) in
          let t_cached =
            Util.measure_n 9 (fun () -> ignore (p_cached.Proteus.Db.run ()))
          in
          Fmt.pr "%-26s%11.2fms %11.2fms %13.1fx@."
            (Fmt.str "%s sel=%.0f%%" label (sel *. 100.))
            (Util.ms t_base) (Util.ms t_cached) (t_base /. t_cached))
        Util.selectivities)
    [
      ( "Projection template",
        fun sel ->
          Q.projection ~lineitem:"lineitem" ~order_count:oc ~variant:Q.Agg4
            ~selectivity:sel );
      ( "Selection template",
        fun sel ->
          Q.selection ~lineitem:"lineitem" ~order_count:oc ~predicates:4
            ~selectivity:sel );
    ]

let run_all () =
  let je = setup_json () in
  let be = setup_bin () in
  fig5 je;
  fig6 be;
  fig7 je;
  fig8 be;
  fig9 je;
  fig10 be;
  fig11 je;
  fig12 be;
  fig13 ();
  (je, be)
