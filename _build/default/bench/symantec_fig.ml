(* Figure 14 and Table 3: the Symantec spam-analysis workload of Section 7.2.

   Three approaches over the same three datasets:
   - PostgreSQL-like: one generic row store extended with jsonb (loads both
     raw files up front);
   - DBMS-C & MongoDB: a federation with a mediating middleware;
   - Proteus: queries the raw files in place, caching adaptively.

   As in the paper: the binary table is pre-loaded everywhere ("the OS cache
   contains the binary table"), neither CSV nor JSON has been touched when
   the 50-query sequence starts, and Proteus' caching is enabled. *)

module Symantec = Proteus_symantec.Symantec
module B = Proteus_baselines
module Registry = Proteus_plugin.Registry

let params =
  {
    Symantec.default_params with
    json_objects =
      (try int_of_string (Sys.getenv "PROTEUS_BENCH_SPAM_JSON") with Not_found -> 1500);
    csv_rows =
      (try int_of_string (Sys.getenv "PROTEUS_BENCH_SPAM_CSV") with Not_found -> 12_000);
    bin_rows =
      (try int_of_string (Sys.getenv "PROTEUS_BENCH_SPAM_BIN") with Not_found -> 20_000);
  }

let tune plan =
  Proteus_optimizer.Rewrite.extract_join_keys
    (Proteus_optimizer.Rewrite.pushdown_selections plan)

let run_all () =
  let s = Symantec.generate ~params () in
  Fmt.pr
    "@.[setup] Symantec workload: %d JSON objects (%d KB), %d CSV rows (%d KB), %d \
     binary rows@."
    params.Symantec.json_objects
    (String.length s.Symantec.json_text / 1024)
    params.Symantec.csv_rows
    (String.length s.Symantec.csv_text / 1024)
    params.Symantec.bin_rows;
  (* approach I: generic row store; loads CSV and JSON before querying *)
  let pg = B.Rowstore.create ~json_encoding:B.Rowstore.Jsonb () in
  B.Rowstore.load_relational pg ~name:Symantec.bin_name ~element:Symantec.bin_type
    s.Symantec.bin_records;
  let _, pg_load_csv =
    Util.time_once (fun () ->
        B.Rowstore.load_csv pg ~name:Symantec.csv_name ~element:Symantec.csv_type
          s.Symantec.csv_text)
  in
  let _, pg_load_json =
    Util.time_once (fun () ->
        B.Rowstore.load_json pg ~name:Symantec.json_name ~element:Symantec.json_type
          s.Symantec.json_text)
  in
  (* approach II: DBMS-C + MongoDB federation *)
  let fed = B.Federation.create () in
  B.Federation.load_relational fed ~name:Symantec.bin_name ~sort_key:"day"
    ~element:Symantec.bin_type s.Symantec.bin_records;
  let _, fed_load_csv =
    Util.time_once (fun () ->
        B.Federation.load_csv fed ~name:Symantec.csv_name ~sort_key:"day"
          ~element:Symantec.csv_type s.Symantec.csv_text)
  in
  let _, fed_load_json =
    Util.time_once (fun () ->
        B.Federation.load_json fed ~name:Symantec.json_name ~element:Symantec.json_type
          s.Symantec.json_text)
  in
  (* approach III: Proteus over the raw files, adaptive caching on *)
  let db = Proteus.Db.create () in
  Proteus.Db.register_json db ~name:Symantec.json_name ~element:Symantec.json_type
    ~contents:s.Symantec.json_text;
  Proteus.Db.register_csv db ~name:Symantec.csv_name ~element:Symantec.csv_type
    ~contents:s.Symantec.csv_text ();
  Proteus.Db.register_rows db ~name:Symantec.bin_name ~element:Symantec.bin_type
    s.Symantec.bin_records;

  (* run the 50 queries once each, in sequence (the workload is adaptive:
     caches built by early queries serve later ones) *)
  Fmt.pr "@.== Figure 14: spam workload, per query (ms) ==@.";
  Fmt.pr "%-6s%-12s%14s%14s%14s@." "query" "datasets" "PostgreSQL" "DBMSC+Mongo"
    "Proteus";
  let totals = Array.make 3 0.0 in
  let q39 = Array.make 3 0.0 in
  List.iter
    (fun (name, plan) ->
      let plan = tune plan in
      let _, t_pg = Util.time_once (fun () -> ignore (B.Rowstore.run pg plan)) in
      let _, t_fed = Util.time_once (fun () -> ignore (B.Federation.run fed plan)) in
      let _, t_pr = Util.time_once (fun () -> ignore (Proteus.Db.run_plan db plan)) in
      totals.(0) <- totals.(0) +. t_pg;
      totals.(1) <- totals.(1) +. t_fed;
      totals.(2) <- totals.(2) +. t_pr;
      if name = "Q39" then begin
        q39.(0) <- t_pg;
        q39.(1) <- t_fed;
        q39.(2) <- t_pr
      end;
      Fmt.pr "%-6s%-12s%11.2fms %11.2fms %11.2fms@." name (Symantec.group_of name)
        (Util.ms t_pg) (Util.ms t_fed) (Util.ms t_pr))
    (Symantec.queries s);

  (* Table 3: accumulated time per workload phase *)
  let middleware = B.Federation.middleware_seconds fed in
  Fmt.pr "@.== Table 3: accumulated execution time per phase (ms) ==@.";
  Fmt.pr "%-16s%12s%12s%12s%12s%12s%12s@." "" "LoadCSV" "LoadJSON" "Middleware" "Q39"
    "Rest" "Total";
  let row name load_csv load_json mid q39 total =
    let rest = total -. q39 in
    Fmt.pr "%-16s%10.0fms %10.0fms %10.0fms %10.0fms %10.0fms %10.0fms@." name
      (Util.ms load_csv) (Util.ms load_json) (Util.ms mid) (Util.ms q39) (Util.ms rest)
      (Util.ms (load_csv +. load_json +. mid +. total))
  in
  row "PostgreSQL" pg_load_csv pg_load_json 0.0 q39.(0) totals.(0);
  row "DBMSC+MongoDB" fed_load_csv fed_load_json middleware q39.(1) totals.(1);
  row "Proteus" 0.0 0.0 0.0 q39.(2) totals.(2);
  let total i extra = extra +. totals.(i) in
  let pg_total = total 0 (pg_load_csv +. pg_load_json) in
  let fed_total = total 1 (fed_load_csv +. fed_load_json +. middleware) in
  let pr_total = total 2 0.0 in
  Fmt.pr
    "@.   Proteus is %.1fx faster than the extended RDBMS and %.1fx faster than the \
     federation (the paper reports 9.1x and 2.9x)@."
    (pg_total /. pr_total) (fed_total /. pr_total);
  (* cache-size ratios, as reported at the end of Section 7.2 *)
  let mgr = Proteus.Db.cache_manager db in
  let ratio bytes file = 100. *. float_of_int bytes /. float_of_int (String.length file) in
  Fmt.pr
    "   Proteus field caches: %.1f%% of the CSV file, %.1f%% of the JSON file (the \
     paper reports ~30%% and ~2.5%%); materialized join sides add %d bytes@."
    (ratio (Proteus_cache.Manager.field_bytes_for mgr ~dataset:Symantec.csv_name)
       s.Symantec.csv_text)
    (ratio (Proteus_cache.Manager.field_bytes_for mgr ~dataset:Symantec.json_name)
       s.Symantec.json_text)
    (Proteus_cache.Manager.resident_bytes mgr
    - Proteus_cache.Manager.field_bytes_for mgr ~dataset:Symantec.csv_name
    - Proteus_cache.Manager.field_bytes_for mgr ~dataset:Symantec.json_name)
