(* TPC-H analytics across data representations: the same lineitem data as
   raw JSON, raw CSV, and binary columns, queried by the same plans — and a
   look at what per-query engine generation buys over interpretation.

   Run with: dune exec examples/tpch_analytics.exe *)

open Proteus_model
module Tpch = Proteus_tpch.Tpch

let time f =
  let t0 = Unix.gettimeofday () in
  let r = f () in
  (r, Unix.gettimeofday () -. t0)

let () =
  let sf = 0.002 in
  Fmt.pr "generating TPC-H data at SF %g ...@." sf;
  let d = Tpch.generate ~sf () in
  Fmt.pr "  %d orders, %d lineitems@.@." d.Tpch.order_count
    (List.length d.Tpch.lineitems);

  let db = Proteus.Db.create () in
  Proteus.Db.register_json db ~name:"lineitem_json" ~element:Tpch.lineitem_type
    ~contents:(Tpch.lineitem_json d);
  Proteus.Db.register_csv db ~name:"lineitem_csv" ~element:Tpch.lineitem_type
    ~contents:(Tpch.lineitem_csv d) ();
  Proteus.Db.register_columns db ~name:"lineitem_col" ~element:Tpch.lineitem_type
    (Tpch.lineitem_columns d);

  (* the same logical query over three physical representations *)
  Fmt.pr "Q: SELECT COUNT(*), MAX(l_quantity) FROM lineitem WHERE l_orderkey < 20%%@.";
  List.iter
    (fun ds ->
      let plan =
        Tpch.Queries.projection ~lineitem:ds ~order_count:d.Tpch.order_count
          ~variant:Tpch.Queries.Agg4 ~selectivity:0.2
      in
      (* first run is cold: it builds the structural index *)
      let r, cold = time (fun () -> Proteus.Db.run_plan db plan) in
      let _, warm = time (fun () -> Proteus.Db.run_plan db plan) in
      Fmt.pr "  %-14s cold %6.1f ms   warm %6.1f ms   -> %a@." ds (cold *. 1000.)
        (warm *. 1000.) Value.pp r)
    [ "lineitem_json"; "lineitem_csv"; "lineitem_col" ];

  (* engine ablation: the specialized engine vs the Volcano interpreter *)
  Fmt.pr "@.engine-per-query vs interpretation (binary columns, 50%% selectivity):@.";
  let plan =
    Tpch.Queries.projection ~lineitem:"lineitem_col" ~order_count:d.Tpch.order_count
      ~variant:Tpch.Queries.Count1 ~selectivity:0.5
  in
  List.iter
    (fun (name, engine) ->
      Proteus_engine.Counters.reset ();
      let _, secs = time (fun () -> Proteus.Db.run_plan ~engine db plan) in
      let c = Proteus_engine.Counters.snapshot () in
      Fmt.pr "  %-9s %6.1f ms   (%a)@." name (secs *. 1000.)
        Proteus_engine.Counters.pp c)
    [ ("compiled", Proteus.Db.Engine_compiled); ("volcano", Proteus.Db.Engine_volcano) ];

  (* group-by over the JSON representation *)
  let plan =
    Tpch.Queries.group_by ~lineitem:"lineitem_json" ~order_count:d.Tpch.order_count
      ~aggregates:3 ~selectivity:1.0
  in
  let rows, _ = time (fun () -> Proteus.Db.run_plan db plan) in
  Fmt.pr "@.per-linenumber aggregates over raw JSON:@.";
  List.iter (fun row -> Fmt.pr "  %a@." Value.pp row) (Value.elements rows)
