examples/quickstart.mli:
