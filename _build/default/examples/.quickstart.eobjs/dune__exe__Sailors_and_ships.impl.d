examples/sailors_and_ships.ml: Fmt List Proteus Proteus_algebra Proteus_model Ptype Value
