examples/tpch_analytics.ml: Fmt List Proteus Proteus_engine Proteus_model Proteus_tpch Unix Value
