examples/etl_pipeline.mli:
