examples/sailors_and_ships.mli:
