examples/etl_pipeline.ml: Fmt Proteus Proteus_model Ptype
