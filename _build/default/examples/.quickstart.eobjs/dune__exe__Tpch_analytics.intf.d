examples/tpch_analytics.mli:
