examples/quickstart.ml: Fmt List Proteus Proteus_model Ptype Value
