examples/spam_analysis.ml: Fmt List Proteus Proteus_cache Proteus_model Proteus_symantec String Unix Value
