examples/spam_analysis.mli:
