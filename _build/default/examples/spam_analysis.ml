(* A miniature of the Section 7.2 scenario: spam telemetry arriving as JSON
   batches, classifier output as CSV, history as a binary table — analyzed
   together in one session, with the adaptive caches doing their work across
   the query sequence.

   Run with: dune exec examples/spam_analysis.exe *)

open Proteus_model
module Symantec = Proteus_symantec.Symantec
module Manager = Proteus_cache.Manager

let time f =
  let t0 = Unix.gettimeofday () in
  let r = f () in
  (r, Unix.gettimeofday () -. t0)

let () =
  let params =
    { Symantec.default_params with json_objects = 1_000; csv_rows = 8_000; bin_rows = 12_000 }
  in
  let s = Symantec.generate ~params () in
  let db = Proteus.Db.create () in
  Proteus.Db.register_json db ~name:Symantec.json_name ~element:Symantec.json_type
    ~contents:s.Symantec.json_text;
  Proteus.Db.register_csv db ~name:Symantec.csv_name ~element:Symantec.csv_type
    ~contents:s.Symantec.csv_text ();
  Proteus.Db.register_rows db ~name:Symantec.bin_name ~element:Symantec.bin_type
    s.Symantec.bin_records;

  (* ad-hoc SQL over the heterogeneous session *)
  let busiest =
    Proteus.Db.sql db
      "SELECT src, COUNT(*) AS mails FROM spam_bin WHERE day < 25 GROUP BY src"
  in
  Fmt.pr "mails per source (first 25 days):@.";
  List.iter (fun r -> Fmt.pr "  %a@." Value.pp r) (Value.elements busiest);

  (* JSON + unnest: which advertised hosts get clicked *)
  let hot_urls =
    Proteus.Db.comprehension db
      "for { j <- spam_json, u <- j.urls, u.clicks > 10 } group by u.host as host \
       yield count(*) as hits, sum(u.clicks) as clicks"
  in
  Fmt.pr "@.hot advertised hosts:@.";
  List.iter (fun r -> Fmt.pr "  %a@." Value.pp r) (Value.elements hot_urls);

  (* cross-format 3-way join *)
  let cross =
    Proteus.Db.comprehension db
      "for { b <- spam_bin, c <- spam_csv, j <- spam_json, b.mid = c.mid, \
       b.mid = j.mid, j.score >= 0.8 } yield count(*) as hits, max(b.weight) as w"
  in
  Fmt.pr "@.high-score mails across all three datasets: %a@." Value.pp cross;

  (* the adaptive caching effect: re-running a JSON-heavy query hits the
     binary caches built as a side effect of the first run *)
  let q = "SELECT SUM(size), MAX(score) FROM spam_json WHERE day < 50" in
  let _, first = time (fun () -> Proteus.Db.sql db q) in
  let _, second = time (fun () -> Proteus.Db.sql db q) in
  let stats = Manager.stats (Proteus.Db.cache_manager db) in
  Fmt.pr "@.adaptive caching on %S:@." q;
  Fmt.pr "  first run  %6.2f ms (parses raw JSON, fills caches)@." (first *. 1000.);
  Fmt.pr "  second run %6.2f ms (reads binary cache columns)@." (second *. 1000.);
  Fmt.pr "  cache columns stored: %d, hits so far: %d@." stats.Manager.field_stores
    stats.Manager.field_hits;
  Fmt.pr "  resident cache bytes: %d (JSON file: %d bytes)@."
    (Manager.resident_bytes (Proteus.Db.cache_manager db))
    (String.length s.Symantec.json_text)
