(* Quickstart: one Proteus session over two heterogeneous files — a CSV of
   products and a JSON feed of reviews — queried together with plain SQL.

   Run with: dune exec examples/quickstart.exe *)

open Proteus_model

let products_csv =
  "1,keyboard,49.90\n\
   2,mouse,19.50\n\
   3,monitor,249.00\n\
   4,dock,129.99\n"

let reviews_json =
  {|{"product": 1, "stars": 5, "text": "clacky and great"}
{"product": 1, "stars": 4, "text": "solid"}
{"product": 2, "stars": 2, "text": "double clicks"}
{"product": 3, "stars": 5, "text": "crisp"}
{"product": 3, "stars": 3, "text": "dead pixel"}
{"product": 3, "stars": 4, "text": "good value"}|}

let () =
  let db = Proteus.Db.create () in
  (* Registration declares the element type; the data stays in its original
     format and is queried in place — no loading step. *)
  Proteus.Db.register_csv db ~name:"products"
    ~element:
      (Ptype.Record
         [ ("pid", Ptype.Int); ("pname", Ptype.String); ("price", Ptype.Float) ])
    ~contents:products_csv ();
  Proteus.Db.register_json db ~name:"reviews"
    ~element:
      (Ptype.Record
         [ ("product", Ptype.Int); ("stars", Ptype.Int); ("text", Ptype.String) ])
    ~contents:reviews_json;

  (* SQL over the CSV file *)
  let cheap = Proteus.Db.sql db "SELECT COUNT(*) FROM products WHERE price < 100" in
  Fmt.pr "products under 100: %a@." Value.pp cheap;

  (* SQL joining CSV with JSON — one engine, no integration layer *)
  let per_product =
    Proteus.Db.sql db
      "SELECT pname, COUNT(*) AS reviews, AVG(stars) AS avg_stars \
       FROM products p JOIN reviews r ON pid = product \
       GROUP BY pname ORDER BY avg_stars DESC"
  in
  Fmt.pr "review stats per product:@.";
  List.iter (fun row -> Fmt.pr "  %a@." Value.pp row) (Value.elements per_product);

  (* the same session also speaks the comprehension syntax *)
  let flagged =
    Proteus.Db.comprehension db
      "for { r <- reviews, r.stars <= 2 } yield bag (product: r.product, text: r.text)"
  in
  Fmt.pr "flagged reviews: %a@." Value.pp flagged
