(* An ETL-style pipeline: query heterogeneous raw inputs (JSON events +
   CSV reference data) and flush the result back out through the output
   plug-ins — as CSV for a spreadsheet, as JSON for the next service, as a
   table for the terminal.

   Run with: dune exec examples/etl_pipeline.exe *)

open Proteus_model

let events_json =
  {|{"device": "d1", "kind": "boot",  "ms": 120, "day": "2016-04-01"}
{"device": "d2", "kind": "boot",  "ms": 340, "day": "2016-04-01"}
{"device": "d1", "kind": "crash", "ms": 0,   "day": "2016-04-02"}
{"device": "d3", "kind": "boot",  "ms": 95,  "day": "2016-04-02"}
{"device": "d1", "kind": "boot",  "ms": 101, "day": "2016-04-03"}
{"device": "d3", "kind": "crash", "ms": 0,   "day": "2016-04-03"}|}

let devices_csv = "d1,lab-a,2015-11-20\nd2,lab-a,2016-01-05\nd3,field,2016-02-14\n"

let () =
  let db = Proteus.Db.create () in
  Proteus.Db.register_json db ~name:"events"
    ~element:
      (Ptype.Record
         [ ("device", Ptype.String); ("kind", Ptype.String); ("ms", Ptype.Int);
           ("day", Ptype.Date) ])
    ~contents:events_json;
  Proteus.Db.register_csv db ~name:"devices"
    ~element:
      (Ptype.Record
         [ ("dev", Ptype.String); ("site", Ptype.String); ("installed", Ptype.Date) ])
    ~contents:devices_csv ();

  (* transform: join, filter by date, aggregate, order *)
  let report =
    Proteus.Db.sql db
      "SELECT site, COUNT(*) AS events, SUM(ms) AS total_ms \
       FROM events e JOIN devices d ON device = dev \
       WHERE day >= DATE '2016-04-01' AND kind = 'boot' \
       GROUP BY site \
       ORDER BY total_ms DESC"
  in

  (* load: three output shapes from the same result *)
  Fmt.pr "--- terminal table ---@.%s@." (Proteus.Output.to_table report);
  Fmt.pr "--- csv ---@.%s@." (Proteus.Output.to_csv report);
  Fmt.pr "--- json lines ---@.%s@." (Proteus.Output.to_json report)
