(* The paper's running example (Example 3.1): sailors with nested children
   lists, ships with nested personnel lists, and the query "for each sailor,
   return his id, the name of the ship on which he works, and the names of
   his adult children" — expressed exactly in the paper's comprehension
   syntax and executed over raw JSON.

   Run with: dune exec examples/sailors_and_ships.exe *)

open Proteus_model

let sailors_json =
  {|{"id": 1, "children": [{"name": "ann", "age": 21}, {"name": "bob", "age": 12}]}
{"id": 2, "children": [{"name": "cat", "age": 30}]}
{"id": 3, "children": []}|}

let ships_json =
  {|{"name": "Argo", "personnel": [1, 3]}
{"name": "Beagle", "personnel": [2]}|}

let sailor_type =
  Ptype.Record
    [
      ("id", Ptype.Int);
      ( "children",
        Ptype.Collection
          (Ptype.List, Ptype.Record [ ("name", Ptype.String); ("age", Ptype.Int) ]) );
    ]

let ship_type =
  Ptype.Record
    [ ("name", Ptype.String); ("personnel", Ptype.Collection (Ptype.List, Ptype.Int)) ]

let () =
  let db = Proteus.Db.create () in
  Proteus.Db.register_json db ~name:"Sailor" ~element:sailor_type
    ~contents:sailors_json;
  Proteus.Db.register_json db ~name:"Ship" ~element:ship_type ~contents:ships_json;

  (* Example 3.1, verbatim modulo the record-constructor labels. The two
     nested collections become explicit Unnest operators in the plan
     (Figure 1 of the paper). *)
  let query =
    "for { s1 <- Sailor, c <- s1.children, s2 <- Ship, p <- s2.personnel, \
     s1.id = p, c.age > 18 } yield bag (id: s1.id, ship: s2.name, child: c.name)"
  in
  Fmt.pr "query: %s@.@." query;
  let plan = Proteus.Db.plan_comprehension db query in
  Fmt.pr "physical plan:@.%s@.@." (Proteus_algebra.Plan.to_string plan);
  let result = Proteus.Db.comprehension db query in
  Fmt.pr "result:@.";
  List.iter (fun row -> Fmt.pr "  %a@." Value.pp row) (Value.elements result)
