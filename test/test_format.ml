(* Tests for the raw-data access layer: CSV, JSON, structural indexes,
   binary JSON. *)

open Proteus_model
open Proteus_format

let check_value = Alcotest.testable Value.pp Value.equal

(* --- CSV ----------------------------------------------------------------- *)

let cfg = Csv.default_config

let schema =
  Schema.make [ ("a", Ptype.Int); ("b", Ptype.String); ("c", Ptype.Float) ]

let sample = "1,hello,2.5\n2,\"quo,ted\",3.0\n3,,4.25\n"

let test_csv_read_all () =
  let rows = Csv.read_all cfg schema sample in
  Alcotest.(check int) "rows" 3 (List.length rows);
  let r1 = List.nth rows 1 in
  Alcotest.check check_value "quoted field" (Value.String "quo,ted") (Value.field r1 "b");
  Alcotest.check check_value "float" (Value.Float 3.0) (Value.field r1 "c")

let test_csv_roundtrip () =
  let records = Csv.read_all cfg schema sample in
  let rendered = Csv.of_records cfg schema records in
  let records' = Csv.read_all cfg schema rendered in
  Alcotest.(check bool) "roundtrip" true (List.for_all2 Value.equal records records')

let test_csv_field_spans () =
  let start, stop, _ = Csv.row_bounds sample ~pos:0 in
  let spans = Csv.field_spans cfg sample ~start ~stop in
  Alcotest.(check int) "3 fields" 3 (List.length spans);
  let s, e = List.nth spans 1 in
  Alcotest.(check string) "middle span" "hello" (String.sub sample s (e - s))

let test_csv_empty_field_null () =
  let rows = Csv.read_all cfg (Schema.make [ ("a", Ptype.Int); ("b", Ptype.Option Ptype.String); ("c", Ptype.Float) ]) sample in
  Alcotest.check check_value "empty optional is null" Value.Null
    (Value.field (List.nth rows 2) "b")

let test_csv_header () =
  let cfg = { Csv.separator = ','; has_header = true } in
  let src = "a,b,c\n7,x,1.5\n" in
  let rows = Csv.read_all cfg schema src in
  Alcotest.(check int) "one data row" 1 (List.length rows);
  Alcotest.(check int) "count" 1 (Csv.row_count cfg src)

let test_csv_bad_int () =
  Alcotest.(check bool) "parse error" true
    (try
       ignore (Csv.parse_int "xx" ~start:0 ~stop:2);
       false
     with Perror.Parse_error _ -> true)

(* --- CSV structural index ------------------------------------------------ *)

let wide_row i =
  String.concat "," (List.init 12 (fun f -> string_of_int ((i * 100) + f)))

let wide_src = String.concat "\n" (List.init 20 wide_row) ^ "\n"

let test_csv_index_positions () =
  let idx = Csv_index.build cfg ~every:5 wide_src in
  Alcotest.(check int) "rows" 20 (Csv_index.row_count idx);
  Alcotest.(check int) "arity" 12 (Csv_index.arity idx);
  for row = 0 to 19 do
    for field = 0 to 11 do
      let s, e = Csv_index.field_span idx ~row ~field in
      Alcotest.(check string)
        (Fmt.str "field %d.%d" row field)
        (string_of_int ((row * 100) + field))
        (String.sub wide_src s (e - s))
    done
  done

let test_csv_index_fixed_width () =
  (* All rows identical length -> fixed-width fast path *)
  let src = "11,22,33\n44,55,66\n77,88,99\n" in
  let idx = Csv_index.build cfg src in
  Alcotest.(check bool) "fixed" true (Csv_index.is_fixed_width idx);
  let s, e = Csv_index.field_span idx ~row:2 ~field:1 in
  Alcotest.(check string) "field" "88" (String.sub src s (e - s))

let test_csv_index_variable_width () =
  let src = "1,2,3\n1000,2,3\n" in
  let idx = Csv_index.build cfg src in
  Alcotest.(check bool) "not fixed" false (Csv_index.is_fixed_width idx);
  let s, e = Csv_index.field_span idx ~row:1 ~field:0 in
  Alcotest.(check string) "field" "1000" (String.sub src s (e - s))

let test_csv_index_ragged_tolerated () =
  (* ragged rows no longer abort the index build: the index keeps the row's
     own anchors and reports the arity mismatch at access time, so per-query
     error policies can skip or null-fill the bad row *)
  let src = "1,2,3\n4,5\n6,7,8\n" in
  let idx = Csv_index.build cfg src in
  Alcotest.(check int) "nominal arity" 3 (Csv_index.arity idx);
  Alcotest.(check bool) "ragged breaks fixed width" false
    (Csv_index.is_fixed_width idx);
  Alcotest.(check int) "clean row arity" 3 (Csv_index.row_arity idx 0);
  Alcotest.(check int) "ragged row arity" 2 (Csv_index.row_arity idx 1);
  Alcotest.(check int) "recovers after ragged row" 3 (Csv_index.row_arity idx 2);
  let s, e = Csv_index.field_span idx ~row:2 ~field:2 in
  Alcotest.(check string) "field after ragged row" "8" (String.sub src s (e - s))

(* --- JSON ---------------------------------------------------------------- *)

let test_json_parse_basics () =
  let j = Json.parse_string {|{"a": 1, "b": [true, null, 2.5], "s": "x\ny"}|} in
  match j with
  | Json.Obj [ ("a", Json.Int 1); ("b", Json.Arr [ Json.Bool true; Json.Null; Json.Float 2.5 ]); ("s", Json.Str "x\ny") ] -> ()
  | _ -> Alcotest.failf "bad parse: %s" (Json.to_string j)

let test_json_roundtrip () =
  let texts =
    [
      {|{"a":1,"b":{"c":[1,2,3]},"d":"hi"}|};
      {|[{"x":-5},{"y":1e3}]|};
      {|{"esc":"a\"b\\c"}|};
    ]
  in
  List.iter
    (fun t ->
      let j = Json.parse_string t in
      let j' = Json.parse_string (Json.to_string j) in
      Alcotest.(check bool) t true (j = j'))
    texts

let test_json_seq () =
  let objs = Json.parse_seq "{\"a\":1}\n{\"a\":2}\n{\"a\":3}\n" in
  Alcotest.(check int) "3 objects" 3 (List.length objs)

let test_json_malformed () =
  List.iter
    (fun bad ->
      Alcotest.(check bool) bad true
        (try
           ignore (Json.parse_string bad);
           false
         with Perror.Parse_error _ -> true))
    [ "{"; "{\"a\":}"; "[1,]"; "tru"; "\"unterminated"; "{\"a\" 1}" ]

let test_json_value_conversion () =
  let v = Json.to_value (Json.parse_string {|{"a":1,"kids":[{"n":"x"}]}|}) in
  Alcotest.check check_value "nested" (Value.String "x")
    (Value.field (List.hd (Value.elements (Value.field v "kids"))) "n")

(* --- JSON structural index ----------------------------------------------- *)

let flexible_src =
  (* same fields, different order -> flexible schema *)
  {|{"a": 1, "b": "x", "c": {"d": {"d1": 10}}, "arr": [1,2,3]}
{"b": "y", "a": 2, "arr": [4], "c": {"d": {"d1": 20}}}
{"a": 3, "c": {"d": {"d1": 30}}, "b": "z", "arr": []}|}

let fixed_src =
  {|{"a": 1, "b": "x"}
{"a": 22, "b": "yy"}
{"a": 333, "b": "zzz"}|}

let test_json_index_basic () =
  let idx = Json_index.build flexible_src in
  Alcotest.(check int) "objects" 3 (Json_index.object_count idx);
  Alcotest.(check bool) "flexible" false (Json_index.is_fixed_schema idx);
  (* level-0 lookup despite field order differences *)
  List.iteri
    (fun i expect ->
      match Json_index.find idx ~obj:i ~path:"a" with
      | Some e -> Alcotest.(check int) "a value" expect (Json_index.read_int idx e)
      | None -> Alcotest.fail "field a not found")
    [ 1; 2; 3 ]

let test_json_index_nested_path () =
  let idx = Json_index.build flexible_src in
  (* nested record path registered in level 0 -> one-step dereference *)
  match Json_index.find idx ~obj:1 ~path:"c.d.d1" with
  | Some e -> Alcotest.(check int) "nested" 20 (Json_index.read_int idx e)
  | None -> Alcotest.fail "nested path missing"

let test_json_index_array_not_registered () =
  let idx = Json_index.build flexible_src in
  (* array contents are not level-0 entries, but the array itself is *)
  match Json_index.find idx ~obj:0 ~path:"arr" with
  | Some e ->
    Alcotest.(check bool) "is array" true (e.Json_index.kind = Json_index.Karr);
    let elems = Json_index.array_elements idx e in
    Alcotest.(check int) "3 elements" 3 (List.length elems);
    Alcotest.(check int) "first" 1 (Json_index.read_int idx (List.hd elems))
  | None -> Alcotest.fail "arr missing"

let test_json_index_fixed_schema () =
  let idx = Json_index.build fixed_src in
  Alcotest.(check bool) "fixed" true (Json_index.is_fixed_schema idx);
  (* slot resolution once, reuse across objects *)
  match Json_index.slot idx "b" with
  | Some slot ->
    let e = Json_index.entry_at idx ~obj:2 ~slot in
    Alcotest.(check string) "b of obj2" "zzz" (Json_index.read_string idx e)
  | None -> Alcotest.fail "no shared slot"

let test_json_index_missing_field () =
  let src = {|{"a":1}
{"a":2,"extra":7}|} in
  let idx = Json_index.build src in
  Alcotest.(check bool) "flexible" false (Json_index.is_fixed_schema idx);
  Alcotest.(check bool) "missing in obj0" true
    (Json_index.find idx ~obj:0 ~path:"extra" = None);
  match Json_index.find idx ~obj:1 ~path:"extra" with
  | Some e -> Alcotest.(check int) "present in obj1" 7 (Json_index.read_int idx e)
  | None -> Alcotest.fail "extra missing in obj1"

let test_json_index_find_in_span () =
  let src = {|{"items": [{"id": 1, "qty": 5}, {"id": 2, "qty": 7}]}|} in
  let idx = Json_index.build src in
  match Json_index.find idx ~obj:0 ~path:"items" with
  | None -> Alcotest.fail "items missing"
  | Some arr ->
    let elems = Json_index.array_elements idx arr in
    Alcotest.(check int) "2 elems" 2 (List.length elems);
    let e1 = List.nth elems 1 in
    (match
       Json_index.find_in_span idx ~start:e1.Json_index.start ~stop:e1.Json_index.stop
         ~path:"qty"
     with
    | Some q -> Alcotest.(check int) "qty" 7 (Json_index.read_int idx q)
    | None -> Alcotest.fail "qty not found in element span")

let test_json_index_find_in_span_escaped_names () =
  (* the raw-bytes name matcher must fall back to decoding for escaped
     field names *)
  let src = {|{"items": [{"a\"b": 7, "plain": 1}]}|} in
  let idx = Json_index.build src in
  match Json_index.find idx ~obj:0 ~path:"items" with
  | None -> Alcotest.fail "items missing"
  | Some arr -> (
    let e = List.hd (Json_index.array_elements idx arr) in
    (match
       Json_index.find_in_span idx ~start:e.Json_index.start ~stop:e.Json_index.stop
         ~path:{|a"b|}
     with
    | Some v -> Alcotest.(check int) "escaped name" 7 (Json_index.read_int idx v)
    | None -> Alcotest.fail "escaped name not found");
    match
      Json_index.find_in_span idx ~start:e.Json_index.start ~stop:e.Json_index.stop
        ~path:"plain"
    with
    | Some v -> Alcotest.(check int) "plain name" 1 (Json_index.read_int idx v)
    | None -> Alcotest.fail "plain name not found")

let test_json_index_name_prefix_not_matched () =
  (* "ab" must not match a field named "abc" and vice versa *)
  let src = {|{"arr": [{"ab": 1, "abc": 2, "a": 3}]}|} in
  let idx = Json_index.build src in
  match Json_index.find idx ~obj:0 ~path:"arr" with
  | None -> Alcotest.fail "arr missing"
  | Some arr ->
    let e = List.hd (Json_index.array_elements idx arr) in
    List.iter
      (fun (name, expect) ->
        match
          Json_index.find_in_span idx ~start:e.Json_index.start ~stop:e.Json_index.stop
            ~path:name
        with
        | Some v -> Alcotest.(check int) name expect (Json_index.read_int idx v)
        | None -> Alcotest.failf "%s not found" name)
      [ ("ab", 1); ("abc", 2); ("a", 3) ]

let test_json_index_read_value_matches_parser () =
  let idx = Json_index.build flexible_src in
  let parsed = List.map Json.to_value (Json.parse_seq flexible_src) in
  List.iteri
    (fun i expect ->
      let start, stop = Json_index.object_span idx i in
      let via_index =
        Json_index.read_value idx { Json_index.start; stop; kind = Json_index.Kobj }
      in
      Alcotest.check check_value "object roundtrip" expect via_index)
    parsed

let test_json_index_size_reported () =
  let idx = Json_index.build flexible_src in
  Alcotest.(check bool) "positive size" true (Json_index.byte_size idx > 0)

(* --- numeric span parsing -------------------------------------------------- *)

let numparse_matches_stdlib =
  (* the fast path must agree bit-for-bit with float_of_string *)
  let open QCheck2.Gen in
  let decimal_gen =
    let* sign = oneofl [ ""; "-" ] in
    let* whole = int_range 0 999_999_999 in
    let* frac_digits = int_range 0 6 in
    let* frac = int_range 0 999_999 in
    return
      (if frac_digits = 0 then Fmt.str "%s%d" sign whole
       else Fmt.str "%s%d.%0*d" sign whole frac_digits (frac mod (int_of_float (10. ** float_of_int frac_digits))))
  in
  QCheck2.Test.make ~name:"float_span == float_of_string" ~count:500 decimal_gen
    (fun s ->
      Float.equal
        (Numparse.float_span s ~start:0 ~stop:(String.length s))
        (float_of_string s))

let test_numparse_edges () =
  let f s = Numparse.float_span s ~start:0 ~stop:(String.length s) in
  Alcotest.(check (float 0.0)) "int form" 42.0 (f "42");
  Alcotest.(check (float 0.0)) "neg" (-3.25) (f "-3.25");
  Alcotest.(check (float 0.0)) "exp fallback" 1500.0 (f "1.5e3");
  Alcotest.(check (float 0.0)) "long digits fallback" 1.2345678901234567
    (f "1.2345678901234567");
  Alcotest.(check int) "int span" (-120) (Numparse.int_span "-120" ~start:0 ~stop:4);
  Alcotest.(check bool) "garbage rejected" true
    (try ignore (f "abc"); false with Perror.Parse_error _ -> true)

let test_numparse_exponents () =
  (* the trailing-exponent fast path must agree bit-for-bit with
     float_of_string, including where it has to give up and fall back *)
  let f s = Numparse.float_span s ~start:0 ~stop:(String.length s) in
  let same s =
    Alcotest.(check int64) s
      (Int64.bits_of_float (float_of_string s))
      (Int64.bits_of_float (f s))
  in
  List.iter same
    [
      (* fast path: |net scale| <= 15 *)
      "1e5"; "1E5"; "-7e3"; "+2e+4"; "1.5e3"; "-3.25e2"; "2.5e-3"; "1e-15";
      "123456789012345e15"; "0.5e1"; "9.75E-2"; "1e0"; "0e7"; "12.e2";
      (* net scale straddling zero: 3 frac digits, e2 -> divide by ten *)
      "1.234e2"; "1.234e3"; "1.234e4";
      (* fallback: scale or mantissa out of the exact-power window *)
      "1e16"; "1e-16"; "2e308"; "3e-320"; "1e9999"; "1e-9999";
      "1.2345678901234567e5"; "1e00000000016";
      (* exponent after a pure fraction and leading-dot forms *)
      ".5e2"; "0.000001e6";
    ];
  (* malformed exponents keep float_of_string's failure behaviour *)
  List.iter
    (fun s ->
      Alcotest.(check bool) (s ^ " rejected") true
        (try ignore (f s); false with Failure _ -> true))
    [ "1e"; "1e+"; "1e-"; "1e5x" ]

(* --- Binary JSON --------------------------------------------------------- *)

let binjson_roundtrip_texts =
  [
    {|{"a":1,"b":[1,2,{"c":true}],"d":null,"e":"str"}|};
    {|{"nested":{"deep":{"deeper":[1.5,-2]}}}|};
    {|[]|};
    {|{"empty":{},"earr":[]}|};
  ]

let test_binjson_roundtrip () =
  List.iter
    (fun t ->
      let j = Json.parse_string t in
      let j' = Binjson.decode (Binjson.encode j) in
      Alcotest.(check bool) t true (j = j'))
    binjson_roundtrip_texts

let test_binjson_path_access () =
  let j = Json.parse_string {|{"a": {"b": 42}, "s": "hi", "f": 1.5}|} in
  let bin = Binjson.encode j in
  (match Binjson.find_path bin 0 "a.b" with
  | Some off -> Alcotest.(check int) "a.b" 42 (Binjson.read_int bin off)
  | None -> Alcotest.fail "a.b not found");
  (match Binjson.find_path bin 0 "s" with
  | Some off -> Alcotest.(check string) "s" "hi" (Binjson.read_string bin off)
  | None -> Alcotest.fail "s not found");
  Alcotest.(check bool) "missing path" true (Binjson.find_path bin 0 "a.z" = None)

let test_binjson_array_offsets () =
  let bin = Binjson.encode (Json.parse_string "[10,20,30]") in
  let offs = Binjson.array_offsets bin 0 in
  Alcotest.(check (list int)) "values" [ 10; 20; 30 ]
    (List.map (Binjson.read_int bin) offs)

let test_binjson_value_at () =
  let j = Json.parse_string {|{"a":[1,{"b":"x"}]}|} in
  let bin = Binjson.encode j in
  Alcotest.check check_value "boxed" (Json.to_value j) (Binjson.value_at bin 0)

let json_gen : Json.t QCheck2.Gen.t =
  let open QCheck2.Gen in
  sized @@ fix (fun self n ->
    let base =
      oneof
        [
          return Json.Null;
          map (fun b -> Json.Bool b) bool;
          map (fun i -> Json.Int i) small_signed_int;
          map (fun s -> Json.Str s) (small_string ~gen:(char_range 'a' 'z'));
        ]
    in
    if n <= 0 then base
    else
      frequency
        [
          (3, base);
          ( 1,
            map
              (fun vs -> Json.Obj (List.mapi (fun i v -> (Fmt.str "k%d" i, v)) vs))
              (list_size (int_range 0 4) (self (n / 2))) );
          (1, map (fun vs -> Json.Arr vs) (list_size (int_range 0 4) (self (n / 2))));
        ])

let json_roundtrip_prop =
  QCheck2.Test.make ~name:"json print/parse roundtrip" ~count:300 json_gen (fun j ->
      Json.parse_string (Json.to_string j) = j)

let binjson_roundtrip_prop =
  QCheck2.Test.make ~name:"binjson encode/decode roundtrip" ~count:300 json_gen
    (fun j -> Binjson.decode (Binjson.encode j) = j)

let json_index_agrees_prop =
  (* For any list of generated objects, reading each whole object via the
     structural index equals the reference parser's result. *)
  let open QCheck2.Gen in
  let obj_gen =
    map
      (fun vs -> Json.Obj (List.mapi (fun i v -> (Fmt.str "k%d" i, v)) vs))
      (list_size (int_range 1 5) json_gen)
  in
  QCheck2.Test.make ~name:"structural index agrees with parser" ~count:100
    (list_size (int_range 1 8) obj_gen) (fun objs ->
      let src = String.concat "\n" (List.map Json.to_string objs) in
      let idx = Json_index.build src in
      Json_index.object_count idx = List.length objs
      && List.for_all2
           (fun j i ->
             let start, stop = Json_index.object_span idx i in
             Value.equal (Json.to_value j)
               (Json_index.read_value idx
                  { Json_index.start; stop; kind = Json_index.Kobj }))
           objs
           (List.init (List.length objs) Fun.id))

let qsuite tests = List.map QCheck_alcotest.to_alcotest tests

let () =
  Alcotest.run "format"
    [
      ( "csv",
        [
          Alcotest.test_case "read_all" `Quick test_csv_read_all;
          Alcotest.test_case "roundtrip" `Quick test_csv_roundtrip;
          Alcotest.test_case "field spans" `Quick test_csv_field_spans;
          Alcotest.test_case "empty optional" `Quick test_csv_empty_field_null;
          Alcotest.test_case "header" `Quick test_csv_header;
          Alcotest.test_case "bad int" `Quick test_csv_bad_int;
        ] );
      ( "csv-index",
        [
          Alcotest.test_case "all positions" `Quick test_csv_index_positions;
          Alcotest.test_case "fixed width" `Quick test_csv_index_fixed_width;
          Alcotest.test_case "variable width" `Quick test_csv_index_variable_width;
          Alcotest.test_case "ragged tolerated" `Quick test_csv_index_ragged_tolerated;
        ] );
      ( "json",
        [
          Alcotest.test_case "parse basics" `Quick test_json_parse_basics;
          Alcotest.test_case "roundtrip" `Quick test_json_roundtrip;
          Alcotest.test_case "sequence" `Quick test_json_seq;
          Alcotest.test_case "malformed" `Quick test_json_malformed;
          Alcotest.test_case "to_value" `Quick test_json_value_conversion;
        ]
        @ qsuite [ json_roundtrip_prop ] );
      ( "json-index",
        [
          Alcotest.test_case "basic lookup" `Quick test_json_index_basic;
          Alcotest.test_case "nested path" `Quick test_json_index_nested_path;
          Alcotest.test_case "arrays" `Quick test_json_index_array_not_registered;
          Alcotest.test_case "fixed schema" `Quick test_json_index_fixed_schema;
          Alcotest.test_case "missing field" `Quick test_json_index_missing_field;
          Alcotest.test_case "find in span" `Quick test_json_index_find_in_span;
          Alcotest.test_case "escaped names in span" `Quick
            test_json_index_find_in_span_escaped_names;
          Alcotest.test_case "no prefix matches" `Quick
            test_json_index_name_prefix_not_matched;
          Alcotest.test_case "read_value vs parser" `Quick
            test_json_index_read_value_matches_parser;
          Alcotest.test_case "size reported" `Quick test_json_index_size_reported;
        ]
        @ qsuite [ json_index_agrees_prop ] );
      ( "numparse",
        [
          Alcotest.test_case "edge cases" `Quick test_numparse_edges;
          Alcotest.test_case "trailing exponents" `Quick test_numparse_exponents;
        ]
        @ qsuite [ numparse_matches_stdlib ] );
      ( "binjson",
        [
          Alcotest.test_case "roundtrip" `Quick test_binjson_roundtrip;
          Alcotest.test_case "path access" `Quick test_binjson_path_access;
          Alcotest.test_case "array offsets" `Quick test_binjson_array_offsets;
          Alcotest.test_case "value_at" `Quick test_binjson_value_at;
        ]
        @ qsuite [ binjson_roundtrip_prop ] );
    ]
