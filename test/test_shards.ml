(* Sharded scatter-gather execution (DESIGN.md section 14).

   A shard set must be bit-identical to a single file holding the same rows
   — at every domain count and batch size, cold and warm, in every format —
   because the concatenated view enumerates rows in member order under the
   unchanged morsel grid. On top of that, shards whose zone-map/Bloom
   digests prove a pushed-down conjunct or join-key set empty are pruned
   before dispatch (visible in [Counters.shards_pruned], never in results),
   and a member whose index build fails is retried once and then handled by
   the active error policy. *)

open Proteus_model
module Plan = Proteus_algebra.Plan
module Db = Proteus.Db
module Registry = Proteus_plugin.Registry
module Counters = Proteus_engine.Counters

let check_value = Alcotest.testable Value.pp Value.equal

(* --- data ------------------------------------------------------------------ *)

(* 800 rows; quarter-step floats survive the CSV/JSON decimal round-trip
   bit-exactly, so the same oracle serves all four formats *)
let item_type =
  Ptype.Record
    [ ("k", Ptype.Int); ("grp", Ptype.Int); ("price", Ptype.Float);
      ("name", Ptype.String) ]

let items =
  List.init 800 (fun i ->
      Value.record
        [ ("k", Value.Int i); ("grp", Value.Int (i mod 7));
          ("price", Value.Float (float_of_int ((i * 37) mod 1000) /. 4.0));
          ("name", Value.String (Fmt.str "n%d" (i mod 13))) ])

let to_csv records =
  Proteus_format.Csv.of_records Proteus_format.Csv.default_config
    (Schema.of_type item_type) records

let to_json records =
  String.concat "\n"
    (List.map
       (fun r -> Proteus_format.Json.to_string (Proteus_format.Json.of_value r))
       records)
  ^ "\n"

(* contiguous n-way split, order preserved *)
let chunk n l =
  let len = List.length l in
  let base = len / n and extra = len mod n in
  let rec take k acc l =
    if k = 0 then (List.rev acc, l)
    else match l with [] -> (List.rev acc, []) | x :: r -> take (k - 1) (x :: acc) r
  in
  let rec go i l =
    if i = n then []
    else
      let sz = base + if i < extra then 1 else 0 in
      let part, rest = take sz [] l in
      part :: go (i + 1) rest
  in
  go 0 l

let make_db ?(shards = 4) () =
  let db = Db.create () in
  let parts = chunk shards items in
  Db.register_csv db ~name:"single_csv" ~element:item_type ~contents:(to_csv items) ();
  Db.register_sharded_csv db ~name:"sh_csv" ~element:item_type
    ~shards:(List.map to_csv parts) ();
  Db.register_json db ~name:"single_json" ~element:item_type ~contents:(to_json items);
  Db.register_sharded_json db ~name:"sh_json" ~element:item_type
    ~shards:(List.map to_json parts);
  Db.register_rows db ~name:"single_row" ~element:item_type items;
  Db.register_sharded_rows db ~name:"sh_row" ~element:item_type ~shards items;
  Db.register_columns_of db ~name:"single_col" ~element:item_type items;
  List.iteri
    (fun i part ->
      Db.register_columns_of db ~name:(Fmt.str "sh_col__s%d" i) ~element:item_type part)
    parts;
  Db.register_shard_set db ~name:"sh_col"
    ~members:(List.init shards (fun i -> Fmt.str "sh_col__s%d" i));
  db

let formats =
  [ ("csv", "single_csv", "sh_csv"); ("json", "single_json", "sh_json");
    ("row", "single_row", "sh_row"); ("col", "single_col", "sh_col") ]

(* --- plans ----------------------------------------------------------------- *)

let fld x n = Expr.Field (Expr.var x, n)
let count = Plan.agg ~name:"c" (Monoid.Primitive Monoid.Count) (Expr.int 1)

let agg_plan ds =
  Plan.reduce
    ~pred:Expr.(fld "x" "k" <. int 650)
    [ count;
      Plan.agg ~name:"sp" (Monoid.Primitive Monoid.Sum) (fld "x" "price");
      Plan.agg ~name:"sk" (Monoid.Primitive Monoid.Sum) (fld "x" "k");
      Plan.agg ~name:"mx" (Monoid.Primitive Monoid.Max) (fld "x" "price");
      Plan.agg ~name:"mn" (Monoid.Primitive Monoid.Min) (fld "x" "k") ]
    (Plan.scan ~dataset:ds ~binding:"x" ())

let group_plan ds =
  Plan.nest
    ~pred:Expr.(fld "x" "k" <. int 700)
    ~keys:[ ("grp", fld "x" "grp") ]
    ~aggs:
      [ count; Plan.agg ~name:"sp" (Monoid.Primitive Monoid.Sum) (fld "x" "price") ]
    ~binding:"g"
    (Plan.scan ~dataset:ds ~binding:"x" ())

let sort_bag v =
  match v with
  | Value.Coll (Ptype.Bag, es) -> Value.Coll (Ptype.Bag, List.sort Value.compare es)
  | v -> v

(* --- bit-identity: sharded == single file, every lane ---------------------- *)

(* Two passes per configuration: the first runs cold (and fills caches),
   the second reads cached columns — both must agree with the single-file
   run of the same configuration. *)
let test_bit_identity () =
  let db = make_db () in
  List.iter
    (fun (fmt, single, sh) ->
      List.iter
        (fun domains ->
          List.iter
            (fun batch_size ->
              let tag p = Fmt.str "%s d=%d b=%d %s" fmt domains batch_size p in
              for pass = 1 to 2 do
                let one = Db.run_plan ~domains ~batch_size db (agg_plan single) in
                let many = Db.run_plan ~domains ~batch_size db (agg_plan sh) in
                Alcotest.check check_value
                  (tag (Fmt.str "agg pass %d" pass))
                  one many;
                let og = Db.run_plan ~domains ~batch_size db (group_plan single) in
                let sg = Db.run_plan ~domains ~batch_size db (group_plan sh) in
                Alcotest.check check_value
                  (tag (Fmt.str "group pass %d" pass))
                  (sort_bag og) (sort_bag sg)
              done)
            [ 0; 256; 1024 ])
        [ 1; 2; 4 ])
    formats

(* domain-count determinism of the sharded run itself: 2 == 4 domains,
   bit-for-bit, on a float sum (exposes merge-order changes) *)
let test_domain_determinism () =
  let db = make_db ~shards:5 () in
  let p2 = Db.run_plan ~domains:2 db (agg_plan "sh_csv") in
  let p4 = Db.run_plan ~domains:4 db (agg_plan "sh_csv") in
  Alcotest.check check_value "2 == 4 domains" p2 p4

(* --- pruning --------------------------------------------------------------- *)

let count_plan ?(pred = Expr.bool true) ds =
  Plan.reduce ~pred [ count ] (Plan.scan ~dataset:ds ~binding:"x" ())

let pruned_run ?domains ?batch_size db plan =
  Counters.reset ();
  let v = Db.run_plan ?domains ?batch_size db plan in
  (v, (Counters.snapshot ()).Counters.shards_pruned)

(* clustered keys over 8 shards: a selective range predicate must prune the
   shards whose [min,max] cannot overlap it *)
let test_prune_clustered () =
  let db = Db.create () in
  Db.set_caching db false;
  Db.register_rows db ~name:"single" ~element:item_type items;
  Db.register_sharded_rows db ~name:"sh8" ~element:item_type ~shards:8 items;
  let pred = Expr.(fld "x" "k" <. int 100) in
  let expected = Db.run_plan db (count_plan ~pred "single") in
  let got, pruned = pruned_run db (count_plan ~pred "sh8") in
  Alcotest.check check_value "clustered result" expected got;
  Alcotest.(check int) "clustered shards pruned" 7 pruned;
  (* equality on a key present in exactly one shard: range + Bloom *)
  let pred = Expr.(fld "x" "k" ==. int 400) in
  let expected = Db.run_plan db (count_plan ~pred "single") in
  let got, pruned = pruned_run db (count_plan ~pred "sh8") in
  Alcotest.check check_value "point result" expected got;
  Alcotest.(check int) "point shards pruned" 7 pruned;
  (* parallel lane prunes the same shards *)
  let got, pruned = pruned_run ~domains:3 db (count_plan ~pred "sh8") in
  Alcotest.check check_value "point result (parallel)" expected got;
  Alcotest.(check int) "point shards pruned (parallel)" 7 pruned

(* scrambled keys: every shard spans the whole domain, so nothing is
   provably empty — pruning must stand down, results stay equal *)
let test_prune_scrambled () =
  let db = Db.create () in
  Db.set_caching db false;
  let scrambled =
    (* deterministic scatter: stride coprime with 800 *)
    List.init 800 (fun i -> List.nth items (i * 389 mod 800))
  in
  Db.register_rows db ~name:"single" ~element:item_type scrambled;
  Db.register_sharded_rows db ~name:"sh8" ~element:item_type ~shards:8 scrambled;
  let pred = Expr.(fld "x" "k" <. int 100) in
  let expected = Db.run_plan db (count_plan ~pred "single") in
  let got, pruned = pruned_run db (count_plan ~pred "sh8") in
  Alcotest.check check_value "scrambled result" expected got;
  Alcotest.(check int) "scrambled shards pruned" 0 pruned

(* an all-null key shard satisfies no comparison (Expr.cmp: Null -> false):
   its digest has no non-null values, so every test prunes it *)
let test_prune_all_null () =
  let nullable_type =
    Ptype.Record [ ("k", Ptype.Option Ptype.Int); ("v", Ptype.Int) ]
  in
  let mk k v =
    Value.record [ ("k", k); ("v", Value.Int v) ]
  in
  let good = List.init 100 (fun i -> mk (Value.Int i) i) in
  let nulls = List.init 50 (fun i -> mk Value.Null (1000 + i)) in
  let all = good @ nulls in
  let db = Db.create () in
  Db.set_caching db false;
  Db.register_rows db ~name:"single" ~element:nullable_type all;
  Db.register_rows db ~name:"m0" ~element:nullable_type good;
  Db.register_rows db ~name:"m1" ~element:nullable_type nulls;
  Db.register_shard_set db ~name:"sh2" ~members:[ "m0"; "m1" ];
  let pred = Expr.(fld "x" "k" <. int 1000) in
  let expected = Db.run_plan db (count_plan ~pred "single") in
  let got, pruned = pruned_run db (count_plan ~pred "sh2") in
  Alcotest.check check_value "all-null result" expected got;
  Alcotest.(check int) "all-null shard pruned" 1 pruned

(* join-key pruning: the build side's key set bounds which probe shards can
   produce matches (parallel lane — join arms after builds publish keys) *)
let test_prune_join_keys () =
  let db = Db.create () in
  Db.set_caching db false;
  Db.register_rows db ~name:"single" ~element:item_type items;
  Db.register_sharded_rows db ~name:"sh8" ~element:item_type ~shards:8 items;
  let gtype = Ptype.Record [ ("gid", Ptype.Int); ("w", Ptype.Int) ] in
  let gs =
    List.init 10 (fun i ->
        Value.record [ ("gid", Value.Int (110 + i)); ("w", Value.Int i) ])
  in
  Db.register_rows db ~name:"build" ~element:gtype gs;
  let join ds =
    Plan.reduce [ count ]
      (Plan.join
         ~pred:Expr.(fld "x" "k" ==. fld "g" "gid")
         (Plan.scan ~dataset:ds ~binding:"x" ())
         (Plan.scan ~dataset:"build" ~binding:"g" ()))
  in
  let expected = Db.run_plan ~domains:2 db (join "single") in
  Counters.reset ();
  let got = Db.run_plan ~domains:2 db (join "sh8") in
  let pruned = (Counters.snapshot ()).Counters.shards_pruned in
  Alcotest.check check_value "join result" expected got;
  (* build keys 110..119 live in shard 1 of 8 (rows 100..199) *)
  Alcotest.(check int) "join shards pruned" 7 pruned

(* --- empty shards ---------------------------------------------------------- *)

let test_empty_shards () =
  let db = make_db () in
  let parts = chunk 3 items in
  let shards =
    match List.map to_csv parts with
    | [ a; b; c ] -> [ ""; a; ""; b; c; "" ]
    | _ -> assert false
  in
  Db.register_sharded_csv db ~name:"sh_holes" ~element:item_type ~shards ();
  List.iter
    (fun domains ->
      let one = Db.run_plan ~domains db (group_plan "single_csv") in
      let many = Db.run_plan ~domains db (group_plan "sh_holes") in
      Alcotest.check check_value
        (Fmt.str "empty shards d=%d" domains)
        (sort_bag one) (sort_bag many))
    [ 1; 4 ]

(* --- failed shards --------------------------------------------------------- *)

let small_type = Ptype.Record [ ("k", Ptype.Int) ]

let small_json lo hi =
  String.concat "" (List.init (hi - lo) (fun i -> Fmt.str "{\"k\": %d}\n" (lo + i)))

let make_bad_db () =
  let db = Db.create () in
  Db.register_json db ~name:"m0" ~element:small_type ~contents:(small_json 0 40);
  (* truncated object: the structural index build fails recoverably *)
  Db.register_json db ~name:"m1" ~element:small_type ~contents:"{\"k\": 40";
  Db.register_json db ~name:"m2" ~element:small_type ~contents:(small_json 50 90);
  Db.register_shard_set db ~name:"shbad" ~members:[ "m0"; "m1"; "m2" ];
  db

let completed = function
  | Db.Completed (v, r) -> (v, r)
  | Db.Failed (_, e) -> Alcotest.failf "unexpected failure: %a" Perror.pp_exn e
  | Db.Timed_out _ -> Alcotest.fail "unexpected timeout"
  | Db.Cancelled _ -> Alcotest.fail "unexpected cancel"

let test_failed_shard_fail_fast () =
  let db = make_bad_db () in
  match Db.run_plan_guarded ~policy:Fault.Fail_fast db (count_plan "shbad") with
  | Db.Failed (_, Perror.Parse_error _) -> ()
  | Db.Failed (_, e) -> Alcotest.failf "wrong error: %a" Perror.pp_exn e
  | _ -> Alcotest.fail "fail-fast over a broken shard must fail"

let test_failed_shard_skip () =
  let db = make_bad_db () in
  let v, report =
    completed (Db.run_plan_guarded ~policy:Fault.Skip_row db (count_plan "shbad"))
  in
  (* the broken member degrades to an empty shard; the healthy ones scan *)
  Alcotest.check check_value "skip count" (Value.Int 80) v;
  Alcotest.(check bool) "skip recorded" true (report.Fault.rp_skipped >= 1)

let test_failed_shard_heal () =
  let db = make_bad_db () in
  (match Db.run_plan_guarded ~policy:Fault.Fail_fast db (count_plan "shbad") with
  | Db.Failed _ -> ()
  | _ -> Alcotest.fail "broken shard should fail first");
  (* re-registering the member invalidates the parent (failures are never
     memoized), so the same query now sees all 90 rows *)
  Db.register_json db ~name:"m1" ~element:small_type ~contents:(small_json 40 50);
  let v = Db.run_plan db (count_plan "shbad") in
  Alcotest.check check_value "healed count" (Value.Int 90) v

(* a member whose build fails ONCE is retried within the same query: the
   wrapper fails on its first parent-build invocation, the retry takes the
   genuine factory, and the query completes with zero skips *)
let test_failed_shard_retry () =
  let db = Db.create () in
  Db.register_json db ~name:"m0" ~element:small_type ~contents:(small_json 0 40);
  Db.register_json db ~name:"m2" ~element:small_type ~contents:(small_json 50 90);
  Db.register_shard_set db ~name:"shflaky" ~members:[ "m0"; "m2" ];
  let reg = Db.registry db in
  let genuine = Registry.factory reg "m0" in
  let calls = ref 0 in
  (* install_factory invokes once eagerly (calls=1); the parent's first
     build is the second call and fails; the retry after [invalidate]
     drops this wrapper and rebuilds genuinely *)
  Registry.install_factory reg "m0" (fun () ->
      incr calls;
      if !calls = 2 then
        raise (Perror.Parse_error { what = "json:m0"; pos = 0; msg = "flaky" })
      else genuine ());
  let v, report =
    completed (Db.run_plan_guarded ~policy:Fault.Fail_fast db (count_plan "shflaky"))
  in
  Alcotest.check check_value "retried count" (Value.Int 80) v;
  Alcotest.(check int) "wrapper called twice" 2 !calls;
  Alcotest.(check int) "no skips" 0 report.Fault.rp_skipped

(* --- layout/API surface ---------------------------------------------------- *)

let test_shard_api () =
  let db = make_db ~shards:4 () in
  let reg = Db.registry db in
  (match Registry.shards reg "sh_csv" with
  | None -> Alcotest.fail "sh_csv should expose a layout"
  | Some layout ->
    Alcotest.(check int) "4 shards" 4 (Array.length layout);
    Alcotest.(check int) "total rows" 800
      (Array.fold_left (fun a s -> a + s.Registry.sh_rows) 0 layout);
    Alcotest.(check int) "offsets contiguous" 600 layout.(3).Registry.sh_offset);
  Alcotest.(check bool) "plain dataset has no layout" true
    (Registry.shards reg "single_csv" = None);
  Alcotest.(check bool) "parents" true
    (Registry.shard_parents reg "sh_csv__s1" = [ "sh_csv" ]);
  Db.add_shard db ~name:"sh_csv" ~member:"sh_csv__s0";
  (match Registry.shards reg "sh_csv" with
  | Some layout ->
    Alcotest.(check int) "5 shards after add" 5 (Array.length layout);
    Alcotest.(check int) "appended rows" 1000
      (Array.fold_left (fun a s -> a + s.Registry.sh_rows) 0 layout)
  | None -> Alcotest.fail "layout lost after add_shard");
  (* the duplicated first shard really scans twice *)
  let v = Db.run_plan db (count_plan "sh_csv") in
  Alcotest.check check_value "dup count" (Value.Int 1000) v

let () =
  Alcotest.run "shards"
    [
      ( "identity",
        [
          Alcotest.test_case "sharded == single, all formats/domains/batches"
            `Slow test_bit_identity;
          Alcotest.test_case "domain determinism" `Quick test_domain_determinism;
          Alcotest.test_case "empty shards" `Quick test_empty_shards;
        ] );
      ( "pruning",
        [
          Alcotest.test_case "clustered keys prune" `Quick test_prune_clustered;
          Alcotest.test_case "scrambled keys do not prune" `Quick test_prune_scrambled;
          Alcotest.test_case "all-null key shard prunes" `Quick test_prune_all_null;
          Alcotest.test_case "join-key pruning" `Quick test_prune_join_keys;
        ] );
      ( "faults",
        [
          Alcotest.test_case "fail-fast propagates" `Quick test_failed_shard_fail_fast;
          Alcotest.test_case "skip degrades to empty shard" `Quick test_failed_shard_skip;
          Alcotest.test_case "reregistration heals" `Quick test_failed_shard_heal;
          Alcotest.test_case "transient build failure retries" `Quick
            test_failed_shard_retry;
        ] );
      ("api", [ Alcotest.test_case "layout and add_shard" `Quick test_shard_api ]);
    ]
