(* Fault-tolerant execution: differential tests for the per-query error
   policies, error budgets, deadlines, cache quarantine and the
   error-report machinery.

   The core property: [Skip_row] over a deterministically corrupted file
   must be bit-identical to a clean run over the valid subset — at every
   engine configuration (serial / tuple lane / batch lanes / Volcano /
   2 and 4 domains) — and must produce the same structured error report
   (counts, first samples with byte positions, per-source breakdown)
   everywhere. *)

open Proteus_model
open Proteus_engine
module Db = Proteus.Db
module Manager = Proteus_cache.Manager
module Binjson = Proteus_format.Binjson
module Json = Proteus_format.Json

let check_value = Alcotest.testable Value.pp Value.equal

let sort_bag v =
  match v with
  | Value.Coll (Ptype.Bag, es) -> Value.Coll (Ptype.Bag, List.sort Value.compare es)
  | v -> v

(* --- fixtures ------------------------------------------------------------ *)

let n_rows = 600
let pick i = i mod 7 = 3
let n_picked = List.length (List.filter pick (List.init n_rows Fun.id)) (* 86 *)

let item_ty =
  Ptype.Record
    [ ("k", Ptype.Int); ("grp", Ptype.Int); ("price", Ptype.Float);
      ("name", Ptype.String) ]

(* quarter-step prices are dyadic rationals: every partial sum is exact, so
   value comparisons across engines and domain counts are bit-identity *)
let price_str i = Fmt.str "%.12g" (float_of_int ((i * 37) mod 1000) /. 4.0)
let csv_line i = Fmt.str "%d,%d,%s,n%d" i (i mod 7) (price_str i) (i mod 13)

let json_line i =
  Fmt.str "{\"k\":%d,\"grp\":%d,\"price\":%s,\"name\":\"n%d\"}" i (i mod 7)
    (price_str i) (i mod 13)

let csv_all = String.concat "\n" (List.init n_rows csv_line) ^ "\n"
let json_all = String.concat "\n" (List.init n_rows json_line)

let valid_subset line_of =
  List.init n_rows Fun.id
  |> List.filter (fun i -> not (pick i))
  |> List.map line_of |> String.concat "\n"

let csv_valid = valid_subset csv_line ^ "\n"
let json_valid = valid_subset json_line

(* picked rows: field "k" garbled — 'x' first byte in CSV, a float-shaped
   token in JSON — so the structural indexes still build and the damage
   surfaces at access time with a byte position *)
let csv_corrupt = Faultgen.garble_csv_field ~field:0 ~pick csv_all
let json_corrupt = Faultgen.garble_json_number ~key:"k" ~pick json_all

(* price garbled instead: the Null_fill fixtures *)
let csv_corrupt_price = Faultgen.garble_csv_field ~field:2 ~pick csv_all

let db_csv contents () =
  let db = Db.create () in
  Db.register_csv db ~name:"items" ~element:item_ty ~contents ();
  db

let db_json contents () =
  let db = Db.create () in
  Db.register_json db ~name:"items" ~element:item_ty ~contents;
  db

(* byte offset where line [i] of [src] starts (rows are lines here) *)
let line_start src i =
  let rec go pos = function
    | 0 -> pos
    | k -> go (String.index_from src pos '\n' + 1) (k - 1)
  in
  go 0 i

let agg_q = "SELECT COUNT(*) AS c, SUM(price) AS s FROM items WHERE k >= 0"
let grp_q = "SELECT grp, SUM(price) AS s FROM items WHERE k >= 0 GROUP BY grp"

(* --- engine configurations ---------------------------------------------- *)

let cfgs =
  [ ("serial", Db.Engine_compiled, None);
    ("tuple", Db.Engine_compiled, Some 0);
    ("batch256", Db.Engine_compiled, Some 256);
    ("batch1024", Db.Engine_compiled, Some 1024);
    ("volcano", Db.Engine_volcano, None);
    ("par2", Db.Engine_parallel 2, None);
    ("par4", Db.Engine_parallel 4, None);
    ("par4b256", Db.Engine_parallel 4, Some 256) ]

let guarded ?policy ?max_errors ?timeout_ms (_, engine, batch) mk q =
  Db.sql_guarded ~engine ?batch_size:batch ?policy ?max_errors ?timeout_ms (mk ()) q

let completed name = function
  | Db.Completed (v, r) -> (v, r)
  | Db.Failed (_, e) -> Alcotest.failf "%s: unexpectedly failed: %a" name Perror.pp_exn e
  | Db.Timed_out _ -> Alcotest.failf "%s: unexpectedly timed out" name
  | Db.Cancelled _ -> Alcotest.failf "%s: unexpectedly cancelled" name

let digest_counts (r : Fault.report) =
  Fmt.str "errors=%d skipped=%d nulled=%d by_source=[%a]" r.Fault.rp_errors
    r.Fault.rp_skipped r.Fault.rp_nulled
    Fmt.(list ~sep:comma (pair ~sep:(any ":") string int))
    r.Fault.rp_by_source

let digest (r : Fault.report) =
  Fmt.str "%s samples=[%a]" (digest_counts r)
    Fmt.(
      list ~sep:comma (fun ppf s ->
          pf ppf "%s#%d@%d" s.Fault.sm_source s.Fault.sm_row s.Fault.sm_pos))
    r.Fault.rp_samples

(* --- Skip_row differential: corrupt run == clean run over valid subset -- *)

let check_skip_differential mk_corrupt mk_valid corrupt_src () =
  let expected_agg, expected_grp =
    let db = mk_valid () in
    (sort_bag (Db.sql db agg_q), sort_bag (Db.sql db grp_q))
  in
  let base_agg = ref None and base_grp = ref None in
  List.iter
    (fun ((name, _, _) as cfg) ->
      let v1, r1 = completed name (guarded ~policy:Fault.Skip_row cfg mk_corrupt agg_q) in
      let v2, r2 = completed name (guarded ~policy:Fault.Skip_row cfg mk_corrupt grp_q) in
      Alcotest.check check_value (name ^ " agg value") expected_agg (sort_bag v1);
      Alcotest.check check_value (name ^ " grp value") expected_grp (sort_bag v2);
      Alcotest.(check int) (name ^ " errors") n_picked r1.Fault.rp_errors;
      Alcotest.(check int) (name ^ " skipped") n_picked r1.Fault.rp_skipped;
      Alcotest.(check int) (name ^ " nulled") 0 r1.Fault.rp_nulled;
      (* positioned samples: first faulty row is row 3, and the recorded
         byte offset lands inside that row's span of the corrupt input *)
      (match r1.Fault.rp_samples with
      | s :: _ ->
        Alcotest.(check string) (name ^ " sample source") "items" s.Fault.sm_source;
        Alcotest.(check int) (name ^ " sample row") 3 s.Fault.sm_row;
        let lo = line_start corrupt_src 3 and hi = line_start corrupt_src 4 in
        if not (s.Fault.sm_pos >= lo && s.Fault.sm_pos < hi) then
          Alcotest.failf "%s: sample pos %d outside row 3 span [%d,%d)" name
            s.Fault.sm_pos lo hi
      | [] -> Alcotest.failf "%s: no error samples" name);
      (* deterministic reports: the full digest (including sample order and
         positions) must match the serial engine's at every configuration;
         the grouped query checks counts and per-source breakdown *)
      (match !base_agg with
      | None -> base_agg := Some (digest r1)
      | Some d -> Alcotest.(check string) (name ^ " agg report") d (digest r1));
      match !base_grp with
      | None -> base_grp := Some (digest_counts r2)
      | Some d -> Alcotest.(check string) (name ^ " grp report") d (digest_counts r2))
    cfgs

let test_skip_csv () = check_skip_differential (db_csv csv_corrupt) (db_csv csv_valid) csv_corrupt ()
let test_skip_json () =
  check_skip_differential (db_json json_corrupt) (db_json json_valid) json_corrupt ()

(* CSV error positions are exact: the garbled 'x' is the first byte of
   field 0, so the sample position equals the row start. *)
let test_csv_error_position () =
  let _, r =
    completed "serial"
      (guarded ~policy:Fault.Skip_row (List.hd cfgs) (db_csv csv_corrupt) agg_q)
  in
  match r.Fault.rp_samples with
  | s :: _ ->
    Alcotest.(check int) "pos = row 3 start" (line_start csv_corrupt 3) s.Fault.sm_pos
  | [] -> Alcotest.fail "no samples"

(* --- Null_fill: unreadable fields become Null; SUM ignores them --------- *)

let check_null_fill mk_corrupt mk_valid q () =
  let expected = sort_bag (Db.sql (mk_valid ()) q) in
  List.iter
    (fun ((name, _, _) as cfg) ->
      let v, r = completed name (guarded ~policy:Fault.Null_fill cfg mk_corrupt q) in
      Alcotest.check check_value (name ^ " value") expected (sort_bag v);
      Alcotest.(check int) (name ^ " nulled") n_picked r.Fault.rp_nulled;
      Alcotest.(check int) (name ^ " errors") n_picked r.Fault.rp_errors;
      Alcotest.(check int) (name ^ " skipped") 0 r.Fault.rp_skipped)
    cfgs

let test_null_fill_csv () =
  check_null_fill (db_csv csv_corrupt_price) (db_csv csv_valid)
    "SELECT SUM(price) AS s FROM items" ()

let test_null_fill_json () =
  check_null_fill (db_json json_corrupt) (db_json json_valid)
    "SELECT SUM(k) AS s FROM items" ()

(* --- Fail_fast (the default) keeps today's semantics --------------------- *)

let test_fail_fast_default () =
  (* clean input: guarded run is exactly the plain run plus an empty report *)
  let plain = Db.sql (db_csv csv_valid ()) agg_q in
  let v, r = completed "clean" (Db.sql_guarded (db_csv csv_valid ()) agg_q) in
  Alcotest.check check_value "clean value" plain v;
  Alcotest.(check int) "clean errors" 0 r.Fault.rp_errors;
  (* corrupt input: plain raises, guarded returns Failed with the same error *)
  (match Db.sql (db_csv csv_corrupt ()) agg_q with
  | _ -> Alcotest.fail "plain run over corrupt input should raise"
  | exception Perror.Parse_error _ -> ());
  match Db.sql_guarded (db_csv csv_corrupt ()) agg_q with
  | Db.Failed (_, Perror.Parse_error _) -> ()
  | _ -> Alcotest.fail "guarded Fail_fast should report Failed (Parse_error)"

(* --- error budget and deadline ------------------------------------------ *)

let test_error_budget () =
  (match Db.sql_guarded ~policy:Fault.Skip_row ~max_errors:3 (db_csv csv_corrupt ()) agg_q with
  | Db.Failed (r, Fault.Budget_exceeded n) ->
    Alcotest.(check bool) "budget count" true (n > 3);
    Alcotest.(check bool) "errors recorded" true (r.Fault.rp_errors > 3)
  | _ -> Alcotest.fail "expected Failed (Budget_exceeded)");
  (* a budget of n_picked absorbs the whole file *)
  match Db.sql_guarded ~policy:Fault.Skip_row ~max_errors:n_picked (db_csv csv_corrupt ()) agg_q with
  | Db.Completed (_, r) -> Alcotest.(check int) "at budget" n_picked r.Fault.rp_errors
  | _ -> Alcotest.fail "budget of n_picked should complete"

let test_deadline () =
  List.iter
    (fun ((name, _, _) as cfg) ->
      match guarded ~timeout_ms:0 cfg (db_csv csv_valid) agg_q with
      | Db.Timed_out _ -> ()
      | _ -> Alcotest.failf "%s: expected Timed_out under a 0ms deadline" name)
    [ List.hd cfgs; ("par4", Db.Engine_parallel 4, None) ]

(* --- cache quarantine ----------------------------------------------------- *)

let test_cache_quarantine () =
  let db = db_csv csv_corrupt () in
  let m = Db.cache_manager db in
  let _, r = completed "skip" (Db.sql_guarded ~policy:Fault.Skip_row db agg_q) in
  Alcotest.(check int) "errors" n_picked r.Fault.rp_errors;
  let s = Manager.stats m in
  Alcotest.(check bool) "fills quarantined" true (s.Manager.quarantined > 0);
  Alcotest.(check int) "no field caches installed" 0 s.Manager.field_stores;
  Alcotest.(check int) "no select caches installed" 0 s.Manager.select_stores;
  (* a later clean query in the same session fills caches normally *)
  Db.register_csv db ~name:"clean" ~element:item_ty ~contents:csv_valid ();
  let q = "SELECT COUNT(*) AS c, SUM(price) AS s FROM clean WHERE k >= 0" in
  let v1 = Db.sql db q in
  let s1 = Manager.stats m in
  Alcotest.(check bool) "clean query fills" true (s1.Manager.field_stores > 0);
  let v2 = Db.sql db q in
  let s2 = Manager.stats m in
  Alcotest.(check bool) "re-run hits" true (s2.Manager.field_hits > s1.Manager.field_hits);
  Alcotest.check check_value "cached value identical" v1 v2

(* --- Counters mirror the fault totals ------------------------------------ *)

let test_counters () =
  List.iter
    (fun domains ->
      List.iter
        (fun batch ->
          let name = Fmt.str "d%d/b%d" domains batch in
          let engine =
            if domains = 1 then Db.Engine_compiled else Db.Engine_parallel domains
          in
          Counters.reset ();
          let _ =
            completed name
              (Db.sql_guarded ~engine ~batch_size:batch ~policy:Fault.Skip_row
                 (db_csv csv_corrupt ()) agg_q)
          in
          let s = Counters.snapshot () in
          Alcotest.(check int) (name ^ " errors_seen") n_picked s.Counters.errors_seen;
          Alcotest.(check int) (name ^ " rows_skipped") n_picked s.Counters.rows_skipped;
          Alcotest.(check int) (name ^ " fields_nulled") 0 s.Counters.fields_nulled)
        [ 0; 1024 ])
    [ 1; 2; 4 ]

(* --- CSV edge cases ------------------------------------------------------ *)

let two_ty = Ptype.Record [ ("a", Ptype.Int); ("b", Ptype.Int) ]

let db_two contents =
  let db = Db.create () in
  Db.register_csv db ~name:"t" ~element:two_ty ~contents ();
  db

let sum_b db = Db.sql db "SELECT SUM(b) AS s FROM t"

let test_csv_trailing_forms () =
  (* CRLF line endings, a final row without a trailing newline, and a UTF-8
     BOM on the header all decode to the same table *)
  let expected = sum_b (db_two "1,2\n3,4\n") in
  Alcotest.check check_value "crlf" expected (sum_b (db_two "1,2\r\n3,4\r\n"));
  Alcotest.check check_value "no trailing newline" expected (sum_b (db_two "1,2\n3,4"));
  let db = Db.create () in
  let ty = Db.register_csv_inferred db ~name:"t" ~contents:"\xEF\xBB\xBFa,b\n1,2\n3,4\n" () in
  (match ty with
  | Ptype.Record (("a", Ptype.Int) :: _) -> ()
  | t -> Alcotest.failf "BOM header mis-inferred: %a" Ptype.pp t);
  Alcotest.check check_value "bom header" expected (sum_b db)

let test_csv_ragged_rows () =
  let base = "1,2\n3,4\n5,6\n" in
  let extra = Faultgen.add_csv_field ~pick:(fun i -> i = 1) base in
  let missing = Faultgen.drop_csv_last_field ~pick:(fun i -> i = 1) base in
  (* surplus fields: plain reads of the declared columns are unaffected *)
  Alcotest.check check_value "extra tolerated" (sum_b (db_two base)) (sum_b (db_two extra));
  (* missing fields: plain reads raise *)
  (match sum_b (db_two missing) with
  | _ -> Alcotest.fail "short row should raise on plain read"
  | exception Perror.Parse_error _ -> ());
  (* both shapes are flagged, positioned and skippable under the policy *)
  List.iter
    (fun (what, contents, lo) ->
      match
        Db.sql_guarded ~policy:Fault.Skip_row (db_two contents) "SELECT SUM(b) AS s FROM t"
      with
      | Db.Completed (v, r) ->
        Alcotest.check check_value (what ^ " skip value")
          (sum_b (db_two "1,2\n5,6\n")) v;
        Alcotest.(check int) (what ^ " skipped") 1 r.Fault.rp_skipped;
        (match r.Fault.rp_samples with
        | s :: _ ->
          Alcotest.(check int) (what ^ " sample row") 1 s.Fault.sm_row;
          Alcotest.(check int) (what ^ " sample pos") lo s.Fault.sm_pos
        | [] -> Alcotest.fail (what ^ ": no samples"))
      | _ -> Alcotest.fail (what ^ ": expected Completed"))
    [ ("extra", extra, 4); ("missing", missing, 4) ]

(* --- graceful limits ------------------------------------------------------ *)

let test_json_path_limit () =
  let b = Buffer.create (1 lsl 20) in
  Buffer.add_char b '{';
  for i = 0 to 65600 do
    if i > 0 then Buffer.add_char b ',';
    Buffer.add_string b (Fmt.str "\"f%d\":1" i)
  done;
  Buffer.add_char b '}';
  let db = Db.create () in
  Db.register_json db ~name:"wide" ~element:(Ptype.Record [ ("f0", Ptype.Int) ])
    ~contents:(Buffer.contents b);
  match Db.sql db "SELECT COUNT(*) FROM wide" with
  | _ -> Alcotest.fail "65536-path JSON should abort"
  | exception Perror.Unsupported m ->
    let has sub =
      let n = String.length sub and h = String.length m in
      let rec go i = i + n <= h && (String.sub m i n = sub || go (i + 1)) in
      go 0
    in
    (* paths are interned in sorted order, so the named path is the 65537th
       lexicographically — what matters is that one is named at all *)
    if not (has "first overflowing path: \"f") then
      Alcotest.failf "missing offending path: %s" m;
    if not (has "dataset wide") then Alcotest.failf "missing source dataset: %s" m

let test_binjson_bad_tag () =
  let s = Binjson.encode (Json.Obj [ ("a", Json.Int 7) ]) in
  (match Binjson.decode (Faultgen.flip_byte ~at:0 s) with
  | _ -> Alcotest.fail "flipped root tag should raise"
  | exception Perror.Parse_error { what; pos; _ } ->
    Alcotest.(check string) "what" "binjson" what;
    Alcotest.(check int) "pos" 0 pos);
  match Binjson.find_field s 0 "a" with
  | None -> Alcotest.fail "field a not found"
  | Some off -> (
    match Binjson.read_int (Faultgen.flip_byte ~at:off s) off with
    | _ -> Alcotest.fail "flipped value tag should raise"
    | exception Perror.Parse_error { what; pos; _ } ->
      Alcotest.(check string) "inner what" "binjson" what;
      Alcotest.(check int) "inner pos" off pos)

let () =
  Alcotest.run "fault"
    [
      ( "policies",
        [
          Alcotest.test_case "skip differential (csv)" `Slow test_skip_csv;
          Alcotest.test_case "skip differential (json)" `Slow test_skip_json;
          Alcotest.test_case "csv error position" `Quick test_csv_error_position;
          Alcotest.test_case "null fill (csv)" `Slow test_null_fill_csv;
          Alcotest.test_case "null fill (json)" `Slow test_null_fill_json;
          Alcotest.test_case "fail fast default" `Quick test_fail_fast_default;
        ] );
      ( "limits",
        [
          Alcotest.test_case "error budget" `Quick test_error_budget;
          Alcotest.test_case "deadline" `Quick test_deadline;
          Alcotest.test_case "json path limit" `Quick test_json_path_limit;
          Alcotest.test_case "binjson bad tag" `Quick test_binjson_bad_tag;
        ] );
      ( "integration",
        [
          Alcotest.test_case "cache quarantine" `Quick test_cache_quarantine;
          Alcotest.test_case "counters" `Slow test_counters;
          Alcotest.test_case "csv trailing forms" `Quick test_csv_trailing_forms;
          Alcotest.test_case "csv ragged rows" `Quick test_csv_ragged_rows;
        ] );
    ]
