(* Differential tests for workload-adaptive cache promotion: zone-map morsel
   skipping and dictionary-encoded string caches must be invisible in results
   — promotion on/off, any domain count, any batch size, any format — while
   observably skipping work on clustered selective scans. *)

open Proteus_model
open Proteus_catalog
open Proteus_plugin
open Proteus_cache
open Proteus_storage
module Plan = Proteus_algebra.Plan
module Executor = Proteus_engine.Executor
module Counters = Proteus_engine.Counters

let check_value = Alcotest.testable Value.pp Value.equal

let n_rows = 4000

let item_type =
  Ptype.Record
    [ ("k", Ptype.Int); ("u", Ptype.Int); ("v", Ptype.Float); ("s", Ptype.String) ]

let item_schema = Schema.of_type item_type

(* k is sorted (clustered: zone maps differentiate); u is the same domain
   scrambled by a Knuth-style multiplicative hash (zones all span nearly the
   full range: skipping must stand down, results must not change). *)
let items =
  List.init n_rows (fun i ->
      Value.record
        [ ("k", Value.Int i);
          ("u", Value.Int (i * 2654435761 mod n_rows));
          ("v", Value.Float (float_of_int i *. 0.5));
          ("s", Value.String (Fmt.str "str%d" (i mod 97))) ])

let null_type = Ptype.Record [ ("k", Ptype.Int); ("m", Ptype.Option Ptype.Int) ]

let nulls =
  List.init 500 (fun i ->
      Value.record [ ("k", Value.Int i); ("m", Value.Null) ])

let to_json records =
  String.concat "\n"
    (List.map
       (fun r -> Proteus_format.Json.to_string (Proteus_format.Json.of_value r))
       records)

let formats = [ "pcsv"; "pjson"; "prow"; "pcol" ]

let make_session ?cache_budget ?config () =
  let cat = Catalog.create ?cache_budget () in
  let mem = Catalog.memory cat in
  Memory.register_blob mem ~name:"p.csv"
    (Proteus_format.Csv.of_records Proteus_format.Csv.default_config item_schema
       items);
  Catalog.register cat
    (Dataset.make ~name:"pcsv"
       ~format:(Dataset.Csv Proteus_format.Csv.default_config)
       ~location:(Dataset.Blob "p.csv") ~element:item_type);
  Memory.register_blob mem ~name:"p.json" (to_json items);
  Catalog.register cat
    (Dataset.make ~name:"pjson" ~format:Dataset.Json
       ~location:(Dataset.Blob "p.json") ~element:item_type);
  Catalog.register cat
    (Dataset.make ~name:"prow" ~format:Dataset.Binary_row
       ~location:(Dataset.Rows (Rowpage.of_records item_schema items))
       ~element:item_type);
  let col name ty =
    (name, Column.of_values ty (List.map (fun r -> Value.field r name) items))
  in
  Catalog.register cat
    (Dataset.make ~name:"pcol" ~format:Dataset.Binary_column
       ~location:
         (Dataset.Columns
            [ col "k" Ptype.Int; col "u" Ptype.Int; col "v" Ptype.Float;
              col "s" Ptype.String ])
       ~element:item_type);
  Memory.register_blob mem ~name:"pnull.json" (to_json nulls);
  Catalog.register cat
    (Dataset.make ~name:"pnull" ~format:Dataset.Json
       ~location:(Dataset.Blob "pnull.json") ~element:null_type);
  let mgr = Manager.create ?config cat in
  let reg = Registry.create ~cache:(Manager.iface mgr) cat in
  (mgr, reg)

let promote_config =
  { Manager.default_config with promote = true; promote_threshold = 2 }

let agg_count = Plan.agg ~name:"c" (Monoid.Primitive Monoid.Count) (Expr.int 1)

let count ~pred ds =
  Plan.reduce ~pred [ agg_count ] (Plan.scan ~dataset:ds ~binding:"x" ())

let x field = Expr.(Field (var "x", field))

(* The query mix: selective range on the clustered column, range on the
   scrambled column, a wider range summing a second column, and string
   equality / LIKE (the dictionary lane). *)
let plans ds =
  [ ("k<40", count ~pred:Expr.(x "k" <. int 40) ds);
    ("u<40", count ~pred:Expr.(x "u" <. int 40) ds);
    ( "sum v | k<200",
      Plan.reduce
        ~pred:Expr.(x "k" <. int 200)
        [ Plan.agg ~name:"s" (Monoid.Primitive Monoid.Sum) (x "v") ]
        (Plan.scan ~dataset:ds ~binding:"x" ()) );
    ("s=str7", count ~pred:Expr.(x "s" ==. str "str7") ds);
    ("s like", count ~pred:Expr.(Binop (Like, x "s", str "str1%")) ds) ]

(* --- bit-identity: promotion on/off x domains x batch sizes x formats ----- *)

let test_differential () =
  (* reference: caching disabled entirely, serial tuple lane *)
  let _, reg_ref = make_session ~config:Manager.config_disabled () in
  let reference ds =
    List.map
      (fun (name, p) ->
        (name, Executor.run ~batch_size:0 reg_ref ~engine:Executor.Engine_compiled p))
      (plans ds)
  in
  let engines = [ ("d1", 1); ("d2", 2); ("d4", 4) ] in
  let batches = [ 0; 256; 1024 ] in
  List.iter
    (fun ds ->
      let expected = reference ds in
      List.iter
        (fun (cfg_name, config) ->
          let _, reg = make_session ~config () in
          (* several passes so caches fill, columns cross the promotion
             threshold, and zone maps / dictionaries engage mid-matrix *)
          for pass = 1 to 4 do
            List.iter
              (fun (ename, domains) ->
                List.iter
                  (fun bs ->
                    List.iter2
                      (fun (pname, p) (_, want) ->
                        let got =
                          Executor.run ~batch_size:bs reg
                            ~engine:(Executor.Engine_parallel domains) p
                        in
                        Alcotest.check check_value
                          (Fmt.str "%s/%s pass%d %s bs=%d %s" ds cfg_name pass
                             ename bs pname)
                          want got)
                      (plans ds) expected)
                  batches)
              engines
          done)
        [ ("off", Manager.default_config); ("on", promote_config) ])
    formats

(* --- zone-map skipping: clustered, scrambled, all-null ------------------- *)

(* Warm the cache and cross the promotion threshold, then measure one run. *)
let warm_then_measure reg ~runs plan ~engine ~batch_size =
  for _ = 1 to runs do
    ignore (Executor.run ~batch_size reg ~engine:Executor.Engine_compiled plan)
  done;
  Counters.reset ();
  let r = Executor.run ~batch_size reg ~engine plan in
  (r, Counters.snapshot ())

let test_zone_skip_clustered () =
  let mgr, reg = make_session ~config:promote_config () in
  let plan = count ~pred:Expr.(x "k" <. int 40) "pcsv" in
  let r, s =
    warm_then_measure reg ~runs:4 plan ~engine:(Executor.Engine_parallel 4)
      ~batch_size:1024
  in
  Alcotest.check check_value "clustered count" (Value.Int 40) r;
  Alcotest.(check bool) "column promoted" true
    (Manager.is_promoted mgr ~dataset:"pcsv" ~path:"k");
  Alcotest.(check bool) "zone map exists" true
    (Manager.lookup_zones mgr ~dataset:"pcsv" ~path:"k" <> None);
  Alcotest.(check bool)
    (Fmt.str "skips most morsels (skipped=%d dispensed=%d)" s.Counters.morsels_skipped
       s.Counters.morsels)
    true
    (s.Counters.morsels_skipped >= s.Counters.morsels);
  Alcotest.(check bool) "zone tests ran" true (s.Counters.zone_checks > 0)

let test_zone_skip_serial_batches () =
  let _, reg = make_session ~config:promote_config () in
  let plan = count ~pred:Expr.(x "k" <. int 40) "pjson" in
  let r, s =
    warm_then_measure reg ~runs:4 plan ~engine:Executor.Engine_compiled
      ~batch_size:256
  in
  Alcotest.check check_value "serial count" (Value.Int 40) r;
  (* 4000 rows / 256 per batch = 16 batches; only the first can contain k<40 *)
  Alcotest.(check bool)
    (Fmt.str "batch-granularity skip (skipped=%d)" s.Counters.morsels_skipped)
    true
    (s.Counters.morsels_skipped >= 8)

let test_zone_skip_scrambled () =
  let _, reg = make_session ~config:promote_config () in
  let plan = count ~pred:Expr.(x "u" <. int 40) "pcsv" in
  let r, _ =
    warm_then_measure reg ~runs:4 plan ~engine:(Executor.Engine_parallel 4)
      ~batch_size:1024
  in
  (* u is a permutation of 0..n-1, so the count matches the clustered one;
     zones span nearly the whole domain and may not skip anything — the
     result is the only contract *)
  Alcotest.check check_value "scrambled count" (Value.Int 40) r

let test_zone_skip_all_null () =
  let mgr, reg = make_session ~config:promote_config () in
  let plan = count ~pred:Expr.(x "m" <. int 5) "pnull" in
  let r, s =
    warm_then_measure reg ~runs:4 plan ~engine:(Executor.Engine_parallel 2)
      ~batch_size:1024
  in
  (* Null < 5 is false for every row; all-null zones prove it wholesale *)
  Alcotest.check check_value "all-null count" (Value.Int 0) r;
  Alcotest.(check bool) "null column promoted" true
    (Manager.is_promoted mgr ~dataset:"pnull" ~path:"m");
  Alcotest.(check bool)
    (Fmt.str "all-null zones skip everything (skipped=%d dispensed=%d)"
       s.Counters.morsels_skipped s.Counters.morsels)
    true
    (s.Counters.morsels_skipped > 0 && s.Counters.morsels = 0)

(* --- dictionary-encoded string caches ------------------------------------ *)

let test_dict_parity () =
  let mgr, reg = make_session ~config:promote_config () in
  let eq_plan = count ~pred:Expr.(x "s" ==. str "str7") "pjson" in
  let like_plan = count ~pred:Expr.(Binop (Like, x "s", str "str1%")) "pjson" in
  let expected_eq =
    Value.Int (List.length (List.filter (fun r ->
        Value.equal (Value.field r "s") (Value.String "str7")) items))
  in
  let expected_like =
    Value.Int (List.length (List.filter (fun r ->
        match Value.field r "s" with
        | Value.String s -> Expr.like ~pattern:"str1%" s
        | _ -> false) items))
  in
  let r_eq, s_eq =
    warm_then_measure reg ~runs:4 eq_plan ~engine:Executor.Engine_compiled
      ~batch_size:1024
  in
  let r_like, s_like =
    warm_then_measure reg ~runs:4 like_plan ~engine:Executor.Engine_compiled
      ~batch_size:1024
  in
  Alcotest.check check_value "dict equality" expected_eq r_eq;
  Alcotest.check check_value "dict like" expected_like r_like;
  Alcotest.(check bool) "string column stored as dictionary" true
    ((Manager.stats mgr).Manager.dict_columns >= 1);
  Alcotest.(check bool) "equality ran on codes" true (s_eq.Counters.dict_probes > 0);
  Alcotest.(check bool) "like ran on codes" true (s_like.Counters.dict_probes > 0);
  (* an absent constant short-circuits to all-false, never a wrong row *)
  Alcotest.check check_value "absent constant"
    (Value.Int 0)
    (Executor.run reg ~engine:Executor.Engine_compiled
       (count ~pred:Expr.(x "s" ==. str "no-such") "pjson"));
  (* parallel + small batches agree with the decoded-string path *)
  Alcotest.check check_value "dict parallel parity" expected_like
    (Executor.run ~batch_size:256 reg ~engine:(Executor.Engine_parallel 4) like_plan)

(* --- eviction of a promoted column falls back cleanly --------------------- *)

let test_evicted_promoted_falls_back () =
  (* arena too small for every column: promoted blocks get evicted and the
     scans must fall back to raw re-parsing without corruption *)
  let mgr, reg =
    make_session ~cache_budget:40_000 ~config:promote_config ()
  in
  let qk = count ~pred:Expr.(x "k" <. int 40) "pjson" in
  let qv =
    Plan.reduce
      ~pred:Expr.(x "k" <. int 200)
      [ Plan.agg ~name:"s" (Monoid.Primitive Monoid.Sum) (x "v") ]
      (Plan.scan ~dataset:"pjson" ~binding:"x" ())
  in
  let qs = count ~pred:Expr.(x "s" ==. str "str7") "pjson" in
  let want_v =
    Executor.run reg ~engine:Executor.Engine_compiled qv
  in
  for _ = 1 to 5 do
    Alcotest.check check_value "k stable under churn" (Value.Int 40)
      (Executor.run reg ~engine:Executor.Engine_compiled qk);
    Alcotest.check check_value "v stable under churn" want_v
      (Executor.run reg ~engine:Executor.Engine_compiled qv);
    ignore (Executor.run reg ~engine:Executor.Engine_compiled qs)
  done;
  (* explicit invalidation drops zone maps with their blocks *)
  Manager.invalidate_dataset mgr ~dataset:"pjson";
  Alcotest.(check bool) "zones dropped with blocks" true
    (Manager.lookup_zones mgr ~dataset:"pjson" ~path:"k" = None);
  Alcotest.check check_value "requery after invalidate" (Value.Int 40)
    (Executor.run reg ~engine:Executor.Engine_compiled qk)

(* --- promotion bookkeeping ------------------------------------------------ *)

let test_promotion_stats () =
  let mgr, reg = make_session ~config:promote_config () in
  let plan = count ~pred:Expr.(x "k" <. int 40) "pcsv" in
  for _ = 1 to 4 do
    ignore (Executor.run reg ~engine:Executor.Engine_compiled plan)
  done;
  let s = Manager.stats mgr in
  Alcotest.(check bool) "promotion recorded" true (s.Manager.promotions >= 1);
  Alcotest.(check bool) "zone maps recorded" true (s.Manager.zone_maps >= 1);
  (* default config never promotes *)
  let mgr0, reg0 = make_session () in
  for _ = 1 to 4 do
    ignore (Executor.run reg0 ~engine:Executor.Engine_compiled plan)
  done;
  let s0 = Manager.stats mgr0 in
  Alcotest.(check int) "no promotions when off" 0 s0.Manager.promotions;
  Alcotest.(check bool) "not promoted when off" false
    (Manager.is_promoted mgr0 ~dataset:"pcsv" ~path:"k")

let () =
  Alcotest.run "promotion"
    [
      ( "differential",
        [ Alcotest.test_case "promotion x domains x batch x format" `Slow
            test_differential ] );
      ( "zones",
        [
          Alcotest.test_case "clustered skips" `Quick test_zone_skip_clustered;
          Alcotest.test_case "serial batch skips" `Quick test_zone_skip_serial_batches;
          Alcotest.test_case "scrambled exact" `Quick test_zone_skip_scrambled;
          Alcotest.test_case "all-null skips everything" `Quick test_zone_skip_all_null;
        ] );
      ( "dictionary",
        [ Alcotest.test_case "code-compare parity" `Quick test_dict_parity ] );
      ( "fallback",
        [
          Alcotest.test_case "eviction falls back" `Quick
            test_evicted_promoted_falls_back;
          Alcotest.test_case "stats surface" `Quick test_promotion_stats;
        ] );
    ]
