(* Differential tests for adaptive storage 2.0: sorted projections, pre-parsed
   JSON slot columns and join-side Bloom pruning must be invisible in results —
   any domain count, any batch size, any format — while observably skipping
   morsels/batches where plain zone maps cannot.

   The data shape is adversarial for zone maps: [u] follows the OID order
   except that every zone gets a planted 0 and a planted (n-1), so every
   per-zone [min,max] spans the whole domain and min/max pruning is powerless,
   while a BETWEEN predicate's qualifying rows still cluster into one or two
   zones that only the value-ordered projection can isolate. *)

open Proteus_model
open Proteus_catalog
open Proteus_plugin
open Proteus_cache
open Proteus_storage
module Plan = Proteus_algebra.Plan
module Executor = Proteus_engine.Executor
module Counters = Proteus_engine.Counters

let check_value = Alcotest.testable Value.pp Value.equal

let n_rows = 4000

let item_type =
  Ptype.Record
    [ ("k", Ptype.Int); ("u", Ptype.Int); ("v", Ptype.Float); ("s", Ptype.String) ]

let item_schema = Schema.of_type item_type

(* u = i, except every 50th row is an outlier pinned to the domain edge: with
   a 62-row zone granule every zone sees both 0 and n-1. s is clustered in
   runs of 400 (the dictionary zone-map lane). *)
let u_of i = if i mod 50 = 0 then 0 else if i mod 50 = 25 then n_rows - 1 else i

let items =
  List.init n_rows (fun i ->
      Value.record
        [ ("k", Value.Int i);
          ("u", Value.Int (u_of i));
          ("v", Value.Float (float_of_int i *. 0.5));
          ("s", Value.String (Fmt.str "g%d" (i / 400))) ])

(* Mixed nulls: every third m is Null, every fifth t is Null; the survivors
   stay clustered so Nullmask projections and Nullmask(Dicts) zone maps can
   still prune. *)
let mix_type =
  Ptype.Record
    [ ("k", Ptype.Int);
      ("m", Ptype.Option Ptype.Int);
      ("t", Ptype.Option Ptype.String) ]

let n_mix = 1000

let mixes =
  List.init n_mix (fun i ->
      Value.record
        [ ("k", Value.Int i);
          ("m", (if i mod 3 = 0 then Value.Null else Value.Int i));
          ( "t",
            if i mod 5 = 0 then Value.Null
            else Value.String (Fmt.str "h%d" (i / 100)) ) ])

(* Narrow dimension: 41 keys [2000,2040] — a selective join build. *)
let dim_lo = 2000
let dim_n = 41

let dims =
  List.init dim_n (fun i ->
      Value.record
        [ ("gid", Value.Int (dim_lo + i)); ("w", Value.Int (2 * (dim_lo + i))) ])

let dim_type = Ptype.Record [ ("gid", Ptype.Int); ("w", Ptype.Int) ]

let to_json records =
  String.concat "\n"
    (List.map
       (fun r -> Proteus_format.Json.to_string (Proteus_format.Json.of_value r))
       records)

let formats = [ "pcsv"; "pjson"; "prow"; "pcol" ]

let make_session ?cache_budget ?config () =
  let cat = Catalog.create ?cache_budget () in
  let mem = Catalog.memory cat in
  Memory.register_blob mem ~name:"p.csv"
    (Proteus_format.Csv.of_records Proteus_format.Csv.default_config item_schema
       items);
  Catalog.register cat
    (Dataset.make ~name:"pcsv"
       ~format:(Dataset.Csv Proteus_format.Csv.default_config)
       ~location:(Dataset.Blob "p.csv") ~element:item_type);
  Memory.register_blob mem ~name:"p.json" (to_json items);
  Catalog.register cat
    (Dataset.make ~name:"pjson" ~format:Dataset.Json
       ~location:(Dataset.Blob "p.json") ~element:item_type);
  Catalog.register cat
    (Dataset.make ~name:"prow" ~format:Dataset.Binary_row
       ~location:(Dataset.Rows (Rowpage.of_records item_schema items))
       ~element:item_type);
  let col recs name ty =
    (name, Column.of_values ty (List.map (fun r -> Value.field r name) recs))
  in
  Catalog.register cat
    (Dataset.make ~name:"pcol" ~format:Dataset.Binary_column
       ~location:
         (Dataset.Columns
            [ col items "k" Ptype.Int; col items "u" Ptype.Int;
              col items "v" Ptype.Float; col items "s" Ptype.String ])
       ~element:item_type);
  Memory.register_blob mem ~name:"pmix.json" (to_json mixes);
  Catalog.register cat
    (Dataset.make ~name:"pmix" ~format:Dataset.Json
       ~location:(Dataset.Blob "pmix.json") ~element:mix_type);
  Catalog.register cat
    (Dataset.make ~name:"pdim" ~format:Dataset.Binary_column
       ~location:
         (Dataset.Columns [ col dims "gid" Ptype.Int; col dims "w" Ptype.Int ])
       ~element:dim_type);
  let mgr = Manager.create ?config cat in
  let reg = Registry.create ~cache:(Manager.iface mgr) cat in
  (* the db layer's promotion hook: materialize pre-parsed slot columns *)
  Manager.set_on_promote mgr (fun dataset path ->
      Registry.materialize_field reg ~dataset ~path);
  (mgr, reg)

let promote_config =
  { Manager.default_config with promote = true; promote_threshold = 2 }

(* promotion on the very first compile — before the cold cache fill — so slot
   columns deterministically materialize from format-index spans *)
let slot_config = { promote_config with promote_threshold = 1 }

let noproj_config = { promote_config with promote_projections = false }

let agg_count = Plan.agg ~name:"c" (Monoid.Primitive Monoid.Count) (Expr.int 1)

let count ~pred ds =
  Plan.reduce ~pred [ agg_count ] (Plan.scan ~dataset:ds ~binding:"x" ())

let x field = Expr.(Field (var "x", field))

let between lo hi = Expr.((x "u" >=. int lo) &&& (x "u" <. int hi))

(* 2000..2099 minus the four planted outliers in that OID range *)
let between_plan ds = count ~pred:(between 2000 2100) ds

let join_plan ?(key = "k") ?(dim = Plan.scan ~dataset:"pdim" ~binding:"d" ()) ds
    =
  Plan.reduce
    [ agg_count;
      Plan.agg ~name:"w" (Monoid.Primitive Monoid.Sum)
        Expr.(Field (var "d", "w")) ]
    (Plan.join
       ~pred:Expr.(x key ==. Field (var "d", "gid"))
       (Plan.scan ~dataset:ds ~binding:"x" ())
       dim)

(* The query mix: the zone-map-proof BETWEEN, a sum under the same band, the
   clustered dictionary equality, a planted-outlier range that qualifies in
   every zone (skipping must stand down), and the selective join. *)
let plans ds =
  [ ("u between", between_plan ds);
    ( "sum v | u between",
      Plan.reduce ~pred:(between 2000 2100)
        [ Plan.agg ~name:"s" (Monoid.Primitive Monoid.Sum) (x "v") ]
        (Plan.scan ~dataset:ds ~binding:"x" ()) );
    ("s=g7", count ~pred:Expr.(x "s" ==. str "g7") ds);
    ("u>=3900", count ~pred:Expr.(x "u" >=. int 3900) ds);
    ("join k=gid", join_plan ds) ]

(* --- bit-identity: layouts x domains x batch sizes x formats -------------- *)

let test_differential () =
  let _, reg_ref = make_session ~config:Manager.config_disabled () in
  let reference ds =
    List.map
      (fun (name, p) ->
        (name, Executor.run ~batch_size:0 reg_ref ~engine:Executor.Engine_compiled p))
      (plans ds)
  in
  let engines = [ ("d1", 1); ("d2", 2); ("d4", 4) ] in
  let batches = [ 0; 256; 1024 ] in
  List.iter
    (fun ds ->
      let expected = reference ds in
      List.iter
        (fun (cfg_name, config) ->
          let _, reg = make_session ~config () in
          (* several passes so caches fill, columns promote, and projections /
             slot columns / join summaries engage mid-matrix *)
          for pass = 1 to 4 do
            List.iter
              (fun (ename, domains) ->
                List.iter
                  (fun bs ->
                    List.iter2
                      (fun (pname, p) (_, want) ->
                        let got =
                          Executor.run ~batch_size:bs reg
                            ~engine:(Executor.Engine_parallel domains) p
                        in
                        Alcotest.check check_value
                          (Fmt.str "%s/%s pass%d %s bs=%d %s" ds cfg_name pass
                             ename bs pname)
                          want got)
                      (plans ds) expected)
                  batches)
              engines
          done)
        [ ("proj", promote_config); ("slot", slot_config) ])
    formats

(* --- sorted projections: skip where zone maps are powerless --------------- *)

let warm_then_measure reg ~runs plan ~engine ~batch_size =
  for _ = 1 to runs do
    ignore (Executor.run ~batch_size reg ~engine:Executor.Engine_compiled plan)
  done;
  Counters.reset ();
  let r = Executor.run ~batch_size reg ~engine plan in
  (r, Counters.snapshot ())

let expected_between =
  Value.Int
    (List.length
       (List.filter (fun i -> u_of i >= 2000 && u_of i < 2100)
          (List.init n_rows Fun.id)))

let test_sorted_skip_parallel () =
  let mgr, reg = make_session ~config:promote_config () in
  let plan = between_plan "pcsv" in
  let r, s =
    warm_then_measure reg ~runs:4 plan ~engine:(Executor.Engine_parallel 4)
      ~batch_size:1024
  in
  Alcotest.check check_value "between count" expected_between r;
  Alcotest.(check bool) "projection built" true
    (Manager.lookup_projection mgr ~dataset:"pcsv" ~path:"u" <> None);
  Alcotest.(check bool) "projection recorded" true
    ((Manager.stats mgr).Manager.sorted_projections >= 1);
  Alcotest.(check bool) "binary-search seeks ran" true
    (s.Counters.sorted_seeks > 0);
  let total = s.Counters.morsels + s.Counters.morsels_skipped in
  Alcotest.(check bool)
    (Fmt.str "skips >=90%% of morsels (skipped=%d dispensed=%d)"
       s.Counters.morsels_skipped s.Counters.morsels)
    true
    (total > 0 && 10 * s.Counters.morsels_skipped >= 9 * total);
  (* the control: zone maps alone are nearly powerless here — every full
     zone's [min,max] spans the whole domain thanks to the planted outliers
     (only the ragged 32-row tail zone misses its planted 0 and may skip) *)
  let _, reg0 = make_session ~config:noproj_config () in
  let r0, s0 =
    warm_then_measure reg0 ~runs:4 plan ~engine:(Executor.Engine_parallel 4)
      ~batch_size:1024
  in
  Alcotest.check check_value "zone-only same result" expected_between r0;
  Alcotest.(check bool)
    (Fmt.str "zone-only barely skips (skipped=%d)" s0.Counters.morsels_skipped)
    true
    (s0.Counters.morsels_skipped <= 1)

let test_sorted_skip_serial_batches () =
  let _, reg = make_session ~config:promote_config () in
  let plan = between_plan "pjson" in
  let r, s =
    warm_then_measure reg ~runs:4 plan ~engine:Executor.Engine_compiled
      ~batch_size:256
  in
  Alcotest.check check_value "serial between count" expected_between r;
  (* 4000 rows / 256 per batch = 16 batches; the band lands in two *)
  Alcotest.(check bool)
    (Fmt.str "batch-granularity projection skip (skipped=%d)"
       s.Counters.morsels_skipped)
    true
    (s.Counters.morsels_skipped >= 12);
  Alcotest.(check bool) "seeks ticked on the serial lane" true
    (s.Counters.sorted_seeks > 0)

let test_sorted_skip_nullmask () =
  let mgr, reg = make_session ~config:promote_config () in
  let pred = Expr.((x "m" >=. int 300) &&& (x "m" <. int 400)) in
  let plan = count ~pred "pmix" in
  let expected =
    Value.Int
      (List.length
         (List.filter (fun i -> i mod 3 <> 0)
            (List.init 100 (fun j -> 300 + j))))
  in
  let r, s =
    warm_then_measure reg ~runs:4 plan ~engine:(Executor.Engine_parallel 2)
      ~batch_size:1024
  in
  Alcotest.check check_value "nullmask band count" expected r;
  Alcotest.(check bool) "optional column projected" true
    (Manager.lookup_projection mgr ~dataset:"pmix" ~path:"m" <> None);
  Alcotest.(check bool)
    (Fmt.str "nullmask projection skips (skipped=%d)" s.Counters.morsels_skipped)
    true
    (s.Counters.morsels_skipped > 0)

(* --- degraded policies: skipping stands down, results stay exact ---------- *)

let test_policy_stand_down () =
  let _, reg = make_session ~config:promote_config () in
  let plan = between_plan "pcsv" in
  for _ = 1 to 4 do
    ignore (Executor.run ~batch_size:1024 reg ~engine:Executor.Engine_compiled plan)
  done;
  List.iter
    (fun policy ->
      Counters.reset ();
      match
        Executor.run_guarded ~batch_size:1024 ~policy reg
          ~engine:Executor.Engine_compiled plan
      with
      | Executor.Completed (r, _) ->
          let s = Counters.snapshot () in
          Alcotest.check check_value
            (Fmt.str "%s result" (Fault.policy_name policy))
            expected_between r;
          (* Skip_row / Null_fill rewrite per-row outcomes, so wholesale
             morsel elimination must not fire *)
          Alcotest.(check int)
            (Fmt.str "%s skips stand down" (Fault.policy_name policy))
            0 s.Counters.morsels_skipped
      | _ -> Alcotest.fail "guarded run did not complete")
    [ Fault.Skip_row; Fault.Null_fill ]

(* --- pre-parsed JSON slot columns ----------------------------------------- *)

let test_slot_column () =
  let mgr, reg = make_session ~config:slot_config () in
  let plan =
    Plan.reduce
      ~pred:Expr.(x "v" >=. float 1000.)
      [ Plan.agg ~name:"s" (Monoid.Primitive Monoid.Sum) (x "v") ]
      (Plan.scan ~dataset:"pjson" ~binding:"x" ())
  in
  let _, reg_ref = make_session ~config:Manager.config_disabled () in
  let want = Executor.run ~batch_size:0 reg_ref ~engine:Executor.Engine_compiled plan in
  let r, s =
    warm_then_measure reg ~runs:3 plan ~engine:Executor.Engine_compiled
      ~batch_size:1024
  in
  Alcotest.check check_value "slot-served sum" want r;
  Alcotest.(check bool) "slot column materialized" true
    ((Manager.stats mgr).Manager.slot_columns >= 1);
  Alcotest.(check bool)
    (Fmt.str "reads served from the slot column (slot-reads=%d)"
       s.Counters.slot_reads)
    true
    (s.Counters.slot_reads > 0);
  (* parallel parity on the promoted layout *)
  Alcotest.check check_value "slot parallel parity" want
    (Executor.run ~batch_size:256 reg ~engine:(Executor.Engine_parallel 4) plan)

(* --- join-side pruning: min/max + Bloom summaries from the build ---------- *)

let expected_join =
  let matched = List.filter (fun i -> i >= dim_lo && i < dim_lo + dim_n)
      (List.init n_rows Fun.id) in
  Value.record
    [ ("c", Value.Int (List.length matched));
      ("w", Value.Int (List.fold_left (fun a i -> a + (2 * i)) 0 matched)) ]

let test_join_prune () =
  let _, reg = make_session ~config:promote_config () in
  (* promote the probe key first (range workload -> zone map + projection) *)
  let warmk = count ~pred:Expr.(x "k" <. int 40) "pcsv" in
  for _ = 1 to 4 do
    ignore (Executor.run ~batch_size:1024 reg ~engine:Executor.Engine_compiled warmk)
  done;
  let plan = join_plan "pcsv" in
  ignore (Executor.run ~batch_size:1024 reg ~engine:Executor.Engine_compiled plan);
  (* serial lane: batches skipped out of the probe drive *)
  Counters.reset ();
  let r = Executor.run ~batch_size:1024 reg ~engine:Executor.Engine_compiled plan in
  let s = Counters.snapshot () in
  Alcotest.check check_value "serial join result" expected_join r;
  Alcotest.(check bool)
    (Fmt.str "serial probe skips (probe-skipped=%d)"
       s.Counters.probe_morsels_skipped)
    true
    (s.Counters.probe_morsels_skipped > 0);
  (* parallel lane: the dispenser skip armed after the build barrier *)
  Counters.reset ();
  let rp = Executor.run ~batch_size:1024 reg ~engine:(Executor.Engine_parallel 4) plan in
  let sp = Counters.snapshot () in
  Alcotest.check check_value "parallel join result" expected_join rp;
  Alcotest.(check bool)
    (Fmt.str "parallel probe skips (probe-skipped=%d)"
       sp.Counters.probe_morsels_skipped)
    true
    (sp.Counters.probe_morsels_skipped > 0)

let test_join_prune_projection_keys () =
  (* probe on the outlier-planted u: zone maps span the domain everywhere, so
     only the sorted projection (union of per-key zones for the 41 build
     keys) can prune the probe *)
  let _, reg = make_session ~config:promote_config () in
  for _ = 1 to 4 do
    ignore
      (Executor.run ~batch_size:1024 reg ~engine:Executor.Engine_compiled
         (between_plan "pcsv"))
  done;
  let plan = join_plan ~key:"u" "pcsv" in
  let _, reg_ref = make_session ~config:Manager.config_disabled () in
  let want = Executor.run ~batch_size:0 reg_ref ~engine:Executor.Engine_compiled plan in
  ignore (Executor.run ~batch_size:1024 reg ~engine:Executor.Engine_compiled plan);
  Counters.reset ();
  let r = Executor.run ~batch_size:1024 reg ~engine:Executor.Engine_compiled plan in
  let s = Counters.snapshot () in
  Alcotest.check check_value "projection-pruned join result" want r;
  Alcotest.(check bool)
    (Fmt.str "projection prunes the probe (probe-skipped=%d)"
       s.Counters.probe_morsels_skipped)
    true
    (s.Counters.probe_morsels_skipped > 0)

let test_join_empty_build_skips_all () =
  let _, reg = make_session ~config:promote_config () in
  let empty_dim =
    Plan.select
      Expr.(Field (var "d", "gid") <. int 0)
      (Plan.scan ~dataset:"pdim" ~binding:"d" ())
  in
  let plan = join_plan ~dim:empty_dim "pcsv" in
  (* no promotion warm-up needed: an empty build prunes unconditionally *)
  ignore (Executor.run ~batch_size:1024 reg ~engine:Executor.Engine_compiled plan);
  Counters.reset ();
  let r = Executor.run ~batch_size:1024 reg ~engine:Executor.Engine_compiled plan in
  let s = Counters.snapshot () in
  Alcotest.check check_value "empty build -> empty result"
    (Value.record [ ("c", Value.Int 0); ("w", Value.Int 0) ])
    r;
  Alcotest.(check bool)
    (Fmt.str "empty build skips the whole probe (probe-skipped=%d)"
       s.Counters.probe_morsels_skipped)
    true
    (s.Counters.probe_morsels_skipped >= 4)

let test_left_outer_join_never_prunes () =
  let _, reg = make_session ~config:promote_config () in
  let warmk = count ~pred:Expr.(x "k" <. int 40) "pcsv" in
  for _ = 1 to 4 do
    ignore (Executor.run ~batch_size:1024 reg ~engine:Executor.Engine_compiled warmk)
  done;
  let plan =
    Plan.reduce [ agg_count ]
      (Plan.join ~kind:Plan.Left_outer
         ~pred:Expr.(x "k" ==. Field (var "d", "gid"))
         (Plan.scan ~dataset:"pcsv" ~binding:"x" ())
         (Plan.scan ~dataset:"pdim" ~binding:"d" ()))
  in
  ignore (Executor.run ~batch_size:1024 reg ~engine:Executor.Engine_compiled plan);
  Counters.reset ();
  let r = Executor.run ~batch_size:1024 reg ~engine:Executor.Engine_compiled plan in
  let s = Counters.snapshot () in
  (* every probe row survives an outer join: pruning must not arm *)
  Alcotest.check check_value "outer join keeps all rows" (Value.Int n_rows) r;
  Alcotest.(check int) "outer join never prunes" 0
    s.Counters.probe_morsels_skipped

(* --- dictionary zone maps (Dicts / Nullmask(Dicts) segments) -------------- *)

let test_dict_zone_skip () =
  let mgr, reg = make_session ~config:promote_config () in
  let plan = count ~pred:Expr.(x "s" ==. str "g7") "pcsv" in
  let r, s =
    warm_then_measure reg ~runs:4 plan ~engine:Executor.Engine_compiled
      ~batch_size:256
  in
  (* s = "g7" on rows 2800..3199 *)
  Alcotest.check check_value "dict equality count" (Value.Int 400) r;
  Alcotest.(check bool) "string column promoted to dictionary" true
    ((Manager.stats mgr).Manager.dict_columns >= 1);
  Alcotest.(check bool)
    (Fmt.str "dict zone map skips clustered batches (skipped=%d)"
       s.Counters.morsels_skipped)
    true
    (s.Counters.morsels_skipped >= 8)

let test_dict_zone_skip_nullmask () =
  let _, reg = make_session ~config:promote_config () in
  let plan = count ~pred:Expr.(x "t" ==. str "h3") "pmix" in
  let expected =
    Value.Int
      (List.length
         (List.filter
            (fun r -> Value.equal (Value.field r "t") (Value.String "h3"))
            mixes))
  in
  let r, s =
    warm_then_measure reg ~runs:4 plan ~engine:Executor.Engine_compiled
      ~batch_size:256
  in
  Alcotest.check check_value "nullable dict equality count" expected r;
  Alcotest.(check bool)
    (Fmt.str "nullmask-dict zone map skips (skipped=%d)"
       s.Counters.morsels_skipped)
    true
    (s.Counters.morsels_skipped >= 2)

(* --- eviction / invalidation falls back cleanly --------------------------- *)

let test_eviction_falls_back () =
  let mgr, reg = make_session ~cache_budget:40_000 ~config:promote_config () in
  let qa = between_plan "pjson" in
  let qb =
    Plan.reduce ~pred:(between 2000 2100)
      [ Plan.agg ~name:"s" (Monoid.Primitive Monoid.Sum) (x "v") ]
      (Plan.scan ~dataset:"pjson" ~binding:"x" ())
  in
  let qc = count ~pred:Expr.(x "s" ==. str "g7") "pjson" in
  let want_b = Executor.run reg ~engine:Executor.Engine_compiled qb in
  for _ = 1 to 5 do
    Alcotest.check check_value "band stable under churn" expected_between
      (Executor.run reg ~engine:Executor.Engine_compiled qa);
    Alcotest.check check_value "sum stable under churn" want_b
      (Executor.run reg ~engine:Executor.Engine_compiled qb);
    ignore (Executor.run reg ~engine:Executor.Engine_compiled qc)
  done;
  Manager.invalidate_dataset mgr ~dataset:"pjson";
  Alcotest.(check bool) "projection dropped with blocks" true
    (Manager.lookup_projection mgr ~dataset:"pjson" ~path:"u" = None);
  Alcotest.check check_value "requery after invalidate" expected_between
    (Executor.run reg ~engine:Executor.Engine_compiled qa)

let () =
  Alcotest.run "projection"
    [
      ( "differential",
        [ Alcotest.test_case "layouts x domains x batch x format" `Slow
            test_differential ] );
      ( "sorted",
        [
          Alcotest.test_case "parallel skips >=90%" `Quick
            test_sorted_skip_parallel;
          Alcotest.test_case "serial batch skips" `Quick
            test_sorted_skip_serial_batches;
          Alcotest.test_case "nullmask band skips" `Quick
            test_sorted_skip_nullmask;
          Alcotest.test_case "degraded policies stand down" `Quick
            test_policy_stand_down;
        ] );
      ( "slot",
        [ Alcotest.test_case "span-built column serves reads" `Quick
            test_slot_column ] );
      ( "join",
        [
          Alcotest.test_case "both lanes prune the probe" `Quick
            test_join_prune;
          Alcotest.test_case "projection prunes scrambled keys" `Quick
            test_join_prune_projection_keys;
          Alcotest.test_case "empty build skips everything" `Quick
            test_join_empty_build_skips_all;
          Alcotest.test_case "outer join never prunes" `Quick
            test_left_outer_join_never_prunes;
        ] );
      ( "dictionary",
        [
          Alcotest.test_case "dict zones skip" `Quick test_dict_zone_skip;
          Alcotest.test_case "nullmask dict zones skip" `Quick
            test_dict_zone_skip_nullmask;
        ] );
      ( "fallback",
        [ Alcotest.test_case "eviction falls back" `Quick
            test_eviction_falls_back ] );
    ]
