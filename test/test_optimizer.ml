(* Tests for the optimizer: rewrites preserve results, selections sink to
   scans, join keys get extracted, join order follows the statistics. *)

open Proteus_model
open Proteus_catalog
open Proteus_optimizer
module Plan = Proteus_algebra.Plan
module Interp = Proteus_algebra.Interp

let check_value = Alcotest.testable Value.pp Value.equal

let big =
  List.init 500 (fun i ->
      Value.record [ ("bk", Value.Int i); ("bg", Value.Int (i mod 10)) ])

let small =
  List.init 10 (fun i ->
      Value.record [ ("sk", Value.Int i); ("label", Value.String (Fmt.str "s%d" i)) ])

let nested =
  List.init 30 (fun i ->
      Value.record
        [
          ("id", Value.Int i);
          ( "kids",
            Value.list_
              (List.init (i mod 3) (fun j ->
                   Value.record [ ("age", Value.Int ((i + j) mod 25)) ])) );
        ])

let lookup = function
  | "big" -> big
  | "small" -> small
  | "nested" -> nested
  | other -> Perror.plan_error "no dataset %s" other

(* a catalog with statistics for the three datasets, as the cold-access
   collector would have produced *)
let make_catalog () =
  let cat = Catalog.create () in
  let register name element records =
    (* descriptors only: the optimizer consults formats and statistics, the
       reference interpreter supplies the data through [lookup] *)
    Catalog.register cat
      (Dataset.make ~name ~format:Dataset.Binary_column
         ~location:(Dataset.Columns []) ~element);
    let stats = Catalog.stats cat name in
    Stats.set_cardinality stats (List.length records);
    List.iter
      (fun r ->
        match r with
        | Value.Record fields ->
          Array.iter
            (fun (n, v) ->
              match v with
              | Value.Int _ | Value.Float _ -> Stats.observe stats n v
              | _ -> ())
            fields
        | _ -> ())
      records
  in
  register "big" (Ptype.Record [ ("bk", Ptype.Int); ("bg", Ptype.Int) ]) big;
  register "small" (Ptype.Record [ ("sk", Ptype.Int); ("label", Ptype.String) ]) small;
  register "nested"
    (Ptype.Record
       [ ("id", Ptype.Int);
         ("kids", Ptype.Collection (Ptype.List, Ptype.Record [ ("age", Ptype.Int) ])) ])
    nested;
  cat

let catalog = lazy (make_catalog ())

let sort_bag v =
  match v with
  | Value.Coll (Ptype.Bag, es) -> Value.Coll (Ptype.Bag, List.sort Value.compare es)
  | v -> v

let check_preserves ?(name = "optimize") plan =
  let cat = Lazy.force catalog in
  let optimized = Optimizer.optimize cat plan in
  Plan.validate optimized;
  Alcotest.check check_value name
    (sort_bag (Interp.run ~lookup plan))
    (sort_bag (Interp.run ~lookup optimized));
  optimized

(* --- pushdown shape ------------------------------------------------------- *)

let join_big_small ~pred () =
  Plan.reduce
    [ Plan.agg ~name:"c" (Monoid.Primitive Monoid.Count) (Expr.int 1) ]
    (Plan.select pred
       (Plan.join
          ~pred:Expr.(Field (var "b", "bg") ==. Field (var "s", "sk"))
          (Plan.scan ~dataset:"big" ~binding:"b" ())
          (Plan.scan ~dataset:"small" ~binding:"s" ())))

let rec find_select_over_scan ds (p : Plan.t) =
  match p with
  | Plan.Select { input = Plan.Scan { dataset; _ }; _ } when dataset = ds -> true
  | p -> List.exists (find_select_over_scan ds) (Plan.children p)

let test_selection_sinks_below_join () =
  let plan = join_big_small ~pred:Expr.(Field (var "b", "bk") <. int 100) () in
  let optimized = check_preserves ~name:"pushdown preserves" plan in
  Alcotest.(check bool) "select sits on the big scan" true
    (find_select_over_scan "big" optimized)

let test_reduce_pred_sinks () =
  let plan =
    Plan.reduce
      ~pred:Expr.(Field (var "b", "bk") <. int 10)
      [ Plan.agg ~name:"c" (Monoid.Primitive Monoid.Count) (Expr.int 1) ]
      (Plan.scan ~dataset:"big" ~binding:"b" ())
  in
  let optimized = check_preserves ~name:"reduce pred" plan in
  (match optimized with
  | Plan.Reduce { pred; input = Plan.Select _; _ } ->
    Alcotest.(check bool) "reduce pred cleared" true
      (Expr.equal pred (Expr.conjoin []))
  | p -> Alcotest.failf "unexpected shape: %s" (Plan.to_string p))

let test_unnest_pred_split () =
  (* input-only conjunct sinks below the unnest; element conjunct stays *)
  let plan =
    Plan.reduce
      [ Plan.agg ~name:"c" (Monoid.Primitive Monoid.Count) (Expr.int 1) ]
      (Plan.select
         Expr.(
           (Field (var "n", "id") <. int 20) &&& (Field (var "k", "age") >. int 5))
         (Plan.unnest
            ~path:Expr.(Field (var "n", "kids"))
            ~binding:"k"
            (Plan.scan ~dataset:"nested" ~binding:"n" ())))
  in
  let optimized = check_preserves ~name:"unnest pred" plan in
  let rec find_unnest_pred (p : Plan.t) =
    match p with
    | Plan.Unnest { pred; _ } -> Some pred
    | p -> List.find_map find_unnest_pred (Plan.children p)
  in
  match find_unnest_pred optimized with
  | Some pred ->
    Alcotest.(check bool) "element pred embedded" true
      (List.exists
         (fun c -> List.mem "k" (Expr.free_vars c))
         (Expr.conjuncts pred));
    Alcotest.(check bool) "input pred sank below" true
      (find_select_over_scan "nested" optimized)
  | None -> Alcotest.fail "unnest disappeared"

let test_join_keys_extracted () =
  let plan = join_big_small ~pred:Expr.(Field (var "b", "bk") >=. int 0) () in
  let optimized = check_preserves ~name:"keys" plan in
  let rec find_join_keys (p : Plan.t) =
    match p with
    | Plan.Join { left_key; right_key; _ } -> Some (left_key, right_key)
    | p -> List.find_map find_join_keys (Plan.children p)
  in
  match find_join_keys optimized with
  | Some (lk, rk) -> Alcotest.(check bool) "keys set" true (lk <> None && rk <> None)
  | None -> Alcotest.fail "join disappeared"

let test_non_equi_becomes_nested_loop () =
  let plan =
    Plan.reduce
      [ Plan.agg ~name:"c" (Monoid.Primitive Monoid.Count) (Expr.int 1) ]
      (Plan.join
         ~pred:Expr.(Field (var "b", "bg") >. Field (var "s", "sk"))
         (Plan.scan ~dataset:"big" ~binding:"b" ())
         (Plan.scan ~dataset:"small" ~binding:"s" ()))
  in
  let optimized = check_preserves ~name:"non-equi" plan in
  let rec find_join_algo (p : Plan.t) =
    match p with
    | Plan.Join { algo; _ } -> Some algo
    | p -> List.find_map find_join_algo (Plan.children p)
  in
  match find_join_algo optimized with
  | Some algo -> Alcotest.(check bool) "downgraded" true (algo = Plan.Nested_loop)
  | None -> Alcotest.fail "join disappeared"

let test_small_side_built () =
  (* big ⋈ small with big on the right: the planner must flip so the small
     relation is materialized (right side) and the big one streams *)
  let plan =
    Plan.reduce
      [ Plan.agg ~name:"c" (Monoid.Primitive Monoid.Count) (Expr.int 1) ]
      (Plan.join
         ~pred:Expr.(Field (var "s", "sk") ==. Field (var "b", "bg"))
         (Plan.scan ~dataset:"small" ~binding:"s" ())
         (Plan.scan ~dataset:"big" ~binding:"b" ()))
  in
  let optimized = check_preserves ~name:"build side" plan in
  let rec find_join_right (p : Plan.t) =
    match p with
    | Plan.Join { right; _ } -> Some right
    | p -> List.find_map find_join_right (Plan.children p)
  in
  match find_join_right optimized with
  | Some right ->
    Alcotest.(check (list string)) "small on the right" [ "small" ]
      (Plan.datasets right)
  | None -> Alcotest.fail "join disappeared"

let test_projection_pushdown_sets_fields () =
  let plan =
    Plan.reduce
      [ Plan.agg ~name:"m" (Monoid.Primitive Monoid.Max) Expr.(Field (var "b", "bk")) ]
      (Plan.scan ~dataset:"big" ~binding:"b" ())
  in
  let optimized = check_preserves ~name:"projection" plan in
  let rec find_scan (p : Plan.t) =
    match p with
    | Plan.Scan s -> Some s
    | p -> List.find_map find_scan (Plan.children p)
  in
  match find_scan optimized with
  | Some s -> Alcotest.(check bool) "fields restricted" true (s.fields = Some [ "bk" ])
  | None -> Alcotest.fail "scan disappeared"

let test_outer_join_untouched () =
  let plan =
    Plan.reduce
      [ Plan.agg ~name:"c" (Monoid.Primitive Monoid.Count) (Expr.int 1) ]
      (Plan.join ~kind:Plan.Left_outer
         ~pred:Expr.(Field (var "b", "bg") ==. Field (var "s", "sk") &&& (Field (var "s", "sk") <. int 3))
         (Plan.scan ~dataset:"big" ~binding:"b" ())
         (Plan.scan ~dataset:"small" ~binding:"s" ()))
  in
  ignore (check_preserves ~name:"outer join preserved" plan)

(* --- costing sanity -------------------------------------------------------- *)

let test_cardinality_estimates () =
  let cat = Lazy.force catalog in
  let scan = Plan.scan ~dataset:"big" ~binding:"b" () in
  Alcotest.(check (float 1.0)) "scan card" 500.0 (Costing.cardinality cat scan);
  let half =
    Plan.select Expr.(Field (var "b", "bk") <. int 250) scan
  in
  let c = Costing.cardinality cat half in
  Alcotest.(check bool) "selection halves" true (c > 150.0 && c < 350.0)

let test_format_cost_order () =
  let open Proteus_catalog.Dataset in
  Alcotest.(check bool) "json > csv > row > col" true
    (Costing.format_factor Json > Costing.format_factor (Csv Proteus_format.Csv.default_config)
    && Costing.format_factor (Csv Proteus_format.Csv.default_config)
       > Costing.format_factor Binary_row
    && Costing.format_factor Binary_row > Costing.format_factor Binary_column)

let test_selectivity_uses_stats () =
  let cat = Lazy.force catalog in
  let dataset_of = function "b" -> Some "big" | _ -> None in
  let sel k = Costing.selectivity cat ~dataset_of Expr.(Field (var "b", "bk") <. int k) in
  Alcotest.(check bool) "monotone in constant" true (sel 50 < sel 400);
  Alcotest.(check bool) "tight bounds" true (sel 50 < 0.25 && sel 450 > 0.75)

let test_explain_renders_costs () =
  let cat = Lazy.force catalog in
  let plan =
    Optimizer.optimize cat (join_big_small ~pred:Expr.(Field (var "b", "bk") <. int 100) ())
  in
  let s = Optimizer.explain cat plan in
  let contains needle =
    let n = String.length needle and h = String.length s in
    let rec go i = i + n <= h && (String.sub s i n = needle || go (i + 1)) in
    go 0
  in
  Alcotest.(check bool) "mentions rows" true (contains "rows");
  Alcotest.(check bool) "mentions cost" true (contains "cost");
  Alcotest.(check bool) "names the join algorithm" true (contains "radix-hash");
  Alcotest.(check bool) "names both scans" true (contains "scan big" && contains "scan small")

(* --- redundant-operator elimination ---------------------------------------- *)

let count_ops pred p =
  let rec go acc p =
    List.fold_left go (acc + if pred p then 1 else 0) (Plan.children p)
  in
  go 0 p

let is_select = function Plan.Select _ -> true | _ -> false
let is_project = function Plan.Project _ -> true | _ -> false

let test_true_selection_dropped () =
  let plan =
    Plan.reduce
      [ Plan.agg ~name:"c" (Monoid.Primitive Monoid.Count) (Expr.int 1) ]
      (Plan.select (Expr.bool true)
         (Plan.select
            Expr.(Field (var "b", "bk") <. int 100)
            (Plan.scan ~dataset:"big" ~binding:"b" ())))
  in
  let optimized = check_preserves ~name:"true selection" plan in
  Alcotest.(check int) "only the real selection survives" 1
    (count_ops is_select optimized)

let test_adjacent_projections_collapse () =
  let bfield f = Expr.Field (Expr.var "b", f) in
  let plan =
    Plan.reduce
      [ Plan.agg ~name:"s" (Monoid.Primitive Monoid.Sum) (Expr.Field (Expr.var "q", "twice")) ]
      (Plan.project ~binding:"q"
         ~fields:[ ("twice", Expr.(Field (var "p", "key") +. Field (var "p", "key"))) ]
         (Plan.project ~binding:"p"
            ~fields:[ ("key", bfield "bk"); ("g", bfield "bg") ]
            (Plan.scan ~dataset:"big" ~binding:"b" ())))
  in
  let optimized = check_preserves ~name:"adjacent projections" plan in
  Alcotest.(check bool) "collapsed to at most one projection" true
    (count_ops is_project optimized <= 1)

let test_identity_projection_dropped () =
  let bfield f = Expr.Field (Expr.var "b", f) in
  let plan =
    Plan.reduce
      [ Plan.agg ~name:"s" (Monoid.Primitive Monoid.Sum) (Expr.Field (Expr.var "r", "bk")) ]
      (Plan.project ~binding:"r"
         ~fields:[ ("bk", bfield "bk"); ("bg", bfield "bg") ]
         (Plan.scan ~dataset:"big" ~binding:"b" ()))
  in
  let optimized = check_preserves ~name:"identity projection" plan in
  Alcotest.(check int) "identity projection dropped" 0
    (count_ops is_project optimized)

let test_narrowing_projection_kept () =
  (* the nest's aggregate reads the grouped record whole, so dropping the
     projection would widen what the monoid sees — it must stay *)
  let bfield f = Expr.Field (Expr.var "b", f) in
  let plan =
    Plan.nest
      ~keys:[ ("g", Expr.Field (Expr.var "r", "bg")) ]
      ~aggs:[ Plan.agg ~name:"rows" (Monoid.Collection Ptype.Bag) (Expr.var "r") ]
      ~binding:"grp"
      (Plan.project ~binding:"r"
         ~fields:[ ("bg", bfield "bg") ]
         (Plan.scan ~dataset:"big" ~binding:"b" ()))
  in
  let optimized = check_preserves ~name:"narrowing projection" plan in
  Alcotest.(check int) "whole-record use keeps the projection" 1
    (count_ops is_project optimized)

(* --- randomized preservation ---------------------------------------------- *)

let plan_gen : Plan.t QCheck2.Gen.t =
  let open QCheck2.Gen in
  let bfield f = Expr.Field (Expr.var "b", f) in
  let* k = int_range 0 500 in
  let* g = int_range 0 10 in
  let* shape = int_range 0 3 in
  let base = Plan.scan ~dataset:"big" ~binding:"b" () in
  let joined =
    Plan.join
      ~pred:Expr.(bfield "bg" ==. Field (var "s", "sk"))
      base
      (Plan.scan ~dataset:"small" ~binding:"s" ())
  in
  let pred = Expr.(bfield "bk" <. int k &&& (bfield "bg" >=. int (g - 5))) in
  match shape with
  | 0 ->
    return
      (Plan.reduce ~pred
         [ Plan.agg ~name:"c" (Monoid.Primitive Monoid.Count) (Expr.int 1) ]
         base)
  | 1 ->
    return
      (Plan.reduce
         [ Plan.agg ~name:"c" (Monoid.Primitive Monoid.Count) (Expr.int 1) ]
         (Plan.select pred joined))
  | 2 ->
    return
      (Plan.nest
         ~keys:[ ("g", bfield "bg") ]
         ~aggs:[ Plan.agg ~name:"m" (Monoid.Primitive Monoid.Max) (bfield "bk") ]
         ~binding:"grp" (Plan.select pred base))
  | _ ->
    return
      (Plan.reduce
         [ Plan.agg ~name:"s" (Monoid.Primitive Monoid.Sum) (bfield "bk") ]
         (Plan.select
            Expr.(pred &&& (Field (var "s", "label") <. str "s5"))
            joined))

let optimize_preserves_prop =
  QCheck2.Test.make ~name:"optimization preserves results" ~count:80 plan_gen
    (fun plan ->
      let cat = Lazy.force catalog in
      let optimized = Optimizer.optimize cat plan in
      Plan.validate optimized;
      Value.equal
        (sort_bag (Interp.run ~lookup plan))
        (sort_bag (Interp.run ~lookup optimized)))

let qsuite tests = List.map QCheck_alcotest.to_alcotest tests

let () =
  Alcotest.run "optimizer"
    [
      ( "rewrites",
        [
          Alcotest.test_case "selection sinks below join" `Quick
            test_selection_sinks_below_join;
          Alcotest.test_case "reduce pred sinks" `Quick test_reduce_pred_sinks;
          Alcotest.test_case "unnest pred split" `Quick test_unnest_pred_split;
          Alcotest.test_case "join keys extracted" `Quick test_join_keys_extracted;
          Alcotest.test_case "non-equi to nested loop" `Quick
            test_non_equi_becomes_nested_loop;
          Alcotest.test_case "small side built" `Quick test_small_side_built;
          Alcotest.test_case "projection pushdown" `Quick
            test_projection_pushdown_sets_fields;
          Alcotest.test_case "outer join untouched" `Quick test_outer_join_untouched;
          Alcotest.test_case "true selection dropped" `Quick
            test_true_selection_dropped;
          Alcotest.test_case "adjacent projections collapse" `Quick
            test_adjacent_projections_collapse;
          Alcotest.test_case "identity projection dropped" `Quick
            test_identity_projection_dropped;
          Alcotest.test_case "narrowing projection kept" `Quick
            test_narrowing_projection_kept;
        ] );
      ( "costing",
        [
          Alcotest.test_case "cardinality" `Quick test_cardinality_estimates;
          Alcotest.test_case "format order" `Quick test_format_cost_order;
          Alcotest.test_case "selectivity from stats" `Quick test_selectivity_uses_stats;
          Alcotest.test_case "explain" `Quick test_explain_renders_costs;
        ] );
      ("property", qsuite [ optimize_preserves_prop ]);
    ]
