(* Prepare-once/run-many: parameterized engines, plan-shape fingerprints,
   the compiled-engine cache, the session scheduler and the TCP server.

   The load-bearing differential: a prepared parameterized engine re-bound
   to new constants must be bit-identical to a fresh compile of the same
   plan with those constants inlined — per format, per domain count, per
   batch size, and across zone-map promotion (skip conjuncts re-arm from
   the bound values on every run). *)

open Proteus_model
module Plan = Proteus_algebra.Plan
module Analysis = Proteus_algebra.Analysis
module Fingerprint = Proteus_algebra.Fingerprint
module Compiled = Proteus_engine.Compiled
module Executor = Proteus_engine.Executor
module Engine_cache = Proteus_server.Engine_cache
module Scheduler = Proteus_server.Scheduler
module Server = Proteus_server.Server
module Db = Proteus.Db

let check_value = Alcotest.testable Value.pp Value.equal

(* --- one relational dataset in all four formats ------------------------- *)

let item_type =
  Ptype.Record
    [ ("k", Ptype.Int); ("grp", Ptype.Int); ("price", Ptype.Float);
      ("name", Ptype.String) ]

let items =
  (* quarter-step prices survive the CSV/JSON decimal round-trip exactly,
     so one oracle serves all four formats *)
  List.init 800 (fun i ->
      Value.record
        [ ("k", Value.Int i); ("grp", Value.Int (i mod 7));
          ("price", Value.Float (float_of_int ((i * 37) mod 1000) /. 4.0));
          ("name", Value.String (Fmt.str "n%d" (i mod 13))) ])

let to_json records =
  String.concat "\n"
    (List.map
       (fun r -> Proteus_format.Json.to_string (Proteus_format.Json.of_value r))
       records)

let to_csv records =
  Proteus_format.Csv.of_records Proteus_format.Csv.default_config
    (Schema.of_type item_type) records

let formats = [ "items_csv"; "items_json"; "items_row"; "items_col" ]

let make_db ?caching () =
  let db = Db.create ?caching () in
  Db.register_csv db ~name:"items_csv" ~element:item_type
    ~contents:(to_csv items) ();
  Db.register_json db ~name:"items_json" ~element:item_type
    ~contents:(to_json items);
  Db.register_rows db ~name:"items_row" ~element:item_type items;
  Db.register_columns_of db ~name:"items_col" ~element:item_type items;
  db

(* COUNT + float SUM under a parameterized comparison: float association
   catches any drift between lanes, domains, or re-binds *)
let agg_plan ds rhs =
  Plan.reduce
    ~pred:Expr.(path "x" [ "k" ] <. rhs)
    [ Plan.agg ~name:"c" (Monoid.Primitive Monoid.Count) (Expr.int 1);
      Plan.agg ~name:"s" (Monoid.Primitive Monoid.Sum) (Expr.path "x" [ "price" ]) ]
    (Plan.scan ~dataset:ds ~binding:"x" ())

let group_plan ds rhs =
  Plan.nest
    ~keys:[ ("g", Expr.path "x" [ "grp" ]) ]
    ~aggs:
      [ Plan.agg ~name:"n" (Monoid.Primitive Monoid.Count) (Expr.int 1);
        Plan.agg ~name:"s" (Monoid.Primitive Monoid.Sum) (Expr.path "x" [ "price" ]) ]
    ~pred:Expr.(path "x" [ "k" ] >=. rhs)
    ~binding:"row"
    (Plan.scan ~dataset:ds ~binding:"x" ())

(* --- fingerprints -------------------------------------------------------- *)

let test_shape_literals_collide () =
  List.iter
    (fun mk ->
      Alcotest.(check string)
        "same shape for different comparison constants"
        (Fingerprint.shape (mk (Expr.int 10)))
        (Fingerprint.shape (mk (Expr.int 777))))
    [ agg_plan "items_csv"; group_plan "items_json" ]

let test_shape_differences_split () =
  let base = Fingerprint.shape (agg_plan "items_csv" (Expr.int 10)) in
  let ne what s = Alcotest.(check bool) what false (String.equal base s) in
  (* operator *)
  ne "operator matters"
    (Fingerprint.shape
       (Plan.reduce
          ~pred:Expr.(path "x" [ "k" ] <=. int 10)
          [ Plan.agg ~name:"c" (Monoid.Primitive Monoid.Count) (Expr.int 1);
            Plan.agg ~name:"s" (Monoid.Primitive Monoid.Sum)
              (Expr.path "x" [ "price" ]) ]
          (Plan.scan ~dataset:"items_csv" ~binding:"x" ())));
  (* filtered field *)
  ne "field matters"
    (Fingerprint.shape
       (Plan.reduce
          ~pred:Expr.(path "x" [ "grp" ] <. int 10)
          [ Plan.agg ~name:"c" (Monoid.Primitive Monoid.Count) (Expr.int 1);
            Plan.agg ~name:"s" (Monoid.Primitive Monoid.Sum)
              (Expr.path "x" [ "price" ]) ]
          (Plan.scan ~dataset:"items_csv" ~binding:"x" ())));
  (* dataset *)
  ne "dataset matters" (Fingerprint.shape (agg_plan "items_json" (Expr.int 10)));
  (* LIKE patterns stay inline: different patterns are different shapes *)
  let like pat =
    Fingerprint.shape
      (Plan.reduce
         ~pred:(Expr.Binop (Expr.Like, Expr.path "x" [ "name" ], Expr.str pat))
         [ Plan.agg ~name:"c" (Monoid.Primitive Monoid.Count) (Expr.int 1) ]
         (Plan.scan ~dataset:"items_csv" ~binding:"x" ()))
  in
  Alcotest.(check bool) "LIKE pattern matters" false
    (String.equal (like "n1%") (like "n2%"))

let test_shape_rename_stable () =
  let mk binding =
    Plan.reduce
      ~pred:Expr.(path binding [ "k" ] <. int 42)
      [ Plan.agg ~name:"c" (Monoid.Primitive Monoid.Count) (Expr.int 1) ]
      (Plan.scan ~dataset:"items_csv" ~binding ())
  in
  Alcotest.(check string) "binding names canonicalized"
    (Fingerprint.shape (mk "x"))
    (Fingerprint.shape (mk "row_17"))

let test_parameterize_slots () =
  let plan = agg_plan "items_csv" (Expr.int 42) in
  let pplan, consts = Fingerprint.parameterize plan in
  Alcotest.(check (list (pair string check_value)))
    "one slot, reserved namespace"
    [ ("~0", Value.Int 42) ]
    consts;
  Alcotest.(check (list string)) "plan carries the slot" [ "~0" ]
    (Analysis.params pplan)

(* --- rebind differential: bound engine == fresh compile ------------------ *)

let rebind_vs_fresh ~domains ~batch_size db ds =
  let reg = Db.registry db in
  let param_plan = agg_plan ds (Expr.param "p") in
  let bound =
    if domains > 1 then Compiled.prepare_bound_par ~batch_size reg ~domains param_plan
    else Compiled.prepare_bound ~batch_size reg param_plan
  in
  List.iter
    (fun v ->
      Compiled.bind bound [ ("p", Value.Int v) ];
      let got = bound.Compiled.bd_run () in
      let fresh_plan = agg_plan ds (Expr.int v) in
      let expect =
        if domains > 1 then
          Compiled.execute_par ~batch_size reg ~domains fresh_plan
        else Compiled.execute ~batch_size reg fresh_plan
      in
      Alcotest.check check_value
        (Fmt.str "%s domains=%d batch=%d p=%d" ds domains batch_size v)
        expect got)
    [ 10; 500; 73; 800; 0 ]

let test_rebind_differential () =
  let db = make_db () in
  List.iter
    (fun ds ->
      List.iter
        (fun domains ->
          List.iter
            (fun batch_size -> rebind_vs_fresh ~domains ~batch_size db ds)
            [ 0; 7; Compiled.default_batch_size ])
        [ 1; 3 ])
    formats

let test_rebind_after_promotion () =
  (* promote k's zone map, then check the skip conjunct re-arms from the
     bound value: a bound engine over the promoted layout must agree with
     fresh compiles at every parameter value *)
  let caching =
    { Proteus_cache.Manager.default_config with promote = true; promote_threshold = 2 }
  in
  let db = make_db ~caching () in
  let reg = Db.registry db in
  (* drive the column past the promotion threshold *)
  for _ = 1 to 4 do
    ignore (Compiled.execute reg (agg_plan "items_csv" (Expr.int 100)))
  done;
  Alcotest.(check bool) "k promoted" true
    (Proteus_cache.Manager.is_promoted (Db.cache_manager db)
       ~dataset:"items_csv" ~path:"k");
  List.iter
    (fun domains ->
      rebind_vs_fresh ~domains ~batch_size:Compiled.default_batch_size db
        "items_csv")
    [ 1; 3 ]

let test_unbound_param_reads_null () =
  let db = make_db () in
  let bound = Compiled.prepare_bound (Db.registry db) (agg_plan "items_row" (Expr.param "p")) in
  (* comparisons against an unbound (Null) slot are false: empty selection,
     same as a predicate no row satisfies *)
  Alcotest.check check_value "unbound slot selects nothing"
    (Compiled.execute (Db.registry db) (agg_plan "items_row" (Expr.int (-1))))
    (bound.Compiled.bd_run ());
  Alcotest.check_raises "unknown name"
    (Perror.Plan_error "unknown parameter ?nope") (fun () ->
      Compiled.bind bound [ ("nope", Value.Int 1) ])

(* --- Db-level parameters ------------------------------------------------- *)

let test_sql_params () =
  let db = make_db () in
  let expect = Db.sql db "SELECT COUNT(1) FROM items_csv WHERE k < 500" in
  Alcotest.check check_value "positional ?"
    expect
    (Db.sql db ~params:[ ("1", Value.Int 500) ]
       "SELECT COUNT(1) FROM items_csv WHERE k < ?");
  Alcotest.check check_value "named $p"
    expect
    (Db.sql db ~params:[ ("p", Value.Int 500) ]
       "SELECT COUNT(1) FROM items_csv WHERE k < $p");
  Alcotest.(check bool) "unbound parameter rejected" true
    (match Db.sql db "SELECT COUNT(1) FROM items_csv WHERE k < ?" with
    | exception Perror.Plan_error _ -> true
    | _ -> false)

let test_prepared_staleness () =
  let db = make_db () in
  let p = Db.prepare_sql db "SELECT COUNT(1) FROM items_csv WHERE k >= 0" in
  Alcotest.check check_value "first run" (Value.Int 800) (p.Db.run ());
  (* dataset update: the prepared engine must observe the append *)
  Db.append db ~name:"items_csv"
    (to_csv
       (List.init 10 (fun i ->
            Value.record
              [ ("k", Value.Int (800 + i)); ("grp", Value.Int 0);
                ("price", Value.Float 1.0); ("name", Value.String "x") ])));
  Alcotest.check check_value "sees appended rows" (Value.Int 810) (p.Db.run ());
  (* caching-mode flip: re-stages without changing the answer *)
  Db.set_caching db false;
  Alcotest.check check_value "after set_caching false" (Value.Int 810) (p.Db.run ());
  Db.set_caching db true;
  Alcotest.check check_value "after set_caching true" (Value.Int 810) (p.Db.run ())

(* --- engine cache -------------------------------------------------------- *)

let sql_plan db q = Db.plan_sql db q

let complete v = match (v : Executor.outcome) with
  | Executor.Completed (v, _) -> v
  | _ -> Alcotest.fail "expected completion"

let test_cache_hit_rebind () =
  let db = make_db () in
  let cache = Engine_cache.create db in
  let run q =
    let lease = Engine_cache.acquire cache (sql_plan db q) in
    let v = Engine_cache.run lease in
    Engine_cache.release lease ~clean:true;
    (v, Engine_cache.hit lease)
  in
  let v1, h1 = run "SELECT COUNT(1), SUM(price) FROM items_csv WHERE k < 100" in
  Alcotest.(check bool) "first is a miss" false h1;
  let v2, h2 = run "SELECT COUNT(1), SUM(price) FROM items_csv WHERE k < 300" in
  Alcotest.(check bool) "constant-only change hits" true h2;
  Alcotest.check check_value "hit result correct"
    (Db.sql db "SELECT COUNT(1), SUM(price) FROM items_csv WHERE k < 300")
    v2;
  Alcotest.(check bool) "different results" false (Value.equal v1 v2);
  (* operator change is a different shape *)
  let _, h3 = run "SELECT COUNT(1), SUM(price) FROM items_csv WHERE k <= 300" in
  Alcotest.(check bool) "operator change misses" false h3;
  let s = Engine_cache.stats cache in
  Alcotest.(check int) "hits" 1 s.Engine_cache.hits;
  Alcotest.(check int) "misses" 2 s.Engine_cache.misses;
  Alcotest.(check int) "installs" 2 s.Engine_cache.installs

let test_cache_key_includes_engine_config () =
  let db = make_db () in
  let cache = Engine_cache.create db in
  let acquire ?domains ?batch_size () =
    let lease =
      Engine_cache.acquire cache ?domains ?batch_size
        (sql_plan db "SELECT COUNT(1) FROM items_row WHERE k < 5")
    in
    ignore (Engine_cache.run lease);
    Engine_cache.release lease ~clean:true;
    Engine_cache.hit lease
  in
  Alcotest.(check bool) "cold" false (acquire ());
  Alcotest.(check bool) "same config hits" true (acquire ());
  Alcotest.(check bool) "batch size is part of the key" false
    (acquire ~batch_size:0 ());
  Alcotest.(check bool) "domain count is part of the key" false
    (acquire ~domains:2 ())

let test_cache_invalidation () =
  let db = make_db () in
  let cache = Engine_cache.create db in
  let acquire () =
    let lease =
      Engine_cache.acquire cache
        (sql_plan db "SELECT COUNT(1) FROM items_json WHERE k < 100")
    in
    let v = Engine_cache.run lease in
    Engine_cache.release lease ~clean:true;
    (v, Engine_cache.hit lease)
  in
  let _ = acquire () in
  let _, h = acquire () in
  Alcotest.(check bool) "warm" true h;
  Db.append db ~name:"items_json"
    (to_json [ Value.record
                 [ ("k", Value.Int 1); ("grp", Value.Int 0);
                   ("price", Value.Float 0.25); ("name", Value.String "x") ] ]);
  let v, h = acquire () in
  Alcotest.(check bool) "append invalidates" false h;
  Alcotest.check check_value "recompiled engine sees the append"
    (Value.Int 101) v;
  Alcotest.(check bool) "invalidations counted" true
    ((Engine_cache.stats cache).Engine_cache.invalidations > 0)

let test_cache_invalidation_on_promotion () =
  let caching =
    { Proteus_cache.Manager.default_config with promote = true; promote_threshold = 2 }
  in
  let db = make_db ~caching () in
  let cache = Engine_cache.create db in
  (* the resident engine is deliberately NOT selective on k (a selective
     engine would drive the promotion itself mid-run and self-quarantine,
     which the quarantine test covers): a bare aggregate over items_csv *)
  let q = "SELECT COUNT(1) FROM items_csv" in
  let acquire () =
    let lease = Engine_cache.acquire cache (sql_plan db q) in
    let r = Engine_cache.run lease in
    Engine_cache.release lease ~clean:true;
    (r, Engine_cache.hit lease)
  in
  ignore (acquire ());
  let _, h = acquire () in
  Alcotest.(check bool) "resident" true h;
  let before = (Engine_cache.stats cache).Engine_cache.invalidations in
  (* repeated selective fresh compiles drive k past the promotion
     threshold: the promotion hook must drop every items_csv engine,
     including the resident one staged against the pre-promotion layout *)
  let reg = Db.registry db in
  for i = 1 to 6 do
    ignore (Compiled.execute reg (agg_plan "items_csv" (Expr.int (30 + i))))
  done;
  Alcotest.(check bool) "k promoted" true
    (Proteus_cache.Manager.is_promoted (Db.cache_manager db)
       ~dataset:"items_csv" ~path:"k");
  Alcotest.(check bool) "promotion invalidated cached engines" true
    ((Engine_cache.stats cache).Engine_cache.invalidations > before);
  (* and the next acquire recompiles against the promoted layout *)
  let v, h = acquire () in
  Alcotest.(check bool) "recompiled" false h;
  Alcotest.check check_value "post-promotion result" (Value.Int 800) v

let test_cache_quarantine () =
  let db = make_db () in
  let cache = Engine_cache.create db in
  let q = "SELECT COUNT(1) FROM items_row WHERE k < 100" in
  (* an unclean first run must NOT install *)
  let lease = Engine_cache.acquire cache (sql_plan db q) in
  ignore (Engine_cache.run lease);
  Engine_cache.release lease ~clean:false;
  let s = Engine_cache.stats cache in
  Alcotest.(check int) "nothing installed" 0 s.Engine_cache.installs;
  Alcotest.(check int) "poisoned counted" 1 s.Engine_cache.poisoned;
  (* a clean run installs; a later unclean run on the cached engine evicts *)
  let lease = Engine_cache.acquire cache (sql_plan db q) in
  ignore (Engine_cache.run lease);
  Engine_cache.release lease ~clean:true;
  Alcotest.(check int) "installed after clean run" 1
    (Engine_cache.stats cache).Engine_cache.installs;
  let lease = Engine_cache.acquire cache (sql_plan db q) in
  Alcotest.(check bool) "served from cache" true (Engine_cache.hit lease);
  ignore (Engine_cache.run lease);
  Engine_cache.release lease ~clean:false;
  let s = Engine_cache.stats cache in
  Alcotest.(check int) "poisoned engine evicted" 0 s.Engine_cache.entries;
  let lease = Engine_cache.acquire cache (sql_plan db q) in
  Alcotest.(check bool) "not reused after poisoning" false (Engine_cache.hit lease);
  ignore (Engine_cache.run lease);
  Engine_cache.release lease ~clean:true

let test_cache_lru_eviction () =
  let db = make_db () in
  let cache = Engine_cache.create ~capacity:2 db in
  let run q =
    let lease = Engine_cache.acquire cache (sql_plan db q) in
    ignore (Engine_cache.run lease);
    Engine_cache.release lease ~clean:true;
    Engine_cache.hit lease
  in
  ignore (run "SELECT COUNT(1) FROM items_csv WHERE k < 1");
  ignore (run "SELECT COUNT(1) FROM items_json WHERE k < 1");
  ignore (run "SELECT COUNT(1) FROM items_row WHERE k < 1");
  let s = Engine_cache.stats cache in
  Alcotest.(check int) "capacity respected" 2 s.Engine_cache.entries;
  Alcotest.(check bool) "eviction counted" true (s.Engine_cache.evictions > 0);
  (* the oldest (csv) shape was evicted; the newest two still hit *)
  Alcotest.(check bool) "recent shape survives" true
    (run "SELECT COUNT(1) FROM items_row WHERE k < 7");
  Alcotest.(check bool) "oldest shape evicted" false
    (run "SELECT COUNT(1) FROM items_csv WHERE k < 7")

(* --- scheduler ----------------------------------------------------------- *)

let queries =
  [ "SELECT COUNT(1), SUM(price) FROM items_csv WHERE k < 100";
    "SELECT COUNT(1), SUM(price) FROM items_csv WHERE k < 500";
    "SELECT COUNT(1), SUM(price) FROM items_json WHERE k < 250";
    "SELECT grp, COUNT(1), SUM(price) FROM items_row WHERE k >= 40 GROUP BY grp ORDER BY grp";
    "SELECT COUNT(1), SUM(price) FROM items_col WHERE k < 640";
    "SELECT COUNT(1) FROM items_row WHERE grp = 3";
    "SELECT COUNT(1), SUM(price) FROM items_csv WHERE k < 123";
    "SELECT COUNT(1), SUM(price) FROM items_json WHERE k < 789" ]

let test_concurrent_matches_serial () =
  (* serial oracle on one session ... *)
  let db_serial = make_db () in
  let expected = List.map (fun q -> Db.sql db_serial q) queries in
  (* ... concurrent clients on another: every outcome must be bit-identical,
     including repeated rounds where later rounds hit the engine cache *)
  let db = make_db () in
  let sched = Scheduler.create ~workers:4 db in
  Fun.protect
    ~finally:(fun () -> Scheduler.shutdown sched)
    (fun () ->
      for round = 1 to 3 do
        let tickets =
          List.map
            (fun q ->
              match Scheduler.submit sched (Scheduler.request q) with
              | Ok tk -> tk
              | Error _ -> Alcotest.fail "queue bound hit unexpectedly")
            queries
        in
        List.iteri
          (fun i tk ->
            let c = Scheduler.await tk in
            match c.Scheduler.cp_outcome with
            | Executor.Completed (v, _) ->
              Alcotest.check check_value
                (Fmt.str "round %d query %d" round i)
                (List.nth expected i) v
            | _ -> Alcotest.fail (Fmt.str "round %d query %d did not complete" round i))
          tickets
      done;
      let s = Engine_cache.stats (Scheduler.engine_cache sched) in
      Alcotest.(check bool) "later rounds hit the engine cache" true
        (s.Engine_cache.hits >= List.length queries))

let test_scheduler_params_and_hits () =
  let db = make_db () in
  let sched = Scheduler.create ~workers:2 db in
  Fun.protect
    ~finally:(fun () -> Scheduler.shutdown sched)
    (fun () ->
      let run v =
        match
          Scheduler.run sched
            (Scheduler.request ~params:[ ("1", Value.Int v) ]
               "SELECT COUNT(1) FROM items_csv WHERE k < ?")
        with
        | Ok c -> c
        | Error _ -> Alcotest.fail "rejected"
      in
      let c1 = run 100 in
      Alcotest.check check_value "first" (Value.Int 100)
        (complete c1.Scheduler.cp_outcome);
      Alcotest.(check bool) "first compiles" false c1.Scheduler.cp_hit;
      let c2 = run 400 in
      Alcotest.check check_value "rebound" (Value.Int 400)
        (complete c2.Scheduler.cp_outcome);
      Alcotest.(check bool) "second hits" true c2.Scheduler.cp_hit;
      Alcotest.(check bool) "hit pays no staging" true
        (c2.Scheduler.cp_compile_seconds = 0.))

let test_scheduler_overload () =
  let db = make_db () in
  let sched = Scheduler.create ~workers:1 ~max_queue:1 db in
  Fun.protect
    ~finally:(fun () -> Scheduler.shutdown sched)
    (fun () ->
      let submitted =
        List.init 50 (fun i ->
            Scheduler.submit sched
              (Scheduler.request
                 (Fmt.str "SELECT COUNT(1), SUM(price) FROM items_csv WHERE k < %d" (i + 1))))
      in
      let accepted =
        List.filter_map (function Ok tk -> Some tk | Error _ -> None) submitted
      in
      Alcotest.(check bool) "some rejected" true
        (List.length accepted < List.length submitted);
      Alcotest.(check bool) "some accepted" true (List.length accepted >= 1);
      (* accepted work still completes correctly *)
      List.iter
        (fun tk ->
          match (Scheduler.await tk).Scheduler.cp_outcome with
          | Executor.Completed (Value.Record _, _) -> ()
          | _ -> Alcotest.fail "accepted query failed")
        accepted;
      Alcotest.(check bool) "rejections counted" true
        ((Scheduler.stats sched).Scheduler.rejected > 0))

let test_scheduler_deadline () =
  let db = make_db () in
  let sched = Scheduler.create ~workers:1 db in
  Fun.protect
    ~finally:(fun () -> Scheduler.shutdown sched)
    (fun () ->
      (* a cross join with a residual float filter: ~640k probes, far past
         a 1 ms budget; the cooperative token stops it at a batch boundary *)
      match
        Scheduler.run sched
          (Scheduler.request ~timeout_ms:1
             "SELECT COUNT(1) FROM items_csv a, items_json b WHERE a.price + b.price > 1.0")
      with
      | Ok { Scheduler.cp_outcome = Executor.Timed_out _; _ } -> ()
      | Ok { Scheduler.cp_outcome = Executor.Cancelled _; _ } -> ()
      | Ok _ -> Alcotest.fail "expected a deadline expiry"
      | Error _ -> Alcotest.fail "rejected")

let test_scheduler_fairness () =
  (* workers:0 + drain_one makes the round-robin fully deterministic:
     client a's backlog of 3 is submitted before client b's single query,
     yet b runs second — a newcomer waits one turn, not a whole backlog *)
  let db = make_db () in
  let sched = Scheduler.create ~workers:0 db in
  Fun.protect
    ~finally:(fun () -> Scheduler.shutdown sched)
    (fun () ->
      let submit client v =
        match
          Scheduler.submit sched
            (Scheduler.request ~client
               (Fmt.str "SELECT COUNT(1) FROM items_row WHERE k < %d" v))
        with
        | Ok tk -> tk
        | Error _ -> Alcotest.fail "rejected"
      in
      let a1 = submit "a" 1 and a2 = submit "a" 2 and a3 = submit "a" 3 in
      let b1 = submit "b" 100 in
      (* each drain_one runs exactly one job synchronously, so awaiting
         right after is deterministic: the awaited ticket resolved iff its
         turn just ran. Turn 1: a1 *)
      Alcotest.(check bool) "turn 1" true (Scheduler.drain_one sched);
      Alcotest.check check_value "a1 first" (Value.Int 1)
        (complete (Scheduler.await a1).Scheduler.cp_outcome);
      (* turn 2 must be b1, not a2: b entered the ring behind a, and a
         rotated to the back after a1 *)
      Alcotest.(check bool) "turn 2" true (Scheduler.drain_one sched);
      Alcotest.check check_value "b1 second" (Value.Int 100)
        (complete (Scheduler.await b1).Scheduler.cp_outcome);
      (* a's remaining backlog drains in FIFO order with itself *)
      Alcotest.(check bool) "turn 3" true (Scheduler.drain_one sched);
      Alcotest.check check_value "a2 third" (Value.Int 2)
        (complete (Scheduler.await a2).Scheduler.cp_outcome);
      Alcotest.(check bool) "turn 4" true (Scheduler.drain_one sched);
      Alcotest.check check_value "a3 fourth" (Value.Int 3)
        (complete (Scheduler.await a3).Scheduler.cp_outcome);
      Alcotest.(check bool) "queue drained" false (Scheduler.drain_one sched))

let test_scheduler_parse_error () =
  let db = make_db () in
  let sched = Scheduler.create ~workers:1 db in
  Fun.protect
    ~finally:(fun () -> Scheduler.shutdown sched)
    (fun () ->
      match Scheduler.run sched (Scheduler.request "SELECT FROM nonsense !!") with
      | Ok { Scheduler.cp_outcome = Executor.Failed _; _ } -> ()
      | _ -> Alcotest.fail "expected a failed outcome")

(* --- TCP server ---------------------------------------------------------- *)

let test_tcp_roundtrip () =
  let db = make_db () in
  let stop = Atomic.make false in
  let port = Atomic.make 0 in
  let srv =
    Domain.spawn (fun () ->
        Server.serve
          ~ready:(fun p -> Atomic.set port p)
          ~stop db
          { Server.default_config with port = 0; workers = 2 })
  in
  let rec wait_port n =
    if Atomic.get port = 0 then
      if n = 0 then Alcotest.fail "server did not come up"
      else begin
        Unix.sleepf 0.05;
        wait_port (n - 1)
      end
  in
  wait_port 100;
  Fun.protect
    ~finally:(fun () ->
      Atomic.set stop true;
      Domain.join srv)
    (fun () ->
      Server.with_connection ~port:(Atomic.get port) (fun inc out ->
          let send line = output_string out (line ^ "\n"); flush out in
          let recv () = input_line inc in
          send "ping";
          Alcotest.(check string) "pong" "pong" (recv ());
          send "run SELECT COUNT(1) FROM items_csv WHERE k < 100";
          Alcotest.(check string) "ok 1" "ok 1" (recv ());
          Alcotest.(check string) "count" "100" (recv ());
          send "param 300";
          Alcotest.(check string) "param ok" "ok" (recv ());
          send "run SELECT COUNT(1) FROM items_csv WHERE k < ?";
          Alcotest.(check string) "ok 1 (rebound)" "ok 1" (recv ());
          Alcotest.(check string) "rebound count" "300" (recv ());
          send "stats";
          let stats_line = recv () in
          let contains needle =
            let n = String.length needle and h = String.length stats_line in
            let rec go i = i + n <= h && (String.sub stats_line i n = needle || go (i + 1)) in
            go 0
          in
          Alcotest.(check bool) "stats mention a hit" true (contains "hits=1");
          Alcotest.(check bool) "stats mention a miss" true (contains "misses=1");
          send "nonsense";
          let l = recv () in
          Alcotest.(check bool) "unknown command errors" true
            (String.length l >= 3 && String.sub l 0 3 = "err");
          send "quit";
          Alcotest.(check string) "bye" "bye" (recv ())))

let () =
  Alcotest.run "server"
    [
      ( "fingerprint",
        [
          Alcotest.test_case "literals collide" `Quick test_shape_literals_collide;
          Alcotest.test_case "structural differences split" `Quick
            test_shape_differences_split;
          Alcotest.test_case "rename stable" `Quick test_shape_rename_stable;
          Alcotest.test_case "parameterize slots" `Quick test_parameterize_slots;
        ] );
      ( "rebind",
        [
          Alcotest.test_case "bound == fresh (formats x domains x batch)" `Quick
            test_rebind_differential;
          Alcotest.test_case "bound == fresh after promotion" `Quick
            test_rebind_after_promotion;
          Alcotest.test_case "unbound slot reads Null" `Quick
            test_unbound_param_reads_null;
        ] );
      ( "db-params",
        [
          Alcotest.test_case "sql ?params" `Quick test_sql_params;
          Alcotest.test_case "prepared statements observe updates" `Quick
            test_prepared_staleness;
        ] );
      ( "engine-cache",
        [
          Alcotest.test_case "hit re-binds" `Quick test_cache_hit_rebind;
          Alcotest.test_case "key includes engine config" `Quick
            test_cache_key_includes_engine_config;
          Alcotest.test_case "append invalidates" `Quick test_cache_invalidation;
          Alcotest.test_case "promotion invalidates" `Quick
            test_cache_invalidation_on_promotion;
          Alcotest.test_case "quarantine" `Quick test_cache_quarantine;
          Alcotest.test_case "LRU eviction" `Quick test_cache_lru_eviction;
        ] );
      ( "scheduler",
        [
          Alcotest.test_case "concurrent == serial" `Quick
            test_concurrent_matches_serial;
          Alcotest.test_case "params and hits" `Quick test_scheduler_params_and_hits;
          Alcotest.test_case "admission control" `Quick test_scheduler_overload;
          Alcotest.test_case "deadline" `Quick test_scheduler_deadline;
          Alcotest.test_case "round-robin fairness" `Quick test_scheduler_fairness;
          Alcotest.test_case "parse error" `Quick test_scheduler_parse_error;
        ] );
      ("server", [ Alcotest.test_case "tcp roundtrip" `Quick test_tcp_roundtrip ]);
    ]
