(* Differential tests for the vectorized (batch) execution lane: on the same
   plans and datasets (every format plug-in), the batch lane must agree —
   bit for bit, floats included — with the tuple-at-a-time lane
   ([~batch_size:0]), the Volcano interpreter and the reference algebra
   evaluator, serially and at every domain count, across batch sizes, and
   across the spill boundary where a batched scan feeds tuple-lane
   operators (joins, group-bys, sorts, unnests, bag collectors). *)

open Proteus_model
open Proteus_storage
open Proteus_catalog
open Proteus_plugin
open Proteus_engine
module Plan = Proteus_algebra.Plan
module Interp = Proteus_algebra.Interp
module Manager = Proteus_cache.Manager

let check_value = Alcotest.testable Value.pp Value.equal

(* --- one relational dataset in all four formats ---------------------------- *)

let item_type =
  Ptype.Record
    [ ("k", Ptype.Int); ("grp", Ptype.Int); ("price", Ptype.Float);
      ("name", Ptype.String) ]

let item_schema = Schema.of_type item_type

let items =
  (* quarter-step prices survive the CSV/JSON decimal round-trip bit-exactly,
     so one oracle serves all four formats *)
  List.init 800 (fun i ->
      Value.record
        [ ("k", Value.Int i); ("grp", Value.Int (i mod 7));
          ("price", Value.Float (float_of_int ((i * 37) mod 1000) /. 4.0));
          ("name", Value.String (Fmt.str "n%d" (i mod 13))) ])

(* nullable fields: score/tag are absent on every third row *)
let sparse_type =
  Ptype.Record
    [ ("id", Ptype.Int); ("score", Ptype.Option Ptype.Float);
      ("tag", Ptype.Option Ptype.String) ]

let sparse =
  List.init 200 (fun i ->
      let score = if i mod 3 = 0 then Value.Null else Value.Float (float_of_int i /. 4.0) in
      let tag = if i mod 3 = 0 then Value.Null else Value.String (Fmt.str "t%d" (i mod 5)) in
      Value.record [ ("id", Value.Int i); ("score", score); ("tag", tag) ])

let groups_type = Ptype.Record [ ("gid", Ptype.Int); ("label", Ptype.String) ]

let groups =
  List.init 7 (fun g ->
      Value.record [ ("gid", Value.Int g); ("label", Value.String (Fmt.str "g%d" g)) ])

let nested_type =
  Ptype.Record
    [
      ("id", Ptype.Int);
      ( "kids",
        Ptype.Collection
          (Ptype.List, Ptype.Record [ ("age", Ptype.Int); ("nick", Ptype.String) ]) );
    ]

let nested =
  List.init 120 (fun i ->
      let kids =
        List.init (i mod 4) (fun j ->
            Value.record
              [ ("age", Value.Int ((i + (j * 11)) mod 40));
                ("nick", Value.String (Fmt.str "kid%d_%d" i j)) ])
      in
      Value.record [ ("id", Value.Int i); ("kids", Value.list_ kids) ])

(* floats that are NOT exactly summable: any change of fold order or
   operation sequence between the lanes flips low-order bits *)
let harmonic_type = Ptype.Record [ ("i", Ptype.Int); ("w", Ptype.Float) ]

let harmonic =
  List.init 700 (fun i ->
      Value.record
        [ ("i", Value.Int i); ("w", Value.Float (1.0 /. float_of_int (i + 3))) ])

let to_json records =
  String.concat "\n"
    (List.map
       (fun r -> Proteus_format.Json.to_string (Proteus_format.Json.of_value r))
       records)

let make_catalog () =
  let cat = Catalog.create () in
  let mem = Catalog.memory cat in
  Memory.register_blob mem ~name:"items.csv"
    (Proteus_format.Csv.of_records Proteus_format.Csv.default_config item_schema items);
  Catalog.register cat
    (Dataset.make ~name:"items_csv"
       ~format:(Dataset.Csv Proteus_format.Csv.default_config)
       ~location:(Dataset.Blob "items.csv") ~element:item_type);
  Memory.register_blob mem ~name:"items.json" (to_json items);
  Catalog.register cat
    (Dataset.make ~name:"items_json" ~format:Dataset.Json
       ~location:(Dataset.Blob "items.json") ~element:item_type);
  Catalog.register cat
    (Dataset.make ~name:"items_row" ~format:Dataset.Binary_row
       ~location:(Dataset.Rows (Rowpage.of_records item_schema items))
       ~element:item_type);
  let col name ty =
    (name, Column.of_values ty (List.map (fun r -> Value.field r name) items))
  in
  Catalog.register cat
    (Dataset.make ~name:"items_col" ~format:Dataset.Binary_column
       ~location:
         (Dataset.Columns
            [ col "k" Ptype.Int; col "grp" Ptype.Int; col "price" Ptype.Float;
              col "name" Ptype.String ])
       ~element:item_type);
  Memory.register_blob mem ~name:"sparse.json" (to_json sparse);
  Catalog.register cat
    (Dataset.make ~name:"sparse_json" ~format:Dataset.Json
       ~location:(Dataset.Blob "sparse.json") ~element:sparse_type);
  let scol name ty =
    (name, Column.of_values ty (List.map (fun r -> Value.field r name) sparse))
  in
  Catalog.register cat
    (Dataset.make ~name:"sparse_col" ~format:Dataset.Binary_column
       ~location:
         (Dataset.Columns
            [ scol "id" Ptype.Int; scol "score" (Ptype.Option Ptype.Float);
              scol "tag" (Ptype.Option Ptype.String) ])
       ~element:sparse_type);
  let hcol name ty =
    (name, Column.of_values ty (List.map (fun r -> Value.field r name) harmonic))
  in
  Catalog.register cat
    (Dataset.make ~name:"harmonic" ~format:Dataset.Binary_column
       ~location:(Dataset.Columns [ hcol "i" Ptype.Int; hcol "w" Ptype.Float ])
       ~element:harmonic_type);
  Memory.register_blob mem ~name:"groups.json" (to_json groups);
  Catalog.register cat
    (Dataset.make ~name:"groups" ~format:Dataset.Json
       ~location:(Dataset.Blob "groups.json") ~element:groups_type);
  Memory.register_blob mem ~name:"nested.json" (to_json nested);
  Catalog.register cat
    (Dataset.make ~name:"nested" ~format:Dataset.Json
       ~location:(Dataset.Blob "nested.json") ~element:nested_type);
  cat

let lookup name =
  match name with
  | "items_csv" | "items_json" | "items_row" | "items_col" -> items
  | "sparse_json" | "sparse_col" -> sparse
  | "harmonic" -> harmonic
  | "groups" -> groups
  | "nested" -> nested
  | other -> Perror.plan_error "no dataset %s" other

let sort_bag v =
  match v with
  | Value.Coll (Ptype.Bag, es) -> Value.Coll (Ptype.Bag, List.sort Value.compare es)
  | v -> v

let registry = lazy (Registry.create (make_catalog ()))

(* The core differential harness: the batch lane (several batch sizes, so
   fragment boundaries land everywhere) against the tuple lane, the Volcano
   interpreter and the reference evaluator; then batch-vs-tuple at 2 and 4
   domains, where the comparison is exact (order included) because the two
   lanes share the morsel merge structure. *)
let check_lanes ?(name = "plan") plan =
  let reg = Lazy.force registry in
  let expected = sort_bag (Interp.run ~lookup plan) in
  let tuple = Compiled.execute ~batch_size:0 reg plan in
  let volcano = Volcano.execute reg plan in
  Alcotest.check check_value (name ^ " (tuple vs oracle)") expected (sort_bag tuple);
  Alcotest.check check_value (name ^ " (volcano vs oracle)") expected (sort_bag volcano);
  List.iter
    (fun bs ->
      let batch = Compiled.execute ~batch_size:bs reg plan in
      Alcotest.check check_value (Fmt.str "%s (batch %d == tuple)" name bs) tuple batch)
    [ 1; 7; 256; 1024; 4096 ];
  List.iter
    (fun domains ->
      let tuple_par = Compiled.execute_par ~batch_size:0 reg ~domains plan in
      let batch_par = Compiled.execute_par reg ~domains plan in
      Alcotest.check check_value
        (Fmt.str "%s (batch == tuple, %d domains)" name domains)
        tuple_par batch_par;
      Alcotest.check check_value
        (Fmt.str "%s (parallel batch vs oracle, %d domains)" name domains)
        expected (sort_bag batch_par))
    [ 2; 4 ]

let item_datasets = [ "items_csv"; "items_json"; "items_row"; "items_col" ]

(* --- scan → select → aggregate, fully on the batch lane -------------------- *)

let test_scan_aggregate () =
  List.iter
    (fun ds ->
      check_lanes ~name:ds
        (Plan.reduce
           [
             Plan.agg ~name:"c" (Monoid.Primitive Monoid.Count) (Expr.int 1);
             Plan.agg ~name:"sp" (Monoid.Primitive Monoid.Sum)
               Expr.(Field (var "x", "price"));
             Plan.agg ~name:"sk" (Monoid.Primitive Monoid.Sum) Expr.(Field (var "x", "k"));
             Plan.agg ~name:"mx" (Monoid.Primitive Monoid.Max)
               Expr.(Field (var "x", "price"));
             Plan.agg ~name:"mn" (Monoid.Primitive Monoid.Min) Expr.(Field (var "x", "k"));
             Plan.agg ~name:"av" (Monoid.Primitive Monoid.Avg)
               Expr.(Field (var "x", "price"));
           ]
           (Plan.select
              Expr.(Field (var "x", "price") >=. float 40.0)
              (Plan.scan ~dataset:ds ~binding:"x" ()))))
    item_datasets

let test_multi_conjunct () =
  (* one vectorizable conjunct, one string equality, stacked Selects *)
  List.iter
    (fun ds ->
      check_lanes ~name:ds
        (Plan.reduce
           [ Plan.agg ~name:"s" (Monoid.Primitive Monoid.Sum) Expr.(Field (var "x", "k")) ]
           (Plan.select
              Expr.(Field (var "x", "name") ==. str "n3")
              (Plan.select
                 Expr.(Field (var "x", "k") >=. int 100 &&& (Field (var "x", "grp") <. int 5))
                 (Plan.scan ~dataset:ds ~binding:"x" ())))))
    item_datasets

let test_short_circuit () =
  (* [&&&] must evaluate its right side only on lanes the left leaves
     undecided: k = 0 rows would raise Division_by_zero eagerly *)
  check_lanes ~name:"guarded division"
    (Plan.reduce
       [ Plan.agg ~name:"c" (Monoid.Primitive Monoid.Count) (Expr.int 1) ]
       (Plan.select
          Expr.(Field (var "x", "k") >. int 0 &&& (int 7200 /. Field (var "x", "k") >=. int 36))
          (Plan.scan ~dataset:"items_col" ~binding:"x" ())))

let test_arith_kernels () =
  (* mixed int/float arithmetic inside both predicate and aggregates *)
  check_lanes ~name:"arith"
    (Plan.reduce
       ~pred:Expr.(Field (var "x", "price") *. float 2.0 >. Field (var "x", "k") +. int 10)
       [
         Plan.agg ~name:"s" (Monoid.Primitive Monoid.Sum)
           Expr.(Field (var "x", "price") *. float 0.25 +. Field (var "x", "k"));
         Plan.agg ~name:"a" (Monoid.Primitive Monoid.Avg)
           Expr.(Field (var "x", "price") -. float 3.5);
       ]
       (Plan.scan ~dataset:"items_col" ~binding:"x" ()))

(* --- nullable fields: the batch lane falls back leaf-by-leaf --------------- *)

let test_nullable () =
  List.iter
    (fun ds ->
      check_lanes ~name:ds
        (Plan.reduce
           ~pred:Expr.(Unop (Not, Unop (Is_null, Field (var "s", "score"))))
           [
             Plan.agg ~name:"c" (Monoid.Primitive Monoid.Count) (Expr.int 1);
             Plan.agg ~name:"sum" (Monoid.Primitive Monoid.Sum)
               Expr.(Field (var "s", "score"));
           ]
           (Plan.select
              Expr.(Field (var "s", "id") <. int 150)
              (Plan.scan ~dataset:ds ~binding:"s" ()))))
    [ "sparse_json"; "sparse_col" ]

(* --- the spill boundary: batched fragment feeding tuple-lane operators ----- *)

let test_spill_join () =
  (* batched select-over-scan drives a tuple-lane join probe *)
  List.iter
    (fun ds ->
      check_lanes ~name:ds
        (Plan.reduce
           [
             Plan.agg ~name:"c" (Monoid.Primitive Monoid.Count) (Expr.int 1);
             Plan.agg ~name:"m" (Monoid.Primitive Monoid.Max) Expr.(Field (var "x", "k"));
           ]
           (Plan.select
              Expr.(Field (var "x", "k") <. int 650)
              (Plan.join
                 ~pred:Expr.(Field (var "x", "grp") ==. Field (var "g", "gid"))
                 (Plan.select
                    Expr.(Field (var "x", "price") >=. float 10.0)
                    (Plan.scan ~dataset:ds ~binding:"x" ()))
                 (Plan.scan ~dataset:"groups" ~binding:"g" ())))))
    item_datasets

let test_spill_collect () =
  (* collection monoid: the fold itself stays on the tuple lane, fed by the
     batched fragment — output order must be the scan order *)
  let plan =
    Plan.reduce
      [
        Plan.agg ~name:"r" (Monoid.Collection Ptype.Bag)
          Expr.(Field (var "x", "price") +. float 1.0);
      ]
      (Plan.select
         Expr.(Field (var "x", "k") <. int 40)
         (Plan.scan ~dataset:"items_col" ~binding:"x" ()))
  in
  let reg = Lazy.force registry in
  (* order-sensitive equality between the lanes *)
  Alcotest.check check_value "bag order across lanes"
    (Compiled.execute ~batch_size:0 reg plan)
    (Compiled.execute reg plan);
  check_lanes ~name:"collect bag" plan

let test_spill_group_by () =
  List.iter
    (fun ds ->
      check_lanes ~name:ds
        (Plan.nest
           ~keys:[ ("g", Expr.(Field (var "x", "grp"))) ]
           ~aggs:
             [
               Plan.agg ~name:"n" (Monoid.Primitive Monoid.Count) (Expr.int 1);
               Plan.agg ~name:"total" (Monoid.Primitive Monoid.Sum)
                 Expr.(Field (var "x", "price"));
             ]
           ~binding:"grp"
           (Plan.select
              Expr.(Field (var "x", "k") >=. int 25)
              (Plan.scan ~dataset:ds ~binding:"x" ()))))
    item_datasets

let test_spill_sort () =
  let plan =
    Plan.sort ~limit:23
      ~keys:
        [ (Expr.(Field (var "x", "grp")), Plan.Asc);
          (Expr.(Field (var "x", "price")), Plan.Desc) ]
      (Plan.select
         Expr.(Field (var "x", "k") <. int 300)
         (Plan.scan ~dataset:"items_csv" ~binding:"x" ()))
  in
  let reg = Lazy.force registry in
  let expected = Interp.run ~lookup plan in
  Alcotest.check check_value "sort (tuple)" expected
    (Compiled.execute ~batch_size:0 reg plan);
  Alcotest.check check_value "sort (batch)" expected (Compiled.execute reg plan);
  List.iter
    (fun domains ->
      Alcotest.check check_value
        (Fmt.str "sort (batch, %d domains)" domains)
        expected
        (Compiled.execute_par reg ~domains plan))
    [ 2; 4 ]

let test_spill_unnest () =
  (* the structural-index unnest fast path reads the cursor the batched
     fragment just seeked *)
  check_lanes ~name:"unnest"
    (Plan.reduce
       [ Plan.agg ~name:"c" (Monoid.Primitive Monoid.Count) (Expr.int 1) ]
       (Plan.unnest
          ~pred:Expr.(Field (var "kid", "age") >. int 18)
          ~path:Expr.(Field (var "n", "kids"))
          ~binding:"kid"
          (Plan.select
             Expr.(Field (var "n", "id") <. int 90)
             (Plan.scan ~dataset:"nested" ~binding:"n" ()))))

(* --- project fusion: scan → select → project → aggregate ------------------- *)

let test_project_fusion () =
  List.iter
    (fun ds ->
      check_lanes ~name:ds
        (Plan.reduce
           [
             Plan.agg ~name:"s" (Monoid.Primitive Monoid.Sum) Expr.(Field (var "o", "pp"));
             Plan.agg ~name:"m" (Monoid.Primitive Monoid.Max) Expr.(Field (var "o", "kk"));
           ]
           (Plan.project ~binding:"o"
              ~fields:
                [ ("pp", Expr.(Field (var "x", "price") *. float 2.0));
                  ("kk", Expr.(Field (var "x", "k") +. int 1)) ]
              (Plan.select
                 Expr.(Field (var "x", "grp") ==. int 3)
                 (Plan.scan ~dataset:ds ~binding:"x" ())))))
    item_datasets

(* --- float bit-identity across lanes, batch sizes and domain counts -------- *)

let float_bits v field =
  match Value.field v field with
  | Value.Float f -> Int64.bits_of_float f
  | v -> Alcotest.failf "expected float in %s, got %a" field Value.pp v

let test_float_bit_identity () =
  let reg = Lazy.force registry in
  let plan =
    Plan.reduce
      ~pred:Expr.(Field (var "x", "i") >=. int 5)
      [
        Plan.agg ~name:"s" (Monoid.Primitive Monoid.Sum) Expr.(Field (var "x", "w"));
        Plan.agg ~name:"a" (Monoid.Primitive Monoid.Avg) Expr.(Field (var "x", "w"));
      ]
      (Plan.scan ~dataset:"harmonic" ~binding:"x" ())
  in
  let tuple = Compiled.execute ~batch_size:0 reg plan in
  List.iter
    (fun bs ->
      let batch = Compiled.execute ~batch_size:bs reg plan in
      List.iter
        (fun f ->
          Alcotest.(check int64)
            (Fmt.str "serial %s bits at batch=%d" f bs)
            (float_bits tuple f) (float_bits batch f))
        [ "s"; "a" ])
    [ 1; 7; 256; 1024; 4096 ];
  List.iter
    (fun domains ->
      let tuple_par = Compiled.execute_par ~batch_size:0 reg ~domains plan in
      let batch_par = Compiled.execute_par reg ~domains plan in
      List.iter
        (fun f ->
          Alcotest.(check int64)
            (Fmt.str "%d-domain %s bits" domains f)
            (float_bits tuple_par f) (float_bits batch_par f))
        [ "s"; "a" ])
    [ 2; 3; 4 ];
  (* and the batch lane is itself deterministic across domain counts *)
  Alcotest.check check_value "batch lane: 2 == 4 domains"
    (Compiled.execute_par reg ~domains:2 plan)
    (Compiled.execute_par reg ~domains:4 plan)

(* --- counters: the lane decision and batch statistics are observable ------- *)

let test_counters () =
  let reg = Lazy.force registry in
  let plan =
    Plan.reduce
      ~pred:Expr.(Field (var "x", "k") <. int 400)
      [ Plan.agg ~name:"c" (Monoid.Primitive Monoid.Count) (Expr.int 1) ]
      (Plan.scan ~dataset:"items_col" ~binding:"x" ())
  in
  Counters.reset ();
  ignore (Compiled.execute reg plan);
  let s = Counters.snapshot () in
  Alcotest.(check int) "tuples" 800 s.Counters.tuples;
  Alcotest.(check int) "batch rows" 800 s.Counters.batch_rows;
  Alcotest.(check int) "batch selected" 400 s.Counters.batch_selected;
  Alcotest.(check int) "one batch lane" 1 s.Counters.lanes_batch;
  Alcotest.(check int) "no tuple lanes" 0 s.Counters.lanes_tuple;
  Alcotest.(check bool) "batches emitted" true (s.Counters.batches > 0);
  Alcotest.(check bool) "density = 0.5" true
    (Float.abs (Counters.selection_density s -. 0.5) < 1e-9);
  Counters.reset ();
  ignore (Compiled.execute ~batch_size:0 reg plan);
  let s = Counters.snapshot () in
  Alcotest.(check int) "tuple lane: no batches" 0 s.Counters.batches;
  Alcotest.(check int) "tuple lane counted" 1 s.Counters.lanes_tuple;
  Counters.reset ()

(* --- caching: a batched session leaves bit-identical cache columns --------- *)

let make_session () =
  let cat = make_catalog () in
  let mgr = Manager.create cat in
  let reg = Registry.create ~cache:(Manager.iface mgr) cat in
  (mgr, reg)

let column_testable =
  Alcotest.testable
    (fun ppf col -> Fmt.pf ppf "column[%d]" (Column.length col))
    (fun a b ->
      Column.length a = Column.length b
      && List.for_all
           (fun i -> Value.equal (Column.get a i) (Column.get b i))
           (List.init (Column.length a) Fun.id))

let test_cache_parity () =
  (* cache-filling scans materialize whole batches; the resulting columns
     must match the tuple lane's bit for bit *)
  let mgr_t, reg_t = make_session () in
  let mgr_b, reg_b = make_session () in
  let workload =
    [
      Plan.reduce
        ~pred:Expr.(Field (var "x", "k") <. int 500)
        [
          Plan.agg ~name:"s" (Monoid.Primitive Monoid.Sum) Expr.(Field (var "x", "price"));
        ]
        (Plan.scan ~dataset:"items_csv" ~binding:"x" ());
      Plan.reduce
        [ Plan.agg ~name:"c" (Monoid.Primitive Monoid.Count) (Expr.int 1) ]
        (Plan.select
           Expr.(Field (var "x", "price") >=. float 100.0)
           (Plan.scan ~dataset:"items_json" ~binding:"x" ()));
    ]
  in
  for round = 1 to 2 do
    List.iteri
      (fun i plan ->
        let name = Fmt.str "round %d query %d" round i in
        let tuple = Compiled.execute ~batch_size:0 reg_t plan in
        let batch = Compiled.execute reg_b plan in
        Alcotest.check check_value name tuple batch)
      workload
  done;
  let stats_t = Manager.stats mgr_t and stats_b = Manager.stats mgr_b in
  Alcotest.(check int) "same number of cached columns" stats_t.Manager.field_stores
    stats_b.Manager.field_stores;
  Alcotest.(check bool) "caches populated" true (stats_t.Manager.field_stores > 0);
  let iface_t = Manager.iface mgr_t and iface_b = Manager.iface mgr_b in
  let some_cached = ref false in
  List.iter
    (fun dataset ->
      List.iter
        (fun path ->
          match
            ( iface_t.Cache_iface.lookup_field ~dataset ~path,
              iface_b.Cache_iface.lookup_field ~dataset ~path )
          with
          | None, None -> ()
          | Some ct, Some cb ->
            some_cached := true;
            Alcotest.check column_testable
              (Fmt.str "%s.%s cache column" dataset path)
              ct cb
          | _ -> Alcotest.failf "%s.%s cached in only one session" dataset path)
        [ "k"; "grp"; "price" ])
    [ "items_csv"; "items_json" ];
  Alcotest.(check bool) "at least one field column compared" true !some_cached

let () =
  Alcotest.run "batch"
    [
      ( "lane parity",
        [
          Alcotest.test_case "scan-select-aggregate" `Quick test_scan_aggregate;
          Alcotest.test_case "multi-conjunct" `Quick test_multi_conjunct;
          Alcotest.test_case "short-circuit and" `Quick test_short_circuit;
          Alcotest.test_case "arith kernels" `Quick test_arith_kernels;
          Alcotest.test_case "nullable fields" `Quick test_nullable;
        ] );
      ( "spill boundary",
        [
          Alcotest.test_case "join" `Quick test_spill_join;
          Alcotest.test_case "collect bag" `Quick test_spill_collect;
          Alcotest.test_case "group by" `Quick test_spill_group_by;
          Alcotest.test_case "sort" `Quick test_spill_sort;
          Alcotest.test_case "unnest" `Quick test_spill_unnest;
          Alcotest.test_case "project fusion" `Quick test_project_fusion;
        ] );
      ( "determinism",
        [ Alcotest.test_case "float bit-identity" `Quick test_float_bit_identity ] );
      ( "observability", [ Alcotest.test_case "counters" `Quick test_counters ] );
      ( "caching",
        [ Alcotest.test_case "batched session parity" `Quick test_cache_parity ] );
    ]
