(* Tests for the query frontends: lexer, SQL, comprehension syntax. *)

open Proteus_model
open Proteus_calculus
open Proteus_lang

let check_value = Alcotest.testable Value.pp Value.equal

let numbers = List.map (fun i -> Value.record [ ("v", Value.Int i) ]) [ 1; 2; 3; 4; 5 ]

let orders =
  List.map
    (fun (k, total) ->
      Value.record [ ("o_orderkey", Value.Int k); ("o_total", Value.Float total) ])
    [ (1, 10.0); (2, 20.0); (3, 30.0) ]

let lineitems =
  List.map
    (fun (k, ln, qty) ->
      Value.record
        [ ("l_orderkey", Value.Int k); ("l_linenumber", Value.Int ln);
          ("l_quantity", Value.Int qty) ])
    [ (1, 1, 5); (1, 2, 7); (2, 1, 3); (3, 1, 9); (3, 2, 1) ]

let sailors =
  [
    Value.record
      [
        ("id", Value.Int 1);
        ( "children",
          Value.list_
            [ Value.record [ ("name", Value.String "ann"); ("age", Value.Int 20) ] ] );
      ];
  ]

let lookup = function
  | "numbers" -> numbers
  | "orders" -> orders
  | "lineitem" -> lineitems
  | "Sailor" -> sailors
  | other -> Perror.plan_error "no dataset %s" other

(* Column resolver for multi-table SQL: TPC-H style prefixes. *)
let resolve ~aliases ~column =
  let owner_of prefix =
    List.find_opt (fun (_, ds) -> String.equal ds prefix) aliases |> Option.map fst
  in
  if String.length column > 2 && String.sub column 0 2 = "o_" then owner_of "orders"
  else if String.length column > 2 && String.sub column 0 2 = "l_" then owner_of "lineitem"
  else match aliases with [ (a, _) ] -> Some a | _ -> None

let run_sql ?resolve:(r = resolve) src =
  Calc.eval ~lookup (Sql.parse ~resolve:r src)

let run_comp src = Calc.eval ~lookup (Comprehension.parse src)

let sort_bag v =
  match v with
  | Value.Coll (Ptype.Bag, es) -> Value.Coll (Ptype.Bag, List.sort Value.compare es)
  | v -> v

(* --- lexer ---------------------------------------------------------------- *)

let test_lexer_tokens () =
  let toks = Lexer.tokenize ~what:"t" "SELECT a <= 1.5, 'it''s' <- <>" in
  let kinds = Array.to_list (Array.map (fun { Lexer.token; _ } -> token) toks) in
  Alcotest.(check bool) "shape" true
    (kinds
    = [
        Lexer.Ident "SELECT"; Lexer.Ident "a"; Lexer.Punct "<="; Lexer.Float_lit 1.5;
        Lexer.Punct ","; Lexer.String_lit "it's"; Lexer.Punct "<-"; Lexer.Punct "<>";
        Lexer.Eof;
      ])

let test_lexer_comment () =
  let toks = Lexer.tokenize ~what:"t" "a -- comment\nb" in
  Alcotest.(check int) "comment skipped" 3 (Array.length toks)

let test_lexer_bad_char () =
  (* '?' and '$name' became parameter tokens; '#' is still invalid *)
  Alcotest.(check bool) "rejects" true
    (try
       ignore (Lexer.tokenize ~what:"t" "a # b");
       false
     with Perror.Parse_error _ -> true)

(* --- SQL ------------------------------------------------------------------ *)

let test_sql_count () =
  Alcotest.check check_value "count" (Value.Int 3)
    (run_sql "SELECT COUNT(*) FROM numbers WHERE v > 2")

let test_sql_multi_agg () =
  Alcotest.check check_value "count+max"
    (Value.record [ ("c", Value.Int 5); ("m", Value.Int 5) ])
    (run_sql "SELECT COUNT(*) AS c, MAX(v) AS m FROM numbers")

let test_sql_projection () =
  Alcotest.check check_value "bare column bag"
    (sort_bag (Value.bag (List.map (fun i -> Value.Int i) [ 3; 4; 5 ])))
    (sort_bag (run_sql "SELECT v FROM numbers WHERE v >= 3"))

let test_sql_join () =
  Alcotest.check check_value "join count" (Value.Int 5)
    (run_sql
       "SELECT COUNT(*) FROM orders o JOIN lineitem l ON o_orderkey = l_orderkey")

let test_sql_join_comma_where () =
  Alcotest.check check_value "comma join" (Value.Int 5)
    (run_sql
       "SELECT COUNT(*) FROM orders o, lineitem l WHERE o.o_orderkey = l.l_orderkey")

let test_sql_group_by () =
  Alcotest.check check_value "group"
    (sort_bag
       (Value.bag
          [
            Value.record [ ("l_orderkey", Value.Int 1); ("q", Value.Int 12) ];
            Value.record [ ("l_orderkey", Value.Int 2); ("q", Value.Int 3) ];
            Value.record [ ("l_orderkey", Value.Int 3); ("q", Value.Int 10) ];
          ]))
    (sort_bag
       (run_sql
          "SELECT l_orderkey, SUM(l_quantity) AS q FROM lineitem GROUP BY l_orderkey"))

let test_sql_between_like_null () =
  Alcotest.check check_value "between" (Value.Int 3)
    (run_sql "SELECT COUNT(*) FROM numbers WHERE v BETWEEN 2 AND 4");
  Alcotest.check check_value "is null" (Value.Int 0)
    (run_sql "SELECT COUNT(*) FROM numbers WHERE v IS NULL");
  Alcotest.check check_value "is not null" (Value.Int 5)
    (run_sql "SELECT COUNT(*) FROM numbers WHERE v IS NOT NULL")

let test_sql_unnest_extension () =
  Alcotest.check check_value "unnest" (Value.Int 1)
    (run_sql "SELECT COUNT(*) FROM Sailor s, UNNEST(s.children) c WHERE c.age > 18")

let test_sql_arith_in_agg () =
  Alcotest.check check_value "sum of expr" (Value.Int 30)
    (run_sql "SELECT SUM(v * 2) FROM numbers")

let test_sql_select_star () =
  let v = run_sql "SELECT * FROM numbers WHERE v = 1" in
  Alcotest.check check_value "star" (Value.bag [ Value.record [ ("v", Value.Int 1) ] ]) v

let test_sql_errors () =
  let fails src =
    Alcotest.(check bool) src true
      (try
         ignore (Sql.parse ~resolve src);
         false
       with Perror.Parse_error _ | Perror.Plan_error _ -> true)
  in
  fails "SELECT";
  fails "SELECT FROM t";
  fails "SELECT COUNT(*) FROM";
  fails "SELECT v, COUNT(*) FROM numbers";            (* mixed without GROUP BY *)
  fails "SELECT nosuchcol FROM orders o, lineitem l"; (* unresolvable *)
  fails "SELECT v FROM numbers GROUP BY v"            (* group without aggregate *)

(* --- comprehensions ------------------------------------------------------- *)

let test_comp_example31 () =
  let v =
    run_comp
      "for { s1 <- Sailor, c <- s1.children, c.age > 18 } yield bag (s1.id, c.name)"
  in
  Alcotest.check check_value "example"
    (Value.bag [ Value.record [ ("id", Value.Int 1); ("name", Value.String "ann") ] ])
    v

let test_comp_aggregate () =
  Alcotest.check check_value "sum" (Value.Int 15)
    (run_comp "for { n <- numbers } yield sum(n.v)")

let test_comp_multi_aggregate () =
  Alcotest.check check_value "multi"
    (Value.record [ ("c", Value.Int 5); ("mx", Value.Int 5) ])
    (run_comp "for { n <- numbers } yield count(*) as c, max(n.v) as mx")

let test_comp_group () =
  Alcotest.check check_value "group"
    (sort_bag
       (Value.bag
          [
            Value.record [ ("p", Value.Int 0); ("s", Value.Int 6) ];
            Value.record [ ("p", Value.Int 1); ("s", Value.Int 9) ];
          ]))
    (sort_bag
       (run_comp "for { n <- numbers } group by n.v % 2 as p yield sum(n.v) as s"))

let test_comp_set () =
  Alcotest.check check_value "set dedups"
    (Value.set [ Value.Int 0; Value.Int 1 ])
    (run_comp "for { n <- numbers } yield set n.v % 2")

let test_comp_named_record () =
  let v = run_comp "for { n <- numbers, n.v = 1 } yield bag (double: n.v * 2)" in
  Alcotest.check check_value "named ctor"
    (Value.bag [ Value.record [ ("double", Value.Int 2) ] ])
    v

let test_comp_subquery () =
  (* sub-comprehension in generator position; normalization must splice it *)
  let c =
    Comprehension.parse
      "for { x <- (for { n <- numbers, n.v > 2 } yield bag n.v), x < 5 } yield sum(x)"
  in
  Alcotest.check check_value "subquery" (Value.Int 7) (Calc.eval ~lookup c);
  let normalized = Normalize.run c in
  Alcotest.check check_value "after normalize" (Value.Int 7)
    (Calc.eval ~lookup normalized)

let test_comp_errors () =
  let fails src =
    Alcotest.(check bool) src true
      (try
         ignore (Comprehension.parse src);
         false
       with Perror.Parse_error _ | Perror.Plan_error _ -> true)
  in
  fails "for { } yield bag 1";
  fails "for { n <- numbers } yield";
  fails "for { n <- numbers } yield frob(n.v)";
  fails "for { n <- numbers, n <- numbers } yield bag 1"; (* shadowing *)
  fails "for { n <- numbers } yield bag zzz.v"       (* unbound *)

(* --- end-to-end through the algebra -------------------------------------- *)

let test_pipeline_sql_to_algebra () =
  let calc =
    Sql.parse ~resolve
      "SELECT COUNT(*) FROM orders o JOIN lineitem l ON o_orderkey = l_orderkey WHERE l_quantity < 7"
  in
  let plan = To_algebra.run (Normalize.run calc) in
  Proteus_algebra.Plan.validate plan;
  (* qualifying lineitems: qty 5, 3 and 1 *)
  Alcotest.check check_value "pipeline" (Value.Int 3)
    (Proteus_algebra.Interp.run ~lookup plan)

let test_pipeline_comp_to_algebra () =
  let calc =
    Comprehension.parse
      "for { s <- Sailor, c <- s.children, c.age > 18 } yield count(*)"
  in
  let plan = To_algebra.run (Normalize.run calc) in
  Proteus_algebra.Plan.validate plan;
  Alcotest.check check_value "pipeline" (Value.Int 1)
    (Proteus_algebra.Interp.run ~lookup plan)

let () =
  Alcotest.run "lang"
    [
      ( "lexer",
        [
          Alcotest.test_case "tokens" `Quick test_lexer_tokens;
          Alcotest.test_case "comments" `Quick test_lexer_comment;
          Alcotest.test_case "bad char" `Quick test_lexer_bad_char;
        ] );
      ( "sql",
        [
          Alcotest.test_case "count" `Quick test_sql_count;
          Alcotest.test_case "multi aggregate" `Quick test_sql_multi_agg;
          Alcotest.test_case "projection" `Quick test_sql_projection;
          Alcotest.test_case "join on" `Quick test_sql_join;
          Alcotest.test_case "comma join" `Quick test_sql_join_comma_where;
          Alcotest.test_case "group by" `Quick test_sql_group_by;
          Alcotest.test_case "between/like/null" `Quick test_sql_between_like_null;
          Alcotest.test_case "unnest extension" `Quick test_sql_unnest_extension;
          Alcotest.test_case "arith in agg" `Quick test_sql_arith_in_agg;
          Alcotest.test_case "select star" `Quick test_sql_select_star;
          Alcotest.test_case "errors" `Quick test_sql_errors;
        ] );
      ( "comprehension",
        [
          Alcotest.test_case "example 3.1 style" `Quick test_comp_example31;
          Alcotest.test_case "aggregate" `Quick test_comp_aggregate;
          Alcotest.test_case "multi aggregate" `Quick test_comp_multi_aggregate;
          Alcotest.test_case "group by" `Quick test_comp_group;
          Alcotest.test_case "set monoid" `Quick test_comp_set;
          Alcotest.test_case "named record" `Quick test_comp_named_record;
          Alcotest.test_case "subquery" `Quick test_comp_subquery;
          Alcotest.test_case "errors" `Quick test_comp_errors;
        ] );
      ( "pipeline",
        [
          Alcotest.test_case "sql to algebra" `Quick test_pipeline_sql_to_algebra;
          Alcotest.test_case "comp to algebra" `Quick test_pipeline_comp_to_algebra;
        ] );
    ]
