(* Deterministic fault injection for the test suite.

   Two layers:

   - fixture corruptors: pure string -> string transforms that damage raw
     CSV/JSON/binjson inputs in reproducible ways (garbled numerics, ragged
     rows, truncation, unbalanced braces, flipped tag bytes). All are
     deterministic functions of the row index, so every engine configuration
     sees the same faults at the same offsets.

   - an injectable failing source: wraps a registered dataset's source
     factory so chosen rows raise [Perror.Parse_error] from their field
     accessors, with a shared seek counter — the hook for asserting that
     cancellation actually stops workers from draining the input. *)

open Proteus_model
open Proteus_plugin

(* --- fixture corruptors ------------------------------------------------- *)

let map_lines src f =
  String.split_on_char '\n' src |> List.mapi f |> String.concat "\n"

(* Replace the first character of row [i]'s [field]-th CSV field with 'x'
   when [pick i] — length-preserving, so the structural index builds fine
   and the damage surfaces as a parse error at access time. *)
let garble_csv_field ~field ~pick src =
  map_lines src (fun i line ->
      if line = "" || not (pick i) then line
      else
        String.split_on_char ',' line
        |> List.mapi (fun j p ->
               if j = field && String.length p > 0 then
                 "x" ^ String.sub p 1 (String.length p - 1)
               else p)
        |> String.concat ",")

(* Drop the last field of picked rows: fewer fields than the nominal arity
   (a ragged row the arity validator must flag). *)
let drop_csv_last_field ~pick src =
  map_lines src (fun i line ->
      if line = "" || not (pick i) then line
      else
        match String.rindex_opt line ',' with
        | Some c -> String.sub line 0 c
        | None -> line)

(* Append a surplus field to picked rows: more fields than the nominal
   arity. *)
let add_csv_field ~pick src =
  map_lines src (fun i line -> if line = "" || not (pick i) then line else line ^ ",9")

let truncate ~at src = String.sub src 0 (min at (String.length src))

(* Garble ["key": <int>] on picked JSON-lines rows into a float-shaped
   token ("123" -> "1.23"): the structural index still builds (it is a
   valid JSON number), but decoding the span as an int fails at access
   time with the byte position — the JSON analogue of a garbled CSV
   numeric. *)
let garble_json_number ~key ~pick src =
  let marker = "\"" ^ key ^ "\":" in
  let mlen = String.length marker in
  map_lines src (fun i line ->
      if not (pick i) then line
      else
        let n = String.length line in
        let rec find j =
          if j + mlen > n then None
          else if String.sub line j mlen = marker then Some (j + mlen)
          else find (j + 1)
        in
        match find 0 with
        | None -> line
        | Some v ->
          let v = if v < n && line.[v] = ' ' then v + 1 else v in
          let w = ref v in
          while
            !w < n && (match line.[!w] with '0' .. '9' | '-' -> true | _ -> false)
          do
            incr w
          done;
          if !w - v < 2 then
            String.sub line 0 v ^ "1.5" ^ String.sub line !w (n - !w)
          else
            String.sub line 0 (v + 1) ^ "." ^ String.sub line (v + 1) (n - v - 1))

(* Remove the closing brace of picked JSON-lines rows: structurally
   unbalanced input the index builder must reject with a position. *)
let unbalance_json ~pick src =
  map_lines src (fun i line ->
      if (not (pick i)) || String.length line = 0 then line
      else
        match String.rindex_opt line '}' with
        | Some c -> String.sub line 0 c ^ String.sub line (c + 1) (String.length line - c - 1)
        | None -> line)

(* Overwrite one byte — e.g. a binjson tag — with an invalid value. *)
let flip_byte ~at s =
  let b = Bytes.of_string s in
  Bytes.set b at '\xfe';
  Bytes.to_string b

(* --- injectable failing source ------------------------------------------ *)

(* [inject reg ~dataset ~fail_at] wraps [dataset]'s source factory: reading
   any field at a row where [fail_at row] holds raises a recoverable
   [Parse_error]. Returns the shared seek counter, which every view created
   after the injection increments on each cursor move — across all domains.
   The dataset's index and cold statistics are forced over the genuine
   source first, so the injection only affects query execution. *)
let inject reg ~dataset ~fail_at =
  ignore (Registry.source reg dataset);
  let seeks = Atomic.make 0 in
  let genuine = Registry.factory reg dataset in
  let wrap (src : Source.t) =
    let cur = ref 0 in
    let seek i =
      Atomic.incr seeks;
      cur := i;
      src.Source.seek i
    in
    let field path =
      let a = src.Source.field path in
      Access.boxed a.Access.ty (fun () ->
          if fail_at !cur then
            Perror.parse_error ~what:"inject" ~pos:!cur "injected fault at row %d" !cur
          else a.Access.get_val ())
    in
    { src with Source.seek; field }
  in
  Registry.install_factory reg dataset (fun () -> wrap (genuine ()));
  seeks

(* --- resilience injectors ------------------------------------------------ *)

(* Compose [ip] with whatever interposer is already installed (ours runs
   on the inside: the existing wrapper sees our wrapped factory). *)
let add_interposer reg ip =
  let prev = Registry.interposer reg in
  Registry.set_interposer reg
    (Some
       (match prev with
       | None -> ip
       | Some outer -> fun name f -> outer name (ip name f)))

(* [stall reg ~dataset ~ms ?times ()] delays the first [times] (default 1)
   builds of [dataset] by [ms] milliseconds — a deterministic straggler.
   Interposer-based, so it survives the retry path's invalidations (unlike
   [install_factory] wrappers). Returns the count of stalled builds. *)
let stall reg ~dataset ~ms ?(times = 1) () =
  let hits = Atomic.make 0 in
  let budget = Atomic.make times in
  add_interposer reg (fun name genuine ->
      if name <> dataset then genuine
      else
        fun () ->
          let rec claim () =
            let n = Atomic.get budget in
            if n <= 0 then false
            else if Atomic.compare_and_set budget n (n - 1) then true
            else claim ()
          in
          if claim () then begin
            Atomic.incr hits;
            Unix.sleepf (float_of_int ms /. 1000.)
          end;
          genuine ());
  hits

(* [flaky reg ~dataset ~failures ()] makes the first [failures] builds of
   [dataset] raise a recoverable [Parse_error], then heals — the retry
   budget's canonical prey. Returns the total build-attempt counter. *)
let flaky reg ~dataset ~failures () =
  let calls = Atomic.make 0 in
  add_interposer reg (fun name genuine ->
      if name <> dataset then genuine
      else
        fun () ->
          let n = 1 + Atomic.fetch_and_add calls 1 in
          if n <= failures then
            Perror.parse_error ~what:("flaky:" ^ dataset) ~pos:(-1)
              "flaky member: injected failure %d of %d" n failures
          else genuine ());
  calls
