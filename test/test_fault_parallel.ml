(* Failure propagation across the domain pool: when one worker's accessor
   raises mid-query, the cancellation token must stop its peers at their
   next morsel boundary — the run ends without draining the dispenser. *)

open Proteus_model
module Db = Proteus.Db

let n_rows = 800 (* 16-row morsels -> 50 morsels *)

let item_ty =
  Ptype.Record [ ("k", Ptype.Int); ("price", Ptype.Float) ]

let contents =
  String.concat ""
    (List.init n_rows (fun i ->
         Fmt.str "%d,%.12g\n" i (float_of_int ((i * 37) mod 1000) /. 4.0)))

let q = "SELECT SUM(price) AS s FROM items WHERE k >= 0"

let test_morsel0_fault_cancels_peers () =
  let db = Db.create () in
  (* field caches would satisfy reads without touching the injected
     accessors, hiding the fault *)
  Db.set_caching db false;
  Db.register_csv db ~name:"items" ~element:item_ty ~contents ();
  (* sanity: the uninjected parallel run completes *)
  let expected = Db.sql ~engine:(Db.Engine_parallel 4) db q in
  ignore expected;
  (* inject: any access in morsel 0 (rows 0..15) raises *)
  let seeks =
    Faultgen.inject (Db.registry db) ~dataset:"items" ~fail_at:(fun row -> row < 16)
  in
  (match Db.sql_guarded ~engine:(Db.Engine_parallel 4) db q with
  | Db.Failed (_, Perror.Parse_error _) -> ()
  | Db.Failed (_, e) -> Alcotest.failf "unexpected failure: %a" Perror.pp_exn e
  | Db.Completed _ -> Alcotest.fail "injected fault should fail the query"
  | Db.Timed_out _ | Db.Cancelled _ -> Alcotest.fail "expected Failed");
  (* peers stopped within a morsel of the failure: the 4 workers saw at most
     a handful of morsels between them, nowhere near the 800-row input *)
  let n = Atomic.get seeks in
  if n >= n_rows / 2 then
    Alcotest.failf "workers drained %d of %d rows after the fault" n n_rows

let test_budget_abort_cancels_peers () =
  let db = Db.create () in
  (* field caches would satisfy reads without touching the injected
     accessors, hiding the fault *)
  Db.set_caching db false;
  Db.register_csv db ~name:"items" ~element:item_ty ~contents ();
  ignore (Db.sql ~engine:(Db.Engine_parallel 4) db q);
  let seeks =
    Faultgen.inject (Db.registry db) ~dataset:"items" ~fail_at:(fun row -> row < 16)
  in
  (match
     Db.sql_guarded ~engine:(Db.Engine_parallel 4) ~policy:Fault.Skip_row ~max_errors:2
       db q
   with
  | Db.Failed (_, Fault.Budget_exceeded _) -> ()
  | _ -> Alcotest.fail "expected Failed (Budget_exceeded)");
  let n = Atomic.get seeks in
  if n >= n_rows / 2 then
    Alcotest.failf "workers drained %d of %d rows after the budget abort" n n_rows

let test_skip_over_injection_completes () =
  (* the same injection under Skip_row with a sufficient budget completes,
     dropping exactly the injected rows *)
  let db = Db.create () in
  (* field caches would satisfy reads without touching the injected
     accessors, hiding the fault *)
  Db.set_caching db false;
  Db.register_csv db ~name:"items" ~element:item_ty ~contents ();
  let clean = Db.sql ~engine:(Db.Engine_parallel 4) db q in
  ignore clean;
  ignore (Faultgen.inject (Db.registry db) ~dataset:"items" ~fail_at:(fun row -> row < 16));
  match Db.sql_guarded ~engine:(Db.Engine_parallel 4) ~policy:Fault.Skip_row db q with
  | Db.Completed (_, r) ->
    Alcotest.(check int) "skipped" 16 r.Fault.rp_skipped
  | _ -> Alcotest.fail "expected Completed under Skip_row"

let () =
  Alcotest.run "fault_parallel"
    [
      ( "pool",
        [
          Alcotest.test_case "morsel-0 fault cancels peers" `Quick
            test_morsel0_fault_cancels_peers;
          Alcotest.test_case "budget abort cancels peers" `Quick
            test_budget_abort_cancels_peers;
          Alcotest.test_case "skip over injection completes" `Quick
            test_skip_over_injection_completes;
        ] );
    ]
