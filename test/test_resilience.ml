(* The resilience layer (DESIGN.md section 15): retry budgets with
   deadline-aware backoff, per-member circuit breakers, straggler hedging,
   and graceful scheduler drain.

   The load-bearing differentials: a hedged run must be bit-identical to
   an unhedged run of the same query (the hedge only duplicates work, it
   never reorders the deterministic morsel fan-in), and a flaky member
   that heals within its retry budget must be invisible to the user —
   same rows, zero recorded errors. *)

open Proteus_model
module Plan = Proteus_algebra.Plan
module Policy = Proteus_resilience.Policy
module Breaker = Proteus_resilience.Breaker
module Hedge = Proteus_resilience.Hedge
module RStats = Proteus_resilience.Stats
module Registry = Proteus_plugin.Registry
module Counters = Proteus_engine.Counters
module Scheduler = Proteus_server.Scheduler
module Server = Proteus_server.Server
module Executor = Proteus_engine.Executor
module Db = Proteus.Db

let check_value = Alcotest.testable Value.pp Value.equal

let flaky_exn () =
  Perror.Parse_error { what = "unit"; pos = -1; msg = "transient" }

(* --- retry policy --------------------------------------------------------- *)

let test_policy_budget () =
  (* first-try success: f runs once, no retries *)
  let calls = ref 0 in
  let v =
    Policy.run (Policy.of_attempts 3) ~retryable:Fault.recoverable (fun a ->
        incr calls;
        a)
  in
  Alcotest.(check int) "first-try attempt index" 1 v;
  Alcotest.(check int) "one call" 1 !calls;
  (* heals within budget: fails twice, succeeds on the third attempt *)
  let calls = ref 0 and retries = ref 0 in
  let v =
    Policy.run
      (Policy.make ~attempts:3 ~base_backoff_ms:0.1 ~max_backoff_ms:0.5 ())
      ~retryable:Fault.recoverable
      ~on_retry:(fun ~attempt:_ _ -> incr retries)
      (fun _ ->
        incr calls;
        if !calls <= 2 then raise (flaky_exn ()) else !calls)
  in
  Alcotest.(check int) "healed on third call" 3 v;
  Alcotest.(check int) "two retries" 2 !retries;
  (* budget exhaustion: the last failure propagates *)
  let calls = ref 0 in
  (match
     Policy.run
       (Policy.make ~attempts:2 ~base_backoff_ms:0.1 ~max_backoff_ms:0.5 ())
       ~retryable:Fault.recoverable
       (fun _ ->
         incr calls;
         raise (flaky_exn ()))
   with
  | (_ : int) -> Alcotest.fail "exhausted budget must raise"
  | exception Perror.Parse_error _ -> ());
  Alcotest.(check int) "budget bounds the calls" 2 !calls;
  (* non-retryable errors never retry *)
  let calls = ref 0 in
  (match
     Policy.run (Policy.of_attempts 5) ~retryable:Fault.recoverable (fun _ ->
         incr calls;
         Perror.plan_error "not a data error")
   with
  | (_ : int) -> Alcotest.fail "plan error must raise"
  | exception Perror.Plan_error _ -> ());
  Alcotest.(check int) "no retry for plan errors" 1 !calls

let test_policy_deadline () =
  (* an already-expired deadline forbids any backoff sleep: the first
     failure surfaces immediately even with a huge configured backoff *)
  let t0 = Unix.gettimeofday () in
  (match
     Policy.run ~deadline:(t0 -. 1.)
       (Policy.make ~attempts:5 ~base_backoff_ms:1000. ~max_backoff_ms:5000. ())
       ~retryable:Fault.recoverable
       (fun _ -> raise (flaky_exn ()))
   with
  | (_ : int) -> Alcotest.fail "must raise"
  | exception Perror.Parse_error _ -> ());
  let elapsed = Unix.gettimeofday () -. t0 in
  Alcotest.(check bool)
    (Fmt.str "no sleep past the deadline (%.3fs)" elapsed)
    true (elapsed < 0.5)

(* --- circuit breaker ------------------------------------------------------ *)

let test_breaker_cycle () =
  let b = Breaker.create ~config:{ Breaker.threshold = 2; cooldown_ms = 40. } () in
  Alcotest.(check bool) "starts closed" true (Breaker.state b = Breaker.Closed);
  Alcotest.(check bool) "closed admits" true (Breaker.admit b = Breaker.Proceed);
  Breaker.failure b;
  Alcotest.(check bool) "one failure stays closed" true
    (Breaker.state b = Breaker.Closed);
  Breaker.failure b;
  Alcotest.(check bool) "threshold opens" true (Breaker.state b = Breaker.Open);
  Alcotest.(check bool) "open rejects" true (Breaker.admit b = Breaker.Reject);
  Alcotest.(check bool) "open is blocking" true (Breaker.blocking b);
  Unix.sleepf 0.06;
  Alcotest.(check bool) "cooled breaker is not blocking" false
    (Breaker.blocking b);
  (* first admit after cooldown: the half-open probe slot *)
  Alcotest.(check bool) "cooldown admits a probe" true
    (Breaker.admit b = Breaker.Proceed);
  Alcotest.(check bool) "half-open" true (Breaker.state b = Breaker.Half_open);
  Alcotest.(check bool) "single probe slot" true
    (Breaker.admit b = Breaker.Reject);
  Breaker.success b;
  Alcotest.(check bool) "probe success closes" true
    (Breaker.state b = Breaker.Closed);
  (* and a failed probe re-opens *)
  Breaker.failure b;
  Breaker.failure b;
  Unix.sleepf 0.06;
  Alcotest.(check bool) "probe again" true (Breaker.admit b = Breaker.Proceed);
  Breaker.failure b;
  Alcotest.(check bool) "failed probe re-opens" true
    (Breaker.state b = Breaker.Open)

(* --- hedge unit ----------------------------------------------------------- *)

let test_hedge_threshold () =
  let h = Hedge.create ~factor:3. ~floor_ms:0. () in
  Alcotest.(check bool) "no history, no floor: stands down" true
    (Hedge.threshold_ms h <= 0.);
  Hedge.note h "a" 2.;
  Hedge.note h "b" 4.;
  Hedge.note h "c" 100.;
  (* median of {2, 4, 100} = 4; threshold = 3 x 4 = 12 *)
  Alcotest.(check (float 0.001)) "3x median" 12. (Hedge.threshold_ms h);
  let h = Hedge.create ~floor_ms:5. () in
  Alcotest.(check (float 0.001)) "floor with no history" 5.
    (Hedge.threshold_ms h);
  (* run with hedging disabled is a plain call *)
  let h0 = Hedge.create () in
  Alcotest.(check int) "stand-down run" 7 (Hedge.run h0 ~key:"k" (fun () -> 7));
  (* a fast f never hedges; a slow f hedges and still returns its value *)
  let h = Hedge.create ~floor_ms:5. () in
  Alcotest.(check int) "fast run" 1 (Hedge.run h ~key:"k" (fun () -> 1));
  RStats.reset ();
  let v =
    Hedge.run h ~key:"slow" (fun () ->
        Unix.sleepf 0.03;
        42)
  in
  Alcotest.(check int) "slow run value" 42 v;
  Alcotest.(check bool) "slow run hedged" true (RStats.hedges_total () >= 1);
  RStats.reset ()

(* --- sharded fixtures ------------------------------------------------------ *)

let item_type =
  Ptype.Record
    [ ("k", Ptype.Int); ("grp", Ptype.Int); ("price", Ptype.Float) ]

let items n =
  List.init n (fun i ->
      Value.record
        [ ("k", Value.Int i); ("grp", Value.Int (i mod 5));
          ("price", Value.Float (float_of_int ((i * 37) mod 1000) /. 4.0)) ])

let to_csv records =
  Proteus_format.Csv.of_records Proteus_format.Csv.default_config
    (Schema.of_type item_type) records

let chunk n l =
  let len = List.length l in
  let base = len / n and extra = len mod n in
  let rec take k acc l =
    if k = 0 then (List.rev acc, l)
    else
      match l with [] -> (List.rev acc, []) | x :: r -> take (k - 1) (x :: acc) r
  in
  let rec go i l =
    if i = n then []
    else
      let sz = base + if i < extra then 1 else 0 in
      let part, rest = take sz [] l in
      part :: go (i + 1) rest
  in
  go 0 l

(* a sharded CSV db: members are named sh__s0 .. sh__s{n-1} *)
let make_sharded_db ?(rows = 200) ?(shards = 4) () =
  let db = Db.create () in
  Db.set_caching db false;
  Db.register_sharded_csv db ~name:"sh" ~element:item_type
    ~shards:(List.map to_csv (chunk shards (items rows)))
    ();
  db

let fld x n = Expr.Field (Expr.var x, n)

let agg_plan ds =
  Plan.reduce
    [ Plan.agg ~name:"c" (Monoid.Primitive Monoid.Count) (Expr.int 1);
      Plan.agg ~name:"sp" (Monoid.Primitive Monoid.Sum) (fld "x" "price");
      Plan.agg ~name:"sk" (Monoid.Primitive Monoid.Sum) (fld "x" "k") ]
    (Plan.scan ~dataset:ds ~binding:"x" ())

let count_plan ds =
  Plan.reduce
    [ Plan.agg ~name:"c" (Monoid.Primitive Monoid.Count) (Expr.int 1) ]
    (Plan.scan ~dataset:ds ~binding:"x" ())

let completed = function
  | Db.Completed (v, r) -> (v, r)
  | Db.Failed (_, e) -> Alcotest.failf "unexpected failure: %a" Perror.pp_exn e
  | Db.Timed_out _ -> Alcotest.fail "unexpected timeout"
  | Db.Cancelled _ -> Alcotest.fail "unexpected cancel"

(* --- straggler hedging ----------------------------------------------------- *)

(* hedged == unhedged, bit-for-bit, across domains x batch sizes: one
   member stalls past the hedge floor, the speculative duplicate wins the
   race, and the result must still be identical to a clean unhedged run
   (same memoized index, deterministic morsel-order fan-in). *)
let test_hedged_identity () =
  let baseline =
    let db = make_sharded_db () in
    Db.run_plan db (agg_plan "sh")
  in
  List.iter
    (fun domains ->
      List.iter
        (fun batch_size ->
          let db = make_sharded_db () in
          let reg = Db.registry db in
          Registry.set_hedge reg (Some (Hedge.create ~floor_ms:3. ()));
          let hits = Faultgen.stall reg ~dataset:"sh__s2" ~ms:40 () in
          Counters.reset ();
          let v = Db.run_plan ~domains ~batch_size db (agg_plan "sh") in
          let s = Counters.snapshot () in
          let tag p = Fmt.str "d=%d b=%d %s" domains batch_size p in
          Alcotest.check check_value (tag "hedged == unhedged") baseline v;
          Alcotest.(check int) (tag "stall fired") 1 (Atomic.get hits);
          Alcotest.(check bool)
            (tag (Fmt.str "hedge fired (%d)" s.Counters.shards_hedged))
            true (s.Counters.shards_hedged >= 1))
        [ 0; 1024 ])
    [ 1; 2; 4 ]

(* the hedge pays off: with one member stalled well past the floor, the
   hedged query must finish in less wall-clock than the stall it dodged *)
let test_hedge_beats_straggler () =
  let stall_ms = 300 in
  let db = make_sharded_db ~shards:8 () in
  let reg = Db.registry db in
  (* warm the index + EWMAs with a clean pass *)
  let clean = Db.run_plan db (agg_plan "sh") in
  Registry.set_hedge reg (Some (Hedge.create ~floor_ms:5. ()));
  ignore (Faultgen.stall reg ~dataset:"sh__s3" ~ms:stall_ms ());
  Counters.reset ();
  let t0 = Unix.gettimeofday () in
  let v = Db.run_plan db (agg_plan "sh") in
  let elapsed_ms = (Unix.gettimeofday () -. t0) *. 1000. in
  Alcotest.check check_value "stalled run identical" clean v;
  Alcotest.(check bool) "hedge fired" true
    ((Counters.snapshot ()).Counters.shards_hedged >= 1);
  Alcotest.(check bool)
    (Fmt.str "beat the straggler (%.0fms < %dms)" elapsed_ms stall_ms)
    true
    (elapsed_ms < float_of_int stall_ms)

(* degraded policies stand the hedge down (speculative duplicates would
   double-account per-row skips): results must still be right *)
let test_hedge_stands_down_degraded () =
  let db = make_sharded_db () in
  let reg = Db.registry db in
  Registry.set_hedge reg (Some (Hedge.create ~floor_ms:1. ()));
  ignore (Faultgen.stall reg ~dataset:"sh__s1" ~ms:20 ());
  Counters.reset ();
  let v, _ =
    completed (Db.run_plan_guarded ~policy:Fault.Skip_row db (count_plan "sh"))
  in
  Alcotest.check check_value "skip-policy result" (Value.Int 200) v;
  Alcotest.(check int) "no hedge under skip" 0
    (Counters.snapshot ()).Counters.shards_hedged

(* --- retry budgets over flaky members -------------------------------------- *)

(* a member failing its first 2 builds succeeds within a 3-attempt budget:
   full rows, zero user-visible errors, retries counted *)
let test_flaky_within_budget () =
  let db = make_sharded_db () in
  let reg = Db.registry db in
  Registry.set_retry_policy reg
    (Policy.make ~attempts:3 ~base_backoff_ms:0.2 ~max_backoff_ms:1. ());
  let calls = Faultgen.flaky reg ~dataset:"sh__s1" ~failures:2 () in
  Counters.reset ();
  let v, report =
    completed (Db.run_plan_guarded ~policy:Fault.Fail_fast db (count_plan "sh"))
  in
  Alcotest.check check_value "full count despite flakiness" (Value.Int 200) v;
  Alcotest.(check int) "zero user-visible errors" 0 report.Fault.rp_errors;
  (* two injected failures + the healed build; a successful build may hit
     the factory again for digest stamping, so the bound is one-sided *)
  Alcotest.(check bool)
    (Fmt.str "all three attempts reached the plug-in (%d)" (Atomic.get calls))
    true
    (Atomic.get calls >= 3);
  Alcotest.(check int) "two retries counted" 2
    (Counters.snapshot ()).Counters.shards_retried

(* budget exhaustion under each error policy: Fail_fast surfaces the
   member's error; Skip_row/Null_fill degrade it to an empty shard with a
   recorded skip *)
let test_flaky_exhaustion_policies () =
  List.iter
    (fun policy ->
      let db = make_sharded_db () in
      let reg = Db.registry db in
      Registry.set_retry_policy reg
        (Policy.make ~attempts:2 ~base_backoff_ms:0.2 ~max_backoff_ms:1. ());
      let calls = Faultgen.flaky reg ~dataset:"sh__s1" ~failures:99 () in
      match policy with
      | Fault.Fail_fast -> (
        match Db.run_plan_guarded ~policy db (count_plan "sh") with
        | Db.Failed (_, Perror.Parse_error _) ->
          Alcotest.(check int) "fail-fast: budget bounds attempts" 2
            (Atomic.get calls)
        | Db.Failed (_, e) -> Alcotest.failf "wrong error: %a" Perror.pp_exn e
        | _ -> Alcotest.fail "exhausted fail-fast must fail")
      | _ ->
        let v, report = completed (Db.run_plan_guarded ~policy db (count_plan "sh")) in
        (* 200 rows minus the degraded member's 50 *)
        Alcotest.check check_value
          (Fmt.str "%s: healthy members scan" (Fault.policy_name policy))
          (Value.Int 150) v;
        Alcotest.(check bool) "degradation recorded" true
          (report.Fault.rp_skipped >= 1))
    [ Fault.Fail_fast; Fault.Skip_row; Fault.Null_fill ]

(* --- circuit breaker over the scatter --------------------------------------- *)

(* open -> skip without touching the plug-in -> half-open probe heals *)
let test_breaker_scatter_cycle () =
  let db = make_sharded_db () in
  let reg = Db.registry db in
  Registry.set_retry_policy reg (Policy.of_attempts 1);
  Registry.set_breaker_config reg { Breaker.threshold = 2; cooldown_ms = 50. };
  let calls = Faultgen.flaky reg ~dataset:"sh__s1" ~failures:2 () in
  let degraded () =
    completed (Db.run_plan_guarded ~policy:Fault.Skip_row db (count_plan "sh"))
  in
  (* two failing queries accumulate the consecutive failures that open *)
  let v, _ = degraded () in
  Alcotest.check check_value "q1 degrades" (Value.Int 150) v;
  let v, _ = degraded () in
  Alcotest.check check_value "q2 degrades" (Value.Int 150) v;
  Alcotest.(check bool) "breaker open after threshold" true
    (List.assoc "sh__s1" (Registry.breaker_states reg) = Breaker.Open);
  (* open: the next query skips the member without invoking its factory *)
  let before = Atomic.get calls in
  Counters.reset ();
  let v, report = degraded () in
  Alcotest.check check_value "q3 skips the open member" (Value.Int 150) v;
  Alcotest.(check int) "plug-in untouched while open" before (Atomic.get calls);
  Alcotest.(check bool) "breaker-open counted" true
    ((Counters.snapshot ()).Counters.breaker_open >= 1);
  Alcotest.(check bool) "skip recorded in the report" true
    (report.Fault.rp_skipped >= 1);
  (* after the cooldown a half-open probe runs the (now healed) member *)
  Unix.sleepf 0.07;
  let v, _ = degraded () in
  Alcotest.check check_value "probe heals: full rows" (Value.Int 200) v;
  Alcotest.(check bool) "probe reached the plug-in" true
    (Atomic.get calls > before);
  Alcotest.(check bool) "breaker closed again" true
    (List.assoc "sh__s1" (Registry.breaker_states reg) = Breaker.Closed)

(* re-registration resets the member's breaker: a healed source comes back
   before its cooldown expires *)
let test_breaker_reregistration_resets () =
  let db = make_sharded_db () in
  let reg = Db.registry db in
  Registry.set_retry_policy reg (Policy.of_attempts 1);
  Registry.set_breaker_config reg
    { Breaker.threshold = 1; cooldown_ms = 60_000. };
  ignore (Faultgen.flaky reg ~dataset:"sh__s1" ~failures:1 ());
  let degraded () =
    completed (Db.run_plan_guarded ~policy:Fault.Skip_row db (count_plan "sh"))
  in
  let v, _ = degraded () in
  Alcotest.check check_value "q1 degrades" (Value.Int 150) v;
  Alcotest.(check bool) "open with a long cooldown" true
    (List.assoc "sh__s1" (Registry.breaker_states reg) = Breaker.Open);
  Registry.invalidate reg "sh__s1";
  let v, _ = degraded () in
  Alcotest.check check_value "re-registration heals immediately" (Value.Int 200) v

(* --- graceful drain --------------------------------------------------------- *)

let make_flat_db () =
  let db = Db.create () in
  Db.register_rows db ~name:"items" ~element:item_type (items 400);
  db

let test_drain_completes_inflight () =
  let db = make_flat_db () in
  let sched = Scheduler.create ~workers:2 db in
  let tickets =
    List.init 6 (fun i ->
        match
          Scheduler.submit sched
            (Scheduler.request
               (Fmt.str "SELECT COUNT(1), SUM(price) FROM items WHERE k < %d"
                  (100 + i)))
        with
        | Ok tk -> tk
        | Error _ -> Alcotest.fail "submit refused")
  in
  (* a generous drain lets every queued + in-flight query finish *)
  Scheduler.shutdown ~drain_timeout_ms:30_000 sched;
  List.iter
    (fun tk ->
      match (Scheduler.await tk).Scheduler.cp_outcome with
      | Executor.Completed _ -> ()
      | _ -> Alcotest.fail "drained query must complete")
    tickets;
  (match Scheduler.submit sched (Scheduler.request "SELECT COUNT(1) FROM items") with
  | Error `Shutting_down -> ()
  | _ -> Alcotest.fail "submit after shutdown must refuse")

let test_drain_timeout_flushes () =
  let db = make_flat_db () in
  (* no workers: queued jobs can never run, so the drain MUST flush them —
     every ticket resolves, nothing hangs *)
  let sched = Scheduler.create ~workers:0 db in
  let tickets =
    List.init 3 (fun _ ->
        match Scheduler.submit sched (Scheduler.request "SELECT COUNT(1) FROM items") with
        | Ok tk -> tk
        | Error _ -> Alcotest.fail "submit refused")
  in
  Scheduler.shutdown ~drain_timeout_ms:30 sched;
  List.iter
    (fun tk ->
      match (Scheduler.await tk).Scheduler.cp_outcome with
      | Executor.Failed (_, Scheduler.Shutting_down) -> ()
      | _ -> Alcotest.fail "flushed ticket must resolve as Shutting_down")
    tickets

(* --- deadline-infeasibility shedding ---------------------------------------- *)

let test_shed_infeasible () =
  let db = make_flat_db () in
  let sched = Scheduler.create ~workers:0 ~max_queue:128 db in
  (* seed the service-time EWMA deterministically *)
  (match Scheduler.submit sched (Scheduler.request "SELECT COUNT(1) FROM items") with
  | Ok _ -> ()
  | Error _ -> Alcotest.fail "seed submit refused");
  Alcotest.(check bool) "seed ran" true (Scheduler.drain_one sched);
  (* back up the queue, then offer a deadline the wait alone exceeds *)
  let backlog =
    List.init 60 (fun _ ->
        Scheduler.submit sched
          (Scheduler.request "SELECT COUNT(1), SUM(price) FROM items"))
  in
  List.iter
    (function Ok _ -> () | Error _ -> Alcotest.fail "backlog submit refused")
    backlog;
  (match
     Scheduler.submit sched
       (Scheduler.request ~timeout_ms:1 "SELECT COUNT(1) FROM items")
   with
  | Error `Infeasible -> ()
  | Ok _ -> Alcotest.fail "infeasible deadline must shed"
  | Error _ -> Alcotest.fail "wrong rejection");
  Alcotest.(check int) "shed counted" 1 (Scheduler.stats sched).Scheduler.shed;
  (* no deadline -> no shedding, however deep the queue *)
  (match Scheduler.submit sched (Scheduler.request "SELECT COUNT(1) FROM items") with
  | Ok _ -> ()
  | Error _ -> Alcotest.fail "deadline-free submit must be accepted");
  Scheduler.shutdown ~drain_timeout_ms:10 sched

(* --- server hardening ------------------------------------------------------- *)

let with_server f =
  let db = make_flat_db () in
  let stop = Atomic.make false in
  let port = Atomic.make 0 in
  let srv =
    Domain.spawn (fun () ->
        Server.serve
          ~ready:(fun p -> Atomic.set port p)
          ~stop db
          {
            Server.default_config with
            port = 0;
            workers = 1;
            drain_timeout_ms = 5000;
          })
  in
  let rec wait_port n =
    if Atomic.get port = 0 then
      if n = 0 then Alcotest.fail "server did not come up"
      else begin
        Unix.sleepf 0.05;
        wait_port (n - 1)
      end
  in
  wait_port 100;
  Fun.protect
    ~finally:(fun () ->
      Atomic.set stop true;
      Domain.join srv)
    (fun () -> f (Atomic.get port))

let send out line =
  output_string out (line ^ "\n");
  flush out

let starts_with ~prefix s =
  String.length s >= String.length prefix
  && String.sub s 0 (String.length prefix) = prefix

let test_server_hardening () =
  with_server (fun port ->
      (* an oversized request line: one clear error, then the connection
         closes — and the server survives *)
      Server.with_connection ~port (fun inc out ->
          send out ("run SELECT " ^ String.make 9000 'x');
          Alcotest.(check string) "oversized line rejected"
            "err error: request line too long" (input_line inc);
          match input_line inc with
          | (_ : string) -> Alcotest.fail "connection must close after overflow"
          | exception End_of_file -> ());
      (* an abrupt disconnect mid-line kills only that connection *)
      Server.with_connection ~port (fun _inc out ->
          output_string out "run SELECT COUNT(1) FROM ite";
          flush out);
      (* the accept loop is still alive and serving *)
      Server.with_connection ~port (fun inc out ->
          send out "run SELECT COUNT(1) FROM items";
          Alcotest.(check string) "server still serves" "ok 1" (input_line inc);
          Alcotest.(check string) "count" "400" (input_line inc);
          send out "health";
          let h = input_line inc in
          Alcotest.(check bool)
            (Fmt.str "health shape (%s)" h)
            true
            (starts_with ~prefix:"health ok scheduler submitted=" h);
          send out "stats";
          let s = input_line inc in
          Alcotest.(check bool)
            (Fmt.str "stats carry resilience counters (%s)" s)
            true
            (let needle = "resilience shards-retried=" in
             let n = String.length needle and h = String.length s in
             let rec go i = i + n <= h && (String.sub s i n = needle || go (i + 1)) in
             go 0);
          send out "quit";
          Alcotest.(check string) "bye" "bye" (input_line inc)))

let () =
  Alcotest.run "resilience"
    [
      ( "policy",
        [
          Alcotest.test_case "retry budget" `Quick test_policy_budget;
          Alcotest.test_case "deadline-aware backoff" `Quick test_policy_deadline;
        ] );
      ( "breaker",
        [ Alcotest.test_case "state machine cycle" `Quick test_breaker_cycle ] );
      ( "hedge",
        [
          Alcotest.test_case "threshold arithmetic" `Quick test_hedge_threshold;
          Alcotest.test_case "hedged == unhedged (domains x batch)" `Slow
            test_hedged_identity;
          Alcotest.test_case "hedge beats the straggler" `Quick
            test_hedge_beats_straggler;
          Alcotest.test_case "stands down under degraded policies" `Quick
            test_hedge_stands_down_degraded;
        ] );
      ( "retry",
        [
          Alcotest.test_case "flaky member heals within budget" `Quick
            test_flaky_within_budget;
          Alcotest.test_case "exhaustion under each policy" `Quick
            test_flaky_exhaustion_policies;
        ] );
      ( "scatter-breaker",
        [
          Alcotest.test_case "open -> skip -> probe -> heal" `Quick
            test_breaker_scatter_cycle;
          Alcotest.test_case "re-registration resets" `Quick
            test_breaker_reregistration_resets;
        ] );
      ( "drain",
        [
          Alcotest.test_case "drain completes in-flight work" `Quick
            test_drain_completes_inflight;
          Alcotest.test_case "timed-out drain flushes, never hangs" `Quick
            test_drain_timeout_flushes;
          Alcotest.test_case "infeasible deadlines shed at submit" `Quick
            test_shed_infeasible;
        ] );
      ( "server",
        [
          Alcotest.test_case "hardening + health verb" `Quick
            test_server_hardening;
        ] );
    ]
