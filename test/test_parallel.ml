(* Differential tests for the morsel-parallel engine: on the same plans and
   datasets (every format plug-in), [Engine_parallel n] must agree with the
   serial compiled engine, the Volcano interpreter and the reference algebra
   evaluator — and must be deterministic across domain counts, including
   float aggregates and cache side effects. *)

open Proteus_model
open Proteus_storage
open Proteus_catalog
open Proteus_plugin
open Proteus_engine
module Plan = Proteus_algebra.Plan
module Interp = Proteus_algebra.Interp
module Manager = Proteus_cache.Manager

let check_value = Alcotest.testable Value.pp Value.equal

(* --- one relational dataset in all four formats, big enough that the
   dispenser hands out many morsels (800 rows -> 16-row morsels) ----------- *)

let item_type =
  Ptype.Record
    [ ("k", Ptype.Int); ("grp", Ptype.Int); ("price", Ptype.Float);
      ("name", Ptype.String) ]

let item_schema = Schema.of_type item_type

let items =
  (* deterministic pseudo-random contents; quarter-step prices survive the
     CSV/JSON decimal round-trip bit-exactly, so one oracle serves all four
     formats *)
  List.init 800 (fun i ->
      let k = i in
      let grp = i mod 7 in
      let price = float_of_int ((i * 37) mod 1000) /. 4.0 in
      let name = Fmt.str "n%d" (i mod 13) in
      Value.record
        [ ("k", Value.Int k); ("grp", Value.Int grp); ("price", Value.Float price);
          ("name", Value.String name) ])

let groups_type = Ptype.Record [ ("gid", Ptype.Int); ("label", Ptype.String) ]

let groups =
  List.init 7 (fun g ->
      Value.record [ ("gid", Value.Int g); ("label", Value.String (Fmt.str "g%d" g)) ])

let nested_type =
  Ptype.Record
    [
      ("id", Ptype.Int);
      ( "kids",
        Ptype.Collection
          (Ptype.List, Ptype.Record [ ("age", Ptype.Int); ("nick", Ptype.String) ]) );
    ]

let nested =
  List.init 120 (fun i ->
      let kids =
        List.init (i mod 4) (fun j ->
            Value.record
              [ ("age", Value.Int ((i + (j * 11)) mod 40));
                ("nick", Value.String (Fmt.str "kid%d_%d" i j)) ])
      in
      Value.record [ ("id", Value.Int i); ("kids", Value.list_ kids) ])

(* binary-only dataset with floats that are NOT exactly summable: exposes
   association differences between domain counts if merges were not done in
   a fixed morsel order *)
let harmonic_type = Ptype.Record [ ("i", Ptype.Int); ("w", Ptype.Float) ]

let harmonic =
  List.init 700 (fun i ->
      Value.record
        [ ("i", Value.Int i); ("w", Value.Float (1.0 /. float_of_int (i + 3))) ])

let to_json records =
  String.concat "\n"
    (List.map
       (fun r -> Proteus_format.Json.to_string (Proteus_format.Json.of_value r))
       records)

let make_catalog () =
  let cat = Catalog.create () in
  let mem = Catalog.memory cat in
  Memory.register_blob mem ~name:"items.csv"
    (Proteus_format.Csv.of_records Proteus_format.Csv.default_config item_schema items);
  Catalog.register cat
    (Dataset.make ~name:"items_csv"
       ~format:(Dataset.Csv Proteus_format.Csv.default_config)
       ~location:(Dataset.Blob "items.csv") ~element:item_type);
  Memory.register_blob mem ~name:"items.json" (to_json items);
  Catalog.register cat
    (Dataset.make ~name:"items_json" ~format:Dataset.Json
       ~location:(Dataset.Blob "items.json") ~element:item_type);
  Catalog.register cat
    (Dataset.make ~name:"items_row" ~format:Dataset.Binary_row
       ~location:(Dataset.Rows (Rowpage.of_records item_schema items))
       ~element:item_type);
  let col name ty =
    (name, Column.of_values ty (List.map (fun r -> Value.field r name) items))
  in
  Catalog.register cat
    (Dataset.make ~name:"items_col" ~format:Dataset.Binary_column
       ~location:
         (Dataset.Columns
            [ col "k" Ptype.Int; col "grp" Ptype.Int; col "price" Ptype.Float;
              col "name" Ptype.String ])
       ~element:item_type);
  let hcol name ty =
    (name, Column.of_values ty (List.map (fun r -> Value.field r name) harmonic))
  in
  Catalog.register cat
    (Dataset.make ~name:"harmonic" ~format:Dataset.Binary_column
       ~location:(Dataset.Columns [ hcol "i" Ptype.Int; hcol "w" Ptype.Float ])
       ~element:harmonic_type);
  Memory.register_blob mem ~name:"groups.json" (to_json groups);
  Catalog.register cat
    (Dataset.make ~name:"groups" ~format:Dataset.Json
       ~location:(Dataset.Blob "groups.json") ~element:groups_type);
  Memory.register_blob mem ~name:"nested.json" (to_json nested);
  Catalog.register cat
    (Dataset.make ~name:"nested" ~format:Dataset.Json
       ~location:(Dataset.Blob "nested.json") ~element:nested_type);
  cat

let lookup name =
  match name with
  | "items_csv" | "items_json" | "items_row" | "items_col" -> items
  | "harmonic" -> harmonic
  | "groups" -> groups
  | "nested" -> nested
  | other -> Perror.plan_error "no dataset %s" other

let sort_bag v =
  match v with
  | Value.Coll (Ptype.Bag, es) -> Value.Coll (Ptype.Bag, List.sort Value.compare es)
  | v -> v

let registry = lazy (Registry.create (make_catalog ()))

(* Multiset comparison of every engine against the oracle, plus exact
   (bit-level, order-included) agreement between different domain counts. *)
let check_par ?(name = "plan") plan =
  let reg = Lazy.force registry in
  let expected = sort_bag (Interp.run ~lookup plan) in
  let serial = Executor.run reg ~engine:Executor.Engine_compiled plan in
  let volcano = Executor.run reg ~engine:Executor.Engine_volcano plan in
  let p2 = Executor.run reg ~engine:(Executor.Engine_parallel 2) plan in
  let p4 = Executor.run reg ~engine:(Executor.Engine_parallel 4) plan in
  Alcotest.check check_value (name ^ " (serial)") expected (sort_bag serial);
  Alcotest.check check_value (name ^ " (volcano)") expected (sort_bag volcano);
  Alcotest.check check_value (name ^ " (2 domains)") expected (sort_bag p2);
  Alcotest.check check_value (name ^ " (4 domains)") expected (sort_bag p4);
  Alcotest.check check_value (name ^ " (2 == 4 domains)") p2 p4

(* Order-sensitive variant for sorted outputs. *)
let check_par_ordered ?(name = "plan") plan =
  let reg = Lazy.force registry in
  let expected = Interp.run ~lookup plan in
  Alcotest.check check_value (name ^ " (serial)") expected
    (Executor.run reg ~engine:Executor.Engine_compiled plan);
  List.iter
    (fun n ->
      Alcotest.check check_value
        (Fmt.str "%s (%d domains)" name n)
        expected
        (Executor.run reg ~engine:(Executor.Engine_parallel n) plan))
    [ 2; 3; 4 ]

let item_datasets = [ "items_csv"; "items_json"; "items_row"; "items_col" ]

(* --- the plan matrix, per format ------------------------------------------ *)

let test_aggregate () =
  List.iter
    (fun ds ->
      check_par ~name:ds
        (Plan.reduce
           [
             Plan.agg ~name:"c" (Monoid.Primitive Monoid.Count) (Expr.int 1);
             Plan.agg ~name:"sp" (Monoid.Primitive Monoid.Sum)
               Expr.(Field (var "x", "price"));
             Plan.agg ~name:"sk" (Monoid.Primitive Monoid.Sum) Expr.(Field (var "x", "k"));
             Plan.agg ~name:"mx" (Monoid.Primitive Monoid.Max)
               Expr.(Field (var "x", "price"));
             Plan.agg ~name:"mn" (Monoid.Primitive Monoid.Min) Expr.(Field (var "x", "k"));
             Plan.agg ~name:"av" (Monoid.Primitive Monoid.Avg)
               Expr.(Field (var "x", "price"));
           ]
           (Plan.scan ~dataset:ds ~binding:"x" ())))
    item_datasets

let test_filtered_count () =
  List.iter
    (fun ds ->
      check_par ~name:ds
        (Plan.reduce
           ~pred:Expr.(Field (var "x", "k") <. int 500)
           [ Plan.agg ~name:"c" (Monoid.Primitive Monoid.Count) (Expr.int 1) ]
           (Plan.scan ~dataset:ds ~binding:"x" ())))
    item_datasets

let test_select_project () =
  List.iter
    (fun ds ->
      check_par ~name:ds
        (Plan.project ~binding:"out"
           ~fields:
             [ ("kk", Expr.(Field (var "x", "k") *. int 2));
               ("nm", Expr.(Field (var "x", "name"))) ]
           (Plan.select
              Expr.(Field (var "x", "price") >=. float 40.0
                    &&& (Field (var "x", "grp") ==. int 3))
              (Plan.scan ~dataset:ds ~binding:"x" ()))))
    item_datasets

let test_collect_bag () =
  List.iter
    (fun ds ->
      check_par ~name:ds
        (Plan.reduce
           ~pred:Expr.(Field (var "x", "k") <. int 40)
           [
             Plan.agg ~name:"r" (Monoid.Collection Ptype.Bag)
               Expr.(Field (var "x", "price") +. float 1.0);
           ]
           (Plan.scan ~dataset:ds ~binding:"x" ())))
    item_datasets

let test_group_by () =
  List.iter
    (fun ds ->
      check_par ~name:ds
        (Plan.nest
           ~keys:[ ("g", Expr.(Field (var "x", "grp"))) ]
           ~aggs:
             [
               Plan.agg ~name:"n" (Monoid.Primitive Monoid.Count) (Expr.int 1);
               Plan.agg ~name:"total" (Monoid.Primitive Monoid.Sum)
                 Expr.(Field (var "x", "price"));
               Plan.agg ~name:"avg" (Monoid.Primitive Monoid.Avg)
                 Expr.(Field (var "x", "price"));
             ]
           ~binding:"grp"
           (Plan.scan ~dataset:ds ~binding:"x" ())))
    item_datasets

let test_join () =
  List.iter
    (fun ds ->
      check_par ~name:ds
        (Plan.reduce
           [
             Plan.agg ~name:"c" (Monoid.Primitive Monoid.Count) (Expr.int 1);
             Plan.agg ~name:"m" (Monoid.Primitive Monoid.Max) Expr.(Field (var "x", "k"));
           ]
           (Plan.select
              Expr.(Field (var "x", "k") <. int 650)
              (Plan.join
                 ~pred:Expr.(Field (var "x", "grp") ==. Field (var "g", "gid"))
                 (Plan.scan ~dataset:ds ~binding:"x" ())
                 (Plan.scan ~dataset:"groups" ~binding:"g" ())))))
    item_datasets

let test_join_project () =
  check_par
    (Plan.project ~binding:"o"
       ~fields:
         [ ("k", Expr.(Field (var "x", "k"))); ("lbl", Expr.(Field (var "g", "label"))) ]
       (Plan.select
          Expr.(Field (var "x", "k") <. int 100)
          (Plan.join
             ~pred:Expr.(Field (var "x", "grp") ==. Field (var "g", "gid"))
             (Plan.scan ~dataset:"items_row" ~binding:"x" ())
             (Plan.scan ~dataset:"groups" ~binding:"g" ()))))

let test_unnest () =
  check_par
    (Plan.reduce
       [ Plan.agg ~name:"c" (Monoid.Primitive Monoid.Count) (Expr.int 1) ]
       (Plan.unnest
          ~pred:Expr.(Field (var "kid", "age") >. int 18)
          ~path:Expr.(Field (var "n", "kids"))
          ~binding:"kid"
          (Plan.scan ~dataset:"nested" ~binding:"n" ())))

let test_sort () =
  (* Sort below the root: workers buffer morsels, the serial Sort replays
     them in morsel order — byte-identical to the serial scan order *)
  List.iter
    (fun ds ->
      check_par_ordered ~name:ds
        (Plan.sort ~limit:23
           ~keys:
             [ (Expr.(Field (var "x", "grp")), Plan.Asc);
               (Expr.(Field (var "x", "price")), Plan.Desc) ]
           (Plan.select
              Expr.(Field (var "x", "k") <. int 300)
              (Plan.scan ~dataset:ds ~binding:"x" ()))))
    item_datasets

let test_sort_over_group_by () =
  (* the TPC-H Q1 shape: parallel Nest below a serial Sort *)
  check_par_ordered
    (Plan.sort
       ~keys:[ (Expr.(Field (var "grp", "g")), Plan.Asc) ]
       (Plan.nest
          ~keys:[ ("g", Expr.(Field (var "x", "grp"))) ]
          ~aggs:
            [
              Plan.agg ~name:"n" (Monoid.Primitive Monoid.Count) (Expr.int 1);
              Plan.agg ~name:"total" (Monoid.Primitive Monoid.Sum)
                Expr.(Field (var "x", "price"));
            ]
          ~binding:"grp"
          (Plan.scan ~dataset:"items_csv" ~binding:"x" ())))

(* --- determinism: float aggregates identical at every domain count -------- *)

let test_float_determinism () =
  (* harmonic weights do not sum exactly, so any association change between
     domain counts would flip low-order bits; the per-morsel partials merged
     in morsel order must make every domain count bit-identical *)
  let reg = Lazy.force registry in
  let plan =
    Plan.reduce
      [
        Plan.agg ~name:"s" (Monoid.Primitive Monoid.Sum) Expr.(Field (var "x", "w"));
        Plan.agg ~name:"a" (Monoid.Primitive Monoid.Avg) Expr.(Field (var "x", "w"));
      ]
      (Plan.scan ~dataset:"harmonic" ~binding:"x" ())
  in
  let at n = Executor.run reg ~engine:(Executor.Engine_parallel n) plan in
  let base = at 2 in
  List.iter
    (fun n ->
      Alcotest.check check_value (Fmt.str "domains=2 == domains=%d" n) base (at n))
    [ 3; 4; 5; 8 ];
  (* parallel differs from serial only by float association: close, and the
     run-to-run value is stable *)
  let float_of v =
    match Value.field v "s" with
    | Value.Float f -> f
    | _ -> Alcotest.fail "no sum"
  in
  let serial = float_of (Executor.run reg ~engine:Executor.Engine_compiled plan) in
  let par = float_of base in
  Alcotest.(check bool) "parallel sum within 1e-12 of serial" true
    (Float.abs (serial -. par) <= 1e-12 *. Float.abs serial);
  Alcotest.check check_value "repeat run bit-identical" base (at 2)

(* --- Engine_parallel 1 is exactly the serial engine ----------------------- *)

let test_one_domain_is_serial () =
  let reg = Lazy.force registry in
  let plan =
    Plan.nest
      ~keys:[ ("g", Expr.(Field (var "x", "grp"))) ]
      ~aggs:[ Plan.agg ~name:"n" (Monoid.Primitive Monoid.Count) (Expr.int 1) ]
      ~binding:"grp"
      (Plan.scan ~dataset:"items_row" ~binding:"x" ())
  in
  (* order-sensitive: the serial engine's first-encounter group order *)
  Alcotest.check check_value "identical incl. row order"
    (Executor.run reg ~engine:Executor.Engine_compiled plan)
    (Executor.run reg ~engine:(Executor.Engine_parallel 1) plan)

(* --- caching: a parallel session leaves bit-identical caches -------------- *)

let make_session () =
  let cat = make_catalog () in
  let mgr = Manager.create cat in
  let reg = Registry.create ~cache:(Manager.iface mgr) cat in
  (mgr, reg)

let column_testable =
  Alcotest.testable
    (fun ppf col ->
      Fmt.pf ppf "column[%d]" (Column.length col))
    (fun a b ->
      Column.length a = Column.length b
      && List.for_all
           (fun i -> Value.equal (Column.get a i) (Column.get b i))
           (List.init (Column.length a) Fun.id))

let workload =
  [
    Plan.reduce
      ~pred:Expr.(Field (var "x", "k") <. int 500)
      [
        Plan.agg ~name:"s" (Monoid.Primitive Monoid.Sum) Expr.(Field (var "x", "price"));
      ]
      (Plan.scan ~dataset:"items_csv" ~binding:"x" ());
    Plan.nest
      ~keys:[ ("g", Expr.(Field (var "x", "grp"))) ]
      ~aggs:[ Plan.agg ~name:"n" (Monoid.Primitive Monoid.Count) (Expr.int 1) ]
      ~binding:"grp"
      (Plan.scan ~dataset:"items_json" ~binding:"x" ());
    Plan.reduce
      [ Plan.agg ~name:"c" (Monoid.Primitive Monoid.Count) (Expr.int 1) ]
      (Plan.join
         ~pred:Expr.(Field (var "x", "grp") ==. Field (var "g", "gid"))
         (Plan.scan ~dataset:"items_csv" ~binding:"x" ())
         (Plan.scan ~dataset:"groups" ~binding:"g" ()));
  ]

let test_cache_parity () =
  let mgr_s, reg_s = make_session () in
  let mgr_p, reg_p = make_session () in
  (* run the workload twice per session: cold runs fill the caches through
     parallel per-morsel segments (test_cache_parallel.ml covers the fill
     protocol itself), warm runs serve from the installed columns *)
  for round = 1 to 2 do
    List.iteri
      (fun i plan ->
        let name = Fmt.str "round %d query %d" round i in
        let serial = Executor.run reg_s ~engine:Executor.Engine_compiled plan in
        let par = Executor.run reg_p ~engine:(Executor.Engine_parallel 4) plan in
        Alcotest.check check_value name (sort_bag serial) (sort_bag par))
      workload
  done;
  let stats_s = Manager.stats mgr_s and stats_p = Manager.stats mgr_p in
  Alcotest.(check int) "same number of cached columns" stats_s.Manager.field_stores
    stats_p.Manager.field_stores;
  Alcotest.(check bool) "caches populated" true (stats_s.Manager.field_stores > 0);
  let iface_s = Manager.iface mgr_s and iface_p = Manager.iface mgr_p in
  let some_cached = ref false in
  List.iter
    (fun dataset ->
      List.iter
        (fun path ->
          let cs = iface_s.Cache_iface.lookup_field ~dataset ~path in
          let cp = iface_p.Cache_iface.lookup_field ~dataset ~path in
          match cs, cp with
          | None, None -> ()
          | Some cs, Some cp ->
            some_cached := true;
            Alcotest.check column_testable
              (Fmt.str "%s.%s cache column" dataset path)
              cs cp
          | _ ->
            Alcotest.failf "%s.%s cached in only one session" dataset path)
        [ "k"; "grp"; "price" ])
    [ "items_csv"; "items_json" ];
  Alcotest.(check bool) "at least one field column compared" true !some_cached

(* --- counters are domain-safe (no lost increments) ------------------------ *)

let test_counters_domain_safe () =
  Counters.reset ();
  let n = 25_000 in
  Pool.run ~domains:4 (fun _ ->
      for _ = 1 to n do
        Counters.add_tuples 1
      done);
  let s = Counters.snapshot () in
  Alcotest.(check int) "no lost increments" (4 * n) s.Counters.tuples;
  Counters.reset ()

(* --- the dispenser hands out [0, total) exactly once ---------------------- *)

let test_dispenser_coverage () =
  let d = Pool.Dispenser.create () in
  List.iter
    (fun total ->
      Pool.Dispenser.reset d ~total ~workers:3;
      let expected_morsels = Pool.Dispenser.morsels d in
      let seen = ref [] in
      let rec drain () =
        match Pool.Dispenser.next d with
        | Some (m, lo, hi) ->
          seen := (m, lo, hi) :: !seen;
          drain ()
        | None -> ()
      in
      drain ();
      let seen = List.rev !seen in
      Alcotest.(check int)
        (Fmt.str "morsel count for total=%d" total)
        expected_morsels (List.length seen);
      (* contiguous, in morsel-index order, covering [0, total) *)
      let cursor = ref 0 in
      List.iteri
        (fun i (m, lo, hi) ->
          Alcotest.(check int) "morsel index" i m;
          Alcotest.(check int) "contiguous lo" !cursor lo;
          Alcotest.(check bool) "nonempty" true (hi > lo);
          cursor := hi)
        seen;
      Alcotest.(check int) (Fmt.str "covers total=%d" total) total !cursor;
      (* worker count must not influence the partition *)
      Pool.Dispenser.reset d ~total ~workers:8;
      Alcotest.(check int)
        (Fmt.str "worker-independent partition for total=%d" total)
        expected_morsels
        (Pool.Dispenser.morsels d))
    [ 1; 15; 16; 17; 800; 4096; 1_000_000 ]

(* --- statistics collection: single pass, same numbers --------------------- *)

let test_collect_stats () =
  let reg = Registry.create (make_catalog ()) in
  ignore (Registry.source reg "items_csv");
  let stats = Catalog.stats (Registry.catalog reg) "items_csv" in
  Alcotest.(check bool) "cardinality" true
    (Stats.cardinality stats = Some (List.length items));
  let oracle path =
    let vs = List.map (fun r -> Value.field r path) items in
    ( List.fold_left (fun a v -> if Value.compare v a < 0 then v else a) (List.hd vs) vs,
      List.fold_left (fun a v -> if Value.compare v a > 0 then v else a) (List.hd vs) vs,
      List.length vs )
  in
  List.iter
    (fun path ->
      match Stats.field stats path with
      | None -> Alcotest.failf "no stats for %s" path
      | Some fs ->
        let mn, mx, nonnull = oracle path in
        Alcotest.check check_value (path ^ " min") mn fs.Stats.min;
        Alcotest.check check_value (path ^ " max") mx fs.Stats.max;
        Alcotest.(check int) (path ^ " nonnull") nonnull fs.Stats.nonnull;
        Alcotest.(check bool) (path ^ " distinct > 0") true
          (fs.Stats.distinct_estimate > 0))
    [ "k"; "grp"; "price" ]

let () =
  Alcotest.run "parallel"
    [
      ( "differential",
        [
          Alcotest.test_case "aggregate" `Quick test_aggregate;
          Alcotest.test_case "filtered count" `Quick test_filtered_count;
          Alcotest.test_case "select+project" `Quick test_select_project;
          Alcotest.test_case "collect bag" `Quick test_collect_bag;
          Alcotest.test_case "group by" `Quick test_group_by;
          Alcotest.test_case "join" `Quick test_join;
          Alcotest.test_case "join project" `Quick test_join_project;
          Alcotest.test_case "unnest" `Quick test_unnest;
          Alcotest.test_case "sort" `Quick test_sort;
          Alcotest.test_case "sort over group by" `Quick test_sort_over_group_by;
        ] );
      ( "determinism",
        [
          Alcotest.test_case "float aggregates across domain counts" `Quick
            test_float_determinism;
          Alcotest.test_case "one domain is serial" `Quick test_one_domain_is_serial;
        ] );
      ( "caching",
        [ Alcotest.test_case "parallel session parity" `Quick test_cache_parity ] );
      ( "runtime",
        [
          Alcotest.test_case "counters domain-safe" `Quick test_counters_domain_safe;
          Alcotest.test_case "dispenser coverage" `Quick test_dispenser_coverage;
        ] );
      ( "stats",
        [ Alcotest.test_case "cold collection matches oracle" `Quick test_collect_stats ] );
    ]
