(* Differential tests for segmented parallel cache materialization: a cold
   (cache-filling) run on the morsel spine must leave cache columns
   bit-identical to a serial fill — at every domain count, batch size and
   format — and the install-on-commit quarantine of DESIGN.md section 10
   must survive the move: an aborted run releases all segments, a Skip_row
   run that recorded errors never installs its compacted fill. *)

open Proteus_model
open Proteus_storage
open Proteus_catalog
open Proteus_plugin
open Proteus_engine
module Plan = Proteus_algebra.Plan
module Manager = Proteus_cache.Manager

let check_value = Alcotest.testable Value.pp Value.equal

(* --- one relational dataset in all four formats; 800 rows -> 16-row
   morsels, so a parallel cold fill commits many segments ----------------- *)

let item_type =
  Ptype.Record
    [ ("k", Ptype.Int); ("grp", Ptype.Int); ("price", Ptype.Float);
      ("name", Ptype.String) ]

let item_schema = Schema.of_type item_type

let items =
  (* quarter-step prices survive the CSV/JSON decimal round-trip and sum
     exactly in doubles, so aggregates agree bit-for-bit across engines *)
  List.init 800 (fun i ->
      let k = i in
      let grp = i mod 7 in
      let price = float_of_int ((i * 37) mod 1000) /. 4.0 in
      let name = Fmt.str "n%d" (i mod 13) in
      Value.record
        [ ("k", Value.Int k); ("grp", Value.Int grp); ("price", Value.Float price);
          ("name", Value.String name) ])

let groups_type = Ptype.Record [ ("gid", Ptype.Int); ("label", Ptype.String) ]

let groups =
  List.init 7 (fun g ->
      Value.record [ ("gid", Value.Int g); ("label", Value.String (Fmt.str "g%d" g)) ])

let to_json records =
  String.concat "\n"
    (List.map
       (fun r -> Proteus_format.Json.to_string (Proteus_format.Json.of_value r))
       records)

let make_catalog () =
  let cat = Catalog.create () in
  let mem = Catalog.memory cat in
  Memory.register_blob mem ~name:"items.csv"
    (Proteus_format.Csv.of_records Proteus_format.Csv.default_config item_schema items);
  Catalog.register cat
    (Dataset.make ~name:"items_csv"
       ~format:(Dataset.Csv Proteus_format.Csv.default_config)
       ~location:(Dataset.Blob "items.csv") ~element:item_type);
  Memory.register_blob mem ~name:"items.json" (to_json items);
  Catalog.register cat
    (Dataset.make ~name:"items_json" ~format:Dataset.Json
       ~location:(Dataset.Blob "items.json") ~element:item_type);
  Catalog.register cat
    (Dataset.make ~name:"items_row" ~format:Dataset.Binary_row
       ~location:(Dataset.Rows (Rowpage.of_records item_schema items))
       ~element:item_type);
  let col name ty =
    (name, Column.of_values ty (List.map (fun r -> Value.field r name) items))
  in
  Catalog.register cat
    (Dataset.make ~name:"items_col" ~format:Dataset.Binary_column
       ~location:
         (Dataset.Columns
            [ col "k" Ptype.Int; col "grp" Ptype.Int; col "price" Ptype.Float;
              col "name" Ptype.String ])
       ~element:item_type);
  Memory.register_blob mem ~name:"groups.json" (to_json groups);
  Catalog.register cat
    (Dataset.make ~name:"groups" ~format:Dataset.Json
       ~location:(Dataset.Blob "groups.json") ~element:groups_type);
  cat

let make_session () =
  let cat = make_catalog () in
  let mgr = Manager.create cat in
  let reg = Registry.create ~cache:(Manager.iface mgr) cat in
  (mgr, reg)

let column_testable =
  Alcotest.testable
    (fun ppf col -> Fmt.pf ppf "column[%d]" (Column.length col))
    (fun a b ->
      Column.length a = Column.length b
      && List.for_all
           (fun i -> Value.equal (Column.get a i) (Column.get b i))
           (List.init (Column.length a) Fun.id))

let sort_bag v =
  match v with
  | Value.Coll (Ptype.Bag, es) -> Value.Coll (Ptype.Bag, List.sort Value.compare es)
  | v -> v

let item_datasets = [ "items_csv"; "items_json"; "items_row"; "items_col" ]
let cacheable_paths = [ "k"; "grp"; "price" ]

(* one scan per format touching every cacheable path, plus a join so a
   packed (build-side) cache materializes alongside the field fills *)
let workload =
  List.map
    (fun ds ->
      Plan.reduce
        [
          Plan.agg ~name:"c" (Monoid.Primitive Monoid.Count) (Expr.int 1);
          Plan.agg ~name:"sk" (Monoid.Primitive Monoid.Sum) Expr.(Field (var "x", "k"));
          Plan.agg ~name:"sg" (Monoid.Primitive Monoid.Sum)
            Expr.(Field (var "x", "grp"));
          Plan.agg ~name:"sp" (Monoid.Primitive Monoid.Sum)
            Expr.(Field (var "x", "price"));
        ]
        (Plan.scan ~dataset:ds ~binding:"x" ()))
    item_datasets
  @ [
      Plan.reduce
        [ Plan.agg ~name:"c" (Monoid.Primitive Monoid.Count) (Expr.int 1) ]
        (Plan.join
           ~pred:Expr.(Field (var "x", "grp") ==. Field (var "g", "gid"))
           (Plan.scan ~dataset:"items_csv" ~binding:"x" ())
           (Plan.scan ~dataset:"groups" ~binding:"g" ()));
    ]

(* Run the workload cold on a fresh session, returning (results, cache
   snapshot, stats). The cache snapshot holds every (dataset, path) field
   column present after the run. *)
let cold_run ~engine ~batch_size () =
  let mgr, reg = make_session () in
  let results =
    List.map (fun plan -> sort_bag (Executor.run ~batch_size reg ~engine plan)) workload
  in
  let iface = Manager.iface mgr in
  let columns =
    List.concat_map
      (fun dataset ->
        List.filter_map
          (fun path ->
            match iface.Cache_iface.lookup_field ~dataset ~path with
            | Some col -> Some ((dataset, path), col)
            | None -> None)
          cacheable_paths)
      item_datasets
  in
  (mgr, reg, results, columns, Manager.stats mgr)

let baseline = lazy (cold_run ~engine:Executor.Engine_compiled ~batch_size:0 ())

(* --- cold-parallel == cold-serial == warm, for every cacheable column ---- *)

let test_cold_matrix () =
  let _, _, base_results, base_columns, base_stats = Lazy.force baseline in
  Alcotest.(check bool) "baseline populated caches" true
    (base_stats.Manager.field_stores > 0);
  (* csv + json elect k/grp/price each; binary formats never fill *)
  Alcotest.(check int) "baseline cached columns" 6 (List.length base_columns);
  List.iter
    (fun (domains, batch_size) ->
      let name = Fmt.str "domains=%d batch=%d" domains batch_size in
      let _, reg, results, columns, stats =
        cold_run ~engine:(Executor.Engine_parallel domains) ~batch_size ()
      in
      List.iteri
        (fun i (expected, got) ->
          Alcotest.check check_value (Fmt.str "%s query %d" name i) expected got)
        (List.combine base_results results);
      (* the cold fill must install exactly the serial columns, bit for bit *)
      Alcotest.(check int)
        (name ^ " same cached columns")
        (List.length base_columns) (List.length columns);
      List.iter
        (fun ((dataset, path), base_col) ->
          match List.assoc_opt (dataset, path) columns with
          | None -> Alcotest.failf "%s: %s.%s not cached" name dataset path
          | Some col ->
            Alcotest.check column_testable
              (Fmt.str "%s: %s.%s cache column" name dataset path)
              base_col col)
        base_columns;
      Alcotest.(check int)
        (name ^ " field stores")
        base_stats.Manager.field_stores stats.Manager.field_stores;
      Alcotest.(check int)
        (name ^ " fill commits")
        base_stats.Manager.fill_commits stats.Manager.fill_commits;
      Alcotest.(check int)
        (name ^ " fill rows")
        base_stats.Manager.fill_rows stats.Manager.fill_rows;
      Alcotest.(check int)
        (name ^ " nothing quarantined")
        0 stats.Manager.quarantined;
      Alcotest.(check bool)
        (name ^ " at least one segment per commit")
        true
        (stats.Manager.fill_segments >= stats.Manager.fill_commits);
      (* 800 rows -> 16-row morsels: a multi-domain tuple-lane fill commits
         many per-morsel segments, not one whole-dataset buffer *)
      if domains > 1 && batch_size = 0 then
        Alcotest.(check bool)
          (name ^ " fills are segmented")
          true
          (stats.Manager.fill_segments > stats.Manager.fill_commits);
      (* warm run: identical results, no further stores or commits *)
      List.iteri
        (fun i plan ->
          Alcotest.check check_value
            (Fmt.str "%s warm query %d" name i)
            (List.nth base_results i)
            (sort_bag
               (Executor.run ~batch_size reg
                  ~engine:(Executor.Engine_parallel domains) plan)))
        workload)
    [ (1, 0); (1, 256); (1, 1024); (2, 0); (2, 256); (2, 1024); (4, 0); (4, 256);
      (4, 1024) ]

let test_warm_stores_nothing () =
  let mgr, reg = make_session () in
  let run () =
    List.iter
      (fun plan ->
        ignore (Executor.run ~batch_size:256 reg ~engine:(Executor.Engine_parallel 4) plan))
      workload
  in
  run ();
  let cold = Manager.stats mgr in
  run ();
  let warm = Manager.stats mgr in
  Alcotest.(check int) "no new stores" cold.Manager.field_stores
    warm.Manager.field_stores;
  Alcotest.(check int) "no new fill commits" cold.Manager.fill_commits
    warm.Manager.fill_commits;
  Alcotest.(check int) "no new fill rows" cold.Manager.fill_rows warm.Manager.fill_rows

(* --- the morsel counter ticks on parallel fleet runs ---------------------- *)

let test_morsel_counter () =
  let _, reg = make_session () in
  Counters.reset ();
  ignore (Executor.run reg ~engine:(Executor.Engine_parallel 4) (List.hd workload));
  let s = Counters.snapshot () in
  Alcotest.(check bool) "morsels dispensed" true (s.Counters.morsels > 0);
  Counters.reset ()

(* --- fault interaction: segments never install from a dirty run ----------- *)

let faulty_paths = cacheable_paths

let assert_not_cached name mgr dataset =
  let iface = Manager.iface mgr in
  List.iter
    (fun path ->
      match iface.Cache_iface.lookup_field ~dataset ~path with
      | None -> ()
      | Some _ -> Alcotest.failf "%s: %s.%s installed from a dirty run" name dataset path)
    faulty_paths

let scan_plan ds =
  Plan.reduce
    [
      Plan.agg ~name:"c" (Monoid.Primitive Monoid.Count) (Expr.int 1);
      Plan.agg ~name:"sk" (Monoid.Primitive Monoid.Sum) Expr.(Field (var "x", "k"));
      Plan.agg ~name:"sg" (Monoid.Primitive Monoid.Sum) Expr.(Field (var "x", "grp"));
      Plan.agg ~name:"sp" (Monoid.Primitive Monoid.Sum) Expr.(Field (var "x", "price"));
    ]
    (Plan.scan ~dataset:ds ~binding:"x" ())

let test_fail_fast_releases_segments () =
  let mgr, reg = make_session () in
  let _seeks = Faultgen.inject reg ~dataset:"items_csv" ~fail_at:(fun r -> r = 400) in
  (match
     Executor.run_guarded reg ~engine:(Executor.Engine_parallel 4)
       (scan_plan "items_csv")
   with
  | Executor.Failed _ -> ()
  | _ -> Alcotest.fail "injected Fail_fast run did not fail");
  assert_not_cached "fail-fast abort" mgr "items_csv";
  let stats = Manager.stats mgr in
  Alcotest.(check int) "no commits" 0 stats.Manager.fill_commits;
  Alcotest.(check bool) "segments quarantined" true (stats.Manager.quarantined > 0)

let test_skip_row_quarantines_compacted_fill () =
  (* a Skip_row run completes over the holes, but its compacted fill is not
     OID-aligned: commit must quarantine it, never install it *)
  List.iter
    (fun (domains, batch_size) ->
      let name = Fmt.str "skip domains=%d batch=%d" domains batch_size in
      let mgr, reg = make_session () in
      let _ = Faultgen.inject reg ~dataset:"items_csv" ~fail_at:(fun r -> r mod 97 = 3) in
      (match
         Executor.run_guarded ~batch_size ~policy:Fault.Skip_row reg
           ~engine:(Executor.Engine_parallel domains) (scan_plan "items_csv")
       with
      | Executor.Completed (_, report) ->
        Alcotest.(check bool) (name ^ " rows skipped") true (report.Fault.rp_skipped > 0)
      | _ -> Alcotest.fail (name ^ ": Skip_row run did not complete"));
      assert_not_cached name mgr "items_csv";
      let stats = Manager.stats mgr in
      Alcotest.(check int) (name ^ " no commits") 0 stats.Manager.fill_commits;
      Alcotest.(check bool) (name ^ " quarantined") true (stats.Manager.quarantined > 0))
    [ (1, 0); (4, 0); (4, 256) ]

let test_skip_row_clean_installs () =
  (* Skip_row with nothing to skip is a clean run: the batch-lane fill
     commits and the columns match the serial Fail_fast baseline *)
  let _, _, _, base_columns, _ = Lazy.force baseline in
  let mgr, reg = make_session () in
  (match
     Executor.run_guarded ~batch_size:256 ~policy:Fault.Skip_row reg
       ~engine:(Executor.Engine_parallel 4) (scan_plan "items_csv")
   with
  | Executor.Completed (_, report) ->
    Alcotest.(check int) "no errors" 0 report.Fault.rp_errors
  | _ -> Alcotest.fail "clean Skip_row run did not complete");
  let iface = Manager.iface mgr in
  List.iter
    (fun path ->
      match
        ( iface.Cache_iface.lookup_field ~dataset:"items_csv" ~path,
          List.assoc_opt ("items_csv", path) base_columns )
      with
      | Some col, Some base -> Alcotest.check column_testable ("items_csv." ^ path) base col
      | None, _ -> Alcotest.failf "items_csv.%s not cached by clean Skip_row run" path
      | Some _, None -> Alcotest.failf "items_csv.%s unexpectedly cached" path)
    cacheable_paths;
  let stats = Manager.stats mgr in
  Alcotest.(check int) "nothing quarantined" 0 stats.Manager.quarantined;
  Alcotest.(check bool) "fill committed" true (stats.Manager.fill_commits > 0)

let () =
  Alcotest.run "cache_parallel"
    [
      ( "cold",
        [
          Alcotest.test_case "parallel == serial == warm, all formats" `Quick
            test_cold_matrix;
          Alcotest.test_case "warm runs store nothing" `Quick test_warm_stores_nothing;
          Alcotest.test_case "morsel counter" `Quick test_morsel_counter;
        ] );
      ( "faults",
        [
          Alcotest.test_case "fail-fast abort releases segments" `Quick
            test_fail_fast_releases_segments;
          Alcotest.test_case "skip-row quarantines compacted fill" `Quick
            test_skip_row_quarantines_compacted_fill;
          Alcotest.test_case "clean skip-row installs" `Quick
            test_skip_row_clean_installs;
        ] );
    ]
