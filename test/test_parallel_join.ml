(* Differential tests for the partitioned parallel join build, the
   partitioned parallel group-by and the vectorized join probe: on every
   plan shape the parallel engine must agree with the serial compiled
   engine, the Volcano interpreter and the reference evaluator across
   domain counts {1,2,4} x batch sizes {0,256,1024} — including the
   degenerate shapes (empty build side, build larger than probe,
   duplicate-heavy keys) where partitioning bugs hide. Prices are
   quarter-step floats, so sums are exact and equality can be bit-level. *)

open Proteus_model
open Proteus_storage
open Proteus_catalog
open Proteus_plugin
open Proteus_engine
module Plan = Proteus_algebra.Plan
module Interp = Proteus_algebra.Interp

(* force the partitioned build paths even on single-core test boxes — the
   engine otherwise caps the build fan-out at the machine's core count *)
let () = Unix.putenv "PROTEUS_PAR_BUILD" "1"

let check_value = Alcotest.testable Value.pp Value.equal

(* --- datasets ------------------------------------------------------------- *)

let order_type =
  Ptype.Record
    [ ("oid", Ptype.Int); ("pid", Ptype.Int); ("qty", Ptype.Int);
      ("amt", Ptype.Float) ]

(* probe side: 900 rows, many morsels *)
let orders =
  List.init 900 (fun i ->
      Value.record
        [ ("oid", Value.Int i);
          ("pid", Value.Int ((i * 13) mod 120));
          ("qty", Value.Int (1 + (i mod 9)));
          ("amt", Value.Float (float_of_int ((i * 29) mod 800) /. 4.0)) ])

let part_type =
  Ptype.Record [ ("pid", Ptype.Int); ("cat", Ptype.Int); ("label", Ptype.String) ]

(* build side: 120 distinct keys, a subset of the probed ids *)
let parts =
  List.init 100 (fun p ->
      Value.record
        [ ("pid", Value.Int p); ("cat", Value.Int (p mod 6));
          ("label", Value.String (Fmt.str "p%d" p)) ])

(* build side LARGER than the probe side: 2000 rows, keys overlapping the
   orders' pid range plus a long disjoint tail *)
let big_parts =
  List.init 2000 (fun p ->
      Value.record
        [ ("pid", Value.Int p); ("cat", Value.Int (p mod 11));
          ("label", Value.String (Fmt.str "b%d" p)) ])

(* duplicate-heavy build side: 5 distinct keys x 120 copies each — every
   probe hit multiplies, and every partition holds long chains *)
let dup_parts =
  List.init 600 (fun i ->
      Value.record
        [ ("pid", Value.Int (i mod 5)); ("cat", Value.Int (i mod 3));
          ("label", Value.String (Fmt.str "d%d" i)) ])

let empty_parts : Value.t list = []

let to_json records =
  String.concat "\n"
    (List.map
       (fun r -> Proteus_format.Json.to_string (Proteus_format.Json.of_value r))
       records)

let make_catalog () =
  let cat = Catalog.create () in
  let mem = Catalog.memory cat in
  let col ty records name =
    (name, Column.of_values ty (List.map (fun r -> Value.field r name) records))
  in
  Catalog.register cat
    (Dataset.make ~name:"orders" ~format:Dataset.Binary_column
       ~location:
         (Dataset.Columns
            [ col Ptype.Int orders "oid"; col Ptype.Int orders "pid";
              col Ptype.Int orders "qty"; col Ptype.Float orders "amt" ])
       ~element:order_type);
  Memory.register_blob mem ~name:"orders.json" (to_json orders);
  Catalog.register cat
    (Dataset.make ~name:"orders_json" ~format:Dataset.Json
       ~location:(Dataset.Blob "orders.json") ~element:order_type);
  let reg_parts name records =
    Catalog.register cat
      (Dataset.make ~name ~format:Dataset.Binary_row
         ~location:(Dataset.Rows (Rowpage.of_records (Schema.of_type part_type) records))
         ~element:part_type)
  in
  reg_parts "parts" parts;
  reg_parts "big_parts" big_parts;
  reg_parts "dup_parts" dup_parts;
  reg_parts "empty_parts" empty_parts;
  cat

let lookup name =
  match name with
  | "orders" | "orders_json" -> orders
  | "parts" -> parts
  | "big_parts" -> big_parts
  | "dup_parts" -> dup_parts
  | "empty_parts" -> empty_parts
  | other -> Perror.plan_error "no dataset %s" other

let sort_bag v =
  match v with
  | Value.Coll (Ptype.Bag, es) -> Value.Coll (Ptype.Bag, List.sort Value.compare es)
  | v -> v

let registry = lazy (Registry.create (make_catalog ()))

let domain_counts = [ 1; 2; 4 ]
let batch_sizes = [ 0; 256; 1024 ]

(* The differential harness: one oracle, then every engine x every domain
   count x every batch size. The parallel runs must match the serial
   compiled run EXACTLY (same value, bit-level floats, same row order up to
   the bag sort) — the test data is exactly summable, so partitioned
   merges have no association slack to hide in. *)
let check_join ?(name = "plan") plan =
  let reg = Lazy.force registry in
  let expected = sort_bag (Interp.run ~lookup plan) in
  let volcano = Executor.run reg ~engine:Executor.Engine_volcano plan in
  Alcotest.check check_value (name ^ " (volcano)") expected (sort_bag volcano);
  List.iter
    (fun bs ->
      let serial =
        Executor.run ~batch_size:bs reg ~engine:Executor.Engine_compiled plan
      in
      Alcotest.check check_value
        (Fmt.str "%s (serial, batch=%d)" name bs)
        expected (sort_bag serial);
      List.iter
        (fun d ->
          let par =
            Executor.run ~batch_size:bs reg
              ~engine:(Executor.Engine_parallel d) plan
          in
          Alcotest.check check_value
            (Fmt.str "%s (domains=%d, batch=%d)" name d bs)
            (sort_bag serial) (sort_bag par))
        domain_counts)
    batch_sizes

let join_pred = Expr.(Field (var "o", "pid") ==. Field (var "p", "pid"))

let scan_orders ds = Plan.scan ~dataset:ds ~binding:"o" ()
let scan_parts ds = Plan.scan ~dataset:ds ~binding:"p" ()

(* select -> join -> aggregate: the shape the vectorized probe keeps in the
   batch lane end to end *)
let join_reduce ~probe ~build =
  Plan.reduce
    [
      Plan.agg ~name:"c" (Monoid.Primitive Monoid.Count) (Expr.int 1);
      Plan.agg ~name:"s" (Monoid.Primitive Monoid.Sum) Expr.(Field (var "o", "amt"));
      Plan.agg ~name:"q" (Monoid.Primitive Monoid.Sum) Expr.(Field (var "o", "qty"));
    ]
    (Plan.join ~pred:join_pred
       (Plan.select Expr.(Field (var "o", "oid") <. int 700) (scan_orders probe))
       (scan_parts build))

let test_join_reduce () =
  List.iter
    (fun probe ->
      check_join ~name:(Fmt.str "%s |X| parts" probe)
        (join_reduce ~probe ~build:"parts"))
    [ "orders"; "orders_json" ]

let test_empty_build () =
  (* int aggregates only: the reference evaluator's empty Sum is [Int 0]
     regardless of element type, while the compiled engine's typed float
     lane yields [Float 0.] — a pre-existing empty-input edge orthogonal to
     parallel execution *)
  check_join ~name:"empty build side"
    (Plan.reduce
       [
         Plan.agg ~name:"c" (Monoid.Primitive Monoid.Count) (Expr.int 1);
         Plan.agg ~name:"q" (Monoid.Primitive Monoid.Sum) Expr.(Field (var "o", "qty"));
       ]
       (Plan.join ~pred:join_pred
          (Plan.select Expr.(Field (var "o", "oid") <. int 700) (scan_orders "orders"))
          (scan_parts "empty_parts")))

let test_build_larger_than_probe () =
  check_join ~name:"build > probe" (join_reduce ~probe:"orders" ~build:"big_parts")

let test_duplicate_heavy () =
  check_join ~name:"duplicate-heavy keys"
    (join_reduce ~probe:"orders" ~build:"dup_parts")

(* residual predicate on top of the equi-key: probe lanes that match the
   hash but fail the residual must not emit *)
let test_residual_predicate () =
  check_join ~name:"residual"
    (Plan.reduce
       [ Plan.agg ~name:"c" (Monoid.Primitive Monoid.Count) (Expr.int 1) ]
       (Plan.join
          ~pred:Expr.(join_pred &&& (Field (var "p", "cat") <. Field (var "o", "qty")))
          (scan_orders "orders") (scan_parts "parts")))

(* left outer join: unmatched probe lanes pad a null row *)
let test_left_outer () =
  List.iter
    (fun build ->
      check_join ~name:(Fmt.str "left outer vs %s" build)
        (Plan.reduce
           [
             Plan.agg ~name:"c" (Monoid.Primitive Monoid.Count) (Expr.int 1);
             Plan.agg ~name:"s" (Monoid.Primitive Monoid.Sum)
               Expr.(Field (var "o", "amt"));
           ]
           (Plan.join ~kind:Plan.Left_outer ~pred:join_pred
              (Plan.select
                 Expr.(Field (var "o", "oid") <. int 500)
                 (scan_orders "orders"))
              (scan_parts "parts"))))
    [ "parts"; "empty_parts" ]

(* join feeding a group-by: partitioned parallel build + partitioned
   parallel aggregation in one pipeline *)
let test_join_group_by () =
  check_join ~name:"join -> nest"
    (Plan.nest
       ~keys:[ ("cat", Expr.(Field (var "p", "cat"))) ]
       ~aggs:
         [
           Plan.agg ~name:"n" (Monoid.Primitive Monoid.Count) (Expr.int 1);
           Plan.agg ~name:"rev" (Monoid.Primitive Monoid.Sum)
             Expr.(Field (var "o", "amt"));
         ]
       ~binding:"g"
       (Plan.join ~pred:join_pred (scan_orders "orders") (scan_parts "parts")))

(* group-by straight over a scan: the per-domain tables merged in domain
   order must reproduce the serial result exactly at every width *)
let test_partitioned_group_by () =
  List.iter
    (fun probe ->
      check_join ~name:(Fmt.str "nest over %s" probe)
        (Plan.nest
           ~keys:[ ("pid", Expr.(Field (var "o", "pid"))) ]
           ~aggs:
             [
               Plan.agg ~name:"n" (Monoid.Primitive Monoid.Count) (Expr.int 1);
               Plan.agg ~name:"amt" (Monoid.Primitive Monoid.Sum)
                 Expr.(Field (var "o", "amt"));
               Plan.agg ~name:"mx" (Monoid.Primitive Monoid.Max)
                 Expr.(Field (var "o", "qty"));
             ]
           ~binding:"g" (scan_orders probe)))
    [ "orders"; "orders_json" ]

(* the Q1 shape: partitioned group-by below a serial sort; order-sensitive *)
let test_sorted_group_by () =
  let reg = Lazy.force registry in
  let plan =
    Plan.sort
      ~keys:[ (Expr.(Field (var "g", "pid")), Plan.Asc) ]
      (Plan.nest
         ~keys:[ ("pid", Expr.(Field (var "o", "pid"))) ]
         ~aggs:
           [
             Plan.agg ~name:"n" (Monoid.Primitive Monoid.Count) (Expr.int 1);
             Plan.agg ~name:"amt" (Monoid.Primitive Monoid.Sum)
               Expr.(Field (var "o", "amt"));
           ]
         ~binding:"g" (scan_orders "orders"))
  in
  let expected = Interp.run ~lookup plan in
  List.iter
    (fun bs ->
      Alcotest.check check_value
        (Fmt.str "sorted nest (serial, batch=%d)" bs)
        expected
        (Executor.run ~batch_size:bs reg ~engine:Executor.Engine_compiled plan);
      List.iter
        (fun d ->
          Alcotest.check check_value
            (Fmt.str "sorted nest (domains=%d, batch=%d)" d bs)
            expected
            (Executor.run ~batch_size:bs reg ~engine:(Executor.Engine_parallel d) plan))
        domain_counts)
    batch_sizes

(* determinism: repeated parallel runs of a join + group-by pipeline are
   bit-identical, and domain counts agree with each other *)
let test_repeat_determinism () =
  let reg = Lazy.force registry in
  let plan =
    Plan.nest
      ~keys:[ ("cat", Expr.(Field (var "p", "cat"))) ]
      ~aggs:
        [
          Plan.agg ~name:"rev" (Monoid.Primitive Monoid.Sum)
            Expr.(Field (var "o", "amt"));
        ]
      ~binding:"g"
      (Plan.join ~pred:join_pred (scan_orders "orders") (scan_parts "dup_parts"))
  in
  let at d = Executor.run ~batch_size:256 reg ~engine:(Executor.Engine_parallel d) plan in
  let base = at 4 in
  Alcotest.check check_value "repeat run bit-identical" base (at 4);
  Alcotest.check check_value "2 == 4 domains" (sort_bag (at 2)) (sort_bag base)

let () =
  Alcotest.run "parallel_join"
    [
      ( "join",
        [
          Alcotest.test_case "select -> join -> aggregate" `Quick test_join_reduce;
          Alcotest.test_case "empty build side" `Quick test_empty_build;
          Alcotest.test_case "build larger than probe" `Quick
            test_build_larger_than_probe;
          Alcotest.test_case "duplicate-heavy keys" `Quick test_duplicate_heavy;
          Alcotest.test_case "residual predicate" `Quick test_residual_predicate;
          Alcotest.test_case "left outer" `Quick test_left_outer;
        ] );
      ( "group-by",
        [
          Alcotest.test_case "join -> nest" `Quick test_join_group_by;
          Alcotest.test_case "partitioned nest" `Quick test_partitioned_group_by;
          Alcotest.test_case "sorted nest (Q1 shape)" `Quick test_sorted_group_by;
          Alcotest.test_case "repeat determinism" `Quick test_repeat_determinism;
        ] );
    ]
