open Proteus_model

(* Rename every binding to $k, numbering in a post-order walk so that
   structurally equal plans get identical names regardless of source-level
   variable choice. A substitution environment maps original names to
   canonical ones while rewriting the expressions above each binder. *)

let canonical (plan : Plan.t) : Plan.t =
  let counter = ref 0 in
  let fresh () =
    let n = Fmt.str "$%d" !counter in
    incr counter;
    n
  in
  let rename_expr subst e =
    List.fold_left (fun e (old_name, new_name) -> Expr.rename old_name new_name e) e subst
  in
  let rec go (t : Plan.t) : Plan.t * (string * string) list =
    match t with
    | Scan s ->
      let b = fresh () in
      (Scan { s with binding = b }, [ (s.binding, b) ])
    | Select { pred; input } ->
      let input, subst = go input in
      (Select { pred = rename_expr subst pred; input }, subst)
    | Join r ->
      let left, sl = go r.left in
      let right, sr = go r.right in
      let subst = sl @ sr in
      ( Join
          {
            r with
            left;
            right;
            pred = rename_expr subst r.pred;
            left_key = Option.map (rename_expr sl) r.left_key;
            right_key = Option.map (rename_expr sr) r.right_key;
          },
        subst )
    | Unnest r ->
      let input, subst = go r.input in
      let b = fresh () in
      let subst' = (r.binding, b) :: subst in
      ( Unnest
          {
            r with
            input;
            binding = b;
            path = rename_expr subst r.path;
            pred = rename_expr subst' r.pred;
          },
        subst' )
    | Reduce r ->
      let input, subst = go r.input in
      ( Reduce
          {
            monoid_output =
              List.map (fun (a : Plan.agg) -> { a with expr = rename_expr subst a.expr })
                r.monoid_output;
            pred = rename_expr subst r.pred;
            input;
          },
        [] )
    | Nest r ->
      let input, subst = go r.input in
      let b = fresh () in
      ( Nest
          {
            keys = List.map (fun (n, e) -> (n, rename_expr subst e)) r.keys;
            aggs =
              List.map (fun (a : Plan.agg) -> { a with expr = rename_expr subst a.expr })
                r.aggs;
            pred = rename_expr subst r.pred;
            binding = b;
            input;
          },
        [ (r.binding, b) ] )
    | Project r ->
      let input, subst = go r.input in
      let b = fresh () in
      ( Project
          {
            binding = b;
            fields = List.map (fun (n, e) -> (n, rename_expr subst e)) r.fields;
            input;
          },
        [ (r.binding, b) ] )
    | Sort r ->
      let input, subst = go r.input in
      ( Sort
          { r with input; keys = List.map (fun (e, d) -> (rename_expr subst e, d)) r.keys },
        subst )
  in
  fst (go plan)

let plan t = Plan.to_string (canonical t)

let expr ~binding e = Expr.to_string (Expr.rename binding "$0" e)

(* Literal canonicalization for plan-shape keys: scalar constants sitting as
   direct comparison operands become parameter slots named in the reserved
   "~k" namespace (user parameters can never take those names — '~' is not
   an identifier character), numbered in one deterministic top-down walk so
   the slot list lines up between the shape computation and the engine that
   compiles the parameterized plan. Only comparison operands are lifted:
   those are exactly the positions with batch-lane parameter kernels and
   zone-map re-arming, while literals elsewhere (arithmetic, projections,
   LIKE patterns against dictionary caches) stay inline so the engine keeps
   specializing on them. Bool/Null constants also stay: [Const true]
   predicates are structural no-filter markers. *)
let parameterize (p : Plan.t) : Plan.t * (string * Value.t) list =
  let out = ref [] in
  let counter = ref 0 in
  let scalar = function
    | Value.Int _ | Value.Float _ | Value.String _ | Value.Date _ -> true
    | Value.Null | Value.Bool _ | Value.Record _ | Value.Coll _ -> false
  in
  let slot v =
    let name = Fmt.str "~%d" !counter in
    incr counter;
    out := (name, v) :: !out;
    Expr.Param name
  in
  let rec expr (e : Expr.t) : Expr.t =
    match e with
    | Expr.Binop
        (((Expr.Eq | Expr.Neq | Expr.Lt | Expr.Le | Expr.Gt | Expr.Ge) as op), l, r)
      -> (
      match l, r with
      | Expr.Const _, Expr.Const _ -> e (* fully constant: leave for folding *)
      | Expr.Const v, x when scalar v -> Expr.Binop (op, slot v, expr x)
      | x, Expr.Const v when scalar v -> Expr.Binop (op, expr x, slot v)
      | l, r -> Expr.Binop (op, expr l, expr r))
    | Expr.Const _ | Expr.Param _ | Expr.Var _ -> e
    | Expr.Field (x, f) -> Expr.Field (expr x, f)
    | Expr.Binop (op, a, b) -> Expr.Binop (op, expr a, expr b)
    | Expr.Unop (op, a) -> Expr.Unop (op, expr a)
    | Expr.If (c, t, f) -> Expr.If (expr c, expr t, expr f)
    | Expr.Record_ctor fs -> Expr.Record_ctor (List.map (fun (n, x) -> (n, expr x)) fs)
    | Expr.Coll_ctor (c, xs) -> Expr.Coll_ctor (c, List.map expr xs)
  in
  let rec go p = Plan.map_children go (Plan.map_exprs expr p) in
  let p = go p in
  (p, List.rev !out)

(* The plan-shape key: canonical form of the literal-parameterized plan, so
   queries differing only in comparison constants (or in binding names)
   share one shape. *)
let shape t = plan (fst (parameterize t))
