open Proteus_model

type join_kind = Inner | Left_outer

type join_algo = Radix_hash | Nested_loop

type scan = { dataset : string; binding : string; fields : string list option }

type agg = { agg_name : string; monoid : Monoid.t; expr : Expr.t }

type t =
  | Scan of scan
  | Select of { pred : Expr.t; input : t }
  | Join of {
      kind : join_kind;
      algo : join_algo;
      left : t;
      right : t;
      left_key : Expr.t option;
      right_key : Expr.t option;
      pred : Expr.t;
    }
  | Unnest of { outer : bool; path : Expr.t; binding : string; pred : Expr.t; input : t }
  | Reduce of { monoid_output : agg list; pred : Expr.t; input : t }
  | Nest of {
      keys : (string * Expr.t) list;
      aggs : agg list;
      pred : Expr.t;
      binding : string;
      input : t;
    }
  | Project of { binding : string; fields : (string * Expr.t) list; input : t }
  | Sort of { keys : (Expr.t * sort_dir) list; limit : int option; input : t }

and sort_dir = Asc | Desc

let scan ?fields ~dataset ~binding () = Scan { dataset; binding; fields }

let select pred input = Select { pred; input }

let join ?(kind = Inner) ?(algo = Radix_hash) ~pred left right =
  Join { kind; algo; left; right; left_key = None; right_key = None; pred }

let unnest ?(outer = false) ?(pred = Expr.bool true) ~path ~binding input =
  Unnest { outer; path; binding; pred; input }

let reduce ?(pred = Expr.bool true) monoid_output input =
  Reduce { monoid_output; pred; input }

let nest ?(pred = Expr.bool true) ~keys ~aggs ~binding input =
  Nest { keys; aggs; pred; binding; input }

let project ~binding ~fields input = Project { binding; fields; input }

let sort ?limit ~keys input = Sort { keys; limit; input }

let agg_counter = ref 0

let agg ?name monoid expr =
  let agg_name =
    match name with
    | Some n -> n
    | None ->
      incr agg_counter;
      Fmt.str "agg%d" !agg_counter
  in
  { agg_name; monoid; expr }

let rec bindings = function
  | Scan { binding; _ } -> [ binding ]
  | Select { input; _ } | Sort { input; _ } -> bindings input
  | Join { left; right; _ } -> bindings left @ bindings right
  | Unnest { binding; input; _ } -> bindings input @ [ binding ]
  | Reduce _ -> []
  | Nest { binding; _ } -> [ binding ]
  | Project { binding; _ } -> [ binding ]

let rec datasets = function
  | Scan { dataset; _ } -> [ dataset ]
  | Select { input; _ } | Unnest { input; _ } | Reduce { input; _ }
  | Nest { input; _ } | Project { input; _ } | Sort { input; _ } ->
    datasets input
  | Join { left; right; _ } -> datasets left @ datasets right

let children = function
  | Scan _ -> []
  | Select { input; _ } | Unnest { input; _ } | Reduce { input; _ }
  | Nest { input; _ } | Project { input; _ } | Sort { input; _ } ->
    [ input ]
  | Join { left; right; _ } -> [ left; right ]

let map_children f = function
  | Scan _ as t -> t
  | Select r -> Select { r with input = f r.input }
  | Unnest r -> Unnest { r with input = f r.input }
  | Reduce r -> Reduce { r with input = f r.input }
  | Nest r -> Nest { r with input = f r.input }
  | Project r -> Project { r with input = f r.input }
  | Sort r -> Sort { r with input = f r.input }
  | Join r -> Join { r with left = f r.left; right = f r.right }

(* Apply [f] to every expression of this node (children untouched). *)
let map_exprs f = function
  | Scan _ as t -> t
  | Select r -> Select { r with pred = f r.pred }
  | Join r ->
    Join
      {
        r with
        pred = f r.pred;
        left_key = Option.map f r.left_key;
        right_key = Option.map f r.right_key;
      }
  | Unnest r -> Unnest { r with path = f r.path; pred = f r.pred }
  | Reduce r ->
    Reduce
      {
        r with
        pred = f r.pred;
        monoid_output = List.map (fun a -> { a with expr = f a.expr }) r.monoid_output;
      }
  | Nest r ->
    Nest
      {
        r with
        pred = f r.pred;
        keys = List.map (fun (n, e) -> (n, f e)) r.keys;
        aggs = List.map (fun a -> { a with expr = f a.expr }) r.aggs;
      }
  | Project r -> Project { r with fields = List.map (fun (n, e) -> (n, f e)) r.fields }
  | Sort r -> Sort { r with keys = List.map (fun (e, d) -> (f e, d)) r.keys }

let check_expr bound e =
  List.iter
    (fun v ->
      if not (List.mem v bound) then
        Perror.plan_error "expression %a references unbound variable %s" Expr.pp e v)
    (Expr.free_vars e)

let validate t =
  let rec go t =
    (* returns bound variables *)
    match t with
    | Scan { binding; _ } -> [ binding ]
    | Select { pred; input } ->
      let bound = go input in
      check_expr bound pred;
      bound
    | Join { left; right; pred; left_key; right_key; _ } ->
      let bl = go left and br = go right in
      List.iter
        (fun v ->
          if List.mem v br then Perror.plan_error "join sides both bind %s" v)
        bl;
      check_expr (bl @ br) pred;
      Option.iter (check_expr bl) left_key;
      Option.iter (check_expr br) right_key;
      bl @ br
    | Unnest { path; binding; pred; input; _ } ->
      let bound = go input in
      if List.mem binding bound then Perror.plan_error "unnest shadows binding %s" binding;
      check_expr bound path;
      check_expr (binding :: bound) pred;
      bound @ [ binding ]
    | Reduce { monoid_output; pred; input } ->
      let bound = go input in
      check_expr bound pred;
      List.iter (fun a -> check_expr bound a.expr) monoid_output;
      []
    | Nest { keys; aggs; pred; binding; input } ->
      let bound = go input in
      check_expr bound pred;
      List.iter (fun (_, e) -> check_expr bound e) keys;
      List.iter (fun a -> check_expr bound a.expr) aggs;
      [ binding ]
    | Project { binding; fields; input } ->
      let bound = go input in
      List.iter (fun (_, e) -> check_expr bound e) fields;
      [ binding ]
    | Sort { keys; limit; input } ->
      let bound = go input in
      List.iter (fun (e, _) -> check_expr bound e) keys;
      (match limit with
      | Some n when n < 0 -> Perror.plan_error "negative LIMIT %d" n
      | _ -> ());
      bound
  in
  ignore (go t)

let pp_agg ppf a = Fmt.pf ppf "%s=%a(%a)" a.agg_name Monoid.pp a.monoid Expr.pp a.expr

let rec pp ppf t =
  match t with
  | Scan { dataset; binding; fields } ->
    Fmt.pf ppf "scan(%s as %s%a)" dataset binding
      Fmt.(option (fun ppf fs -> Fmt.pf ppf " [%a]" (list ~sep:(any ",") string) fs))
      fields
  | Select { pred; input } -> Fmt.pf ppf "@[<v 1>select(%a)@,%a@]" Expr.pp pred pp input
  | Join { kind; algo; left; right; pred; _ } ->
    Fmt.pf ppf "@[<v 1>%s%s(%a)@,%a@,%a@]"
      (match kind with Inner -> "join" | Left_outer -> "outerjoin")
      (match algo with Radix_hash -> "" | Nested_loop -> "_nl")
      Expr.pp pred pp left pp right
  | Unnest { outer; path; binding; pred; input } ->
    Fmt.pf ppf "@[<v 1>%s(%a as %s | %a)@,%a@]"
      (if outer then "outer-unnest" else "unnest")
      Expr.pp path binding Expr.pp pred pp input
  | Reduce { monoid_output; pred; input } ->
    Fmt.pf ppf "@[<v 1>reduce(%a | %a)@,%a@]"
      Fmt.(list ~sep:(any ", ") pp_agg)
      monoid_output Expr.pp pred pp input
  | Nest { keys; aggs; pred; binding; input } ->
    let pp_key ppf (n, e) = Fmt.pf ppf "%s=%a" n Expr.pp e in
    Fmt.pf ppf "@[<v 1>nest(by %a; %a | %a as %s)@,%a@]"
      Fmt.(list ~sep:(any ", ") pp_key)
      keys
      Fmt.(list ~sep:(any ", ") pp_agg)
      aggs Expr.pp pred binding pp input
  | Project { binding; fields; input } ->
    let pp_field ppf (n, e) = Fmt.pf ppf "%s=%a" n Expr.pp e in
    Fmt.pf ppf "@[<v 1>project(%a as %s)@,%a@]"
      Fmt.(list ~sep:(any ", ") pp_field)
      fields binding pp input
  | Sort { keys; limit; input } ->
    let pp_key ppf (e, dir) =
      Fmt.pf ppf "%a %s" Expr.pp e (match dir with Asc -> "asc" | Desc -> "desc")
    in
    Fmt.pf ppf "@[<v 1>sort(%a%a)@,%a@]"
      Fmt.(list ~sep:(any ", ") pp_key)
      keys
      Fmt.(option (fun ppf n -> Fmt.pf ppf "; limit %d" n))
      limit pp input

let to_string t = Fmt.str "%a" pp t

let equal a b = a = b
