(** The nested relational algebra (Table 1 of the paper).

    A plan node produces a stream of {e environments}: sets of named
    bindings. [Scan] binds one variable per dataset element; [Join] merges
    the environments of its sides; [Unnest] extends the environment with one
    binding per element of a nested collection; [Reduce] folds the stream
    into a single value; [Nest] groups it. Selection, join, unnest and the
    fold operators all carry an embedded filtering expression [pred], as in
    the paper's operator definitions (σ is just [Select]).

    The same AST serves as logical and physical plan; the optimizer fills in
    physical details (join keys and algorithm, pushed-down scan fields). *)

open Proteus_model

type join_kind = Inner | Left_outer

type join_algo =
  | Radix_hash  (** the radix hash join of [39]/[9] — default for equijoins *)
  | Nested_loop

type scan = {
  dataset : string;
  binding : string;
  fields : string list option;
      (** projection pushdown: [Some] = only these root fields are needed;
          [None] = the whole element escapes (no pushdown yet) *)
}

type agg = {
  agg_name : string;
  monoid : Monoid.t;
  expr : Expr.t;
}

type t =
  | Scan of scan
  | Select of { pred : Expr.t; input : t }
  | Join of {
      kind : join_kind;
      algo : join_algo;
      left : t;
      right : t;
      left_key : Expr.t option;   (** equi-key on the left side, if extracted *)
      right_key : Expr.t option;
      pred : Expr.t;              (** full predicate (includes the key equality) *)
    }
  | Unnest of {
      outer : bool;
      path : Expr.t;     (** collection-valued path, e.g. [s.children] *)
      binding : string;  (** variable bound to each element *)
      pred : Expr.t;     (** embedded filter on the extended environment *)
      input : t;
    }
  | Reduce of {
      monoid_output : agg list;  (** one → scalar/collection; many → record *)
      pred : Expr.t;
      input : t;
    }
  | Nest of {
      keys : (string * Expr.t) list;  (** group-by expressions, named *)
      aggs : agg list;
      pred : Expr.t;     (** filter applied before grouping *)
      binding : string;  (** variable bound to each output group record *)
      input : t;
    }
  | Project of {
      binding : string;
      fields : (string * Expr.t) list;
      input : t;
    }  (** binds [binding] to a freshly constructed record; drops other bindings *)
  | Sort of {
      keys : (Expr.t * sort_dir) list;  (** lexicographic; empty = limit only *)
      limit : int option;
      input : t;
    }
      (** pipeline breaker: materializes, orders (stably) and optionally
          truncates the stream; bindings pass through *)

and sort_dir = Asc | Desc

(** {1 Constructors} *)

val scan : ?fields:string list -> dataset:string -> binding:string -> unit -> t
val select : Expr.t -> t -> t
val join : ?kind:join_kind -> ?algo:join_algo -> pred:Expr.t -> t -> t -> t
val unnest : ?outer:bool -> ?pred:Expr.t -> path:Expr.t -> binding:string -> t -> t
val reduce : ?pred:Expr.t -> agg list -> t -> t
val nest :
  ?pred:Expr.t -> keys:(string * Expr.t) list -> aggs:agg list -> binding:string -> t -> t
val project : binding:string -> fields:(string * Expr.t) list -> t -> t
val sort : ?limit:int -> keys:(Expr.t * sort_dir) list -> t -> t
val agg : ?name:string -> Monoid.t -> Expr.t -> agg

(** {1 Analysis} *)

(** Variables bound by (visible above) this plan node. *)
val bindings : t -> string list

(** Datasets scanned anywhere below this node. *)
val datasets : t -> string list

(** Direct children. *)
val children : t -> t list

(** [map_children f t] rebuilds [t] with children [f c]. *)
val map_children : (t -> t) -> t -> t

(** [map_exprs f t] rebuilds this node with every embedded expression mapped
    through [f] (children untouched). *)
val map_exprs : (Expr.t -> Expr.t) -> t -> t

(** [validate t] checks that every expression only references bound
    variables and that bindings are not shadowed.
    Raises [Perror.Plan_error] on violations. *)
val validate : t -> unit

val pp : Format.formatter -> t -> unit
val to_string : t -> string
val equal : t -> t -> bool
