open Proteus_model

let rec all_exprs (p : Plan.t) : Expr.t list =
  let own =
    match p with
    | Plan.Scan _ -> []
    | Plan.Select { pred; _ } -> [ pred ]
    | Plan.Join { pred; left_key; right_key; _ } ->
      (pred :: Option.to_list left_key) @ Option.to_list right_key
    | Plan.Unnest { path; pred; _ } -> [ path; pred ]
    | Plan.Reduce { monoid_output; pred; _ } ->
      pred :: List.map (fun (a : Plan.agg) -> a.expr) monoid_output
    | Plan.Nest { keys; aggs; pred; _ } ->
      (pred :: List.map snd keys) @ List.map (fun (a : Plan.agg) -> a.expr) aggs
    | Plan.Project { fields; _ } -> List.map snd fields
    | Plan.Sort { keys; _ } -> List.map fst keys
  in
  own @ List.concat_map all_exprs (Plan.children p)

(* Runtime parameters of a plan, in deterministic top-down traversal order,
   deduplicated. *)
let params (p : Plan.t) : string list =
  List.fold_left
    (fun acc e ->
      List.fold_left
        (fun acc n -> if List.mem n acc then acc else acc @ [ n ])
        acc (Expr.params e))
    [] (all_exprs p)

let has_params p = params p <> []

(* [bind_params env p] substitutes constants for the parameters bound in
   [env] throughout the plan; parameters missing from [env] stay in place
   (use {!params} on the result to detect leftovers). *)
let bind_params env (p : Plan.t) : Plan.t =
  let rec go p = Plan.map_children go (Plan.map_exprs (Expr.bind_params env) p) in
  go p

let path_of e =
  let rec go acc = function
    | Expr.Var v -> Some (v, String.concat "." acc)
    | Expr.Field (base, f) -> go (f :: acc) base
    | Expr.Const _ | Expr.Param _ | Expr.Binop _ | Expr.Unop _ | Expr.If _
    | Expr.Record_ctor _ | Expr.Coll_ctor _ ->
      None
  in
  go [] e

let required_paths exprs =
  let tbl : (string, [ `Whole | `Paths of string list ]) Hashtbl.t = Hashtbl.create 8 in
  let add_path v p =
    match Hashtbl.find_opt tbl v with
    | Some `Whole -> ()
    | Some (`Paths ps) -> if not (List.mem p ps) then Hashtbl.replace tbl v (`Paths (ps @ [ p ]))
    | None -> Hashtbl.replace tbl v (`Paths [ p ])
  in
  let add_whole v = Hashtbl.replace tbl v `Whole in
  let rec go e =
    match path_of e with
    | Some (v, "") -> add_whole v
    | Some (v, p) -> add_path v p
    | None -> (
      match e with
      | Expr.Const _ | Expr.Param _ -> ()
      | Expr.Var v -> add_whole v
      | Expr.Field (base, _) -> go base
      | Expr.Binop (_, l, r) -> go l; go r
      | Expr.Unop (_, x) -> go x
      | Expr.If (c, t, f) -> go c; go t; go f
      | Expr.Record_ctor fs -> List.iter (fun (_, x) -> go x) fs
      | Expr.Coll_ctor (_, xs) -> List.iter go xs)
  in
  List.iter go exprs;
  Hashtbl.fold (fun v r acc -> (v, r) :: acc) tbl []
