(** Canonical plan fingerprints.

    The caching manager keys materialized results by the plan that produced
    them and matches sub-plans of incoming queries against those keys
    (Section 6 "Cache Matching"). Two plans that differ only in the names of
    their bound variables must collide, so fingerprints are computed after
    renaming every binding to a de-Bruijn-style canonical name. *)

open Proteus_model

(** [plan t] is a canonical string for the whole plan. *)
val plan : Plan.t -> string

(** [expr ~binding e] canonicalizes a single-variable expression (used for
    field-level cache keys, e.g. "dataset lineitem, expression x.l_tax"):
    the variable [binding] is renamed to ["$0"]. *)
val expr : binding:string -> Expr.t -> string

(** [canonical t] is the plan with canonically renamed bindings (exposed for
    tests). *)
val canonical : Plan.t -> Plan.t

(** [parameterize t] lifts scalar constants in comparison-operand position
    into parameter slots named ["~0"], ["~1"], … (a namespace user
    parameters cannot collide with), returning the parameterized plan and
    the extracted [(slot, value)] bindings in slot order. Literals in other
    positions (arithmetic, projections, LIKE patterns) stay inline so the
    engine keeps specializing on them. *)
val parameterize : Plan.t -> Plan.t * (string * Value.t) list

(** [shape t] is the plan-shape fingerprint: {!plan} of the parameterized
    plan, so queries differing only in comparison constants share one
    shape. The engine cache keys compiled engines by it. *)
val shape : Plan.t -> string
