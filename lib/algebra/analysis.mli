(** Static analyses over plans and expressions, shared by the optimizer and
    both executors. *)

open Proteus_model

(** Every expression appearing anywhere in a plan. *)
val all_exprs : Plan.t -> Expr.t list

(** Runtime parameters of a plan, deterministic top-down order, deduplicated. *)
val params : Plan.t -> string list

val has_params : Plan.t -> bool

(** [bind_params env p] substitutes constants for the parameters bound in
    [env]; parameters missing from [env] stay in place. *)
val bind_params : (string * Value.t) list -> Plan.t -> Plan.t

(** [path_of e] decomposes [e] into a variable and a dotted path when it is
    a pure path expression ([x.a.b] → [Some ("x", "a.b")], [x] →
    [Some ("x", "")]). *)
val path_of : Expr.t -> (string * string) option

(** [required_paths exprs] maps each free variable to either [`Whole] (used
    bare somewhere) or [`Paths ps] (only these dotted paths are read). This
    is the projection-pushdown analysis: a scan only needs to extract the
    paths listed for its binding. *)
val required_paths : Expr.t list -> (string * [ `Whole | `Paths of string list ]) list
