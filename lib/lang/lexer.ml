open Proteus_model

type token =
  | Ident of string
  | Int_lit of int
  | Float_lit of float
  | String_lit of string
  | Punct of string
  | Param_tok of string
  | Eof

type t = { token : token; pos : int }

let is_ident_start c = (c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z') || c = '_'

let is_ident_char c = is_ident_start c || (c >= '0' && c <= '9')

let tokenize ~what src =
  let n = String.length src in
  let out = ref [] in
  let emit token pos = out := { token; pos } :: !out in
  let rec go i =
    if i >= n then emit Eof i
    else
      match src.[i] with
      | ' ' | '\t' | '\n' | '\r' -> go (i + 1)
      | '-' when i + 1 < n && src.[i + 1] = '-' ->
        (* SQL line comment *)
        let rec eol j = if j < n && src.[j] <> '\n' then eol (j + 1) else j in
        go (eol (i + 2))
      | c when is_ident_start c ->
        let rec stop j = if j < n && is_ident_char src.[j] then stop (j + 1) else j in
        let j = stop i in
        emit (Ident (String.sub src i (j - i))) i;
        go j
      | c when c >= '0' && c <= '9' ->
        let rec stop j is_float =
          if j < n then
            match src.[j] with
            | '0' .. '9' -> stop (j + 1) is_float
            | '.' when j + 1 < n && src.[j + 1] >= '0' && src.[j + 1] <= '9' ->
              stop (j + 1) true
            | 'e' | 'E'
              when j + 1 < n
                   && (src.[j + 1] = '-' || src.[j + 1] = '+'
                      || (src.[j + 1] >= '0' && src.[j + 1] <= '9')) ->
              stop (j + 2) true
            | _ -> (j, is_float)
          else (j, is_float)
        in
        let j, is_float = stop i false in
        let text = String.sub src i (j - i) in
        if is_float then emit (Float_lit (float_of_string text)) i
        else emit (Int_lit (int_of_string text)) i;
        go j
      | ('\'' | '"') as quote ->
        let buf = Buffer.create 16 in
        let rec scan j =
          if j >= n then Perror.parse_error ~what ~pos:i "unterminated string literal"
          else if src.[j] = quote then
            if j + 1 < n && src.[j + 1] = quote then begin
              Buffer.add_char buf quote;
              scan (j + 2)
            end
            else j + 1
          else begin
            Buffer.add_char buf src.[j];
            scan (j + 1)
          end
        in
        let j = scan (i + 1) in
        emit (String_lit (Buffer.contents buf)) i;
        go j
      | '<' ->
        if i + 1 < n && src.[i + 1] = '-' then (emit (Punct "<-") i; go (i + 2))
        else if i + 1 < n && src.[i + 1] = '=' then (emit (Punct "<=") i; go (i + 2))
        else if i + 1 < n && src.[i + 1] = '>' then (emit (Punct "<>") i; go (i + 2))
        else (emit (Punct "<") i; go (i + 1))
      | '>' ->
        if i + 1 < n && src.[i + 1] = '=' then (emit (Punct ">=") i; go (i + 2))
        else (emit (Punct ">") i; go (i + 1))
      | '!' ->
        if i + 1 < n && src.[i + 1] = '=' then (emit (Punct "<>") i; go (i + 2))
        else Perror.parse_error ~what ~pos:i "unexpected '!'"
      | '?' ->
        (* positional parameter; the parser assigns its ordinal *)
        emit (Param_tok "") i;
        go (i + 1)
      | '$' ->
        if i + 1 < n && is_ident_start src.[i + 1] then begin
          let rec stop j = if j < n && is_ident_char src.[j] then stop (j + 1) else j in
          let j = stop (i + 1) in
          emit (Param_tok (String.sub src (i + 1) (j - i - 1))) i;
          go j
        end
        else Perror.parse_error ~what ~pos:i "expected parameter name after '$'"
      | '|' ->
        if i + 1 < n && src.[i + 1] = '|' then (emit (Punct "||") i; go (i + 2))
        else Perror.parse_error ~what ~pos:i "unexpected '|'"
      | ('(' | ')' | '{' | '}' | '[' | ']' | ',' | ';' | ':' | '.' | '=' | '+' | '-'
        | '*' | '/' | '%') as c ->
        emit (Punct (String.make 1 c)) i;
        go (i + 1)
      | c -> Perror.parse_error ~what ~pos:i "unexpected character %C" c
  in
  go 0;
  Array.of_list (List.rev !out)

let is_kw token kw =
  match token with
  | Ident s -> String.lowercase_ascii s = String.lowercase_ascii kw
  | Int_lit _ | Float_lit _ | String_lit _ | Punct _ | Param_tok _ | Eof -> false

let pp_token ppf = function
  | Ident s -> Fmt.pf ppf "identifier %s" s
  | Int_lit i -> Fmt.pf ppf "integer %d" i
  | Float_lit f -> Fmt.pf ppf "float %g" f
  | String_lit s -> Fmt.pf ppf "string %S" s
  | Punct p -> Fmt.pf ppf "%S" p
  | Param_tok "" -> Fmt.pf ppf "parameter ?"
  | Param_tok p -> Fmt.pf ppf "parameter $%s" p
  | Eof -> Fmt.pf ppf "end of input"

module Cursor = struct
  type cursor = {
    what : string;
    tokens : t array;
    mutable index : int;
    mutable positionals : int;  (* '?' parameters numbered in parse order *)
  }

  let make ~what tokens = { what; tokens; index = 0; positionals = 0 }

  let next_positional c =
    c.positionals <- c.positionals + 1;
    c.positionals

  let peek c = c.tokens.(c.index).token

  let peek2 c =
    if c.index + 1 < Array.length c.tokens then c.tokens.(c.index + 1).token else Eof

  let pos c = c.tokens.(c.index).pos

  let advance c =
    let t = c.tokens.(c.index).token in
    if c.index + 1 < Array.length c.tokens then c.index <- c.index + 1;
    t

  let error c fmt =
    Fmt.kstr
      (fun msg ->
        raise (Perror.Parse_error { what = c.what; pos = pos c; msg }))
      fmt

  let expect_punct c p =
    match peek c with
    | Punct q when String.equal p q -> ignore (advance c)
    | t -> error c "expected %S, got %a" p pp_token t

  let accept_punct c p =
    match peek c with
    | Punct q when String.equal p q ->
      ignore (advance c);
      true
    | _ -> false

  let expect_kw c kw =
    if is_kw (peek c) kw then ignore (advance c)
    else error c "expected %s, got %a" kw pp_token (peek c)

  let accept_kw c kw =
    if is_kw (peek c) kw then begin
      ignore (advance c);
      true
    end
    else false

  let ident c =
    match peek c with
    | Ident s ->
      ignore (advance c);
      s
    | t -> error c "expected identifier, got %a" pp_token t

  let at_eof c = peek c = Eof
end
