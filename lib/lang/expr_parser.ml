open Proteus_model
module C = Lexer.Cursor

let auto_field_name i (e : Expr.t) =
  let rec last = function
    | Expr.Field (_, n) -> Some n
    | Expr.Var n -> Some n
    | Expr.Unop (_, e) -> last e
    | Expr.Const _ | Expr.Param _ | Expr.Binop _ | Expr.If _ | Expr.Record_ctor _
    | Expr.Coll_ctor _ ->
      None
  in
  match last e with Some n -> n | None -> Fmt.str "_%d" (i + 1)

(* Dedup positional names: a, b, a -> a, b, a_3 *)
let dedup_names fields =
  let seen = Hashtbl.create 8 in
  List.mapi
    (fun i (n, e) ->
      if Hashtbl.mem seen n then (Fmt.str "%s_%d" n (i + 1), e)
      else begin
        Hashtbl.replace seen n ();
        (n, e)
      end)
    fields

let rec parse c = parse_or c

and parse_or c =
  let l = parse_and c in
  if C.accept_kw c "or" then Expr.Binop (Or, l, parse_or c) else l

and parse_and c =
  let l = parse_not c in
  if C.accept_kw c "and" then Expr.Binop (And, l, parse_and c) else l

and parse_not c =
  if C.accept_kw c "not" then Expr.Unop (Not, parse_not c) else parse_cmp c

and parse_cmp c =
  let l = parse_add c in
  match C.peek c with
  | Lexer.Punct "=" ->
    ignore (C.advance c);
    Expr.Binop (Eq, l, parse_add c)
  | Lexer.Punct "<>" ->
    ignore (C.advance c);
    Expr.Binop (Neq, l, parse_add c)
  | Lexer.Punct "<" ->
    ignore (C.advance c);
    Expr.Binop (Lt, l, parse_add c)
  | Lexer.Punct "<=" ->
    ignore (C.advance c);
    Expr.Binop (Le, l, parse_add c)
  | Lexer.Punct ">" ->
    ignore (C.advance c);
    Expr.Binop (Gt, l, parse_add c)
  | Lexer.Punct ">=" ->
    ignore (C.advance c);
    Expr.Binop (Ge, l, parse_add c)
  | t when Lexer.is_kw t "like" ->
    ignore (C.advance c);
    Expr.Binop (Like, l, parse_add c)
  | t when Lexer.is_kw t "between" ->
    ignore (C.advance c);
    let lo = parse_add c in
    C.expect_kw c "and";
    let hi = parse_add c in
    Expr.(Binop (And, Binop (Ge, l, lo), Binop (Le, l, hi)))
  | t when Lexer.is_kw t "is" ->
    ignore (C.advance c);
    let negated = C.accept_kw c "not" in
    C.expect_kw c "null";
    let test = Expr.Unop (Is_null, l) in
    if negated then Expr.Unop (Not, test) else test
  | _ -> l

and parse_add c =
  let rec loop l =
    match C.peek c with
    | Lexer.Punct "+" ->
      ignore (C.advance c);
      loop (Expr.Binop (Add, l, parse_mul c))
    | Lexer.Punct "-" ->
      ignore (C.advance c);
      loop (Expr.Binop (Sub, l, parse_mul c))
    | Lexer.Punct "||" ->
      ignore (C.advance c);
      loop (Expr.Binop (Concat, l, parse_mul c))
    | _ -> l
  in
  loop (parse_mul c)

and parse_mul c =
  let rec loop l =
    match C.peek c with
    | Lexer.Punct "*" ->
      ignore (C.advance c);
      loop (Expr.Binop (Mul, l, parse_unary c))
    | Lexer.Punct "/" ->
      ignore (C.advance c);
      loop (Expr.Binop (Div, l, parse_unary c))
    | Lexer.Punct "%" ->
      ignore (C.advance c);
      loop (Expr.Binop (Mod, l, parse_unary c))
    | _ -> l
  in
  loop (parse_unary c)

and parse_unary c =
  if C.accept_punct c "-" then Expr.Unop (Neg, parse_unary c) else parse_postfix c

and parse_postfix c =
  let rec fields e =
    if C.accept_punct c "." then fields (Expr.Field (e, C.ident c)) else e
  in
  fields (parse_primary c)

and parse_primary c =
  match C.peek c with
  | Lexer.Int_lit i ->
    ignore (C.advance c);
    Expr.int i
  | Lexer.Float_lit f ->
    ignore (C.advance c);
    Expr.float f
  | Lexer.String_lit s ->
    ignore (C.advance c);
    Expr.str s
  | Lexer.Param_tok "" ->
    (* positional: named by 1-based ordinal, so [?]s bind in parse order *)
    ignore (C.advance c);
    Expr.Param (string_of_int (C.next_positional c))
  | Lexer.Param_tok name ->
    ignore (C.advance c);
    Expr.Param name
  | Lexer.Punct "(" ->
    ignore (C.advance c);
    parse_paren c
  | t when Lexer.is_kw t "true" ->
    ignore (C.advance c);
    Expr.bool true
  | t when Lexer.is_kw t "false" ->
    ignore (C.advance c);
    Expr.bool false
  | t when Lexer.is_kw t "null" ->
    ignore (C.advance c);
    Expr.null
  | Lexer.Ident name when Lexer.is_kw (Lexer.Ident name) "date" -> (
    ignore (C.advance c);
    (* DATE 'YYYY-MM-DD' is a literal; a bare "date" stays an identifier *)
    match C.peek c with
    | Lexer.String_lit s ->
      ignore (C.advance c);
      Expr.Const (Value.Date (Date_util.of_string s))
    | _ -> Expr.Var name)
  | t when Lexer.is_kw t "if" ->
    ignore (C.advance c);
    let cond = parse c in
    C.expect_kw c "then";
    let then_ = parse c in
    C.expect_kw c "else";
    let else_ = parse c in
    Expr.If (cond, then_, else_)
  | t when Lexer.is_kw t "case" ->
    ignore (C.advance c);
    C.expect_kw c "when";
    let cond = parse c in
    C.expect_kw c "then";
    let then_ = parse c in
    C.expect_kw c "else";
    let else_ = parse c in
    C.expect_kw c "end";
    Expr.If (cond, then_, else_)
  | Lexer.Ident _ -> Expr.Var (C.ident c)
  | t -> C.error c "expected expression, got %a" Lexer.pp_token t

and parse_paren c =
  (* Either a grouped expression, or a record constructor:
     (name: e, ...) or a positional tuple (e1, e2, ...). *)
  let named =
    match C.peek c, C.peek2 c with
    | Lexer.Ident _, Lexer.Punct ":" -> true
    | _ -> false
  in
  if named then begin
    let rec fields acc =
      let name = C.ident c in
      C.expect_punct c ":";
      let e = parse c in
      let acc = (name, e) :: acc in
      if C.accept_punct c "," then fields acc
      else begin
        C.expect_punct c ")";
        List.rev acc
      end
    in
    Expr.Record_ctor (fields [])
  end
  else begin
    let first = parse c in
    if C.accept_punct c "," then begin
      let rec elems acc =
        let e = parse c in
        let acc = e :: acc in
        if C.accept_punct c "," then elems acc
        else begin
          C.expect_punct c ")";
          List.rev acc
        end
      in
      let all = first :: elems [] in
      let fields = List.mapi (fun i e -> (auto_field_name i e, e)) all in
      Expr.Record_ctor (dedup_names fields)
    end
    else begin
      C.expect_punct c ")";
      first
    end
  end
