(** Shared lexer for the two query frontends (SQL and comprehensions).

    Keywords are recognized case-insensitively and yielded as [Ident]; the
    parsers decide which identifiers are keywords in their grammar. *)

type token =
  | Ident of string     (** identifiers and keywords, original case *)
  | Int_lit of int
  | Float_lit of float
  | String_lit of string  (** ['...'] or ["..."] *)
  | Punct of string
      (** one of: ( ) { } [ ] , ; : . <- < <= > >= = <> != + - * / % || *)
  | Param_tok of string
      (** [?] (positional, empty name — the parser numbers it) or [$name] *)
  | Eof

type t = { token : token; pos : int }

(** [tokenize what src] lexes the whole input. [what] names the input for
    error messages. Raises [Perror.Parse_error] on bad characters. *)
val tokenize : what:string -> string -> t array

(** Case-insensitive keyword test. *)
val is_kw : token -> string -> bool

val pp_token : Format.formatter -> token -> unit

(** Mutable cursor over a token array. *)
module Cursor : sig
  type cursor

  val make : what:string -> t array -> cursor
  val peek : cursor -> token
  val peek2 : cursor -> token
  val pos : cursor -> int
  val advance : cursor -> token

  (** [error c fmt] raises [Perror.Parse_error] at the current token. *)
  val error : cursor -> ('a, Format.formatter, unit, 'b) format4 -> 'a

  (** [expect_punct c p] consumes punctuation [p] or fails. *)
  val expect_punct : cursor -> string -> unit

  (** [accept_punct c p] consumes [p] if present; returns whether it did. *)
  val accept_punct : cursor -> string -> bool

  (** [expect_kw c kw] consumes keyword [kw] (case-insensitive) or fails. *)
  val expect_kw : cursor -> string -> unit

  val accept_kw : cursor -> string -> bool

  (** [ident c] consumes and returns an identifier. *)
  val ident : cursor -> string

  (** [next_positional c] is the 1-based ordinal for the next positional
      [?] parameter of this parse. *)
  val next_positional : cursor -> int

  val at_eof : cursor -> bool
end
