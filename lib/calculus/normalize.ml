open Proteus_model

let rec fold_constants (e : Expr.t) : Expr.t =
  let e =
    match e with
    | Expr.Const _ | Expr.Param _ | Expr.Var _ -> e
    | Expr.Field (inner, n) -> Expr.Field (fold_constants inner, n)
    | Expr.Binop (op, l, r) -> Expr.Binop (op, fold_constants l, fold_constants r)
    | Expr.Unop (op, inner) -> Expr.Unop (op, fold_constants inner)
    | Expr.If (c, t, f) -> Expr.If (fold_constants c, fold_constants t, fold_constants f)
    | Expr.Record_ctor fs -> Expr.Record_ctor (List.map (fun (n, e) -> (n, fold_constants e)) fs)
    | Expr.Coll_ctor (c, es) -> Expr.Coll_ctor (c, List.map fold_constants es)
  in
  match e with
  | Expr.Binop (op, Expr.Const a, Expr.Const b) -> (
    (* Evaluate closed applications, but never fold an expression that would
       raise (division by zero etc.) — keep it residual instead. *)
    match Expr.eval [] (Expr.Binop (op, Expr.Const a, Expr.Const b)) with
    | v -> Expr.Const v
    | exception _ -> e)
  | Expr.Binop (And, Expr.Const (Value.Bool true), r) -> r
  | Expr.Binop (And, l, Expr.Const (Value.Bool true)) -> l
  | Expr.Binop (And, (Expr.Const (Value.Bool false) as f), _) -> f
  | Expr.Binop (Or, Expr.Const (Value.Bool false), r) -> r
  | Expr.Binop (Or, l, Expr.Const (Value.Bool false)) -> l
  | Expr.Binop (Or, (Expr.Const (Value.Bool true) as t), _) -> t
  | Expr.Unop (Not, Expr.Const (Value.Bool b)) -> Expr.Const (Value.Bool (not b))
  | Expr.If (Expr.Const (Value.Bool true), t, _) -> t
  | Expr.If (Expr.Const (Value.Bool false), _, f) -> f
  | e -> e

let map_output_exprs f (o : Calc.output) : Calc.output =
  match o with
  | Calc.Collect (c, e) -> Calc.Collect (c, f e)
  | Calc.Aggregate aggs -> Calc.Aggregate (List.map (fun (n, m, e) -> (n, m, f e)) aggs)
  | Calc.Group { keys; aggs } ->
    Calc.Group
      {
        keys = List.map (fun (n, e) -> (n, f e)) keys;
        aggs = List.map (fun (n, m, e) -> (n, m, f e)) aggs;
      }

let rec subst_comp name replacement (c : Calc.t) : Calc.t =
  let f = Expr.subst name replacement in
  let rec go_quals = function
    | [] -> []
    | Calc.Pred e :: rest -> Calc.Pred (f e) :: go_quals rest
    | Calc.Gen (x, src) :: rest ->
      let src =
        match src with
        | Calc.Dataset _ -> src
        | Calc.Path e -> Calc.Path (f e)
        | Calc.Sub inner -> Calc.Sub (subst_comp name replacement inner)
      in
      (* generators bind; stop substituting if shadowed (validate forbids
         shadowing anyway, so this is belt and braces) *)
      if String.equal x name then Calc.Gen (x, src) :: rest
      else Calc.Gen (x, src) :: go_quals rest
  in
  { quals = go_quals c.quals; output = map_output_exprs f c.output }

(* One rewrite pass; returns (changed, c'). *)
let pass (c : Calc.t) : bool * Calc.t =
  let changed = ref false in
  (* 1. split conjunctive predicates, drop trues, fold constants *)
  let quals =
    List.concat_map
      (function
        | Calc.Pred e ->
          let e' = fold_constants e in
          let cs = Expr.conjuncts e' in
          if (not (Expr.equal e e')) || List.length cs <> 1 then changed := true;
          List.filter_map
            (fun p ->
              match p with
              | Expr.Const (Value.Bool true) ->
                changed := true;
                None
              | p -> Some (Calc.Pred p))
            cs
        | q -> [ q ])
      c.quals
  in
  (* 2. unnest bag sub-comprehensions in generator position (rule N8):
        x <- bag{ e | qs }  ==>  qs, x := e  (by substitution) *)
  let rec unnest acc = function
    | [] -> (List.rev acc, None)
    | Calc.Gen (x, Calc.Sub { output = Calc.Collect (Ptype.Bag, head); quals = inner })
      :: rest ->
      (List.rev acc @ inner, Some (x, head, rest))
    | q :: rest -> unnest (q :: acc) rest
  in
  match unnest [] quals with
  | prefix, Some (x, head, rest) ->
    changed := true;
    let rest_comp = subst_comp x head { Calc.quals = rest; output = c.output } in
    (true, { Calc.quals = prefix @ rest_comp.quals; output = rest_comp.output })
  | quals, None -> (!changed, { c with quals })

let run c =
  let rec fix c n =
    if n > 64 then c
    else
      let changed, c' = pass c in
      if changed then fix c' (n + 1) else c'
  in
  fix c 0
