(** The Caching Manager (Section 6 "Adapting Storage to Workload").

    Caches are populated as a side-effect of query execution and exposed to
    later queries as an extra binary input:

    - {b field caches}: evaluated field expressions of raw CSV/JSON scans,
      packed into binary columns aligned with the dataset's OIDs. Policy
      (Section 6 "Cache Policies"): eager for primitive values of verbose
      formats, never for variable-length strings (they pollute the cache);
    - {b packed caches}: materialized intermediate relations — join build
      sides — keyed by the canonical fingerprint of the sub-plan that
      produced them ("implicit caching"; the partial-match reuse of one
      already-materialized radix-join side).

    All blocks live in the memory manager's pinned arena and are evicted by
    its format-biased LRU (JSON caches outlive CSV, CSV outlive binary). *)

open Proteus_catalog

type config = {
  cache_csv_fields : bool;
  cache_json_fields : bool;
  cache_strings : bool;      (** default false, as in the paper *)
  cache_join_sides : bool;
  cache_select_results : bool;
      (** materialize sigma-over-scan results (explicit caching operators near
          the leaves); default false *)
  subsumption : bool;
      (** let a cached weaker predicate answer a stricter query with a
          residual re-filter — the future-work extension of Section 6;
          default true (only observable when sigma-results exist) *)
  promote : bool;
      (** workload-adaptive promotion: track per-column reads and
          selective-predicate compilations; past [promote_threshold],
          promote the cached column — numeric columns gain a zone map the
          scan drivers use to skip morsels, string columns become cacheable
          as dictionaries. Default false *)
  promote_threshold : int;
      (** accesses (reads + selective-conjunct compilations) before a column
          promotes; default 3 *)
  promote_projections : bool;
      (** adaptive storage 2.0: promoted numeric columns whose workload
          showed range predicates additionally materialize a sorted
          projection (value-ordered copy + OID permutation), so range scans
          skip morsels even on unclustered data. Default true (inert unless
          [promote] is on) *)
}

val default_config : config

val config_disabled : config

type t

val create : ?config:config -> Catalog.t -> t

(** The interface handed to the execution layer. Every entry point (and the
    introspection/maintenance API below) is serialized by an internal lock,
    so one manager can back concurrent query sessions. *)
val iface : t -> Proteus_plugin.Cache_iface.t

(** [set_on_promote t f] registers [f dataset path] to run after a column
    promotes (outside the manager's lock). Hooks accumulate and fire in
    registration order: the db layer materializes pre-parsed slot columns
    for promoted JSON paths, then the server's engine cache drops compiled
    plans that baked in the pre-promotion layout — no zone skip, no
    dictionary probe. *)
val set_on_promote : t -> (string -> string -> unit) -> unit

(** {1 Introspection} *)

type stats = {
  field_hits : int;
  field_misses : int;
  field_stores : int;
  packed_hits : int;
  packed_misses : int;
  packed_stores : int;
  select_hits : int;
  select_subsumed : int;
  select_stores : int;
  quarantined : int;
      (** fills computed but discarded because the producing run recorded
          errors or aborted (install-on-commit; see {!Cache_iface.t}) *)
  fill_commits : int;
      (** committed segmented fills — one per cache-filling dataset scan
          whose run finished clean (serial or parallel) *)
  fill_segments : int;
      (** per-(worker,morsel) buffer segments blit-assembled into cache
          columns across all committed fills (serial fills count 1 each) *)
  fill_rows : int;  (** rows materialized across committed fills *)
  promotions : int;
      (** promotion events: columns whose access count crossed the
          workload threshold *)
  zone_maps : int;  (** zone-map side structures built (at fill commit or
                        at promotion of an already-filled column) *)
  dict_columns : int;  (** string columns re-encoded as dictionaries *)
  sorted_projections : int;
      (** sorted projections built (value-ordered copy + OID permutation)
          for promoted columns with observed range predicates *)
  slot_columns : int;
      (** typed columns materialized straight from format-index spans at
          promotion (pre-parsed JSON slot columns) *)
}

val stats : t -> stats

(** {1 Promotion introspection (tests, CLI)} *)

val is_promoted : t -> dataset:string -> path:string -> bool

(** The zone map of a promoted column, when one exists ([None] for
    unpromoted or unsupported columns, and after eviction). *)
val lookup_zones :
  t -> dataset:string -> path:string -> Proteus_storage.Zonemap.t option

(** The sorted projection of a promoted column, when one was built ([None]
    for unpromoted columns, columns without observed range predicates, and
    after eviction). *)
val lookup_projection :
  t -> dataset:string -> path:string -> Proteus_storage.Projection.t option

(** [bytes_for t ~dataset] is the total resident cache bytes built from one
    dataset (field caches plus materialized join sides and sigma-results). *)
val bytes_for : t -> dataset:string -> int

(** [field_bytes_for t ~dataset] counts only the OID-aligned field-cache
    columns — the quantity behind the cache-size/file-size ratios of
    Section 7.2. *)
val field_bytes_for : t -> dataset:string -> int

(** Total resident cache bytes. *)
val resident_bytes : t -> int

(** [invalidate_dataset t ~dataset] drops every cache derived from the
    dataset (the paper's update handling: affected auxiliary structures are
    dropped and rebuilt). *)
val invalidate_dataset : t -> dataset:string -> unit

val clear : t -> unit
