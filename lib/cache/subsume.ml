open Proteus_model
module Analysis = Proteus_algebra.Analysis

(* A conjunct normalized to "path ⟨bound⟩": an upper and/or lower bound on a
   numeric or string path. Numerics order through float (mirroring
   [Expr.cmp]'s int-vs-float semantics); strings order lexicographically.
   Bounds of different kinds never imply one another. *)
type key = K_num of float | K_str of string

type bound = { value : key; strict : bool }

type constraint_ = { path : string; upper : bound option; lower : bound option }

let const_key (e : Expr.t) =
  match e with
  | Expr.Const (Value.Int i) -> Some (K_num (float_of_int i))
  | Expr.Const (Value.Float f) -> Some (K_num f)
  | Expr.Const (Value.String s) -> Some (K_str s)
  | _ -> None

let key_compare a b =
  match a, b with
  | K_num x, K_num y -> Some (Float.compare x y)
  | K_str x, K_str y -> Some (String.compare x y)
  | K_num _, K_str _ | K_str _, K_num _ -> None

let normalize (c : Expr.t) : constraint_ option =
  let mk path upper lower = Some { path; upper; lower } in
  let of_parts op path k =
    match (op : Expr.binop) with
    | Expr.Lt -> mk path (Some { value = k; strict = true }) None
    | Expr.Le -> mk path (Some { value = k; strict = false }) None
    | Expr.Gt -> mk path None (Some { value = k; strict = true })
    | Expr.Ge -> mk path None (Some { value = k; strict = false })
    | Expr.Eq ->
      mk path (Some { value = k; strict = false }) (Some { value = k; strict = false })
    | _ -> None
  in
  let flip (op : Expr.binop) =
    match op with
    | Expr.Lt -> Expr.Gt
    | Expr.Le -> Expr.Ge
    | Expr.Gt -> Expr.Lt
    | Expr.Ge -> Expr.Le
    | op -> op
  in
  match c with
  | Expr.Binop (op, l, r) -> (
    match Analysis.path_of l, const_key r with
    | Some (_, p), Some k when p <> "" -> of_parts op p k
    | _ -> (
      match Analysis.path_of r, const_key l with
      | Some (_, p), Some k when p <> "" -> of_parts (flip op) p k
      | _ -> None))
  | _ -> None

(* does the q-bound imply the c-bound? (all x under q's bound satisfy c's) *)
let upper_implies (q : bound) (c : bound) =
  match key_compare q.value c.value with
  | Some n -> n < 0 || (n = 0 && (q.strict || not c.strict))
  | None -> false

let lower_implies (q : bound) (c : bound) =
  match key_compare q.value c.value with
  | Some n -> n > 0 || (n = 0 && (q.strict || not c.strict))
  | None -> false

let covers ~cached ~query =
  let cached_cs = List.map normalize (Expr.conjuncts cached) in
  let query_cs = List.filter_map normalize (Expr.conjuncts query) in
  (* every cached conjunct must be implied by some query conjunct; a cached
     conjunct we cannot normalize blocks the match *)
  List.for_all
    (fun c ->
      match c with
      | None -> false
      | Some c ->
        List.exists
          (fun q ->
            String.equal q.path c.path
            && (match c.upper with
               | None -> true
               | Some cu -> (
                 match q.upper with Some qu -> upper_implies qu cu | None -> false))
            && (match c.lower with
               | None -> true
               | Some cl -> (
                 match q.lower with Some ql -> lower_implies ql cl | None -> false)))
          query_cs)
    cached_cs
