open Proteus_model
open Proteus_storage
open Proteus_catalog
module Cache_iface = Proteus_plugin.Cache_iface

let src_log = Logs.Src.create "proteus.cache" ~doc:"Proteus caching manager"

module Log = (val Logs.src_log src_log : Logs.LOG)

type config = {
  cache_csv_fields : bool;
  cache_json_fields : bool;
  cache_strings : bool;
  cache_join_sides : bool;
  cache_select_results : bool;
  subsumption : bool;
  promote : bool;
  promote_threshold : int;
  promote_projections : bool;
      (* build sorted projections for promoted numeric columns that saw
         range predicates (off = zone maps only, the PR-6 behaviour) *)
}

let default_config =
  {
    cache_csv_fields = true;
    cache_json_fields = true;
    cache_strings = false;
    cache_join_sides = true;
    cache_select_results = false;
    subsumption = true;
    promote = false;
    promote_threshold = 3;
    promote_projections = true;
  }

let config_disabled =
  {
    cache_csv_fields = false;
    cache_json_fields = false;
    cache_strings = false;
    cache_join_sides = false;
    cache_select_results = false;
    subsumption = false;
    promote = false;
    promote_threshold = 3;
    promote_projections = false;
  }

type stats = {
  field_hits : int;
  field_misses : int;
  field_stores : int;
  packed_hits : int;
  packed_misses : int;
  packed_stores : int;
  select_hits : int;      (* exact σ-result matches *)
  select_subsumed : int;  (* matches that needed a residual re-filter *)
  select_stores : int;
  quarantined : int;      (* fills discarded: producing run saw errors/abort *)
  fill_commits : int;     (* committed segmented fills (one per dataset scan) *)
  fill_segments : int;    (* per-(worker,morsel) segments blit-assembled *)
  fill_rows : int;        (* rows materialized across committed fills *)
  promotions : int;       (* columns promoted past the workload threshold *)
  zone_maps : int;        (* zone-map side structures built *)
  dict_columns : int;     (* string columns re-encoded as dictionaries *)
  sorted_projections : int;  (* value-ordered copies + OID permutations *)
  slot_columns : int;     (* columns pre-parsed straight from format indexes *)
}

type t = {
  config : config;
  catalog : Catalog.t;
  arena : Memory.Arena.t;
  mu : Mutex.t;
      (* one lock over all manager state: lookups, stores, promotion
         accounting and eviction callbacks — concurrent sessions share one
         manager, and the arena's LRU mutates on every touch *)
  mutable on_promote : (string -> string -> unit) list;
      (* promotion hooks (dataset, path), fired OUTSIDE the lock in
         registration order: the db layer materializes pre-parsed slot
         columns for promoted JSON paths, then the engine cache invalidates
         compiled plans that baked in the pre-promotion layout (no zone
         skip, undictionarized probes) *)
  mutable promo_fired : (string * string) list;  (* pending hook calls *)
  fields : (string * string, Column.t) Hashtbl.t;    (* (dataset, path) *)
  packed : (string, Cache_iface.packed * string list) Hashtbl.t;  (* key -> (cols, datasets) *)
  selects : (string, select_entry list ref) Hashtbl.t;  (* dataset -> entries *)
  (* workload-adaptive promotion (adaptive storage 2.0): per-column access
     accounting, promoted-column set, and zone-map side structures *)
  access : (string * string, access_acc) Hashtbl.t;
  promoted : (string * string, unit) Hashtbl.t;
  zones : (string * string, Zonemap.t) Hashtbl.t;
  projections : (string * string, Projection.t) Hashtbl.t;
  mutable field_hits : int;
  mutable field_misses : int;
  mutable field_stores : int;
  mutable packed_hits : int;
  mutable packed_misses : int;
  mutable packed_stores : int;
  mutable select_hits : int;
  mutable select_subsumed : int;
  mutable select_stores : int;
  mutable quarantined : int;
  mutable fill_commits : int;
  mutable fill_segments : int;
  mutable fill_rows : int;
  mutable promotions : int;
  mutable zone_maps : int;
  mutable dict_columns : int;
  mutable sorted_projections : int;
  mutable slot_columns : int;
}

and access_acc = {
  mutable reads : int;      (* cache-lookup hits for the column *)
  mutable selective : int;  (* queries that compiled a comparison over it *)
  mutable ranged : int;     (* of those, range (not equality) comparisons *)
}

and select_entry = {
  se_id : string;            (* arena block id *)
  se_pred : Expr.t;          (* canonicalized over binding "$0" *)
  se_paths : string list;
  se_packed : Cache_iface.packed;
}

let create ?(config = default_config) catalog =
  {
    config;
    catalog;
    arena = Memory.Arena.of_mgr (Catalog.memory catalog);
    mu = Mutex.create ();
    on_promote = [];
    promo_fired = [];
    fields = Hashtbl.create 32;
    packed = Hashtbl.create 16;
    selects = Hashtbl.create 8;
    access = Hashtbl.create 32;
    promoted = Hashtbl.create 8;
    zones = Hashtbl.create 8;
    projections = Hashtbl.create 8;
    field_hits = 0;
    field_misses = 0;
    field_stores = 0;
    packed_hits = 0;
    packed_misses = 0;
    packed_stores = 0;
    select_hits = 0;
    select_subsumed = 0;
    select_stores = 0;
    quarantined = 0;
    fill_commits = 0;
    fill_segments = 0;
    fill_rows = 0;
    promotions = 0;
    zone_maps = 0;
    dict_columns = 0;
    sorted_projections = 0;
    slot_columns = 0;
  }

(* Serialize every entry point; deliver promotion-hook notifications after
   the lock drops so the hook may call back into the manager (or into an
   engine cache that does). *)
let with_mu t f =
  Mutex.lock t.mu;
  match f () with
  | v ->
    let fired = List.rev t.promo_fired in
    t.promo_fired <- [];
    let hooks = t.on_promote in
    Mutex.unlock t.mu;
    List.iter (fun (ds, p) -> List.iter (fun h -> h ds p) hooks) fired;
    v
  | exception e ->
    t.promo_fired <- [];
    Mutex.unlock t.mu;
    raise e

let set_on_promote t h =
  with_mu t (fun () -> t.on_promote <- t.on_promote @ [ h ])

let field_id dataset path = Fmt.str "field:%s:%s" dataset path

let packed_id key = "packed:" ^ key

let packed_size (p : Cache_iface.packed) =
  List.fold_left (fun acc (_, c) -> acc + Column.byte_size c) 0 p.Cache_iface.cols

(* --- workload-adaptive promotion (adaptive storage 2.0) ------------------ *)

let access_acc t key =
  match Hashtbl.find_opt t.access key with
  | Some a -> a
  | None ->
    let a = { reads = 0; selective = 0; ranged = 0 } in
    Hashtbl.replace t.access key a;
    a

let is_promoted t ~dataset ~path = Hashtbl.mem t.promoted (dataset, path)

let build_zones t (dataset, path) col =
  if not (Hashtbl.mem t.zones (dataset, path)) then
    match Zonemap.of_column col with
    | Some zm ->
      Hashtbl.replace t.zones (dataset, path) zm;
      t.zone_maps <- t.zone_maps + 1;
      Log.info (fun m ->
          m "zone map for %s.%s: %d zones x %d rows" dataset path (Zonemap.zones zm)
            zm.Zonemap.zone)
    | None -> ()

(* Sorted projections are the second promotion tier: only columns whose
   workload showed RANGE predicates earn the sort + permutation — equality
   probes and plain reads are already served by zone maps/dictionaries, and
   on unclustered data only the sorted copy can prove morsels empty. *)
let build_projection t (dataset, path) col =
  if
    t.config.promote_projections
    && (not (Hashtbl.mem t.projections (dataset, path)))
    && (access_acc t (dataset, path)).ranged > 0
  then
    match Projection.of_column col with
    | Some pr ->
      Hashtbl.replace t.projections (dataset, path) pr;
      t.sorted_projections <- t.sorted_projections + 1;
      Stats.note_rich_layout (Catalog.stats t.catalog dataset) path;
      Log.info (fun m ->
          m "sorted projection for %s.%s: %d rows (%d bytes)" dataset path
            (Projection.rows pr) (Projection.byte_size pr))
    | None -> ()

(* Past-threshold promotion: numeric columns gain a zone map (built in one
   pass when the column is already filled; otherwise at the next fill
   commit) and — when the workload showed range predicates — a sorted
   projection; string columns re-encode as dictionaries in place and their
   decoded entries get lexicographic zone maps. Costing learns about it
   through the catalog statistics. *)
let promote_now t dataset path =
  Hashtbl.replace t.promoted (dataset, path) ();
  t.promotions <- t.promotions + 1;
  t.promo_fired <- (dataset, path) :: t.promo_fired;
  Stats.note_promoted (Catalog.stats t.catalog dataset) path;
  (match Hashtbl.find_opt t.fields (dataset, path) with
  | Some col -> (
    build_zones t (dataset, path) col;
    build_projection t (dataset, path) col;
    match Column.promote_strings col with
    | Some dcol when dcol != col ->
      Hashtbl.replace t.fields (dataset, path) dcol;
      t.dict_columns <- t.dict_columns + 1;
      (* the dictionary layout is what the string zone map is built over *)
      build_zones t (dataset, path) dcol
    | Some _ | None -> ())
  | None -> ());
  Log.info (fun m -> m "promoted %s.%s" dataset path)

let maybe_promote t dataset path =
  if t.config.promote && not (is_promoted t ~dataset ~path) then begin
    let acc = access_acc t (dataset, path) in
    if acc.reads + acc.selective >= t.config.promote_threshold then
      promote_now t dataset path
  end

let note_selective t ~dataset ~path ~ranged =
  if t.config.promote then begin
    let acc = access_acc t (dataset, path) in
    acc.selective <- acc.selective + 1;
    if ranged then begin
      acc.ranged <- acc.ranged + 1;
      (* range evidence arriving after promotion still upgrades the layout:
         the column is in hand, so the projection builds right here *)
      if is_promoted t ~dataset ~path then
        match Hashtbl.find_opt t.fields (dataset, path) with
        | Some col -> build_projection t (dataset, path) col
        | None -> ()
    end;
    maybe_promote t dataset path
  end

let lookup_zones t ~dataset ~path =
  if is_promoted t ~dataset ~path then Hashtbl.find_opt t.zones (dataset, path)
  else None

let lookup_projection t ~dataset ~path =
  if is_promoted t ~dataset ~path then
    Hashtbl.find_opt t.projections (dataset, path)
  else None

(* The registry reports a promotion-time materialization straight from a
   format index (pre-parsed slot column) — bookkeeping + costing signal. *)
let note_slot_column t ~dataset ~path =
  t.slot_columns <- t.slot_columns + 1;
  Stats.note_rich_layout (Catalog.stats t.catalog dataset) path;
  Log.info (fun m -> m "slot column materialized for %s.%s" dataset path)

let lookup_field t ~dataset ~path =
  match Hashtbl.find_opt t.fields (dataset, path) with
  | Some _ ->
    t.field_hits <- t.field_hits + 1;
    ignore (Memory.Arena.touch t.arena (field_id dataset path));
    if t.config.promote then begin
      let acc = access_acc t (dataset, path) in
      acc.reads <- acc.reads + 1;
      maybe_promote t dataset path
    end;
    (* the promotion may just have swapped the layout in place *)
    Hashtbl.find_opt t.fields (dataset, path)
  | None ->
    t.field_misses <- t.field_misses + 1;
    None

let store_field t ~dataset ~path ~bias col =
  (* An already-promoted string column installs directly in its dictionary
     layout (e.g. a re-fill after eviction, or the first fill after the
     selective-conjunct feedback crossed the threshold). *)
  let col =
    if is_promoted t ~dataset ~path then (
      match Column.promote_strings col with
      | Some dcol when dcol != col ->
        t.dict_columns <- t.dict_columns + 1;
        dcol
      | Some dcol -> dcol
      | None -> col)
    else col
  in
  let id = field_id dataset path in
  let size = Column.byte_size col in
  (match
     Memory.Arena.put t.arena ~id ~size ~bias ~on_evict:(fun () ->
         Hashtbl.remove t.fields (dataset, path);
         Hashtbl.remove t.zones (dataset, path);
         Hashtbl.remove t.projections (dataset, path))
   with
  | () ->
    Hashtbl.replace t.fields (dataset, path) col;
    t.field_stores <- t.field_stores + 1;
    (* fill-session commit lands here: record the zone-map (and, for
       promoted range-hot columns, the sorted-projection) side structures
       alongside the block while the column is in hand (one pass) *)
    if t.config.promote then begin
      build_zones t (dataset, path) col;
      if is_promoted t ~dataset ~path then build_projection t (dataset, path) col
    end;
    Log.info (fun m -> m "cached %s.%s (%d bytes)" dataset path size)
  | exception Invalid_argument _ ->
    (* larger than the whole arena: skip caching rather than fail the query *)
    Log.warn (fun m -> m "cache column %s.%s larger than arena; skipped" dataset path))

let should_cache_field t ~dataset ~path ~ty =
  let format_ok =
    match (Catalog.find t.catalog dataset).Dataset.format with
    | Dataset.Csv _ -> t.config.cache_csv_fields
    | Dataset.Json -> t.config.cache_json_fields
    | Dataset.Binary_row | Dataset.Binary_column -> false
  in
  let type_ok =
    match Ptype.unwrap_option ty with
    | Ptype.String ->
      (* the paper's "never cache strings" flips to "cache as dictionary
         when promoted": a hot, repeatedly-filtered string column is worth
         its arena bytes once it stores as codes + dictionary *)
      t.config.cache_strings || (t.config.promote && is_promoted t ~dataset ~path)
    | Ptype.Int | Ptype.Float | Ptype.Bool | Ptype.Date -> true
    | Ptype.Record _ | Ptype.Collection _ | Ptype.Option _ -> false
  in
  format_ok && type_ok

let lookup_packed t ~key =
  match Hashtbl.find_opt t.packed key with
  | Some (p, _) ->
    t.packed_hits <- t.packed_hits + 1;
    ignore (Memory.Arena.touch t.arena (packed_id key));
    Some p
  | None ->
    t.packed_misses <- t.packed_misses + 1;
    None

let store_packed t ~key ~datasets ~bias p =
  if t.config.cache_join_sides then begin
    let id = packed_id key in
    match
      Memory.Arena.put t.arena ~id ~size:(packed_size p) ~bias ~on_evict:(fun () ->
          Hashtbl.remove t.packed key)
    with
    | () ->
      Hashtbl.replace t.packed key (p, datasets);
      t.packed_stores <- t.packed_stores + 1;
      Log.info (fun m ->
          m "cached materialized side %s (%d rows, %d bytes)" key p.Cache_iface.length
            (packed_size p))
    | exception Invalid_argument _ ->
      Log.warn (fun m -> m "packed cache %s larger than arena; skipped" key)
  end

(* --- sigma-result caching with subsumption (Section 6 extension) --------- *)

let subset a b = List.for_all (fun x -> List.mem x b) a

let canon ~binding pred = Expr.rename binding "$0" pred

let lookup_select t ~dataset ~binding ~pred ~paths =
  match Hashtbl.find_opt t.selects dataset with
  | None -> None
  | Some entries ->
    let q = canon ~binding pred in
    let exact =
      List.find_opt
        (fun e -> Expr.equal e.se_pred q && subset paths e.se_paths)
        !entries
    in
    (match exact with
    | Some e ->
      t.select_hits <- t.select_hits + 1;
      ignore (Memory.Arena.touch t.arena e.se_id);
      Some (e.se_packed, None)
    | None when t.config.subsumption ->
      let weaker =
        List.find_opt
          (fun e -> subset paths e.se_paths && Subsume.covers ~cached:e.se_pred ~query:q)
          !entries
      in
      (match weaker with
      | Some e ->
        t.select_subsumed <- t.select_subsumed + 1;
        ignore (Memory.Arena.touch t.arena e.se_id);
        Some (e.se_packed, Some pred)
      | None -> None)
    | None -> None)

let store_select t ~dataset ~binding ~pred ~paths ~bias packed =
  let q = canon ~binding pred in
  let id = Fmt.str "select:%s:%d" dataset (Hashtbl.hash (Expr.to_string q, paths)) in
  let entries =
    match Hashtbl.find_opt t.selects dataset with
    | Some cell -> cell
    | None ->
      let cell = ref [] in
      Hashtbl.replace t.selects dataset cell;
      cell
  in
  match
    Memory.Arena.put t.arena ~id ~size:(packed_size packed) ~bias ~on_evict:(fun () ->
        entries := List.filter (fun e -> not (String.equal e.se_id id)) !entries)
  with
  | () ->
    entries :=
      { se_id = id; se_pred = q; se_paths = paths; se_packed = packed }
      :: List.filter (fun e -> not (String.equal e.se_id id)) !entries;
    t.select_stores <- t.select_stores + 1;
    Log.info (fun m ->
        m "cached sigma-result over %s (%d rows): %a" dataset packed.Cache_iface.length
          Expr.pp q)
  | exception Invalid_argument _ ->
    Log.warn (fun m -> m "sigma-result cache for %s larger than arena; skipped" dataset)

let should_cache_select t ~dataset =
  t.config.cache_select_results
  &&
  match (Catalog.find t.catalog dataset).Dataset.format with
  | Dataset.Csv _ | Dataset.Json -> true
  | Dataset.Binary_row | Dataset.Binary_column -> false

(* Install-on-commit accounting: the fill was computed but its producing
   run recorded errors (or aborted), so nothing was stored. *)
let quarantine t ~id =
  t.quarantined <- t.quarantined + 1;
  Log.debug (fun m -> m "quarantined fill %s (producing run saw errors)" id)

let note_fill t ~dataset ~segments ~rows =
  t.fill_commits <- t.fill_commits + 1;
  t.fill_segments <- t.fill_segments + segments;
  t.fill_rows <- t.fill_rows + rows;
  Log.debug (fun m ->
      m "committed segmented fill for %s: %d segments, %d rows" dataset segments rows)

let iface t : Cache_iface.t =
  {
    Cache_iface.lookup_field =
      (fun ~dataset ~path -> with_mu t (fun () -> lookup_field t ~dataset ~path));
    store_field =
      (fun ~dataset ~path ~bias col ->
        with_mu t (fun () -> store_field t ~dataset ~path ~bias col));
    should_cache_field =
      (fun ~dataset ~path ~ty ->
        with_mu t (fun () -> should_cache_field t ~dataset ~path ~ty));
    lookup_packed = (fun ~key -> with_mu t (fun () -> lookup_packed t ~key));
    store_packed =
      (fun ~key ~datasets ~bias p ->
        with_mu t (fun () -> store_packed t ~key ~datasets ~bias p));
    lookup_select =
      (fun ~dataset ~binding ~pred ~paths ->
        with_mu t (fun () -> lookup_select t ~dataset ~binding ~pred ~paths));
    store_select =
      (fun ~dataset ~binding ~pred ~paths ~bias p ->
        with_mu t (fun () -> store_select t ~dataset ~binding ~pred ~paths ~bias p));
    should_cache_select =
      (fun ~dataset -> with_mu t (fun () -> should_cache_select t ~dataset));
    quarantine = (fun ~id -> with_mu t (fun () -> quarantine t ~id));
    note_fill =
      (fun ~dataset ~segments ~rows ->
        with_mu t (fun () -> note_fill t ~dataset ~segments ~rows));
    note_selective =
      (fun ~dataset ~path ~ranged ->
        with_mu t (fun () -> note_selective t ~dataset ~path ~ranged));
    lookup_zones =
      (fun ~dataset ~path -> with_mu t (fun () -> lookup_zones t ~dataset ~path));
    lookup_projection =
      (fun ~dataset ~path ->
        with_mu t (fun () -> lookup_projection t ~dataset ~path));
    note_slot_column =
      (fun ~dataset ~path ->
        with_mu t (fun () -> note_slot_column t ~dataset ~path));
  }

let is_promoted t ~dataset ~path = with_mu t (fun () -> is_promoted t ~dataset ~path)

let lookup_zones t ~dataset ~path = with_mu t (fun () -> lookup_zones t ~dataset ~path)

let lookup_projection t ~dataset ~path =
  with_mu t (fun () -> lookup_projection t ~dataset ~path)

let stats t = with_mu t @@ fun () ->
  {
    field_hits = t.field_hits;
    field_misses = t.field_misses;
    field_stores = t.field_stores;
    packed_hits = t.packed_hits;
    packed_misses = t.packed_misses;
    packed_stores = t.packed_stores;
    select_hits = t.select_hits;
    select_subsumed = t.select_subsumed;
    select_stores = t.select_stores;
    quarantined = t.quarantined;
    fill_commits = t.fill_commits;
    fill_segments = t.fill_segments;
    fill_rows = t.fill_rows;
    promotions = t.promotions;
    zone_maps = t.zone_maps;
    dict_columns = t.dict_columns;
    sorted_projections = t.sorted_projections;
    slot_columns = t.slot_columns;
  }

let field_bytes_for t ~dataset = with_mu t @@ fun () ->
  Hashtbl.fold
    (fun (ds, _) col acc ->
      if String.equal ds dataset then acc + Column.byte_size col else acc)
    t.fields 0

let bytes_for t ~dataset = with_mu t @@ fun () ->
  let fields =
    Hashtbl.fold
      (fun (ds, _) col acc -> if String.equal ds dataset then acc + Column.byte_size col else acc)
      t.fields 0
  in
  let packed =
    Hashtbl.fold
      (fun _ (p, datasets) acc ->
        if List.mem dataset datasets then acc + packed_size p else acc)
      t.packed 0
  in
  let selects =
    match Hashtbl.find_opt t.selects dataset with
    | Some entries ->
      List.fold_left (fun acc e -> acc + packed_size e.se_packed) 0 !entries
    | None -> 0
  in
  fields + packed + selects

let resident_bytes t = with_mu t @@ fun () ->
  Hashtbl.fold (fun _ col acc -> acc + Column.byte_size col) t.fields 0
  + Hashtbl.fold (fun _ (p, _) acc -> acc + packed_size p) t.packed 0
  + Hashtbl.fold
      (fun _ entries acc ->
        List.fold_left (fun acc e -> acc + packed_size e.se_packed) acc !entries)
      t.selects 0

let invalidate_dataset t ~dataset = with_mu t @@ fun () ->
  let field_keys =
    Hashtbl.fold
      (fun (ds, path) _ acc -> if String.equal ds dataset then (ds, path) :: acc else acc)
      t.fields []
  in
  List.iter
    (fun (ds, path) ->
      Hashtbl.remove t.fields (ds, path);
      Memory.Arena.remove t.arena (field_id ds path))
    field_keys;
  let packed_keys =
    Hashtbl.fold
      (fun key (_, datasets) acc -> if List.mem dataset datasets then key :: acc else acc)
      t.packed []
  in
  List.iter
    (fun key ->
      Hashtbl.remove t.packed key;
      Memory.Arena.remove t.arena (packed_id key))
    packed_keys;
  (match Hashtbl.find_opt t.selects dataset with
  | Some entries ->
    List.iter (fun e -> Memory.Arena.remove t.arena e.se_id) !entries;
    Hashtbl.remove t.selects dataset
  | None -> ());
  (* the dataset changed: access history, promotions and zone maps derived
     from its old contents are stale *)
  let adaptive_keys tbl =
    Hashtbl.fold
      (fun (ds, path) _ acc -> if String.equal ds dataset then (ds, path) :: acc else acc)
      tbl []
  in
  List.iter (Hashtbl.remove t.access) (adaptive_keys t.access);
  List.iter (Hashtbl.remove t.zones) (adaptive_keys t.zones);
  List.iter (Hashtbl.remove t.projections) (adaptive_keys t.projections);
  List.iter
    (fun (ds, path) ->
      Hashtbl.remove t.promoted (ds, path);
      Stats.drop_promoted (Catalog.stats t.catalog ds) path)
    (adaptive_keys t.promoted)

let clear t = with_mu t @@ fun () ->
  Hashtbl.iter (fun (ds, path) _ -> Memory.Arena.remove t.arena (field_id ds path)) t.fields;
  Hashtbl.iter (fun key _ -> Memory.Arena.remove t.arena (packed_id key)) t.packed;
  Hashtbl.iter
    (fun _ entries -> List.iter (fun e -> Memory.Arena.remove t.arena e.se_id) !entries)
    t.selects;
  Hashtbl.iter
    (fun (ds, path) () -> Stats.drop_promoted (Catalog.stats t.catalog ds) path)
    t.promoted;
  Hashtbl.reset t.fields;
  Hashtbl.reset t.packed;
  Hashtbl.reset t.selects;
  Hashtbl.reset t.access;
  Hashtbl.reset t.promoted;
  Hashtbl.reset t.zones;
  Hashtbl.reset t.projections
