open Proteus_model
open Proteus_storage
open Proteus_plugin
module Plan = Proteus_algebra.Plan
module Json = Proteus_format.Json
module Binjson = Proteus_format.Binjson

type json_encoding = Jsonb | Text

type table =
  | Relational of { page : Rowpage.t; element : Ptype.t; from_csv : bool }
  | Documents of { element : Ptype.t; docs : string array; encoding : json_encoding }

type t = { json_encoding : json_encoding; tables : (string, table) Hashtbl.t }

let create ?(json_encoding = Jsonb) () = { json_encoding; tables = Hashtbl.create 8 }

let load_records t ~name ~element ~from_csv records =
  let schema = Schema.of_type element in
  Hashtbl.replace t.tables name
    (Relational { page = Rowpage.of_records schema records; element; from_csv })

let load_relational t ~name ~element records =
  load_records t ~name ~element ~from_csv:false records

let load_csv t ~name ?(config = Proteus_format.Csv.default_config) ~element text =
  let schema = Schema.of_type element in
  let records = Proteus_format.Csv.read_all config schema text in
  load_records t ~name ~element ~from_csv:true records

let load_json t ~name ~element text =
  let docs =
    Json.parse_seq text
    |> List.map (fun j ->
           match t.json_encoding with
           | Jsonb -> Binjson.encode j
           | Text -> Json.to_string j)
    |> Array.of_list
  in
  Hashtbl.replace t.tables name (Documents { element; docs; encoding = t.json_encoding })

let find t name =
  match Hashtbl.find_opt t.tables name with
  | Some tbl -> tbl
  | None -> Perror.plan_error "rowstore: unknown table %s" name

let row_count t name =
  match find t name with
  | Relational { page; _ } -> Rowpage.count page
  | Documents { docs; _ } -> Array.length docs

let table_bytes t name =
  match find t name with
  | Relational { page; _ } -> Rowpage.byte_size page
  | Documents { docs; _ } ->
    Array.fold_left (fun acc d -> acc + String.length d) 0 docs

(* --- sources over the loaded storage ------------------------------------- *)

let relational_source page element = Binary_plugin.of_rowpage page |> fun s ->
  { s with Source.element }

(* jsonb: navigate the binary encoding per access; text: re-parse the whole
   document per access (the DBMS X penalty). Field accessors here are
   deliberately boxed-only: this system has no per-query specialization. *)
let document_source element docs encoding =
  let cur = ref 0 in
  let boxed_walk v path =
    let rec go v = function
      | [] -> v
      | seg :: rest -> (
        match v with
        | Value.Record _ as r -> (
          match Value.field_opt r seg with Some x -> go x rest | None -> Value.Null)
        | _ -> Value.Null)
    in
    go v (String.split_on_char '.' path)
  in
  let is_collection path =
    match Ptype.unwrap_option (Source.field_type element path) with
    | Ptype.Collection _ -> true
    | _ -> false
    | exception Perror.Plan_error _ -> false
  in
  let field path =
    match encoding with
    | Jsonb when is_collection path ->
      (* Nested collections are reached through built-in set-returning
         functions, which operate on the whole value: the document is fully
         deserialized per access (the paper's unnest penalty for the row
         stores). *)
      Access.boxed
        (Ptype.Option Ptype.Int)
        (fun () -> boxed_walk (Binjson.value_at docs.(!cur) 0) path)
    | Jsonb ->
      Access.boxed
        (Ptype.Option Ptype.Int)
        (fun () ->
          let doc = docs.(!cur) in
          match Binjson.find_path doc 0 path with
          | Some off -> Binjson.value_at doc off
          | None -> Value.Null)
    | Text ->
      Access.boxed
        (Ptype.Option Ptype.Int)
        (fun () ->
          (* character-based storage: full parse on every access *)
          boxed_walk (Json.to_value (Json.parse_string docs.(!cur))) path)
  in
  let whole () =
    match encoding with
    | Jsonb -> Binjson.value_at docs.(!cur) 0
    | Text -> Json.to_value (Json.parse_string docs.(!cur))
  in
  {
    Source.element;
    count = Array.length docs;
    seek = (fun i -> cur := i);
    field;
    whole;
    unnest = (fun _ -> None);
    validate = None;
  }

let source t name =
  match find t name with
  | Relational { page; element; _ } -> relational_source page element
  | Documents { element; docs; encoding } -> document_source element docs encoding

(* The optimizer-blindness rewrite (the paper's Q39): when a join mixes a
   relational table with a JSON one, the JSON side is a BLOB-like value the
   optimizer cannot estimate, and it falls back to a nested-loop plan.
   JSON⋈JSON joins keep their hash plan (both sides look equally opaque, so
   the default join method applies). *)
let binding_kind t plan binding =
  let rec go (p : Plan.t) =
    match p with
    | Plan.Scan { dataset; binding = b; _ } when String.equal b binding -> (
      match Hashtbl.find_opt t.tables dataset with
      | Some (Documents _) -> Some `Doc
      | Some (Relational { from_csv = true; _ }) -> Some `Csv
      | Some (Relational _) -> Some `Rel
      | None -> None)
    | p -> List.find_map go (Plan.children p)
  in
  go plan

let rec blind_to_json t (plan : Plan.t) (p : Plan.t) : Plan.t =
  let p = Plan.map_children (blind_to_json t plan) p in
  match p with
  | Plan.Join ({ algo = Plan.Radix_hash; pred; _ } as r) ->
    let mixed_formats =
      (* the trap fires when a just-loaded CSV table (no statistics) joins a
         JSON column: the optimizer can estimate neither side *)
      List.exists
        (fun c ->
          match (c : Expr.t) with
          | Expr.Binop (Expr.Eq, l, rr) -> (
            let side e =
              match Proteus_algebra.Analysis.path_of e with
              | Some (v, path) when path <> "" -> binding_kind t plan v
              | _ -> None
            in
            match side l, side rr with
            | Some `Csv, Some `Doc | Some `Doc, Some `Csv -> true
            | _ -> false)
          | _ -> false)
        (Expr.conjuncts pred)
    in
    if mixed_formats then Plan.Join { r with algo = Plan.Nested_loop } else p
  | p -> p

let run t plan =
  let plan = blind_to_json t plan plan in
  Proteus_engine.Volcano.execute_with
    (fun ~dataset ~required:_ -> source t dataset)
    plan
