open Proteus_model
open Proteus_plugin
module Plan = Proteus_algebra.Plan
module Json = Proteus_format.Json
module Binjson = Proteus_format.Binjson

type collection = { element : Ptype.t; docs : string array }

type t = { collections : (string, collection) Hashtbl.t }

let create () = { collections = Hashtbl.create 8 }

let load_json t ~name ~element text =
  let docs = Json.parse_seq text |> List.map Binjson.encode |> Array.of_list in
  Hashtbl.replace t.collections name { element; docs }

let load_records t ~name ~element records =
  let docs =
    List.map (fun r -> Binjson.encode (Json.of_value r)) records |> Array.of_list
  in
  Hashtbl.replace t.collections name { element; docs }

let find t name =
  match Hashtbl.find_opt t.collections name with
  | Some c -> c
  | None -> Perror.plan_error "docstore: unknown collection %s" name

let doc_count t name = Array.length (find t name).docs

let collection_bytes t name =
  Array.fold_left (fun acc d -> acc + String.length d) 0 (find t name).docs

(* A source over the BSON storage. Field access navigates the binary
   encoding; the unnest spec iterates array element offsets without decoding
   the whole array — the document store's home turf. *)
let source (c : collection) : Source.t =
  let cur = ref 0 in
  let field path =
    Access.boxed
      (Ptype.Option Ptype.Int)
      (fun () ->
        let doc = c.docs.(!cur) in
        match Binjson.find_path doc 0 path with
        | Some off -> Binjson.value_at doc off
        | None -> Value.Null)
  in
  let whole () = Binjson.value_at c.docs.(!cur) 0 in
  let unnest path =
    match Ptype.unwrap_option (Source.field_type c.element path) with
    | Ptype.Collection (_, elem_ty) ->
      let elem_off = ref (-1) in
      let u_iter ~on_elem =
        let doc = c.docs.(!cur) in
        match Binjson.find_path doc 0 path with
        | Some off when (try Binjson.array_offsets doc off <> [] with _ -> false) ->
          List.iter
            (fun o ->
              elem_off := o;
              on_elem ())
            (Binjson.array_offsets doc off)
        | Some _ | None -> ()
      in
      let u_field f =
        Access.boxed
          (Ptype.Option Ptype.Int)
          (fun () ->
            let doc = c.docs.(!cur) in
            match Binjson.find_path doc !elem_off f with
            | Some off -> Binjson.value_at doc off
            | None -> Value.Null)
      in
      let u_value () = Binjson.value_at c.docs.(!cur) !elem_off in
      Some { Source.u_elem_ty = elem_ty; u_prepare = (fun _ -> ()); u_iter; u_field; u_value }
    | _ -> None
    | exception Perror.Plan_error _ -> None
  in
  {
    Source.element = c.element;
    count = Array.length c.docs;
    seek = (fun i -> cur := i);
    field;
    whole;
    unnest;
    validate = None;
  }

let rec has_join (p : Plan.t) =
  match p with
  | Plan.Join _ -> true
  | p -> List.exists has_join (Plan.children p)

(* The per-document pipeline: interpreted evaluation where each stage
   materializes a projected document. We reuse the Volcano interpreter —
   its scan already builds one boxed record of the required paths per
   document, which is exactly the aggregation pipeline's $project
   materialization. *)
let run_pipeline t plan =
  Proteus_engine.Volcano.execute_with
    (fun ~dataset ~required:_ -> source (find t dataset))
    plan

(* Map-reduce emulation for joins: every document of every involved
   collection is fully deserialized up front (the map phase), and the
   interpreted evaluation then works over the boxed copies — the shuffle
   groups by key, so the join itself is hash-based, but it pays full
   deserialization, boxed field walks and per-tuple interpretation. *)
let boxed_source (c : collection) : Source.t =
  let decoded = Array.map (fun d -> Binjson.value_at d 0) c.docs in
  let cur = ref 0 in
  let field path =
    let segs = String.split_on_char '.' path in
    Access.boxed
      (Ptype.Option Ptype.Int)
      (fun () ->
        List.fold_left
          (fun acc seg ->
            match acc with
            | Value.Record _ as r -> (
              match Value.field_opt r seg with Some x -> x | None -> Value.Null)
            | _ -> Value.Null)
          decoded.(!cur) segs)
  in
  {
    Source.element = c.element;
    count = Array.length decoded;
    seek = (fun i -> cur := i);
    field;
    whole = (fun () -> decoded.(!cur));
    unnest = (fun _ -> None);
    validate = None;
  }

let run_map_reduce t plan =
  Proteus_engine.Volcano.execute_with
    (fun ~dataset ~required:_ -> boxed_source (find t dataset))
    plan

let run t plan =
  if has_join plan then run_map_reduce t plan else run_pipeline t plan
