(* Per-member circuit breakers: closed / open / half-open.

   [failure] counts consecutive budget-exhausted failures; at [threshold]
   the breaker opens and [admit] answers [Reject] until [cooldown_ms] has
   passed. The first [admit] after the cooldown transitions to half-open
   and admits exactly one probe; the probe's [success] closes the breaker,
   its [failure] re-opens it (fresh cooldown). Any [success] resets the
   consecutive-failure count.

   All transitions run under the breaker's own mutex: admits from
   concurrent queries (or hedge attempts) agree on who holds the one
   half-open probe slot. *)

type state = Closed | Open | Half_open

let state_name = function
  | Closed -> "closed"
  | Open -> "open"
  | Half_open -> "half-open"

type config = { threshold : int; cooldown_ms : float }

(* Three exhausted budgets back to back open the breaker; a short cooldown
   keeps a flaky member from being benched forever. *)
let default_config = { threshold = 3; cooldown_ms = 1000. }

type t = {
  cfg : config;
  mu : Mutex.t;
  mutable st : state;
  mutable failures : int;   (* consecutive, while closed *)
  mutable opened_at : float; (* Unix.gettimeofday at the last open *)
  mutable probing : bool;   (* half-open probe in flight *)
}

let create ?(config = default_config) () =
  {
    cfg = { config with threshold = max 1 config.threshold };
    mu = Mutex.create ();
    st = Closed;
    failures = 0;
    opened_at = 0.;
    probing = false;
  }

let with_mu t f =
  Mutex.lock t.mu;
  let r = f () in
  Mutex.unlock t.mu;
  r

let state t = with_mu t (fun () -> t.st)

(* [true] while the breaker would [Reject] right now: open and still
   cooling. Read-only — never claims the half-open probe slot, so digest
   arming can consult it without racing the scatter's own admit. *)
let blocking t =
  with_mu t (fun () ->
      match t.st with
      | Open ->
        (Unix.gettimeofday () -. t.opened_at) *. 1000. < t.cfg.cooldown_ms
      | Closed | Half_open -> false)

type decision = Proceed | Reject

let admit t =
  with_mu t (fun () ->
      match t.st with
      | Closed -> Proceed
      | Half_open ->
        if t.probing then Reject
        else begin
          t.probing <- true;
          Proceed
        end
      | Open ->
        if (Unix.gettimeofday () -. t.opened_at) *. 1000. >= t.cfg.cooldown_ms
        then begin
          t.st <- Half_open;
          t.probing <- true;
          Proceed
        end
        else Reject)

let success t =
  with_mu t (fun () ->
      t.st <- Closed;
      t.failures <- 0;
      t.probing <- false)

let failure t =
  with_mu t (fun () ->
      match t.st with
      | Half_open | Open ->
        (* a failed half-open probe (or a late failure racing the open)
           re-opens with a fresh cooldown *)
        t.st <- Open;
        t.opened_at <- Unix.gettimeofday ();
        t.probing <- false
      | Closed ->
        t.failures <- t.failures + 1;
        if t.failures >= t.cfg.threshold then begin
          t.st <- Open;
          t.opened_at <- Unix.gettimeofday ()
        end)
