(* Retry budgets: a bounded attempt loop with exponential backoff and
   decorrelated jitter, aware of the active query deadline.

   The jitter scheme is the "decorrelated" variant: each sleep is drawn
   uniformly from [base, prev * 3] and capped, so concurrent retriers
   spread out instead of thundering in lockstep while the expected sleep
   still grows geometrically. Sleeps never cross the deadline of the
   installed {!Proteus_model.Fault} context (or an explicit [?deadline]):
   when no budget remains the last failure surfaces immediately — a
   retry must never turn a recoverable error into a deadline miss. *)

open Proteus_model

type t = {
  attempts : int;          (* total attempts, first included; >= 1 *)
  base_backoff_ms : float; (* first sleep, and the jitter floor *)
  max_backoff_ms : float;  (* cap on any single sleep *)
}

(* Two attempts preserves the pre-resilience shard contract ("a failed
   member build is retried once from scratch") as the default. *)
let default = { attempts = 2; base_backoff_ms = 1.; max_backoff_ms = 50. }

let make ?(base_backoff_ms = default.base_backoff_ms)
    ?(max_backoff_ms = default.max_backoff_ms) ~attempts () =
  { attempts = max 1 attempts; base_backoff_ms; max_backoff_ms }

let of_attempts attempts = make ~attempts ()

let attempts p = p.attempts

(* Sleep [ms], but never past [deadline]; [false] when the deadline has no
   room left at all (the caller should surface its failure instead of
   burning another attempt it cannot finish). *)
let backoff_sleep ~deadline ms =
  match deadline with
  | None ->
    Unix.sleepf (ms /. 1000.);
    true
  | Some d ->
    let remaining_ms = (d -. Unix.gettimeofday ()) *. 1000. in
    if remaining_ms <= 0. then false
    else begin
      Unix.sleepf (Float.min ms remaining_ms /. 1000.);
      true
    end

(* [run ?deadline ?on_retry p ~retryable f] calls [f attempt] (1-based) up
   to [p.attempts] times. Only [retryable] failures consume budget; others
   propagate immediately. [on_retry] fires before each re-attempt (after
   the backoff sleep) — the registry uses it to invalidate the stale
   artifact and tick the retry counter. The deadline defaults to the
   active fault context's. *)
let run ?deadline ?(on_retry = fun ~attempt:_ _ -> ()) (p : t) ~retryable f =
  let deadline =
    match deadline with Some _ as d -> d | None -> Fault.deadline ()
  in
  let rec go attempt prev_sleep =
    match f attempt with
    | v -> v
    | exception e when retryable e && attempt < p.attempts ->
      Fault.check_cancel ();
      let hi = Float.max p.base_backoff_ms (prev_sleep *. 3.) in
      let span = Float.max 0. (hi -. p.base_backoff_ms) in
      let ms =
        Float.min p.max_backoff_ms
          (p.base_backoff_ms +. if span > 0. then Random.float span else 0.)
      in
      if not (backoff_sleep ~deadline ms) then raise e;
      Fault.check_cancel ();
      on_retry ~attempt:(attempt + 1) e;
      go (attempt + 1) ms
  in
  go 1 0.
