(** Straggler hedging: per-key latency EWMAs drive a speculative second
    dispatch of a slow build; the first finisher wins and the loser is
    cancelled through a forked fault context. Both attempts build views
    over the same memoized artifacts, so hedged and unhedged runs are
    bit-identical. *)

type t

(** [create ?factor ?floor_ms ()] hedges a build whose elapsed time
    crosses [max floor_ms (factor * median-of-EWMAs)]; factor defaults
    to 3, floor to 0 (no history, no floor: hedging stands down). *)
val create : ?factor:float -> ?floor_ms:float -> unit -> t

(** The current EWMA (ms) of one key, if any build of it completed. *)
val ewma : t -> string -> float option

(** Record one build's latency by hand (tests). *)
val note : t -> string -> float -> unit

(** The current hedge trigger in ms; [<= 0.] means hedging stands down. *)
val threshold_ms : t -> float

(** [run t ~key f] runs [f ()] with hedging (see module doc). Exceptions
    propagate only when every attempt that ran has failed — the first
    failure's exception wins. Never hedges when {!threshold_ms} is 0. *)
val run : t -> key:string -> (unit -> 'a) -> 'a
