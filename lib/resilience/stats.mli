(** Process-wide resilience event totals (retries slept, hedges launched,
    breaker-open skips, admission sheds). The engine's {!Counters} mirror
    them into its snapshot the same way it mirrors the fault totals. *)

val add_retries : int -> unit
val add_hedges : int -> unit
val add_breaker_open : int -> unit
val add_shed : int -> unit

val retries_total : unit -> int
val hedges_total : unit -> int
val breaker_open_total : unit -> int
val shed_total : unit -> int

val reset : unit -> unit
