(** Retry budgets: bounded attempts with exponential backoff, decorrelated
    jitter, and deadline-aware sleeps (never past the active
    {!Proteus_model.Fault} deadline). *)

type t = {
  attempts : int;          (** total attempts, first included; >= 1 *)
  base_backoff_ms : float; (** first sleep, and the jitter floor *)
  max_backoff_ms : float;  (** cap on any single sleep *)
}

(** Two attempts, 1 ms base, 50 ms cap — the pre-resilience "retry once"
    shard contract expressed as a budget. *)
val default : t

val make :
  ?base_backoff_ms:float -> ?max_backoff_ms:float -> attempts:int -> unit -> t

(** [of_attempts n] is {!default} with [n] total attempts. *)
val of_attempts : int -> t

val attempts : t -> int

(** [run ?deadline ?on_retry p ~retryable f] calls [f attempt] (1-based)
    up to [p.attempts] times, sleeping a jittered backoff between attempts
    but never past [deadline] (default: the installed fault context's).
    Non-[retryable] exceptions propagate immediately; a retryable failure
    with no budget (or no deadline room) left re-raises. [on_retry] runs
    after each backoff sleep, before the re-attempt. *)
val run :
  ?deadline:float ->
  ?on_retry:(attempt:int -> exn -> unit) ->
  t ->
  retryable:(exn -> bool) ->
  (int -> 'a) ->
  'a
