(** Per-member circuit breakers: [threshold] consecutive failures open the
    breaker; after [cooldown_ms] one half-open probe is admitted, and its
    outcome closes or re-opens it. Thread-safe. *)

type state = Closed | Open | Half_open

val state_name : state -> string

type config = { threshold : int; cooldown_ms : float }

(** threshold 3, cooldown 1000 ms. *)
val default_config : config

type t

val create : ?config:config -> unit -> t

val state : t -> state

(** [true] while {!admit} would answer [Reject] (open, still cooling).
    Read-only: never claims the half-open probe slot. *)
val blocking : t -> bool

type decision = Proceed | Reject

(** [admit t] asks whether an attempt may run now. [Proceed] from a
    half-open breaker claims the single probe slot — the caller must
    report {!success} or {!failure} for the state machine to move on. *)
val admit : t -> decision

(** Closes the breaker and resets the consecutive-failure count. *)
val success : t -> unit

(** One budget-exhausted failure: counts toward [threshold] while closed,
    re-opens (fresh cooldown) from half-open. *)
val failure : t -> unit
