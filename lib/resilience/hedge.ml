(* Straggler hedging for the shard scatter.

   The scatter tracks a latency EWMA per member (the time to stamp out its
   view, including any index rebuild). When a build's elapsed time crosses
   [max floor_ms (factor * median-of-EWMAs)], the same work is dispatched
   once more on a fresh domain and the first finisher wins. Both attempts
   produce views over the same memoized read-only artifacts, so which one
   wins is unobservable in the results — the deterministic morsel-order
   fan-in happens downstream of the build either way. The loser is
   cancelled through a forked fault context (its private cancellation flag
   chains to the query's, so cancelling the loser never touches the
   winner or the query) and its domain is reaped opportunistically.

   Attempts run on domains, not threads: systhreads share their domain's
   DLS, so a per-attempt fault context (the thing that makes the loser
   individually cancellable) needs a domain of its own. *)

open Proteus_model

type t = {
  factor : float;
  floor_ms : float;
  mu : Mutex.t;
  ewmas : (string, float) Hashtbl.t;  (* member -> EWMA of build ms *)
}

let create ?(factor = 3.) ?(floor_ms = 0.) () =
  { factor; floor_ms; mu = Mutex.create (); ewmas = Hashtbl.create 16 }

let ewma t key =
  Mutex.lock t.mu;
  let v = Hashtbl.find_opt t.ewmas key in
  Mutex.unlock t.mu;
  v

let note t key ms =
  Mutex.lock t.mu;
  let v =
    match Hashtbl.find_opt t.ewmas key with
    | None -> ms
    | Some old -> (0.7 *. old) +. (0.3 *. ms)
  in
  Hashtbl.replace t.ewmas key v;
  Mutex.unlock t.mu

(* The hedge trigger: the fleet median of the member EWMAs scaled by
   [factor], floored by [floor_ms]. 0 (no floor, no history yet) disables
   hedging for the build — with no signal there is nothing to call a
   straggler. *)
let threshold_ms t =
  Mutex.lock t.mu;
  let vals = Hashtbl.fold (fun _ v acc -> v :: acc) t.ewmas [] in
  Mutex.unlock t.mu;
  let median =
    match List.sort compare vals with
    | [] -> 0.
    | l -> List.nth l (List.length l / 2)
  in
  Float.max t.floor_ms (t.factor *. median)

(* --- speculative attempts ------------------------------------------------ *)

type 'a outcome = Done of 'a | Raised of exn

type 'a attempt = {
  at_flag : bool Atomic.t;        (* publication barrier for at_cell *)
  at_cell : 'a outcome option ref;
  at_ctx : Fault.ctx option;
  at_dom : unit Domain.t;
}

(* Losers outlive the query that hedged them: park their domains here and
   join the ones whose flag has flipped (then the join is immediate) on
   the next hedge; [at_exit] joins whatever is left so the process never
   exits under a running domain. *)
let orphans : (wait:bool -> bool) list ref = ref []
let orphans_mu = Mutex.create ()

let reap ~wait =
  Mutex.lock orphans_mu;
  let pending = !orphans in
  orphans := [];
  Mutex.unlock orphans_mu;
  let left = List.filter (fun try_join -> not (try_join ~wait)) pending in
  Mutex.lock orphans_mu;
  orphans := left @ !orphans;
  Mutex.unlock orphans_mu

let () = at_exit (fun () -> reap ~wait:true)

let orphan (a : 'a attempt) =
  let try_join ~wait =
    if wait || Atomic.get a.at_flag then begin
      Domain.join a.at_dom;
      true
    end
    else false
  in
  Mutex.lock orphans_mu;
  orphans := try_join :: !orphans;
  Mutex.unlock orphans_mu

let spawn parent f =
  let flag = Atomic.make false in
  let cell = ref None in
  let ctx = Option.map Fault.fork parent in
  let dom =
    Domain.spawn (fun () ->
        Fault.set_ctx ctx;
        let r = try Done (f ()) with e -> Raised e in
        cell := Some r;
        Atomic.set flag true)
  in
  { at_flag = flag; at_cell = cell; at_ctx = ctx; at_dom = dom }

let finished a = Atomic.get a.at_flag

let result_of a =
  match !(a.at_cell) with
  | Some r -> r
  | None -> Raised (Failure "hedge attempt finished without a result")

let poll_interval = 0.0003

let rec wait_first a b =
  if finished a || finished b then ()
  else begin
    Unix.sleepf poll_interval;
    wait_first a b
  end

let return_outcome = function Done v -> v | Raised e -> raise e

(* [run t ~key f] builds [f ()] with hedging: primary attempt on a fresh
   domain; past the threshold, one secondary; first finisher wins (a
   finisher that failed defers to the other attempt — a hedge must never
   make a build fail that could have succeeded). The winner's elapsed time
   feeds the EWMA. *)
let run t ~key f =
  reap ~wait:false;
  let threshold = threshold_ms t in
  if threshold <= 0. then f ()
  else begin
    let parent = Fault.get_ctx () in
    let t0 = Unix.gettimeofday () in
    match spawn parent f with
    | exception _ -> f () (* domain limit: fall back to the plain build *)
    | primary ->
      let arm_until = t0 +. (threshold /. 1000.) in
      while (not (finished primary)) && Unix.gettimeofday () < arm_until do
        Unix.sleepf poll_interval
      done;
      let settle winner loser v_or_e =
        note t key ((Unix.gettimeofday () -. t0) *. 1000.);
        Option.iter Fault.cancel_ctx loser.at_ctx;
        orphan loser;
        Domain.join winner.at_dom;
        return_outcome v_or_e
      in
      if finished primary then begin
        note t key ((Unix.gettimeofday () -. t0) *. 1000.);
        Domain.join primary.at_dom;
        return_outcome (result_of primary)
      end
      else begin
        Stats.add_hedges 1;
        match spawn parent f with
        | exception _ ->
          (* no domain for the hedge: wait the primary out *)
          while not (finished primary) do
            Unix.sleepf poll_interval
          done;
          Domain.join primary.at_dom;
          return_outcome (result_of primary)
        | secondary -> (
          wait_first primary secondary;
          let first, other =
            if finished primary then (primary, secondary)
            else (secondary, primary)
          in
          match result_of first with
          | Done _ as r -> settle first other r
          | Raised e -> (
            (* first finisher failed: the other attempt may still succeed *)
            while not (finished other) do
              Unix.sleepf poll_interval
            done;
            Domain.join first.at_dom;
            Domain.join other.at_dom;
            match result_of other with
            | Done _ as r ->
              note t key ((Unix.gettimeofday () -. t0) *. 1000.);
              return_outcome r
            | Raised _ -> raise e))
      end
  end
