(* Process-wide resilience totals, mirrored by the engine's proxy counters
   exactly like [Fault.errors_total]: the subsystems tick them where the
   event happens (a retry sleep, a hedge launch, a breaker-open skip, an
   admission shed), and [Counters.snapshot]/[Counters.reset] read/zero them
   through this one module so --stats and the server verbs agree. *)

let g_retries = Atomic.make 0
let g_hedges = Atomic.make 0
let g_breaker_open = Atomic.make 0
let g_shed = Atomic.make 0

let add_retries n = ignore (Atomic.fetch_and_add g_retries n)
let add_hedges n = ignore (Atomic.fetch_and_add g_hedges n)
let add_breaker_open n = ignore (Atomic.fetch_and_add g_breaker_open n)
let add_shed n = ignore (Atomic.fetch_and_add g_shed n)

let retries_total () = Atomic.get g_retries
let hedges_total () = Atomic.get g_hedges
let breaker_open_total () = Atomic.get g_breaker_open
let shed_total () = Atomic.get g_shed

let reset () =
  Atomic.set g_retries 0;
  Atomic.set g_hedges 0;
  Atomic.set g_breaker_open 0;
  Atomic.set g_shed 0
