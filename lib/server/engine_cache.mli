(** The plan-shape compiled-engine cache (prepare-once / run-many).

    Engines are keyed by (plan-shape fingerprint, domain count, batch
    size): {!Proteus_algebra.Fingerprint.parameterize} lifts comparison
    literals into parameter slots before keying, so queries that differ
    only in constants share one staged engine, and a hit re-binds the
    slots instead of re-staging closures.

    Invalidation: entries are dropped when any input dataset is updated
    ({!Proteus.Db.drop} / {!Proteus.Db.append} / re-registration), when the
    caching manager promotes one of their columns (the engine baked in the
    pre-promotion layout), and when the registry generation moves
    ([set_caching]). Quarantine: freshly staged engines install only after
    their first run ends clean; a cached engine whose run degrades or
    errors is evicted instead of reused. *)

open Proteus_model

type t

(** [create ?capacity db] also subscribes to [db]'s dataset-invalidation
    hook and the cache manager's promotion hook. [capacity] is the LRU
    bound on resident engines (default 64). *)
val create : ?capacity:int -> Proteus.Db.t -> t

(** A checked-out engine: holds the entry's run mutex from {!acquire}
    until {!release} — one session runs one engine at a time. *)
type lease

(** [acquire t plan] optimizes, parameterizes and keys [plan] (which must
    have no unbound user parameters), returning a hit lease (slots
    re-bound to this query's constants) or staging a fresh engine on miss.
    Compiles are serialized under the cache's compile lock (which is never
    held while touching the table, so invalidation hooks can fire from
    inside a compile). *)
val acquire : t -> ?domains:int -> ?batch_size:int -> Proteus_algebra.Plan.t -> lease

val run : lease -> Value.t

(** [release l ~clean] returns the engine: a clean miss installs it for
    reuse, an unclean run quarantines (miss) or evicts (hit) it. Must be
    called exactly once per lease, on any outcome. *)
val release : lease -> clean:bool -> unit

val hit : lease -> bool

(** Staging time paid by this lease (0 on a hit). *)
val compile_seconds : lease -> float

val invalidate_dataset : t -> string -> unit

val clear : t -> unit

type stats = {
  hits : int;
  misses : int;
  installs : int;
  evictions : int;      (** capacity pressure *)
  invalidations : int;  (** dataset updates, promotions, generation moves *)
  poisoned : int;       (** engines dropped because their run was unclean *)
  entries : int;
  compile_seconds : float;  (** cumulative staging time across misses *)
}

val stats : t -> stats

val pp_stats : Format.formatter -> stats -> unit
