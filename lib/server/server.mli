(** [proteus serve]: a line-protocol TCP front end over the {!Scheduler}.

    Protocol (LF-terminated lines, fixed-shape responses):
    - [ping] → [pong]
    - [param NAME=VALUE] → [ok] — accumulates a parameter for the next
      [run]; a bare [param VALUE] binds the next positional [?] (named
      ["1"], ["2"], …)
    - [timeout MS] → [ok] — deadline for the next [run], measured from
      submission
    - [run SQL] → [ok N] followed by [N] JSON result lines, or
      [err KIND: message] with kind one of [overloaded], [infeasible]
      (deadline shedding), [timeout], [cancelled], [error]
    - [stats] → one line with engine-cache, scheduler and resilience
      counters
    - [health] → one line: [ok] or [draining], scheduler depth/counters,
      and circuit-breaker states ([open=N half-open=N closed=N])
    - [quit] → [bye]

    Hardening: request lines are capped at 8 KiB (an oversized line gets
    one [err error:] reply and the connection closes); EPIPE mid-write and
    malformed input end only their own connection. SIGPIPE is ignored by
    {!serve}. Shutdown ([stop] flipping, e.g. from SIGTERM) drains queued
    and in-flight queries for up to [drain_timeout_ms] before cancelling
    the stragglers cooperatively. *)

open Proteus_model

type config = {
  host : string;
  port : int;                (** 0 binds an ephemeral port *)
  workers : int;             (** scheduler worker domains *)
  max_queue : int;           (** admission-control queue bound *)
  cache_capacity : int;      (** engine-cache LRU bound *)
  domains : int;             (** per-query morsel parallelism *)
  batch_size : int option;
  timeout_ms : int option;   (** default per-query deadline *)
  drain_timeout_ms : int;    (** graceful-shutdown budget for in-flight work *)
}

val default_config : config

(** [serve ?ready ?stop db cfg] blocks accepting connections until [stop]
    flips (checked every 200 ms); [ready] receives the bound port. One OS
    thread per connection; queries run on the scheduler's worker domains. *)
val serve : ?ready:(int -> unit) -> ?stop:bool Atomic.t -> Proteus.Db.t -> config -> unit

(** Parameter values as written on the wire / CLI: [null], [true]/[false],
    int, float, ['quoted string'] ([''] escapes a quote), else the raw
    string. *)
val parse_value : string -> Value.t

(** ["NAME=VALUE"] → [(name, value)]; a bare ["VALUE"] binds the next
    positional slot counted by [positional]. *)
val parse_param : positional:int ref -> string -> string * Value.t

(** Client helper: connect, run [f in_channel out_channel], close. *)
val with_connection :
  ?host:string -> port:int -> (in_channel -> out_channel -> 'a) -> 'a
