(** [proteus serve]: a line-protocol TCP front end over the {!Scheduler}.

    Protocol (LF-terminated lines, fixed-shape responses):
    - [ping] → [pong]
    - [param NAME=VALUE] → [ok] — accumulates a parameter for the next
      [run]; a bare [param VALUE] binds the next positional [?] (named
      ["1"], ["2"], …)
    - [timeout MS] → [ok] — deadline for the next [run], measured from
      submission
    - [run SQL] → [ok N] followed by [N] JSON result lines, or
      [err KIND: message] with kind one of [overloaded], [timeout],
      [cancelled], [error]
    - [stats] → one line with engine-cache and scheduler counters
    - [quit] → [bye] *)

open Proteus_model

type config = {
  host : string;
  port : int;                (** 0 binds an ephemeral port *)
  workers : int;             (** scheduler worker domains *)
  max_queue : int;           (** admission-control queue bound *)
  cache_capacity : int;      (** engine-cache LRU bound *)
  domains : int;             (** per-query morsel parallelism *)
  batch_size : int option;
  timeout_ms : int option;   (** default per-query deadline *)
}

val default_config : config

(** [serve ?ready ?stop db cfg] blocks accepting connections until [stop]
    flips (checked every 200 ms); [ready] receives the bound port. One OS
    thread per connection; queries run on the scheduler's worker domains. *)
val serve : ?ready:(int -> unit) -> ?stop:bool Atomic.t -> Proteus.Db.t -> config -> unit

(** Parameter values as written on the wire / CLI: [null], [true]/[false],
    int, float, ['quoted string'] ([''] escapes a quote), else the raw
    string. *)
val parse_value : string -> Value.t

(** ["NAME=VALUE"] → [(name, value)]; a bare ["VALUE"] binds the next
    positional slot counted by [positional]. *)
val parse_param : positional:int ref -> string -> string * Value.t

(** Client helper: connect, run [f in_channel out_channel], close. *)
val with_connection :
  ?host:string -> port:int -> (in_channel -> out_channel -> 'a) -> 'a
