(* The plan-shape engine cache: compiled engines keyed by what they were
   staged FOR rather than the query text — (plan-shape fingerprint, domain
   count, batch size). [Fingerprint.parameterize] lifts comparison literals
   into "~k" slots before keying, so queries differing only in constants
   share one compiled engine; a lookup hit re-binds the slots to the new
   constants and re-runs without re-staging a single closure.

   Concurrency protocol (lock order: compile mutex > entry mutex > cache
   mutex — outer locks may take inner ones, never the reverse):
   - [t.compile_mu] serializes the whole optimize/parameterize/stage path:
     the registry's lazily-built artifacts (structural indexes, cold
     statistics, source factories) are never built from two domains at
     once.
   - [t.mu] guards only the table, the counters and the per-dataset
     invalidation epochs, and is NEVER held across staging or a run:
     staging a selective engine can itself promote a column, and the
     promotion hook re-enters [invalidate_dataset] on the same thread —
     which must be free to take [t.mu].
   - each entry carries its own run mutex: a compiled engine owns cursor
     state and parameter slots, so one engine serves one query at a time;
     a second session hitting the same shape blocks on the entry, not on
     the cache.

   Quarantine (install-on-commit, mirroring the data-cache rule): a fresh
   compile is NOT installed at stage time. The caller runs it first and
   releases the lease with [~clean] reflecting the outcome; only a clean
   run (no errors recorded, no abort, inputs not invalidated meanwhile)
   installs the engine for reuse. A cached engine whose run comes back
   unclean is evicted on the spot — degraded runs never poison later
   sessions. *)

open Proteus_model
module Plan = Proteus_algebra.Plan
module Analysis = Proteus_algebra.Analysis
module Fingerprint = Proteus_algebra.Fingerprint
module Compiled = Proteus_engine.Compiled
module Registry = Proteus_plugin.Registry

type key = { k_shape : string; k_domains : int; k_batch : int }

type entry = {
  e_key : key;
  e_bound : Compiled.bound;
  e_datasets : string list;
  e_generation : int;  (* registry generation the engine was staged under *)
  e_inval : (string * int) list;
      (* per-dataset invalidation counts at stage time: vetoes the install
         of an in-flight engine whose input was dropped/appended/promoted
         while it was running *)
  e_mu : Mutex.t;  (* one run at a time per engine *)
  mutable e_stamp : int;  (* LRU clock *)
}

type stats = {
  hits : int;
  misses : int;
  installs : int;
  evictions : int;      (* capacity pressure *)
  invalidations : int;  (* dataset updates, promotions, generation moves *)
  poisoned : int;       (* engines dropped because their run was unclean *)
  entries : int;
  compile_seconds : float;  (* cumulative staging time across misses *)
}

type t = {
  db : Proteus.Db.t;
  capacity : int;
  compile_mu : Mutex.t;  (* serializes optimize + stage; never nested inside mu *)
  mu : Mutex.t;
  table : (key, entry) Hashtbl.t;
  inval : (string, int) Hashtbl.t;  (* dataset -> invalidation count *)
  mutable clock : int;
  mutable c_hits : int;
  mutable c_misses : int;
  mutable c_installs : int;
  mutable c_evictions : int;
  mutable c_invalidations : int;
  mutable c_poisoned : int;
  mutable c_compile : float;
}

let inval_count t ds = Option.value (Hashtbl.find_opt t.inval ds) ~default:0

let invalidate_dataset t ds =
  Mutex.lock t.mu;
  Hashtbl.replace t.inval ds (inval_count t ds + 1);
  let doomed =
    Hashtbl.fold
      (fun k e acc -> if List.mem ds e.e_datasets then (k, e) :: acc else acc)
      t.table []
  in
  List.iter
    (fun (k, _) ->
      Hashtbl.remove t.table k;
      t.c_invalidations <- t.c_invalidations + 1)
    doomed;
  Mutex.unlock t.mu

let create ?(capacity = 64) db =
  let t =
    {
      db;
      capacity = max 1 capacity;
      compile_mu = Mutex.create ();
      mu = Mutex.create ();
      table = Hashtbl.create 64;
      inval = Hashtbl.create 16;
      clock = 0;
      c_hits = 0;
      c_misses = 0;
      c_installs = 0;
      c_evictions = 0;
      c_invalidations = 0;
      c_poisoned = 0;
      c_compile = 0.;
    }
  in
  (* engines bake in the input layout, so both update paths and layout
     promotions (PR-6 zone maps / dictionaries) must drop affected plans *)
  Proteus.Db.on_invalidate db (fun ds -> invalidate_dataset t ds);
  Proteus_cache.Manager.set_on_promote (Proteus.Db.cache_manager db)
    (fun ds _path -> invalidate_dataset t ds);
  t

type lease = {
  l_cache : t;
  l_entry : entry;
  l_hit : bool;
  l_compile_seconds : float;
  mutable l_done : bool;
}

let hit l = l.l_hit
let compile_seconds l = l.l_compile_seconds

(* [acquire t plan] — [plan] is unoptimized and fully bound (no user
   parameters left). Returns a lease holding the entry's run mutex; the
   caller MUST [release] it (clean or not) when the run ends. *)
let acquire t ?(domains = 1) ?batch_size plan =
  (match Analysis.params plan with
  | [] -> ()
  | p :: _ ->
    Perror.plan_error "engine cache: unbound parameter ?%s in plan" p);
  let batch =
    match batch_size with Some b -> b | None -> Compiled.default_batch_size
  in
  let reg = Proteus.Db.registry t.db in
  Mutex.lock t.compile_mu;
  let lease, consts =
    Fun.protect
      ~finally:(fun () -> Mutex.unlock t.compile_mu)
      (fun () ->
        let plan =
          Proteus_optimizer.Optimizer.optimize (Proteus.Db.catalog t.db) plan
        in
        Plan.validate plan;
        let pplan, consts = Fingerprint.parameterize plan in
        let key =
          { k_shape = Fingerprint.plan pplan; k_domains = domains; k_batch = batch }
        in
        let gen = Registry.generation reg in
        let datasets = List.sort_uniq String.compare (Plan.datasets pplan) in
        (* table lookup under t.mu; the epoch snapshot is taken BEFORE
           staging so an invalidation racing the compile vetoes the install *)
        Mutex.lock t.mu;
        let cached =
          match Hashtbl.find_opt t.table key with
          | Some e when e.e_generation = gen ->
            t.c_hits <- t.c_hits + 1;
            t.clock <- t.clock + 1;
            e.e_stamp <- t.clock;
            Some e
          | Some _ ->
            (* staged under an older registry generation (set_caching flip,
               a registration the dataset hooks could not attribute) *)
            Hashtbl.remove t.table key;
            t.c_invalidations <- t.c_invalidations + 1;
            None
          | None -> None
        in
        let snapshot =
          match cached with
          | Some _ -> []
          | None ->
            t.c_misses <- t.c_misses + 1;
            List.map (fun ds -> (ds, inval_count t ds)) datasets
        in
        Mutex.unlock t.mu;
        let entry, was_hit, dt =
          match cached with
          | Some e -> (e, true, 0.)
          | None ->
            (* staged outside t.mu: compiling a selective predicate can
               promote a column, whose hook re-enters [invalidate_dataset]
               on this very thread *)
            let t0 = Unix.gettimeofday () in
            let bound =
              if domains > 1 then
                Compiled.prepare_bound_par ~batch_size:batch reg ~domains pplan
              else Compiled.prepare_bound ~batch_size:batch reg pplan
            in
            let dt = Unix.gettimeofday () -. t0 in
            Mutex.lock t.mu;
            t.c_compile <- t.c_compile +. dt;
            Mutex.unlock t.mu;
            ( {
                e_key = key;
                e_bound = bound;
                e_datasets = datasets;
                e_generation = gen;
                e_inval = snapshot;
                e_mu = Mutex.create ();
                e_stamp = 0;
              },
              false,
              dt )
        in
        ( { l_cache = t; l_entry = entry; l_hit = was_hit; l_compile_seconds = dt;
            l_done = false },
          consts ))
  in
  Mutex.lock lease.l_entry.e_mu;
  (* the engine's slots may still hold the previous session's constants *)
  Compiled.bind lease.l_entry.e_bound consts;
  lease

let run l = l.l_entry.e_bound.Compiled.bd_run ()

let release l ~clean =
  if not l.l_done then begin
    l.l_done <- true;
    let t = l.l_cache and e = l.l_entry in
    Mutex.lock t.mu;
    (if l.l_hit then begin
       if not clean then
         match Hashtbl.find_opt t.table e.e_key with
         | Some cur when cur == e ->
           Hashtbl.remove t.table e.e_key;
           t.c_poisoned <- t.c_poisoned + 1
         | _ -> ()
     end
     else if
       clean
       && e.e_generation = Registry.generation (Proteus.Db.registry t.db)
       && List.for_all (fun (ds, n) -> inval_count t ds = n) e.e_inval
       && not (Hashtbl.mem t.table e.e_key)
     then begin
       t.clock <- t.clock + 1;
       e.e_stamp <- t.clock;
       Hashtbl.replace t.table e.e_key e;
       t.c_installs <- t.c_installs + 1;
       while Hashtbl.length t.table > t.capacity do
         let victim =
           Hashtbl.fold
             (fun _ e acc ->
               match acc with
               | Some v when v.e_stamp <= e.e_stamp -> acc
               | _ -> Some e)
             t.table None
         in
         match victim with
         | Some v ->
           Hashtbl.remove t.table v.e_key;
           t.c_evictions <- t.c_evictions + 1
         | None -> ()
       done
     end
     else if not clean then t.c_poisoned <- t.c_poisoned + 1);
    Mutex.unlock t.mu;
    Mutex.unlock e.e_mu
  end

let stats t =
  Mutex.lock t.mu;
  let s =
    {
      hits = t.c_hits;
      misses = t.c_misses;
      installs = t.c_installs;
      evictions = t.c_evictions;
      invalidations = t.c_invalidations;
      poisoned = t.c_poisoned;
      entries = Hashtbl.length t.table;
      compile_seconds = t.c_compile;
    }
  in
  Mutex.unlock t.mu;
  s

let clear t =
  Mutex.lock t.mu;
  Hashtbl.reset t.table;
  Mutex.unlock t.mu

let pp_stats ppf s =
  Fmt.pf ppf
    "hits=%d misses=%d installs=%d evictions=%d invalidations=%d poisoned=%d \
     entries=%d compile_ms=%.3f"
    s.hits s.misses s.installs s.evictions s.invalidations s.poisoned s.entries
    (1000. *. s.compile_seconds)
