(** The session scheduler: concurrent queries over one shared session.

    A fixed fleet of worker domains drains bounded per-client queues in
    round-robin: each client id keeps FIFO order with itself, and a ring
    of clients with pending work rotates one job per turn — a client
    streaming a deep backlog delays a newcomer by at most one query per
    other client, not by its whole backlog. Admission control: at most
    [workers] queries in flight, at most [max_queue] waiting in total —
    beyond that {!submit} answers [`Overloaded] immediately. Deadlines are
    absolute from submit time (queue wait counts), enforced through the
    cooperative cancellation token at morsel/batch boundaries. Every query
    runs through the plan-shape {!Engine_cache}. *)

open Proteus_model

type t

(** [create ?workers ?max_queue ?cache_capacity db] spawns the worker
    domains (default 2) and the engine cache. [~workers:0] spawns none:
    jobs queue until {!drain_one} runs them on the calling thread — the
    deterministic mode the fairness tests use. *)
val create : ?workers:int -> ?max_queue:int -> ?cache_capacity:int -> Proteus.Db.t -> t

type request = {
  rq_sql : string;
  rq_params : (string * Value.t) list;
  rq_timeout_ms : int option;
  rq_domains : int;
  rq_batch_size : int option;
  rq_client : string;  (** round-robin fairness key; "" for anonymous *)
}

val request :
  ?params:(string * Value.t) list ->
  ?timeout_ms:int ->
  ?domains:int ->
  ?batch_size:int ->
  ?client:string ->
  string ->
  request

type completion = {
  cp_outcome : Proteus_engine.Executor.outcome;
  cp_hit : bool;                (** engine-cache hit *)
  cp_compile_seconds : float;   (** staging time paid by this query *)
  cp_wait_seconds : float;      (** queue wait *)
  cp_run_seconds : float;       (** parse + stage/bind + execute *)
}

type ticket

val submit : t -> request -> (ticket, [ `Overloaded | `Shutting_down ]) result

val await : ticket -> completion

(** [run t rq] is {!submit} + {!await} on the calling thread. *)
val run : t -> request -> (completion, [ `Overloaded | `Shutting_down ]) result

(** [drain_one t] pops the next job round-robin and runs it on the calling
    thread; [false] when nothing is queued. With [~workers:0] this drives
    the scheduler fully deterministically. *)
val drain_one : t -> bool

(** Stops accepting work, drains the queue, joins the workers. *)
val shutdown : t -> unit

val engine_cache : t -> Engine_cache.t

val db : t -> Proteus.Db.t

type stats = {
  submitted : int;
  rejected : int;
  completed : int;
  queued : int;
  workers : int;
  max_queue : int;
}

val stats : t -> stats

val pp_stats : Format.formatter -> stats -> unit
