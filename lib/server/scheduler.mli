(** The session scheduler: concurrent queries over one shared session.

    A fixed fleet of worker domains drains bounded per-client queues in
    round-robin: each client id keeps FIFO order with itself, and a ring
    of clients with pending work rotates one job per turn — a client
    streaming a deep backlog delays a newcomer by at most one query per
    other client, not by its whole backlog. Admission control: at most
    [workers] queries in flight, at most [max_queue] waiting in total —
    beyond that {!submit} answers [`Overloaded] immediately. Deadlines are
    absolute from submit time (queue wait counts), enforced through the
    cooperative cancellation token at morsel/batch boundaries. Every query
    runs through the plan-shape {!Engine_cache}. *)

open Proteus_model

type t

(** [create ?workers ?max_queue ?cache_capacity db] spawns the worker
    domains (default 2) and the engine cache. [~workers:0] spawns none:
    jobs queue until {!drain_one} runs them on the calling thread — the
    deterministic mode the fairness tests use. *)
val create : ?workers:int -> ?max_queue:int -> ?cache_capacity:int -> Proteus.Db.t -> t

type request = {
  rq_sql : string;
  rq_params : (string * Value.t) list;
  rq_timeout_ms : int option;
  rq_domains : int;
  rq_batch_size : int option;
  rq_client : string;  (** round-robin fairness key; "" for anonymous *)
}

val request :
  ?params:(string * Value.t) list ->
  ?timeout_ms:int ->
  ?domains:int ->
  ?batch_size:int ->
  ?client:string ->
  string ->
  request

type completion = {
  cp_outcome : Proteus_engine.Executor.outcome;
  cp_hit : bool;                (** engine-cache hit *)
  cp_compile_seconds : float;   (** staging time paid by this query *)
  cp_wait_seconds : float;      (** queue wait *)
  cp_run_seconds : float;       (** parse + stage/bind + execute *)
}

type ticket

exception Shutting_down
(** The [Failed] payload of a ticket flushed by a timed-out drain: the
    query never ran, and never will. *)

(** [`Infeasible]: the query carried a deadline the scheduler's queue-wait
    estimate (queued jobs x smoothed service time / workers) already
    exceeds — shed at submit instead of timing out after burning a slot.
    Never answered while the queue is empty or before the first completion
    seeds the estimate. *)
val submit :
  t -> request -> (ticket, [ `Overloaded | `Shutting_down | `Infeasible ]) result

val await : ticket -> completion

(** [run t rq] is {!submit} + {!await} on the calling thread. *)
val run :
  t ->
  request ->
  (completion, [ `Overloaded | `Shutting_down | `Infeasible ]) result

(** [drain_one t] pops the next job round-robin and runs it on the calling
    thread; [false] when nothing is queued. With [~workers:0] this drives
    the scheduler fully deterministically. *)
val drain_one : t -> bool

(** [shutdown ?drain_timeout_ms t] stops accepting work and joins the
    workers. Without a timeout the queue drains fully first (the historical
    contract). With one, queued + in-flight queries get up to
    [drain_timeout_ms] to finish; then still-queued jobs are flushed (their
    tickets resolve as [Failed (_, Shutting_down)] — {!await} never hangs)
    and in-flight queries are cancelled through their cooperative tokens. *)
val shutdown : ?drain_timeout_ms:int -> t -> unit

val engine_cache : t -> Engine_cache.t

val db : t -> Proteus.Db.t

type stats = {
  submitted : int;
  rejected : int;   (** queue-bound rejections ([`Overloaded]) *)
  shed : int;       (** deadline-infeasibility rejections ([`Infeasible]) *)
  completed : int;
  queued : int;
  running : int;    (** popped and not yet completed *)
  workers : int;
  max_queue : int;
  ewma_run_ms : float;  (** smoothed service time; 0 before any completion *)
}

val stats : t -> stats

val pp_stats : Format.formatter -> stats -> unit
