(* `proteus serve`: a line-protocol TCP front end over the scheduler.

   One OS thread per connection parses requests and blocks on scheduler
   tickets; the actual queries run on the scheduler's worker domains. The
   protocol is line-oriented (LF), with fixed-shape responses so shell
   clients (bash /dev/tcp, nc) can drive it:

     ping                  ->  pong
     param NAME=VALUE      ->  ok            (accumulates for the next run;
                                              positional ?s are named 1, 2, ...)
     timeout MS            ->  ok            (deadline for the next run)
     run SQL               ->  ok N          followed by N JSON result lines
                           |   err KIND: message
     stats                 ->  stats cache <counters> scheduler <counters>
                                 resilience <counters>
     health                ->  health <ok|draining> scheduler <counters>
                                 breakers open=N half-open=N closed=N
     quit                  ->  bye           (connection closes)

   [err] kinds: [overloaded] (admission control), [infeasible] (deadline
   shedding), [timeout], [cancelled], [error] (parse/plan/data errors).
   Params and timeout reset after every run.

   Hardening: request lines are capped (an oversized line gets one [err
   error:] reply and the connection closes), malformed input and EPIPE
   mid-write close only their own connection (SIGPIPE is ignored), and
   SIGTERM-initiated shutdown drains queued + in-flight queries up to
   [drain_timeout_ms] before cancelling the stragglers. *)

open Proteus_model
module Executor = Proteus_engine.Executor
module Registry = Proteus_plugin.Registry

(* Parameter values on the wire / CLI: null, true/false, int, float,
   'single-quoted string' ('' escapes a quote), else the raw string. *)
let parse_value s =
  let s = String.trim s in
  let n = String.length s in
  if n >= 2 && s.[0] = '\'' && s.[n - 1] = '\'' then begin
    let body = String.sub s 1 (n - 2) in
    let buf = Buffer.create (String.length body) in
    let i = ref 0 in
    while !i < String.length body do
      if body.[!i] = '\'' && !i + 1 < String.length body && body.[!i + 1] = '\''
      then begin
        Buffer.add_char buf '\'';
        i := !i + 2
      end
      else begin
        Buffer.add_char buf body.[!i];
        incr i
      end
    done;
    Value.String (Buffer.contents buf)
  end
  else
    match s with
    | "null" -> Value.Null
    | "true" -> Value.Bool true
    | "false" -> Value.Bool false
    | _ -> (
      match int_of_string_opt s with
      | Some i -> Value.Int i
      | None -> (
        match float_of_string_opt s with
        | Some f -> Value.Float f
        | None -> Value.String s))

(* "NAME=VALUE" -> (name, value); bare "VALUE" binds the next positional
   slot (?s are named "1", "2", ... in appearance order). *)
let parse_param ~positional s =
  match String.index_opt s '=' with
  | Some eq
    when eq > 0
         && String.for_all
              (fun c ->
                (c >= 'a' && c <= 'z')
                || (c >= 'A' && c <= 'Z')
                || (c >= '0' && c <= '9')
                || c = '_')
              (String.sub s 0 eq) ->
    (String.sub s 0 eq, parse_value (String.sub s (eq + 1) (String.length s - eq - 1)))
  | _ ->
    incr positional;
    (string_of_int !positional, parse_value s)

type config = {
  host : string;
  port : int;
  workers : int;
  max_queue : int;
  cache_capacity : int;
  domains : int;          (* per-query morsel parallelism *)
  batch_size : int option;
  timeout_ms : int option;  (* default per-query deadline *)
  drain_timeout_ms : int;   (* graceful-shutdown budget for in-flight work *)
}

let default_config =
  {
    host = "127.0.0.1";
    port = 7477;
    workers = 2;
    max_queue = 64;
    cache_capacity = 64;
    domains = 1;
    batch_size = None;
    timeout_ms = None;
    drain_timeout_ms = 2000;
  }

let one_line s =
  String.map (function '\n' | '\r' -> ' ' | c -> c) s

let result_lines v =
  match v with
  | Value.Coll (_, rows) ->
    List.map (fun r -> one_line (Proteus.Output.to_json r)) rows
  | v -> [ one_line (Proteus.Output.to_json v) ]

let exn_message e = one_line (Fmt.str "%a" Perror.pp_exn e)

let handle_run sched cfg ~client ~params ~timeout_ms sql out =
  let rq =
    Scheduler.request ~params
      ?timeout_ms:(match timeout_ms with Some _ as t -> t | None -> cfg.timeout_ms)
      ~domains:cfg.domains ?batch_size:cfg.batch_size ~client sql
  in
  match Scheduler.submit sched rq with
  | Error `Overloaded -> output_string out "err overloaded: queue full, retry later\n"
  | Error `Shutting_down -> output_string out "err error: server shutting down\n"
  | Error `Infeasible ->
    output_string out "err infeasible: deadline cannot be met, try later\n"
  | Ok ticket -> (
    let c = Scheduler.await ticket in
    match c.Scheduler.cp_outcome with
    | Executor.Completed (v, _) ->
      let lines = result_lines v in
      Printf.fprintf out "ok %d\n" (List.length lines);
      List.iter (fun l -> output_string out (l ^ "\n")) lines
    | Executor.Timed_out _ -> output_string out "err timeout: query deadline expired\n"
    | Executor.Cancelled _ -> output_string out "err cancelled: query was cancelled\n"
    | Executor.Failed (_, e) ->
      Printf.fprintf out "err error: %s\n" (exn_message e))

let resilience_line () =
  let module RS = Proteus_resilience.Stats in
  Fmt.str "shards-retried=%d shards-hedged=%d breaker-open=%d shed=%d"
    (RS.retries_total ()) (RS.hedges_total ()) (RS.breaker_open_total ())
    (RS.shed_total ())

let promotion_line db =
  let ps = Proteus.Db.cache_stats db in
  Fmt.str
    "promotions=%d zone-maps=%d dict-columns=%d sorted-projections=%d \
     slot-columns=%d"
    ps.Proteus_cache.Manager.promotions ps.zone_maps ps.dict_columns
    ps.sorted_projections ps.slot_columns

let engine_line () =
  let module C = Proteus_engine.Counters in
  let s = C.snapshot () in
  Fmt.str
    "morsels=%d morsels-skipped=%d sorted-seeks=%d probe-morsels-skipped=%d \
     slot-reads=%d"
    s.C.morsels s.C.morsels_skipped s.C.sorted_seeks s.C.probe_morsels_skipped
    s.C.slot_reads

let handle_stats sched out =
  let cs = Engine_cache.stats (Scheduler.engine_cache sched) in
  let ss = Scheduler.stats sched in
  Printf.fprintf out "stats cache %s scheduler %s resilience %s promotion %s engine %s\n"
    (Fmt.str "%a" Engine_cache.pp_stats cs)
    (Fmt.str "%a" Scheduler.pp_stats ss)
    (resilience_line ())
    (promotion_line (Scheduler.db sched))
    (engine_line ())

let handle_health sched ~draining out =
  let module B = Proteus_resilience.Breaker in
  let ss = Scheduler.stats sched in
  let states = Registry.breaker_states (Proteus.Db.registry (Scheduler.db sched)) in
  let count st = List.length (List.filter (fun (_, s) -> s = st) states) in
  Printf.fprintf out "health %s scheduler %s breakers open=%d half-open=%d closed=%d\n"
    (if Atomic.get draining then "draining" else "ok")
    (Fmt.str "%a" Scheduler.pp_stats ss)
    (count B.Open) (count B.Half_open) (count B.Closed)

let split_command line =
  match String.index_opt line ' ' with
  | None -> (line, "")
  | Some sp ->
    ( String.sub line 0 sp,
      String.trim (String.sub line (sp + 1) (String.length line - sp - 1)) )

(* Each connection is its own scheduler client: concurrent connections
   round-robin fairly instead of one backlog starving the rest. *)
let client_counter = Atomic.make 0

(* Request lines are read char-by-char into a capped buffer: a client
   streaming an unbounded line (no LF) cannot balloon server memory. *)
let max_request_line = 8192

type request_line = Line of string | Too_long | Eof

let read_request inc =
  let buf = Buffer.create 128 in
  let rec go () =
    match input_char inc with
    | exception End_of_file ->
      if Buffer.length buf = 0 then Eof else Line (Buffer.contents buf)
    | '\n' -> Line (Buffer.contents buf)
    | _ when Buffer.length buf >= max_request_line -> Too_long
    | c ->
      Buffer.add_char buf c;
      go ()
  in
  go ()

(* One connection, on its own thread. Any I/O failure — EPIPE mid-write
   (SIGPIPE is ignored in [serve]), an abrupt disconnect, a closed
   descriptor during drain — lands in the catch-all below and ends only
   this connection; the accept loop never sees it. *)
let handle_connection sched cfg ~draining fd =
  let inc = Unix.in_channel_of_descr fd in
  let out = Unix.out_channel_of_descr fd in
  let client = Fmt.str "conn-%d" (Atomic.fetch_and_add client_counter 1) in
  let params = ref [] in
  let positional = ref 0 in
  let timeout_ms = ref None in
  let quit = ref false in
  (try
     while not !quit do
       match read_request inc with
       | Eof -> quit := true
       | Too_long ->
         (* no resync point inside an oversized line: answer and close *)
         output_string out "err error: request line too long\n";
         flush out;
         quit := true
       | Line line ->
         let line = String.trim line in
         if line <> "" then begin
           let cmd, rest = split_command line in
           (match cmd with
           | "ping" -> output_string out "pong\n"
           | "param" -> (
             match parse_param ~positional rest with
             | p ->
               params := p :: !params;
               output_string out "ok\n"
             | exception _ -> output_string out "err error: bad param\n")
           | "timeout" -> (
             match int_of_string_opt rest with
             | Some ms when ms > 0 ->
               timeout_ms := Some ms;
               output_string out "ok\n"
             | _ -> output_string out "err error: timeout wants a positive integer\n")
           | "run" ->
             handle_run sched cfg ~client ~params:(List.rev !params)
               ~timeout_ms:!timeout_ms rest out;
             params := [];
             positional := 0;
             timeout_ms := None
           | "stats" -> handle_stats sched out
           | "health" -> handle_health sched ~draining out
           | "quit" ->
             output_string out "bye\n";
             quit := true
           | _ -> Printf.fprintf out "err protocol: unknown command %s\n" cmd);
           flush out
         end
     done
   with Sys_error _ | Unix.Unix_error _ -> ())

(* [serve ?ready ?stop db cfg] blocks accepting connections until [stop]
   flips (checked every 200 ms). [ready] receives the bound port — pass
   [port = 0] to bind an ephemeral one (tests).

   Shutdown is a graceful drain: stop accepting, give queued + in-flight
   queries up to [cfg.drain_timeout_ms] to finish (stragglers are then
   cancelled through their cooperative tokens and flushed), unblock any
   connection parked on a read, and join every connection thread. Finished
   connections are reaped continuously by the accept loop, so a long-lived
   server does not accumulate dead thread handles. *)
let serve ?ready ?stop db cfg =
  (* a peer closing mid-write must surface as EPIPE, not kill the process *)
  (try Sys.set_signal Sys.sigpipe Sys.Signal_ignore with Invalid_argument _ -> ());
  let sched =
    Scheduler.create ~workers:cfg.workers ~max_queue:cfg.max_queue
      ~cache_capacity:cfg.cache_capacity db
  in
  let sock = Unix.socket Unix.PF_INET Unix.SOCK_STREAM 0 in
  Unix.setsockopt sock Unix.SO_REUSEADDR true;
  Unix.bind sock (Unix.ADDR_INET (Unix.inet_addr_of_string cfg.host, cfg.port));
  Unix.listen sock 64;
  let port =
    match Unix.getsockname sock with
    | Unix.ADDR_INET (_, p) -> p
    | _ -> cfg.port
  in
  Option.iter (fun f -> f port) ready;
  Logs.app (fun m -> m "proteus server listening on %s:%d" cfg.host port);
  let stopped () = match stop with Some s -> Atomic.get s | None -> false in
  let draining = Atomic.make false in
  (* live connections: id -> (fd, thread, finished). The connection thread
     flips [finished]; the owner (this loop) joins and closes. *)
  let conns : (int, Unix.file_descr * Thread.t * bool Atomic.t) Hashtbl.t =
    Hashtbl.create 16
  in
  let conns_mu = Mutex.create () in
  let next_conn = ref 0 in
  let reap ~wait =
    let all =
      Mutex.lock conns_mu;
      let l = Hashtbl.fold (fun id c acc -> (id, c) :: acc) conns [] in
      Mutex.unlock conns_mu;
      l
    in
    List.iter
      (fun (id, (fd, th, finished)) ->
        if wait || Atomic.get finished then begin
          Thread.join th;
          (try Unix.close fd with Unix.Unix_error _ -> ());
          Mutex.lock conns_mu;
          Hashtbl.remove conns id;
          Mutex.unlock conns_mu
        end)
      all
  in
  while not (stopped ()) do
    (match Unix.select [ sock ] [] [] 0.2 with
    (* a signal (SIGTERM flipping [stop]) interrupts the select *)
    | exception Unix.Unix_error (Unix.EINTR, _, _) -> ()
    | [], _, _ -> ()
    | _ :: _, _, _ -> (
      match Unix.accept sock with
      | exception Unix.Unix_error ((Unix.EINTR | Unix.ECONNABORTED), _, _) -> ()
      | fd, _addr ->
        incr next_conn;
        let id = !next_conn in
        let finished = Atomic.make false in
        let th =
          Thread.create
            (fun () ->
              Fun.protect
                ~finally:(fun () -> Atomic.set finished true)
                (fun () -> handle_connection sched cfg ~draining fd))
            ()
        in
        Mutex.lock conns_mu;
        Hashtbl.replace conns id (fd, th, finished);
        Mutex.unlock conns_mu));
    reap ~wait:false
  done;
  Atomic.set draining true;
  (try Unix.close sock with Unix.Unix_error _ -> ());
  (* let queued + in-flight queries finish (bounded); connections blocked
     in [await] resolve here *)
  Scheduler.shutdown ~drain_timeout_ms:cfg.drain_timeout_ms sched;
  (* unblock connections parked on reads; their threads exit on EOF *)
  Mutex.lock conns_mu;
  Hashtbl.iter
    (fun _ (fd, _, _) ->
      try Unix.shutdown fd Unix.SHUTDOWN_ALL with Unix.Unix_error _ -> ())
    conns;
  Mutex.unlock conns_mu;
  reap ~wait:true

(* Test/CLI client helper: run [f] over a connected (input, output) channel
   pair, then close. *)
let with_connection ?(host = "127.0.0.1") ~port f =
  let sock = Unix.socket Unix.PF_INET Unix.SOCK_STREAM 0 in
  Unix.connect sock (Unix.ADDR_INET (Unix.inet_addr_of_string host, port));
  let inc = Unix.in_channel_of_descr sock in
  let out = Unix.out_channel_of_descr sock in
  Fun.protect
    ~finally:(fun () -> try Unix.close sock with Unix.Unix_error _ -> ())
    (fun () -> f inc out)
