(* `proteus serve`: a line-protocol TCP front end over the scheduler.

   One OS thread per connection parses requests and blocks on scheduler
   tickets; the actual queries run on the scheduler's worker domains. The
   protocol is line-oriented (LF), with fixed-shape responses so shell
   clients (bash /dev/tcp, nc) can drive it:

     ping                  ->  pong
     param NAME=VALUE      ->  ok            (accumulates for the next run;
                                              positional ?s are named 1, 2, ...)
     timeout MS            ->  ok            (deadline for the next run)
     run SQL               ->  ok N          followed by N JSON result lines
                           |   err KIND: message
     stats                 ->  stats cache <counters> scheduler <counters>
     quit                  ->  bye           (connection closes)

   [err] kinds: [overloaded] (admission control), [timeout], [cancelled],
   [error] (parse/plan/data errors). Params and timeout reset after every
   run. *)

open Proteus_model
module Executor = Proteus_engine.Executor

(* Parameter values on the wire / CLI: null, true/false, int, float,
   'single-quoted string' ('' escapes a quote), else the raw string. *)
let parse_value s =
  let s = String.trim s in
  let n = String.length s in
  if n >= 2 && s.[0] = '\'' && s.[n - 1] = '\'' then begin
    let body = String.sub s 1 (n - 2) in
    let buf = Buffer.create (String.length body) in
    let i = ref 0 in
    while !i < String.length body do
      if body.[!i] = '\'' && !i + 1 < String.length body && body.[!i + 1] = '\''
      then begin
        Buffer.add_char buf '\'';
        i := !i + 2
      end
      else begin
        Buffer.add_char buf body.[!i];
        incr i
      end
    done;
    Value.String (Buffer.contents buf)
  end
  else
    match s with
    | "null" -> Value.Null
    | "true" -> Value.Bool true
    | "false" -> Value.Bool false
    | _ -> (
      match int_of_string_opt s with
      | Some i -> Value.Int i
      | None -> (
        match float_of_string_opt s with
        | Some f -> Value.Float f
        | None -> Value.String s))

(* "NAME=VALUE" -> (name, value); bare "VALUE" binds the next positional
   slot (?s are named "1", "2", ... in appearance order). *)
let parse_param ~positional s =
  match String.index_opt s '=' with
  | Some eq
    when eq > 0
         && String.for_all
              (fun c ->
                (c >= 'a' && c <= 'z')
                || (c >= 'A' && c <= 'Z')
                || (c >= '0' && c <= '9')
                || c = '_')
              (String.sub s 0 eq) ->
    (String.sub s 0 eq, parse_value (String.sub s (eq + 1) (String.length s - eq - 1)))
  | _ ->
    incr positional;
    (string_of_int !positional, parse_value s)

type config = {
  host : string;
  port : int;
  workers : int;
  max_queue : int;
  cache_capacity : int;
  domains : int;          (* per-query morsel parallelism *)
  batch_size : int option;
  timeout_ms : int option;  (* default per-query deadline *)
}

let default_config =
  {
    host = "127.0.0.1";
    port = 7477;
    workers = 2;
    max_queue = 64;
    cache_capacity = 64;
    domains = 1;
    batch_size = None;
    timeout_ms = None;
  }

let one_line s =
  String.map (function '\n' | '\r' -> ' ' | c -> c) s

let result_lines v =
  match v with
  | Value.Coll (_, rows) ->
    List.map (fun r -> one_line (Proteus.Output.to_json r)) rows
  | v -> [ one_line (Proteus.Output.to_json v) ]

let exn_message e = one_line (Fmt.str "%a" Perror.pp_exn e)

let handle_run sched cfg ~client ~params ~timeout_ms sql out =
  let rq =
    Scheduler.request ~params
      ?timeout_ms:(match timeout_ms with Some _ as t -> t | None -> cfg.timeout_ms)
      ~domains:cfg.domains ?batch_size:cfg.batch_size ~client sql
  in
  match Scheduler.submit sched rq with
  | Error `Overloaded -> output_string out "err overloaded: queue full, retry later\n"
  | Error `Shutting_down -> output_string out "err error: server shutting down\n"
  | Ok ticket -> (
    let c = Scheduler.await ticket in
    match c.Scheduler.cp_outcome with
    | Executor.Completed (v, _) ->
      let lines = result_lines v in
      Printf.fprintf out "ok %d\n" (List.length lines);
      List.iter (fun l -> output_string out (l ^ "\n")) lines
    | Executor.Timed_out _ -> output_string out "err timeout: query deadline expired\n"
    | Executor.Cancelled _ -> output_string out "err cancelled: query was cancelled\n"
    | Executor.Failed (_, e) ->
      Printf.fprintf out "err error: %s\n" (exn_message e))

let handle_stats sched out =
  let cs = Engine_cache.stats (Scheduler.engine_cache sched) in
  let ss = Scheduler.stats sched in
  Printf.fprintf out "stats cache %s scheduler %s\n"
    (Fmt.str "%a" Engine_cache.pp_stats cs)
    (Fmt.str "%a" Scheduler.pp_stats ss)

let split_command line =
  match String.index_opt line ' ' with
  | None -> (line, "")
  | Some sp ->
    ( String.sub line 0 sp,
      String.trim (String.sub line (sp + 1) (String.length line - sp - 1)) )

(* Each connection is its own scheduler client: concurrent connections
   round-robin fairly instead of one backlog starving the rest. *)
let client_counter = Atomic.make 0

let handle_connection sched cfg fd =
  let inc = Unix.in_channel_of_descr fd in
  let out = Unix.out_channel_of_descr fd in
  let client = Fmt.str "conn-%d" (Atomic.fetch_and_add client_counter 1) in
  let params = ref [] in
  let positional = ref 0 in
  let timeout_ms = ref None in
  let quit = ref false in
  (try
     while not !quit do
       match input_line inc with
       | exception End_of_file -> quit := true
       | line -> (
         let line = String.trim line in
         if line <> "" then begin
           let cmd, rest = split_command line in
           (match cmd with
           | "ping" -> output_string out "pong\n"
           | "param" -> (
             match parse_param ~positional rest with
             | p ->
               params := p :: !params;
               output_string out "ok\n"
             | exception _ -> output_string out "err error: bad param\n")
           | "timeout" -> (
             match int_of_string_opt rest with
             | Some ms when ms > 0 ->
               timeout_ms := Some ms;
               output_string out "ok\n"
             | _ -> output_string out "err error: timeout wants a positive integer\n")
           | "run" ->
             handle_run sched cfg ~client ~params:(List.rev !params)
               ~timeout_ms:!timeout_ms rest out;
             params := [];
             positional := 0;
             timeout_ms := None
           | "stats" -> handle_stats sched out
           | "quit" ->
             output_string out "bye\n";
             quit := true
           | _ -> Printf.fprintf out "err protocol: unknown command %s\n" cmd);
           flush out
         end)
     done
   with Sys_error _ | Unix.Unix_error _ -> ());
  (try Unix.close fd with Unix.Unix_error _ -> ())

(* [serve ?ready ?stop db cfg] blocks accepting connections until [stop]
   flips (checked every 200 ms). [ready] receives the bound port — pass
   [port = 0] to bind an ephemeral one (tests). *)
let serve ?ready ?stop db cfg =
  let sched =
    Scheduler.create ~workers:cfg.workers ~max_queue:cfg.max_queue
      ~cache_capacity:cfg.cache_capacity db
  in
  let sock = Unix.socket Unix.PF_INET Unix.SOCK_STREAM 0 in
  Unix.setsockopt sock Unix.SO_REUSEADDR true;
  Unix.bind sock (Unix.ADDR_INET (Unix.inet_addr_of_string cfg.host, cfg.port));
  Unix.listen sock 64;
  let port =
    match Unix.getsockname sock with
    | Unix.ADDR_INET (_, p) -> p
    | _ -> cfg.port
  in
  Option.iter (fun f -> f port) ready;
  Logs.app (fun m -> m "proteus server listening on %s:%d" cfg.host port);
  let stopped () = match stop with Some s -> Atomic.get s | None -> false in
  let threads = ref [] in
  while not (stopped ()) do
    match Unix.select [ sock ] [] [] 0.2 with
    | [], _, _ -> ()
    | _ :: _, _, _ ->
      let fd, _addr = Unix.accept sock in
      threads := Thread.create (handle_connection sched cfg) fd :: !threads
  done;
  (try Unix.close sock with Unix.Unix_error _ -> ());
  List.iter Thread.join !threads;
  Scheduler.shutdown sched

(* Test/CLI client helper: run [f] over a connected (input, output) channel
   pair, then close. *)
let with_connection ?(host = "127.0.0.1") ~port f =
  let sock = Unix.socket Unix.PF_INET Unix.SOCK_STREAM 0 in
  Unix.connect sock (Unix.ADDR_INET (Unix.inet_addr_of_string host, port));
  let inc = Unix.in_channel_of_descr sock in
  let out = Unix.out_channel_of_descr sock in
  Fun.protect
    ~finally:(fun () -> try Unix.close sock with Unix.Unix_error _ -> ())
    (fun () -> f inc out)
