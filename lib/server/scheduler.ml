(* The session scheduler: concurrent queries over one shared session.

   A fixed fleet of worker domains drains a bounded FIFO queue — admission
   control is the queue bound (submissions beyond it are rejected with
   [Overloaded] instead of piling up latency) and the in-flight bound is
   the worker count. Each query runs under its own fault context
   ({!Proteus_model.Fault.install}, domain-local since PR-7) with an
   absolute deadline measured from SUBMIT time, so queue wait counts
   against the budget and a query that waited past its deadline is
   answered [Timed_out] without staging anything.

   Every query goes through the plan-shape engine cache: parse → bind user
   parameters → optimize/parameterize/key (serialized compiles) → run the
   leased engine → release with the outcome's cleanliness, which drives
   the cache's install/quarantine decision. Within-query parallelism
   ([domains > 1]) still serializes on the engine pool's global lock; the
   scheduler's concurrency is across serial engines. *)

open Proteus_model
module Executor = Proteus_engine.Executor
module Analysis = Proteus_algebra.Analysis

type request = {
  rq_sql : string;
  rq_params : (string * Value.t) list;
  rq_timeout_ms : int option;
  rq_domains : int;
  rq_batch_size : int option;
  rq_client : string;
}

let request ?(params = []) ?timeout_ms ?(domains = 1) ?batch_size ?(client = "")
    sql =
  { rq_sql = sql; rq_params = params; rq_timeout_ms = timeout_ms;
    rq_domains = domains; rq_batch_size = batch_size; rq_client = client }

type completion = {
  cp_outcome : Executor.outcome;
  cp_hit : bool;                (* engine-cache hit *)
  cp_compile_seconds : float;   (* staging time paid by this query *)
  cp_wait_seconds : float;      (* queue wait *)
  cp_run_seconds : float;       (* parse + stage/bind + execute *)
}

type ticket = {
  tk_mu : Mutex.t;
  tk_cond : Condition.t;
  mutable tk_result : completion option;
}

exception Shutting_down
(** The payload of a [Failed] completion for a job flushed by a drain that
    hit its timeout before the job could run. *)

type job = {
  jb_id : int;
  jb_req : request;
  jb_submitted : float;
  jb_ticket : ticket;
}

(* Per-client round-robin instead of one global FIFO: each client id has
   its own FIFO queue, and a ring of client ids with pending work rotates
   one job per turn. A client streaming a deep backlog still runs in order
   with itself, but can delay a newcomer by at most (clients - 1) queries —
   not by its whole backlog. The invariant: a client id sits in [ring]
   exactly once iff its queue is non-empty. *)
type t = {
  db : Proteus.Db.t;
  cache : Engine_cache.t;
  workers : int;
  max_queue : int;
  mu : Mutex.t;
  nonempty : Condition.t;
  queues : (string, job Queue.t) Hashtbl.t;
  ring : string Queue.t;
  mutable queued : int;   (* total jobs waiting, across clients *)
  mutable running : int;  (* jobs popped and not yet completed *)
  mutable stopping : bool;
  mutable doms : unit Domain.t list;
  mutable next_id : int;
  inflight : (int, Fault.ctx) Hashtbl.t;
      (* job id -> the running query's fault context, so a drain that hits
         its timeout can cancel in-flight work cooperatively *)
  mutable ewma_run_s : float;
      (* smoothed per-query service time; 0 until the first completion.
         Drives deadline-infeasibility shedding at submit. *)
  mutable c_submitted : int;
  mutable c_rejected : int;
  mutable c_completed : int;
  mutable c_shed : int;
}

let engine_cache t = t.cache
let db t = t.db

let deadline_of job =
  Option.map
    (fun ms -> job.jb_submitted +. (float_of_int ms /. 1000.))
    job.jb_req.rq_timeout_ms

(* One query, on a worker domain. Mirrors [Executor.run_guarded]'s outcome
   classification, but around a cache lease instead of a fresh compile. *)
let run_query t job =
  let rq = job.jb_req in
  let deadline = deadline_of job in
  match
    match deadline with
    | Some d when Unix.gettimeofday () > d ->
      (* expired in the queue: don't pay a compile for a dead query *)
      Executor.Timed_out Fault.empty_report, false, 0.
    | _ ->
      let plan = Proteus.Db.plan_sql t.db rq.rq_sql in
      let plan =
        if rq.rq_params = [] then plan
        else Analysis.bind_params rq.rq_params plan
      in
      (match Analysis.params plan with
      | [] -> ()
      | p :: _ ->
        Perror.plan_error "unbound parameter ?%s (send it with the query)" p);
      let lease =
        Engine_cache.acquire t.cache ~domains:rq.rq_domains
          ?batch_size:rq.rq_batch_size plan
      in
      let ctx = Fault.install ~policy:Fault.Fail_fast ?deadline () in
      Mutex.lock t.mu;
      Hashtbl.replace t.inflight job.jb_id ctx;
      Mutex.unlock t.mu;
      let outcome =
        Fun.protect
          ~finally:(fun () ->
            Mutex.lock t.mu;
            Hashtbl.remove t.inflight job.jb_id;
            Mutex.unlock t.mu;
            Fault.clear ())
          (fun () ->
            match Engine_cache.run lease with
            | v -> Executor.Completed (v, Fault.report ctx)
            | exception e ->
              let r = Fault.report ctx in
              (match e with
              | Fault.Timed_out | Fault.Cancelled ->
                if Fault.deadline_hit ctx then Executor.Timed_out r
                else if e = Fault.Timed_out then Executor.Timed_out r
                else Executor.Cancelled r
              | e -> Executor.Failed (r, e)))
      in
      let clean =
        match outcome with
        | Executor.Completed (_, r) -> r.Fault.rp_errors = 0
        | _ -> false
      in
      Engine_cache.release lease ~clean;
      (outcome, Engine_cache.hit lease, Engine_cache.compile_seconds lease)
  with
  | result -> result
  | exception e ->
    (* parse/resolve/plan errors surface as a failed outcome, never as a
       dead worker *)
    (Executor.Failed (Fault.empty_report, e), false, 0.)

(* Dequeue the next job round-robin (lock held): take the ring's front
   client, pop one of its jobs, and rotate it to the back iff it still has
   work. *)
let pop_next t =
  let client = Queue.pop t.ring in
  let q = Hashtbl.find t.queues client in
  let job = Queue.pop q in
  if Queue.is_empty q then Hashtbl.remove t.queues client
  else Queue.push client t.ring;
  t.queued <- t.queued - 1;
  (* counted as running from the pop, so a drain poll never sees the
     window between dequeue and execution as idle *)
  t.running <- t.running + 1;
  job

let run_job t job =
  let t_start = Unix.gettimeofday () in
  let outcome, hit, compile_s = run_query t job in
  let t_end = Unix.gettimeofday () in
  let completion =
    {
      cp_outcome = outcome;
      cp_hit = hit;
      cp_compile_seconds = compile_s;
      cp_wait_seconds = t_start -. job.jb_submitted;
      cp_run_seconds = t_end -. t_start;
    }
  in
  Mutex.lock t.mu;
  t.c_completed <- t.c_completed + 1;
  t.running <- t.running - 1;
  let run_s = completion.cp_run_seconds in
  t.ewma_run_s <-
    (if t.ewma_run_s = 0. then run_s
     else (0.8 *. t.ewma_run_s) +. (0.2 *. run_s));
  Mutex.unlock t.mu;
  let tk = job.jb_ticket in
  Mutex.lock tk.tk_mu;
  tk.tk_result <- Some completion;
  Condition.broadcast tk.tk_cond;
  Mutex.unlock tk.tk_mu

let worker t () =
  let rec loop () =
    Mutex.lock t.mu;
    while t.queued = 0 && not t.stopping do
      Condition.wait t.nonempty t.mu
    done;
    if t.queued = 0 then Mutex.unlock t.mu
    else begin
      let job = pop_next t in
      Mutex.unlock t.mu;
      run_job t job;
      loop ()
    end
  in
  loop ()

(* Pop and run one job on the calling thread; [false] when nothing waits.
   With [~workers:0] this makes scheduling fully deterministic — the
   fairness tests drive the round-robin one dequeue at a time. *)
let drain_one t =
  Mutex.lock t.mu;
  if t.queued = 0 then begin
    Mutex.unlock t.mu;
    false
  end
  else begin
    let job = pop_next t in
    Mutex.unlock t.mu;
    run_job t job;
    true
  end

let create ?(workers = 2) ?(max_queue = 64) ?cache_capacity db =
  let t =
    {
      db;
      cache = Engine_cache.create ?capacity:cache_capacity db;
      (* 0 workers = no domains: jobs queue until [drain_one] (tests) *)
      workers = max 0 workers;
      max_queue = max 1 max_queue;
      mu = Mutex.create ();
      nonempty = Condition.create ();
      queues = Hashtbl.create 8;
      ring = Queue.create ();
      queued = 0;
      running = 0;
      stopping = false;
      doms = [];
      next_id = 0;
      inflight = Hashtbl.create 8;
      ewma_run_s = 0.;
      c_submitted = 0;
      c_rejected = 0;
      c_completed = 0;
      c_shed = 0;
    }
  in
  t.doms <- List.init t.workers (fun _ -> Domain.spawn (worker t));
  t

(* Estimated queue wait (seconds) for a newcomer, lock held: jobs ahead of
   it, each costing one smoothed service time, spread over the workers. 0
   until the first completion seeds the EWMA. *)
let est_wait_s t =
  if t.ewma_run_s = 0. then 0.
  else float_of_int t.queued *. t.ewma_run_s /. float_of_int (max 1 t.workers)

let submit t rq =
  let job =
    { jb_id = 0; jb_req = rq; jb_submitted = Unix.gettimeofday ();
      jb_ticket =
        { tk_mu = Mutex.create (); tk_cond = Condition.create ();
          tk_result = None } }
  in
  Mutex.lock t.mu;
  let r =
    if t.stopping then Error `Shutting_down
    else if t.queued >= t.max_queue then begin
      t.c_rejected <- t.c_rejected + 1;
      Error `Overloaded
    end
    else if
      (* deadline-infeasibility shedding: when the expected queue wait
         alone already exceeds the query's whole budget, reject at submit
         instead of burning a slot on a corpse. Conservative by design:
         only sheds with a seeded service-time estimate and a non-empty
         queue, so an idle scheduler never refuses work. *)
      match rq.rq_timeout_ms with
      | Some ms -> t.queued > 0 && est_wait_s t *. 1000. > float_of_int ms
      | None -> false
    then begin
      t.c_shed <- t.c_shed + 1;
      Proteus_resilience.Stats.add_shed 1;
      Error `Infeasible
    end
    else begin
      t.c_submitted <- t.c_submitted + 1;
      t.next_id <- t.next_id + 1;
      let job = { job with jb_id = t.next_id } in
      let client = rq.rq_client in
      let q =
        match Hashtbl.find_opt t.queues client with
        | Some q -> q
        | None ->
          let q = Queue.create () in
          Hashtbl.replace t.queues client q;
          Queue.push client t.ring;
          q
      in
      Queue.push job q;
      t.queued <- t.queued + 1;
      Condition.broadcast t.nonempty;
      Ok job.jb_ticket
    end
  in
  Mutex.unlock t.mu;
  r

let await tk =
  Mutex.lock tk.tk_mu;
  while tk.tk_result = None do
    Condition.wait tk.tk_cond tk.tk_mu
  done;
  let r = Option.get tk.tk_result in
  Mutex.unlock tk.tk_mu;
  r

(* Blocking convenience: submit + await on the calling thread. *)
let run t rq =
  match submit t rq with
  | Ok tk -> Ok (await tk)
  | Error _ as e -> e

(* Timed-out drain: flush every still-queued job (its ticket resolves as
   [Failed (_, Shutting_down)] — never a hang) and fire the cancellation
   token of every in-flight query so workers come home at their next
   morsel/batch boundary. *)
let abort_pending t =
  Mutex.lock t.mu;
  let flushed =
    Hashtbl.fold
      (fun _ q acc -> Queue.fold (fun acc j -> j :: acc) acc q)
      t.queues []
  in
  Hashtbl.reset t.queues;
  Queue.clear t.ring;
  t.queued <- 0;
  Hashtbl.iter (fun _ ctx -> Fault.cancel_ctx ctx) t.inflight;
  Condition.broadcast t.nonempty;
  Mutex.unlock t.mu;
  List.iter
    (fun j ->
      let tk = j.jb_ticket in
      Mutex.lock tk.tk_mu;
      tk.tk_result <-
        Some
          {
            cp_outcome = Executor.Failed (Fault.empty_report, Shutting_down);
            cp_hit = false;
            cp_compile_seconds = 0.;
            cp_wait_seconds = Unix.gettimeofday () -. j.jb_submitted;
            cp_run_seconds = 0.;
          };
      Condition.broadcast tk.tk_cond;
      Mutex.unlock tk.tk_mu)
    flushed

let shutdown ?drain_timeout_ms t =
  Mutex.lock t.mu;
  t.stopping <- true;
  Condition.broadcast t.nonempty;
  Mutex.unlock t.mu;
  (match drain_timeout_ms with
  | None -> ()
  | Some ms ->
    (* graceful drain: let queued + in-flight work finish, but only up to
       the timeout — then flush the queue and cancel the stragglers *)
    let deadline = Unix.gettimeofday () +. (float_of_int ms /. 1000.) in
    let rec poll () =
      Mutex.lock t.mu;
      let busy = t.queued > 0 || t.running > 0 in
      Mutex.unlock t.mu;
      if busy then
        if Unix.gettimeofday () >= deadline then abort_pending t
        else begin
          Unix.sleepf 0.005;
          poll ()
        end
    in
    poll ());
  List.iter Domain.join t.doms;
  t.doms <- []

type stats = {
  submitted : int;
  rejected : int;
  shed : int;
  completed : int;
  queued : int;
  running : int;
  workers : int;
  max_queue : int;
  ewma_run_ms : float;
}

let stats t =
  Mutex.lock t.mu;
  let s =
    {
      submitted = t.c_submitted;
      rejected = t.c_rejected;
      shed = t.c_shed;
      completed = t.c_completed;
      queued = t.queued;
      running = t.running;
      workers = t.workers;
      max_queue = t.max_queue;
      ewma_run_ms = t.ewma_run_s *. 1000.;
    }
  in
  Mutex.unlock t.mu;
  s

let pp_stats ppf s =
  Fmt.pf ppf
    "submitted=%d rejected=%d shed=%d completed=%d queued=%d running=%d \
     workers=%d max_queue=%d"
    s.submitted s.rejected s.shed s.completed s.queued s.running s.workers
    s.max_queue;
  if s.ewma_run_ms > 0. then Fmt.pf ppf " ewma-run-ms=%.2f" s.ewma_run_ms
