open Proteus_model
module Plan = Proteus_algebra.Plan
module Json = Proteus_format.Json

type params = {
  json_objects : int;
  csv_rows : int;
  bin_rows : int;
  days : int;
  seed : int;
}

let default_params =
  { json_objects = 2_000; csv_rows = 15_000; bin_rows = 25_000; days = 100; seed = 7 }

type t = {
  params : params;
  json_text : string;
  csv_text : string;
  bin_records : Value.t list;
}

let url_type = Ptype.Record [ ("host", Ptype.String); ("clicks", Ptype.Int) ]

let json_type =
  Ptype.Record
    [
      ("mid", Ptype.Int);
      ("lang", Ptype.String);
      ("country", Ptype.String);
      ("ip", Ptype.String);
      ("bot", Ptype.String);
      ("size", Ptype.Int);
      ("day", Ptype.Int);
      ("score", Ptype.Float);
      ("urls", Ptype.Collection (Ptype.List, url_type));
    ]

let csv_type =
  Ptype.Record
    [
      ("mid", Ptype.Int);
      ("class_a", Ptype.Int);
      ("class_b", Ptype.Int);
      ("class_c", Ptype.Int);
      ("class_d", Ptype.Int);
      ("conf", Ptype.Float);
      ("conf2", Ptype.Float);
      ("day", Ptype.Int);
      ("label", Ptype.String);
      ("campaign", Ptype.String);
      ("digest", Ptype.String);
    ]

let bin_type =
  Ptype.Record
    [
      ("hid", Ptype.Int);
      ("mid", Ptype.Int);
      ("day", Ptype.Int);
      ("src", Ptype.Int);
      ("weight", Ptype.Float);
    ]

let json_name = "spam_json"
let csv_name = "spam_csv"
let bin_name = "spam_bin"

(* the same deterministic PRNG idiom as the TPC-H generator *)
module Rng = struct
  type t = { mutable s : int64 }

  let create seed = { s = Int64.of_int (if seed = 0 then 0x9E3779B9 else seed) }

  let next t =
    let x = t.s in
    let x = Int64.logxor x (Int64.shift_left x 13) in
    let x = Int64.logxor x (Int64.shift_right_logical x 7) in
    let x = Int64.logxor x (Int64.shift_left x 17) in
    t.s <- x;
    Int64.to_int (Int64.logand x 0x3FFFFFFFFFFFFFFFL)

  let int t bound = next t mod bound
  let pick t arr = arr.(int t (Array.length arr))
end

let langs = [| "en"; "es"; "ru"; "zh"; "pt"; "de"; "fr"; "ja"; "it"; "tr" |]

let countries =
  [| "us"; "cn"; "ru"; "br"; "in"; "de"; "vn"; "ua"; "kr"; "es"; "ro"; "pl" |]

let bots =
  [| "rustock"; "cutwail"; "grum"; "kelihos"; "lethic"; "festi"; "darkmailer" |]

let labels = [| "spam"; "spam-pharma"; "phish"; "scam"; "malware"; "newsletter" |]

let hosts = [| "pills.example"; "win.example"; "bank.example"; "luxury.example" |]

let generate ?(params = default_params) () =
  let rng = Rng.create params.seed in
  (* JSON: one object per mail, field order shuffled per object *)
  let json_buf = Buffer.create (1 lsl 16) in
  for mid = 1 to params.json_objects do
    let urls =
      List.init (Rng.int rng 4) (fun _ ->
          Json.Obj
            [ ("host", Json.Str (Rng.pick rng hosts));
              ("clicks", Json.Int (Rng.int rng 20)) ])
    in
    let fields =
      [|
        ("mid", Json.Int mid);
        ("lang", Json.Str (Rng.pick rng langs));
        ("country", Json.Str (Rng.pick rng countries));
        ( "ip",
          Json.Str
            (Fmt.str "%d.%d.%d.%d" (Rng.int rng 256) (Rng.int rng 256) (Rng.int rng 256)
               (Rng.int rng 256)) );
        ("bot", Json.Str (Rng.pick rng bots));
        ("size", Json.Int (200 + Rng.int rng 40_000));
        ("day", Json.Int (Rng.int rng params.days));
        ("score", Json.Float (float_of_int (Rng.int rng 101) /. 100.));
        ("urls", Json.Arr urls);
      |]
    in
    (* arbitrary field order, as in the real feed *)
    for i = Array.length fields - 1 downto 1 do
      let j = Rng.int rng (i + 1) in
      let tmp = fields.(i) in
      fields.(i) <- fields.(j);
      fields.(j) <- tmp
    done;
    Json.to_buffer json_buf (Json.Obj (Array.to_list fields));
    Buffer.add_char json_buf '\n'
  done;
  (* CSV: classification output *)
  let csv_records =
    List.init params.csv_rows (fun i ->
        ignore i;
        Value.record
          [
            ("mid", Value.Int (1 + Rng.int rng params.json_objects));
            ("class_a", Value.Int (Rng.int rng 20));
            ("class_b", Value.Int (Rng.int rng 8));
            ("class_c", Value.Int (Rng.int rng 50));
            ("class_d", Value.Int (Rng.int rng 5));
            ("conf", Value.Float (float_of_int (Rng.int rng 101) /. 100.));
            ("conf2", Value.Float (float_of_int (Rng.int rng 1001) /. 1000.));
            ("day", Value.Int (Rng.int rng params.days));
            ("label", Value.String (Rng.pick rng labels));
            ("campaign", Value.String (Fmt.str "cmp-%04d" (Rng.int rng 300)));
            ("digest", Value.String (Fmt.str "%08x%08x" (Rng.int rng 0x3FFFFFFF) (Rng.int rng 0x3FFFFFFF)));
          ])
  in
  let csv_text =
    Proteus_format.Csv.of_records Proteus_format.Csv.default_config
      (Schema.of_type csv_type) csv_records
  in
  (* binary history table *)
  let bin_records =
    List.init params.bin_rows (fun i ->
        Value.record
          [
            ("hid", Value.Int i);
            ("mid", Value.Int (1 + Rng.int rng params.json_objects));
            ("day", Value.Int (Rng.int rng params.days));
            ("src", Value.Int (Rng.int rng 6));
            ("weight", Value.Float (float_of_int (Rng.int rng 1001) /. 100.));
          ])
  in
  { params; json_text = Buffer.contents json_buf; csv_text; bin_records }

(* Both renderings are newline-delimited, one record per line, with no
   embedded newlines (no header, no quoted line breaks), so a contiguous
   line split reproduces the single-file row sequence exactly. *)
let split_lines_shards n text =
  let lines =
    match List.rev (String.split_on_char '\n' text) with
    | "" :: rest -> List.rev rest
    | all -> List.rev all
  in
  let len = List.length lines in
  let n = max 1 (min n (max 1 len)) in
  let base = len / n and extra = len mod n in
  let rec take k acc l =
    if k = 0 then (List.rev acc, l)
    else match l with [] -> (List.rev acc, []) | x :: r -> take (k - 1) (x :: acc) r
  in
  let rec go i l =
    if i = n then []
    else
      let sz = base + if i < extra then 1 else 0 in
      let part, rest = take sz [] l in
      (String.concat "\n" part ^ if part = [] then "" else "\n") :: go (i + 1) rest
  in
  go 0 lines

let json_shards t n = split_lines_shards n t.json_text
let csv_shards t n = split_lines_shards n t.csv_text

(* --- the 50-query workload -------------------------------------------------- *)

let f x n = Expr.Field (Expr.var x, n)

let count = Plan.agg ~name:"cnt" (Monoid.Primitive Monoid.Count) (Expr.int 1)

let sum name e = Plan.agg ~name (Monoid.Primitive Monoid.Sum) e

let mx name e = Plan.agg ~name (Monoid.Primitive Monoid.Max) e

let mn name e = Plan.agg ~name (Monoid.Primitive Monoid.Min) e

let avg name e = Plan.agg ~name (Monoid.Primitive Monoid.Avg) e

let scan_b = Plan.scan ~dataset:bin_name ~binding:"b" ()
let scan_c = Plan.scan ~dataset:csv_name ~binding:"c" ()
let scan_j = Plan.scan ~dataset:json_name ~binding:"j" ()

let join2 a b key_a key_b =
  Plan.join ~pred:Expr.(key_a ==. key_b) a b

let queries t =
  let days = t.params.days in
  let day_lt x frac =
    let k = max 1 (int_of_float (frac *. float_of_int days)) in
    Expr.(f x "day" <. int k)
  in
  let reduce ?pred aggs input = Plan.reduce ?pred aggs input in
  [
    (* --- BIN --- *)
    ("Q1", reduce ~pred:(day_lt "b" 0.10) [ count ] scan_b);
    ("Q2", reduce ~pred:(day_lt "b" 0.25) [ sum "w" (f "b" "weight") ] scan_b);
    ("Q3", reduce ~pred:Expr.(f "b" "src" ==. int 3) [ count ] scan_b);
    ( "Q4",
      reduce ~pred:(day_lt "b" 0.05)
        [ mx "w" (f "b" "weight"); count ]
        scan_b );
    ( "Q5",
      Plan.nest ~keys:[ ("src", f "b" "src") ] ~aggs:[ count ] ~binding:"g" scan_b );
    ( "Q6",
      Plan.nest ~pred:(day_lt "b" 0.25)
        ~keys:[ ("src", f "b" "src") ]
        ~aggs:[ sum "w" (f "b" "weight") ]
        ~binding:"g" scan_b );
    ("Q7", reduce ~pred:(day_lt "b" 0.10) [ avg "w" (f "b" "weight") ] scan_b);
    ("Q8", reduce ~pred:(day_lt "b" 0.01) [ count ] scan_b);
    (* --- CSV --- *)
    ("Q9", reduce ~pred:(day_lt "c" 0.25) [ count ] scan_c);
    ("Q10", reduce ~pred:(day_lt "c" 0.10) [ sum "cf" (f "c" "conf") ] scan_c);
    ("Q11", reduce ~pred:Expr.(f "c" "class_a" ==. int 5) [ count ] scan_c);
    ( "Q12",
      reduce
        ~pred:Expr.(Binop (Like, f "c" "label", str "spam%") &&& day_lt "c" 0.25)
        [ count ] scan_c );
    ( "Q13",
      Plan.nest
        ~keys:[ ("label", f "c" "label") ]
        ~aggs:[ count ] ~binding:"g" scan_c );
    ( "Q14",
      Plan.nest ~pred:(day_lt "c" 0.25)
        ~keys:[ ("class_a", f "c" "class_a") ]
        ~aggs:[ sum "cf" (f "c" "conf") ]
        ~binding:"g" scan_c );
    ( "Q15",
      reduce ~pred:(day_lt "c" 0.10)
        [ mx "hi" (f "c" "conf"); count; mn "lo" (f "c" "conf") ]
        scan_c );
    (* --- JSON --- *)
    ("Q16", reduce ~pred:(day_lt "j" 0.25) [ count ] scan_j);
    ("Q17", reduce ~pred:(day_lt "j" 0.10) [ sum "sz" (f "j" "size") ] scan_j);
    ("Q18", reduce ~pred:Expr.(f "j" "country" ==. str "us") [ count ] scan_j);
    ("Q19", reduce ~pred:(day_lt "j" 0.25) [ mx "sc" (f "j" "score") ] scan_j);
    ( "Q20",
      Plan.nest
        ~keys:[ ("wk", Expr.(Binop (Mod, f "j" "day", int 7))) ]
        ~aggs:[ count; sum "sz" (f "j" "size") ]
        ~binding:"g" scan_j );
    ("Q21", reduce ~pred:Expr.(f "j" "lang" ==. str "en") [ count ] scan_j);
    ( "Q22",
      reduce [ count ]
        (Plan.unnest
           ~pred:Expr.(f "u" "clicks" >. int 5)
           ~path:(f "j" "urls") ~binding:"u" scan_j) );
    ( "Q23",
      reduce
        [ sum "clk" (f "u" "clicks") ]
        (Plan.unnest ~pred:(day_lt "j" 0.10) ~path:(f "j" "urls") ~binding:"u" scan_j)
    );
    ( "Q24",
      reduce ~pred:(day_lt "j" 0.25)
        [ count; mx "sc" (f "j" "score"); sum "sz" (f "j" "size"); mn "lo" (f "j" "score") ]
        scan_j );
    ("Q25", reduce ~pred:Expr.(f "j" "score" >=. float 0.9) [ count ] scan_j);
    (* --- BIN ⋈ CSV --- *)
    ( "Q26",
      reduce ~pred:(day_lt "b" 0.05) [ count ]
        (join2 scan_b scan_c (f "b" "mid") (f "c" "mid")) );
    ( "Q27",
      reduce
        ~pred:Expr.(f "c" "class_a" ==. int 3)
        [ sum "w" (f "b" "weight") ]
        (join2 scan_b scan_c (f "b" "mid") (f "c" "mid")) );
    ( "Q28",
      reduce
        ~pred:Expr.(Binop (Like, f "c" "label", str "phi%"))
        [ count ]
        (join2 scan_b scan_c (f "b" "mid") (f "c" "mid")) );
    ( "Q29",
      reduce ~pred:(day_lt "b" 0.01) [ count ]
        (join2 scan_b scan_c (f "b" "mid") (f "c" "mid")) );
    ( "Q30",
      Plan.nest ~pred:(day_lt "c" 0.10)
        ~keys:[ ("src", f "b" "src") ]
        ~aggs:[ count ] ~binding:"g"
        (join2 scan_b scan_c (f "b" "mid") (f "c" "mid")) );
    (* --- BIN ⋈ JSON --- *)
    ( "Q31",
      reduce ~pred:(day_lt "j" 0.10) [ count ]
        (join2 scan_b scan_j (f "b" "mid") (f "j" "mid")) );
    ( "Q32",
      reduce
        ~pred:Expr.(f "j" "score" >=. float 0.8)
        [ mx "w" (f "b" "weight") ]
        (join2 scan_b scan_j (f "b" "mid") (f "j" "mid")) );
    ( "Q33",
      reduce
        ~pred:Expr.(f "b" "src" ==. int 2)
        [ sum "sz" (f "j" "size") ]
        (join2 scan_b scan_j (f "b" "mid") (f "j" "mid")) );
    ( "Q34",
      reduce ~pred:(day_lt "b" 0.25)
        [ count; mx "sc" (f "j" "score") ]
        (join2 scan_b scan_j (f "b" "mid") (f "j" "mid")) );
    ( "Q35",
      Plan.nest ~pred:(day_lt "j" 0.25)
        ~keys:[ ("src", f "b" "src") ]
        ~aggs:[ sum "sz" (f "j" "size") ]
        ~binding:"g"
        (join2 scan_b scan_j (f "b" "mid") (f "j" "mid")) );
    (* --- CSV ⋈ JSON --- *)
    ( "Q36",
      reduce ~pred:(day_lt "c" 0.10) [ count ]
        (join2 scan_c scan_j (f "c" "mid") (f "j" "mid")) );
    ( "Q37",
      reduce
        ~pred:Expr.(f "j" "score" >=. float 0.5)
        [ sum "cf" (f "c" "conf") ]
        (join2 scan_c scan_j (f "c" "mid") (f "j" "mid")) );
    ( "Q38",
      reduce
        ~pred:Expr.(f "c" "class_a" ==. int 1)
        [ mx "sc" (f "j" "score") ]
        (join2 scan_c scan_j (f "c" "mid") (f "j" "mid")) );
    ( "Q39",
      (* the outlier: a broad CSV ⋈ JSON join — systems whose optimizer
         treats JSON as opaque pick a nested-loop plan here *)
      reduce ~pred:(day_lt "c" 0.25) [ count ]
        (join2 scan_c scan_j (f "c" "mid") (f "j" "mid")) );
    ( "Q40",
      Plan.nest ~pred:(day_lt "j" 0.10)
        ~keys:[ ("class_b", f "c" "class_b") ]
        ~aggs:[ count ] ~binding:"g"
        (join2 scan_c scan_j (f "c" "mid") (f "j" "mid")) );
    (* --- BIN ⋈ CSV ⋈ JSON --- *)
    ( "Q41",
      reduce ~pred:(day_lt "b" 0.10) [ count ]
        (join2
           (join2 scan_b scan_c (f "b" "mid") (f "c" "mid"))
           scan_j (f "b" "mid") (f "j" "mid")) );
    ( "Q42",
      reduce
        ~pred:Expr.(f "j" "score" >=. float 0.5)
        [ sum "w" (f "b" "weight") ]
        (join2
           (join2 scan_b scan_c (f "b" "mid") (f "c" "mid"))
           scan_j (f "b" "mid") (f "j" "mid")) );
    ( "Q43",
      reduce
        ~pred:Expr.(f "b" "src" ==. int 1)
        [ mx "cf" (f "c" "conf") ]
        (join2
           (join2 scan_b scan_c (f "b" "mid") (f "c" "mid"))
           scan_j (f "b" "mid") (f "j" "mid")) );
    ( "Q44",
      reduce ~pred:(day_lt "j" 0.05) [ count ]
        (join2
           (join2 scan_b scan_c (f "b" "mid") (f "c" "mid"))
           scan_j (f "b" "mid") (f "j" "mid")) );
    ( "Q45",
      Plan.nest
        ~keys:[ ("src", f "b" "src") ]
        ~aggs:[ count ] ~binding:"g"
        (join2
           (join2 scan_b scan_c (f "b" "mid") (f "c" "mid"))
           scan_j (f "b" "mid") (f "j" "mid")) );
    ( "Q46",
      reduce
        ~pred:Expr.(f "c" "class_a" <. int 5)
        [ sum "sz" (f "j" "size") ]
        (join2
           (join2 scan_b scan_c (f "b" "mid") (f "c" "mid"))
           scan_j (f "b" "mid") (f "j" "mid")) );
    ( "Q47",
      reduce ~pred:(day_lt "b" 0.25)
        [ count; mx "sc" (f "j" "score"); sum "w" (f "b" "weight") ]
        (join2
           (join2 scan_b scan_c (f "b" "mid") (f "c" "mid"))
           scan_j (f "b" "mid") (f "j" "mid")) );
    ( "Q48",
      reduce
        ~pred:
          Expr.(
            Binop (Like, f "c" "label", str "spam%") &&& (f "j" "score" >=. float 0.7))
        [ count ]
        (join2
           (join2 scan_b scan_c (f "b" "mid") (f "c" "mid"))
           scan_j (f "b" "mid") (f "j" "mid")) );
    ( "Q49",
      Plan.nest ~pred:(day_lt "c" 0.10)
        ~keys:[ ("class_b", f "c" "class_b") ]
        ~aggs:[ sum "w" (f "b" "weight") ]
        ~binding:"g"
        (join2
           (join2 scan_b scan_c (f "b" "mid") (f "c" "mid"))
           scan_j (f "b" "mid") (f "j" "mid")) );
    ( "Q50",
      reduce ~pred:(day_lt "b" 0.01) [ count ]
        (join2
           (join2 scan_b scan_c (f "b" "mid") (f "c" "mid"))
           scan_j (f "b" "mid") (f "j" "mid")) );
  ]

let group_of name =
  let n = int_of_string (String.sub name 1 (String.length name - 1)) in
  if n <= 8 then "BIN"
  else if n <= 15 then "CSV"
  else if n <= 25 then "JSON"
  else if n <= 30 then "BinCSV"
  else if n <= 35 then "BinJSON"
  else if n <= 40 then "CSVJSON"
  else "BINCSVJSON"
