(** A synthetic reimplementation of the Symantec spam-analysis workload of
    Section 7.2.

    The real input is proprietary (spam-trap e-mail telemetry), so this
    module generates data with the same roles, shapes and access patterns:

    - a {b JSON} batch of spam reports — one object per e-mail with id,
      language, origin (ip, country), responsible bot, size, day, score and
      an embedded array of advertised URLs; field order varies per object
      (so Proteus' structural index stays in its flexible mode, as with the
      real feed);
    - a {b CSV} file with the classification workflow's output per mail
      (classes per criterion, confidence, label);
    - a {b binary} database table of historical per-mail records.

    [queries] is the 50-query analysis sequence of Figure 14, grouped per
    dataset combination exactly like the paper's x-axis: Q1–Q8 BIN, Q9–Q15
    CSV, Q16–Q25 JSON, Q26–Q30 BIN⋈CSV, Q31–Q35 BIN⋈JSON, Q36–Q40 CSV⋈JSON
    (Q39 is the join the paper isolates as PostgreSQL's nested-loop
    outlier), Q41–Q50 all three. Selections, 2- and 3-way joins, unnests,
    groupings and aggregates; projectivity 1–9 fields; selectivity ~1–25%. *)

open Proteus_model

type params = {
  json_objects : int;
  csv_rows : int;
  bin_rows : int;
  days : int;    (** the day dimension all selectivities key on *)
  seed : int;
}

val default_params : params
(** 2 000 JSON objects, 15 000 CSV rows, 25 000 binary rows, 100 days. *)

type t = {
  params : params;
  json_text : string;
  csv_text : string;
  bin_records : Value.t list;
}

val generate : ?params:params -> unit -> t

val json_type : Ptype.t
val csv_type : Ptype.t
val bin_type : Ptype.t

(** Dataset names the query plans reference. *)
val json_name : string   (** "spam_json" *)

val csv_name : string    (** "spam_csv" *)

val bin_name : string    (** "spam_bin" *)

(** Sharded renderings: the same newline-delimited text split into [n]
    contiguous pieces (order preserved, sizes differing by at most one) —
    inputs for {!Proteus.Db.register_sharded_json} /
    [register_sharded_csv]. *)
val json_shards : t -> int -> string list

val csv_shards : t -> int -> string list

(** The 50 queries, in order, with their identifiers ("Q1".."Q50"). *)
val queries : t -> (string * Proteus_algebra.Plan.t) list

(** [group_of "Q17"] is the Figure 14 x-axis group label ("JSON"). *)
val group_of : string -> string
