open Proteus_model
open Proteus_storage
open Proteus_catalog
module Registry = Proteus_plugin.Registry
module Manager = Proteus_cache.Manager
module Executor = Proteus_engine.Executor

type t = {
  catalog : Catalog.t;
  registry : Registry.t;
  cache : Manager.t;
  (* observers of dataset-level invalidation (register / drop / append);
     the server's engine cache subscribes to drop compiled plans whose
     inputs changed *)
  hooks : (string -> unit) list ref;
}

type engine = Proteus_engine.Executor.engine =
  | Engine_compiled
  | Engine_volcano
  | Engine_parallel of int

(* ~domains:n is sugar for Engine_parallel n over the default engine; an
   explicitly chosen engine wins *)
let resolve_engine engine domains =
  match engine, domains with
  | Engine_compiled, Some n when n > 1 -> Engine_parallel n
  | engine, _ -> engine

let create ?cache_budget ?(caching = Manager.default_config) () =
  let catalog = Catalog.create ?cache_budget () in
  let cache = Manager.create ~config:caching catalog in
  let registry = Registry.create ~cache:(Manager.iface cache) catalog in
  (* promotion-time slot columns: a hot JSON path materializes into a typed
     cache column straight from the format index the moment it promotes
     (registered first, so later hooks — e.g. the server's engine-cache
     invalidation — observe the already-materialized layout) *)
  Manager.set_on_promote cache (fun dataset path ->
      Registry.materialize_field registry ~dataset ~path);
  { catalog; registry; cache; hooks = ref [] }

let catalog t = t.catalog
let registry t = t.registry
let cache_manager t = t.cache
let cache_stats t = Manager.stats t.cache

let on_invalidate t f = t.hooks := f :: !(t.hooks)

let notify_invalidate t name = List.iter (fun f -> f name) (List.rev !(t.hooks))

let set_caching ?(clear = false) t enabled =
  if clear then Manager.clear t.cache;
  Registry.set_cache t.registry
    (if enabled then Manager.iface t.cache else Proteus_plugin.Cache_iface.disabled)

let register t d =
  Catalog.register t.catalog d;
  Registry.invalidate t.registry d.Dataset.name;
  notify_invalidate t d.Dataset.name;
  List.iter
    (fun parent ->
      Manager.invalidate_dataset t.cache ~dataset:parent;
      notify_invalidate t parent)
    (Registry.shard_parents t.registry d.Dataset.name)

let register_csv t ~name ?(config = Proteus_format.Csv.default_config) ~element
    ~contents () =
  let blob = name ^ ".csv" in
  Memory.register_blob (Catalog.memory t.catalog) ~name:blob contents;
  register t
    (Dataset.make ~name ~format:(Dataset.Csv config) ~location:(Dataset.Blob blob)
       ~element)

let register_csv_file t ~name ?(config = Proteus_format.Csv.default_config) ~element
    ~path () =
  register t
    (Dataset.make ~name ~format:(Dataset.Csv config) ~location:(Dataset.File path)
       ~element)

let register_json t ~name ~element ~contents =
  let blob = name ^ ".json" in
  Memory.register_blob (Catalog.memory t.catalog) ~name:blob contents;
  register t
    (Dataset.make ~name ~format:Dataset.Json ~location:(Dataset.Blob blob) ~element)

let register_json_inferred t ~name ~contents =
  let element = Typeinfer.of_json contents in
  register_json t ~name ~element ~contents;
  element

let register_csv_inferred t ~name ?(config = Proteus_format.Csv.default_config)
    ~contents () =
  let config = { config with Proteus_format.Csv.has_header = true } in
  let element = Typeinfer.of_csv ~config contents in
  register_csv t ~name ~config ~element ~contents ();
  element

let register_json_file t ~name ~element ~path =
  register t
    (Dataset.make ~name ~format:Dataset.Json ~location:(Dataset.File path) ~element)

let register_rows t ~name ~element records =
  let schema = Schema.of_type element in
  register t
    (Dataset.make ~name ~format:Dataset.Binary_row
       ~location:(Dataset.Rows (Rowpage.of_records schema records))
       ~element)

let register_columns t ~name ~element cols =
  register t
    (Dataset.make ~name ~format:Dataset.Binary_column ~location:(Dataset.Columns cols)
       ~element)

let register_columns_of t ~name ~element records =
  let schema = Schema.of_type element in
  let cols =
    List.map
      (fun (f : Schema.field) ->
        ( f.name,
          Column.of_values f.ty
            (List.map
               (fun r ->
                 match Value.field_opt r f.name with Some v -> v | None -> Value.Null)
               records) ))
      (Schema.fields schema)
  in
  register_columns t ~name ~element cols

(* Invalidation must also reach shard sets containing [name]: the registry
   already drops their concatenated indexes, but plan caches and the
   server's engine cache key on the parent's dataset name. *)
let invalidate_shard_parents t name =
  List.iter
    (fun parent ->
      Manager.invalidate_dataset t.cache ~dataset:parent;
      notify_invalidate t parent)
    (Registry.shard_parents t.registry name)

let drop t name =
  Catalog.remove t.catalog name;
  Registry.invalidate t.registry name;
  Manager.invalidate_dataset t.cache ~dataset:name;
  notify_invalidate t name;
  invalidate_shard_parents t name

let append t ~name contents =
  let d = Catalog.find t.catalog name in
  let blob =
    match d.Dataset.location with
    | Dataset.Blob b -> b
    | Dataset.File path ->
      (* pull the file through the memory manager once, then keep the
         appended image as a blob under the same name *)
      let current = Memory.load_file (Catalog.memory t.catalog) path in
      Memory.register_blob (Catalog.memory t.catalog) ~name:path current;
      path
    | Dataset.Rows _ | Dataset.Columns _ ->
      Perror.plan_error "dataset %s has no appendable byte image" name
  in
  let mem = Catalog.memory t.catalog in
  let current = Memory.contents mem blob in
  Memory.register_blob mem ~name:blob (current ^ contents);
  (* drop and rebuild affected auxiliary structures (Section 4) *)
  Registry.invalidate t.registry name;
  Manager.invalidate_dataset t.cache ~dataset:name;
  notify_invalidate t name;
  invalidate_shard_parents t name

(* {2 Shard sets} *)

let register_shard_set t ~name ~members =
  Registry.register_shard_set t.registry ~name ~members;
  Manager.invalidate_dataset t.cache ~dataset:name;
  notify_invalidate t name

let add_shard t ~name ~member =
  Registry.add_shard t.registry ~name ~member;
  Manager.invalidate_dataset t.cache ~dataset:name;
  notify_invalidate t name

let shard_member_name name i = Fmt.str "%s__s%d" name i

let register_sharded_csv t ~name ?config ~element ~shards () =
  let members =
    List.mapi
      (fun i contents ->
        let m = shard_member_name name i in
        register_csv t ~name:m ?config ~element ~contents ();
        m)
      shards
  in
  register_shard_set t ~name ~members

let register_sharded_json t ~name ~element ~shards =
  let members =
    List.mapi
      (fun i contents ->
        let m = shard_member_name name i in
        register_json t ~name:m ~element ~contents;
        m)
      shards
  in
  register_shard_set t ~name ~members

(* Contiguous n-way split, sizes differing by at most one (the leading
   chunks take the remainder), preserving record order — so the
   concatenated shard set enumerates exactly the input sequence. *)
let chunks n l =
  let len = List.length l in
  let n = max 1 (min n (max 1 len)) in
  let base = len / n and extra = len mod n in
  let rec take k acc l =
    if k = 0 then (List.rev acc, l)
    else match l with [] -> (List.rev acc, []) | x :: r -> take (k - 1) (x :: acc) r
  in
  let rec go i l =
    if i = n then []
    else
      let sz = base + if i < extra then 1 else 0 in
      let part, rest = take sz [] l in
      part :: go (i + 1) rest
  in
  go 0 l

let register_sharded_rows t ~name ~element ~shards records =
  let members =
    List.mapi
      (fun i part ->
        let m = shard_member_name name i in
        register_rows t ~name:m ~element part;
        m)
      (chunks shards records)
  in
  register_shard_set t ~name ~members

(* Column resolution against registered schemas: a column belongs to the
   unique table alias whose dataset's element type has a field of that
   name. *)
let resolver t : Proteus_lang.Sql.resolver =
 fun ~aliases ~column ->
  let owners =
    List.filter
      (fun (_, ds) ->
        match Catalog.find_opt t.catalog ds with
        | Some d -> (
          match d.Dataset.element with
          | Ptype.Record fields -> List.mem_assoc column fields
          | _ -> false)
        | None -> false)
      aliases
  in
  match owners with
  | [ (alias, _) ] -> Some alias
  | [] | _ :: _ :: _ -> ( match aliases with [ (a, _) ] -> Some a | _ -> None)

(* Substitute the given parameter values and insist nothing is left over:
   an engine staged over a dangling [Expr.Param] would read [Value.Null]
   from its unbound slot, which is a silent wrong answer for a one-shot
   query (prepare-once flows bind slots explicitly instead). *)
let bind_all params plan =
  let plan =
    if params = [] then plan
    else Proteus_algebra.Analysis.bind_params params plan
  in
  (match Proteus_algebra.Analysis.params plan with
  | [] -> ()
  | p :: _ -> Perror.plan_error "unbound parameter ?%s (pass it via ~params)" p);
  plan

let run_plan ?(engine = Executor.Engine_compiled) ?domains ?batch_size ?(optimize = true)
    ?(params = []) t plan =
  let engine = resolve_engine engine domains in
  let plan = bind_all params plan in
  let plan = if optimize then Proteus_optimizer.Optimizer.optimize t.catalog plan else plan in
  Executor.run ?batch_size t.registry ~engine plan

let of_calc t calc = Proteus_optimizer.Optimizer.plan_of_calculus t.catalog calc

(* ORDER BY / LIMIT: the calculus is a bag world, so ordering applies as a
   Sort operator over the translated plan. Keys naming output columns read
   the root binding's record; other key expressions are computed alongside
   the select list as hidden fields and projected away again. *)
let wrap_ordering t (stmt : Proteus_lang.Sql.statement) =
  let plan = of_calc t stmt.Proteus_lang.Sql.body in
  (* HAVING: a selection over the grouped output records *)
  let plan =
    match stmt.Proteus_lang.Sql.having, plan with
    | None, _ -> plan
    | Some pred, Proteus_algebra.Plan.Nest { keys; aggs; binding; _ } ->
      let names =
        List.map fst keys
        @ List.map (fun (a : Proteus_algebra.Plan.agg) -> a.agg_name) aggs
      in
      let resolved =
        List.fold_left
          (fun e n ->
            if List.mem n names then Expr.subst n (Expr.path binding [ n ]) e else e)
          pred (Expr.free_vars pred)
      in
      Proteus_algebra.Plan.select resolved plan
    | Some _, _ -> Perror.plan_error "HAVING requires GROUP BY"
  in
  match stmt.Proteus_lang.Sql.order_by, stmt.Proteus_lang.Sql.limit with
  | [], None -> plan
  | order_by, limit -> (
    let module Plan = Proteus_algebra.Plan in
    let sort_over ~binding ~names input rebuild =
      (* resolve each key: output-column marker or hidden computed field *)
      let hidden = ref [] in
      let keys =
        List.mapi
          (fun i (e, d) ->
            match e with
            | Expr.Var n when List.mem n names -> (Expr.path binding [ n ], d)
            | e ->
              let h = Fmt.str "__ord%d" i in
              hidden := (h, e) :: !hidden;
              (Expr.path binding [ h ], d))
          order_by
      in
      rebuild (List.rev !hidden) (fun inner -> Plan.sort ?limit ~keys inner) input
    in
    match plan with
    | Plan.Reduce
        {
          monoid_output = [ { monoid = Monoid.Collection Ptype.Bag; expr; _ } ];
          pred;
          input;
        } ->
      (* plain SELECT: stream → project row records → sort *)
      let fields =
        match expr with
        | Expr.Record_ctor fs -> fs
        | e ->
          let last_segment = function
            | Expr.Field (_, n) -> Some n
            | Expr.Var n -> Some n
            | _ -> None
          in
          [ (Option.value (last_segment e) ~default:"value", e) ]
      in
      let names = List.map fst fields in
      let filtered =
        match pred with
        | Expr.Const (Value.Bool true) -> input
        | pred -> Plan.select pred input
      in
      sort_over ~binding:"row" ~names filtered (fun hidden mk_sort inner ->
          let projected =
            Plan.project ~binding:"row" ~fields:(fields @ hidden) inner
          in
          let sorted = mk_sort projected in
          if hidden = [] then sorted
          else
            (* drop the hidden sort keys from the visible output *)
            Plan.project ~binding:"row"
              ~fields:(List.map (fun n -> (n, Expr.path "row" [ n ])) names)
              sorted)
    | Plan.Nest { keys = gkeys; aggs; binding; _ }
    | Plan.Select { input = Plan.Nest { keys = gkeys; aggs; binding; _ }; _ } ->
      let names =
        List.map fst gkeys @ List.map (fun (a : Plan.agg) -> a.agg_name) aggs
      in
      sort_over ~binding ~names plan (fun hidden mk_sort inner ->
          if hidden <> [] then
            Perror.unsupported
              "ORDER BY over a GROUP BY query must reference output columns";
          mk_sort inner)
    | _ ->
      Perror.unsupported "ORDER BY/LIMIT requires a row-returning statement")

let sql ?(engine = Executor.Engine_compiled) ?domains ?batch_size ?(params = []) t q =
  let engine = resolve_engine engine domains in
  let stmt = Proteus_lang.Sql.parse_statement ~resolve:(resolver t) q in
  Executor.run ?batch_size t.registry ~engine (bind_all params (wrap_ordering t stmt))

let comprehension ?(engine = Executor.Engine_compiled) ?domains ?batch_size
    ?(params = []) t q =
  let engine = resolve_engine engine domains in
  let calc = Proteus_lang.Comprehension.parse q in
  Executor.run ?batch_size t.registry ~engine (bind_all params (of_calc t calc))

type outcome = Proteus_engine.Executor.outcome =
  | Completed of Value.t * Fault.report
  | Failed of Fault.report * exn
  | Timed_out of Fault.report
  | Cancelled of Fault.report

let run_plan_guarded ?(engine = Executor.Engine_compiled) ?domains ?batch_size
    ?policy ?max_errors ?timeout_ms ?(optimize = true) ?(params = []) t plan =
  let engine = resolve_engine engine domains in
  let plan = bind_all params plan in
  let plan =
    if optimize then Proteus_optimizer.Optimizer.optimize t.catalog plan else plan
  in
  Executor.run_guarded ?batch_size ?policy ?max_errors ?timeout_ms t.registry
    ~engine plan

let sql_guarded ?(engine = Executor.Engine_compiled) ?domains ?batch_size ?policy
    ?max_errors ?timeout_ms ?(params = []) t q =
  let engine = resolve_engine engine domains in
  let stmt = Proteus_lang.Sql.parse_statement ~resolve:(resolver t) q in
  Executor.run_guarded ?batch_size ?policy ?max_errors ?timeout_ms t.registry
    ~engine (bind_all params (wrap_ordering t stmt))

let comprehension_guarded ?(engine = Executor.Engine_compiled) ?domains ?batch_size
    ?policy ?max_errors ?timeout_ms ?(params = []) t q =
  let engine = resolve_engine engine domains in
  let calc = Proteus_lang.Comprehension.parse q in
  Executor.run_guarded ?batch_size ?policy ?max_errors ?timeout_ms t.registry
    ~engine (bind_all params (of_calc t calc))

let plan_sql t q = wrap_ordering t (Proteus_lang.Sql.parse_statement ~resolve:(resolver t) q)

let plan_comprehension t q = of_calc t (Proteus_lang.Comprehension.parse q)

type prepared = { compile_seconds : float; run : unit -> Value.t }

let prepare_compiled ?(domains = 1) ?batch_size t plan =
  if domains > 1 then Proteus_engine.Compiled.prepare_par ?batch_size t.registry ~domains plan
  else Proteus_engine.Compiled.prepare ?batch_size t.registry plan

(* A staged engine snapshots registry state — cache iface, structural
   indexes, cached columns — at prepare time. The registry's generation
   stamp moves on every dataset registration/drop/append and on
   [set_caching], so comparing it before each run tells us the snapshot
   went stale: re-stage against the same plan and keep going. Arena
   evictions within a generation do NOT re-stage: an engine holding an
   evicted column keeps reading its (still-correct) copy until the next
   generation bump. *)
let staged ?domains ?batch_size t ~t0 plan =
  let stage () = prepare_compiled ?domains ?batch_size t plan in
  let cell = ref (Registry.generation t.registry, stage ()) in
  let compile_seconds = Unix.gettimeofday () -. t0 in
  let run () =
    let gen = Registry.generation t.registry in
    let seen, r = !cell in
    let r =
      if seen = gen then r
      else begin
        let r = stage () in
        cell := (gen, r);
        r
      end
    in
    r ()
  in
  { compile_seconds; run }

let prepare_plan ?domains ?batch_size ?(params = []) t plan =
  let t0 = Unix.gettimeofday () in
  let plan = bind_all params plan in
  let plan = Proteus_optimizer.Optimizer.optimize t.catalog plan in
  Proteus_algebra.Plan.validate plan;
  staged ?domains ?batch_size t ~t0 plan

let prepare_sql ?domains ?batch_size ?(params = []) t q =
  let t0 = Unix.gettimeofday () in
  let stmt = Proteus_lang.Sql.parse_statement ~resolve:(resolver t) q in
  let plan = bind_all params (wrap_ordering t stmt) in
  Proteus_algebra.Plan.validate plan;
  staged ?domains ?batch_size t ~t0 plan

let prepare_comprehension ?domains ?batch_size ?params t q =
  let calc = Proteus_lang.Comprehension.parse q in
  prepare_plan ?domains ?batch_size ?params t
    (Proteus_calculus.To_algebra.run (Proteus_calculus.Normalize.run calc))

let refresh_stats t =
  List.iter
    (fun name ->
      Proteus_catalog.Stats.clear (Catalog.stats t.catalog name);
      Registry.invalidate t.registry name;
      (* re-accessing rebuilds the source and re-collects cold statistics *)
      ignore (Registry.source t.registry name))
    (Catalog.names t.catalog)
