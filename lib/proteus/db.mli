(** A Proteus session: the single query interface over heterogeneous data
    the paper promises.

    Register datasets of any supported format, then ask SQL (flat,
    relational) or comprehension (nested) queries; each query runs through
    the full pipeline — parse → calculus normalization → nested relational
    algebra → rule- and cost-based optimization → cache matching → engine
    generation (closure compilation) → execution — and the session's caching
    manager adapts the storage to the workload as a side effect.

    {[
      let db = Proteus.Db.create () in
      Proteus.Db.register_json db ~name:"sailors" ~element:... ~contents;
      Proteus.Db.sql db "SELECT COUNT(*) FROM sailors WHERE age > 30"
    ]} *)

open Proteus_model
open Proteus_storage
open Proteus_catalog

type t

(** [create ()] — [caching] defaults to enabled with the paper's policies;
    [cache_budget] is the arena size in bytes. *)
val create :
  ?cache_budget:int -> ?caching:Proteus_cache.Manager.config -> unit -> t

val catalog : t -> Catalog.t
val registry : t -> Proteus_plugin.Registry.t
val cache_manager : t -> Proteus_cache.Manager.t

(** Snapshot of the session's cache activity — hit/store counts plus the
    segmented-fill totals (commits, segments blit-assembled, rows
    materialized) that show how cold runs populated the caches. *)
val cache_stats : t -> Proteus_cache.Manager.stats

(** Switch caching on/off mid-session (existing caches are kept unless
    [clear] is passed). Moves the registry generation, so prepared
    statements re-stage on their next run and the server's engine cache
    stops serving engines staged against the old cache interface. *)
val set_caching : ?clear:bool -> t -> bool -> unit

(** [on_invalidate db f] registers [f dataset] to run whenever a dataset's
    derived structures are dropped ([register] over an existing name,
    {!drop}, {!append}). The server's compiled-engine cache subscribes to
    evict plans whose inputs changed. *)
val on_invalidate : t -> (string -> unit) -> unit

(** {1 Dataset registration} *)

val register_csv :
  t ->
  name:string ->
  ?config:Proteus_format.Csv.config ->
  element:Ptype.t ->
  contents:string ->
  unit ->
  unit

val register_csv_file :
  t ->
  name:string ->
  ?config:Proteus_format.Csv.config ->
  element:Ptype.t ->
  path:string ->
  unit ->
  unit

val register_json : t -> name:string -> element:Ptype.t -> contents:string -> unit

(** [register_json_inferred db ~name ~contents] infers the element type
    from the data ({!Typeinfer.of_json}) and returns it. *)
val register_json_inferred : t -> name:string -> contents:string -> Ptype.t

(** [register_csv_inferred db ~name ~contents ()] — the CSV must carry a
    header row; returns the inferred element type. *)
val register_csv_inferred :
  t ->
  name:string ->
  ?config:Proteus_format.Csv.config ->
  contents:string ->
  unit ->
  Ptype.t

val register_json_file : t -> name:string -> element:Ptype.t -> path:string -> unit

(** [register_rows db ~name ~element records] packs boxed records into the
    binary row format. *)
val register_rows : t -> name:string -> element:Ptype.t -> Value.t list -> unit

(** [register_columns db ~name ~element cols] registers binary columns. *)
val register_columns :
  t -> name:string -> element:Ptype.t -> (string * Column.t) list -> unit

(** [register_columns_of db ~name ~element records] builds the columns from
    boxed records. *)
val register_columns_of : t -> name:string -> element:Ptype.t -> Value.t list -> unit

(** {1 Shard sets}

    A dataset may be registered as a {e shard set}: an ordered list of
    member datasets (each its own file and plug-in instance) queried as one
    concatenated table. Scans fan out over shards as the outer dispense
    unit and merge in member order, so results are bit-identical to a
    single file holding the same rows; the engine prunes shards whose
    zone-map/Bloom digests prove a pushed-down conjunct empty (DESIGN.md
    section 14). Re-registering, dropping, or appending to a member
    invalidates every containing shard set's derived structures. *)

(** [register_shard_set db ~name ~members] registers [name] over the
    already-registered [members] (which must share one element type). *)
val register_shard_set : t -> name:string -> members:string list -> unit

(** [add_shard db ~name ~member] appends one more registered dataset to a
    shard set. *)
val add_shard : t -> name:string -> member:string -> unit

(** [register_sharded_csv db ~name ~element ~shards ()] registers each
    contents string in [shards] as a CSV member dataset
    ([name__s0], [name__s1], …) and the shard set [name] over them. *)
val register_sharded_csv :
  t ->
  name:string ->
  ?config:Proteus_format.Csv.config ->
  element:Ptype.t ->
  shards:string list ->
  unit ->
  unit

(** [register_sharded_json db ~name ~element ~shards] — same for JSON
    member contents. *)
val register_sharded_json :
  t -> name:string -> element:Ptype.t -> shards:string list -> unit

(** [register_sharded_rows db ~name ~element ~shards records] splits the
    records into [shards] contiguous binary-row members (sizes differing by
    at most one, order preserved) and registers the shard set. *)
val register_sharded_rows :
  t -> name:string -> element:Ptype.t -> shards:int -> Value.t list -> unit

(** [drop db name] unregisters a dataset and invalidates its indexes and
    caches (the paper's update handling). *)
val drop : t -> string -> unit

(** [append db ~name contents] appends raw bytes to a blob-backed CSV or
    JSON dataset — the append-like workloads of Section 4. Affected
    auxiliary structures (structural indexes, caches) are dropped and
    rebuilt on the next access, exactly as the paper prescribes for
    updates. Raises [Perror.Plan_error] for datasets without a raw byte
    image. *)
val append : t -> name:string -> string -> unit

(** {1 Querying} *)

type engine = Proteus_engine.Executor.engine =
  | Engine_compiled
  | Engine_volcano
  | Engine_parallel of int
      (** the specialized engine, morsel-parallel over N OCaml domains *)

(** [sql db q] parses, optimizes, compiles and runs a SQL statement.
    Unqualified columns resolve against the registered schemas.

    [domains] (default 1) runs the specialized engine with morsel-driven
    parallel execution over that many OCaml domains; [~domains:1] is
    exactly the serial engine, and an explicit [engine] takes precedence
    over [domains].

    [batch_size] (default {!Proteus_engine.Compiled.default_batch_size})
    sizes the specialized engine's vectorized lane; [0] disables it
    (pure tuple-at-a-time execution). Results are identical either way.

    [params] binds query parameters ([?] positional — named ["1"], ["2"], …
    in appearance order — or [$name]). Raises [Perror.Plan_error] if any
    parameter is left unbound. *)
val sql :
  ?engine:engine ->
  ?domains:int ->
  ?batch_size:int ->
  ?params:(string * Value.t) list ->
  t ->
  string ->
  Value.t

(** [comprehension db q] — same for the [for {...} yield ...] syntax. *)
val comprehension :
  ?engine:engine ->
  ?domains:int ->
  ?batch_size:int ->
  ?params:(string * Value.t) list ->
  t ->
  string ->
  Value.t

(** [run_plan db plan] optimizes and runs an already-built algebra plan. *)
val run_plan :
  ?engine:engine ->
  ?domains:int ->
  ?batch_size:int ->
  ?optimize:bool ->
  ?params:(string * Value.t) list ->
  t ->
  Proteus_algebra.Plan.t ->
  Value.t

(** {1 Guarded (fault-tolerant) querying}

    The [_guarded] variants run under a per-query error policy
    ({!Proteus_model.Fault.policy}) instead of failing on the first data
    error: [Skip_row] drops rows whose required fields fail to parse,
    [Null_fill] substitutes [Null] for unreadable fields, and the default
    [Fail_fast] is exactly the plain entry point's semantics but returning
    [Failed] instead of raising. The outcome carries a structured error
    report (counts, first error samples with byte positions, per-source
    breakdown). [max_errors] bounds the recoverable errors absorbed before
    the query aborts; [timeout_ms] sets a cooperative deadline checked at
    morsel/batch boundaries — on a parallel engine, one worker's failure or
    an expired deadline stops its peers within one morsel. *)

type outcome = Proteus_engine.Executor.outcome =
  | Completed of Value.t * Proteus_model.Fault.report
  | Failed of Proteus_model.Fault.report * exn
  | Timed_out of Proteus_model.Fault.report
  | Cancelled of Proteus_model.Fault.report

val sql_guarded :
  ?engine:engine ->
  ?domains:int ->
  ?batch_size:int ->
  ?policy:Proteus_model.Fault.policy ->
  ?max_errors:int ->
  ?timeout_ms:int ->
  ?params:(string * Value.t) list ->
  t ->
  string ->
  outcome

val comprehension_guarded :
  ?engine:engine ->
  ?domains:int ->
  ?batch_size:int ->
  ?policy:Proteus_model.Fault.policy ->
  ?max_errors:int ->
  ?timeout_ms:int ->
  ?params:(string * Value.t) list ->
  t ->
  string ->
  outcome

val run_plan_guarded :
  ?engine:engine ->
  ?domains:int ->
  ?batch_size:int ->
  ?policy:Proteus_model.Fault.policy ->
  ?max_errors:int ->
  ?timeout_ms:int ->
  ?optimize:bool ->
  ?params:(string * Value.t) list ->
  t ->
  Proteus_algebra.Plan.t ->
  outcome

(** [plan_sql db q] is the optimized physical plan (EXPLAIN). *)
val plan_sql : t -> string -> Proteus_algebra.Plan.t

val plan_comprehension : t -> string -> Proteus_algebra.Plan.t

(** {1 Prepared queries}

    [prepare_*] separates engine generation from execution, as the paper
    reports them separately (LLVM compilation is ~50 ms per query there;
    closure staging here is far cheaper). The prepared thunk can run
    repeatedly; every run re-scans the inputs.

    Staleness: the staged engine snapshots registry state at prepare time.
    Each run compares the registry's generation stamp (moved by dataset
    registration, {!drop}, {!append} and {!set_caching}) and transparently
    re-stages when it changed, so a prepared statement observes dataset
    updates and caching-mode flips. Cache-arena evictions within a
    generation keep the snapshot: the engine retains its (still-correct)
    column copies until the next generation bump. *)

type prepared = {
  compile_seconds : float;  (** time spent generating this query's engine *)
  run : unit -> Value.t;
}

val prepare_sql :
  ?domains:int -> ?batch_size:int -> ?params:(string * Value.t) list -> t -> string -> prepared

val prepare_comprehension :
  ?domains:int -> ?batch_size:int -> ?params:(string * Value.t) list -> t -> string -> prepared

(** [prepare_plan db plan] optimizes and compiles an algebra plan.
    [domains] > 1 prepares the morsel-parallel engine. *)
val prepare_plan :
  ?domains:int ->
  ?batch_size:int ->
  ?params:(string * Value.t) list ->
  t ->
  Proteus_algebra.Plan.t ->
  prepared

(** [refresh_stats db] re-collects statistics for every registered dataset —
    the paper's idle-time statistics daemon, exposed as an explicit hook. *)
val refresh_stats : t -> unit
