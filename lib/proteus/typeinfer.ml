open Proteus_model
module Json = Proteus_format.Json
module Csv = Proteus_format.Csv

(* The inference lattice: Bot joins with anything (a null or an empty
   array), and [opt] records that an actual null / missing field was seen. *)
type ity =
  | Bot
  | Prim of Ptype.t            (* Int, Float, Bool, String, Date *)
  | Arr of ity
  | Obj of (string * field) list  (* insertion-ordered *)

and field = { mutable ity : ity; mutable opt : bool; mutable seen : int }

let rec join a b =
  match a, b with
  | Bot, t | t, Bot -> t
  | Prim Ptype.Int, Prim Ptype.Float | Prim Ptype.Float, Prim Ptype.Int ->
    Prim Ptype.Float
  | Prim x, Prim y when Ptype.equal x y -> a
  | Arr x, Arr y -> Arr (join x y)
  | Obj fa, Obj fb ->
    (* union of fields; a field absent on one side becomes optional *)
    let merged = ref (List.map (fun (n, f) -> (n, f)) fa) in
    let names_a = List.map fst fa in
    List.iter
      (fun (n, f) ->
        match List.assoc_opt n !merged with
        | Some g ->
          g.ity <- join g.ity f.ity;
          g.opt <- g.opt || f.opt;
          g.seen <- g.seen + f.seen
        | None -> merged := !merged @ [ (n, f) ])
      fb;
    ignore names_a;
    Obj !merged
  | a, b ->
    let rec pp = function
      | Bot -> "null"
      | Prim t -> Ptype.to_string t
      | Arr t -> "[" ^ pp t ^ "]"
      | Obj _ -> "{...}"
    in
    Perror.type_error "cannot unify inferred types %s and %s" (pp a) (pp b)

let rec of_jvalue (j : Json.t) : ity =
  match j with
  | Json.Null -> Bot
  | Json.Bool _ -> Prim Ptype.Bool
  | Json.Int _ -> Prim Ptype.Int
  | Json.Float _ -> Prim Ptype.Float
  | Json.Str _ -> Prim Ptype.String
  | Json.Arr elems -> Arr (List.fold_left (fun acc e -> join acc (of_jvalue e)) Bot elems)
  | Json.Obj fields ->
    Obj
      (List.map
         (fun (n, v) ->
           let t = of_jvalue v in
           (n, { ity = t; opt = (t = Bot); seen = 1 }))
         fields)

let rec finalize (t : ity) : Ptype.t =
  match t with
  | Bot -> Ptype.Option Ptype.Int   (* only nulls seen: a degenerate column *)
  | Prim p -> p
  | Arr e -> Ptype.Collection (Ptype.List, finalize e)
  | Obj fields ->
    Ptype.Record
      (List.map
         (fun (n, f) ->
           let base = finalize f.ity in
           (n, if f.opt then Ptype.Option (Ptype.unwrap_option base) else base))
         fields)

let of_json contents =
  match Json.parse_seq contents with
  | [] -> invalid_arg "Typeinfer.of_json: empty input"
  | objs ->
    let total = List.length objs in
    let joined = List.fold_left (fun acc o -> join acc (of_jvalue o)) Bot objs in
    (* a field seen in fewer objects than exist is optional *)
    (match joined with
    | Obj fields ->
      List.iter (fun (_, f) -> if f.seen < total then f.opt <- true) fields
    | _ -> ());
    (match finalize joined with
    | Ptype.Record _ as r -> r
    | t -> Perror.type_error "JSON elements are %a, not objects" Ptype.pp t)

(* --- CSV ------------------------------------------------------------------- *)

let parses f src start stop =
  match f src ~start ~stop with _ -> true | exception _ -> false

let of_csv ?(config = Csv.default_config) contents =
  let config = { config with Csv.has_header = true } in
  let header_start = Csv.bom_skip contents in
  let header_stop =
    let _, stop, _ = Csv.row_bounds contents ~pos:header_start in
    stop
  in
  let names =
    Csv.field_spans config contents ~start:header_start ~stop:header_stop
    |> List.map (fun (s, e) -> Csv.parse_string contents ~start:s ~stop:e)
  in
  if names = [] then invalid_arg "Typeinfer.of_csv: empty input";
  let ncols = List.length names in
  (* per column: which parsers still succeed on every non-empty value *)
  let can_int = Array.make ncols true in
  let can_float = Array.make ncols true in
  let can_date = Array.make ncols true in
  let can_bool = Array.make ncols true in
  let has_empty = Array.make ncols false in
  let nonempty = Array.make ncols 0 in
  let n = String.length contents in
  let rec rows pos =
    if pos < n then begin
      let start, stop, next = Csv.row_bounds contents ~pos in
      if start < stop then begin
        let spans = Csv.field_spans config contents ~start ~stop in
        if List.length spans <> ncols then
          Perror.parse_error ~what:"csv-infer" ~pos:start
            "row arity %d differs from header arity %d" (List.length spans) ncols;
        List.iteri
          (fun i (s, e) ->
            if s >= e then has_empty.(i) <- true
            else begin
              nonempty.(i) <- nonempty.(i) + 1;
              if can_int.(i) then can_int.(i) <- parses Csv.parse_int contents s e;
              if can_float.(i) then can_float.(i) <- parses Csv.parse_float contents s e;
              if can_date.(i) then
                can_date.(i) <-
                  e - s = 10 && contents.[s + 4] = '-'
                  && parses (fun src ~start ~stop -> Date_util.of_span src ~start ~stop)
                       contents s e;
              if can_bool.(i) then can_bool.(i) <- parses Csv.parse_bool contents s e
            end)
          spans
      end;
      rows next
    end
  in
  rows (Csv.data_start config contents);
  let col_type i =
    let base =
      if nonempty.(i) = 0 then Ptype.String
      else if can_int.(i) then Ptype.Int
      else if can_float.(i) then Ptype.Float
      else if can_date.(i) then Ptype.Date
      else if can_bool.(i) then Ptype.Bool
      else Ptype.String
    in
    if has_empty.(i) then Ptype.Option base else base
  in
  Ptype.Record (List.mapi (fun i name -> (name, col_type i)) names)
