type binop =
  | Add | Sub | Mul | Div | Mod
  | Eq | Neq | Lt | Le | Gt | Ge
  | And | Or
  | Concat
  | Like

type unop = Neg | Not | Is_null | To_float | To_int

type t =
  | Const of Value.t
  | Param of string
  | Var of string
  | Field of t * string
  | Binop of binop * t * t
  | Unop of unop * t
  | If of t * t * t
  | Record_ctor of (string * t) list
  | Coll_ctor of Ptype.coll * t list

let int i = Const (Value.Int i)
let float f = Const (Value.Float f)
let str s = Const (Value.String s)
let bool b = Const (Value.Bool b)
let null = Const Value.Null
let var v = Var v

let path v fields = List.fold_left (fun acc f -> Field (acc, f)) (Var v) fields

let ( &&& ) a b = Binop (And, a, b)
let ( ||| ) a b = Binop (Or, a, b)
let ( ==. ) a b = Binop (Eq, a, b)
let ( <. ) a b = Binop (Lt, a, b)
let ( <=. ) a b = Binop (Le, a, b)
let ( >. ) a b = Binop (Gt, a, b)
let ( >=. ) a b = Binop (Ge, a, b)
let ( +. ) a b = Binop (Add, a, b)
let ( -. ) a b = Binop (Sub, a, b)
let ( *. ) a b = Binop (Mul, a, b)
let ( /. ) a b = Binop (Div, a, b)

let rec equal a b =
  match a, b with
  | Const va, Const vb -> Value.equal va vb
  | Param a, Param b -> String.equal a b
  | Var a, Var b -> String.equal a b
  | Field (ea, na), Field (eb, nb) -> String.equal na nb && equal ea eb
  | Binop (oa, la, ra), Binop (ob, lb, rb) -> oa = ob && equal la lb && equal ra rb
  | Unop (oa, ea), Unop (ob, eb) -> oa = ob && equal ea eb
  | If (ca, ta, ea), If (cb, tb, eb) -> equal ca cb && equal ta tb && equal ea eb
  | Record_ctor fa, Record_ctor fb ->
    List.length fa = List.length fb
    && List.for_all2 (fun (na, ea) (nb, eb) -> String.equal na nb && equal ea eb) fa fb
  | Coll_ctor (ca, la), Coll_ctor (cb, lb) ->
    ca = cb && List.length la = List.length lb && List.for_all2 equal la lb
  | ( ( Const _ | Param _ | Var _ | Field _ | Binop _ | Unop _ | If _ | Record_ctor _
      | Coll_ctor _ ),
      _ ) ->
    false

let compare = Stdlib.compare

let rec hash = function
  | Const v -> Value.hash v
  | Param p -> Hashtbl.hash p lxor 0x77
  | Var v -> Hashtbl.hash v lxor 0x51
  | Field (e, n) -> (hash e * 31) + Hashtbl.hash n
  | Binop (o, l, r) -> (Hashtbl.hash o * 7) + (hash l * 31) + hash r
  | Unop (o, e) -> (Hashtbl.hash o * 13) + hash e
  | If (c, t, e) -> (hash c * 31) + (hash t * 7) + hash e
  | Record_ctor fs -> List.fold_left (fun acc (n, e) -> (acc * 31) + Hashtbl.hash n + hash e) 3 fs
  | Coll_ctor (c, es) -> List.fold_left (fun acc e -> (acc * 31) + hash e) (Hashtbl.hash c) es

let binop_name = function
  | Add -> "+" | Sub -> "-" | Mul -> "*" | Div -> "/" | Mod -> "%"
  | Eq -> "=" | Neq -> "<>" | Lt -> "<" | Le -> "<=" | Gt -> ">" | Ge -> ">="
  | And -> "and" | Or -> "or" | Concat -> "||" | Like -> "like"

let unop_name = function
  | Neg -> "-" | Not -> "not" | Is_null -> "is_null"
  | To_float -> "float" | To_int -> "int"

let rec pp ppf = function
  | Const v -> Value.pp ppf v
  | Param p -> Fmt.pf ppf "?%s" p
  | Var v -> Fmt.string ppf v
  | Field (e, n) -> Fmt.pf ppf "%a.%s" pp e n
  | Binop (o, l, r) -> Fmt.pf ppf "(%a %s %a)" pp l (binop_name o) pp r
  | Unop (o, e) -> Fmt.pf ppf "%s(%a)" (unop_name o) pp e
  | If (c, t, e) -> Fmt.pf ppf "(if %a then %a else %a)" pp c pp t pp e
  | Record_ctor fs ->
    let pp_field ppf (n, e) = Fmt.pf ppf "%s: %a" n pp e in
    Fmt.pf ppf "<%a>" Fmt.(list ~sep:(any ", ") pp_field) fs
  | Coll_ctor (c, es) ->
    Fmt.pf ppf "%s[%a]"
      (match c with Ptype.Bag -> "bag" | Ptype.Set -> "set" | Ptype.List -> "list")
      Fmt.(list ~sep:(any ", ") pp)
      es

let to_string e = Fmt.str "%a" pp e

let rec fold_vars acc = function
  | Const _ | Param _ -> acc
  | Var v -> if List.mem v acc then acc else v :: acc
  | Field (e, _) | Unop (_, e) -> fold_vars acc e
  | Binop (_, l, r) -> fold_vars (fold_vars acc l) r
  | If (c, t, e) -> fold_vars (fold_vars (fold_vars acc c) t) e
  | Record_ctor fs -> List.fold_left (fun acc (_, e) -> fold_vars acc e) acc fs
  | Coll_ctor (_, es) -> List.fold_left fold_vars acc es

let free_vars e = List.rev (fold_vars [] e)

let rec subst name replacement e =
  match e with
  | Const _ | Param _ -> e
  | Var v -> if String.equal v name then replacement else e
  | Field (e, n) -> Field (subst name replacement e, n)
  | Binop (o, l, r) -> Binop (o, subst name replacement l, subst name replacement r)
  | Unop (o, e) -> Unop (o, subst name replacement e)
  | If (c, t, e) ->
    If (subst name replacement c, subst name replacement t, subst name replacement e)
  | Record_ctor fs -> Record_ctor (List.map (fun (n, e) -> (n, subst name replacement e)) fs)
  | Coll_ctor (c, es) -> Coll_ctor (c, List.map (subst name replacement) es)

let rename old_name new_name e = subst old_name (Var new_name) e

let fields_of_var name e =
  (* Collect root fields accessed as [Var name].f...; a bare [Var name] in a
     non-Field position means the whole record escapes. *)
  let whole = ref false in
  let fields = ref [] in
  let add f = if not (List.mem f !fields) then fields := f :: !fields in
  let rec go = function
    | Const _ | Param _ -> ()
    | Var v -> if String.equal v name then whole := true
    | Field (Var v, f) -> if String.equal v name then add f else ()
    | Field (e, _) -> go e
    | Binop (_, l, r) -> go l; go r
    | Unop (_, e) -> go e
    | If (c, t, e) -> go c; go t; go e
    | Record_ctor fs -> List.iter (fun (_, e) -> go e) fs
    | Coll_ctor (_, es) -> List.iter go es
  in
  go e;
  if !whole then None else Some (List.rev !fields)

let param p = Param p

(* Parameter occurrences, in deterministic left-to-right order, deduplicated. *)
let params e =
  let rec go acc = function
    | Param p -> if List.mem p acc then acc else p :: acc
    | Const _ | Var _ -> acc
    | Field (e, _) | Unop (_, e) -> go acc e
    | Binop (_, l, r) -> go (go acc l) r
    | If (c, t, e) -> go (go (go acc c) t) e
    | Record_ctor fs -> List.fold_left (fun acc (_, e) -> go acc e) acc fs
    | Coll_ctor (_, es) -> List.fold_left go acc es
  in
  List.rev (go [] e)

let has_param e = params e <> []

(* [bind_params env e] substitutes [Const v] for every [Param p] with
   [(p, v)] in [env]; parameters missing from [env] are left in place (the
   caller decides whether leftovers are an error). *)
let rec bind_params env e =
  match e with
  | Param p -> (
    match List.assoc_opt p env with Some v -> Const v | None -> e)
  | Const _ | Var _ -> e
  | Field (e, n) -> Field (bind_params env e, n)
  | Binop (o, l, r) -> Binop (o, bind_params env l, bind_params env r)
  | Unop (o, e) -> Unop (o, bind_params env e)
  | If (c, t, e) -> If (bind_params env c, bind_params env t, bind_params env e)
  | Record_ctor fs -> Record_ctor (List.map (fun (n, e) -> (n, bind_params env e)) fs)
  | Coll_ctor (c, es) -> Coll_ctor (c, List.map (bind_params env) es)

let rec conjuncts = function
  | Binop (And, l, r) -> conjuncts l @ conjuncts r
  | Const (Value.Bool true) -> []
  | e -> [ e ]

let conjoin = function
  | [] -> Const (Value.Bool true)
  | e :: rest -> List.fold_left (fun acc e -> Binop (And, acc, e)) e rest

type env = (string * Value.t) list

let like ~pattern s =
  (* Classic backtracking matcher for SQL LIKE: '%' matches any run, '_'
     matches one character. *)
  let np = String.length pattern and ns = String.length s in
  let rec go pi si =
    if pi >= np then si >= ns
    else
      match pattern.[pi] with
      | '%' ->
        let rec try_at k = k <= ns && (go (pi + 1) k || try_at (k + 1)) in
        try_at si
      | '_' -> si < ns && go (pi + 1) (si + 1)
      | c -> si < ns && Char.equal s.[si] c && go (pi + 1) (si + 1)
  in
  go 0 0

let num2 op_i op_f l r : Value.t =
  match (l : Value.t), (r : Value.t) with
  | Int a, Int b -> Int (op_i a b)
  | Float a, Float b -> Float (op_f a b)
  | Int a, Float b -> Float (op_f (float_of_int a) b)
  | Float a, Int b -> Float (op_f a (float_of_int b))
  | Null, _ | _, Null -> Null
  | a, b -> Perror.type_error "arithmetic over %a and %a" Value.pp a Value.pp b

let cmp op l r : Value.t =
  match (l : Value.t), (r : Value.t) with
  | Null, _ | _, Null -> Bool false
  | Int a, Float b -> Bool (op (Float.compare (float_of_int a) b) 0)
  | Float a, Int b -> Bool (op (Float.compare a (float_of_int b)) 0)
  (* dates are epoch-day counts; they compare with plain integers *)
  | Date a, Int b | Int a, Date b -> Bool (op (Int.compare a b) 0)
  | a, b -> Bool (op (Value.compare a b) 0)

let rec eval env e : Value.t =
  match e with
  | Const v -> v
  | Param p -> Perror.plan_error "unbound parameter ?%s" p
  | Var v -> (
    match List.assoc_opt v env with
    | Some value -> value
    | None -> Perror.plan_error "unbound variable %s" v)
  | Field (e, n) -> (
    match eval env e with
    | Value.Null -> Value.Null
    | Value.Record _ as r -> ( match Value.field_opt r n with Some v -> v | None -> Value.Null)
    | v -> Perror.type_error "field %s of non-record %a" n Value.pp v)
  | Binop (op, l, r) -> eval_binop env op l r
  | Unop (op, e) -> apply_unop op (eval env e)
  | If (c, t, e) -> if eval_pred env c then eval env t else eval env e
  | Record_ctor fs -> Value.record (List.map (fun (n, e) -> (n, eval env e)) fs)
  | Coll_ctor (c, es) -> Monoid.collect c (List.map (eval env) es)

and apply_unop op v : Value.t =
  match op, v with
  | Neg, Value.Int i -> Value.Int (-i)
  | Neg, Value.Float f -> Value.Float (Stdlib.( ~-. ) f)
  | Neg, Value.Null -> Value.Null
  | Neg, v -> Perror.type_error "negation of %a" Value.pp v
  | Not, Value.Bool b -> Value.Bool (not b)
  | Not, Value.Null -> Value.Bool true
  | Not, v -> Perror.type_error "not of %a" Value.pp v
  | Is_null, v -> Value.Bool (Value.is_null v)
  | To_float, Value.Null -> Value.Null
  | To_float, v -> Value.Float (Value.to_float v)
  | To_int, Value.Null -> Value.Null
  | To_int, Value.Float f -> Value.Int (int_of_float f)
  | To_int, Value.Int i -> Value.Int i
  | To_int, Value.String s -> (
    match int_of_string_opt (String.trim s) with
    | Some i -> Value.Int i
    | None -> Perror.type_error "cannot convert %S to int" s)
  | To_int, v -> Perror.type_error "to_int of %a" Value.pp v

and apply_binop op l r : Value.t =
  match op with
  | And -> Value.Bool (value_truth l && value_truth r)
  | Or -> Value.Bool (value_truth l || value_truth r)
  | Add -> num2 ( + ) Stdlib.( +. ) l r
  | Sub -> num2 ( - ) Stdlib.( -. ) l r
  | Mul -> num2 ( * ) Stdlib.( *. ) l r
  | Div -> (
    match l, r with
    | _, Value.Int 0 -> Perror.type_error "division by zero"
    | l, r -> num2 ( / ) Stdlib.( /. ) l r)
  | Mod -> (
    match l, r with
    | Value.Int a, Value.Int b ->
      if b = 0 then Perror.type_error "modulo by zero" else Value.Int (a mod b)
    | Value.Null, _ | _, Value.Null -> Value.Null
    | a, b -> Perror.type_error "mod over %a and %a" Value.pp a Value.pp b)
  | Eq -> (
    match l, r with
    | Value.Null, _ | _, Value.Null -> Value.Bool false
    | a, b ->
      Value.Bool
        (Value.compare a b = 0
        ||
        match a, b with
        | Value.Int i, Value.Float f | Value.Float f, Value.Int i ->
          Float.equal (float_of_int i) f
        | Value.Date d, Value.Int i | Value.Int i, Value.Date d -> d = i
        | _ -> false))
  | Neq -> (
    match apply_binop Eq l r with Value.Bool b -> Value.Bool (not b) | v -> v)
  | Lt -> cmp ( < ) l r
  | Le -> cmp ( <= ) l r
  | Gt -> cmp ( > ) l r
  | Ge -> cmp ( >= ) l r
  | Concat -> (
    match l, r with
    | Value.String a, Value.String b -> Value.String (a ^ b)
    | Value.Null, _ | _, Value.Null -> Value.Null
    | a, b -> Perror.type_error "concat over %a and %a" Value.pp a Value.pp b)
  | Like -> (
    match l, r with
    | Value.String s, Value.String pattern -> Value.Bool (like ~pattern s)
    | Value.Null, _ | _, Value.Null -> Value.Bool false
    | a, b -> Perror.type_error "like over %a and %a" Value.pp a Value.pp b)

and value_truth = function
  | Value.Bool b -> b
  | Value.Null -> false
  | v -> Perror.type_error "predicate evaluated to %a" Value.pp v

and eval_binop env op l r : Value.t =
  match op with
  | And ->
    (* short-circuit *)
    if eval_pred env l then Value.Bool (eval_pred env r) else Value.Bool false
  | Or -> if eval_pred env l then Value.Bool true else Value.Bool (eval_pred env r)
  | op -> apply_binop op (eval env l) (eval env r)

and eval_pred env e =
  match eval env e with
  | Value.Bool b -> b
  | Value.Null -> false
  | v -> Perror.type_error "predicate evaluated to %a" Value.pp v

let rec type_of tenv e : Ptype.t =
  match e with
  | Const v -> Value.type_of v
  | Param p ->
    Perror.type_error
      "parameter ?%s in a typed position (parameters are only supported where a \
       concrete type is not required, e.g. comparison operands)"
      p
  | Var v -> (
    match List.assoc_opt v tenv with
    | Some t -> t
    | None -> Perror.type_error "unbound variable %s in type environment" v)
  | Field (e, n) -> (
    match Ptype.unwrap_option (type_of tenv e) with
    | Ptype.Record _ as r -> Ptype.field_type r n
    | t -> Perror.type_error "field %s of non-record type %a" n Ptype.pp t)
  | Binop ((Add | Sub | Mul | Div | Mod), l, r) -> (
    match Ptype.unwrap_option (type_of tenv l), Ptype.unwrap_option (type_of tenv r) with
    | Ptype.Int, Ptype.Int -> Ptype.Int
    | (Ptype.Int | Ptype.Float), (Ptype.Int | Ptype.Float) -> Ptype.Float
    | a, b -> Perror.type_error "arithmetic over %a and %a" Ptype.pp a Ptype.pp b)
  | Binop ((Eq | Neq | Lt | Le | Gt | Ge | And | Or | Like), _, _) -> Ptype.Bool
  | Binop (Concat, _, _) -> Ptype.String
  | Unop (Neg, e) -> type_of tenv e
  | Unop (Not, _) | Unop (Is_null, _) -> Ptype.Bool
  | Unop (To_float, _) -> Ptype.Float
  | Unop (To_int, _) -> Ptype.Int
  | If (_, t, _) -> type_of tenv t
  | Record_ctor fs -> Ptype.Record (List.map (fun (n, e) -> (n, type_of tenv e)) fs)
  | Coll_ctor (c, []) -> Ptype.Collection (c, Ptype.Option Ptype.Int)
  | Coll_ctor (c, e :: _) -> Ptype.Collection (c, type_of tenv e)
