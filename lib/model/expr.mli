(** Algebraic expressions shared by the calculus, the algebra, the expression
    generators of the compiled engine, and the cache fingerprints.

    Expressions are evaluated against an environment binding the variables
    introduced by plan operators (scans bind one variable per input "tuple",
    unnests bind one variable per nested element). *)

type binop =
  | Add | Sub | Mul | Div | Mod
  | Eq | Neq | Lt | Le | Gt | Ge
  | And | Or
  | Concat                          (** string concatenation *)
  | Like                            (** SQL LIKE with [%] and [_] wildcards *)

type unop = Neg | Not | Is_null | To_float | To_int

type t =
  | Const of Value.t
  | Param of string                 (** runtime parameter slot: SQL [?] / [$name] *)
  | Var of string
  | Field of t * string             (** path step: [e.name] *)
  | Binop of binop * t * t
  | Unop of unop * t
  | If of t * t * t
  | Record_ctor of (string * t) list
  | Coll_ctor of Ptype.coll * t list

(** {1 Construction helpers} *)

val int : int -> t
val float : float -> t
val str : string -> t
val bool : bool -> t
val null : t
val var : string -> t
val param : string -> t

(** [path v fields] is [v.f1.f2...] *)
val path : string -> string list -> t

val ( &&& ) : t -> t -> t
val ( ||| ) : t -> t -> t
val ( ==. ) : t -> t -> t
val ( <. ) : t -> t -> t
val ( <=. ) : t -> t -> t
val ( >. ) : t -> t -> t
val ( >=. ) : t -> t -> t
val ( +. ) : t -> t -> t
val ( -. ) : t -> t -> t
val ( *. ) : t -> t -> t
val ( /. ) : t -> t -> t

(** {1 Analysis} *)

val equal : t -> t -> bool
val compare : t -> t -> int
val hash : t -> int
val pp : Format.formatter -> t -> unit
val to_string : t -> string

(** Free variables of the expression. *)
val free_vars : t -> string list

(** [subst name replacement e] substitutes [replacement] for [Var name]. *)
val subst : string -> t -> t -> t

(** [rename old_name new_name e] renames a free variable. *)
val rename : string -> string -> t -> t

(** [fields_of_var name e] is the set of root field names accessed on
    variable [name] (e.g. [x.a.b] contributes ["a"]). Used for projection
    pushdown to scans. Returns [None] when the variable is used whole
    (so all fields are needed). *)
val fields_of_var : string -> t -> string list option

(** [conjuncts e] splits a predicate on top-level [And]s. *)
val conjuncts : t -> t list

(** [conjoin es] rebuilds a conjunction ([Const true] for the empty list). *)
val conjoin : t list -> t

(** Parameter names occurring in the expression, left-to-right, deduplicated. *)
val params : t -> string list

val has_param : t -> bool

(** [bind_params env e] substitutes [Const v] for each [Param p] bound in
    [env]; unbound parameters stay in place. *)
val bind_params : (string * Value.t) list -> t -> t

(** {1 Evaluation} *)

type env = (string * Value.t) list

(** [eval env e] evaluates [e]. Arithmetic widens Int to Float when mixed.
    [Null] propagates through arithmetic; comparisons involving [Null]
    evaluate to [Bool false] (SQL-like, collapsed to two-valued logic);
    [Is_null] observes nulls. Raises [Perror.Type_error] on genuine type
    mismatches and [Perror.Plan_error] on unbound variables. *)
val eval : env -> t -> Value.t

(** [eval_pred env e] evaluates a predicate; [Null] counts as false. *)
val eval_pred : env -> t -> bool

(** [apply_binop op l r] applies a non-logical operator to already-evaluated
    operands with exactly the semantics of {!eval} (null propagation,
    numeric widening). [And]/[Or] are treated strictly (no short-circuit) —
    compiled code handles those itself. Exposed so the staged expression
    compiler's boxed fallback agrees with the interpreter bit-for-bit. *)
val apply_binop : binop -> Value.t -> Value.t -> Value.t

(** [apply_unop op v] — same contract as {!apply_binop}. *)
val apply_unop : unop -> Value.t -> Value.t

(** [like ~pattern s] implements SQL LIKE matching. *)
val like : pattern:string -> string -> bool

(** {1 Typing} *)

(** [type_of tenv e] infers the type of [e] under variable typing [tenv].
    Raises [Perror.Type_error] on mismatch. *)
val type_of : (string * Ptype.t) list -> t -> Ptype.t
