(* Per-query fault tolerance: error policies, bounded error budgets, a
   cooperative cancellation token with deadlines, and a deterministic
   structured error report.

   A guarded query installs a context (see {!install}) around prepare +
   run. The plug-in layer consults the active policy when it drives scans
   ([Skip_row] probes each row's required accessors before committing the
   tuple to the pipeline; [Null_fill] wraps accessors to substitute
   [Value.Null]); the engines check the cancellation token at morsel/batch
   boundaries; the cache layer compares error counts around a fill to
   quarantine partially-filled columns.

   Determinism: errors are accounted into per-morsel cells keyed by the
   morsel index the recording domain is currently scanning (serial runs use
   cell 0). Cells are merged in morsel order, and within a cell errors
   arrive in scan order — so the merged report (counts, first-K samples,
   per-source breakdown) is identical at any domain count, exactly like the
   engine's per-morsel aggregate merge. *)

type policy = Fail_fast | Skip_row | Null_fill

let policy_name = function
  | Fail_fast -> "fail"
  | Skip_row -> "skip"
  | Null_fill -> "null"

type sample = {
  sm_source : string;  (** dataset name *)
  sm_row : int;        (** OID of the faulty element *)
  sm_pos : int;        (** byte offset in the raw input; -1 when unknown *)
  sm_msg : string;
}

type report = {
  rp_policy : policy;
  rp_errors : int;        (** every recoverable error observed *)
  rp_skipped : int;       (** rows dropped under [Skip_row] *)
  rp_nulled : int;        (** field reads nulled under [Null_fill] *)
  rp_samples : sample list;            (** first [sample_cap] in scan order *)
  rp_by_source : (string * int) list;  (** error count per dataset, sorted *)
}

exception Budget_exceeded of int
(** The per-query error budget ([~max_errors]) was crossed; the payload is
    the error count at the moment of the abort. *)

exception Cancelled
(** The cancellation token fired: a peer worker failed, or the query was
    cancelled externally. *)

exception Timed_out
(** The query deadline passed. *)

let sample_cap = 8

(* Per-morsel accounting cell. The global first-K samples are always
   contained in the concatenation of per-cell first-K prefixes, so each
   cell keeps at most [sample_cap] samples. *)
type cell = {
  mutable c_errors : int;
  mutable c_skipped : int;
  mutable c_nulled : int;
  mutable c_samples : sample list;  (* reversed *)
  mutable c_nsamples : int;
  mutable c_sources : (string * int) list;
}

type reason = R_none | R_cancel | R_deadline

type ctx = {
  cx_policy : policy;
  cx_max_errors : int;  (* max_int = unlimited *)
  cx_deadline : float option;  (* absolute, Unix.gettimeofday clock *)
  cx_flag : reason Atomic.t;
  cx_errors : int Atomic.t;
  cx_mu : Mutex.t;
  cx_cells : (int, cell) Hashtbl.t;
  cx_parent : ctx option;
      (* a forked child (hedged build attempt) carries a private flag so it
         can be cancelled alone, but chains to its parent: the parent's
         cancellation reaches every child through [check_cancel] *)
}

(* The active fault context is domain-local: concurrent queries each install
   their own context on the domain that runs them, so one session's policy,
   budget and cancellation token never leak into another's. Worker pools
   capture the submitting domain's context and re-install it inside their
   jobs ({!get_ctx} / {!set_ctx} — see [Pool.run]); the context record
   itself is written through atomics and a mutex, so sharing one across
   domains is safe. *)
let current_key : ctx option Domain.DLS.key = Domain.DLS.new_key (fun () -> None)

let get_ctx () = Domain.DLS.get current_key
let set_ctx c = Domain.DLS.set current_key c

(* Which morsel the calling domain is scanning: the engines set this from
   their morsel loops; serial drivers leave it at 0. *)
let morsel_key = Domain.DLS.new_key (fun () -> ref 0)

let set_morsel m = Domain.DLS.get morsel_key := m

(* Process-wide totals behind the engine's proxy counters; they tick on
   every recorded error and are reset by [Counters.reset]. *)
let g_errors = Atomic.make 0
let g_skipped = Atomic.make 0
let g_nulled = Atomic.make 0

let errors_total () = Atomic.get g_errors
let skipped_total () = Atomic.get g_skipped
let nulled_total () = Atomic.get g_nulled

let reset_totals () =
  Atomic.set g_errors 0;
  Atomic.set g_skipped 0;
  Atomic.set g_nulled 0

let active () = get_ctx () <> None

let policy () =
  match get_ctx () with None -> Fail_fast | Some c -> c.cx_policy

let skipping () = policy () = Skip_row
let null_filling () = policy () = Null_fill

(* Recoverable = data errors. Plan/type errors are bugs in the query or the
   schema and always fail fast. *)
let recoverable = function Perror.Parse_error _ -> true | _ -> false

let exn_pos = function Perror.Parse_error { pos; _ } -> pos | _ -> -1

let exn_msg e = Fmt.str "%a" Perror.pp_exn e

let install ~policy ?(max_errors = max_int) ?deadline () =
  let ctx =
    {
      cx_policy = policy;
      cx_max_errors = max_errors;
      cx_deadline = deadline;
      cx_flag = Atomic.make R_none;
      cx_errors = Atomic.make 0;
      cx_mu = Mutex.create ();
      cx_cells = Hashtbl.create 8;
      cx_parent = None;
    }
  in
  set_morsel 0;
  set_ctx (Some ctx);
  ctx

(* [fork parent] is a child context sharing the parent's policy, deadline,
   budget and accounting cells, but with a private cancellation flag that
   chains to the parent's: cancelling the child (a hedge loser) never
   touches the parent or its other children, while cancelling the parent
   reaches them all. *)
let fork parent =
  { parent with cx_flag = Atomic.make R_none; cx_parent = Some parent }

let clear () = set_ctx None

(* Cancel the active query (if any): peers observe the token at their next
   morsel/batch boundary. Used by the worker pool on the first failure and
   available for external cancellation. *)
let cancel_ctx ctx = ignore (Atomic.compare_and_set ctx.cx_flag R_none R_cancel)

let cancel () =
  match get_ctx () with
  | None -> ()
  | Some ctx -> cancel_ctx ctx

(* A context's effective flag: its own, or the nearest raised ancestor's. *)
let rec raised_flag ctx =
  match Atomic.get ctx.cx_flag with
  | R_none -> (
    match ctx.cx_parent with Some p -> raised_flag p | None -> R_none)
  | r -> r

let check_cancel () =
  match get_ctx () with
  | None -> ()
  | Some ctx -> (
    match raised_flag ctx with
    | R_cancel -> raise Cancelled
    | R_deadline -> raise Timed_out
    | R_none -> (
      match ctx.cx_deadline with
      | Some d when Unix.gettimeofday () > d ->
        ignore (Atomic.compare_and_set ctx.cx_flag R_none R_deadline);
        raise Timed_out
      | _ -> ()))

let budget_hit ctx = Atomic.get ctx.cx_errors > ctx.cx_max_errors

let deadline_hit ctx = Atomic.get ctx.cx_flag = R_deadline

(* The active context's absolute deadline — retry backoffs consult it so a
   sleep never outlives the query budget. *)
let deadline () =
  match get_ctx () with None -> None | Some c -> c.cx_deadline

let record_in ctx ~source ~row ~skipped ~nulled e =
  let m = !(Domain.DLS.get morsel_key) in
  Mutex.lock ctx.cx_mu;
  let cell =
    match Hashtbl.find_opt ctx.cx_cells m with
    | Some c -> c
    | None ->
      let c =
        { c_errors = 0; c_skipped = 0; c_nulled = 0; c_samples = [];
          c_nsamples = 0; c_sources = [] }
      in
      Hashtbl.replace ctx.cx_cells m c;
      c
  in
  cell.c_errors <- cell.c_errors + 1;
  cell.c_skipped <- cell.c_skipped + skipped;
  cell.c_nulled <- cell.c_nulled + nulled;
  if cell.c_nsamples < sample_cap then begin
    cell.c_samples <-
      { sm_source = source; sm_row = row; sm_pos = exn_pos e; sm_msg = exn_msg e }
      :: cell.c_samples;
    cell.c_nsamples <- cell.c_nsamples + 1
  end;
  cell.c_sources <-
    (match List.assoc_opt source cell.c_sources with
    | Some n -> (source, n + 1) :: List.remove_assoc source cell.c_sources
    | None -> (source, 1) :: cell.c_sources);
  Mutex.unlock ctx.cx_mu;
  let seen = 1 + Atomic.fetch_and_add ctx.cx_errors 1 in
  if seen > ctx.cx_max_errors then begin
    ignore (Atomic.compare_and_set ctx.cx_flag R_none R_cancel);
    raise (Budget_exceeded seen)
  end

(* [record_skip ~source ~row e] accounts one row dropped by [Skip_row].
   Raises [Budget_exceeded] when the error budget is crossed. *)
let record_skip ~source ~row e =
  ignore (Atomic.fetch_and_add g_errors 1);
  ignore (Atomic.fetch_and_add g_skipped 1);
  match get_ctx () with
  | None -> ()
  | Some ctx -> record_in ctx ~source ~row ~skipped:1 ~nulled:0 e

(* [record_null ~source ~row e] accounts one field read nulled by
   [Null_fill]. Raises [Budget_exceeded] when the budget is crossed. *)
let record_null ~source ~row e =
  ignore (Atomic.fetch_and_add g_errors 1);
  ignore (Atomic.fetch_and_add g_nulled 1);
  match get_ctx () with
  | None -> ()
  | Some ctx -> record_in ctx ~source ~row ~skipped:0 ~nulled:1 e

let report ctx =
  Mutex.lock ctx.cx_mu;
  let cells =
    Hashtbl.fold (fun m c acc -> (m, c) :: acc) ctx.cx_cells []
    |> List.sort (fun (a, _) (b, _) -> compare a b)
  in
  let errors = List.fold_left (fun acc (_, c) -> acc + c.c_errors) 0 cells in
  let skipped = List.fold_left (fun acc (_, c) -> acc + c.c_skipped) 0 cells in
  let nulled = List.fold_left (fun acc (_, c) -> acc + c.c_nulled) 0 cells in
  let samples =
    List.concat_map (fun (_, c) -> List.rev c.c_samples) cells
    |> List.filteri (fun i _ -> i < sample_cap)
  in
  let by_source =
    List.fold_left
      (fun acc (_, c) ->
        List.fold_left
          (fun acc (s, n) ->
            match List.assoc_opt s acc with
            | Some m -> (s, m + n) :: List.remove_assoc s acc
            | None -> (s, n) :: acc)
          acc c.c_sources)
      [] cells
    |> List.sort (fun (a, _) (b, _) -> String.compare a b)
  in
  Mutex.unlock ctx.cx_mu;
  {
    rp_policy = ctx.cx_policy;
    rp_errors = errors;
    rp_skipped = skipped;
    rp_nulled = nulled;
    rp_samples = samples;
    rp_by_source = by_source;
  }

let empty_report =
  {
    rp_policy = Fail_fast;
    rp_errors = 0;
    rp_skipped = 0;
    rp_nulled = 0;
    rp_samples = [];
    rp_by_source = [];
  }

let pp_sample ppf s =
  if s.sm_pos >= 0 then
    Fmt.pf ppf "%s row %d (byte %d): %s" s.sm_source s.sm_row s.sm_pos s.sm_msg
  else Fmt.pf ppf "%s row %d: %s" s.sm_source s.sm_row s.sm_msg

let pp_report ppf r =
  Fmt.pf ppf "error policy %s: %d errors (%d rows skipped, %d fields nulled)"
    (policy_name r.rp_policy) r.rp_errors r.rp_skipped r.rp_nulled;
  List.iter (fun (s, n) -> Fmt.pf ppf "@\n  %s: %d errors" s n) r.rp_by_source;
  List.iter (fun s -> Fmt.pf ppf "@\n  sample: %a" pp_sample s) r.rp_samples
