type t = {
  src : string;
  config : Csv.config;
  every : int;
  arity : int;
  fixed : fixed option;        (* Some => fixed-width fast path *)
  row_starts : int array;      (* row byte offsets; empty in fixed mode *)
  row_stops : int array;
  anchors : int array array;   (* anchors.(row).(k) = start of field k*every *)
}

and fixed = {
  first_row : int;             (* offset of the first data row *)
  row_len : int;               (* bytes per row including the newline *)
  field_offsets : int array;   (* offset of each field within a row *)
  field_stops : int array;     (* end offset of each field within a row *)
  nrows : int;
}

let config t = t.config
let stride t = t.every
let arity t = t.arity
let is_fixed_width t = t.fixed <> None

let row_count t =
  match t.fixed with Some f -> f.nrows | None -> Array.length t.row_starts

let build cfg ?(every = 5) src =
  let n = String.length src in
  let start0 = Csv.data_start cfg src in
  (* First pass over the first row to learn arity and candidate fixed layout. *)
  let starts = ref [] and stops = ref [] and anchor_rows = ref [] in
  let arity = ref 0 in
  let fixed_candidate = ref None in
  let fixed_ok = ref true in
  let pos = ref start0 in
  while !pos < n do
    let rstart, rstop, next = Csv.row_bounds src ~pos:!pos in
    if rstart = rstop then pos := next
    else begin
      let spans = Csv.field_spans cfg src ~start:rstart ~stop:rstop in
      let nf = List.length spans in
      (* The first row fixes the nominal arity. Ragged rows (more or fewer
         fields) are tolerated at build time — each keeps its own anchors —
         and reported as a per-row Parse_error at access time, so error
         policies can skip or null-fill them instead of rejecting the file. *)
      if !arity = 0 then arity := nf;
      (* Fixed-width check: identical relative offsets and row length. *)
      let rel =
        ( next - rstart,
          List.map (fun (a, b) -> (a - rstart, b - rstart)) spans )
      in
      (match !fixed_candidate with
      | None -> fixed_candidate := Some rel
      | Some c -> if c <> rel then fixed_ok := false);
      let anchors =
        List.filteri (fun i _ -> i mod every = 0) spans
        |> List.map fst |> Array.of_list
      in
      starts := rstart :: !starts;
      stops := rstop :: !stops;
      anchor_rows := anchors :: !anchor_rows;
      pos := next
    end
  done;
  let row_starts = Array.of_list (List.rev !starts) in
  let row_stops = Array.of_list (List.rev !stops) in
  let anchors = Array.of_list (List.rev !anchor_rows) in
  let fixed =
    match !fixed_candidate with
    | Some (row_len, rel_spans) when !fixed_ok && Array.length row_starts > 0 ->
      Some
        {
          first_row = start0;
          row_len;
          field_offsets = Array.of_list (List.map fst rel_spans);
          field_stops = Array.of_list (List.map snd rel_spans);
          nrows = Array.length row_starts;
        }
    | _ -> None
  in
  if fixed <> None then
    (* Positions are now computable; drop the per-row arrays entirely. *)
    { src; config = cfg; every; arity = !arity; fixed;
      row_starts = [||]; row_stops = [||]; anchors = [||] }
  else
    { src; config = cfg; every; arity = !arity; fixed = None;
      row_starts; row_stops; anchors }

let row_span t row =
  match t.fixed with
  | Some f ->
    let start = f.first_row + (row * f.row_len) in
    (* stop = start of the last field's end *)
    (start, start + f.field_stops.(Array.length f.field_stops - 1))
  | None -> (t.row_starts.(row), t.row_stops.(row))

let field_span t ~row ~field =
  match t.fixed with
  | Some f ->
    let base = f.first_row + (row * f.row_len) in
    (base + f.field_offsets.(field), base + f.field_stops.(field))
  | None ->
    let arow = t.anchors.(row) in
    let stop = t.row_stops.(row) in
    (* Ragged short rows may lack the anchor for [field]; fall back to the
       last anchor the row has and let the forward scan report the missing
       field as a Parse_error positioned at the row. *)
    let anchor = min (field / t.every) (Array.length arow - 1) in
    let apos = arow.(anchor) in
    (* Scan forward from the anchored field over the remaining fields. *)
    Csv.nth_field_span t.config t.src ~start:apos ~stop (field - (anchor * t.every))

let row_arity t row =
  match t.fixed with
  | Some _ -> t.arity
  | None ->
    Csv.count_fields t.config t.src ~start:t.row_starts.(row)
      ~stop:t.row_stops.(row)

let byte_size t =
  match t.fixed with
  | Some f -> 8 * (4 + (2 * Array.length f.field_offsets))
  | None ->
    (8 * 2 * Array.length t.row_starts)
    + Array.fold_left (fun acc a -> acc + (8 * Array.length a)) 0 t.anchors
