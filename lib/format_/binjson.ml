open Proteus_model

let tag_null = '\000'
let tag_false = '\001'
let tag_true = '\002'
let tag_int = '\003'
let tag_float = '\004'
let tag_string = '\005'
let tag_array = '\006'
let tag_object = '\007'

let put_i32 buf v =
  Buffer.add_char buf (Char.chr (v land 0xff));
  Buffer.add_char buf (Char.chr ((v lsr 8) land 0xff));
  Buffer.add_char buf (Char.chr ((v lsr 16) land 0xff));
  Buffer.add_char buf (Char.chr ((v lsr 24) land 0xff))

let put_i16 buf v =
  Buffer.add_char buf (Char.chr (v land 0xff));
  Buffer.add_char buf (Char.chr ((v lsr 8) land 0xff))

let put_i64 buf v =
  let b = Bytes.create 8 in
  Bytes.set_int64_le b 0 v;
  Buffer.add_bytes buf b

let get_i32 src pos =
  Char.code src.[pos]
  lor (Char.code src.[pos + 1] lsl 8)
  lor (Char.code src.[pos + 2] lsl 16)
  lor (Char.code src.[pos + 3] lsl 24)

let get_i16 src pos = Char.code src.[pos] lor (Char.code src.[pos + 1] lsl 8)

let get_i64 src pos =
  let b = Bytes.unsafe_of_string src in
  Bytes.get_int64_le b pos

let rec encode_into buf (j : Json.t) =
  match j with
  | Null -> Buffer.add_char buf tag_null
  | Bool false -> Buffer.add_char buf tag_false
  | Bool true -> Buffer.add_char buf tag_true
  | Int i ->
    Buffer.add_char buf tag_int;
    put_i64 buf (Int64.of_int i)
  | Float f ->
    Buffer.add_char buf tag_float;
    put_i64 buf (Int64.bits_of_float f)
  | Str s ->
    Buffer.add_char buf tag_string;
    put_i32 buf (String.length s);
    Buffer.add_string buf s
  | Arr elems ->
    let body = Buffer.create 64 in
    List.iter (encode_into body) elems;
    Buffer.add_char buf tag_array;
    put_i32 buf (List.length elems);
    put_i32 buf (Buffer.length body);
    Buffer.add_buffer buf body
  | Obj fields ->
    let body = Buffer.create 64 in
    List.iter
      (fun (n, v) ->
        put_i16 body (String.length n);
        Buffer.add_string body n;
        encode_into body v)
      fields;
    Buffer.add_char buf tag_object;
    put_i32 buf (List.length fields);
    put_i32 buf (Buffer.length body);
    Buffer.add_buffer buf body

let encode j =
  let buf = Buffer.create 256 in
  encode_into buf j;
  Buffer.contents buf

let value_size src pos =
  match src.[pos] with
  | c when c = tag_null || c = tag_false || c = tag_true -> 1
  | c when c = tag_int || c = tag_float -> 9
  | c when c = tag_string -> 5 + get_i32 src (pos + 1)
  | c when c = tag_array || c = tag_object -> 9 + get_i32 src (pos + 5)
  | c -> Perror.parse_error ~what:"binjson" ~pos "bad tag %d" (Char.code c)

let rec decode_at src pos : Json.t =
  match src.[pos] with
  | c when c = tag_null -> Null
  | c when c = tag_false -> Bool false
  | c when c = tag_true -> Bool true
  | c when c = tag_int -> Int (Int64.to_int (get_i64 src (pos + 1)))
  | c when c = tag_float -> Float (Int64.float_of_bits (get_i64 src (pos + 1)))
  | c when c = tag_string ->
    let len = get_i32 src (pos + 1) in
    Str (String.sub src (pos + 5) len)
  | c when c = tag_array ->
    let count = get_i32 src (pos + 1) in
    let rec go i off acc =
      if i >= count then List.rev acc
      else
        let v = decode_at src off in
        go (i + 1) (off + value_size src off) (v :: acc)
    in
    Arr (go 0 (pos + 9) [])
  | c when c = tag_object ->
    let count = get_i32 src (pos + 1) in
    let rec go i off acc =
      if i >= count then List.rev acc
      else begin
        let nlen = get_i16 src off in
        let name = String.sub src (off + 2) nlen in
        let voff = off + 2 + nlen in
        let v = decode_at src voff in
        go (i + 1) (voff + value_size src voff) ((name, v) :: acc)
      end
    in
    Obj (go 0 (pos + 9) [])
  | c -> Perror.parse_error ~what:"binjson" ~pos "bad tag %d" (Char.code c)

let decode src = decode_at src 0

let find_field src pos name =
  if src.[pos] <> tag_object then None
  else begin
    let count = get_i32 src (pos + 1) in
    let nlen_wanted = String.length name in
    let rec go i off =
      if i >= count then None
      else begin
        let nlen = get_i16 src off in
        let voff = off + 2 + nlen in
        if nlen = nlen_wanted && String.sub src (off + 2) nlen = name then Some voff
        else go (i + 1) (voff + value_size src voff)
      end
    in
    go 0 (pos + 9)
  end

let find_path src pos path =
  let parts = String.split_on_char '.' path in
  let rec go pos = function
    | [] -> Some pos
    | name :: rest -> (
      match find_field src pos name with
      | Some voff -> go voff rest
      | None -> None)
  in
  go pos parts

(* A byte outside the tag range is corruption, not a schema mismatch: the
   typed readers report it as a recoverable Parse_error carrying the byte
   offset, so the error policies can attribute and skip it. *)
let bad_tag src pos expected =
  let c = Char.code src.[pos] in
  if c > Char.code tag_object then
    Perror.parse_error ~what:"binjson" ~pos "bad tag %d" c
  else Perror.type_error "binjson: expected %s tag, got %d" expected c

let read_int src pos =
  if src.[pos] = tag_int then Int64.to_int (get_i64 src (pos + 1))
  else bad_tag src pos "int"

let read_float src pos =
  if src.[pos] = tag_float then Int64.float_of_bits (get_i64 src (pos + 1))
  else if src.[pos] = tag_int then float_of_int (Int64.to_int (get_i64 src (pos + 1)))
  else bad_tag src pos "float"

let read_bool src pos =
  if src.[pos] = tag_true then true
  else if src.[pos] = tag_false then false
  else bad_tag src pos "bool"

let read_string src pos =
  if src.[pos] = tag_string then String.sub src (pos + 5) (get_i32 src (pos + 1))
  else bad_tag src pos "string"

let array_offsets src pos =
  if src.[pos] <> tag_array then ignore (bad_tag src pos "array" : int);
  let count = get_i32 src (pos + 1) in
  let rec go i off acc =
    if i >= count then List.rev acc
    else go (i + 1) (off + value_size src off) (off :: acc)
  in
  go 0 (pos + 9) []

let rec value_at src pos : Value.t =
  match src.[pos] with
  | c when c = tag_null -> Value.Null
  | c when c = tag_false -> Value.Bool false
  | c when c = tag_true -> Value.Bool true
  | c when c = tag_int -> Value.Int (Int64.to_int (get_i64 src (pos + 1)))
  | c when c = tag_float -> Value.Float (Int64.float_of_bits (get_i64 src (pos + 1)))
  | c when c = tag_string -> Value.String (read_string src pos)
  | c when c = tag_array -> Value.list_ (List.map (value_at src) (array_offsets src pos))
  | c when c = tag_object ->
    let count = get_i32 src (pos + 1) in
    let rec go i off acc =
      if i >= count then List.rev acc
      else begin
        let nlen = get_i16 src off in
        let name = String.sub src (off + 2) nlen in
        let voff = off + 2 + nlen in
        go (i + 1) (voff + value_size src voff) ((name, value_at src voff) :: acc)
      end
    in
    Value.record (go 0 (pos + 9) [])
  | c -> Perror.parse_error ~what:"binjson" ~pos "bad tag %d" (Char.code c)
