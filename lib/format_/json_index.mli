(** Two-level structural index for JSON datasets (Section 5.2, Figure 4).

    A dataset is a sequence of JSON objects. During the first (validating)
    access, one pass populates, per object:

    - {b Level 1}: an array of entries — the binary start/end positions and
      kind of each registered token. Entry 0 spans the whole object. Fields
      are registered recursively through nested {e objects} (path ["c.d.d1"]
      dereferences in one step); array {e contents} are deliberately not
      registered — the Unnest operator handles them with a uniform code path.

    - {b Level 0}: an associative array mapping flattened field paths to
      Level-1 slots, giving deterministic lookups despite JSON's flexible
      field order.

    When every object turns out to have the same fields in the same order,
    Level 0 is dropped and a single shared path→slot map is kept for the
    whole dataset ("specializing per dataset contents"): slot positions are
    deterministic, only the variable value spans remain per object. *)

type kind = Kobj | Karr | Kstr | Kint | Kfloat | Kbool | Knull

type entry = { start : int; stop : int; kind : kind }

type t

(** [build src] validates the input and builds the index.
    Raises [Perror.Parse_error] on malformed JSON. *)
val build : string -> t

val source : t -> string
val object_count : t -> int
val is_fixed_schema : t -> bool

(** [object_span t obj] is the byte span of object [obj]. *)
val object_span : t -> int -> int * int

(** [paths t] is the list of all registered field paths (fixed-schema mode:
    the shared map's keys; otherwise the union over objects). *)
val paths : t -> string list

(** [slot t path] resolves a path to its shared Level-1 slot — only
    meaningful in fixed-schema mode, where the resolution can be done once
    per query instead of once per object. *)
val slot : t -> string -> int option

(** [entry_at t ~obj ~slot] fetches a Level-1 entry by slot. *)
val entry_at : t -> obj:int -> slot:int -> entry

(** [find t ~obj ~path] resolves [path] ("a.b.c") through Level 0 (or the
    shared map). [None] when the object lacks the field. *)
val find : t -> obj:int -> path:string -> entry option

(** Flexible-schema fast path: resolve the path to its interned id once per
    query ({!path_id}), then look fields up by id per object
    ({!find_by_id}) — the string comparison leaves the per-tuple loop. *)
val path_id : t -> string -> int option

val find_by_id : t -> obj:int -> id:int -> entry option

(** {1 Allocation-free span access}

    [entry] is immutable and allocated per lookup; on the per-tuple hot
    path of a scan that is one minor-heap record (plus an option) per field
    read, and under multi-domain execution those allocations serialize the
    workers on the shared minor-GC barrier. A {!span} is the mutable
    counterpart: each staged accessor owns one scratch span and refills it
    in place, so steady-state scans allocate nothing. Scratch spans must
    not be shared across domains — one per pipeline instance. *)

type span = {
  mutable sp_start : int;
  mutable sp_stop : int;
  mutable sp_kind : kind;
}

val make_span : unit -> span

(** [entry_span t ~obj ~slot sp] is {!entry_at} into [sp]. *)
val entry_span : t -> obj:int -> slot:int -> span -> unit

(** [slot_by_id t ~obj ~id] is {!find_by_id}'s slot resolution without the
    option: [-1] when the object lacks the field. *)
val slot_by_id : t -> obj:int -> id:int -> int

(** [find_span_by_id t ~obj ~id sp] fills [sp] with the field's span and
    returns [true], or returns [false] when the object lacks the field. *)
val find_span_by_id : t -> obj:int -> id:int -> span -> bool

(** Span decoding, mirroring the entry readers below. *)

val span_int : t -> span -> int
val span_float : t -> span -> float
val span_bool : t -> span -> bool
val span_string : t -> span -> string
val span_value : t -> span -> Proteus_model.Value.t

(** {1 Value decoding} — parse an entry's span directly out of the raw
    bytes; no AST is built. *)

val read_int : t -> entry -> int
val read_float : t -> entry -> float
val read_bool : t -> entry -> bool
val read_string : t -> entry -> string

(** [read_value t entry] boxes any entry, fully parsing nested structures
    (used at output boundaries, not in scan loops). *)
val read_value : t -> entry -> Proteus_model.Value.t

(** {1 Unnest support} *)

(** [array_elements t entry] is the spans of the elements of an array entry,
    in order. *)
val array_elements : t -> entry -> entry list

(** [iter_array_spans t entry ~f] visits each element span without building
    entries — the Unnest code path, which "applies the same action to every
    nested element". *)
val iter_array_spans : t -> entry -> f:(start:int -> stop:int -> unit) -> unit

(** [find_in_span t ~start ~stop ~path] scans an un-indexed object span (an
    array element) for a field path. *)
val find_in_span : t -> start:int -> stop:int -> path:string -> entry option

(** [find_parts_in_span] is {!find_in_span} with the dotted path pre-split
    (the per-query form the plug-ins stage). *)
val find_parts_in_span :
  t -> start:int -> stop:int -> parts:string list -> entry option

(** [find_parts_span t ~start ~stop ~parts sp] is the allocation-free
    {!find_parts_in_span}: the value span of the final path segment lands in
    the scratch [sp] (intermediate object spans travel through it too), and
    the result is [false] when any segment is missing — the form a
    generated unnest stages so per-element fallback lookups build no entry
    records or options. *)
val find_parts_span :
  t -> start:int -> stop:int -> parts:string list -> span -> bool

(** [scan_span_fields t ~start ~stop ~names ~starts ~stops] walks the
    members of the object span once, filling [starts]/[stops] with the
    value spans of the fields in [names] ([-1] marks absence) and stopping
    early once all are found — the extraction loop a generated unnest uses
    ("processing only the required data fields"). *)
val scan_span_fields :
  t ->
  start:int -> stop:int -> names:string array -> starts:int array ->
  stops:int array -> unit

(** [read_string_span t ~start ~stop] decodes a string literal span
    (quotes included). *)
val read_string_span : t -> start:int -> stop:int -> string

(** {1 Introspection} *)

(** Index footprint in bytes — reported against the file size as in
    Section 7.1 (~15–25%). *)
val byte_size : t -> int
