(** A BSON/jsonb-like binary serialization of JSON documents.

    This substrate backs two comparator systems from the paper's evaluation:
    MongoDB's BSON storage and PostgreSQL's [jsonb] column type. Documents
    are fully converted at load time (the cost the paper charges to those
    systems), after which field access navigates length-prefixed binary
    structures without text parsing.

    Layout (little-endian):
    - tag byte: 0 null, 1 false, 2 true, 3 int64, 4 float64, 5 string,
      6 array, 7 object
    - string: [len:4][bytes]
    - array: [count:4][total:4][elem...] where each elem is a tagged value
    - object: [count:4][total:4][field...] where each field is
      [name_len:2][name][value] — values carry their own lengths, so a
      reader can skip fields it does not need. *)

open Proteus_model

val encode : Json.t -> string

val decode : string -> Json.t

(** [decode_at src pos] decodes the tagged value at [pos]. *)
val decode_at : string -> int -> Json.t

(** [find_field src pos name] is the offset of field [name]'s tagged value
    within the object at [pos]; [None] when absent or not an object. *)
val find_field : string -> int -> string -> int option

(** [find_path src pos path] chains {!find_field} over a dotted path. *)
val find_path : string -> int -> string -> int option

(** {1 Typed readers at an offset} — raise [Perror.Type_error] on tag
    mismatch (ints widen to float for [read_float]). A byte that is not a
    valid tag at all raises [Perror.Parse_error] carrying its offset. *)

val read_int : string -> int -> int
val read_float : string -> int -> float
val read_bool : string -> int -> bool
val read_string : string -> int -> string

(** [array_offsets src pos] is the offsets of the elements of the array at
    [pos]. *)
val array_offsets : string -> int -> int list

(** [value_at src pos] boxes the tagged value at [pos] into the data model. *)
val value_at : string -> int -> Value.t

(** Size in bytes of the tagged value at [pos], header included. *)
val value_size : string -> int -> int
