open Proteus_model

let fail pos fmt = Perror.parse_error ~what:"number" ~pos fmt

let int_span src ~start ~stop =
  if start >= stop then fail start "empty int span";
  let neg = src.[start] = '-' in
  let i0 = if neg || src.[start] = '+' then start + 1 else start in
  if i0 >= stop then fail start "sign without digits";
  let rec go i acc =
    if i >= stop then acc
    else
      let c = src.[i] in
      if c >= '0' && c <= '9' then go (i + 1) ((acc * 10) + (Char.code c - 48))
      else fail i "bad digit %C" c
  in
  let v = go i0 0 in
  if neg then -v else v

(* Powers of ten are exact doubles up to 1e15. *)
let pow10 =
  [| 1e0; 1e1; 1e2; 1e3; 1e4; 1e5; 1e6; 1e7; 1e8; 1e9; 1e10; 1e11; 1e12; 1e13;
     1e14; 1e15 |]

(* Fast path for "ddd.ddd[eEdd]": accumulate all mantissa digits into one
   integer [m] and apply the net decimal scale (exponent minus fraction
   digits) in a single multiply or divide by an exact power of ten — one
   rounding on exact operands, so the result is the correctly-rounded
   double of the decimal (identical to [float_of_string]) as long as [m]
   stays within 2^53 and the net scale within the exact powers. Anything
   else (>15 mantissa digits, |net scale| > 15) falls back to
   [float_of_string] on a substring. *)
let float_span src ~start ~stop =
  if start >= stop then fail start "empty float span";
  let neg = src.[start] = '-' in
  let i0 = if neg || src.[start] = '+' then start + 1 else start in
  let slow () = float_of_string (String.sub src start (stop - start)) in
  let rec digits i m count =
    if i >= stop then Some (i, m, count)
    else
      let c = src.[i] in
      if c >= '0' && c <= '9' then
        if count >= 15 then None
        else digits (i + 1) ((m * 10) + (Char.code c - 48)) (count + 1)
      else Some (i, m, count)
  in
  let signed v = if neg then -.v else v in
  (* the mantissa is parsed: apply an optional trailing exponent *)
  let finish ~m ~total ~frac_digits i =
    if i >= stop then signed (float_of_int m /. pow10.(frac_digits))
    else if src.[i] = 'e' || src.[i] = 'E' then begin
      if total = 0 then slow () (* "e5": no mantissa digits — let it fail *)
      else
        let d0 =
          let j = i + 1 in
          if j < stop && (src.[j] = '-' || src.[j] = '+') then j + 1 else j
        in
        let eneg = i + 1 < stop && src.[i + 1] = '-' in
        let rec exp_digits j acc =
          if j >= stop then Some acc
          else
            let c = src.[j] in
            if c >= '0' && c <= '9' then
              if acc > 9999 then None (* huge exponent: not ours to scale *)
              else exp_digits (j + 1) ((acc * 10) + (Char.code c - 48))
            else None (* trailing garbage: preserve float_of_string's error *)
        in
        if d0 >= stop then slow () (* "1e", "1e+" *)
        else
          match exp_digits d0 0 with
          | None -> slow ()
          | Some e ->
            let scale = (if eneg then -e else e) - frac_digits in
            if scale >= 0 && scale <= 15 then
              signed (float_of_int m *. pow10.(scale))
            else if scale < 0 && scale >= -15 then
              signed (float_of_int m /. pow10.(-scale))
            else slow ()
    end
    else fail i "bad float character %C" src.[i]
  in
  match digits i0 0 0 with
  | None -> slow ()
  | Some (i, m, count) ->
    if i >= stop then begin
      if count = 0 then fail start "no digits";
      signed (float_of_int m)
    end
    else if src.[i] = '.' then begin
      match digits (i + 1) m count with
      | None -> slow ()
      | Some (j, m, total) -> finish ~m ~total ~frac_digits:(total - count) j
    end
    else finish ~m ~total:count ~frac_digits:0 i
